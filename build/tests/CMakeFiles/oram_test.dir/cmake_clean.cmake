file(REMOVE_RECURSE
  "CMakeFiles/oram_test.dir/oram_test.cpp.o"
  "CMakeFiles/oram_test.dir/oram_test.cpp.o.d"
  "oram_test"
  "oram_test.pdb"
  "oram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
