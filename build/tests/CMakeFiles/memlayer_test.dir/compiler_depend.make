# Empty compiler generated dependencies file for memlayer_test.
# This may be replaced when dependencies are built.
