file(REMOVE_RECURSE
  "CMakeFiles/memlayer_test.dir/memlayer_test.cpp.o"
  "CMakeFiles/memlayer_test.dir/memlayer_test.cpp.o.d"
  "memlayer_test"
  "memlayer_test.pdb"
  "memlayer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
