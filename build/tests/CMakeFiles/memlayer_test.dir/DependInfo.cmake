
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memlayer_test.cpp" "tests/CMakeFiles/memlayer_test.dir/memlayer_test.cpp.o" "gcc" "tests/CMakeFiles/memlayer_test.dir/memlayer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memlayer/CMakeFiles/hardtape_memlayer.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/hardtape_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/hardtape_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/hardtape_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hardtape_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hardtape_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
