file(REMOVE_RECURSE
  "CMakeFiles/hevm_test.dir/hevm_test.cpp.o"
  "CMakeFiles/hevm_test.dir/hevm_test.cpp.o.d"
  "hevm_test"
  "hevm_test.pdb"
  "hevm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hevm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
