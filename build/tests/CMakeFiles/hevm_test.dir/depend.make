# Empty dependencies file for hevm_test.
# This may be replaced when dependencies are built.
