# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/trie_test[1]_include.cmake")
include("/root/repo/build/tests/state_test[1]_include.cmake")
include("/root/repo/build/tests/evm_test[1]_include.cmake")
include("/root/repo/build/tests/oram_test[1]_include.cmake")
include("/root/repo/build/tests/memlayer_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/hevm_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/hypervisor_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
include("/root/repo/build/tests/recursive_oram_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
