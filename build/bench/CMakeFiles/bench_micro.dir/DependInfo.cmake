
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cpp" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/hardtape_service.dir/DependInfo.cmake"
  "/root/repo/build/src/hevm/CMakeFiles/hardtape_hevm.dir/DependInfo.cmake"
  "/root/repo/build/src/memlayer/CMakeFiles/hardtape_memlayer.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/hardtape_node.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/hardtape_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/hardtape_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hardtape_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/hardtape_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/hardtape_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/hardtape_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hardtape_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hardtape_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
