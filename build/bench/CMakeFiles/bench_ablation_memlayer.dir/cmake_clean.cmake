file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_memlayer.dir/bench_ablation_memlayer.cpp.o"
  "CMakeFiles/bench_ablation_memlayer.dir/bench_ablation_memlayer.cpp.o.d"
  "bench_ablation_memlayer"
  "bench_ablation_memlayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
