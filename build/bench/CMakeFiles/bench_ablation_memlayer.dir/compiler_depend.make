# Empty compiler generated dependencies file for bench_ablation_memlayer.
# This may be replaced when dependencies are built.
