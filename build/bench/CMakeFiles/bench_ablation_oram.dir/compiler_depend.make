# Empty compiler generated dependencies file for bench_ablation_oram.
# This may be replaced when dependencies are built.
