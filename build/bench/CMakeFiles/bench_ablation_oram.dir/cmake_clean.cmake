file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_oram.dir/bench_ablation_oram.cpp.o"
  "CMakeFiles/bench_ablation_oram.dir/bench_ablation_oram.cpp.o.d"
  "bench_ablation_oram"
  "bench_ablation_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
