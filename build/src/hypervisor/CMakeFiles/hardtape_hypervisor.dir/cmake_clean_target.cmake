file(REMOVE_RECURSE
  "libhardtape_hypervisor.a"
)
