file(REMOVE_RECURSE
  "CMakeFiles/hardtape_hypervisor.dir/attestation.cpp.o"
  "CMakeFiles/hardtape_hypervisor.dir/attestation.cpp.o.d"
  "CMakeFiles/hardtape_hypervisor.dir/channel.cpp.o"
  "CMakeFiles/hardtape_hypervisor.dir/channel.cpp.o.d"
  "CMakeFiles/hardtape_hypervisor.dir/hypervisor.cpp.o"
  "CMakeFiles/hardtape_hypervisor.dir/hypervisor.cpp.o.d"
  "CMakeFiles/hardtape_hypervisor.dir/prefetch.cpp.o"
  "CMakeFiles/hardtape_hypervisor.dir/prefetch.cpp.o.d"
  "libhardtape_hypervisor.a"
  "libhardtape_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
