# Empty compiler generated dependencies file for hardtape_hypervisor.
# This may be replaced when dependencies are built.
