# Empty compiler generated dependencies file for hardtape_common.
# This may be replaced when dependencies are built.
