file(REMOVE_RECURSE
  "libhardtape_common.a"
)
