file(REMOVE_RECURSE
  "CMakeFiles/hardtape_common.dir/bytes.cpp.o"
  "CMakeFiles/hardtape_common.dir/bytes.cpp.o.d"
  "CMakeFiles/hardtape_common.dir/errors.cpp.o"
  "CMakeFiles/hardtape_common.dir/errors.cpp.o.d"
  "CMakeFiles/hardtape_common.dir/random.cpp.o"
  "CMakeFiles/hardtape_common.dir/random.cpp.o.d"
  "CMakeFiles/hardtape_common.dir/u256.cpp.o"
  "CMakeFiles/hardtape_common.dir/u256.cpp.o.d"
  "libhardtape_common.a"
  "libhardtape_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
