file(REMOVE_RECURSE
  "CMakeFiles/hardtape_oram.dir/paged_state.cpp.o"
  "CMakeFiles/hardtape_oram.dir/paged_state.cpp.o.d"
  "CMakeFiles/hardtape_oram.dir/path_oram.cpp.o"
  "CMakeFiles/hardtape_oram.dir/path_oram.cpp.o.d"
  "CMakeFiles/hardtape_oram.dir/recursive.cpp.o"
  "CMakeFiles/hardtape_oram.dir/recursive.cpp.o.d"
  "libhardtape_oram.a"
  "libhardtape_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
