# Empty dependencies file for hardtape_oram.
# This may be replaced when dependencies are built.
