file(REMOVE_RECURSE
  "libhardtape_oram.a"
)
