# Empty dependencies file for hardtape_node.
# This may be replaced when dependencies are built.
