file(REMOVE_RECURSE
  "libhardtape_node.a"
)
