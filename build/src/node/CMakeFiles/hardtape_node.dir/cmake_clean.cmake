file(REMOVE_RECURSE
  "CMakeFiles/hardtape_node.dir/node.cpp.o"
  "CMakeFiles/hardtape_node.dir/node.cpp.o.d"
  "CMakeFiles/hardtape_node.dir/sync.cpp.o"
  "CMakeFiles/hardtape_node.dir/sync.cpp.o.d"
  "libhardtape_node.a"
  "libhardtape_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
