# Empty compiler generated dependencies file for hardtape_crypto.
# This may be replaced when dependencies are built.
