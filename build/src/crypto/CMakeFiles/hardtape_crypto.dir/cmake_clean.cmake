file(REMOVE_RECURSE
  "CMakeFiles/hardtape_crypto.dir/aes.cpp.o"
  "CMakeFiles/hardtape_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/hardtape_crypto.dir/keccak.cpp.o"
  "CMakeFiles/hardtape_crypto.dir/keccak.cpp.o.d"
  "CMakeFiles/hardtape_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/hardtape_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/hardtape_crypto.dir/sha256.cpp.o"
  "CMakeFiles/hardtape_crypto.dir/sha256.cpp.o.d"
  "libhardtape_crypto.a"
  "libhardtape_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
