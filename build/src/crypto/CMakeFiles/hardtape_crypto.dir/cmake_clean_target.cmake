file(REMOVE_RECURSE
  "libhardtape_crypto.a"
)
