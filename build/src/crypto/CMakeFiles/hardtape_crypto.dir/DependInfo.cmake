
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/hardtape_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/hardtape_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/keccak.cpp" "src/crypto/CMakeFiles/hardtape_crypto.dir/keccak.cpp.o" "gcc" "src/crypto/CMakeFiles/hardtape_crypto.dir/keccak.cpp.o.d"
  "/root/repo/src/crypto/secp256k1.cpp" "src/crypto/CMakeFiles/hardtape_crypto.dir/secp256k1.cpp.o" "gcc" "src/crypto/CMakeFiles/hardtape_crypto.dir/secp256k1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/hardtape_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/hardtape_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hardtape_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
