file(REMOVE_RECURSE
  "libhardtape_service.a"
)
