file(REMOVE_RECURSE
  "CMakeFiles/hardtape_service.dir/pre_execution.cpp.o"
  "CMakeFiles/hardtape_service.dir/pre_execution.cpp.o.d"
  "libhardtape_service.a"
  "libhardtape_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
