# Empty compiler generated dependencies file for hardtape_service.
# This may be replaced when dependencies are built.
