file(REMOVE_RECURSE
  "CMakeFiles/hardtape_trie.dir/mpt.cpp.o"
  "CMakeFiles/hardtape_trie.dir/mpt.cpp.o.d"
  "CMakeFiles/hardtape_trie.dir/rlp.cpp.o"
  "CMakeFiles/hardtape_trie.dir/rlp.cpp.o.d"
  "libhardtape_trie.a"
  "libhardtape_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
