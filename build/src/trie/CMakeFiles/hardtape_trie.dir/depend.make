# Empty dependencies file for hardtape_trie.
# This may be replaced when dependencies are built.
