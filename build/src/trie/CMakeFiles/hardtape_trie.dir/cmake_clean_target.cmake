file(REMOVE_RECURSE
  "libhardtape_trie.a"
)
