file(REMOVE_RECURSE
  "libhardtape_evm.a"
)
