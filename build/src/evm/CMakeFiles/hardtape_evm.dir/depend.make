# Empty dependencies file for hardtape_evm.
# This may be replaced when dependencies are built.
