
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evm/assembler.cpp" "src/evm/CMakeFiles/hardtape_evm.dir/assembler.cpp.o" "gcc" "src/evm/CMakeFiles/hardtape_evm.dir/assembler.cpp.o.d"
  "/root/repo/src/evm/interpreter.cpp" "src/evm/CMakeFiles/hardtape_evm.dir/interpreter.cpp.o" "gcc" "src/evm/CMakeFiles/hardtape_evm.dir/interpreter.cpp.o.d"
  "/root/repo/src/evm/opcodes.cpp" "src/evm/CMakeFiles/hardtape_evm.dir/opcodes.cpp.o" "gcc" "src/evm/CMakeFiles/hardtape_evm.dir/opcodes.cpp.o.d"
  "/root/repo/src/evm/trace.cpp" "src/evm/CMakeFiles/hardtape_evm.dir/trace.cpp.o" "gcc" "src/evm/CMakeFiles/hardtape_evm.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hardtape_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hardtape_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/hardtape_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/hardtape_trie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
