file(REMOVE_RECURSE
  "CMakeFiles/hardtape_evm.dir/assembler.cpp.o"
  "CMakeFiles/hardtape_evm.dir/assembler.cpp.o.d"
  "CMakeFiles/hardtape_evm.dir/interpreter.cpp.o"
  "CMakeFiles/hardtape_evm.dir/interpreter.cpp.o.d"
  "CMakeFiles/hardtape_evm.dir/opcodes.cpp.o"
  "CMakeFiles/hardtape_evm.dir/opcodes.cpp.o.d"
  "CMakeFiles/hardtape_evm.dir/trace.cpp.o"
  "CMakeFiles/hardtape_evm.dir/trace.cpp.o.d"
  "libhardtape_evm.a"
  "libhardtape_evm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
