# CMake generated Testfile for 
# Source directory: /root/repo/src/memlayer
# Build directory: /root/repo/build/src/memlayer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
