# Empty dependencies file for hardtape_memlayer.
# This may be replaced when dependencies are built.
