file(REMOVE_RECURSE
  "CMakeFiles/hardtape_memlayer.dir/layer3.cpp.o"
  "CMakeFiles/hardtape_memlayer.dir/layer3.cpp.o.d"
  "CMakeFiles/hardtape_memlayer.dir/pager.cpp.o"
  "CMakeFiles/hardtape_memlayer.dir/pager.cpp.o.d"
  "libhardtape_memlayer.a"
  "libhardtape_memlayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_memlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
