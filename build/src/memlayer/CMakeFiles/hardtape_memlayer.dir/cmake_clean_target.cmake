file(REMOVE_RECURSE
  "libhardtape_memlayer.a"
)
