# CMake generated Testfile for 
# Source directory: /root/repo/src/hevm
# Build directory: /root/repo/build/src/hevm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
