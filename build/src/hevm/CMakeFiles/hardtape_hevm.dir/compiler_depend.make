# Empty compiler generated dependencies file for hardtape_hevm.
# This may be replaced when dependencies are built.
