file(REMOVE_RECURSE
  "libhardtape_hevm.a"
)
