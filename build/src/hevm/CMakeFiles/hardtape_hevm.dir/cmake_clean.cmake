file(REMOVE_RECURSE
  "CMakeFiles/hardtape_hevm.dir/hevm_core.cpp.o"
  "CMakeFiles/hardtape_hevm.dir/hevm_core.cpp.o.d"
  "CMakeFiles/hardtape_hevm.dir/resource_model.cpp.o"
  "CMakeFiles/hardtape_hevm.dir/resource_model.cpp.o.d"
  "libhardtape_hevm.a"
  "libhardtape_hevm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_hevm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
