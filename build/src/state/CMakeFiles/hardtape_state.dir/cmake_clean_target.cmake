file(REMOVE_RECURSE
  "libhardtape_state.a"
)
