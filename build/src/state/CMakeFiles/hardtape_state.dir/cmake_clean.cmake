file(REMOVE_RECURSE
  "CMakeFiles/hardtape_state.dir/account.cpp.o"
  "CMakeFiles/hardtape_state.dir/account.cpp.o.d"
  "CMakeFiles/hardtape_state.dir/overlay.cpp.o"
  "CMakeFiles/hardtape_state.dir/overlay.cpp.o.d"
  "CMakeFiles/hardtape_state.dir/world_state.cpp.o"
  "CMakeFiles/hardtape_state.dir/world_state.cpp.o.d"
  "libhardtape_state.a"
  "libhardtape_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
