# Empty compiler generated dependencies file for hardtape_state.
# This may be replaced when dependencies are built.
