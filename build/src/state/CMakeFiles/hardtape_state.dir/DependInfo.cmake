
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/state/account.cpp" "src/state/CMakeFiles/hardtape_state.dir/account.cpp.o" "gcc" "src/state/CMakeFiles/hardtape_state.dir/account.cpp.o.d"
  "/root/repo/src/state/overlay.cpp" "src/state/CMakeFiles/hardtape_state.dir/overlay.cpp.o" "gcc" "src/state/CMakeFiles/hardtape_state.dir/overlay.cpp.o.d"
  "/root/repo/src/state/world_state.cpp" "src/state/CMakeFiles/hardtape_state.dir/world_state.cpp.o" "gcc" "src/state/CMakeFiles/hardtape_state.dir/world_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hardtape_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hardtape_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/hardtape_trie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
