file(REMOVE_RECURSE
  "CMakeFiles/hardtape_workload.dir/contracts.cpp.o"
  "CMakeFiles/hardtape_workload.dir/contracts.cpp.o.d"
  "CMakeFiles/hardtape_workload.dir/generator.cpp.o"
  "CMakeFiles/hardtape_workload.dir/generator.cpp.o.d"
  "libhardtape_workload.a"
  "libhardtape_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardtape_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
