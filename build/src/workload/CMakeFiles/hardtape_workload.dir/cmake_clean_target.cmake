file(REMOVE_RECURSE
  "libhardtape_workload.a"
)
