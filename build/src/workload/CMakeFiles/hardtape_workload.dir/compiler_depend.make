# Empty compiler generated dependencies file for hardtape_workload.
# This may be replaced when dependencies are built.
