
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/contracts.cpp" "src/workload/CMakeFiles/hardtape_workload.dir/contracts.cpp.o" "gcc" "src/workload/CMakeFiles/hardtape_workload.dir/contracts.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/hardtape_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/hardtape_workload.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evm/CMakeFiles/hardtape_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/hardtape_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/hardtape_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hardtape_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hardtape_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
