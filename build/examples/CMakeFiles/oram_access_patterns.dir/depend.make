# Empty dependencies file for oram_access_patterns.
# This may be replaced when dependencies are built.
