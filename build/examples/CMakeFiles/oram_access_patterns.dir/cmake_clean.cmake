file(REMOVE_RECURSE
  "CMakeFiles/oram_access_patterns.dir/oram_access_patterns.cpp.o"
  "CMakeFiles/oram_access_patterns.dir/oram_access_patterns.cpp.o.d"
  "oram_access_patterns"
  "oram_access_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oram_access_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
