file(REMOVE_RECURSE
  "CMakeFiles/hft_bundle.dir/hft_bundle.cpp.o"
  "CMakeFiles/hft_bundle.dir/hft_bundle.cpp.o.d"
  "hft_bundle"
  "hft_bundle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hft_bundle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
