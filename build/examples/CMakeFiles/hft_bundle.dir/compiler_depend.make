# Empty compiler generated dependencies file for hft_bundle.
# This may be replaced when dependencies are built.
