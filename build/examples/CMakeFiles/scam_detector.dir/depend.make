# Empty dependencies file for scam_detector.
# This may be replaced when dependencies are built.
