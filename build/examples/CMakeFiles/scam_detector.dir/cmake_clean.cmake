file(REMOVE_RECURSE
  "CMakeFiles/scam_detector.dir/scam_detector.cpp.o"
  "CMakeFiles/scam_detector.dir/scam_detector.cpp.o.d"
  "scam_detector"
  "scam_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scam_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
