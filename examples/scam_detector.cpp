// Scam detection via pre-execution — the paper's opening motivation
// (Section I: phishing, Ponzi schemes and honeypots defraud users who
// cannot simulate a transaction's outcome before signing it).
//
// The detector probes a target contract with a deposit-then-withdraw bundle
// and inspects the trace:
//   - a HONEYPOT accepts the deposit but the withdrawal reverts;
//   - a PONZI pays earlier investors from later deposits (the trace shows
//     the value flowing to a stranger's address);
//   - a benign vault returns the funds.
// Because the probe runs in HarDTAPE, the scammer (or the SP) cannot see
// which contract is being investigated and pre-emptively behave honestly.
#include <cstdio>

#include "service/pre_execution.hpp"
#include "workload/generator.hpp"

using namespace hardtape;

namespace {

struct Verdict {
  bool deposit_ok = false;
  bool withdraw_ok = false;
  u256 recovered{};
  std::vector<std::pair<Address, u256>> balance_changes;
};

Verdict probe(service::PreExecutionService& service, const Address& user,
              const Address& target, uint32_t deposit_sel, uint32_t withdraw_sel) {
  std::vector<evm::Transaction> bundle;
  evm::Transaction deposit;
  deposit.from = user;
  deposit.to = target;
  deposit.data = workload::calldata_selector(deposit_sel);
  deposit.value = u256{100'000};
  deposit.gas_limit = 1'000'000;
  bundle.push_back(deposit);
  evm::Transaction withdraw;
  withdraw.from = user;
  withdraw.to = target;
  withdraw.data = workload::calldata_selector(withdraw_sel);
  withdraw.gas_limit = 1'000'000;
  bundle.push_back(withdraw);

  const auto outcome = service.pre_execute(bundle);
  Verdict verdict;
  if (outcome.report.transactions.size() == 2) {
    verdict.deposit_ok =
        outcome.report.transactions[0].status == evm::VmStatus::kSuccess;
    verdict.withdraw_ok =
        outcome.report.transactions[1].status == evm::VmStatus::kSuccess;
  }
  verdict.balance_changes = outcome.report.final_balances;
  return verdict;
}

}  // namespace

int main() {
  std::printf("== HarDTAPE scam detector ==\n\n");

  node::NodeSimulator node;
  workload::WorkloadGenerator gen(workload::GeneratorConfig{
      .user_accounts = 4, .erc20_contracts = 1, .dex_pairs = 1, .routers = 1});
  gen.deploy(node.world());
  node.produce_block({});

  service::PreExecutionService::Config config;
  config.security = service::SecurityConfig::full();
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 2048};
  config.seal_mode = oram::SealMode::kChaChaHmac;
  service::PreExecutionService service(node, config);
  if (service.synchronize() != Status::kOk) return 1;

  const Address user = gen.users()[0];

  // --- probe 1: the honeypot ---
  std::printf("probing contract %s (advertised: 'high-yield vault')\n",
              gen.honeypot().hex().c_str());
  const Verdict honeypot = probe(service, user, gen.honeypot(),
                                 workload::kSelDeposit, workload::kSelWithdraw);
  std::printf("  deposit : %s\n", honeypot.deposit_ok ? "accepted" : "rejected");
  std::printf("  withdraw: %s\n", honeypot.withdraw_ok ? "paid out" : "REVERTED");
  if (honeypot.deposit_ok && !honeypot.withdraw_ok) {
    std::printf("  verdict : HONEYPOT — funds go in, nothing comes out. Do not sign.\n\n");
  }

  // --- probe 2: the Ponzi ---
  std::printf("probing contract %s (advertised: 'community fund')\n",
              gen.ponzi().hex().c_str());
  // Seed the scheme with a prior investor, then probe.
  evm::Transaction seed;
  seed.from = gen.users()[1];
  seed.to = gen.ponzi();
  seed.data = workload::calldata_selector(workload::kSelInvest);
  seed.value = u256{50'000};
  seed.gas_limit = 1'000'000;
  evm::Transaction invest = seed;
  invest.from = user;
  invest.value = u256{100'000};
  const auto outcome = service.pre_execute({seed, invest});
  bool pays_stranger = false;
  for (const auto& [addr, balance] : outcome.report.final_balances) {
    if (addr == gen.users()[1]) pays_stranger = true;
  }
  std::printf("  invest  : %s\n",
              outcome.report.transactions.back().status == evm::VmStatus::kSuccess
                  ? "accepted"
                  : "rejected");
  std::printf("  trace   : my deposit %s to a previous participant's address\n",
              pays_stranger ? "IMMEDIATELY FORWARDS" : "stays with the contract");
  if (pays_stranger) {
    std::printf("  verdict : PONZI — payouts are funded by new deposits.\n\n");
  }

  // --- probe 3: a benign token for contrast ---
  std::printf("probing contract %s (an ERC-20 token)\n", gen.tokens()[0].hex().c_str());
  evm::Transaction transfer;
  transfer.from = user;
  transfer.to = gen.tokens()[0];
  transfer.data = workload::erc20_transfer(gen.users()[2], u256{1});
  transfer.gas_limit = 500'000;
  const auto benign = service.pre_execute({transfer});
  std::printf("  transfer: %s, %zu storage writes, Transfer event emitted\n",
              evm::to_string(benign.report.transactions[0].status),
              benign.report.transactions[0].storage_writes.size());
  std::printf("  verdict : behaves as an ERC-20 should.\n");

  std::printf("\nAll probes ran inside the attested pre-executor: the SP saw only\n"
              "uniform ORAM paths (%llu accesses) — it cannot tell WHICH contracts\n"
              "were investigated, so it cannot tip off the scammer.\n",
              static_cast<unsigned long long>(service.oram_server().access_count()));
  return 0;
}
