// Why the ORAM matters: a side-by-side of what the service provider
// observes with and without access-pattern protection (threat A7,
// Section IV-D). This is the MEV scenario from the paper's introduction: if
// the SP can see WHICH token a user's pre-executed swap touches, it can
// front-run the real transaction.
#include <cstdio>
#include <map>

#include "oram/paged_state.hpp"
#include "workload/generator.hpp"

using namespace hardtape;

int main() {
  std::printf("== ORAM access patterns: the adversary's view ==\n\n");

  state::WorldState world;
  workload::WorkloadGenerator gen(workload::GeneratorConfig{
      .user_accounts = 4, .erc20_contracts = 3, .dex_pairs = 1, .routers = 1});
  gen.deploy(world);

  // The user's secret intention: trade token #2.
  const Address secret_target = gen.tokens()[2];
  const Address decoy = gen.tokens()[0];

  // --- 1. without ORAM: queries name addresses and keys ---
  std::printf("WITHOUT ORAM, the SP's query log for one pre-execution:\n");
  std::printf("  GET code    %s   <-- the target token, in cleartext\n",
              secret_target.hex().c_str());
  std::printf("  GET storage %s slot(balance[user])\n", secret_target.hex().c_str());
  std::printf("  GET storage %s slot(balance[recipient])\n", secret_target.hex().c_str());
  std::printf("  => the SP knows the token and can front-run the trade.\n\n");

  // --- 2. with ORAM: uniform, re-randomized path accesses ---
  oram::OramServer server(oram::OramConfig{.block_size = oram::kPageSize,
                                           .capacity = 2048});
  crypto::AesKey128 oram_key{};
  oram_key[0] = 0x5e;
  oram::OramClient client(server, oram_key, 7, oram::SealMode::kChaChaHmac);
  oram::sync_world_state(world, client);
  oram::OramWorldState oram_state(client);

  server.clear_observations();
  // Access the SECRET token's balance twice and the decoy once.
  oram_state.storage(secret_target, gen.users()[0].to_u256());
  oram_state.storage(secret_target, gen.users()[0].to_u256());
  oram_state.storage(decoy, gen.users()[0].to_u256());

  std::printf("WITH ORAM, the same three queries appear as:\n");
  for (uint64_t leaf : server.observed_leaves()) {
    std::printf("  READ+REWRITE path to leaf %llu (%llu bytes, re-encrypted)\n",
                static_cast<unsigned long long>(leaf),
                static_cast<unsigned long long>(server.bytes_per_access()));
  }
  std::printf("  => same block accessed twice maps to fresh random leaves;\n"
              "     code pages and storage records are the same 1 KB shape.\n\n");

  // --- 3. the statistics an adversary would try to build ---
  std::printf("leaf histogram over 2000 repeated accesses to ONE hot block:\n");
  server.clear_observations();
  const auto hot = oram::page_id(oram::PageType::kStorageGroup, secret_target,
                                 gen.users()[0].to_u256() >> 5);
  for (int i = 0; i < 2000; ++i) client.read(hot);
  std::map<uint64_t, int> histogram;
  for (uint64_t leaf : server.observed_leaves()) histogram[leaf / 256] += 1;
  for (const auto& [bucket, count] : histogram) {
    std::printf("  leaves %4llu-%4llu: %-4d ",
                static_cast<unsigned long long>(bucket * 256),
                static_cast<unsigned long long>(bucket * 256 + 255), count);
    for (int i = 0; i < count / 25; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("  => flat: the hottest block in the workload is statistically\n"
              "     indistinguishable from any other (Path ORAM remapping).\n\n");

  std::printf("stash high-water during the run: %zu blocks (bounded, on-chip)\n",
              client.stash_high_water());
  return 0;
}
