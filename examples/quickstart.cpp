// Quickstart: the full HarDTAPE flow in one file.
//
//   1. An SP runs a node and a HarDTAPE service in the -full configuration.
//   2. The chain state is synchronized into the Path ORAM (with Merkle
//      proofs verified against the trusted block).
//   3. A user verifies the device's attestation report.
//   4. The user pre-executes a token-transfer bundle.
//   5. The returned trace shows gas, return data and storage modifications —
//      and the on-chain state is untouched.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "crypto/secp256k1.hpp"
#include "service/pre_execution.hpp"
#include "workload/generator.hpp"

using namespace hardtape;

int main() {
  std::printf("== HarDTAPE quickstart ==\n\n");

  // --- the service provider's side ---
  node::NodeSimulator node;
  workload::WorkloadGenerator gen(workload::GeneratorConfig{
      .user_accounts = 4, .erc20_contracts = 1, .dex_pairs = 1, .routers = 1});
  gen.deploy(node.world());
  node.produce_block({});
  std::printf("node at block #%llu, state root %s...\n",
              static_cast<unsigned long long>(node.head().number),
              node.head().state_root.hex().substr(0, 16).c_str());

  service::PreExecutionService::Config config;
  config.security = service::SecurityConfig::full();
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 2048};
  config.seal_mode = oram::SealMode::kChaChaHmac;
  service::PreExecutionService service(node, config);

  if (service.synchronize() != Status::kOk) {
    std::printf("FATAL: node served data failing Merkle verification\n");
    return 1;
  }
  std::printf("world state synchronized into the ORAM (%llu accesses so far)\n\n",
              static_cast<unsigned long long>(service.oram_server().access_count()));

  // --- the user's side: verify the device before trusting it ---
  const crypto::PrivateKey user_key = crypto::PrivateKey::from_seed(Bytes{1, 2, 3});
  const H256 nonce = crypto::keccak256("quickstart-nonce");
  const auto session = service.hypervisor().begin_session(nonce, user_key.public_key());
  const bool attested = hypervisor::verify_attestation(
      service.manufacturer().root_public_key(),
      service.hypervisor().firmware_measurement(), nonce, session.report);
  std::printf("attestation report verified: %s\n", attested ? "yes" : "NO - abort!");
  if (!attested) return 1;
  service.hypervisor().end_session(session.session_id);

  // --- pre-execute a bundle: transfer 500 tokens ---
  evm::Transaction tx;
  tx.from = gen.users()[0];
  tx.to = gen.tokens()[0];
  tx.data = workload::erc20_transfer(gen.users()[1], u256{500});
  tx.gas_limit = 300'000;

  const auto outcome = service.pre_execute({tx});
  const auto& trace = outcome.report.transactions.at(0);
  std::printf("\npre-execution trace:\n");
  std::printf("  status        : %s\n", evm::to_string(trace.status));
  std::printf("  gas used      : %llu\n", static_cast<unsigned long long>(trace.gas_used));
  std::printf("  return data   : 0x%s\n", to_hex(trace.return_data).c_str());
  std::printf("  logs          : %zu (Transfer event)\n", trace.logs.size());
  std::printf("  storage writes:\n");
  for (const auto& write : trace.storage_writes) {
    std::printf("    %s slot %s... = %s\n", write.addr.hex().substr(0, 12).c_str(),
                write.key.to_hex().substr(0, 12).c_str(), write.value.to_string().c_str());
  }
  std::printf("  simulated end-to-end time: %.1f ms (ORAM: %llu queries)\n",
              static_cast<double>(outcome.end_to_end_ns) / 1e6,
              static_cast<unsigned long long>(outcome.query_stats.oram_queries));

  // --- nothing persisted ---
  std::printf("\non-chain balance of recipient after pre-execution: %s (unchanged)\n",
              node.world().storage(gen.tokens()[0], gen.users()[1].to_u256()).to_string().c_str());
  std::printf("\nOK.\n");
  return 0;
}
