// HFT scenario (the paper's motivating user, Sections I and VI-C): a
// high-frequency trader tests a multi-step DEX strategy as a bundle before
// committing it on-chain. Two properties matter to them:
//
//   1. the traces expose the strategy's net effect (token deltas, gas) so a
//      losing bundle is never broadcast, and
//   2. the pre-execution leaks nothing the SP could front-run: every
//      world-state query went through the ORAM, so the SP sees only uniform
//      path accesses — we print exactly what the SP observed.
//
// The example also demonstrates the warm-session effect the paper compares
// against TSC-VEE: repeated bundles on the same contracts find their data
// locally after the first access.
#include <cstdio>

#include "service/pre_execution.hpp"
#include "workload/generator.hpp"

using namespace hardtape;

int main() {
  std::printf("== HarDTAPE HFT bundle example ==\n\n");

  node::NodeSimulator node;
  workload::WorkloadGenerator gen(workload::GeneratorConfig{
      .user_accounts = 4, .erc20_contracts = 2, .dex_pairs = 2, .routers = 1});
  gen.deploy(node.world());
  node.produce_block({});

  service::PreExecutionService::Config config;
  config.security = service::SecurityConfig::full();
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
  config.seal_mode = oram::SealMode::kChaChaHmac;
  service::PreExecutionService service(node, config);
  if (service.synchronize() != Status::kOk) return 1;

  const Address trader = gen.users()[0];
  const Address dex_a = gen.dexes()[0];
  const Address dex_b = gen.dexes()[1];

  // The strategy: swap into token1 on DEX A, add the proceeds as liquidity
  // pressure on DEX B, then swap back — a toy triangular probe.
  auto make_bundle = [&](uint64_t size_in) {
    std::vector<evm::Transaction> bundle;
    evm::Transaction leg1;
    leg1.from = trader;
    leg1.to = dex_a;
    leg1.data = workload::dex_swap(u256{size_in});
    leg1.gas_limit = 2'000'000;
    bundle.push_back(leg1);
    evm::Transaction leg2;
    leg2.from = trader;
    leg2.to = dex_b;
    leg2.data = workload::dex_swap(u256{size_in / 2});
    leg2.gas_limit = 2'000'000;
    bundle.push_back(leg2);
    return bundle;
  };

  std::printf("probing three bundle sizes before going on-chain:\n\n");
  std::printf("%-12s %-14s %-14s %-12s %-12s\n", "size_in", "leg1 out", "leg2 out",
              "gas total", "ms (sim)");
  for (const uint64_t size : {10'000ull, 100'000ull, 1'000'000ull}) {
    const auto outcome = service.pre_execute(make_bundle(size));
    const auto& txs = outcome.report.transactions;
    if (txs.size() != 2 || txs[0].status != evm::VmStatus::kSuccess) {
      std::printf("%-12llu bundle failed: %s\n", static_cast<unsigned long long>(size),
                  evm::to_string(txs.empty() ? evm::VmStatus::kSuccess : txs[0].status));
      continue;
    }
    const u256 out1 = u256::from_be_bytes(txs[0].return_data);
    const u256 out2 = u256::from_be_bytes(txs[1].return_data);
    std::printf("%-12llu %-14s %-14s %-12llu %-12.1f\n",
                static_cast<unsigned long long>(size), out1.to_string().c_str(),
                out2.to_string().c_str(),
                static_cast<unsigned long long>(txs[0].gas_used + txs[1].gas_used),
                static_cast<double>(outcome.end_to_end_ns) / 1e6);
  }

  // What did the SP see? Only the ORAM's uniform path reads.
  const auto& leaves = service.oram_server().observed_leaves();
  std::printf("\nthe SP's complete view of the last bundles (uniform ORAM paths):\n  ");
  const size_t show = std::min<size_t>(leaves.size(), 16);
  for (size_t i = leaves.size() - show; i < leaves.size(); ++i) {
    std::printf("L%llu ", static_cast<unsigned long long>(leaves[i]));
  }
  std::printf("...\n  (%llu total path accesses; no addresses, no keys, no types)\n",
              static_cast<unsigned long long>(leaves.size()));

  // Warm-session effect: within one bundle, the second leg's queries hit the
  // pages already fetched for the first when they share contracts.
  std::vector<evm::Transaction> warm_bundle = make_bundle(5'000);
  auto more = make_bundle(6'000);
  warm_bundle.insert(warm_bundle.end(), more.begin(), more.end());
  const auto warm = service.pre_execute(warm_bundle);
  std::printf("\n4-leg bundle on the same pairs: %llu ORAM queries, %llu on-chip page"
              " hits\n  (data is found locally after first access — the paper's"
              " TSC-VEE comparison case)\n",
              static_cast<unsigned long long>(warm.query_stats.oram_queries),
              static_cast<unsigned long long>(warm.query_stats.local_reads));
  return 0;
}
