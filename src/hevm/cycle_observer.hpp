// Cycle accounting for the 4-stage pipelined HEVM and for the software
// baselines — the "timing skins" over the shared semantic interpreter
// (DESIGN.md §6).
#pragma once

#include "evm/trace.hpp"
#include "sim/clock.hpp"
#include "sim/costs.hpp"

namespace hardtape::hevm {

/// Advances a SimClock by the HEVM pipeline cost of every retired
/// instruction, plus stall cycles for L1 misses reported by the memlayer.
class HevmCycleObserver : public evm::ExecutionObserver {
 public:
  HevmCycleObserver(sim::SimClock& clock, const sim::HevmCostModel& model)
      : clock_(clock), model_(model) {}

  void on_step(const StepInfo& info) override {
    const auto& op = evm::opcode_info(info.opcode);
    clock_.advance_ns(model_.op_ns(op.op_class, info.opcode));
    ++instructions_;
  }

  void on_frame_enter(const FrameInfo&) override {
    // Frame creation: dump layer-1 to layer-2, initialize the new context.
    clock_.advance_ns(model_.cycles_call * model_.cycle_ns());
  }

  uint64_t instructions() const { return instructions_; }
  void reset() { instructions_ = 0; }

 private:
  sim::SimClock& clock_;
  sim::HevmCostModel model_;
  uint64_t instructions_ = 0;
};

/// Same idea for the software roles (Geth baseline, TSC-VEE comparator):
/// per-op nanosecond costs on their respective hosts.
template <typename CostModel>
class SoftwareCycleObserver : public evm::ExecutionObserver {
 public:
  SoftwareCycleObserver(sim::SimClock& clock, const CostModel& model)
      : clock_(clock), model_(model) {}

  void on_step(const StepInfo& info) override {
    const auto& op = evm::opcode_info(info.opcode);
    clock_.advance_ns(model_.op_ns(op.op_class, info.opcode));
    ++instructions_;
  }

  uint64_t instructions() const { return instructions_; }

 private:
  sim::SimClock& clock_;
  CostModel model_;
  uint64_t instructions_ = 0;
};

using GethCycleObserver = SoftwareCycleObserver<sim::GethCostModel>;
using TscVeeCycleObserver = SoftwareCycleObserver<sim::TscVeeCostModel>;

}  // namespace hardtape::hevm
