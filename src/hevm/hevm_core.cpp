#include "hevm/hevm_core.hpp"

#include "common/errors.hpp"

namespace hardtape::hevm {

namespace {

/// Emits one kOpcode trace event per retired instruction, stamped with the
/// core's simulated clock. Placed after the cycle observer in the chain so
/// sim_ns reflects retire time, not issue time.
class OpcodeTraceObserver : public evm::ExecutionObserver {
 public:
  OpcodeTraceObserver(obs::TraceRing& ring, const sim::SimClock& clock)
      : ring_(ring), clock_(clock) {}

  void on_step(const StepInfo& info) override {
    ring_.append(obs::TraceCategory::kOpcode, info.opcode, clock_.now_ns(), info.pc,
                 info.gas_left, static_cast<uint64_t>(info.depth));
  }

 private:
  obs::TraceRing& ring_;
  const sim::SimClock& clock_;
};

}  // namespace

void HevmCore::assign(const state::StateReader& base, evm::BlockContext block,
                      const crypto::AesKey128& session_key, uint64_t noise_seed) {
  if (busy()) throw UsageError("hevm core busy: bundles must queue");
  Session session;
  session.overlay = std::make_unique<state::OverlayState>(base);
  session.interpreter = std::make_unique<evm::Interpreter>(*session.overlay, std::move(block));
  session.interpreter->set_frame_memory_limit(config_.l2.l2_bytes / 2);
  session.interpreter->set_engine(config_.engine);
  session.cycles = std::make_unique<HevmCycleObserver>(clock_, config_.cost);
  memlayer::MemLayerConfig l2 = config_.l2;
  l2.rng_seed = noise_seed;
  if (config_.trace != nullptr) {
    l2.trace = config_.trace;  // pager swap events share this core's ring
    l2.clock = &clock_;
  }
  session.memory = std::make_unique<memlayer::MemLayerObserver>(config_.l1, l2, session_key);
  session.tracer = std::make_unique<evm::StepTracer>();
  session.chain = std::make_unique<evm::ObserverChain>();
  session.chain->add(session.cycles.get());
  session.chain->add(session.memory.get());
  session.tracer->set_record_steps(config_.record_steps);
  session.chain->add(session.tracer.get());
  if (config_.trace != nullptr) {
    session.opcode_trace = std::make_unique<OpcodeTraceObserver>(*config_.trace, clock_);
    session.chain->add(session.opcode_trace.get());
  }
  for (auto* obs : extra_observers_) session.chain->add(obs);
  session.interpreter->set_observer(session.chain.get());
  session_ = std::move(session);
  clock_.advance_ns(config_.cost.reset_ns());  // clear all on-chip memories
}

state::OverlayState& HevmCore::overlay() {
  if (!session_) throw UsageError("hevm core idle");
  return *session_->overlay;
}

BundleReport HevmCore::execute_bundle(const std::vector<evm::Transaction>& txs) {
  if (!session_) throw UsageError("hevm core idle: assign() first");
  Session& s = *session_;

  BundleReport report;
  const sim::SimStopwatch bundle_watch(clock_);

  for (const evm::Transaction& tx : txs) {
    if (report.aborted) break;
    sim::SimStopwatch tx_watch(clock_);
    s.tracer->clear();

    // Capture pre-tx write set size so per-tx storage writes can be diffed.
    const auto writes_before = s.overlay->storage_writes();

    const evm::TxResult result = s.interpreter->execute_transaction(tx);

    TxTraceReport trace;
    trace.status = result.status;
    trace.return_data = result.output;
    trace.gas_used = result.gas_used;
    trace.create_address = result.create_address;
    trace.logs = s.tracer->logs();
    if (config_.record_steps) trace.steps = s.tracer->steps();
    // Per-tx storage modifications: cumulative writes minus what was already
    // there before this transaction.
    for (const auto& write : s.overlay->storage_writes()) {
      const bool pre_existing =
          std::find_if(writes_before.begin(), writes_before.end(), [&](const auto& w) {
            return w.addr == write.addr && w.key == write.key && w.value == write.value;
          }) != writes_before.end();
      if (!pre_existing) trace.storage_writes.push_back(write);
    }
    trace.sim_time_ns = tx_watch.elapsed_ns();

    if (result.status == evm::VmStatus::kMemoryOverflow ||
        s.memory->stats().memory_overflows > 0) {
      report.aborted = true;  // §IV-B: the bundle is treated as an attack
    }
    report.transactions.push_back(std::move(trace));
  }

  report.final_balances = s.overlay->balance_changes();
  report.sim_time_ns = bundle_watch.elapsed_ns();
  report.instructions = s.cycles->instructions();
  report.memory_stats = s.memory->stats();
  report.swap_events = s.memory->pager().swap_events();
  return report;
}

void HevmCore::release() {
  // Hardware reset: all on-chip memories cleared, overlay (the temporary
  // world-state modifications) discarded.
  session_.reset();
  extra_observers_.clear();
}

}  // namespace hardtape::hevm
