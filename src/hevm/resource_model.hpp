// FPGA resource model of one HEVM instance (paper Section VI-A).
//
// The prototype's Vivado utilization report: 103388 LUTs, 37104 FFs and
// 509 KB of BlockRAM per HEVM on an XCZU15EV, whose fabric offers 341k LUTs,
// 682k FFs and ~26.2 Mb of BRAM — making LUTs the bottleneck and capping the
// chip at three HEVMs. We model utilization per sub-block so the resource
// bench can print the same table and the ablations can resize sub-blocks.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace hardtape::hevm {

struct SubBlockResources {
  std::string_view name;
  uint32_t luts;
  uint32_t ffs;
  uint32_t bram_kb;
};

struct ResourceModel {
  /// Per-sub-block breakdown summing to the paper's reported totals.
  static std::vector<SubBlockResources> hevm_blocks();

  struct Totals {
    uint32_t luts = 0;
    uint32_t ffs = 0;
    uint32_t bram_kb = 0;
  };
  static Totals hevm_total();

  /// XCZU15EV fabric capacity.
  struct Chip {
    uint32_t luts = 341280;
    uint32_t ffs = 682560;
    uint32_t bram_kb = 3276;  // ~26.2 Mb
  };

  /// HEVMs per chip given the bottleneck resource (paper: 3).
  static int max_hevms_per_chip(const Chip& chip);
  static int max_hevms_per_chip() { return max_hevms_per_chip(Chip{}); }

  /// Hypervisor memory budget (paper: 156 KB binary + 92 KB stack = 248 KB
  /// fitting the 256 KB on-chip memory). Measured values come from the
  /// hypervisor module; these are the paper's reference numbers.
  struct HypervisorMemory {
    uint32_t binary_kb = 156;
    uint32_t stack_kb = 92;
    uint32_t budget_kb = 256;
    uint32_t total_kb() const { return binary_kb + stack_kb; }
    bool fits() const { return total_kb() <= budget_kb; }
  };
};

}  // namespace hardtape::hevm
