// Software baselines sharing the semantic interpreter: the "Geth role"
// (paper Figure 4 baseline) and the TSC-VEE comparator (Figure 5).
//
// Both execute the same evm::Interpreter as the HEVM — only the attached
// cost model differs — which is exactly how the paper frames them: Geth is
// the functional reference ("the HEVM should be functionally equivalent to
// the interpreter module of Geth"), and trace equality between roles is the
// §VI-B correctness methodology.
#pragma once

#include "evm/interpreter.hpp"
#include "hevm/cycle_observer.hpp"
#include "sim/clock.hpp"

namespace hardtape::hevm {

struct BaselineResult {
  evm::TxResult tx;
  uint64_t sim_time_ns = 0;
  std::vector<evm::StepTracer::Step> steps;
};

/// Executes transactions with a software cost model. Template on the model
/// so Geth and TSC-VEE share the implementation.
template <typename CostModel>
class SoftwareRole {
 public:
  SoftwareRole(const state::StateReader& base, evm::BlockContext block,
               sim::SimClock& clock, const CostModel& model = {},
               uint64_t tx_overhead_ns = 0, bool record_steps = false)
      : overlay_(base),
        interpreter_(overlay_, std::move(block)),
        clock_(clock),
        cycles_(clock, model),
        tx_overhead_ns_(tx_overhead_ns),
        record_steps_(record_steps) {
    chain_.add(&cycles_);
    if (record_steps_) chain_.add(&tracer_);
    interpreter_.set_observer(&chain_);
  }

  BaselineResult execute(const evm::Transaction& tx) {
    const sim::SimStopwatch watch(clock_);
    tracer_.clear();
    clock_.advance_ns(tx_overhead_ns_);
    BaselineResult result;
    result.tx = interpreter_.execute_transaction(tx);
    if (record_steps_) result.steps = tracer_.steps();
    result.sim_time_ns = watch.elapsed_ns();
    return result;
  }

  state::OverlayState& overlay() { return overlay_; }
  evm::Interpreter& interpreter() { return interpreter_; }

 private:
  state::OverlayState overlay_;
  evm::Interpreter interpreter_;
  sim::SimClock& clock_;
  SoftwareCycleObserver<CostModel> cycles_;
  evm::StepTracer tracer_;
  evm::ObserverChain chain_;
  uint64_t tx_overhead_ns_;
  bool record_steps_;
};

class GethRole : public SoftwareRole<sim::GethCostModel> {
 public:
  GethRole(const state::StateReader& base, evm::BlockContext block, sim::SimClock& clock,
           bool record_steps = false, sim::GethCostModel model = {})
      : SoftwareRole(base, std::move(block), clock, model, model.ns_tx_overhead,
                     record_steps) {}
};

class TscVeeRole : public SoftwareRole<sim::TscVeeCostModel> {
 public:
  TscVeeRole(const state::StateReader& base, evm::BlockContext block, sim::SimClock& clock,
             bool record_steps = false)
      : SoftwareRole(base, std::move(block), clock, sim::TscVeeCostModel{}, 0,
                     record_steps) {}
};

}  // namespace hardtape::hevm
