#include "hevm/resource_model.hpp"

namespace hardtape::hevm {

std::vector<SubBlockResources> ResourceModel::hevm_blocks() {
  // Decomposition of the paper's totals (103388 LUTs / 37104 FFs / 509 KB
  // BRAM) over the architecture of Section IV: the 256-bit datapath
  // dominates LUTs; BRAM is layer-1 (109 KB: 32 stack + 64 code + 3x4
  // memory-likes + 1 frame state) + layer-2 (384 KB of the 1 MB is BRAM,
  // the rest UltraRAM) + tracer buffers.
  return {
      {"256-bit ALU + mul/div unit", 38420, 9120, 0},
      {"instruction decode + pipeline ctrl", 12876, 6240, 0},
      {"layer-1 caches (stack/code/memlikes)", 9240, 4560, 109},
      {"layer-2 call-stack manager", 14850, 7410, 384},
      {"Keccak-256 core", 10120, 3200, 8},
      {"gas + frame-state unit", 6882, 2974, 4},
      {"tracer", 5250, 1800, 4},
      {"A.E.DMA interface + exception unit", 5750, 1800, 0},
  };
}

ResourceModel::Totals ResourceModel::hevm_total() {
  Totals totals;
  for (const auto& block : hevm_blocks()) {
    totals.luts += block.luts;
    totals.ffs += block.ffs;
    totals.bram_kb += block.bram_kb;
  }
  return totals;
}

int ResourceModel::max_hevms_per_chip(const Chip& chip) {
  const Totals per_hevm = hevm_total();
  const int by_luts = static_cast<int>(chip.luts / per_hevm.luts);
  const int by_ffs = static_cast<int>(chip.ffs / per_hevm.ffs);
  const int by_bram = static_cast<int>(chip.bram_kb / per_hevm.bram_kb);
  return std::min(by_luts, std::min(by_ffs, by_bram));
}

}  // namespace hardtape::hevm
