// HevmCore: one dedicated hardware EVM instance (paper Sections I, IV-B).
//
// "Dedicated" is the security design: each core owns an isolated layer-1/2
// memory set and is exclusively assigned to at most one user's bundle per
// session — no context switches, no shared-hardware side channels (threat
// A2). The core bundles the semantic interpreter with the 3-layer memory
// model, the pipeline cycle model, and the tracer; release() models the
// hardware reset that clears all on-chip memories (Fig. 3 step 10).
#pragma once

#include <memory>
#include <optional>

#include "evm/interpreter.hpp"
#include "evm/trace.hpp"
#include "hevm/cycle_observer.hpp"
#include "memlayer/observer.hpp"
#include "sim/clock.hpp"

namespace hardtape::hevm {

/// Per-transaction trace returned to the user (Fig. 3 step 9: ReturnData,
/// gas cost, balances transferred, storage modifications).
struct TxTraceReport {
  evm::VmStatus status = evm::VmStatus::kSuccess;
  Bytes return_data;
  uint64_t gas_used = 0;
  Address create_address{};
  std::vector<state::OverlayState::StorageWrite> storage_writes;
  std::vector<evm::LogEntry> logs;
  std::vector<evm::StepTracer::Step> steps;  ///< populated when record_steps
  uint64_t sim_time_ns = 0;                  ///< HEVM time for this tx
};

struct BundleReport {
  std::vector<TxTraceReport> transactions;
  std::vector<std::pair<Address, u256>> final_balances;  ///< net changes
  uint64_t sim_time_ns = 0;
  uint64_t instructions = 0;
  memlayer::MemLayerStats memory_stats;
  std::vector<memlayer::SwapEvent> swap_events;
  bool aborted = false;  ///< Memory Overflow Error ended the bundle early
};

class HevmCore {
 public:
  struct Config {
    sim::HevmCostModel cost{};
    memlayer::L1Config l1{};
    memlayer::MemLayerConfig l2{};
    bool record_steps = false;  ///< step-level traces (§VI-B comparisons)
    /// Execution engine for the semantic interpreter. The HEVM always
    /// attaches its cost-model observer chain, so kFast here runs the
    /// decoded per-opcode mode: faster dispatch, bit-identical event
    /// streams, unchanged cycle accounting (DESIGN.md §14).
    evm::EngineKind engine = evm::EngineKind::kReference;
    /// Optional obs tracing: per-opcode retire events from this core, plus
    /// the layer-2 pager's swap events (the ring is threaded into the
    /// MemLayerConfig at assign()). Null = tracing off, zero overhead.
    obs::TraceRing* trace = nullptr;
  };

  HevmCore(int core_id, sim::SimClock& clock, Config config)
      : core_id_(core_id), clock_(clock), config_(config) {}
  HevmCore(int core_id, sim::SimClock& clock)
      : HevmCore(core_id, clock, Config{}) {}

  int core_id() const { return core_id_; }
  bool busy() const { return session_.has_value(); }

  /// Exclusively assigns this core to a user session. The session key seals
  /// layer-3 pages. Throws UsageError when the core is busy (the Hypervisor
  /// must queue instead — Fig. 3 step 3).
  void assign(const state::StateReader& base, evm::BlockContext block,
              const crypto::AesKey128& session_key, uint64_t noise_seed);

  /// Runs a bundle start-to-finish. The core stalls on every off-chip
  /// interaction (no context switch), so the returned sim time is the full
  /// occupancy of the core.
  BundleReport execute_bundle(const std::vector<evm::Transaction>& txs);

  /// Extra observer spliced into the chain (e.g. the service layer's query
  /// timing hook); set before execute_bundle.
  void add_observer(evm::ExecutionObserver* observer) { extra_observers_.push_back(observer); }

  /// Resets the core to idle and clears all on-chip state (step 10).
  void release();

  /// The overlay of the active session (for inspecting pre-execution
  /// results in tests; never persisted).
  state::OverlayState& overlay();

 private:
  struct Session {
    std::unique_ptr<state::OverlayState> overlay;
    std::unique_ptr<evm::Interpreter> interpreter;
    std::unique_ptr<HevmCycleObserver> cycles;
    std::unique_ptr<memlayer::MemLayerObserver> memory;
    std::unique_ptr<evm::StepTracer> tracer;
    std::unique_ptr<evm::ExecutionObserver> opcode_trace;  ///< set when tracing
    std::unique_ptr<evm::ObserverChain> chain;
  };

  int core_id_;
  sim::SimClock& clock_;
  Config config_;
  std::optional<Session> session_;
  std::vector<evm::ExecutionObserver*> extra_observers_;
};

}  // namespace hardtape::hevm
