#include "faults/fault_plan.hpp"

#include <algorithm>

namespace hardtape::faults {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kOramRead: return "oram-read";
    case FaultSite::kOramWrite: return "oram-write";
    case FaultSite::kChannelFrame: return "channel-frame";
    case FaultSite::kNodeFetch: return "node-fetch";
  }
  return "unknown";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTamper: return "tamper";
    case FaultKind::kStaleProof: return "stale-proof";
    case FaultKind::kDuplicateFrame: return "duplicate-frame";
    case FaultKind::kReorderFrame: return "reorder-frame";
  }
  return "unknown";
}

namespace {

/// The kinds an adversary can express at each interface.
struct WeightedKind {
  FaultKind kind;
  double weight;
};

std::vector<WeightedKind> kinds_for(FaultSite site, const FaultPlanConfig& c) {
  switch (site) {
    case FaultSite::kOramRead:
      return {{FaultKind::kDrop, c.weight_drop},
              {FaultKind::kDelay, c.weight_delay},
              {FaultKind::kTamper, c.weight_tamper}};
    case FaultSite::kOramWrite:
      return {{FaultKind::kDrop, c.weight_drop}, {FaultKind::kDelay, c.weight_delay}};
    case FaultSite::kChannelFrame:
      return {{FaultKind::kDrop, c.weight_drop},
              {FaultKind::kTamper, c.weight_tamper},
              {FaultKind::kDuplicateFrame, c.weight_duplicate},
              {FaultKind::kReorderFrame, c.weight_reorder}};
    case FaultSite::kNodeFetch:
      return {{FaultKind::kStaleProof, c.weight_stale_proof}};
  }
  return {};
}

uint64_t mix(uint64_t seed, FaultSite site, uint64_t stream, uint64_t op) {
  uint64_t h = seed;
  h ^= (static_cast<uint64_t>(site) + 1) * 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h ^= stream * 0x94d049bb133111ebull;
  h = (h ^ (h >> 27)) * 0xff51afd7ed558ccdull;
  h ^= op + 0x2545f4914f6cdd1dull;
  return h ^ (h >> 31);
}

}  // namespace

FaultDecision FaultPlan::decide(FaultSite site, uint64_t stream, uint64_t op) {
  FaultDecision decision;
  bool forced = false;
  {
    std::lock_guard lock(mu_);
    const auto it = forced_.find({static_cast<uint8_t>(site), stream, op});
    if (it != forced_.end()) {
      decision = it->second;
      forced = true;
    }
  }
  if (!forced) {
    if (config_.fault_rate <= 0.0) return decision;
    // One DRBG per decision, keyed purely by (seed, site, stream, op):
    // thread interleaving cannot perturb any draw.
    Random rng(mix(config_.seed, site, stream, op));
    if (rng.uniform_double() >= config_.fault_rate) return decision;

    const auto kinds = kinds_for(site, config_);
    double total = 0;
    for (const auto& k : kinds) total += k.weight;
    if (total <= 0) return decision;
    double draw = rng.uniform_double() * total;
    for (const auto& k : kinds) {
      draw -= k.weight;
      if (draw <= 0) {
        decision.kind = k.kind;
        break;
      }
    }
    if (decision.kind == FaultKind::kNone) decision.kind = kinds.back().kind;
    if (decision.kind == FaultKind::kDelay) {
      decision.delay_ns = rng.uniform_range(config_.min_delay_ns, config_.max_delay_ns);
    }
  }
  if (decision.kind == FaultKind::kNone) return decision;

  injected_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  trace_.push_back({site, stream, op, decision.kind, decision.delay_ns});
  return decision;
}

void FaultPlan::force(FaultSite site, uint64_t stream, uint64_t op,
                      FaultDecision decision) {
  std::lock_guard lock(mu_);
  forced_[{static_cast<uint8_t>(site), stream, op}] = decision;
}

std::vector<FaultEvent> FaultPlan::trace() const {
  std::vector<FaultEvent> out;
  {
    std::lock_guard lock(mu_);
    out = trace_;
  }
  std::sort(out.begin(), out.end(), [](const FaultEvent& a, const FaultEvent& b) {
    return std::tie(a.site, a.stream, a.op) < std::tie(b.site, b.stream, b.op);
  });
  return out;
}

namespace {
thread_local void* g_fault_scope = nullptr;  // FaultScope::State*
}

FaultScope::FaultScope(uint64_t stream) {
  state_.stream = stream;
  state_.prev = static_cast<State*>(g_fault_scope);
  g_fault_scope = &state_;
}

FaultScope::~FaultScope() { g_fault_scope = state_.prev; }

bool FaultScope::active() { return g_fault_scope != nullptr; }

uint64_t FaultScope::stream() {
  const auto* state = static_cast<State*>(g_fault_scope);
  return state != nullptr ? state->stream : 0;
}

uint64_t FaultScope::next_op(FaultSite site) {
  auto* state = static_cast<State*>(g_fault_scope);
  if (state == nullptr) return 0;
  return state->ops[static_cast<size_t>(site)]++;
}

}  // namespace hardtape::faults
