#include "faults/faulty_link.hpp"

namespace hardtape::faults {

std::vector<hypervisor::SecureMessage> FaultyLink::transmit(
    hypervisor::SecureMessage frame) {
  std::vector<hypervisor::SecureMessage> delivered;
  const FaultDecision decision =
      plan_.decide(FaultSite::kChannelFrame, stream_, op_++);

  // A frame held back for reordering rides out with the NEXT frame, after it.
  switch (decision.kind) {
    case FaultKind::kDrop:
      break;  // lost in flight
    case FaultKind::kTamper:
      if (!frame.ciphertext.empty()) {
        frame.ciphertext[0] ^= 0x01;
      } else {
        frame.tag[0] ^= 0x01;  // empty body: break the tag instead
      }
      delivered.push_back(std::move(frame));
      break;
    case FaultKind::kDuplicateFrame:
      delivered.push_back(frame);
      delivered.push_back(std::move(frame));
      break;
    case FaultKind::kReorderFrame:
      if (held_.has_value()) {
        // Already holding one: release it now, hold the new frame.
        delivered.push_back(std::move(*held_));
        held_ = std::move(frame);
      } else {
        held_ = std::move(frame);
      }
      return delivered;  // nothing (or only the prior frame) comes out yet
    default:
      delivered.push_back(std::move(frame));
      break;
  }
  if (held_.has_value()) {
    delivered.push_back(std::move(*held_));
    held_.reset();
  }
  return delivered;
}

std::vector<hypervisor::SecureMessage> FaultyLink::flush() {
  std::vector<hypervisor::SecureMessage> out;
  if (held_.has_value()) {
    out.push_back(std::move(*held_));
    held_.reset();
  }
  return out;
}

}  // namespace hardtape::faults
