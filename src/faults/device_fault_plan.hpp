// Deterministic device-fault injection for the dedicated-HEVM pool.
//
// The paper's deployment is a FLEET of dedicated pre-executor chips, and no
// fleet is unkillable: devices die mid-session, return garbage while
// claiming health, or flap in and out of service. This module is the seeded
// adversary for that fault domain, a sibling of FaultPlan (the untrusted-
// boundary adversary) with the same purity discipline: every decision is a
// pure function of (plan seed, device id, per-device binding index) — never
// of wall time, thread interleaving, or call order. The front door consults
// it once per binding placed on a device, so two runs with the same seed and
// the same dispatch sequence inject the same device faults at the same sim
// instants, at any worker count.
//
// Fail-closed consequence model (paper §III: sealed session state dies with
// the device): a struck binding never yields a usable result. The front door
// must re-bind and RE-EXECUTE the bundle at attempt+1 — resuming a dead
// device's session in the clear is not a thing this system can express.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace hardtape::faults {

/// How a device fails the binding it is currently serving.
enum class DeviceFaultKind : uint8_t {
  kNone = 0,
  /// Abrupt death mid-binding: the device stops at kill_frac of the way
  /// through the session and never comes back. The binding is cut at the
  /// death instant; the session's sealed state is unrecoverable.
  kCrash,
  /// Sticky failure: the device runs the session to its end but the result
  /// fails attestation/health checks. The device stays up (and keeps lying),
  /// which is what the per-device breaker exists to catch.
  kSticky,
  /// Flap: dies like kCrash but rejoins the pool after downtime_ns of
  /// simulated repair time — the churn case that punishes naive failover.
  kFlap,
};

const char* to_string(DeviceFaultKind kind);

struct DeviceFaultDecision {
  DeviceFaultKind kind = DeviceFaultKind::kNone;
  /// kCrash/kFlap: fraction of the binding's duration served before death,
  /// in [0, 1). Drawn uniformly unless forced.
  double kill_frac = 0.0;
  /// kFlap only: simulated downtime before the device rejoins.
  uint64_t downtime_ns = 0;
};

struct DeviceFaultPlanConfig {
  uint64_t seed = 1;
  /// Per-binding probabilities, evaluated independently in this order.
  double crash_rate = 0.0;
  double sticky_rate = 0.0;
  double flap_rate = 0.0;
  /// Flap downtime is uniform in [min, max], simulated time.
  uint64_t min_downtime_ns = 20'000'000;
  uint64_t max_downtime_ns = 200'000'000;
};

struct DeviceFaultEvent {
  uint32_t device = 0;
  uint64_t binding_index = 0;
  DeviceFaultKind kind = DeviceFaultKind::kNone;
  friend bool operator==(const DeviceFaultEvent&,
                         const DeviceFaultEvent&) = default;
};

/// Thread-safe, deterministic device-fault oracle (see contract above).
class DeviceFaultPlan {
 public:
  explicit DeviceFaultPlan(DeviceFaultPlanConfig config) : config_(config) {}

  /// The fate of binding number `binding_index` placed on `device` (indices
  /// count bindings per device, starting at 0). Pure in its arguments plus
  /// the seed; non-kNone decisions are recorded in the trace.
  DeviceFaultDecision decide(uint32_t device, uint64_t binding_index);

  /// Test hook: pin the fate of one (device, binding_index) regardless of
  /// rates — lets a test kill exactly one device at exactly one binding.
  void force(uint32_t device, uint64_t binding_index,
             DeviceFaultDecision decision);

  /// Every injected (non-kNone) fault so far, sorted by (device, index) so
  /// traces compare equal across runs with different interleavings.
  std::vector<DeviceFaultEvent> trace() const;
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  const DeviceFaultPlanConfig& config() const { return config_; }

 private:
  DeviceFaultPlanConfig config_;
  mutable std::mutex mu_;  ///< guards trace_ and forced_
  std::vector<DeviceFaultEvent> trace_;
  std::map<std::pair<uint32_t, uint64_t>, DeviceFaultDecision> forced_;
  std::atomic<uint64_t> injected_{0};
};

}  // namespace hardtape::faults
