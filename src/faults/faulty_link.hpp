// FaultyLink: the SP-controlled Ethernet between a user and the Hypervisor.
//
// Frames (hypervisor::SecureMessage) pass through the FaultPlan one at a
// time; the link may drop a frame, tamper its ciphertext, deliver it twice,
// or swap it with its successor. transmit() returns the frames that actually
// come out of the wire, in delivery order — the receiver's SecureChannel
// then demonstrates the paper's fail-closed properties: a tampered frame is
// kAuthFailed (and must NOT advance the receive sequence), a duplicate or
// reordered frame is kRejected by the anti-replay sequence check.
#pragma once

#include <optional>
#include <vector>

#include "faults/fault_plan.hpp"
#include "hypervisor/channel.hpp"

namespace hardtape::faults {

class FaultyLink {
 public:
  FaultyLink(FaultPlan& plan, uint64_t stream) : plan_(plan), stream_(stream) {}

  /// Feeds one frame into the link; returns what the receiver actually gets
  /// (possibly nothing — a drop, or a frame held back for reordering).
  std::vector<hypervisor::SecureMessage> transmit(hypervisor::SecureMessage frame);

  /// Frames still buffered inside the link (a held reordered frame). Call
  /// after the last transmit to model the link going quiet.
  std::vector<hypervisor::SecureMessage> flush();

  uint64_t frames_sent() const { return op_; }

 private:
  FaultPlan& plan_;
  uint64_t stream_;
  uint64_t op_ = 0;
  std::optional<hypervisor::SecureMessage> held_;  ///< reorder buffer
};

}  // namespace hardtape::faults
