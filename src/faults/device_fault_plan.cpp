#include "faults/device_fault_plan.hpp"

#include <algorithm>
#include <tuple>

#include "common/random.hpp"

namespace hardtape::faults {

const char* to_string(DeviceFaultKind kind) {
  switch (kind) {
    case DeviceFaultKind::kNone: return "none";
    case DeviceFaultKind::kCrash: return "crash";
    case DeviceFaultKind::kSticky: return "sticky";
    case DeviceFaultKind::kFlap: return "flap";
  }
  return "unknown";
}

namespace {

/// Same splitmix-style finalizer family as FaultPlan's mix(): the decision
/// key is (seed, device, binding index) and nothing else.
uint64_t mix(uint64_t seed, uint32_t device, uint64_t binding_index) {
  uint64_t h = seed;
  h ^= (static_cast<uint64_t>(device) + 1) * 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h ^= binding_index * 0x94d049bb133111ebull;
  h = (h ^ (h >> 27)) * 0xff51afd7ed558ccdull;
  return h ^ (h >> 31);
}

}  // namespace

DeviceFaultDecision DeviceFaultPlan::decide(uint32_t device,
                                            uint64_t binding_index) {
  DeviceFaultDecision decision;
  bool forced = false;
  {
    std::lock_guard lock(mu_);
    const auto it = forced_.find({device, binding_index});
    if (it != forced_.end()) {
      decision = it->second;
      forced = true;
    }
  }
  if (!forced) {
    const double any_rate =
        config_.crash_rate + config_.sticky_rate + config_.flap_rate;
    if (any_rate <= 0.0) return decision;
    // One DRBG per decision, keyed purely by (seed, device, index): thread
    // interleaving cannot perturb any draw.
    Random rng(mix(config_.seed, device, binding_index));
    const double draw = rng.uniform_double();
    if (draw < config_.crash_rate) {
      decision.kind = DeviceFaultKind::kCrash;
    } else if (draw < config_.crash_rate + config_.sticky_rate) {
      decision.kind = DeviceFaultKind::kSticky;
    } else if (draw < any_rate) {
      decision.kind = DeviceFaultKind::kFlap;
    } else {
      return decision;
    }
    if (decision.kind != DeviceFaultKind::kSticky) {
      decision.kill_frac = rng.uniform_double();
    }
    if (decision.kind == DeviceFaultKind::kFlap) {
      decision.downtime_ns =
          rng.uniform_range(config_.min_downtime_ns, config_.max_downtime_ns);
    }
  }
  if (decision.kind == DeviceFaultKind::kNone) return decision;

  injected_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  trace_.push_back({device, binding_index, decision.kind});
  return decision;
}

void DeviceFaultPlan::force(uint32_t device, uint64_t binding_index,
                            DeviceFaultDecision decision) {
  std::lock_guard lock(mu_);
  forced_[{device, binding_index}] = decision;
}

std::vector<DeviceFaultEvent> DeviceFaultPlan::trace() const {
  std::vector<DeviceFaultEvent> out;
  {
    std::lock_guard lock(mu_);
    out = trace_;
  }
  std::sort(out.begin(), out.end(),
            [](const DeviceFaultEvent& a, const DeviceFaultEvent& b) {
              return std::tie(a.device, a.binding_index) <
                     std::tie(b.device, b.binding_index);
            });
  return out;
}

}  // namespace hardtape::faults
