#include "faults/faulty_oram.hpp"

namespace hardtape::faults {

oram::AccessAttempt FaultyOram::try_read(const oram::BlockId& id) {
  if (!FaultScope::active()) return backend_.try_read(id);
  const FaultDecision decision = plan_.decide(
      FaultSite::kOramRead, FaultScope::stream(), FaultScope::next_op(FaultSite::kOramRead));
  switch (decision.kind) {
    case FaultKind::kDrop:
      return oram::AccessAttempt{Status::kTimeout, std::nullopt, 0};
    case FaultKind::kTamper:
      return oram::AccessAttempt{Status::kAuthFailed, std::nullopt, 0};
    case FaultKind::kDelay: {
      oram::AccessAttempt attempt = backend_.try_read(id);
      attempt.sim_delay_ns += decision.delay_ns;
      return attempt;
    }
    default:
      return backend_.try_read(id);
  }
}

oram::AccessAttempt FaultyOram::try_write(const oram::BlockId& id, BytesView data) {
  if (!FaultScope::active()) return backend_.try_write(id, data);
  const FaultDecision decision = plan_.decide(
      FaultSite::kOramWrite, FaultScope::stream(), FaultScope::next_op(FaultSite::kOramWrite));
  switch (decision.kind) {
    case FaultKind::kDrop:
      // The write ack is lost; the write itself is modeled as not applied so
      // a retry re-issues it against consistent state.
      return oram::AccessAttempt{Status::kTimeout, std::nullopt, 0};
    case FaultKind::kDelay: {
      oram::AccessAttempt attempt = backend_.try_write(id, data);
      attempt.sim_delay_ns += decision.delay_ns;
      return attempt;
    }
    default:
      return backend_.try_write(id, data);
  }
}

}  // namespace hardtape::faults
