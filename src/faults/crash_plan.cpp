#include "faults/crash_plan.hpp"

#include "common/random.hpp"
#include "faults/fault_plan.hpp"

namespace hardtape::faults {

namespace {

durability::CrashConfig base_config(const CrashPlanConfig& config, Random& rng) {
  durability::CrashConfig out;
  out.resolve_seed = rng.uniform(~0ull - 1) + 1;  // never 0 (disarm sentinel-adjacent)
  out.unsynced_survival = config.unsynced_survival;
  out.allow_torn_tail = config.allow_torn_tail;
  out.allow_reorder = config.allow_reorder;
  return out;
}

}  // namespace

durability::CrashConfig CrashPlan::spec(uint64_t trial, uint32_t attempt,
                                        uint64_t total_ops) const {
  Random rng(config_.seed ^ fault_stream(trial, attempt));
  durability::CrashConfig out = base_config(config_, rng);
  out.crash_at_op = total_ops == 0 ? 1 : 1 + rng.uniform(total_ops);
  return out;
}

durability::CrashConfig CrashPlan::spec_at(uint64_t trial, uint32_t attempt,
                                           uint64_t crash_at_op) const {
  Random rng(config_.seed ^ fault_stream(trial, attempt));
  durability::CrashConfig out = base_config(config_, rng);
  out.crash_at_op = crash_at_op;
  return out;
}

}  // namespace hardtape::faults
