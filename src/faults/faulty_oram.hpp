// FaultyOram: the malicious SP's ORAM server + link, as an OramAccessor.
//
// Sits between the OramFrontend (recovery layer) and the real OramClient.
// For every access inside a FaultScope it consults the FaultPlan:
//  - kDrop:   the response never comes back — surfaced as kTimeout, and the
//             backend is NOT touched (the request is modeled as lost in
//             flight, so a later retry still finds consistent state);
//  - kDelay:  the real access happens, but the response carries extra
//             simulated latency. If that exceeds the frontend's request
//             timeout, the frontend treats it as a drop and retries;
//  - kTamper: the response arrives with a broken authentication tag —
//             surfaced as kAuthFailed without touching the backend (what
//             the OramClient would report after a failed open_slot).
// Outside a FaultScope (ORAM install, attestation, tests' direct access)
// every call passes straight through.
#pragma once

#include "faults/fault_plan.hpp"
#include "oram/path_oram.hpp"

namespace hardtape::faults {

class FaultyOram : public oram::OramAccessor {
 public:
  FaultyOram(oram::OramAccessor& backend, FaultPlan& plan)
      : backend_(backend), plan_(plan) {}

  std::optional<Bytes> read(const oram::BlockId& id) override {
    return backend_.read(id);
  }
  void write(const oram::BlockId& id, BytesView data) override {
    backend_.write(id, data);
  }

  oram::AccessAttempt try_read(const oram::BlockId& id) override;
  oram::AccessAttempt try_write(const oram::BlockId& id, BytesView data) override;

 private:
  oram::OramAccessor& backend_;
  FaultPlan& plan_;
};

}  // namespace hardtape::faults
