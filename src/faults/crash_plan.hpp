// Seeded crash-point planning: power loss under the fault_stream discipline.
//
// A crash trial is identified by (plan seed, trial index, attempt), and the
// whole crash — which filesystem operation dies, and how the unsynced bytes
// resolve — is a pure function of that identity, via the same
// fault_stream() mix the transient-fault layer uses. Re-running trial 17
// therefore reproduces the same torn journal byte-for-byte, which is what
// makes a failing crash-sweep entry a unit test instead of an anecdote.
#pragma once

#include <cstdint>

#include "durability/vfs.hpp"

namespace hardtape::faults {

struct CrashPlanConfig {
  uint64_t seed = 1;
  double unsynced_survival = 0.5;
  bool allow_torn_tail = true;
  bool allow_reorder = true;
};

class CrashPlan {
 public:
  explicit CrashPlan(CrashPlanConfig config) : config_(config) {}

  /// A CrashConfig aimed at a uniformly chosen op in [1, total_ops],
  /// deterministic in (seed, trial, attempt). `attempt` distinguishes
  /// repeated drills of the same trial, mirroring the engine's retry
  /// numbering.
  durability::CrashConfig spec(uint64_t trial, uint32_t attempt,
                               uint64_t total_ops) const;

  /// A CrashConfig pinned at a specific, already-chosen op (the targeted
  /// crash points: journal tail, checkpoint tmp write, epoch commit). Only
  /// the resolution seed is drawn from the stream.
  durability::CrashConfig spec_at(uint64_t trial, uint32_t attempt,
                                  uint64_t crash_at_op) const;

 private:
  CrashPlanConfig config_;
};

}  // namespace hardtape::faults
