// Deterministic adversarial fault injection across the untrusted boundary.
//
// HarDTAPE's threat model (paper §III) is a MALICIOUS service provider: the
// SP owns the ORAM server, the Ethernet link, and the node feed. A faithful
// robustness story therefore needs an adversary that can drop, delay,
// tamper, and replay at every one of those interfaces — and needs each such
// run to be exactly reproducible, or a fault-triggered bug can never be
// debugged. This module is that adversary.
//
// Reproducibility contract: a FaultPlan decision depends ONLY on
// (plan seed, site, stream, op index) — never on wall time, thread
// interleaving, or call order. Streams are logical request sources (the
// engine uses one per (bundle, attempt), see fault_stream()); op indices
// count per (site, stream) inside a FaultScope. Two runs with the same seed
// and the same per-stream operation sequences produce the same fault trace
// and — because all recovery waiting is simulated — the same outcomes,
// regardless of how the worker pool interleaved.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/random.hpp"

namespace hardtape::faults {

/// Where a fault strikes. Each site models one SP-controlled interface.
enum class FaultSite : uint8_t {
  kOramRead = 0,   ///< ORAM server response to a path read
  kOramWrite = 1,  ///< ORAM server ack of a path write
  kChannelFrame = 2,  ///< a SecureMessage frame on the Ethernet link
  kNodeFetch = 3,  ///< a node response consumed at block-sync time
};
inline constexpr size_t kFaultSiteCount = 4;

enum class FaultKind : uint8_t {
  kNone = 0,
  kDrop,            ///< response never arrives (the caller's timeout fires)
  kDelay,           ///< response arrives late, by a seeded SimClock amount
  kTamper,          ///< response arrives with a broken AES-GCM/HMAC tag
  kStaleProof,      ///< node response carries a corrupted Merkle proof
  kDuplicateFrame,  ///< link delivers the frame twice (anti-replay probe)
  kReorderFrame,    ///< link swaps the frame with its successor
};

const char* to_string(FaultSite site);
const char* to_string(FaultKind kind);

struct FaultPlanConfig {
  uint64_t seed = 1;
  /// Per-operation fault probability, applied at every site.
  double fault_rate = 0.0;
  /// Relative weights of the kinds drawn once a fault fires. Only the kinds
  /// applicable at the struck site participate (e.g. frames can duplicate,
  /// ORAM responses cannot); a zero weight disables a kind.
  double weight_drop = 1.0;
  double weight_delay = 1.0;
  double weight_tamper = 1.0;
  double weight_stale_proof = 1.0;
  double weight_duplicate = 1.0;
  double weight_reorder = 1.0;
  /// Injected delays are uniform in [min, max], simulated time.
  uint64_t min_delay_ns = 1'000'000;
  uint64_t max_delay_ns = 20'000'000;
};

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  uint64_t delay_ns = 0;  ///< meaningful only for kDelay
};

struct FaultEvent {
  FaultSite site;
  uint64_t stream;
  uint64_t op;
  FaultKind kind;
  uint64_t delay_ns;
  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Thread-safe, deterministic fault oracle (see the contract above).
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config) : config_(config) {}

  /// The decision for operation `op` of `stream` at `site`. Pure in its
  /// arguments plus the seed; also records non-kNone decisions in the trace.
  FaultDecision decide(FaultSite site, uint64_t stream, uint64_t op);

  /// Test hook: pin the decision for one (site, stream, op) regardless of
  /// rate — lets a test strike exactly one session with exactly one fault.
  void force(FaultSite site, uint64_t stream, uint64_t op, FaultDecision decision);

  /// Every injected (non-kNone) fault so far, sorted by (site, stream, op)
  /// so traces compare equal across runs with different interleavings.
  std::vector<FaultEvent> trace() const;
  uint64_t injected() const { return injected_.load(std::memory_order_relaxed); }
  const FaultPlanConfig& config() const { return config_; }

 private:
  FaultPlanConfig config_;
  mutable std::mutex mu_;  ///< guards trace_ and forced_
  std::vector<FaultEvent> trace_;
  std::map<std::tuple<uint8_t, uint64_t, uint64_t>, FaultDecision> forced_;
  std::atomic<uint64_t> injected_{0};
};

/// Binds the calling thread to a fault stream (one pre-execution session).
/// Wrappers (FaultyOram) read the current stream and draw per-site op
/// indices from here; outside any scope no faults are injected, which keeps
/// setup paths (ORAM install, attestation) fault-free by construction.
class FaultScope {
 public:
  explicit FaultScope(uint64_t stream);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  static bool active();
  static uint64_t stream();
  /// Post-incremented per-(site, stream) operation index.
  static uint64_t next_op(FaultSite site);

 private:
  struct State {
    uint64_t stream = 0;
    std::array<uint64_t, kFaultSiteCount> ops{};
    State* prev = nullptr;
  };
  State state_;
};

/// The engine's stream id for (bundle, attempt): requeued bundles must see a
/// fresh — but still deterministic — fault schedule, or a transient fault
/// would deterministically recur on every retry and bounded requeue could
/// never succeed.
inline uint64_t fault_stream(uint64_t bundle_id, uint32_t attempt) {
  return (bundle_id + 1) * 0x9e3779b97f4a7c15ull + attempt;
}

}  // namespace hardtape::faults
