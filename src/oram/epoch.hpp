// State-root epoch tagging for installed ORAM pages (PR 4).
//
// The ORAM holds exactly one version of the world state at a time, but a
// live chain keeps moving underneath it: every (re-)synchronization installs
// pages verified against one specific trusted state root. The registry pins
// that relationship chip-side:
//  - each sync pass opens an *epoch* — a monotone counter bound to the
//    (state root, block number) the pass verified against;
//  - every page the pass installs is tagged with that epoch (a page that a
//    delta sync did NOT touch keeps its older tag: it was verified at an
//    earlier epoch and is still byte-identical in the newer state);
//  - the *store epoch* is the most recently completed pass. A session
//    pinned to epoch E is only sound while the store epoch is E — every
//    page it reads then carries a tag <= E, i.e. data verified against a
//    root on E's canonical history.
// The engine checks store_epoch() at session start and end: a mismatch
// means the store was re-synced mid-session and the outcome must be thrown
// away and re-executed (never reported) — the page tags make that audit a
// cheap integer compare instead of a per-read proof.
//
// Thread safety: all methods lock; begin/commit are called from the (single)
// resync path, tag() from the installer, readers from anywhere.
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/errors.hpp"
#include "oram/path_oram.hpp"

namespace hardtape::oram {

class EpochRegistry;

/// Observer for epoch transitions, implemented by the durability layer so
/// every begin/commit/abort lands in the write-ahead journal in the same
/// order the registry applied it. Callbacks run with the registry lock held
/// (that IS the ordering guarantee) — implementations must not call back
/// into the registry.
class EpochListener {
 public:
  virtual ~EpochListener() = default;
  virtual void on_epoch_begin(uint64_t epoch, const H256& root, uint64_t block_number) = 0;
  virtual void on_epoch_commit(uint64_t epoch) = 0;
  virtual void on_epoch_abort(uint64_t epoch) = 0;
};

class EpochRegistry {
 public:
  struct Pin {
    uint64_t epoch = 0;
    H256 state_root{};
    uint64_t block_number = 0;
  };

  /// Registers the (single) transition observer; nullptr detaches.
  void set_listener(EpochListener* listener) {
    std::lock_guard lock(mu_);
    listener_ = listener;
  }

  /// Opens epoch store_epoch()+1 for `root`. Pages tagged until commit()
  /// belong to it. Only one pass may be open at a time.
  uint64_t begin(const H256& root, uint64_t block_number) {
    std::lock_guard lock(mu_);
    if (open_) throw UsageError("epoch: previous sync pass not committed");
    open_ = true;
    pending_ = Pin{history_.empty() ? 0 : history_.back().epoch + 1, root, block_number};
    staged_tags_.clear();
    if (listener_) listener_->on_epoch_begin(pending_.epoch, root, block_number);
    return pending_.epoch;
  }

  /// Tags one installed page with the open pass's epoch. The tag is STAGED:
  /// it becomes visible to readers at commit(), and abort() discards it —
  /// so `max_page_epoch() <= store_epoch()` holds at every instant, even
  /// mid-pass, and an aborted pass releases every page it touched.
  void tag(const BlockId& page) {
    std::lock_guard lock(mu_);
    if (!open_) throw UsageError("epoch: tag() outside a sync pass");
    staged_tags_.push_back(page);
    ++pages_tagged_;
  }

  /// Completes the open pass: the staged tags land and the store epoch
  /// advances to it. Calling commit() (or abort()) with no pass open is a
  /// usage error — a double commit means the caller lost track of the pass
  /// lifecycle and its journal would disagree with the registry.
  void commit() {
    std::lock_guard lock(mu_);
    if (!open_) throw UsageError("epoch: commit() outside a sync pass");
    open_ = false;
    for (const BlockId& page : staged_tags_) tags_[page] = pending_.epoch;
    staged_tags_.clear();
    history_.push_back(pending_);
    if (listener_) listener_->on_epoch_commit(pending_.epoch);
  }
  void abort() {
    std::lock_guard lock(mu_);
    if (!open_) throw UsageError("epoch: abort() outside a sync pass");
    open_ = false;
    staged_tags_.clear();  // released: the pass never happened
    if (listener_) listener_->on_epoch_abort(pending_.epoch);
  }

  /// Re-seeds a pristine registry from recovered durable state (committed
  /// history + page tags). Warm-restart only: rejects a registry that has
  /// already begun life, and never fires the listener — the journal already
  /// contains these transitions.
  void restore(std::vector<Pin> history,
               std::unordered_map<BlockId, uint64_t, U256Hasher> tags) {
    std::lock_guard lock(mu_);
    if (open_ || !history_.empty() || !tags_.empty()) {
      throw UsageError("epoch: restore() on a non-pristine registry");
    }
    history_ = std::move(history);
    tags_ = std::move(tags);
    pages_tagged_ = tags_.size();
  }

  /// The last committed pass (epoch 0 exists only after the initial sync).
  std::optional<Pin> current() const {
    std::lock_guard lock(mu_);
    if (history_.empty()) return std::nullopt;
    return history_.back();
  }
  uint64_t store_epoch() const {
    std::lock_guard lock(mu_);
    return history_.empty() ? 0 : history_.back().epoch;
  }
  std::optional<Pin> at(uint64_t epoch) const {
    std::lock_guard lock(mu_);
    for (const Pin& pin : history_) {
      if (pin.epoch == epoch) return pin;
    }
    return std::nullopt;
  }

  /// Install-epoch of one page (nullopt = never installed). A reader pinned
  /// to epoch E must only ever observe tags <= E; a larger tag is a
  /// staleness violation (the store outran the session).
  std::optional<uint64_t> page_epoch(const BlockId& page) const {
    std::lock_guard lock(mu_);
    const auto it = tags_.find(page);
    if (it == tags_.end()) return std::nullopt;
    return it->second;
  }
  /// Largest tag currently in the store — used by the soak harness to audit
  /// that no page claims an epoch newer than the committed store epoch.
  uint64_t max_page_epoch() const {
    std::lock_guard lock(mu_);
    uint64_t max_epoch = 0;
    for (const auto& [page, epoch] : tags_) max_epoch = std::max(max_epoch, epoch);
    return max_epoch;
  }
  uint64_t pages_tagged() const {
    std::lock_guard lock(mu_);
    return pages_tagged_;
  }
  size_t distinct_pages() const {
    std::lock_guard lock(mu_);
    return tags_.size();
  }

  /// Committed history snapshot, oldest first (for checkpointing).
  std::vector<Pin> history() const {
    std::lock_guard lock(mu_);
    return history_;
  }
  /// Committed page-tag snapshot (for checkpointing).
  std::unordered_map<BlockId, uint64_t, U256Hasher> tags() const {
    std::lock_guard lock(mu_);
    return tags_;
  }

 private:
  mutable std::mutex mu_;
  bool open_ = false;
  Pin pending_{};
  std::vector<Pin> history_;
  std::vector<BlockId> staged_tags_;  ///< open pass's tags, not yet visible
  std::unordered_map<BlockId, uint64_t, U256Hasher> tags_;
  uint64_t pages_tagged_ = 0;
  EpochListener* listener_ = nullptr;
};

}  // namespace hardtape::oram
