// ShardedOramStore: a partitioned oblivious store — the "ORAM wall" breaker.
//
// PR 1-5 funneled every concurrent session through ONE Path ORAM tree behind
// ONE mutex, so wall throughput stayed flat (~51 bundles/s) while sim
// throughput scaled 7x (ROADMAP item 1). Following the partition designs the
// paper's related work points at (Pyramid-style subtree partitioning for
// trusted processors; Tale-of-Two-Trees' split trees for blockchain state),
// this store replaces the single tree with a forest of S independently
// locked Path ORAM subtrees. Concretely it is the SAME structure as one big
// tree whose top log2(S) levels hold no blocks: shard s's root is the s-th
// node at depth log2(S) of the conceptual global tree, and a "global leaf"
// is (shard index || shard-local leaf).
//
// Obliviousness argument (audited by obs::audit_shard_obliviousness and the
// bench_obs per-shard gate):
//  - Every access draws the block's NEXT shard uniformly at random, exactly
//    like Path ORAM redraws the leaf. The adversary therefore observes, per
//    access, one (shard, leaf) pair that is uniform over shards and uniform
//    over that shard's leaves — i.i.d. across accesses, independent of which
//    block was touched. This is precisely the "global uniform leaf" of the
//    unsharded tree, split into its top bits (shard) and low bits (leaf).
//  - The cross-shard handoff is trusted-side only: the departing shard's
//    walk removes the block from its stash/position map (a normal-looking
//    path access), and the destination shard ADOPTS it straight into its
//    stash with no server traffic (OramClient::adopt). Migration therefore
//    costs zero extra walks and leaks nothing — the block surfaces in the
//    destination tree through ordinary evictions of later accesses there.
//  - pin_shard_assignment disables the redraw (a block stays on its first
//    shard forever). That re-introduces exactly the leak sharding threatens:
//    hot pages hammer one fixed shard and the shard-visit histogram goes
//    lumpy. It exists as the audit's ablation — the per-shard auditor must
//    FAIL it — and must never be enabled in deployment configs.
//
// Concurrency contract: accesses to DISTINCT block ids are thread-safe and
// proceed in parallel when they land on distinct shards (per-shard walk
// locks; the shared maps are touched only briefly). Concurrent accesses to
// the SAME id must be serialized by the caller — an access migrates the id's
// shard assignment, so a racing twin could consult a stale assignment. The
// OramFrontend's per-block gate provides exactly that serialization (and
// turns the second request into a rider of the first).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.hpp"
#include "oram/path_oram.hpp"

namespace hardtape::oram {

struct ShardedOramConfig {
  /// Number of independently locked subtrees; power of two. 1 degenerates to
  /// a single tree (same adversary view as the unsharded store).
  size_t shard_count = 8;
  /// Geometry of EACH subtree (see partition() to derive it from a
  /// whole-store geometry).
  OramConfig shard{};
  /// ABLATION ONLY: keep every block on the shard it first landed on instead
  /// of redrawing per access. Leaks the shard-visit histogram (see file
  /// comment); exists so bench_obs can prove the per-shard auditor catches it.
  bool pin_shard_assignment = false;
  /// Optional per-walk tracing (TraceCode::kOramShardAccess, a=shard,
  /// b=shard-local leaf) for the per-partition obliviousness audit.
  obs::TraceRing* trace = nullptr;
};

/// A forest of Path ORAM subtrees behind one OramAccessor face. Thread-safe
/// for distinct ids (see file comment for the same-id contract).
class ShardedOramStore : public OramAccessor {
 public:
  static constexpr uint32_t kNoShard = ~uint32_t{0};

  ShardedOramStore(ShardedOramConfig config, const crypto::AesKey128& oram_key,
                   uint64_t rng_seed, SealMode mode = SealMode::kAesGcm);

  /// Derives the per-shard geometry from a whole-store one: capacity is
  /// split across shards with 2x multinomial slack (block->shard assignment
  /// is a random split, so shards must absorb imbalance), block size, bucket
  /// capacity and stash bound carry over unchanged.
  static ShardedOramConfig partition(const OramConfig& total, size_t shard_count);

  // --- OramAccessor ---
  std::optional<Bytes> read(const BlockId& id) override;
  void write(const BlockId& id, BytesView data) override;
  AccessAttempt try_read(const BlockId& id) override;
  AccessAttempt try_write(const BlockId& id, BytesView data) override;

  /// Checkpoint restore into a FRESH store: pages are partitioned across
  /// shards by fresh uniform draws, then bulk-loaded per shard (one sealed
  /// tree install each — the warm-restart fast path, as in the single tree).
  void bulk_restore(const std::vector<std::pair<BlockId, Bytes>>& pages);

  /// Durability journaling point, forwarded to every shard client: fires per
  /// write()-install with (id, padded data, shard-local leaf). Migration
  /// does not fire it (a cross-shard move is not a logical store mutation).
  void set_install_hook(std::function<void(const BlockId&, BytesView, uint64_t)> hook);

  // --- topology (for the frontend's per-shard accounting) ---
  size_t shard_count() const { return shards_.size(); }
  /// The shard currently holding `id`, or kNoShard for an unknown id.
  uint32_t shard_of(const BlockId& id) const;
  /// Leaves per shard (uniform across shards by construction).
  size_t leaf_count() const;
  const OramServer& server(size_t shard) const;
  size_t block_count() const;
  bool stash_overflowed() const;

  // --- statistics & the adversary's view ---
  struct ShardStats {
    uint64_t walks = 0;           ///< path accesses served by this subtree
    uint64_t migrations_in = 0;   ///< blocks adopted from other shards
    uint64_t stall_ns = 0;        ///< wall ns callers waited for the walk lock
    std::vector<uint64_t> stall_samples;  ///< per-walk lock waits (for p50/p99)
    size_t stash_size = 0;
    size_t stash_high_water = 0;
    size_t inbox_high_water = 0;  ///< deepest pending-handoff backlog
  };
  struct Stats {
    std::vector<ShardStats> shards;
    uint64_t total_walks = 0;
    uint64_t total_migrations = 0;
    /// High-water of walks in flight simultaneously (proof of parallelism on
    /// multicore hosts; always >= 1 after any access).
    uint64_t max_concurrent_walks = 0;
  };
  Stats snapshot() const;

  /// Every walk as (shard, shard-local leaf) in global observation order —
  /// what the SP sees. Merged from per-shard logs by a global sequence
  /// number, so no shared append bottleneck sits on the walk path.
  std::vector<std::pair<uint32_t, uint64_t>> observed_walks() const;
  void clear_observations();

 private:
  struct Shard {
    std::unique_ptr<OramServer> server;
    std::unique_ptr<OramClient> client;
    std::mutex walk_mu;  ///< serializes path walks on this subtree
    /// Blocks handed off from other shards, adopted at the next walk.
    /// Guarded by inbox_mu; never held while taking any other lock.
    std::mutex inbox_mu;
    std::vector<std::pair<BlockId, Bytes>> inbox;
    // Stats and the walk log are written under walk_mu.
    uint64_t walks = 0;
    uint64_t migrations_in = 0;
    uint64_t stall_ns = 0;
    std::vector<uint64_t> stall_samples;
    size_t inbox_high_water = 0;
    std::vector<std::pair<uint64_t, uint64_t>> walk_log;  ///< (global seq, leaf)
  };

  /// Current shard of `id` plus the freshly drawn destination shard for this
  /// access (equal to the current one under pin_shard_assignment).
  std::pair<uint32_t, uint32_t> route(const BlockId& id);
  /// Runs `fn(client)` under the shard's walk lock, timing the lock wait,
  /// draining the handoff inbox first and logging the observed leaf.
  void walk(uint32_t shard, const std::function<void(OramClient&)>& fn);
  void drain_inbox(Shard& shard);
  void hand_off(const BlockId& id, Bytes data, uint32_t to_shard);

  ShardedOramConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex map_mu_;  ///< guards shard_of_ and map_rng_
  std::unordered_map<BlockId, uint32_t, U256Hasher> shard_of_;
  Random map_rng_;
  std::atomic<uint64_t> walk_seq_{0};
  std::atomic<uint64_t> walks_in_flight_{0};
  std::atomic<uint64_t> max_concurrent_walks_{0};
};

}  // namespace hardtape::oram
