#include "oram/slot_store.hpp"

#include <cstring>

namespace hardtape::oram {

namespace {

u256 bucket_page_id(size_t bucket) { return u256{static_cast<uint64_t>(bucket)}; }

void put_u32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace

// ---------------------------------------------------------------------------
// RamSlotStore
// ---------------------------------------------------------------------------

void RamSlotStore::read_bucket(size_t bucket, std::vector<SealedSlot>& out) {
  const size_t base = bucket * z_;
  for (size_t z = 0; z < z_; ++z) out.push_back(slots_[base + z]);
}

void RamSlotStore::write_bucket(size_t bucket, SealedSlot* slots) {
  const size_t base = bucket * z_;
  for (size_t z = 0; z < z_; ++z) slots_[base + z] = std::move(slots[z]);
}

// ---------------------------------------------------------------------------
// PagedSlotStore
// ---------------------------------------------------------------------------

PagedSlotStore::PagedSlotStore(durability::SimFs& fs,
                               pagedstore::PagedStoreConfig config, size_t z,
                               size_t min_pool_pages)
    : store_(fs,
             [&] {
               config.buffer_pool_pages =
                   std::max(config.buffer_pool_pages, min_pool_pages);
               return std::move(config);
             }()),
      z_(z) {
  // A fresh server is a fresh tree: leftover segments under this prefix (a
  // previous engine incarnation on the same fs) are dead spill space, never
  // recovery input — restore arrives via bulk_restore with fresh leaves.
  const std::string prefix = store_.config().name + ".seg-";
  for (const std::string& path : fs.list()) {
    if (path.starts_with(prefix) &&
        path != pagedstore::PagedStore::segment_path(store_.config().name,
                                                     store_.current_segment())) {
      fs.remove(path);
    }
  }
}

Bytes PagedSlotStore::serialize_bucket(const SealedSlot* slots) const {
  Bytes payload;
  size_t total = 0;
  for (size_t z = 0; z < z_; ++z) total += 12 + 16 + 4 + slots[z].ciphertext.size();
  payload.reserve(total);
  for (size_t z = 0; z < z_; ++z) {
    const SealedSlot& slot = slots[z];
    payload.insert(payload.end(), slot.nonce.begin(), slot.nonce.end());
    payload.insert(payload.end(), slot.tag.begin(), slot.tag.end());
    put_u32(payload, static_cast<uint32_t>(slot.ciphertext.size()));
    append(payload, slot.ciphertext);
  }
  return payload;
}

void PagedSlotStore::deserialize_bucket(BytesView payload,
                                        std::vector<SealedSlot>& out) const {
  size_t off = 0;
  for (size_t z = 0; z < z_; ++z) {
    SealedSlot slot;
    if (payload.size() - off < 12 + 16 + 4) {
      throw IntegrityError("oram slot store: truncated bucket page");
    }
    std::memcpy(slot.nonce.data(), payload.data() + off, 12);
    std::memcpy(slot.tag.data(), payload.data() + off + 12, 16);
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(payload[off + 28 + i]) << (8 * i);
    }
    off += 32;
    if (payload.size() - off < len) {
      throw IntegrityError("oram slot store: truncated bucket page");
    }
    slot.ciphertext.assign(payload.begin() + static_cast<ptrdiff_t>(off),
                           payload.begin() + static_cast<ptrdiff_t>(off + len));
    off += len;
    out.push_back(std::move(slot));
  }
  if (off != payload.size()) {
    throw IntegrityError("oram slot store: trailing bytes in bucket page");
  }
}

void PagedSlotStore::read_bucket(size_t bucket, std::vector<SealedSlot>& out) {
  const u256 id = bucket_page_id(bucket);
  if (!store_.contains(id)) {
    // Never-written bucket: Z empty-ciphertext slots, exactly what a fresh
    // RAM tree holds (every access already treats those as dummies).
    out.resize(out.size() + z_);
    return;
  }
  auto page = store_.pin(id);
  deserialize_bucket(page.data(), out);
}

void PagedSlotStore::write_bucket(size_t bucket, SealedSlot* slots) {
  store_.put(bucket_page_id(bucket), serialize_bucket(slots));
}

void PagedSlotStore::begin_walk(const std::vector<size_t>& buckets) {
  walk_pins_.clear();
  walk_pins_.reserve(buckets.size());
  for (const size_t bucket : buckets) {
    const u256 id = bucket_page_id(bucket);
    // Never-written buckets have no page yet; they materialize when the walk
    // rewrites the path (write_bucket pins-and-releases through put).
    if (store_.contains(id)) walk_pins_.push_back(store_.pin(id));
  }
}

}  // namespace hardtape::oram
