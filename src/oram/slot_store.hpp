// Backing array of the OramServer's bucket tree, behind an interface so the
// tree can live either in RAM (the seed behavior) or on checksummed pages
// under a bounded buffer pool (DESIGN.md §16).
//
// The paged backend maps ONE BUCKET to ONE PAGE: page id = bucket index,
// payload = the bucket's Z sealed slots serialized back to back. A path walk
// (read_path .. write_path) brackets its buckets with begin_walk/end_walk so
// their pages stay PINNED for the whole walk — eviction proceeds around an
// in-flight walk, and a pool too small for depth+1 pins fails closed with
// PoolExhaustedError instead of silently overcommitting. Torn or corrupt
// segment records surface as IntegrityError from the PagedStore page
// verifier — the same kIntegrity-class refusal a tampered slot seal gets.
//
// The slot store needs NO write-ahead log: the bucket tree is rebuilt on
// warm restart (OramClient::bulk_restore draws fresh leaves; positions are
// never carried across a crash), so its segments are spill space, never
// recovery input. The paged backend therefore wipes leftover files under its
// prefix at construction — a fresh server is a fresh tree.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "oram/path_oram.hpp"
#include "pagedstore/store.hpp"

namespace hardtape::oram {

/// Bucket-granular storage used by OramServer. Buckets hold exactly Z
/// slots; indices follow the server's heap layout. Not thread-safe (the
/// server's callers serialize walks).
class SlotStore {
 public:
  virtual ~SlotStore() = default;

  /// Appends bucket `bucket`'s Z slots to `out`, root-of-bucket order.
  virtual void read_bucket(size_t bucket, std::vector<SealedSlot>& out) = 0;
  /// Replaces bucket `bucket` with `slots[0..Z)`.
  virtual void write_bucket(size_t bucket, SealedSlot* slots) = 0;

  /// Pins the pages of an in-flight path walk until end_walk (or the next
  /// begin_walk). RAM backend: no-op.
  virtual void begin_walk(const std::vector<size_t>& buckets) { (void)buckets; }
  virtual void end_walk() {}

  /// Buffer-pool statistics; nullopt on the RAM backend.
  virtual std::optional<pagedstore::BufferPoolStats> pool_stats() const {
    return std::nullopt;
  }
};

/// The seed backend: a flat bucket-major vector, everything RAM-resident.
class RamSlotStore final : public SlotStore {
 public:
  RamSlotStore(size_t bucket_count, size_t z)
      : z_(z), slots_(bucket_count * z) {}

  void read_bucket(size_t bucket, std::vector<SealedSlot>& out) override;
  void write_bucket(size_t bucket, SealedSlot* slots) override;

 private:
  size_t z_;
  std::vector<SealedSlot> slots_;
};

/// Paged backend: buckets serialized onto PagedStore pages, RAM bounded by
/// the pool cap, overflow spilled to SimFs segments.
class PagedSlotStore final : public SlotStore {
 public:
  /// `config.buffer_pool_pages` is raised to `min_pool_pages` (the walk pin
  /// working set: depth+1 path buckets plus slack) when set lower.
  PagedSlotStore(durability::SimFs& fs, pagedstore::PagedStoreConfig config,
                 size_t z, size_t min_pool_pages);

  void read_bucket(size_t bucket, std::vector<SealedSlot>& out) override;
  void write_bucket(size_t bucket, SealedSlot* slots) override;
  void begin_walk(const std::vector<size_t>& buckets) override;
  void end_walk() override { walk_pins_.clear(); }
  std::optional<pagedstore::BufferPoolStats> pool_stats() const override {
    return store_.pool_stats();
  }

 private:
  Bytes serialize_bucket(const SealedSlot* slots) const;
  void deserialize_bucket(BytesView payload, std::vector<SealedSlot>& out) const;

  mutable pagedstore::PagedStore store_;
  size_t z_;
  std::vector<pagedstore::BufferPool::PageRef> walk_pins_;
};

}  // namespace hardtape::oram
