#include "oram/sharded.hpp"

#include <algorithm>
#include <chrono>

namespace hardtape::oram {

namespace {
uint64_t wall_ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

bool is_power_of_two(size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

ShardedOramConfig ShardedOramStore::partition(const OramConfig& total,
                                              size_t shard_count) {
  ShardedOramConfig config;
  config.shard_count = shard_count;
  config.shard = total;
  if (shard_count > 1) {
    // A uniform random block->shard split is multinomial, not exact: give
    // each subtree 2x slack so no shard's tree runs hot. (OramServer rounds
    // capacity up to a power of two anyway; slots stay empty until written.)
    config.shard.capacity =
        std::max<size_t>(64, (2 * total.capacity + shard_count - 1) / shard_count);
  }
  return config;
}

ShardedOramStore::ShardedOramStore(ShardedOramConfig config,
                                   const crypto::AesKey128& oram_key,
                                   uint64_t rng_seed, SealMode mode)
    : config_(config), map_rng_(rng_seed ^ 0x5a4d) {
  if (!is_power_of_two(config.shard_count)) {
    throw UsageError("oram: shard count must be a power of two");
  }
  shards_.reserve(config.shard_count);
  for (size_t s = 0; s < config.shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    OramConfig shard_config = config.shard;
    // Each subtree needs its own segment-file namespace on the shared fs.
    if (shard_config.backend == SlotBackend::kPaged) {
      shard_config.backing_name += "-s" + std::to_string(s);
    }
    shard->server = std::make_unique<OramServer>(shard_config);
    // Distinct deterministic RNG stream per subtree (leaf draws, seals).
    shard->client = std::make_unique<OramClient>(*shard->server, oram_key,
                                                 rng_seed ^ (0x9e3779b9ull * (s + 1)),
                                                 mode);
    shards_.push_back(std::move(shard));
  }
}

std::pair<uint32_t, uint32_t> ShardedOramStore::route(const BlockId& id) {
  std::lock_guard lock(map_mu_);
  const auto it = shard_of_.find(id);
  const uint32_t current = it == shard_of_.end() ? kNoShard : it->second;
  uint32_t next = static_cast<uint32_t>(map_rng_.uniform(shards_.size()));
  if (config_.pin_shard_assignment && current != kNoShard) next = current;
  return {current, next};
}

void ShardedOramStore::drain_inbox(Shard& shard) {
  // walk_mu is held. The inbox lock is leaf-level: taken only for the swap,
  // never while acquiring any other lock.
  std::vector<std::pair<BlockId, Bytes>> pending;
  {
    std::lock_guard lock(shard.inbox_mu);
    pending.swap(shard.inbox);
  }
  for (auto& [id, data] : pending) {
    shard.client->adopt(id, std::move(data));
    ++shard.migrations_in;
  }
}

void ShardedOramStore::walk(uint32_t shard_index,
                            const std::function<void(OramClient&)>& fn) {
  Shard& shard = *shards_[shard_index];
  const auto start = std::chrono::steady_clock::now();
  std::lock_guard lock(shard.walk_mu);
  const uint64_t stall = wall_ns_since(start);

  const uint64_t in_flight = walks_in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t seen = max_concurrent_walks_.load(std::memory_order_relaxed);
  while (in_flight > seen &&
         !max_concurrent_walks_.compare_exchange_weak(seen, in_flight,
                                                      std::memory_order_relaxed)) {
  }

  drain_inbox(shard);
  shard.stall_ns += stall;
  shard.stall_samples.push_back(stall);
  ++shard.walks;
  const size_t observed_before = shard.server->observed_leaves().size();
  try {
    fn(*shard.client);
  } catch (...) {
    walks_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    throw;
  }
  // One client op is one path access; log whatever the server observed so
  // the per-shard audit sees exactly the adversary's view.
  const auto& leaves = shard.server->observed_leaves();
  for (size_t i = observed_before; i < leaves.size(); ++i) {
    const uint64_t seq = walk_seq_.fetch_add(1, std::memory_order_relaxed);
    shard.walk_log.emplace_back(seq, leaves[i]);
    if (config_.trace != nullptr) {
      config_.trace->append(obs::TraceCategory::kOram,
                            static_cast<uint16_t>(obs::TraceCode::kOramShardAccess),
                            /*sim_ns=*/0, shard_index, leaves[i]);
    }
  }
  walks_in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

void ShardedOramStore::hand_off(const BlockId& id, Bytes data, uint32_t to_shard) {
  // Push the block into the destination's inbox BEFORE publishing the new
  // assignment, so the next access routed there finds it at inbox drain.
  Shard& dest = *shards_[to_shard];
  {
    std::lock_guard lock(dest.inbox_mu);
    dest.inbox.emplace_back(id, std::move(data));
    dest.inbox_high_water = std::max(dest.inbox_high_water, dest.inbox.size());
  }
  std::lock_guard lock(map_mu_);
  shard_of_[id] = to_shard;
}

std::optional<Bytes> ShardedOramStore::read(const BlockId& id) {
  const auto [current, next] = route(id);
  std::optional<Bytes> result;
  if (current == kNoShard) {
    // Unknown id: a dummy access on the freshly drawn shard — same (shard,
    // leaf) distribution as any hit, so absence stays indistinguishable.
    walk(next, [&](OramClient& client) { result = client.read(id); });
    return result;
  }
  if (next == current) {
    walk(current, [&](OramClient& client) { result = client.read(id); });
    return result;
  }
  // Migrate: one normal-looking walk on the current shard removes the block;
  // the destination adopts it client-side (zero server traffic there).
  walk(current, [&](OramClient& client) { result = client.access_remove(id); });
  if (!result.has_value()) {
    // The map said `current` held the block but its client disagreed: an
    // unserialized same-id race or trusted-state corruption. Fail closed.
    throw IntegrityError("oram: shard assignment inconsistent");
  }
  hand_off(id, *result, next);
  return result;
}

void ShardedOramStore::write(const BlockId& id, BytesView data) {
  // Writes happen in the serial sync/install phases, not in the oblivious
  // query stream, and must land exactly where the durability hook journals
  // them — so they never migrate: a known block is updated in place, a new
  // block lands on a fresh uniform shard.
  const auto [current, next] = route(id);
  const uint32_t target = current != kNoShard ? current : next;
  walk(target, [&](OramClient& client) { client.write(id, data); });
  if (current == kNoShard) {
    std::lock_guard lock(map_mu_);
    shard_of_[id] = target;
  }
}

AccessAttempt ShardedOramStore::try_read(const BlockId& id) {
  try {
    return AccessAttempt{Status::kOk, read(id), 0};
  } catch (const IntegrityError&) {
    return AccessAttempt{Status::kAuthFailed, std::nullopt, 0};
  }
}

AccessAttempt ShardedOramStore::try_write(const BlockId& id, BytesView data) {
  try {
    write(id, data);
    return AccessAttempt{};
  } catch (const IntegrityError&) {
    return AccessAttempt{Status::kAuthFailed, std::nullopt, 0};
  }
}

void ShardedOramStore::bulk_restore(
    const std::vector<std::pair<BlockId, Bytes>>& pages) {
  std::lock_guard map_lock(map_mu_);
  if (!shard_of_.empty()) {
    throw UsageError("oram: bulk_restore requires a fresh store");
  }
  // Fresh uniform shard per page — assignments are never carried across a
  // crash, mirroring the leaf policy of OramClient::bulk_restore.
  std::vector<std::vector<std::pair<BlockId, Bytes>>> split(shards_.size());
  for (const auto& page : pages) {
    const auto shard = static_cast<uint32_t>(map_rng_.uniform(shards_.size()));
    split[shard].push_back(page);
    shard_of_[page.first] = shard;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard lock(shards_[s]->walk_mu);
    shards_[s]->client->bulk_restore(split[s]);
  }
}

void ShardedOramStore::set_install_hook(
    std::function<void(const BlockId&, BytesView, uint64_t)> hook) {
  for (auto& shard : shards_) shard->client->set_install_hook(hook);
}

uint32_t ShardedOramStore::shard_of(const BlockId& id) const {
  std::lock_guard lock(map_mu_);
  const auto it = shard_of_.find(id);
  return it == shard_of_.end() ? kNoShard : it->second;
}

size_t ShardedOramStore::leaf_count() const { return shards_[0]->server->leaf_count(); }

const OramServer& ShardedOramStore::server(size_t shard) const {
  return *shards_[shard]->server;
}

size_t ShardedOramStore::block_count() const {
  std::lock_guard lock(map_mu_);
  return shard_of_.size();
}

bool ShardedOramStore::stash_overflowed() const {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->walk_mu);
    if (shard->client->stash_overflowed()) return true;
  }
  return false;
}

ShardedOramStore::Stats ShardedOramStore::snapshot() const {
  Stats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->walk_mu);
    ShardStats s;
    s.walks = shard->walks;
    s.migrations_in = shard->migrations_in;
    s.stall_ns = shard->stall_ns;
    s.stall_samples = shard->stall_samples;
    s.stash_size = shard->client->stash_size();
    s.stash_high_water = shard->client->stash_high_water();
    s.inbox_high_water = shard->inbox_high_water;
    stats.total_walks += s.walks;
    stats.total_migrations += s.migrations_in;
    stats.shards.push_back(std::move(s));
  }
  stats.max_concurrent_walks = max_concurrent_walks_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::pair<uint32_t, uint64_t>> ShardedOramStore::observed_walks() const {
  std::vector<std::pair<uint64_t, std::pair<uint32_t, uint64_t>>> merged;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard lock(shards_[s]->walk_mu);
    for (const auto& [seq, leaf] : shards_[s]->walk_log) {
      merged.push_back({seq, {static_cast<uint32_t>(s), leaf}});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<uint32_t, uint64_t>> out;
  out.reserve(merged.size());
  for (const auto& [seq, walk] : merged) out.push_back(walk);
  return out;
}

void ShardedOramStore::clear_observations() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->walk_mu);
    shard->walk_log.clear();
    shard->server->clear_observations();
  }
}

}  // namespace hardtape::oram
