#include "oram/recursive.hpp"

#include <cstring>

namespace hardtape::oram {

namespace {
const u256 kDummyId = ~u256{};

// Data blocks carry their current leaf in the sealed header (id || leaf ||
// data) so blocks swept up in transit keep a valid mapping without an extra
// map lookup.
Bytes make_plaintext(const u256& id, uint64_t leaf, BytesView data,
                     size_t block_size) {
  Bytes pt;
  pt.reserve(40 + block_size);
  append(pt, id.to_be_bytes_vec());
  for (int i = 0; i < 8; ++i) pt.push_back(static_cast<uint8_t>(leaf >> (8 * i)));
  append(pt, data);
  pt.resize(40 + block_size, 0);
  return pt;
}
}  // namespace

RecursiveOramClient::RecursiveOramClient(const RecursiveOramConfig& config,
                                         const crypto::AesKey128& oram_key,
                                         uint64_t rng_seed, SealMode mode)
    : config_(config),
      key_(oram_key),
      mode_(mode),
      rng_(rng_seed),
      data_server_(OramConfig{.block_size = config.block_size,
                              .bucket_capacity = config.bucket_capacity,
                              .capacity = config.capacity,
                              .max_stash_blocks = config.max_stash_blocks}),
      map_server_(OramConfig{
          .block_size = config.map_entries_per_block * 8,
          .bucket_capacity = config.bucket_capacity,
          .capacity = (config.capacity + config.map_entries_per_block - 1) /
                          config.map_entries_per_block +
                      1,
          .max_stash_blocks = config.max_stash_blocks}),
      map_client_(map_server_, oram_key, rng_seed ^ 0x3a9, mode) {}

// Swaps the map entry for `index` and returns the previous one. Exactly one
// map-ORAM access per data access (read-modify-write on the map block).
uint64_t RecursiveOramClient::map_entry_swap(uint64_t index, uint64_t new_entry) {
  const uint64_t map_index = index / config_.map_entries_per_block;
  const size_t offset = (index % config_.map_entries_per_block) * 8;
  uint64_t previous = 0;
  map_position_[map_index] = true;
  map_client_.read_modify_write(u256{map_index}, [&](std::optional<Bytes> block) {
    Bytes contents;
    if (block.has_value()) {
      contents = std::move(*block);
    } else {
      // Uninitialized map block: every entry gets a fresh random leaf.
      contents.resize(config_.map_entries_per_block * 8);
      for (size_t i = 0; i < config_.map_entries_per_block; ++i) {
        const uint64_t leaf = rng_.uniform(data_server_.leaf_count());
        std::memcpy(contents.data() + i * 8, &leaf, 8);
      }
    }
    std::memcpy(&previous, contents.data() + offset, 8);
    std::memcpy(contents.data() + offset, &new_entry, 8);
    return contents;
  });
  return previous;
}

std::optional<Bytes> RecursiveOramClient::read(uint64_t index) {
  if (index >= config_.capacity) throw UsageError("recursive oram: index out of range");
  const uint64_t new_leaf = rng_.uniform(data_server_.leaf_count());
  const uint64_t leaf = map_entry_swap(index, new_leaf) % data_server_.leaf_count();
  // Absent blocks are simply not found on the path: the access is uniform
  // either way (one map access + one data access).
  return data_access(index, leaf, new_leaf, nullptr);
}

void RecursiveOramClient::write(uint64_t index, BytesView data) {
  if (index >= config_.capacity) throw UsageError("recursive oram: index out of range");
  if (data.size() > config_.block_size) throw UsageError("recursive oram: block too large");
  Bytes padded(data.begin(), data.end());
  padded.resize(config_.block_size, 0);
  const uint64_t new_leaf = rng_.uniform(data_server_.leaf_count());
  const uint64_t leaf = map_entry_swap(index, new_leaf) % data_server_.leaf_count();
  data_access(index, leaf, new_leaf, &padded);
}

std::optional<Bytes> RecursiveOramClient::data_access(uint64_t index, uint64_t leaf,
                                                      uint64_t new_leaf,
                                                      const Bytes* new_data) {
  const auto path = data_server_.read_path(leaf);
  for (const SealedSlot& slot : path) {
    if (slot.ciphertext.empty()) continue;
    const auto pt = open_slot(mode_, key_, slot);
    if (!pt.has_value()) throw IntegrityError("recursive oram: authentication failed");
    const u256 slot_id = u256::from_be_bytes(BytesView{pt->data(), 32});
    if (slot_id == kDummyId) continue;
    const uint64_t id = slot_id.as_u64();
    if (data_stash_.contains(id)) continue;
    // The block header carries its current leaf, so transit blocks keep
    // their true mapping without an extra map lookup.
    uint64_t header_leaf = 0;
    std::memcpy(&header_leaf, pt->data() + 32, 8);
    StashEntry entry;
    entry.data.assign(pt->begin() + 40, pt->end());
    entry.leaf = (id == index) ? new_leaf : header_leaf;
    data_stash_[id] = std::move(entry);
  }

  std::optional<Bytes> result;
  auto it = data_stash_.find(index);
  if (it != data_stash_.end()) {
    result = it->second.data;
    it->second.leaf = new_leaf;
    if (new_data != nullptr) it->second.data = *new_data;
  } else if (new_data != nullptr) {
    data_stash_[index] = StashEntry{*new_data, new_leaf};
  }
  stash_high_water_ = std::max(stash_high_water_, data_stash_.size());

  evict_data_path(leaf);
  return result;
}

void RecursiveOramClient::evict_data_path(uint64_t leaf) {
  const size_t depth = data_server_.depth();
  const size_t z = config_.bucket_capacity;
  std::vector<SealedSlot> path((depth + 1) * z);
  for (size_t level_plus_1 = depth + 1; level_plus_1 > 0; --level_plus_1) {
    const size_t level = level_plus_1 - 1;
    size_t filled = 0;
    const uint64_t path_prefix = (data_server_.leaf_count() + leaf) >> (depth - level);
    for (auto it = data_stash_.begin(); it != data_stash_.end() && filled < z;) {
      const uint64_t block_prefix =
          (data_server_.leaf_count() + it->second.leaf) >> (depth - level);
      if (block_prefix == path_prefix) {
        const Bytes pt = make_plaintext(u256{it->first}, it->second.leaf,
                                        it->second.data, config_.block_size);
        path[level * z + filled] = seal_slot(mode_, key_, rng_, pt);
        ++filled;
        it = data_stash_.erase(it);
      } else {
        ++it;
      }
    }
    for (; filled < z; ++filled) {
      path[level * z + filled] = seal_slot(
          mode_, key_, rng_,
          make_plaintext(kDummyId, 0, BytesView{}, config_.block_size));
    }
  }
  data_server_.write_path(leaf, std::move(path));
}

}  // namespace hardtape::oram
