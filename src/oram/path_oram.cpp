#include "oram/path_oram.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "oram/slot_store.hpp"

namespace hardtape::oram {

namespace {

// Block ids are 32 bytes inside the sealed plaintext: id || data.
// The all-ones id marks a dummy slot.
const u256 kDummyId = ~u256{};

Bytes make_plaintext(const u256& id, BytesView data, size_t block_size) {
  Bytes pt;
  pt.reserve(32 + block_size);
  append(pt, id.to_be_bytes_vec());
  append(pt, data);
  pt.resize(32 + block_size, 0);
  return pt;
}

}  // namespace

SealedSlot seal_slot(SealMode mode, const crypto::AesKey128& key, Random& rng,
                     BytesView plaintext) {
  SealedSlot slot;
  rng.fill(slot.nonce.data(), slot.nonce.size());
  switch (mode) {
    case SealMode::kAesGcm: {
      crypto::GcmNonce nonce;
      std::memcpy(nonce.data(), slot.nonce.data(), nonce.size());
      auto result = crypto::aes_gcm_encrypt(key, nonce, plaintext, BytesView{});
      slot.ciphertext = std::move(result.ciphertext);
      std::memcpy(slot.tag.data(), result.tag.data(), slot.tag.size());
      return slot;
    }
    case SealMode::kChaChaHmac: {
      crypto::GcmNonce nonce;
      std::memcpy(nonce.data(), slot.nonce.data(), nonce.size());
      // ChaCha20 keystream XOR via the shared block function.
      std::array<uint32_t, 8> chacha_key{};
      std::memcpy(chacha_key.data(), key.data(), key.size());  // 128-bit key, rest zero
      std::array<uint32_t, 3> chacha_nonce{};
      std::memcpy(chacha_nonce.data(), nonce.data(), nonce.size());
      slot.ciphertext.assign(plaintext.begin(), plaintext.end());
      std::array<uint8_t, 64> keystream;
      for (size_t off = 0, counter = 1; off < slot.ciphertext.size(); off += 64, ++counter) {
        chacha20_block(chacha_key, static_cast<uint32_t>(counter), chacha_nonce, keystream);
        const size_t n = std::min<size_t>(64, slot.ciphertext.size() - off);
        for (size_t i = 0; i < n; ++i) slot.ciphertext[off + i] ^= keystream[i];
      }
      Bytes mac_input;
      append(mac_input, BytesView{slot.nonce.data(), slot.nonce.size()});
      append(mac_input, slot.ciphertext);
      const H256 mac = crypto::hmac_sha256(BytesView{key.data(), key.size()}, mac_input);
      std::memcpy(slot.tag.data(), mac.bytes.data(), slot.tag.size());
      return slot;
    }
  }
  throw UsageError("bad seal mode");
}

std::optional<Bytes> open_slot(SealMode mode, const crypto::AesKey128& key,
                               const SealedSlot& slot) {
  crypto::GcmNonce nonce;
  std::memcpy(nonce.data(), slot.nonce.data(), nonce.size());
  switch (mode) {
    case SealMode::kAesGcm: {
      crypto::GcmTag tag;
      std::memcpy(tag.data(), slot.tag.data(), tag.size());
      return crypto::aes_gcm_decrypt(key, nonce, slot.ciphertext, BytesView{}, tag);
    }
    case SealMode::kChaChaHmac: {
      Bytes mac_input;
      append(mac_input, BytesView{slot.nonce.data(), slot.nonce.size()});
      append(mac_input, slot.ciphertext);
      const H256 mac = crypto::hmac_sha256(BytesView{key.data(), key.size()}, mac_input);
      if (!ct_equal(BytesView{mac.bytes.data(), 16},
                    BytesView{slot.tag.data(), slot.tag.size()})) {
        return std::nullopt;
      }
      std::array<uint32_t, 8> chacha_key{};
      std::memcpy(chacha_key.data(), key.data(), key.size());
      std::array<uint32_t, 3> chacha_nonce{};
      std::memcpy(chacha_nonce.data(), nonce.data(), nonce.size());
      Bytes plaintext = slot.ciphertext;
      std::array<uint8_t, 64> keystream;
      for (size_t off = 0, counter = 1; off < plaintext.size(); off += 64, ++counter) {
        chacha20_block(chacha_key, static_cast<uint32_t>(counter), chacha_nonce, keystream);
        const size_t n = std::min<size_t>(64, plaintext.size() - off);
        for (size_t i = 0; i < n; ++i) plaintext[off + i] ^= keystream[i];
      }
      return plaintext;
    }
  }
  throw UsageError("bad seal mode");
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

OramServer::OramServer(const OramConfig& config) : config_(config) {
  if (config.capacity == 0) throw UsageError("oram: zero capacity");
  // Leaves sized so the tree holds `capacity` blocks with Z-slot buckets and
  // comfortable slack (standard Path ORAM: N leaves for N blocks suffices
  // when Z >= 4; we round capacity up to a power of two).
  leaf_count_ = 1;
  depth_ = 0;
  while (leaf_count_ < config.capacity) {
    leaf_count_ <<= 1;
    ++depth_;
  }
  switch (config.backend) {
    case SlotBackend::kRam:
      store_ = std::make_unique<RamSlotStore>(bucket_count(), config.bucket_capacity);
      break;
    case SlotBackend::kPaged: {
      if (config.backing_fs == nullptr) {
        throw UsageError("oram: paged slot backend requires backing_fs");
      }
      pagedstore::PagedStoreConfig ps;
      ps.name = config.backing_name;
      ps.buffer_pool_pages = config.buffer_pool_pages;
      ps.registry = config.registry;
      // Walk working set: every bucket of one path stays pinned from
      // read_path to write_path, plus slack for the rewrite's fetches.
      store_ = std::make_unique<PagedSlotStore>(*config.backing_fs, std::move(ps),
                                                config.bucket_capacity,
                                                /*min_pool_pages=*/2 * (depth_ + 1));
      break;
    }
  }
  if (store_ == nullptr) throw UsageError("oram: bad slot backend");
}

OramServer::~OramServer() = default;

std::vector<SealedSlot> OramServer::read_path(uint64_t leaf) {
  if (leaf >= leaf_count_) throw UsageError("oram: leaf out of range");
  observed_leaves_.push_back(leaf);
  ++access_count_;
  std::vector<size_t> buckets;
  buckets.reserve(depth_ + 1);
  for (size_t level = 0; level <= depth_; ++level) {
    buckets.push_back(bucket_index(leaf, level));
  }
  // The walk's pages stay pinned until write_path rewrites them (or the next
  // read_path supersedes the walk) — eviction proceeds around them.
  store_->begin_walk(buckets);
  std::vector<SealedSlot> out;
  out.reserve((depth_ + 1) * config_.bucket_capacity);
  for (const size_t bucket : buckets) store_->read_bucket(bucket, out);
  return out;
}

void OramServer::write_path(uint64_t leaf, std::vector<SealedSlot> slots) {
  if (leaf >= leaf_count_) throw UsageError("oram: leaf out of range");
  if (slots.size() != (depth_ + 1) * config_.bucket_capacity) {
    throw UsageError("oram: path shape mismatch");
  }
  for (size_t level = 0; level <= depth_; ++level) {
    store_->write_bucket(bucket_index(leaf, level),
                         slots.data() + level * config_.bucket_capacity);
  }
  store_->end_walk();
}

void OramServer::load_slots(std::vector<SealedSlot> slots) {
  if (slots.size() != bucket_count() * config_.bucket_capacity) {
    throw UsageError("oram: bulk load shape mismatch");
  }
  store_->end_walk();
  for (size_t bucket = 0; bucket < bucket_count(); ++bucket) {
    store_->write_bucket(bucket, slots.data() + bucket * config_.bucket_capacity);
  }
}

std::optional<pagedstore::BufferPoolStats> OramServer::slot_pool_stats() const {
  return store_->pool_stats();
}

uint64_t OramServer::bytes_per_access() const {
  const uint64_t slot_bytes = 12 + 16 + 32 + config_.block_size;
  return 2 * (depth_ + 1) * config_.bucket_capacity * slot_bytes;
}

uint64_t OramServer::storage_bytes() const {
  return bucket_count() * config_.bucket_capacity * (12 + 16 + 32 + config_.block_size);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

OramClient::OramClient(OramServer& server, const crypto::AesKey128& oram_key,
                       uint64_t rng_seed, SealMode mode)
    : server_(server), key_(oram_key), mode_(mode), rng_(rng_seed) {}

std::optional<Bytes> OramClient::read(const BlockId& id) {
  return access(id, nullptr);
}

void OramClient::write(const BlockId& id, BytesView data) {
  if (data.size() > server_.config().block_size) {
    throw UsageError("oram: block too large");
  }
  Bytes padded(data.begin(), data.end());
  padded.resize(server_.config().block_size, 0);
  access(id, &padded);
}

AccessAttempt OramClient::try_read(const BlockId& id) {
  try {
    return AccessAttempt{Status::kOk, read(id), 0};
  } catch (const IntegrityError&) {
    return AccessAttempt{Status::kAuthFailed, std::nullopt, 0};
  }
}

AccessAttempt OramClient::try_write(const BlockId& id, BytesView data) {
  try {
    write(id, data);
    return AccessAttempt{};
  } catch (const IntegrityError&) {
    return AccessAttempt{Status::kAuthFailed, std::nullopt, 0};
  }
}

std::optional<Bytes> OramClient::access_remove(const BlockId& id) {
  return access(id, nullptr, nullptr, /*remove=*/true);
}

void OramClient::adopt(const BlockId& id, Bytes data) {
  const size_t block_size = server_.config().block_size;
  if (data.size() > block_size) throw UsageError("oram: block too large");
  data.resize(block_size, 0);
  const uint64_t leaf = rng_.uniform(server_.leaf_count());
  position_[id] = leaf;
  stash_[id] = StashEntry{std::move(data), leaf};
  stash_high_water_ = std::max(stash_high_water_, stash_.size());
  if (stash_.size() > server_.config().max_stash_blocks) stash_overflowed_ = true;
}

std::optional<Bytes> OramClient::read_modify_write(
    const BlockId& id, const std::function<Bytes(std::optional<Bytes>)>& mutate) {
  return access(id, nullptr, &mutate);
}

void OramClient::bulk_restore(const std::vector<std::pair<BlockId, Bytes>>& pages) {
  if (!position_.empty() || !stash_.empty()) {
    throw UsageError("oram: bulk_restore requires a fresh client");
  }
  const size_t z = server_.config().bucket_capacity;
  const size_t depth = server_.depth();
  const size_t block_size = server_.config().block_size;
  const uint64_t leaf_count = server_.leaf_count();
  const size_t buckets = 2 * leaf_count - 1;

  // Plan placement locally: deepest non-full bucket on the page's (fresh)
  // path, stash as the overflow of last resort.
  std::vector<std::vector<const std::pair<BlockId, Bytes>*>> bucket_blocks(buckets);
  for (const auto& page : pages) {
    if (page.second.size() > block_size) throw UsageError("oram: block too large");
    const uint64_t leaf = rng_.uniform(leaf_count);
    position_[page.first] = leaf;
    bool placed = false;
    for (size_t level_plus_1 = depth + 1; level_plus_1 > 0 && !placed; --level_plus_1) {
      const size_t bucket = ((leaf_count + leaf) >> (depth - (level_plus_1 - 1))) - 1;
      if (bucket_blocks[bucket].size() < z) {
        bucket_blocks[bucket].push_back(&page);
        placed = true;
      }
    }
    if (!placed) {
      Bytes padded = page.second;
      padded.resize(block_size, 0);
      stash_.emplace(page.first, StashEntry{std::move(padded), leaf});
    }
  }
  stash_high_water_ = std::max(stash_high_water_, stash_.size());
  if (stash_.size() > server_.config().max_stash_blocks) stash_overflowed_ = true;

  // Seal each real page exactly once and install the tree in one shot.
  // Unfilled slots stay empty-ciphertext — the same "never written" state a
  // fresh tree has, which every access already treats as a dummy.
  std::vector<SealedSlot> slots(buckets * z);
  for (size_t bucket = 0; bucket < buckets; ++bucket) {
    for (size_t slot = 0; slot < bucket_blocks[bucket].size(); ++slot) {
      const auto* page = bucket_blocks[bucket][slot];
      slots[bucket * z + slot] = seal_slot(
          mode_, key_, rng_, make_plaintext(page->first, page->second, block_size));
    }
  }
  server_.load_slots(std::move(slots));
}

std::optional<Bytes> OramClient::access(
    const BlockId& id, const Bytes* new_data,
    const std::function<Bytes(std::optional<Bytes>)>* mutate, bool remove) {
  if (access_hook_) access_hook_();

  const auto pos_it = position_.find(id);
  const bool known = pos_it != position_.end();
  if (!known && new_data == nullptr && mutate == nullptr) {
    // Reading an unknown id must still look like a normal access: fetch and
    // rewrite a random path (a "dummy access"), otherwise absent keys would
    // be distinguishable by the missing traffic.
    const uint64_t leaf = rng_.uniform(server_.leaf_count());
    const auto path = server_.read_path(leaf);
    std::vector<SealedSlot> rewritten;
    rewritten.reserve(path.size());
    const size_t block_size = server_.config().block_size;
    for (const SealedSlot& slot : path) {
      if (slot.ciphertext.empty()) {  // never-written slot: seal a dummy
        rewritten.push_back(
            seal_slot(mode_, key_, rng_, make_plaintext(kDummyId, BytesView{}, block_size)));
        continue;
      }
      const auto pt = open_slot(mode_, key_, slot);
      if (!pt.has_value()) throw IntegrityError("oram: slot authentication failed");
      rewritten.push_back(seal_slot(mode_, key_, rng_, *pt));
    }
    server_.write_path(leaf, std::move(rewritten));
    return std::nullopt;
  }

  const uint64_t leaf = known ? pos_it->second : rng_.uniform(server_.leaf_count());

  // 1. Read the path and pull every real block into the stash.
  const auto path = server_.read_path(leaf);
  for (const SealedSlot& slot : path) {
    if (slot.ciphertext.empty()) continue;  // uninitialized slot
    const auto pt = open_slot(mode_, key_, slot);
    if (!pt.has_value()) throw IntegrityError("oram: slot authentication failed");
    const u256 slot_id = u256::from_be_bytes(BytesView{pt->data(), 32});
    if (slot_id == kDummyId) continue;
    const auto slot_pos = position_.find(slot_id);
    if (slot_pos == position_.end()) continue;  // stale copy of an id that moved
    if (stash_.contains(slot_id)) continue;     // newer copy already stashed
    StashEntry entry;
    entry.data.assign(pt->begin() + 32, pt->end());
    entry.leaf = slot_pos->second;
    stash_.emplace(slot_id, std::move(entry));
  }

  if (remove) {
    // Out-migration: forget the block after pulling it off the path. The
    // server-visible traffic (one path read + rewrite) is identical to any
    // other access — only the trusted-side maps change.
    auto removed = stash_.find(id);
    if (removed == stash_.end()) {
      throw IntegrityError("oram: mapped block missing");
    }
    std::optional<Bytes> result = std::move(removed->second.data);
    stash_.erase(removed);
    position_.erase(id);
    evict_along_path(leaf);
    return result;
  }

  // 2. Remap the requested block to a fresh uniformly random leaf.
  const uint64_t new_leaf = rng_.uniform(server_.leaf_count());
  position_[id] = new_leaf;
  if (new_data != nullptr && install_hook_) install_hook_(id, *new_data, new_leaf);

  std::optional<Bytes> result;
  auto stash_it = stash_.find(id);
  if (stash_it != stash_.end()) {
    result = stash_it->second.data;
    stash_it->second.leaf = new_leaf;
    if (new_data != nullptr) stash_it->second.data = *new_data;
    if (mutate != nullptr) {
      Bytes updated = (*mutate)(result);
      updated.resize(server_.config().block_size, 0);
      stash_it->second.data = std::move(updated);
    }
  } else if (new_data != nullptr) {
    stash_.emplace(id, StashEntry{*new_data, new_leaf});
  } else if (mutate != nullptr) {
    Bytes created = (*mutate)(std::nullopt);
    created.resize(server_.config().block_size, 0);
    stash_.emplace(id, StashEntry{std::move(created), new_leaf});
  } else {
    // Known position but block not found on path or stash: data loss.
    throw IntegrityError("oram: mapped block missing");
  }

  stash_high_water_ = std::max(stash_high_water_, stash_.size());
  if (stash_.size() > server_.config().max_stash_blocks) stash_overflowed_ = true;

  // 3. Evict: greedily push stash blocks as deep as possible along this path.
  evict_along_path(leaf);
  return result;
}

void OramClient::evict_along_path(uint64_t leaf) {
  const size_t depth = server_.depth();
  const size_t z = server_.config().bucket_capacity;
  const size_t block_size = server_.config().block_size;
  std::vector<SealedSlot> path((depth + 1) * z);

  // Deepest level first.
  for (size_t level_plus_1 = depth + 1; level_plus_1 > 0; --level_plus_1) {
    const size_t level = level_plus_1 - 1;
    size_t filled = 0;
    const uint64_t path_prefix = (server_.leaf_count() + leaf) >> (depth - level);
    for (auto it = stash_.begin(); it != stash_.end() && filled < z;) {
      const uint64_t block_prefix =
          (server_.leaf_count() + it->second.leaf) >> (depth - level);
      if (block_prefix == path_prefix) {
        const Bytes pt = make_plaintext(it->first, it->second.data, block_size);
        path[level * z + filled] = seal_slot(mode_, key_, rng_, pt);
        ++filled;
        it = stash_.erase(it);
      } else {
        ++it;
      }
    }
    for (; filled < z; ++filled) {
      const Bytes pt = make_plaintext(kDummyId, BytesView{}, block_size);
      path[level * z + filled] = seal_slot(mode_, key_, rng_, pt);
    }
  }
  server_.write_path(leaf, std::move(path));
}

}  // namespace hardtape::oram
