// The paged world state (paper Section IV-D, "Mixing query types").
//
// Ethereum world-state queries come in two shapes: 32-byte K-V records
// (balances, nonces, storage slots) and variable-length contract bytecode.
// Stored naively, response sizes and burst patterns would reveal the query
// type and the running contract. HarDTAPE's answer:
//
//  - contract code is split into 1 KB pages,
//  - storage records are grouped 32-per-page by consecutive keys (Solidity
//    lays contiguous variables/array elements at consecutive slots, so the
//    grouping doubles as a prefetch),
//  - account metadata (balance, nonce, code size, code hash) occupies its
//    own 1 KB page,
//
// giving a single uniform page key space served by one Path ORAM: every
// response is exactly one 1 KB block, so K-V and Code queries are
// indistinguishable (problem (2) of §IV-D), and the 1 KB block size meets
// the O(log^2 n)-bit bound for O(log n) bandwidth overhead (problem (1)).
// Problem (3) — burst code fetches — is handled by the pagewise prefetch
// scheduler in src/hypervisor.
#pragma once

#include <atomic>
#include <functional>

#include "oram/path_oram.hpp"
#include "state/world_state.hpp"

namespace hardtape::oram {

enum class PageType : uint8_t {
  kAccountMeta = 1,  ///< balance / nonce / code size / code hash
  kStorageGroup = 2, ///< 32 consecutive storage-slot values
  kCode = 3,         ///< 1 KB slice of contract bytecode
};
const char* to_string(PageType t);

constexpr size_t kPageSize = 1024;
constexpr size_t kRecordsPerPage = kPageSize / 32;  // 32 records of 32 bytes

/// Deterministic page id: keccak(tag || address || index). The index is a
/// full 256-bit value because storage keys span the whole 2^256 space.
BlockId page_id(PageType type, const Address& addr, const u256& index);

/// Page (de)serialization helpers. All pages are exactly kPageSize bytes.
struct AccountMetaPage {
  u256 balance{};
  uint64_t nonce = 0;
  uint64_t code_size = 0;
  H256 code_hash{};

  Bytes serialize() const;
  static AccountMetaPage deserialize(BytesView page);
};

struct StorageGroupPage {
  std::array<u256, kRecordsPerPage> values{};

  Bytes serialize() const;
  static StorageGroupPage deserialize(BytesView page);
};

/// Builds the full page set of a world state (the block-synchronization
/// path, Fig. 3 step 11). Returns (id, page) pairs; order is deterministic.
std::vector<std::pair<BlockId, Bytes>> build_pages(const state::WorldState& world);

/// Convenience: compute how many pages a given world state needs, by type.
struct PageCensus {
  size_t account_pages = 0;
  size_t storage_pages = 0;
  size_t code_pages = 0;
  size_t total() const { return account_pages + storage_pages + code_pages; }
};
PageCensus census(const state::WorldState& world);

/// A state::StateReader that resolves every query through the ORAM client —
/// this is what the HEVM's world-state misses hit. Each call maps to one or
/// more uniform 1 KB page queries; a hook reports them for timing models,
/// prefetch scheduling and the Table/Figure benches.
///
/// Thread safety: this object holds no per-query mutable state beyond an
/// atomic counter, so many sessions may share one instance as long as the
/// underlying accessor is itself thread-safe (an OramFrontend) and the hook
/// is set before the sessions start.
class OramWorldState : public state::StateReader {
 public:
  explicit OramWorldState(OramAccessor& client) : client_(client) {}

  /// Hook fired once per page query, before the ORAM access.
  using QueryHook = std::function<void(PageType, const Address&, const u256& index)>;
  void set_query_hook(QueryHook hook) { hook_ = std::move(hook); }

  std::optional<state::Account> account(const Address& addr) const override;
  u256 storage(const Address& addr, const u256& key) const override;
  Bytes code(const Address& addr) const override;

  /// Reads one code page (for the pagewise prefetcher).
  std::optional<Bytes> code_page(const Address& addr, uint64_t page_index) const;
  /// Raw page reads, for callers that maintain their own page cache (the
  /// HEVM's layer-1 world-state cache holds whole pages, so one ORAM fetch
  /// serves all 32 records of a group — the paper's grouping-as-prefetch).
  std::optional<Bytes> account_page(const Address& addr) const;
  std::optional<Bytes> storage_page(const Address& addr, const u256& group) const;

  uint64_t query_count() const { return query_count_.load(std::memory_order_relaxed); }

 private:
  std::optional<Bytes> query(PageType type, const Address& addr, const u256& index) const;

  OramAccessor& client_;
  QueryHook hook_;
  mutable std::atomic<uint64_t> query_count_{0};
};

/// Installs the pages of `world` into the ORAM (block synchronization).
void sync_world_state(const state::WorldState& world, OramAccessor& client);

}  // namespace hardtape::oram
