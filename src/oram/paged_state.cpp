#include "oram/paged_state.hpp"

#include <cstring>

#include "crypto/keccak.hpp"

namespace hardtape::oram {

const char* to_string(PageType t) {
  switch (t) {
    case PageType::kAccountMeta: return "account";
    case PageType::kStorageGroup: return "storage";
    case PageType::kCode: return "code";
  }
  return "unknown";
}

BlockId page_id(PageType type, const Address& addr, const u256& index) {
  Bytes preimage;
  preimage.reserve(1 + 20 + 32);
  preimage.push_back(static_cast<uint8_t>(type));
  append(preimage, addr.view());
  append(preimage, index.to_be_bytes_vec());
  return crypto::keccak256(preimage).to_u256();
}

Bytes AccountMetaPage::serialize() const {
  Bytes page;
  page.reserve(kPageSize);
  append(page, balance.to_be_bytes_vec());
  append(page, u256{nonce}.to_be_bytes_vec());
  append(page, u256{code_size}.to_be_bytes_vec());
  append(page, code_hash.view());
  page.resize(kPageSize, 0);
  return page;
}

AccountMetaPage AccountMetaPage::deserialize(BytesView page) {
  if (page.size() < 128) throw DecodingError("account page too small");
  AccountMetaPage out;
  out.balance = u256::from_be_bytes(page.subspan(0, 32));
  out.nonce = u256::from_be_bytes(page.subspan(32, 32)).as_u64();
  out.code_size = u256::from_be_bytes(page.subspan(64, 32)).as_u64();
  out.code_hash = H256::from(page.subspan(96, 32));
  return out;
}

Bytes StorageGroupPage::serialize() const {
  Bytes page;
  page.reserve(kPageSize);
  for (const u256& value : values) append(page, value.to_be_bytes_vec());
  return page;
}

StorageGroupPage StorageGroupPage::deserialize(BytesView page) {
  if (page.size() < kPageSize) throw DecodingError("storage page too small");
  StorageGroupPage out;
  for (size_t i = 0; i < kRecordsPerPage; ++i) {
    out.values[i] = u256::from_be_bytes(page.subspan(i * 32, 32));
  }
  return out;
}

std::vector<std::pair<BlockId, Bytes>> build_pages(const state::WorldState& world) {
  std::vector<std::pair<BlockId, Bytes>> pages;
  for (const Address& addr : world.all_accounts()) {
    const auto account = world.account(addr);
    if (!account.has_value()) continue;
    const Bytes code = world.code(addr);

    AccountMetaPage meta;
    meta.balance = account->balance;
    meta.nonce = account->nonce;
    meta.code_size = code.size();
    meta.code_hash = account->code_hash;
    pages.emplace_back(page_id(PageType::kAccountMeta, addr, u256{}), meta.serialize());

    // Storage groups: records with consecutive keys share a page.
    StorageGroupPage group;
    bool group_open = false;
    u256 group_index{};
    auto flush = [&] {
      if (!group_open) return;
      pages.emplace_back(page_id(PageType::kStorageGroup, addr, group_index),
                         group.serialize());
      group = StorageGroupPage{};
      group_open = false;
    };
    for (const u256& key : world.storage_keys(addr)) {  // sorted
      const u256 this_group = key >> 5;                 // key / 32
      if (group_open && this_group != group_index) flush();
      if (!group_open) {
        group_index = this_group;
        group_open = true;
      }
      group.values[key.as_u64() & 31] = world.storage(addr, key);
    }
    flush();

    // Code pages.
    for (size_t off = 0; off < code.size(); off += kPageSize) {
      const size_t n = std::min(kPageSize, code.size() - off);
      Bytes page(code.begin() + static_cast<long>(off),
                 code.begin() + static_cast<long>(off + n));
      page.resize(kPageSize, 0);
      pages.emplace_back(page_id(PageType::kCode, addr, u256{off / kPageSize}),
                         std::move(page));
    }
  }
  return pages;
}

PageCensus census(const state::WorldState& world) {
  PageCensus out;
  for (const Address& addr : world.all_accounts()) {
    ++out.account_pages;
    const auto keys = world.storage_keys(addr);
    u256 last_group{};
    bool have_group = false;
    for (const u256& key : keys) {
      const u256 group = key >> 5;
      if (!have_group || group != last_group) {
        ++out.storage_pages;
        last_group = group;
        have_group = true;
      }
    }
    out.code_pages += (world.code(addr).size() + kPageSize - 1) / kPageSize;
  }
  return out;
}

std::optional<Bytes> OramWorldState::query(PageType type, const Address& addr,
                                           const u256& index) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (hook_) hook_(type, addr, index);
  // Fault-aware read: recovered faults already charged their simulated time
  // to the session's RecoveryTally; a terminal fault has no value-typed path
  // through StateReader, so it travels as BackendFault up to the session
  // boundary (service::PreExecutionEngine converts it into the outcome's
  // Status — fail closed, never a hang).
  AccessAttempt attempt = client_.try_read(page_id(type, addr, index));
  if (attempt.status != Status::kOk) throw BackendFault(attempt.status);
  return std::move(attempt.data);
}

std::optional<state::Account> OramWorldState::account(const Address& addr) const {
  const auto page = query(PageType::kAccountMeta, addr, u256{});
  if (!page.has_value()) return std::nullopt;
  const AccountMetaPage meta = AccountMetaPage::deserialize(*page);
  state::Account account;
  account.balance = meta.balance;
  account.nonce = meta.nonce;
  account.code_hash = meta.code_hash;
  return account;
}

u256 OramWorldState::storage(const Address& addr, const u256& key) const {
  const auto page = query(PageType::kStorageGroup, addr, key >> 5);
  if (!page.has_value()) return u256{};
  return StorageGroupPage::deserialize(*page).values[key.as_u64() & 31];
}

Bytes OramWorldState::code(const Address& addr) const {
  const auto meta_page = query(PageType::kAccountMeta, addr, u256{});
  if (!meta_page.has_value()) return Bytes{};
  const AccountMetaPage meta = AccountMetaPage::deserialize(*meta_page);
  Bytes code;
  code.reserve(meta.code_size);
  const uint64_t page_count = (meta.code_size + kPageSize - 1) / kPageSize;
  for (uint64_t i = 0; i < page_count; ++i) {
    const auto page = query(PageType::kCode, addr, u256{i});
    if (!page.has_value()) throw HardtapeError("oram: missing code page");
    const size_t take = std::min<size_t>(kPageSize, meta.code_size - i * kPageSize);
    code.insert(code.end(), page->begin(), page->begin() + static_cast<long>(take));
  }
  return code;
}

std::optional<Bytes> OramWorldState::code_page(const Address& addr,
                                               uint64_t page_index) const {
  return query(PageType::kCode, addr, u256{page_index});
}

std::optional<Bytes> OramWorldState::account_page(const Address& addr) const {
  return query(PageType::kAccountMeta, addr, u256{});
}

std::optional<Bytes> OramWorldState::storage_page(const Address& addr,
                                                  const u256& group) const {
  return query(PageType::kStorageGroup, addr, group);
}

void sync_world_state(const state::WorldState& world, OramAccessor& client) {
  for (const auto& [id, page] : build_pages(world)) {
    client.write(id, page);
  }
}

}  // namespace hardtape::oram
