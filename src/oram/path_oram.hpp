// Path ORAM (Stefanov & Shi) over fixed-size pages — the backbone of
// HarDTAPE's world-state access-pattern protection (paper Section IV-D).
//
// Client/server split per the paper: the SP runs the OramServer (the bucket
// tree, stored encrypted); the trusted Hypervisor embeds the OramClient
// (stash + position map, kept on-chip). What the adversary observes is the
// server side only: a sequence of uniformly random root-to-leaf paths, each
// read and rewritten in full with freshly re-encrypted slots — independent
// of which logical page was touched (threat A7). AES-GCM on every slot gives
// integrity (threat A6), replacing per-query Merkle proofs.
//
// The block size is 1 KB (the paper's page size): large enough for the
// O(log^2 n)-bit bound that makes the bandwidth overhead O(log n), and equal
// for code pages and storage-record groups so response *types* are
// indistinguishable.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "common/random.hpp"
#include "common/u256.hpp"
#include "crypto/aes.hpp"
#include "pagedstore/buffer_pool.hpp"

namespace hardtape::durability {
class SimFs;
}

namespace hardtape::oram {

using BlockId = u256;

class SlotStore;

/// Where the server's bucket tree lives (DESIGN.md §16). kRam is the seed's
/// flat in-memory vector; kPaged puts each bucket on a checksummed page
/// behind a bounded buffer pool over a SimFs, so the tree can be 10-100x
/// larger than the RAM budget.
enum class SlotBackend : uint8_t { kRam, kPaged };

struct OramConfig {
  size_t block_size = 1024;       ///< paper: 1 KB pages
  size_t bucket_capacity = 4;     ///< Z
  size_t capacity = 4096;         ///< logical blocks the tree must hold
  size_t max_stash_blocks = 256;  ///< on-chip stash bound (~O(log n) pages)
  // --- slot backend (fields below only matter under kPaged) ---
  SlotBackend backend = SlotBackend::kRam;
  durability::SimFs* backing_fs = nullptr;  ///< required for kPaged
  /// Hard RAM cap in buckets; raised to the walk working set (depth+1 plus
  /// slack) when set lower.
  size_t buffer_pool_pages = 64;
  std::string backing_name = "oram";  ///< segment file prefix
  obs::Registry* registry = nullptr;  ///< pool metrics (optional)
};

/// Slot sealing: the paper's design encrypts with AES-GCM. kChaChaHmac is a
/// drop-in stream-cipher + HMAC-tag seal with identical interface and
/// security role, used by the large benches where software AES-GCM would
/// dominate run time (the performance numbers come from the cost models, not
/// from host crypto speed — DESIGN.md §1).
enum class SealMode : uint8_t { kAesGcm, kChaChaHmac };

struct SealedSlot {
  std::array<uint8_t, 12> nonce{};
  std::array<uint8_t, 16> tag{};
  Bytes ciphertext;
};

SealedSlot seal_slot(SealMode mode, const crypto::AesKey128& key, Random& rng,
                     BytesView plaintext);
/// Returns nullopt when the tag fails to verify (tampered slot).
std::optional<Bytes> open_slot(SealMode mode, const crypto::AesKey128& key,
                               const SealedSlot& slot);

/// The untrusted server: a complete binary tree of buckets holding opaque
/// sealed slots. Records everything an adversary in the SP's position could
/// observe (the leaf/path sequence and access count).
class OramServer {
 public:
  explicit OramServer(const OramConfig& config);
  ~OramServer();
  OramServer(OramServer&&) = delete;
  OramServer& operator=(OramServer&&) = delete;

  size_t depth() const { return depth_; }            ///< levels - 1
  size_t leaf_count() const { return leaf_count_; }
  size_t bucket_count() const { return 2 * leaf_count_ - 1; }
  const OramConfig& config() const { return config_; }

  /// Reads all Z*(depth+1) slots on the path to `leaf`, root first.
  std::vector<SealedSlot> read_path(uint64_t leaf);
  /// Replaces the path with re-encrypted slots (same shape as read_path).
  void write_path(uint64_t leaf, std::vector<SealedSlot> slots);
  /// Checkpoint restore (PR 5): replaces the entire tree in one bulk load
  /// (`slots` in bucket-major order, bucket_count()*Z entries). A restore is
  /// a single public event — it is not an access and reveals no per-path
  /// information, so it is not added to the adversary's observed-leaf trace.
  void load_slots(std::vector<SealedSlot> slots);

  // --- the adversary's view / statistics ---
  const std::vector<uint64_t>& observed_leaves() const { return observed_leaves_; }
  uint64_t access_count() const { return access_count_; }
  /// Total bytes moved over the link per access (both directions).
  uint64_t bytes_per_access() const;
  uint64_t storage_bytes() const;
  void clear_observations() { observed_leaves_.clear(); }
  /// Buffer-pool statistics of the paged slot backend; nullopt under kRam.
  std::optional<pagedstore::BufferPoolStats> slot_pool_stats() const;

 private:
  // Heap-style bucket index of the level-`level` ancestor of `leaf`.
  size_t bucket_index(uint64_t leaf, size_t level) const {
    return ((leaf_count_ + leaf) >> (depth_ - level)) - 1;
  }

  OramConfig config_;
  size_t depth_;
  size_t leaf_count_;
  std::unique_ptr<SlotStore> store_;  ///< bucket tree (RAM or paged)
  std::vector<uint64_t> observed_leaves_;
  uint64_t access_count_ = 0;
};

/// One attempt against the untrusted backend, as the recovery layer above
/// sees it. The untrusted boundary (paper §III: the SP owns the server and
/// the link) means an attempt can fail in ways distinct from "not found":
///  - kTimeout: no response arrived within the request timeout (dropped or
///    over-delayed frame),
///  - kAuthFailed: a response arrived but its AES-GCM/HMAC tag rejected it
///    (tampered page),
///  - kBadProof: a response carried a stale/inconsistent proof.
/// kOk with nullopt data is a proven-absent block (dummy access completed).
struct AccessAttempt {
  Status status = Status::kOk;
  std::optional<Bytes> data;    ///< meaningful only when status == kOk
  uint64_t sim_delay_ns = 0;    ///< extra simulated latency this attempt cost
};

/// Block-level access interface shared by the OramClient and anything that
/// wraps it (the concurrency frontend in oram/frontend.hpp). Callers that
/// only need read/write — the paged world state, block synchronization —
/// take this instead of a concrete OramClient so the same code runs both
/// single-threaded (straight to the client) and under the multi-session
/// engine (serialized through the frontend).
class OramAccessor {
 public:
  virtual ~OramAccessor() = default;
  /// Reads a block; nullopt when the id was never written.
  virtual std::optional<Bytes> read(const BlockId& id) = 0;
  /// Writes (installs or updates) a block.
  virtual void write(const BlockId& id, BytesView data) = 0;

  /// Fault-aware single attempt. The defaults treat the backend as reliable;
  /// wrappers that model (FaultyOram) or experience (OramClient, which maps
  /// IntegrityError to kAuthFailed) an unreliable backend override these.
  virtual AccessAttempt try_read(const BlockId& id) {
    return AccessAttempt{Status::kOk, read(id), 0};
  }
  virtual AccessAttempt try_write(const BlockId& id, BytesView data) {
    write(id, data);
    return AccessAttempt{};
  }
};

/// The trusted client: stash and position map (on-chip in HarDTAPE, as part
/// of the Hypervisor). Every read() and write() performs one full Path ORAM
/// access: path read, remap, evict, path re-write. NOT thread-safe: the
/// stash and position map are single state machines — concurrent sessions
/// must go through an OramFrontend.
class OramClient : public OramAccessor {
 public:
  OramClient(OramServer& server, const crypto::AesKey128& oram_key,
             uint64_t rng_seed, SealMode mode = SealMode::kAesGcm);

  /// Reads a block; nullopt when the id was never written. Throws
  /// IntegrityError when the server returned a tampered slot or lost a
  /// mapped block.
  std::optional<Bytes> read(const BlockId& id) override;
  /// Writes (installs or updates) a block. `data` must be <= block_size and
  /// is zero-padded to it.
  void write(const BlockId& id, BytesView data) override;
  /// Value-typed variants for the recovery layer: integrity failures come
  /// back as kAuthFailed instead of a thrown IntegrityError.
  AccessAttempt try_read(const BlockId& id) override;
  AccessAttempt try_write(const BlockId& id, BytesView data) override;
  /// One ORAM access that reads the block and replaces it with
  /// mutate(previous) — the read-modify-write the recursive position map
  /// needs to stay at one access per level. `previous` is nullopt for a
  /// never-written id; the returned bytes are padded to block_size.
  std::optional<Bytes> read_modify_write(
      const BlockId& id, const std::function<Bytes(std::optional<Bytes>)>& mutate);
  /// One full, normal-looking path access that returns the block's data and
  /// REMOVES it from this client (position map + stash). The adversary sees
  /// the same single path read+rewrite as any other access; only the trusted
  /// side forgets the block. This is the out-migration half of a cross-shard
  /// move in the sharded store (oram/sharded.hpp). Returns nullopt (after a
  /// dummy access) for an id this client never held.
  std::optional<Bytes> access_remove(const BlockId& id);
  /// Installs a block straight into the stash under a fresh uniform leaf
  /// WITHOUT touching the server — no path access, nothing the adversary can
  /// observe. The in-migration half of a cross-shard move: the handoff is
  /// trusted-side state only, and the block surfaces on the server through
  /// ordinary evictions of later accesses. `data` must be <= block_size and
  /// is zero-padded to it. Does not fire the install hook (migration moves a
  /// page between trees; it does not change the logical store).
  void adopt(const BlockId& id, Bytes data);
  /// Checkpoint restore (PR 5): installs `pages` into a FRESH client (throws
  /// UsageError otherwise) without paying one full path access per page.
  /// Every page draws a fresh uniform leaf — positions are never carried
  /// across a crash, so obliviousness cannot come to depend on a recovered
  /// position map — and is placed into the deepest non-full bucket on its
  /// path (overflow falls back to the stash). Each slot is sealed exactly
  /// once and the tree is handed to the server as one bulk load, which is
  /// what makes a warm restart cheaper than a cold re-sync. Fires neither
  /// the access hook (a restore is not an access) nor the install hook (the
  /// pages are already durable in the checkpoint being restored).
  void bulk_restore(const std::vector<std::pair<BlockId, Bytes>>& pages);
  bool contains(const BlockId& id) const { return position_.contains(id); }

  size_t block_count() const { return position_.size(); }
  size_t stash_size() const { return stash_.size(); }
  size_t stash_high_water() const { return stash_high_water_; }
  /// Set when the stash ever exceeded max_stash_blocks (a real deployment
  /// would halt; we record and continue so tests can measure the tail).
  bool stash_overflowed() const { return stash_overflowed_; }

  /// Callback fired once per ORAM access (for timing models / schedulers).
  void set_access_hook(std::function<void()> hook) { access_hook_ = std::move(hook); }

  /// Callback fired once per write()-style install/update, AFTER the block
  /// is remapped: (id, block-size-padded contents, new leaf). This is the
  /// durability layer's journaling point — it observes the logical store
  /// mutation, never the oblivious path traffic.
  void set_install_hook(std::function<void(const BlockId&, BytesView, uint64_t)> hook) {
    install_hook_ = std::move(hook);
  }

 private:
  struct StashEntry {
    Bytes data;
    uint64_t leaf;
  };

  // One full access; returns the (pre-update) block data if present.
  // When `mutate` is set it computes the new contents from the old. When
  // `remove` is set the block is dropped from the stash and position map
  // after the path is read (the path rewrite stays indistinguishable).
  std::optional<Bytes> access(const BlockId& id, const Bytes* new_data,
                              const std::function<Bytes(std::optional<Bytes>)>* mutate = nullptr,
                              bool remove = false);
  void evict_along_path(uint64_t leaf);

  OramServer& server_;
  crypto::AesKey128 key_;
  SealMode mode_;
  Random rng_;
  std::unordered_map<BlockId, uint64_t, U256Hasher> position_;
  std::unordered_map<BlockId, StashEntry, U256Hasher> stash_;
  size_t stash_high_water_ = 0;
  bool stash_overflowed_ = false;
  std::function<void()> access_hook_;
  std::function<void(const BlockId&, BytesView, uint64_t)> install_hook_;
};

}  // namespace hardtape::oram
