#include "oram/frontend.hpp"

#include <chrono>

namespace hardtape::oram {

namespace {
uint64_t wall_ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

thread_local RecoveryTally* g_active_tally = nullptr;
}  // namespace

ScopedRecoveryTally::ScopedRecoveryTally(RecoveryTally& tally) : prev_(g_active_tally) {
  g_active_tally = &tally;
}

ScopedRecoveryTally::~ScopedRecoveryTally() { g_active_tally = prev_; }

RecoveryTally* ScopedRecoveryTally::active() { return g_active_tally; }

void OramFrontend::enter_queue() {
  std::lock_guard lock(state_mu_);
  ++pending_;
  stats_.max_pending = std::max(stats_.max_pending, pending_);
}

void OramFrontend::leave_queue(uint64_t stall_ns, bool was_read) {
  std::lock_guard lock(state_mu_);
  --pending_;
  stats_.contention_stall_ns += stall_ns;
  if (was_read) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }
}

AccessAttempt OramFrontend::recovered_access(const BlockId& id,
                                             const BytesView* write_data) {
  enter_queue();
  const auto start = std::chrono::steady_clock::now();
  const sim::BackoffPolicy& policy = config_.recovery;
  // De-synchronizes the jitter of distinct requests; deterministic in the id.
  const uint64_t stream_tag = U256Hasher{}(id);

  AccessAttempt result;
  uint64_t stall_ns = 0;
  uint64_t recovery_ns = 0;
  uint32_t retries = 0;
  uint32_t faults = 0;
  uint64_t timeouts = 0, auth_failures = 0, bad_proofs = 0, exhausted = 0;
  if (config_.trace != nullptr) {
    config_.trace->append(obs::TraceCategory::kOram,
                          static_cast<uint16_t>(obs::TraceCode::kOramIssue), /*sim_ns=*/0,
                          write_data != nullptr ? 1 : 0, stream_tag);
  }
  {
    // Historical mode: one global queue, strictly serialized backend. In
    // concurrent mode the ShardedOramStore locks per shard and gated_access
    // already serialized same-block requests, so no lock is taken here.
    std::unique_lock<std::mutex> serial_lock;
    if (!config_.concurrent_backend) {
      serial_lock = std::unique_lock<std::mutex>(access_mu_);
    }
    stall_ns = wall_ns_since(start);
    for (int attempt = 1;; ++attempt) {
      AccessAttempt a = write_data != nullptr ? backend_.try_write(id, *write_data)
                                              : backend_.try_read(id);
      if (a.status == Status::kOk && a.sim_delay_ns <= policy.request_timeout_ns) {
        recovery_ns += a.sim_delay_ns;  // slower than usual, but it arrived
        result = std::move(a);
        break;
      }
      ++faults;
      if (a.status == Status::kAuthFailed || a.status == Status::kBadProof) {
        // Fail closed: an integrity failure is an attack indicator, not
        // transient loss. Retrying would hand a tampering server an oracle,
        // so the request terminates here and the session aborts.
        (a.status == Status::kAuthFailed ? auth_failures : bad_proofs) += 1;
        result = AccessAttempt{a.status, std::nullopt, 0};
        break;
      }
      // Dropped or over-delayed response: the session waited out the full
      // request timeout before concluding the answer is not coming.
      ++timeouts;
      recovery_ns += policy.request_timeout_ns;
      if (attempt >= policy.max_attempts) {
        ++exhausted;
        result = AccessAttempt{Status::kRetryExhausted, std::nullopt, 0};
        break;
      }
      const uint64_t backoff_ns = sim::backoff_delay_ns(policy, attempt, stream_tag);
      recovery_ns += backoff_ns;
      ++retries;
      if (config_.trace != nullptr) {
        config_.trace->append(obs::TraceCategory::kOram,
                              static_cast<uint16_t>(obs::TraceCode::kOramRetry), /*sim_ns=*/0,
                              static_cast<uint64_t>(attempt), backoff_ns);
      }
    }
  }
  result.sim_delay_ns = recovery_ns;
  if (config_.trace != nullptr) {
    config_.trace->append(obs::TraceCategory::kOram,
                          static_cast<uint16_t>(obs::TraceCode::kOramComplete), /*sim_ns=*/0,
                          static_cast<uint64_t>(result.status), recovery_ns);
  }
  if (RecoveryTally* tally = ScopedRecoveryTally::active()) {
    tally->sim_ns += recovery_ns;
    tally->retries += retries;
    tally->faults += faults;
  }
  leave_queue(stall_ns, /*was_read=*/write_data == nullptr);
  {
    std::lock_guard lock(state_mu_);
    stats_.timeouts += timeouts;
    stats_.retries += retries;
    stats_.auth_failures += auth_failures;
    stats_.bad_proofs += bad_proofs;
    stats_.retry_exhausted += exhausted;
  }
  return result;
}

void OramFrontend::note_shard_result(uint32_t shard, Status status) {
  if (config_.shard_count == 0 || shard >= config_.shard_count) return;
  std::lock_guard lock(state_mu_);
  if (status == Status::kOk) {
    shard_fail_streak_[shard] = 0;
    return;
  }
  if (status != Status::kAuthFailed && status != Status::kBadProof &&
      status != Status::kRetryExhausted) {
    return;
  }
  ++stats_.shard_failures[shard];
  if (config_.shard_breaker_threshold > 0 &&
      ++shard_fail_streak_[shard] >= config_.shard_breaker_threshold) {
    stats_.shard_quarantined[shard] = 1;
  }
}

AccessAttempt OramFrontend::gated_access(const BlockId& id,
                                         const BytesView* write_data) {
  // Per-shard breaker: requests routed to a quarantined shard are refused
  // before touching the gate — the other shards keep serving.
  uint32_t shard = kUnknownShard;
  if (config_.shard_router) shard = config_.shard_router(id);
  if (shard != kUnknownShard && shard < config_.shard_count) {
    std::lock_guard lock(state_mu_);
    if (stats_.shard_quarantined[shard] != 0) {
      ++stats_.shard_unavailable;
      return AccessAttempt{Status::kUnavailable, std::nullopt, 0};
    }
  }

  const auto gate_start = std::chrono::steady_clock::now();
  std::shared_ptr<Inflight> entry;
  {
    std::unique_lock lock(state_mu_);
    for (;;) {
      const auto it = inflight_.find(id);
      if (it == inflight_.end()) break;
      if (write_data == nullptr && config_.coalesce_duplicate_reads &&
          it->second->is_read) {
        // An identical read is already walking the tree — ride it. The rider
        // inherits the leader's data and status but none of its recovery
        // time (the leader's session already paid for the retries). One tree
        // walk fans out to every waiter.
        const std::shared_ptr<Inflight> leader = it->second;
        ++stats_.coalesced_reads;
        gate_cv_.wait(lock, [&] { return leader->done; });
        AccessAttempt result = leader->result;
        result.sim_delay_ns = 0;
        return result;
      }
      // Same-block request that cannot ride (a write, or coalescing is
      // off): wait for the in-flight access to finish, then re-claim. The
      // gate is what makes the backend's migrating shard map safe to
      // consult — at most one access per block id is ever in flight.
      gate_cv_.wait(lock);
    }
    entry = std::make_shared<Inflight>();
    entry->is_read = write_data == nullptr;
    inflight_.emplace(id, entry);
    stats_.contention_stall_ns += wall_ns_since(gate_start);
  }

  AccessAttempt result = recovered_access(id, write_data);
  note_shard_result(shard, result.status);

  {
    std::lock_guard lock(state_mu_);
    entry->result = result;
    entry->done = true;
    inflight_.erase(id);
  }
  gate_cv_.notify_all();
  return result;
}

AccessAttempt OramFrontend::try_read(const BlockId& id) {
  if (config_.concurrent_backend || config_.coalesce_duplicate_reads) {
    return gated_access(id, nullptr);
  }
  return recovered_access(id, nullptr);
}

AccessAttempt OramFrontend::try_write(const BlockId& id, BytesView data) {
  // Writes are never coalesced: each must land. In concurrent mode they
  // still take the per-block gate (same-block exclusion).
  if (config_.concurrent_backend) return gated_access(id, &data);
  return recovered_access(id, &data);
}

std::optional<Bytes> OramFrontend::read(const BlockId& id) {
  AccessAttempt result = try_read(id);
  if (result.status != Status::kOk) throw BackendFault(result.status);
  return std::move(result.data);
}

void OramFrontend::write(const BlockId& id, BytesView data) {
  const AccessAttempt result = try_write(id, data);
  if (result.status != Status::kOk) throw BackendFault(result.status);
}

OramFrontend::Stats OramFrontend::snapshot() const {
  std::lock_guard lock(state_mu_);
  return stats_;
}

}  // namespace hardtape::oram
