#include "oram/frontend.hpp"

#include <chrono>

namespace hardtape::oram {

namespace {
uint64_t wall_ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}
}  // namespace

void OramFrontend::enter_queue() {
  std::lock_guard lock(state_mu_);
  ++pending_;
  stats_.max_pending = std::max(stats_.max_pending, pending_);
}

void OramFrontend::leave_queue(uint64_t stall_ns, bool was_read) {
  std::lock_guard lock(state_mu_);
  --pending_;
  stats_.contention_stall_ns += stall_ns;
  if (was_read) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }
}

std::optional<Bytes> OramFrontend::serialized_read(const BlockId& id) {
  enter_queue();
  const auto start = std::chrono::steady_clock::now();
  std::optional<Bytes> result;
  uint64_t stall_ns = 0;
  {
    std::lock_guard lock(access_mu_);
    stall_ns = wall_ns_since(start);
    result = backend_.read(id);
  }
  leave_queue(stall_ns, /*was_read=*/true);
  return result;
}

std::optional<Bytes> OramFrontend::read(const BlockId& id) {
  if (!config_.coalesce_duplicate_reads) return serialized_read(id);

  std::unique_lock lock(state_mu_);
  if (auto it = inflight_.find(id); it != inflight_.end()) {
    // An identical read is already walking the tree — ride it.
    const std::shared_ptr<Inflight> entry = it->second;
    ++stats_.coalesced_reads;
    entry->cv.wait(lock, [&] { return entry->done; });
    return entry->result;
  }
  const auto entry = std::make_shared<Inflight>();
  inflight_.emplace(id, entry);
  lock.unlock();

  std::optional<Bytes> result = serialized_read(id);

  lock.lock();
  entry->result = result;
  entry->done = true;
  inflight_.erase(id);
  entry->cv.notify_all();
  return result;
}

void OramFrontend::write(const BlockId& id, BytesView data) {
  // Writes (block synchronization) are never coalesced: each must land.
  enter_queue();
  const auto start = std::chrono::steady_clock::now();
  uint64_t stall_ns = 0;
  {
    std::lock_guard lock(access_mu_);
    stall_ns = wall_ns_since(start);
    backend_.write(id, data);
  }
  leave_queue(stall_ns, /*was_read=*/false);
}

OramFrontend::Stats OramFrontend::snapshot() const {
  std::lock_guard lock(state_mu_);
  return stats_;
}

}  // namespace hardtape::oram
