#include "oram/frontend.hpp"

#include <chrono>

namespace hardtape::oram {

namespace {
uint64_t wall_ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

thread_local RecoveryTally* g_active_tally = nullptr;
}  // namespace

ScopedRecoveryTally::ScopedRecoveryTally(RecoveryTally& tally) : prev_(g_active_tally) {
  g_active_tally = &tally;
}

ScopedRecoveryTally::~ScopedRecoveryTally() { g_active_tally = prev_; }

RecoveryTally* ScopedRecoveryTally::active() { return g_active_tally; }

void OramFrontend::enter_queue() {
  std::lock_guard lock(state_mu_);
  ++pending_;
  stats_.max_pending = std::max(stats_.max_pending, pending_);
}

void OramFrontend::leave_queue(uint64_t stall_ns, bool was_read) {
  std::lock_guard lock(state_mu_);
  --pending_;
  stats_.contention_stall_ns += stall_ns;
  if (was_read) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }
}

AccessAttempt OramFrontend::recovered_access(const BlockId& id,
                                             const BytesView* write_data) {
  enter_queue();
  const auto start = std::chrono::steady_clock::now();
  const sim::BackoffPolicy& policy = config_.recovery;
  // De-synchronizes the jitter of distinct requests; deterministic in the id.
  const uint64_t stream_tag = U256Hasher{}(id);

  AccessAttempt result;
  uint64_t stall_ns = 0;
  uint64_t recovery_ns = 0;
  uint32_t retries = 0;
  uint32_t faults = 0;
  uint64_t timeouts = 0, auth_failures = 0, bad_proofs = 0, exhausted = 0;
  if (config_.trace != nullptr) {
    config_.trace->append(obs::TraceCategory::kOram,
                          static_cast<uint16_t>(obs::TraceCode::kOramIssue), /*sim_ns=*/0,
                          write_data != nullptr ? 1 : 0, stream_tag);
  }
  {
    std::lock_guard lock(access_mu_);
    stall_ns = wall_ns_since(start);
    for (int attempt = 1;; ++attempt) {
      AccessAttempt a = write_data != nullptr ? backend_.try_write(id, *write_data)
                                              : backend_.try_read(id);
      if (a.status == Status::kOk && a.sim_delay_ns <= policy.request_timeout_ns) {
        recovery_ns += a.sim_delay_ns;  // slower than usual, but it arrived
        result = std::move(a);
        break;
      }
      ++faults;
      if (a.status == Status::kAuthFailed || a.status == Status::kBadProof) {
        // Fail closed: an integrity failure is an attack indicator, not
        // transient loss. Retrying would hand a tampering server an oracle,
        // so the request terminates here and the session aborts.
        (a.status == Status::kAuthFailed ? auth_failures : bad_proofs) += 1;
        result = AccessAttempt{a.status, std::nullopt, 0};
        break;
      }
      // Dropped or over-delayed response: the session waited out the full
      // request timeout before concluding the answer is not coming.
      ++timeouts;
      recovery_ns += policy.request_timeout_ns;
      if (attempt >= policy.max_attempts) {
        ++exhausted;
        result = AccessAttempt{Status::kRetryExhausted, std::nullopt, 0};
        break;
      }
      const uint64_t backoff_ns = sim::backoff_delay_ns(policy, attempt, stream_tag);
      recovery_ns += backoff_ns;
      ++retries;
      if (config_.trace != nullptr) {
        config_.trace->append(obs::TraceCategory::kOram,
                              static_cast<uint16_t>(obs::TraceCode::kOramRetry), /*sim_ns=*/0,
                              static_cast<uint64_t>(attempt), backoff_ns);
      }
    }
  }
  result.sim_delay_ns = recovery_ns;
  if (config_.trace != nullptr) {
    config_.trace->append(obs::TraceCategory::kOram,
                          static_cast<uint16_t>(obs::TraceCode::kOramComplete), /*sim_ns=*/0,
                          static_cast<uint64_t>(result.status), recovery_ns);
  }
  if (RecoveryTally* tally = ScopedRecoveryTally::active()) {
    tally->sim_ns += recovery_ns;
    tally->retries += retries;
    tally->faults += faults;
  }
  leave_queue(stall_ns, /*was_read=*/write_data == nullptr);
  {
    std::lock_guard lock(state_mu_);
    stats_.timeouts += timeouts;
    stats_.retries += retries;
    stats_.auth_failures += auth_failures;
    stats_.bad_proofs += bad_proofs;
    stats_.retry_exhausted += exhausted;
  }
  return result;
}

AccessAttempt OramFrontend::try_read(const BlockId& id) {
  if (!config_.coalesce_duplicate_reads) return recovered_access(id, nullptr);

  std::unique_lock lock(state_mu_);
  if (auto it = inflight_.find(id); it != inflight_.end()) {
    // An identical read is already walking the tree — ride it. The rider
    // inherits the winner's data and status but none of its recovery time
    // (the winner's session already paid for the retries).
    const std::shared_ptr<Inflight> entry = it->second;
    ++stats_.coalesced_reads;
    entry->cv.wait(lock, [&] { return entry->done; });
    AccessAttempt result = entry->result;
    result.sim_delay_ns = 0;
    return result;
  }
  const auto entry = std::make_shared<Inflight>();
  inflight_.emplace(id, entry);
  lock.unlock();

  AccessAttempt result = recovered_access(id, nullptr);

  lock.lock();
  entry->result = result;
  entry->done = true;
  inflight_.erase(id);
  entry->cv.notify_all();
  return result;
}

AccessAttempt OramFrontend::try_write(const BlockId& id, BytesView data) {
  // Writes (block synchronization) are never coalesced: each must land.
  return recovered_access(id, &data);
}

std::optional<Bytes> OramFrontend::read(const BlockId& id) {
  AccessAttempt result = try_read(id);
  if (result.status != Status::kOk) throw BackendFault(result.status);
  return std::move(result.data);
}

void OramFrontend::write(const BlockId& id, BytesView data) {
  const AccessAttempt result = try_write(id, data);
  if (result.status != Status::kOk) throw BackendFault(result.status);
}

OramFrontend::Stats OramFrontend::snapshot() const {
  std::lock_guard lock(state_mu_);
  return stats_;
}

}  // namespace hardtape::oram
