// Recursive position map (paper Section II-C: "The position map can be
// stored in higher-level ORAMs recursively if it is too big").
//
// The plain OramClient keeps an O(n) position map on-chip — fine for the
// proof-of-concept tree, but a 2^30-page production world state needs ~8 GB
// of map, far beyond on-chip memory. The standard fix is recursion: the
// data ORAM's position map is packed into blocks and stored in a second,
// much smaller ORAM, whose own (tiny) position map stays on-chip. Each data
// access then costs one map-ORAM access plus one data-ORAM access.
//
// Recursion requires dense block indices; HarDTAPE assigns page ids dense
// indices deterministically at block-synchronization time (the sync order
// is public, so the assignment leaks nothing).
#pragma once

#include "oram/path_oram.hpp"

namespace hardtape::oram {

struct RecursiveOramConfig {
  size_t block_size = 1024;       ///< data block (page) size
  size_t capacity = 4096;         ///< number of dense data blocks
  size_t bucket_capacity = 4;
  size_t max_stash_blocks = 256;
  size_t map_entries_per_block = 128;  ///< 8-byte leaf pointers per map block
};

/// A Path ORAM whose position map lives in a second Path ORAM. Blocks are
/// addressed by dense index in [0, capacity).
class RecursiveOramClient {
 public:
  RecursiveOramClient(const RecursiveOramConfig& config,
                      const crypto::AesKey128& oram_key, uint64_t rng_seed,
                      SealMode mode = SealMode::kChaChaHmac);

  std::optional<Bytes> read(uint64_t index);
  void write(uint64_t index, BytesView data);

  /// Total server-side accesses per logical operation (map + data).
  uint64_t data_accesses() const { return data_server_.access_count(); }
  uint64_t map_accesses() const { return map_server_.access_count(); }

  /// On-chip memory actually required: the map ORAM's position map + both
  /// stashes — the quantity recursion is meant to shrink.
  size_t onchip_position_entries() const { return map_position_.size(); }
  size_t data_stash_size() const { return data_stash_.size(); }
  size_t stash_high_water() const { return stash_high_water_; }

  const OramServer& data_server() const { return data_server_; }
  const OramServer& map_server() const { return map_server_; }

 private:
  struct StashEntry {
    Bytes data;
    uint64_t leaf;
  };

  // Position-map access through the map ORAM: swaps the packed entry
  // (leaf | exists-bit) for `index` and returns the previous one.
  uint64_t map_entry_swap(uint64_t index, uint64_t new_entry);
  // One Path ORAM access against the data tree (mirrors OramClient::access).
  std::optional<Bytes> data_access(uint64_t index, uint64_t leaf, uint64_t new_leaf,
                                   const Bytes* new_data);
  void evict_data_path(uint64_t leaf);

  RecursiveOramConfig config_;
  crypto::AesKey128 key_;
  SealMode mode_;
  Random rng_;

  OramServer data_server_;
  OramServer map_server_;
  OramClient map_client_;  // its position map is the small on-chip one

  // Data ORAM state kept on-chip: stash only (the point of recursion);
  // existence bits live inside the map entries.
  std::unordered_map<uint64_t, StashEntry> data_stash_;
  size_t stash_high_water_ = 0;

  // Exposed for accounting: number of entries in the map client's position
  // map (mirrors map ORAM block count).
  std::unordered_map<uint64_t, bool> map_position_;
};

}  // namespace hardtape::oram
