// OramFrontend: the chip-side arbitration point in front of the shared ORAM
// client, enabling concurrent multi-session pre-execution.
//
// HarDTAPE dedicates one HEVM per user session (paper §IV-B), but the whole
// chip shares ONE position map + stash (inside the Hypervisor) and one ORAM
// server. The stash/position map are a single state machine, so concurrent
// sessions must not touch the client simultaneously. This frontend
// serializes every path access behind a mutex-guarded request queue: the
// adversary-visible server trace remains a strictly sequential stream of
// uniformly random root-to-leaf paths — exactly the shape serial execution
// produces — while the HEVMs overlap everything else (interpretation,
// channel crypto, layer-2 traffic).
//
// Optional read coalescing: when two sessions demand the SAME page while a
// fetch for it is already in flight (typical for hot contract code pages),
// the second session can ride the first access instead of issuing its own.
// This trades a small amount of access-count leakage (two sessions running
// the same contract at once issue one fewer query) for server bandwidth, so
// it is off by default and gated by config — mirroring the paper's stance
// that every relaxation of the oblivious stream must be opt-in.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "oram/path_oram.hpp"

namespace hardtape::oram {

struct FrontendConfig {
  /// Merge a read with an identical in-flight read instead of issuing a
  /// second ORAM access. Off by default (see file comment).
  bool coalesce_duplicate_reads = false;
};

class OramFrontend : public OramAccessor {
 public:
  using Config = FrontendConfig;

  /// Counters over the frontend's lifetime. All wall-clock figures are host
  /// measurements of real lock contention (NOT simulated time — the
  /// simulated timeline lives in the engine's metrics).
  struct Stats {
    uint64_t reads = 0;             ///< accesses issued to the backend
    uint64_t writes = 0;
    uint64_t coalesced_reads = 0;   ///< reads served by an in-flight twin
    uint64_t contention_stall_ns = 0;  ///< wall ns spent waiting for the lock
    uint64_t max_pending = 0;       ///< deepest observed request queue
  };

  explicit OramFrontend(OramAccessor& backend, Config config = {})
      : backend_(backend), config_(config) {}

  std::optional<Bytes> read(const BlockId& id) override;
  void write(const BlockId& id, BytesView data) override;

  Stats snapshot() const;
  const Config& config() const { return config_; }

 private:
  struct Inflight {
    bool done = false;
    std::optional<Bytes> result;
    std::condition_variable cv;  // waits on state_mu_
  };

  std::optional<Bytes> serialized_read(const BlockId& id);
  void enter_queue();
  void leave_queue(uint64_t stall_ns, bool was_read);

  OramAccessor& backend_;
  Config config_;
  std::mutex access_mu_;  ///< serializes backend path accesses (the queue)
  mutable std::mutex state_mu_;  ///< guards stats_, pending_, inflight_
  Stats stats_;
  uint64_t pending_ = 0;
  std::unordered_map<BlockId, std::shared_ptr<Inflight>, U256Hasher> inflight_;
};

}  // namespace hardtape::oram
