// OramFrontend: the chip-side arbitration point in front of the shared ORAM
// client, enabling concurrent multi-session pre-execution.
//
// HarDTAPE dedicates one HEVM per user session (paper §IV-B), but the whole
// chip shares ONE position map + stash (inside the Hypervisor) and one ORAM
// server. The stash/position map are a single state machine, so concurrent
// sessions must not touch the client simultaneously. This frontend
// serializes every path access behind a mutex-guarded request queue: the
// adversary-visible server trace remains a strictly sequential stream of
// uniformly random root-to-leaf paths — exactly the shape serial execution
// produces — while the HEVMs overlap everything else (interpretation,
// channel crypto, layer-2 traffic).
//
// Recovery (PR 2): the server and the link belong to the malicious SP
// (paper §III), so a response may never arrive, arrive late, or arrive
// tampered. Every fault-aware access (try_read/try_write) runs a bounded
// retry loop in SIMULATED time: a per-request timeout, exponential backoff
// with deterministic jitter (sim/backoff.hpp), and a hard attempt budget.
//  - timeouts (drops, over-delayed responses) are retried;
//  - integrity failures (kAuthFailed, kBadProof) fail CLOSED immediately —
//    a bad tag is an attack indicator, and retrying would hand a tampering
//    server an oracle;
//  - an exhausted budget surfaces as kRetryExhausted.
// All waiting is simulated (charged to the calling session via the active
// RecoveryTally), so the fault-free timeline stays bit-identical to serial
// execution and faulted runs replay exactly under a fixed seed.
//
// Optional read coalescing: when two sessions demand the SAME page while a
// fetch for it is already in flight (typical for hot contract code pages),
// the second session can ride the first access instead of issuing its own.
// This trades a small amount of access-count leakage (two sessions running
// the same contract at once issue one fewer query) for server bandwidth, so
// it is off by default and gated by config — mirroring the paper's stance
// that every relaxation of the oblivious stream must be opt-in.
//
// Concurrent mode (PR 6): with `concurrent_backend` set the backend is a
// ShardedOramStore (oram/sharded.hpp) that does its own per-shard locking,
// and this frontend stops serializing globally. What remains here is the
// request scheduler:
//  - a per-block in-flight gate: at most one access per BlockId at a time.
//    This is correctness, not tuning — an access migrates the block's shard
//    assignment, so an unserialized twin could consult a stale route. With
//    coalescing on, a gated duplicate read RIDES the in-flight access (one
//    tree walk fans out to every waiter); with it off the duplicate simply
//    waits its turn and issues its own walk.
//  - per-shard circuit breaking (opt-in via shard_breaker_threshold): the
//    recovery semantics above are unchanged per request, and consecutive
//    terminal failures attributed to one shard quarantine THAT shard —
//    requests routed to it resolve kUnavailable immediately while every
//    other shard keeps serving. The engine-level breaker still owns the
//    whole-backend verdict.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/trace.hpp"
#include "oram/path_oram.hpp"
#include "sim/backoff.hpp"

namespace hardtape::oram {

/// Per-session accumulator of recovery work (simulated retry time, fault
/// counts) for layers above a value-only interface (state::StateReader has
/// no Status channel). The engine installs one per session on the executing
/// thread; the frontend adds to whichever tally is active whenever it
/// recovers from — or gives up on — a backend fault.
struct RecoveryTally {
  uint64_t sim_ns = 0;    ///< timeouts + backoff + residual delays, simulated
  uint32_t retries = 0;   ///< re-issued requests
  uint32_t faults = 0;    ///< faulty attempts observed (recovered or not)
};

/// RAII: makes `tally` the calling thread's active tally; restores the
/// previous one on destruction (scopes nest).
class ScopedRecoveryTally {
 public:
  explicit ScopedRecoveryTally(RecoveryTally& tally);
  ~ScopedRecoveryTally();
  ScopedRecoveryTally(const ScopedRecoveryTally&) = delete;
  ScopedRecoveryTally& operator=(const ScopedRecoveryTally&) = delete;

  /// The calling thread's active tally, or nullptr outside any scope.
  static RecoveryTally* active();

 private:
  RecoveryTally* prev_;
};

struct FrontendConfig {
  /// Merge a read with an identical in-flight read instead of issuing a
  /// second ORAM access. Off by default (see file comment).
  bool coalesce_duplicate_reads = false;
  /// Retry/backoff policy for the fault-aware access path. With a reliable
  /// backend the policy is dormant: attempt 1 succeeds, zero time charged.
  sim::BackoffPolicy recovery{};
  /// Optional request-lifecycle tracing (issue/retry/complete). The frontend
  /// is shared by all workers, so the ring is the sink's shared ring; events
  /// carry wall time for ordering and per-request sim recovery time — the
  /// frontend has no session clock.
  obs::TraceRing* trace = nullptr;

  // --- concurrent mode (PR 6; see file comment) ---
  /// The backend locks internally (ShardedOramStore): drop the global
  /// serialization and gate only same-block requests. Off by default — the
  /// historical strictly-serialized frontend, byte-for-byte.
  bool concurrent_backend = false;
  /// Shards behind the backend (sizes the per-shard failure accounting;
  /// 0 disables it).
  size_t shard_count = 0;
  /// Current shard of a block (ShardedOramStore::shard_of), kUnknownShard
  /// for ids the store never saw. Consulted before issuing — which is also
  /// the shard any failure of this request is attributed to, since a
  /// migration only happens after a successful walk there.
  std::function<uint32_t(const BlockId&)> shard_router;
  /// Consecutive terminal failures (kAuthFailed/kBadProof/kRetryExhausted)
  /// attributed to one shard before that shard is quarantined. <= 0
  /// disables per-shard breaking.
  int shard_breaker_threshold = 0;
};

class OramFrontend : public OramAccessor {
 public:
  using Config = FrontendConfig;

  /// `shard_router` result for ids the store has no assignment for.
  /// Numerically equal to ShardedOramStore::kNoShard.
  static constexpr uint32_t kUnknownShard = ~uint32_t{0};

  /// Counters over the frontend's lifetime. All wall-clock figures are host
  /// measurements of real lock contention (NOT simulated time — the
  /// simulated timeline lives in the engine's metrics).
  struct Stats {
    uint64_t reads = 0;             ///< read requests issued to the backend
    uint64_t writes = 0;
    uint64_t coalesced_reads = 0;   ///< reads served by an in-flight twin
    uint64_t contention_stall_ns = 0;  ///< wall ns spent waiting for the lock
    uint64_t max_pending = 0;       ///< deepest observed request queue
    // --- recovery layer ---
    uint64_t timeouts = 0;          ///< attempts that timed out (drop/late)
    uint64_t retries = 0;           ///< requests re-issued after a timeout
    uint64_t auth_failures = 0;     ///< tampered responses (fail-closed)
    uint64_t bad_proofs = 0;        ///< stale-proof responses (fail-closed)
    uint64_t retry_exhausted = 0;   ///< requests that ran out of attempts
    // --- per-shard breaker (concurrent mode; empty when shard_count == 0) ---
    std::vector<uint64_t> shard_failures;     ///< terminal failures per shard
    std::vector<uint8_t> shard_quarantined;   ///< 1 = shard refused service
    uint64_t shard_unavailable = 0;  ///< requests refused by a quarantine
  };

  explicit OramFrontend(OramAccessor& backend, Config config = {})
      : backend_(backend), config_(std::move(config)) {
    stats_.shard_failures.resize(config_.shard_count, 0);
    stats_.shard_quarantined.resize(config_.shard_count, 0);
    shard_fail_streak_.resize(config_.shard_count, 0);
  }

  /// Throws BackendFault when the fault-aware path ends in a non-kOk status
  /// (never happens over a reliable backend).
  std::optional<Bytes> read(const BlockId& id) override;
  void write(const BlockId& id, BytesView data) override;

  /// Fault-aware access: runs the full timeout/backoff/fail-closed loop and
  /// returns the terminal status. sim_delay_ns of the result carries the
  /// total simulated recovery time (also added to the active RecoveryTally).
  AccessAttempt try_read(const BlockId& id) override;
  AccessAttempt try_write(const BlockId& id, BytesView data) override;

  Stats snapshot() const;
  const Config& config() const { return config_; }

 private:
  struct Inflight {
    bool done = false;
    bool is_read = false;
    AccessAttempt result;
  };

  /// One request with recovery: write_data == nullptr for reads. Serialized
  /// behind access_mu_ in the historical mode; lock-free here in concurrent
  /// mode (the backend locks per shard, gated_access gates per block).
  AccessAttempt recovered_access(const BlockId& id, const BytesView* write_data);
  /// The per-block gate + coalescing fan-out (see file comment).
  AccessAttempt gated_access(const BlockId& id, const BytesView* write_data);
  /// Feeds the per-shard breaker with a request's terminal status.
  void note_shard_result(uint32_t shard, Status status);
  void enter_queue();
  void leave_queue(uint64_t stall_ns, bool was_read);

  OramAccessor& backend_;
  Config config_;
  std::mutex access_mu_;  ///< serializes backend path accesses (the queue)
  mutable std::mutex state_mu_;  ///< guards stats_, pending_, inflight_, shard state
  std::condition_variable gate_cv_;  ///< waits on state_mu_: gate + rider wakeups
  Stats stats_;
  uint64_t pending_ = 0;
  std::unordered_map<BlockId, std::shared_ptr<Inflight>, U256Hasher> inflight_;
  std::vector<int> shard_fail_streak_;  ///< consecutive terminal failures
};

}  // namespace hardtape::oram
