// Cost-model parameter sets for every timed component of HarDTAPE
// (paper Section VI "Implementation and experiment setup").
//
// The defaults mirror the paper's prototype:
//  - HEVMs on FPGA fabric at 0.1 GHz (4-stage pipeline),
//  - quad-core ARM Cortex-A53 Hypervisor at 1.4 GHz,
//  - Ethernet to the SP's servers with 2 ms latency,
//  - ORAM server requiring ~25 us of service time per query,
//  - Geth on an i7-12700 at 4.35 GHz as the software baseline.
//
// Each struct is plain data so the ablation benches can sweep fields.
#pragma once

#include <cstdint>

#include "evm/opcodes.hpp"

namespace hardtape::sim {

/// One-way link between the HarDTAPE chip and off-chip servers (Node, ORAM
/// server, user frontend).
struct LinkModel {
  uint64_t latency_ns = 2'000'000;      ///< 2 ms one-way (paper §VI)
  double bytes_per_ns = 0.125;          ///< 1 Gbps Ethernet payload rate

  /// Time for one message of `bytes` in one direction.
  uint64_t transfer_ns(uint64_t bytes) const {
    return latency_ns + static_cast<uint64_t>(static_cast<double>(bytes) / bytes_per_ns);
  }
  /// Request/response round trip with the given payload sizes.
  uint64_t round_trip_ns(uint64_t request_bytes, uint64_t response_bytes) const {
    return transfer_ns(request_bytes) + transfer_ns(response_bytes);
  }
};

/// Cycle model of the 4-stage pipelined HEVM (paper §IV-B "Contract
/// instruction interpretation"). Cycles per instruction class; the pipeline
/// overlaps fetch/decode with execute, so common ops retire in ~1 cycle and
/// wide ops stall the EX stage.
struct HevmCostModel {
  double clock_hz = 0.1e9;  ///< 100 MHz FPGA fabric

  uint32_t cycles_control = 1;
  uint32_t cycles_arithmetic = 2;    ///< 256-bit ALU, 2-cycle EX
  uint32_t cycles_mul_div = 12;      ///< iterative 256-bit multiplier
  uint32_t cycles_keccak_per_block = 48;
  uint32_t cycles_environment = 1;
  uint32_t cycles_stack = 1;
  uint32_t cycles_memory = 2;        ///< layer-1 BRAM, dual-port
  uint32_t cycles_storage_hit = 4;   ///< world-state cache hit in layer 1
  uint32_t cycles_log = 8;
  uint32_t cycles_call = 400;        ///< frame dump/reload between layers 1-2
  uint32_t exception_cycles = 200;   ///< raise + hypervisor handshake
  /// Core reset at session assignment: clearing the ~1.1 MB of layer-1/2
  /// BRAM at 32 B/cycle (Fig. 3 step 10 / new session setup).
  uint64_t reset_ns() const {
    return static_cast<uint64_t>((1'130'496.0 / 32.0) * 1e9 / clock_hz);
  }

  uint64_t cycle_ns() const { return static_cast<uint64_t>(1e9 / clock_hz); }

  uint64_t op_ns(evm::OpClass cls, uint8_t opcode) const {
    uint32_t cycles;
    switch (cls) {
      case evm::OpClass::kControl: cycles = cycles_control; break;
      case evm::OpClass::kArithmetic:
        // MUL/DIV family (0x02,0x04-0x09,0x0a) uses the iterative unit.
        cycles = (opcode == 0x02 || (opcode >= 0x04 && opcode <= 0x0a))
                     ? cycles_mul_div
                     : cycles_arithmetic;
        break;
      case evm::OpClass::kKeccak: cycles = cycles_keccak_per_block; break;
      case evm::OpClass::kEnvironment: cycles = cycles_environment; break;
      case evm::OpClass::kStack: cycles = cycles_stack; break;
      case evm::OpClass::kMemory: cycles = cycles_memory; break;
      case evm::OpClass::kStorage: cycles = cycles_storage_hit; break;
      case evm::OpClass::kLog: cycles = cycles_log; break;
      case evm::OpClass::kCall: cycles = cycles_call; break;
      default: cycles = 1;
    }
    return cycles * cycle_ns();
  }
};

/// Software-node baseline ("Geth role"), i7-12700 at 4.35 GHz. Per-op costs
/// in nanoseconds, calibrated so that typical mainnet transactions take on
/// the order of a millisecond (paper Figure 4's Geth bar) and so that the
/// Figure 5 per-op comparison shows no significant difference to the HEVM on
/// arithmetic/storage but a slower contract call path.
struct GethCostModel {
  uint64_t ns_dispatch = 4;        ///< interpreter loop overhead per op
  uint64_t ns_arithmetic = 8;
  uint64_t ns_mul_div = 30;
  uint64_t ns_keccak_per_block = 250;
  uint64_t ns_memory = 10;
  uint64_t ns_storage = 450;       ///< in-memory trie/journal lookup
  uint64_t ns_log = 300;
  uint64_t ns_call = 12'000;       ///< interpreter re-entry, scope setup
  uint64_t ns_tx_overhead = 150'000;  ///< tx pre/post processing (sig, pool)

  uint64_t op_ns(evm::OpClass cls, uint8_t opcode) const {
    switch (cls) {
      case evm::OpClass::kArithmetic:
        return ns_dispatch + ((opcode == 0x02 || (opcode >= 0x04 && opcode <= 0x0a))
                                  ? ns_mul_div
                                  : ns_arithmetic);
      case evm::OpClass::kKeccak: return ns_dispatch + ns_keccak_per_block;
      case evm::OpClass::kMemory: return ns_dispatch + ns_memory;
      case evm::OpClass::kStorage: return ns_dispatch + ns_storage;
      case evm::OpClass::kLog: return ns_dispatch + ns_log;
      case evm::OpClass::kCall: return ns_dispatch + ns_call;
      default: return ns_dispatch + 2;
    }
  }
};

/// TSC-VEE comparator model (closed-source TrustZone EVM, paper Figure 5).
/// Same order of per-op costs as a software EVM on an A53 plus a fixed
/// TrustZone world-switch cost per contract call; all data prefetched into
/// the secure world, so no storage/network security overheads.
struct TscVeeCostModel {
  uint64_t ns_dispatch = 10;       ///< A53 at 1.4 GHz, interpreted
  uint64_t ns_arithmetic = 14;
  uint64_t ns_mul_div = 55;
  uint64_t ns_keccak_per_block = 600;
  uint64_t ns_memory = 16;
  uint64_t ns_storage = 380;       ///< secure-memory table lookup
  uint64_t ns_log = 350;
  uint64_t ns_call = 15'000;       ///< includes SMC world switch
  uint64_t op_ns(evm::OpClass cls, uint8_t opcode) const {
    switch (cls) {
      case evm::OpClass::kArithmetic:
        return ns_dispatch + ((opcode == 0x02 || (opcode >= 0x04 && opcode <= 0x0a))
                                  ? ns_mul_div
                                  : ns_arithmetic);
      case evm::OpClass::kKeccak: return ns_dispatch + ns_keccak_per_block;
      case evm::OpClass::kMemory: return ns_dispatch + ns_memory;
      case evm::OpClass::kStorage: return ns_dispatch + ns_storage;
      case evm::OpClass::kLog: return ns_dispatch + ns_log;
      case evm::OpClass::kCall: return ns_dispatch + ns_call;
      default: return ns_dispatch + 3;
    }
  }
};

/// ORAM server (paper §VI-D: ~25 us service time per query).
struct OramServerModel {
  uint64_t service_ns = 25'000;
};

/// Crypto costs on the Hypervisor's ARM core (paper §VI-C: ECDSA adds ~80 ms
/// per bundle — one verify of the user's input signature plus one sign of
/// the returned trace, ~40 ms each on the A53; AES-GCM runs on the A.E.DMA
/// hardware at a modest streaming rate).
struct CryptoCostModel {
  uint64_t ecdsa_sign_ns = 40'000'000;
  uint64_t ecdsa_verify_ns = 40'000'000;
  double aes_gcm_bytes_per_ns = 0.005;  ///< ~5 MB/s user-channel AES-GCM stream
  uint64_t aes_gcm_setup_ns = 5'000;

  uint64_t aes_gcm_ns(uint64_t bytes) const {
    return aes_gcm_setup_ns +
           static_cast<uint64_t>(static_cast<double>(bytes) / aes_gcm_bytes_per_ns);
  }
};

/// Hypervisor message-handling costs (header check + DMA programming).
struct HypervisorCostModel {
  uint64_t message_handle_ns = 100'000;  ///< non-preemptive interrupt + header validation on the A53
  uint64_t dma_setup_ns = 3'000;
};

}  // namespace hardtape::sim
