// Bounded exponential backoff with deterministic jitter, in SIMULATED time.
//
// The recovery layer (oram/frontend.hpp) retries a request against the
// untrusted backend after a timeout; the wait between attempts doubles from
// base_ns up to cap_ns, plus a jitter term so concurrent sessions retrying
// against the same server do not synchronize into retry storms. The jitter
// is drawn from the ChaCha20 DRBG keyed by (jitter_seed, stream_tag,
// attempt), never from wall time or a shared generator — so a retry
// schedule depends only on those inputs, keeping faulted runs reproducible
// and the fault-free timeline bit-identical to serial execution.
#pragma once

#include <cstdint>

#include "common/random.hpp"

namespace hardtape::sim {

struct BackoffPolicy {
  /// Simulated time one attempt may spend waiting on the backend before it
  /// counts as dropped. Default ~4x the modeled ORAM round trip (~2.5 ms
  /// Ethernet RTT + server service, DESIGN.md §6).
  uint64_t request_timeout_ns = 10'000'000;
  /// Total attempts (first try + retries) before giving up fail-closed.
  int max_attempts = 4;
  uint64_t base_ns = 2'000'000;  ///< wait before the first retry
  uint64_t cap_ns = 50'000'000;  ///< exponential growth clamps here
  /// Jitter added on top of the exponential term, uniform in
  /// [0, jitter_frac * term]. Zero disables jitter entirely.
  double jitter_frac = 0.5;
  uint64_t jitter_seed = 0x7ea5'0ff5;
};

/// Simulated wait before retry number `attempt` (1 = first retry).
/// `stream_tag` identifies the retrying request (the engine derives it from
/// the block id) so distinct requests de-synchronize.
///
/// Safe for unbounded attempt counts: the exponential term saturates at
/// cap_ns before the doubling can wrap uint64 (a wrapped term would reset
/// the wait to ~0 around attempt 63 and re-synchronize every retrying
/// session into a storm), and the jitter bound is computed without the
/// float->int conversion UB a cap_ns near UINT64_MAX would otherwise hit.
inline uint64_t backoff_delay_ns(const BackoffPolicy& policy, int attempt,
                                 uint64_t stream_tag) {
  if (attempt < 1) return 0;
  uint64_t term = policy.base_ns;
  for (int i = 1; i < attempt && term < policy.cap_ns; ++i) {
    if (term > policy.cap_ns / 2) {  // one more doubling would pass (or wrap past) the cap
      term = policy.cap_ns;
      break;
    }
    term *= 2;
  }
  if (term > policy.cap_ns) term = policy.cap_ns;
  const double jitter_term = policy.jitter_frac * static_cast<double>(term);
  // Largest double exactly representable below 2^64; anything at or above
  // it would make the cast below undefined.
  constexpr double kMaxExact = 18446744073709549568.0;  // 2^64 - 2048
  const uint64_t jitter_bound = jitter_term <= 0.0 ? 0
                                : jitter_term >= kMaxExact
                                    ? static_cast<uint64_t>(kMaxExact)
                                    : static_cast<uint64_t>(jitter_term);
  if (jitter_bound == 0) return term;
  Random rng(policy.jitter_seed ^ (stream_tag * 0x9e3779b97f4a7c15ull) ^
             (static_cast<uint64_t>(static_cast<unsigned>(attempt) & 0xff) << 56));
  const uint64_t jitter = rng.uniform(jitter_bound == UINT64_MAX ? UINT64_MAX
                                                                 : jitter_bound + 1);
  // The sum can still exceed uint64 for adversarial cap/jitter configs;
  // saturate instead of wrapping (a wrap would zero the wait).
  return term > UINT64_MAX - jitter ? UINT64_MAX : term + jitter;
}

}  // namespace hardtape::sim
