// Simulated time (DESIGN.md §6).
//
// Every performance number in the benches comes from this clock driven by
// explicit cost models, never from host wall-clock time. That makes results
// deterministic and lets the shape of the paper's Figures 4/5 reproduce even
// though the host is not an XCZU15EV FPGA: on the prototype, time is
// cycles / frequency, and we model the cycles.
#pragma once

#include <chrono>
#include <cstdint>

namespace hardtape::sim {

/// Nanosecond-resolution simulated clock.
class SimClock {
 public:
  uint64_t now_ns() const { return now_ns_; }
  double now_us() const { return static_cast<double>(now_ns_) / 1e3; }
  double now_ms() const { return static_cast<double>(now_ns_) / 1e6; }

  void advance_ns(uint64_t ns) { now_ns_ += ns; }
  void advance_us(double us) { now_ns_ += static_cast<uint64_t>(us * 1e3); }
  void advance_ms(double ms) { now_ns_ += static_cast<uint64_t>(ms * 1e6); }

  /// Advance to an absolute time (no-op if already past it).
  void advance_to(uint64_t t_ns) {
    if (t_ns > now_ns_) now_ns_ = t_ns;
  }

  void reset() { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

/// Elapsed-time probe: mark a start point, measure the simulated delta.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock& clock) : clock_(clock), start_ns_(clock.now_ns()) {}
  uint64_t elapsed_ns() const { return clock_.now_ns() - start_ns_; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  void restart() { start_ns_ = clock_.now_ns(); }

 private:
  const SimClock& clock_;
  uint64_t start_ns_;
};

/// Host wall-clock probe for the concurrency metrics (queue wait, lock
/// contention, engine wall throughput). Wall figures are host measurements
/// and must never feed the reproduced paper numbers — those always come from
/// SimClock. Each engine session threads its own SimClock; WallTimer is what
/// the engine uses to observe the real thread pool around those sessions.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  uint64_t elapsed_ns() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start_)
                                     .count());
  }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hardtape::sim
