// Unified metrics registry (obs subsystem).
//
// One Registry per process component (the engine owns one, benches own one):
// named counters, gauges and histograms with Prometheus-style text
// exposition and a JSON dump for machine-readable artifacts. This replaces
// the ad-hoc per-binary metric structs — a struct like EngineMetrics is now
// a typed *view* assembled from a Registry snapshot, and every percentile
// anywhere comes from the shared nearest-rank helper (obs/percentile.hpp).
//
// Concurrency: Counter/Gauge are lock-free atomics, Histogram takes a small
// mutex per observe (it keeps the full sample for exact percentiles — these
// are bench/engine-scale series, thousands of points, not line-rate events).
// Registry lookups take a mutex but return stable references: instruments
// are created once and never move or disappear, so hot paths should look up
// once and keep the reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/percentile.hpp"

namespace hardtape::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t encode(double v) {
    uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
  }
  static double decode(uint64_t bits) {
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

/// Exact-sample histogram: keeps every observation for nearest-rank
/// percentiles (the series here are bundle latencies and gap samples, not
/// line-rate traffic).
class Histogram {
 public:
  void observe(uint64_t v) {
    std::lock_guard lock(mu_);
    samples_.push_back(v);
    sum_ += v;
  }
  uint64_t count() const {
    std::lock_guard lock(mu_);
    return samples_.size();
  }
  uint64_t sum() const {
    std::lock_guard lock(mu_);
    return sum_;
  }
  double mean() const {
    std::lock_guard lock(mu_);
    return samples_.empty() ? 0.0
                            : static_cast<double>(sum_) / static_cast<double>(samples_.size());
  }
  /// Nearest-rank percentile; 0 when the histogram is empty.
  uint64_t percentile(double p) const {
    std::lock_guard lock(mu_);
    if (samples_.empty()) return 0;
    return obs::percentile(samples_, p);
  }
  std::vector<uint64_t> snapshot() const {
    std::lock_guard lock(mu_);
    return samples_;
  }
  void reset() {
    std::lock_guard lock(mu_);
    samples_.clear();
    sum_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> samples_;
  uint64_t sum_ = 0;
};

class Registry {
 public:
  /// Instruments are created on first use and live as long as the Registry;
  /// the returned references are stable. Registering one name with two
  /// different kinds throws UsageError.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::string_view help = "");

  /// Prometheus text exposition format (HELP/TYPE + samples). Histograms are
  /// exposed as _count/_sum plus p50/p95/p99 quantile gauges.
  std::string prometheus_text() const;
  /// JSON object {name: value | {count,sum,mean,p50,p95,p99}} for artifacts.
  std::string json() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, std::string_view help, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;  // sorted => stable output
};

}  // namespace hardtape::obs
