// Shared nearest-rank percentile helper (obs subsystem).
//
// Every latency summary in the repo — engine metrics, bench tables, the
// leakage auditor's gap statistics — must agree on what "p99" means, or two
// reports of the same run disagree. We standardize on the nearest-rank
// definition: for n samples, the p-th percentile is the value at 1-based rank
// ceil(p/100 * n) of the sorted sample. Properties the callers rely on:
//   - p=100 is the maximum, p->0+ is the minimum;
//   - for n=100, p99 is the 99th smallest sample (NOT the max — the
//     off-by-one this helper replaced in bench_throughput);
//   - the result is always an actual sample (no interpolation), so integer
//     nanosecond inputs yield integer nanosecond outputs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/errors.hpp"

namespace hardtape::obs {

/// 1-based nearest rank of percentile p in n samples: ceil(p/100 * n),
/// clamped to [1, n]. Throws UsageError when n == 0 or p outside (0, 100].
inline size_t percentile_rank(size_t n, double p) {
  if (n == 0) throw UsageError("percentile: empty sample");
  if (!(p > 0.0 && p <= 100.0)) throw UsageError("percentile: p outside (0, 100]");
  const auto rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  return std::min(std::max<size_t>(rank, 1), n);
}

/// Nearest-rank percentile of `sorted` (ascending). Throws on empty input.
template <typename T>
T percentile_sorted(const std::vector<T>& sorted, double p) {
  return sorted[percentile_rank(sorted.size(), p) - 1];
}

/// Nearest-rank percentile of an unsorted sample (copies and sorts).
template <typename T>
T percentile(std::vector<T> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

}  // namespace hardtape::obs
