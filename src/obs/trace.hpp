// Structured, deterministic tracing (obs subsystem).
//
// Every boundary the adversary — or an operator debugging the deployment —
// can observe emits fixed-size TraceEvents: per-opcode retire in the HEVM
// core, SwapEvents on the layer-2/3 memory bus, ORAM query issue/retry/
// complete at the frontend, and bundle lifecycle in the engine. Events carry
// BOTH timelines (DESIGN.md §1): the session's simulated clock (deterministic,
// what the auditor consumes) and host wall time (diagnostics only).
//
// Determinism contract: tracing is pull-only instrumentation. Emission never
// advances a clock, draws randomness, or changes control flow, so traced and
// untraced runs execute identically; with tracing off (no ring installed)
// the hot paths do a single null check and nothing else, keeping the
// fault-free engine sweep bit-identical to the seed behaviour.
//
// Concurrency: one TraceRing per worker (single writer each, the engine maps
// worker i to ring i); shared components (the ORAM frontend) write to their
// own ring under the ring's internal mutex. Rings are bounded: when full they
// overwrite the oldest events and count drops — tracing can never OOM a run.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace hardtape::obs {

enum class TraceCategory : uint8_t {
  kOpcode = 0,  ///< HEVM per-opcode retire
  kSwap = 1,    ///< layer-2/3 memory-bus swap (the A5 channel)
  kOram = 2,    ///< ORAM frontend request lifecycle (the A7 channel)
  kBundle = 3,  ///< engine bundle lifecycle
};
const char* to_string(TraceCategory category);

/// Event codes within a category. Kept in one enum so a JSONL line is
/// self-describing without a per-component schema.
enum class TraceCode : uint16_t {
  // kOpcode: code = the retired opcode byte (0x00..0xff), not listed here.
  // kSwap
  kSwapEvict = 0x100,
  kSwapLoad = 0x101,
  // kOram
  kOramIssue = 0x200,
  kOramRetry = 0x201,
  kOramComplete = 0x202,
  kOramShardAccess = 0x203,  ///< sharded store walk: a = shard, b = local leaf
  // kBundle
  kBundleSubmit = 0x300,
  kBundleStart = 0x301,
  kBundleComplete = 0x302,
  kBundleRequeue = 0x303,
  kBundleResim = 0x304,   ///< outcome orphaned by a reorg, re-executed
  kEpochAdvance = 0x305,  ///< engine re-pinned to a newer chain snapshot
  kWarmRestart = 0x306,   ///< engine adopted a crash-recovered store image
  kBundleReadmit = 0x307, ///< recovered pending bundle re-admitted post-crash
};
const char* to_string(TraceCode code);

/// One fixed-size trace record. Meaning of a/b/c by (category, code):
///   kOpcode:              a = pc, b = gas_left, c = depth  (code = opcode)
///   kSwap evict/load:     a = observed pages, b = noise pages, c = depth
///   kOram issue (worker ring, engine SP timeline): a = page type, b = is_prefetch
///   kOram issue (frontend ring -2): a = is_write, b = stream tag
///   kOram retry:          a = attempt index, b = backoff sim ns
///   kOram complete:       a = terminal status code, b = recovery sim ns
///   kBundle submit/...:   a = bundle id, b = attempt, c = status code
struct TraceEvent {
  uint64_t seq = 0;      ///< per-ring emission index (pre-drop, gap-free)
  uint64_t sim_ns = 0;   ///< session's simulated clock at emission
  uint64_t wall_ns = 0;  ///< host ns since the sink's epoch (diagnostics)
  TraceCategory category = TraceCategory::kOpcode;
  uint16_t code = 0;
  int32_t worker = -1;
  uint64_t a = 0, b = 0, c = 0;
};

class TraceSink;

/// Bounded per-worker event buffer. append() is safe for concurrent writers
/// (internal mutex), but the intended shape is one writer per ring.
class TraceRing {
 public:
  TraceRing(TraceSink& sink, int32_t worker, size_t capacity);

  void append(TraceCategory category, uint16_t code, uint64_t sim_ns, uint64_t a,
              uint64_t b = 0, uint64_t c = 0);

  int32_t worker() const { return worker_; }
  /// Events currently buffered, oldest first (post-drop window).
  std::vector<TraceEvent> events() const;
  uint64_t emitted() const;
  uint64_t dropped() const;

 private:
  TraceSink& sink_;
  const int32_t worker_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> buffer_;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
};

/// Owner of the per-worker rings and the JSONL writer. Create one per
/// engine/bench run; hand `&sink.ring(worker_id)` to each instrumented
/// component. A null ring pointer anywhere means "tracing off".
class TraceSink {
 public:
  struct Config {
    size_t ring_capacity = 1 << 14;  ///< events kept per ring
    bool capture_wall_time = true;   ///< steady_clock per event when true
  };

  TraceSink();
  explicit TraceSink(Config config);

  /// The ring for `worker` (created on first use; stable reference).
  /// Convention: worker ids >= 0 are engine workers, -1 the producer/engine
  /// thread, -2 shared components (ORAM frontend).
  TraceRing& ring(int32_t worker);

  /// One JSON object per line, all rings merged, ordered by (worker, seq).
  /// Wall times are diagnostics; consumers wanting determinism must key on
  /// (worker, seq, sim_ns) only.
  void write_jsonl(std::ostream& out) const;

  uint64_t total_emitted() const;
  uint64_t total_dropped() const;

  const Config& config() const { return config_; }
  uint64_t wall_now_ns() const;

 private:
  Config config_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::deque<std::pair<int32_t, std::unique_ptr<TraceRing>>> rings_;
};

}  // namespace hardtape::obs
