#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace hardtape::obs {

const char* to_string(TraceCategory category) {
  switch (category) {
    case TraceCategory::kOpcode: return "opcode";
    case TraceCategory::kSwap: return "swap";
    case TraceCategory::kOram: return "oram";
    case TraceCategory::kBundle: return "bundle";
  }
  return "unknown";
}

const char* to_string(TraceCode code) {
  switch (code) {
    case TraceCode::kSwapEvict: return "swap_evict";
    case TraceCode::kSwapLoad: return "swap_load";
    case TraceCode::kOramIssue: return "oram_issue";
    case TraceCode::kOramRetry: return "oram_retry";
    case TraceCode::kOramComplete: return "oram_complete";
    case TraceCode::kOramShardAccess: return "oram_shard_access";
    case TraceCode::kBundleSubmit: return "bundle_submit";
    case TraceCode::kBundleStart: return "bundle_start";
    case TraceCode::kBundleComplete: return "bundle_complete";
    case TraceCode::kBundleRequeue: return "bundle_requeue";
    case TraceCode::kBundleResim: return "bundle_resim";
    case TraceCode::kEpochAdvance: return "epoch_advance";
    case TraceCode::kWarmRestart: return "warm_restart";
    case TraceCode::kBundleReadmit: return "bundle_readmit";
  }
  return "unknown";
}

TraceRing::TraceRing(TraceSink& sink, int32_t worker, size_t capacity)
    : sink_(sink), worker_(worker), capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRing::append(TraceCategory category, uint16_t code, uint64_t sim_ns, uint64_t a,
                       uint64_t b, uint64_t c) {
  // Stamp wall time outside the lock; it is diagnostics-only so a reordering
  // relative to another writer's stamp is acceptable.
  const uint64_t wall_ns = sink_.config().capture_wall_time ? sink_.wall_now_ns() : 0;
  std::lock_guard lock(mu_);
  TraceEvent e;
  e.seq = next_seq_++;
  e.sim_ns = sim_ns;
  e.wall_ns = wall_ns;
  e.category = category;
  e.code = code;
  e.worker = worker_;
  e.a = a;
  e.b = b;
  e.c = c;
  if (buffer_.size() == capacity_) {
    buffer_.pop_front();
    ++dropped_;
  }
  buffer_.push_back(e);
}

std::vector<TraceEvent> TraceRing::events() const {
  std::lock_guard lock(mu_);
  return {buffer_.begin(), buffer_.end()};
}

uint64_t TraceRing::emitted() const {
  std::lock_guard lock(mu_);
  return next_seq_;
}

uint64_t TraceRing::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

TraceSink::TraceSink() : TraceSink(Config{}) {}

TraceSink::TraceSink(Config config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceSink::wall_now_ns() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

TraceRing& TraceSink::ring(int32_t worker) {
  std::lock_guard lock(mu_);
  for (auto& [id, ring] : rings_) {
    if (id == worker) return *ring;
  }
  rings_.emplace_back(worker, std::make_unique<TraceRing>(*this, worker, config_.ring_capacity));
  return *rings_.back().second;
}

void TraceSink::write_jsonl(std::ostream& out) const {
  std::vector<const TraceRing*> ordered;
  {
    std::lock_guard lock(mu_);
    ordered.reserve(rings_.size());
    for (const auto& [id, ring] : rings_) ordered.push_back(ring.get());
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const TraceRing* a, const TraceRing* b) { return a->worker() < b->worker(); });
  for (const TraceRing* ring : ordered) {
    for (const TraceEvent& e : ring->events()) {
      // The cat/name strings are compiled-in today, but every string that
      // reaches the JSONL stream goes through json_escape so a future
      // data-derived label can't split a record across lines.
      out << "{\"worker\":" << e.worker << ",\"seq\":" << e.seq << ",\"sim_ns\":" << e.sim_ns
          << ",\"wall_ns\":" << e.wall_ns << ",\"cat\":\"" << json_escape(to_string(e.category))
          << "\",\"code\":" << e.code;
      if (e.category == TraceCategory::kOpcode) {
        out << ",\"op\":" << e.code;
      } else {
        out << ",\"name\":\"" << json_escape(to_string(static_cast<TraceCode>(e.code)))
            << "\"";
      }
      out << ",\"a\":" << e.a << ",\"b\":" << e.b << ",\"c\":" << e.c << "}\n";
    }
  }
}

uint64_t TraceSink::total_emitted() const {
  std::vector<const TraceRing*> rings;
  {
    std::lock_guard lock(mu_);
    for (const auto& [id, ring] : rings_) rings.push_back(ring.get());
  }
  uint64_t total = 0;
  for (const TraceRing* ring : rings) total += ring->emitted();
  return total;
}

uint64_t TraceSink::total_dropped() const {
  std::vector<const TraceRing*> rings;
  {
    std::lock_guard lock(mu_);
    for (const auto& [id, ring] : rings_) rings.push_back(ring.get());
  }
  uint64_t total = 0;
  for (const TraceRing* ring : rings) total += ring->dropped();
  return total;
}

}  // namespace hardtape::obs
