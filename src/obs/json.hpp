// JSON string escaping for every obs exposition surface (JSONL traces,
// registry dumps, bench artifacts).
//
// Exported fields can carry bytes the chip never chose: metric names are
// assembled from runtime ids, and trace/artifact pipelines downstream of a
// hostile contract may embed contract-controlled data (return data, log
// payloads) into labels. A raw '"' or '\n' in such a field splits a JSONL
// line in two — corrupting the stream an auditor replays — and a non-UTF8
// byte makes the whole document unparseable for strict consumers. This
// helper makes any byte sequence JSON-safe:
//  - '"', '\\' and the C0 control range are escaped ('\n', '\t', '\r'
//    short forms; \u00XX otherwise), so one logical record is always one
//    physical line;
//  - well-formed UTF-8 passes through untouched;
//  - malformed UTF-8 (stray continuation bytes, overlong or truncated
//    sequences, 0xFE/0xFF) is escaped byte-wise as \u00XX — lossless enough
//    to debug, and always valid JSON.
#pragma once

#include <string>
#include <string_view>

namespace hardtape::obs {

/// Escapes `s` for embedding between double quotes in a JSON document.
/// Output is pure ASCII-or-valid-UTF8 with no unescaped control bytes.
std::string json_escape(std::string_view s);

}  // namespace hardtape::obs
