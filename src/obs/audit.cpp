#include "obs/audit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.hpp"

namespace hardtape::obs {

SpTrace SpTrace::project(const std::vector<TraceEvent>& events) {
  SpTrace sp;
  for (const TraceEvent& e : events) {
    switch (e.category) {
      case TraceCategory::kOram:
        if (e.code == static_cast<uint16_t>(TraceCode::kOramIssue)) {
          sp.queries.push_back({e.sim_ns, static_cast<uint8_t>(e.a)});
        }
        break;
      case TraceCategory::kSwap:
        sp.swaps.push_back({e.sim_ns, e.code, e.a});
        break;
      case TraceCategory::kBundle:
        if (e.code == static_cast<uint16_t>(TraceCode::kBundleStart)) {
          sp.session_starts.push_back(sp.queries.size());
        }
        break;
      case TraceCategory::kOpcode:
        break;  // not SP-visible
    }
  }
  return sp;
}

std::vector<std::pair<uint64_t, uint8_t>> SpTrace::typed_gaps() const {
  std::vector<std::pair<uint64_t, uint8_t>> gaps;
  size_t boundary = 0;  // next session_starts entry to consume
  for (size_t i = 1; i < queries.size(); ++i) {
    while (boundary < session_starts.size() && session_starts[boundary] <= i - 1) ++boundary;
    // Skip the pair straddling a session boundary: the two timestamps come
    // from different sim clocks.
    if (boundary < session_starts.size() && session_starts[boundary] == i) continue;
    gaps.emplace_back(queries[i].sim_ns - queries[i - 1].sim_ns, queries[i].type);
  }
  return gaps;
}

std::vector<uint64_t> SpTrace::query_gaps() const {
  std::vector<uint64_t> gaps;
  for (const auto& [gap, type] : typed_gaps()) gaps.push_back(gap);
  return gaps;
}

std::vector<uint64_t> SpTrace::swap_sizes() const {
  std::vector<uint64_t> sizes;
  sizes.reserve(swaps.size());
  for (const SpSwap& s : swaps) sizes.push_back(s.pages);
  return sizes;
}

double ks_statistic(std::vector<uint64_t> a, std::vector<uint64_t> b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double max_diff = 0.0;
  size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const uint64_t x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] == x) ++ia;
    while (ib < b.size() && b[ib] == x) ++ib;
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb));
  }
  return max_diff;
}

namespace {

struct MeanVar {
  double mean = 0.0;
  double var = 0.0;  // population variance
  size_t n = 0;
};

MeanVar mean_var(const std::vector<double>& xs) {
  MeanVar mv;
  mv.n = xs.size();
  if (mv.n == 0) return mv;
  for (double x : xs) mv.mean += x;
  mv.mean /= static_cast<double>(mv.n);
  for (double x : xs) mv.var += (x - mv.mean) * (x - mv.mean);
  mv.var /= static_cast<double>(mv.n);
  return mv;
}

}  // namespace

double type_gap_z(const SpTrace& trace, uint8_t code_type) {
  // Gap *preceding* each query, split by whether the query is code-type.
  // Mirrors the distinguishability statistic in bench_ablation_oram
  // (ablation 3) exactly: |mean difference| in units of the POOLED STDDEV —
  // an effect size, invariant to sample count. (A standard-error z would
  // flag any nonzero mean difference given enough samples; the adversary's
  // per-query classification power is what the effect size measures.) If
  // the prefetcher is doing its job, the gap before a code fetch looks like
  // the gap before any other fetch.
  std::vector<double> code_gaps, other_gaps;
  for (const auto& [gap, type] : trace.typed_gaps()) {
    (type == code_type ? code_gaps : other_gaps).push_back(static_cast<double>(gap));
  }
  const MeanVar c = mean_var(code_gaps);
  const MeanVar o = mean_var(other_gaps);
  if (c.n < 2 || o.n < 2) return 0.0;
  const double pooled_sd =
      std::sqrt((c.var * static_cast<double>(c.n) + o.var * static_cast<double>(o.n)) /
                static_cast<double>(c.n + o.n));
  if (pooled_sd == 0.0) return 0.0;
  return (c.mean - o.mean) / pooled_sd;
}

double code_gap_dispersion(const SpTrace& trace, uint8_t code_type) {
  std::vector<double> code_gaps, other_gaps;
  for (const auto& [gap, type] : trace.typed_gaps()) {
    (type == code_type ? code_gaps : other_gaps).push_back(static_cast<double>(gap));
  }
  const MeanVar c = mean_var(code_gaps);
  const MeanVar o = mean_var(other_gaps);
  if (c.n < 2 || o.n < 2 || c.mean <= 0.0 || o.mean <= 0.0) return 1.0;
  const double cv_code = std::sqrt(c.var) / c.mean;
  const double cv_other = std::sqrt(o.var) / o.mean;
  if (cv_other == 0.0) return 1.0;  // whole timeline is metronomic: no signal
  return cv_code / cv_other;
}

double pearson(const std::vector<uint64_t>& x, const std::vector<uint64_t>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += static_cast<double>(x[i]);
    my += static_cast<double>(y[i]);
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(x[i]) - mx;
    const double dy = static_cast<double>(y[i]) - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

void add_finding(AuditReport& report, std::string channel, bool pass, double statistic,
                 double threshold, std::string detail) {
  report.findings.push_back(
      {std::move(channel), pass, statistic, threshold, std::move(detail)});
  report.pass = report.pass && pass;
}

std::string count_detail(size_t na, size_t nb) {
  std::ostringstream out;
  out << "n_a=" << na << " n_b=" << nb;
  return out.str();
}

}  // namespace

AuditReport audit_obliviousness(const SpTrace& a, const SpTrace& b, const AuditConfig& config) {
  AuditReport report;

  // 1. Query type sequence: exact.
  {
    bool same = a.queries.size() == b.queries.size();
    size_t first_diff = a.queries.size();
    if (same) {
      for (size_t i = 0; i < a.queries.size(); ++i) {
        if (a.queries[i].type != b.queries[i].type) {
          same = false;
          first_diff = i;
          break;
        }
      }
    }
    std::ostringstream detail;
    detail << count_detail(a.queries.size(), b.queries.size());
    if (!same && first_diff < a.queries.size()) detail << " first_diff_at=" << first_diff;
    add_finding(report, "query_type_sequence", same, same ? 0.0 : 1.0, 0.0, detail.str());
  }

  // 2. Per-type query counts: exact (redundant with 1 when 1 passes; gives a
  //    sharper signal when it fails).
  {
    uint64_t counts_a[256] = {0}, counts_b[256] = {0};
    for (const SpQuery& q : a.queries) ++counts_a[q.type];
    for (const SpQuery& q : b.queries) ++counts_b[q.type];
    bool same = true;
    std::ostringstream detail;
    for (int t = 0; t < 256; ++t) {
      if (counts_a[t] != counts_b[t]) {
        same = false;
        detail << " type" << t << "=" << counts_a[t] << "vs" << counts_b[t];
      }
    }
    add_finding(report, "query_type_counts", same, same ? 0.0 : 1.0, 0.0,
                same ? count_detail(a.queries.size(), b.queries.size())
                     : "mismatch:" + detail.str());
  }

  // 3. Swap schedule: exact kind sequence and count. Only meaningful when the
  //    two traces ran the same intent (determinism audits); across intents
  //    the noise stream legitimately reshapes the schedule, and the swap
  //    channel is judged statistically by channel 5 instead.
  if (config.require_exact_swap_schedule) {
    bool same = a.swaps.size() == b.swaps.size();
    if (same) {
      for (size_t i = 0; i < a.swaps.size(); ++i) {
        if (a.swaps[i].code != b.swaps[i].code) {
          same = false;
          break;
        }
      }
    }
    add_finding(report, "swap_schedule", same, same ? 0.0 : 1.0, 0.0,
                count_detail(a.swaps.size(), b.swaps.size()));
  } else {
    add_finding(report, "swap_schedule", true, 0.0, 0.0,
                "relaxed: deferred to swap_size_ks; " +
                    count_detail(a.swaps.size(), b.swaps.size()));
  }

  // 4a. Inter-query gap distributions: two-sample KS.
  {
    const auto gaps_a = a.query_gaps();
    const auto gaps_b = b.query_gaps();
    if (gaps_a.size() < config.min_samples || gaps_b.size() < config.min_samples) {
      add_finding(report, "query_gap_ks", true, 0.0, config.ks_threshold,
                  "skipped: " + count_detail(gaps_a.size(), gaps_b.size()));
    } else {
      const double ks = ks_statistic(gaps_a, gaps_b);
      add_finding(report, "query_gap_ks", ks <= config.ks_threshold, ks, config.ks_threshold,
                  count_detail(gaps_a.size(), gaps_b.size()));
    }
  }

  // 4b. Type-gap effect size, per trace: does mean timing predict query type?
  for (const auto& [trace, label] :
       {std::pair<const SpTrace*, const char*>{&a, "type_gap_z_a"},
        std::pair<const SpTrace*, const char*>{&b, "type_gap_z_b"}}) {
    const double z = type_gap_z(*trace, config.code_type);
    add_finding(report, label, std::abs(z) <= config.type_gap_z_threshold, z,
                config.type_gap_z_threshold, count_detail(trace->queries.size(), 0));
  }

  // 4c. Code-gap dispersion, per trace: metronomic code fetches mean frame
  //     entries are readable off the timeline (prefetch ablated). This one
  //     passes when the statistic is ABOVE the threshold.
  for (const auto& [trace, label] :
       {std::pair<const SpTrace*, const char*>{&a, "code_gap_dispersion_a"},
        std::pair<const SpTrace*, const char*>{&b, "code_gap_dispersion_b"}}) {
    const double ratio = code_gap_dispersion(*trace, config.code_type);
    add_finding(report, label, ratio >= config.code_gap_dispersion_min, ratio,
                config.code_gap_dispersion_min,
                "pass when >= threshold; " + count_detail(trace->queries.size(), 0));
  }

  // 5. Observed swap-size distributions: two-sample KS.
  {
    const auto sizes_a = a.swap_sizes();
    const auto sizes_b = b.swap_sizes();
    if (sizes_a.size() < config.min_samples || sizes_b.size() < config.min_samples) {
      add_finding(report, "swap_size_ks", true, 0.0, config.ks_threshold,
                  "skipped: " + count_detail(sizes_a.size(), sizes_b.size()));
    } else {
      const double ks = ks_statistic(sizes_a, sizes_b);
      add_finding(report, "swap_size_ks", ks <= config.ks_threshold, ks, config.ks_threshold,
                  count_detail(sizes_a.size(), sizes_b.size()));
    }
  }

  return report;
}

double uniform_ks_statistic(std::vector<uint64_t> sample, uint64_t support) {
  if (sample.empty() || support == 0) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  const double s = static_cast<double>(support);
  double max_diff = 0.0;
  size_t i = 0;
  while (i < sample.size()) {
    const uint64_t v = sample[i];
    size_t j = i;
    while (j < sample.size() && sample[j] == v) ++j;
    // ECDF just below v vs F(v-1), and at v vs F(v). The flat ECDF stretch
    // between consecutive observed values is covered by the next iteration's
    // below-v comparison (its ECDF equals this one's at-v value).
    const double f_lo = static_cast<double>(v) / s;
    const double f_hi = static_cast<double>(v + 1) / s;
    max_diff = std::max(max_diff, std::abs(static_cast<double>(i) / n - f_lo));
    max_diff = std::max(max_diff, std::abs(static_cast<double>(j) / n - f_hi));
    i = j;
  }
  return max_diff;
}

AuditReport audit_shard_obliviousness(
    const std::vector<std::pair<uint32_t, uint64_t>>& walks, uint32_t shard_count,
    uint64_t leaf_count, const ShardAuditConfig& config) {
  AuditReport report;
  if (shard_count == 0) {
    add_finding(report, "shard_balance_z", false, 0.0, 0.0, "no shards");
    return report;
  }

  std::vector<std::vector<uint64_t>> leaves(shard_count);
  for (const auto& [shard, leaf] : walks) {
    if (shard < shard_count) leaves[shard].push_back(leaf);
  }

  // 1. Shard-visit balance: worst binomial z across shards. Every walk is an
  //    independent uniform shard draw under the faithful redraw, so count_s ~
  //    Binomial(n, 1/S).
  {
    const double n = static_cast<double>(walks.size());
    const double p = 1.0 / static_cast<double>(shard_count);
    const double sd = std::sqrt(n * p * (1.0 - p));
    double worst_z = 0.0;
    uint32_t worst_shard = 0;
    for (uint32_t s = 0; s < shard_count; ++s) {
      const double z =
          sd > 0.0 ? (static_cast<double>(leaves[s].size()) - n * p) / sd : 0.0;
      if (std::abs(z) > std::abs(worst_z)) {
        worst_z = z;
        worst_shard = s;
      }
    }
    std::ostringstream detail;
    detail << "worst_shard=" << worst_shard << " visits=" << leaves[worst_shard].size()
           << " expected=" << n * p << " n=" << walks.size();
    add_finding(report, "shard_balance_z",
                std::abs(worst_z) <= config.shard_balance_z_threshold, worst_z,
                config.shard_balance_z_threshold, detail.str());
  }

  // 2. Per-shard leaf uniformity: sqrt(n) * one-sample KS vs uniform.
  for (uint32_t s = 0; s < shard_count; ++s) {
    std::ostringstream channel;
    channel << "shard" << s << "_leaf_ks";
    if (leaves[s].size() < config.min_samples) {
      std::ostringstream detail;
      detail << "skipped: n=" << leaves[s].size();
      add_finding(report, channel.str(), true, 0.0, config.leaf_ks_threshold,
                  detail.str());
      continue;
    }
    const double n = static_cast<double>(leaves[s].size());
    const double stat = std::sqrt(n) * uniform_ks_statistic(leaves[s], leaf_count);
    std::ostringstream detail;
    detail << "n=" << leaves[s].size() << " leaves=" << leaf_count;
    add_finding(report, channel.str(), stat <= config.leaf_ks_threshold, stat,
                config.leaf_ks_threshold, detail.str());
  }

  return report;
}

std::string AuditReport::summary() const {
  std::ostringstream out;
  for (const AuditFinding& f : findings) {
    out << (f.pass ? "PASS" : "FAIL") << "  " << f.channel << "  stat=" << f.statistic
        << " thresh=" << f.threshold << "  " << f.detail << "\n";
  }
  out << (pass ? "AUDIT PASS" : "AUDIT FAIL") << "\n";
  return out.str();
}

std::string AuditReport::json() const {
  std::ostringstream out;
  out << "{\"pass\": " << (pass ? "true" : "false") << ", \"findings\": [";
  bool first = true;
  for (const AuditFinding& f : findings) {
    if (!first) out << ", ";
    first = false;
    out << "{\"channel\": \"" << json_escape(f.channel)
        << "\", \"pass\": " << (f.pass ? "true" : "false")
        << ", \"statistic\": " << f.statistic << ", \"threshold\": " << f.threshold
        << ", \"detail\": \"" << json_escape(f.detail) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace hardtape::obs
