// Obliviousness auditor (obs subsystem).
//
// The HarDTAPE security argument (threats A5/A7) is that the service
// provider's view of a pre-execution — the ORAM query stream and the
// layer-2/3 swap schedule — is independent of transaction secrets. The
// auditor turns that claim into a regression test: run the SAME public
// workload shape twice with different secret intents (different storage
// keys, different code paths of equal public cost), project both traces
// onto what the SP can see, and demand the projections be identical where
// the design says identical and statistically indistinguishable where the
// design says padded/shaped.
//
// Channels checked, from strongest to weakest guarantee:
//   1. query type sequence      — exact match (ORAM requests are fixed-shape;
//                                 only the page *type* mix is public workload)
//   2. per-type query counts    — exact match
//   3. swap event schedule      — exact match of kind sequence and count
//   4. inter-query sim-time gaps— two-sample Kolmogorov–Smirnov ≤ threshold,
//                                 plus two per-trace statistics on the gap
//                                 before code vs KV queries: a mean effect
//                                 size (bench_ablation_oram ablation 3) and
//                                 a dispersion ratio. The dispersion ratio is
//                                 the prefetch-ablation detector: demand-time
//                                 code fetches trail their trigger by a FIXED
//                                 model latency (zero jitter), so near-zero
//                                 code-gap dispersion means the SP can mark
//                                 frame entries (contract fingerprinting,
//                                 paper §IV-D problem 3)
//   5. observed swap sizes      — two-sample KS ≤ threshold (noise padding
//                                 must blur intent-dependent frame sizes,
//                                 cf. bench_ablation_memlayer ablation 2)
//
// The auditor consumes SpTrace projections built from TraceEvents; building
// the projection deliberately DROPS everything the SP cannot see (opcodes,
// gas, wall time, bundle internals).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hardtape::obs {

/// One SP-visible ORAM query: issue time on the deterministic sim clock and
/// the public page type (code / KV / account — encoded small int).
struct SpQuery {
  uint64_t sim_ns = 0;
  uint8_t type = 0;
};

/// One SP-visible swap on the untrusted memory bus: observed (padded) page
/// count and direction.
struct SpSwap {
  uint64_t sim_ns = 0;
  uint16_t code = 0;  ///< TraceCode::kSwapEvict or kSwapLoad
  uint64_t pages = 0;
};

/// Projection of a trace onto the service provider's view.
struct SpTrace {
  std::vector<SpQuery> queries;
  std::vector<SpSwap> swaps;
  /// Indices into `queries` where a new session's timeline begins (each
  /// session's sim clock restarts at 0). Gap statistics never straddle a
  /// boundary — the SP observes per-session timing, and a cross-session
  /// "gap" between two unrelated clocks is meaningless (and would wrap
  /// uint64 when the next session starts earlier). Empty = single session.
  std::vector<size_t> session_starts;

  /// Extract the SP-visible projection from raw trace events. Opcode events
  /// are discarded; kOram issue events become queries (a = type); kSwap
  /// events become swaps (a = observed pages); kBundleStart events mark
  /// session boundaries (other bundle events are dropped).
  static SpTrace project(const std::vector<TraceEvent>& events);

  /// (gap, type of the query the gap precedes), skipping session boundaries.
  std::vector<std::pair<uint64_t, uint8_t>> typed_gaps() const;
  std::vector<uint64_t> query_gaps() const;  ///< successive sim-time deltas
  std::vector<uint64_t> swap_sizes() const;
};

struct AuditConfig {
  /// Max acceptable two-sample KS statistic on gap / swap-size samples.
  double ks_threshold = 0.20;
  /// Max acceptable |effect size| for mean-gap-before-code vs -before-KV.
  double type_gap_z_threshold = 3.0;
  /// Min acceptable CV(code gaps) / CV(KV gaps). Below this, code-fetch
  /// timing is too regular: fetches are locked to frame entry (the
  /// prefetch-ablated signature; faithful runs sit near 1.0).
  double code_gap_dispersion_min = 0.3;
  /// Statistical checks are skipped (reported as pass with detail) below
  /// this many samples per side — too little data to distinguish anything.
  size_t min_samples = 16;
  /// Page type encoding treated as "code" for the type-gap z statistic
  /// (matches oram::PageType::kCode; obs stays oram-agnostic).
  uint8_t code_type = 3;
  /// When true, channel 3 demands the swap kind sequence and count match
  /// exactly — appropriate for same-intent determinism checks (e.g. 1 vs 8
  /// workers). Across DIFFERENT intents the noise draws legitimately change
  /// how often eviction fires, so the default defers the swap channel to the
  /// statistical size test (channel 5).
  bool require_exact_swap_schedule = false;
};

struct AuditFinding {
  std::string channel;  ///< e.g. "query_type_sequence", "swap_size_ks"
  bool pass = false;
  double statistic = 0.0;  ///< the measured value (0/1 for exact channels)
  double threshold = 0.0;
  std::string detail;
};

struct AuditReport {
  std::vector<AuditFinding> findings;
  bool pass = true;  ///< AND of all findings

  std::string summary() const;  ///< one line per finding, human-readable
  std::string json() const;
};

/// Two-sample Kolmogorov–Smirnov statistic: sup |F_a(x) - F_b(x)| over the
/// pooled sample. 0 = identical empirical distributions, 1 = disjoint.
double ks_statistic(std::vector<uint64_t> a, std::vector<uint64_t> b);

/// Effect size (mean difference / pooled stddev, the bench_ablation_oram
/// "type distinguishability" statistic) of the gap preceding code-type
/// queries vs all other types, within one trace. Large |z| means query type
/// is predictable from timing — the A7 channel.
double type_gap_z(const SpTrace& trace, uint8_t code_type);

/// Coefficient-of-variation ratio CV(gap before code) / CV(gap before other
/// types), within one trace. Near zero = code fetches trail their trigger at
/// a fixed latency (demand-time fetching: the SP reads frame entries right
/// off the timeline). Returns 1 when either side is degenerate (<2 samples
/// or zero mean/CV denominator) — no signal, not a violation.
double code_gap_dispersion(const SpTrace& trace, uint8_t code_type);

/// Pearson correlation of two equal-length series (0 when degenerate).
double pearson(const std::vector<uint64_t>& x, const std::vector<uint64_t>& y);

/// Run every channel check on two SP projections captured from runs with
/// different secret intents under identical public parameters.
AuditReport audit_obliviousness(const SpTrace& a, const SpTrace& b,
                                const AuditConfig& config = {});

// ---------------------------------------------------------------------------
// Per-shard audit (PR 6). With the sharded frontend the SP's per-access view
// is a (shard, leaf) pair instead of one global leaf. The security claim of
// oram/sharded.hpp is that the pair is i.i.d. uniform: shard draws uniform
// over shards, leaf draws uniform over that shard's leaves, independent of
// which block was touched. The auditor tests exactly those two marginals:
//   1. shard_balance_z  — worst-shard binomial z of the shard-visit counts
//                         vs uniform. THE sharding leak detector: pinning a
//                         hot block to a fixed shard (pin_shard_assignment
//                         ablation) concentrates its accesses there and the
//                         worst bin blows up.
//   2. shard<i>_leaf_ks — per shard, one-sample KS of the observed leaf
//                         sequence vs discrete uniform over the shard's
//                         leaves, normalized to sqrt(n)*D so one threshold
//                         covers unevenly loaded shards.
// Batching/coalescing never appears here by construction: a coalesced rider
// performs NO walk, so it contributes no (shard, leaf) observation at all —
// dedup removes server traffic, it cannot correlate it.

struct ShardAuditConfig {
  /// Max acceptable sqrt(n) * one-sample-KS per shard. Under uniformity
  /// sqrt(n)*D stays ~O(1) regardless of n (Kolmogorov: P(sqrt(n)*D > 1.95)
  /// ~ 0.001); discreteness of the leaf support only lowers it.
  double leaf_ks_threshold = 2.0;
  /// Max acceptable |binomial z| of any shard's visit count vs uniform.
  /// Faithful redraw keeps the worst of S bins within ~3 sigma; a pinned hot
  /// page pushes its shard tens of sigma out.
  double shard_balance_z_threshold = 4.5;
  /// Per-shard leaf KS is skipped (pass with detail) under this many walks.
  size_t min_samples = 16;
};

/// One-sample KS statistic of `sample` vs the discrete uniform distribution
/// on [0, support): sup |F_emp(x) - (x+1)/support|.
double uniform_ks_statistic(std::vector<uint64_t> sample, uint64_t support);

/// Audit a sharded store's adversary view: `walks` is the global observation
/// order of (shard, shard-local leaf) pairs (ShardedOramStore::
/// observed_walks()), `shard_count`/`leaf_count` its public geometry.
AuditReport audit_shard_obliviousness(
    const std::vector<std::pair<uint32_t, uint64_t>>& walks, uint32_t shard_count,
    uint64_t leaf_count, const ShardAuditConfig& config = {});

}  // namespace hardtape::obs
