#include "obs/json.hpp"

#include <cstdio>

namespace hardtape::obs {

namespace {

void escape_byte(std::string& out, unsigned char c) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
  out += buf;
}

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not a valid sequence (including overlong encodings and
/// truncated tails). Follows RFC 3629: 4-byte max, surrogate range excluded.
size_t utf8_sequence_length(std::string_view s, size_t i) {
  const auto byte = [&](size_t k) { return static_cast<unsigned char>(s[k]); };
  const unsigned char b0 = byte(i);
  auto is_cont = [&](size_t k) {
    return k < s.size() && (byte(k) & 0xc0) == 0x80;
  };
  if (b0 < 0x80) return 1;
  if (b0 >= 0xc2 && b0 <= 0xdf) {  // 0xc0/0xc1 would be overlong
    return is_cont(i + 1) ? 2 : 0;
  }
  if (b0 == 0xe0) {  // second byte restricted to exclude overlongs
    return i + 2 < s.size() && byte(i + 1) >= 0xa0 && byte(i + 1) <= 0xbf &&
                   is_cont(i + 2)
               ? 3
               : 0;
  }
  if (b0 == 0xed) {  // exclude UTF-16 surrogates U+D800..U+DFFF
    return i + 2 < s.size() && byte(i + 1) >= 0x80 && byte(i + 1) <= 0x9f &&
                   is_cont(i + 2)
               ? 3
               : 0;
  }
  if (b0 >= 0xe1 && b0 <= 0xef) {
    return is_cont(i + 1) && is_cont(i + 2) ? 3 : 0;
  }
  if (b0 == 0xf0) {
    return i + 3 < s.size() && byte(i + 1) >= 0x90 && byte(i + 1) <= 0xbf &&
                   is_cont(i + 2) && is_cont(i + 3)
               ? 4
               : 0;
  }
  if (b0 >= 0xf1 && b0 <= 0xf3) {
    return is_cont(i + 1) && is_cont(i + 2) && is_cont(i + 3) ? 4 : 0;
  }
  if (b0 == 0xf4) {  // cap at U+10FFFF
    return i + 3 < s.size() && byte(i + 1) >= 0x80 && byte(i + 1) <= 0x8f &&
                   is_cont(i + 2) && is_cont(i + 3)
               ? 4
               : 0;
  }
  return 0;  // 0xc0, 0xc1, 0xf5..0xff: never valid lead bytes
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  size_t i = 0;
  while (i < s.size()) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x80) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (c < 0x20) {
            escape_byte(out, c);
          } else {
            out += static_cast<char>(c);
          }
      }
      ++i;
      continue;
    }
    const size_t len = utf8_sequence_length(s, i);
    if (len == 0) {  // malformed: escape this single byte and resynchronize
      escape_byte(out, c);
      ++i;
    } else {
      out.append(s.substr(i, len));
      i += len;
    }
  }
  return out;
}

}  // namespace hardtape::obs
