#include "obs/metrics.hpp"

#include <cmath>
#include <sstream>

#include "common/errors.hpp"
#include "obs/json.hpp"

namespace hardtape::obs {

namespace {

/// Doubles in exposition output: integers print without a trailing ".0"
/// so counters read naturally; everything else keeps full precision.
std::string format_double(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

}  // namespace

Registry::Entry& Registry::entry(std::string_view name, std::string_view help, Kind kind) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    e.help = std::string(help);
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
    }
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw UsageError("metrics registry: '" + std::string(name) +
                     "' already registered with a different kind");
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  return *entry(name, help, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  return *entry(name, help, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help) {
  return *entry(name, help, Kind::kHistogram).histogram;
}

std::string Registry::prometheus_text() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) out << "# HELP " << name << " " << e.help << "\n";
    switch (e.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << format_double(e.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << name << " summary\n";
        out << name << "_count " << e.histogram->count() << "\n";
        out << name << "_sum " << e.histogram->sum() << "\n";
        for (const double q : {50.0, 95.0, 99.0}) {
          out << name << "{quantile=\"" << format_double(q / 100.0) << "\"} "
              << e.histogram->percentile(q) << "\n";
        }
        break;
      }
    }
  }
  return out.str();
}

std::string Registry::json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << json_escape(name) << "\": ";
    switch (e.kind) {
      case Kind::kCounter: out << e.counter->value(); break;
      case Kind::kGauge: out << format_double(e.gauge->value()); break;
      case Kind::kHistogram:
        out << "{\"count\": " << e.histogram->count() << ", \"sum\": " << e.histogram->sum()
            << ", \"mean\": " << format_double(e.histogram->mean())
            << ", \"p50\": " << e.histogram->percentile(50)
            << ", \"p95\": " << e.histogram->percentile(95)
            << ", \"p99\": " << e.histogram->percentile(99) << "}";
        break;
    }
  }
  out << "}";
  return out.str();
}

}  // namespace hardtape::obs
