#include "common/random.hpp"

#include <bit>
#include <cstring>

namespace hardtape {

namespace {
constexpr std::array<uint32_t, 4> kSigma = {0x61707865, 0x3320646e, 0x79622d32,
                                            0x6b206574};  // "expand 32-byte k"

inline void quarter_round(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}
}  // namespace

void chacha20_block(const std::array<uint32_t, 8>& key, uint32_t counter,
                    const std::array<uint32_t, 3>& nonce,
                    std::array<uint8_t, 64>& out) {
  std::array<uint32_t, 16> state = {
      kSigma[0], kSigma[1], kSigma[2], kSigma[3],
      key[0],    key[1],    key[2],    key[3],
      key[4],    key[5],    key[6],    key[7],
      counter,   nonce[0],  nonce[1],  nonce[2]};
  std::array<uint32_t, 16> x = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (size_t i = 0; i < 16; ++i) {
    const uint32_t v = x[i] + state[i];
    std::memcpy(out.data() + i * 4, &v, 4);  // little-endian hosts only
  }
}

Random::Random(uint64_t seed) {
  key_[0] = static_cast<uint32_t>(seed);
  key_[1] = static_cast<uint32_t>(seed >> 32);
  key_[2] = 0x68617264;  // "hard"
  key_[3] = 0x74617065;  // "tape"
}

Random::Random(BytesView seed_material) {
  Bytes padded = right_pad(seed_material, 32);
  std::memcpy(key_.data(), padded.data(), 32);
}

void Random::refill() {
  chacha20_block(key_, counter_++, nonce_, buffer_);
  available_ = buffer_.size();
}

void Random::fill(uint8_t* out, size_t n) {
  while (n > 0) {
    if (available_ == 0) refill();
    const size_t take = std::min(n, available_);
    std::memcpy(out, buffer_.data() + (buffer_.size() - available_), take);
    available_ -= take;
    out += take;
    n -= take;
  }
}

uint64_t Random::next_u64() {
  uint64_t v;
  fill(reinterpret_cast<uint8_t*>(&v), sizeof v);
  return v;
}

uint64_t Random::uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = bound * ((~uint64_t{0} / bound));
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

uint64_t Random::uniform_range(uint64_t lo, uint64_t hi) {
  return lo + uniform(hi - lo + 1);
}

double Random::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes Random::bytes(size_t n) {
  Bytes out(n);
  fill(out.data(), n);
  return out;
}

std::array<uint8_t, 32> Random::bytes32() {
  std::array<uint8_t, 32> out;
  fill(out.data(), out.size());
  return out;
}

uint64_t Random::swap_noise(uint64_t max_extra) {
  if (max_extra == 0) return 0;
  return uniform(max_extra + 1);
}

}  // namespace hardtape
