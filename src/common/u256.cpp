#include "common/u256.hpp"

#include <algorithm>
#include <cstring>

namespace hardtape {

namespace {
using u128 = unsigned __int128;

inline uint64_t byteswap64(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap64(v);
#else
  v = ((v & 0x00ff00ff00ff00ffull) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffull);
  v = ((v & 0x0000ffff0000ffffull) << 16) | ((v >> 16) & 0x0000ffff0000ffffull);
  return (v << 32) | (v >> 32);
#endif
}

// 512-bit scratch value used by mulmod / wide multiplication, little-endian
// limbs. Internal only; not exposed in the public API.
struct U512 {
  std::array<uint64_t, 8> limbs{};

  bool is_zero() const {
    for (uint64_t l : limbs)
      if (l) return false;
    return true;
  }
  unsigned bit_length() const {
    for (int i = 7; i >= 0; --i) {
      if (limbs[i]) return static_cast<unsigned>(i * 64 + 64 - __builtin_clzll(limbs[i]));
    }
    return 0;
  }
  bool bit(unsigned i) const { return ((limbs[i / 64] >> (i % 64)) & 1u) != 0; }
  void set_bit(unsigned i) { limbs[i / 64] |= (uint64_t{1} << (i % 64)); }

  // *this <<= 1
  void shl1() {
    uint64_t carry = 0;
    for (auto& l : limbs) {
      const uint64_t next = l >> 63;
      l = (l << 1) | carry;
      carry = next;
    }
  }
  // Compare against a 256-bit value placed in the low limbs.
  std::strong_ordering cmp256(const u256& v) const {
    for (int i = 7; i >= 4; --i)
      if (limbs[i]) return std::strong_ordering::greater;
    for (int i = 3; i >= 0; --i) {
      if (limbs[i] != v.limb(i)) {
        return limbs[i] < v.limb(i) ? std::strong_ordering::less
                                    : std::strong_ordering::greater;
      }
    }
    return std::strong_ordering::equal;
  }
  // *this -= v (v placed in low limbs); caller guarantees *this >= v.
  void sub256(const u256& v) {
    uint64_t borrow = 0;
    for (int i = 0; i < 4; ++i) {
      const u128 d = u128(limbs[i]) - v.limb(i) - borrow;
      limbs[i] = static_cast<uint64_t>(d);
      borrow = static_cast<uint64_t>((d >> 64) & 1);
    }
    for (int i = 4; i < 8 && borrow; ++i) {
      const u128 d = u128(limbs[i]) - borrow;
      limbs[i] = static_cast<uint64_t>(d);
      borrow = static_cast<uint64_t>((d >> 64) & 1);
    }
  }
};

// 512 mod 256 by binary long division. O(bits) but simple and obviously
// correct; division is rare in real contract workloads.
u256 mod512(const U512& a, const u256& m) {
  if (m.is_zero()) return u256{};
  U512 rem{};
  const unsigned n = a.bit_length();
  for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
    rem.shl1();
    if (a.bit(static_cast<unsigned>(i))) rem.limbs[0] |= 1;
    if (rem.cmp256(m) >= 0) rem.sub256(m);
  }
  return u256{rem.limbs[3], rem.limbs[2], rem.limbs[1], rem.limbs[0]};
}
}  // namespace

std::strong_ordering operator<=>(const u256& a, const u256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? std::strong_ordering::less
                                       : std::strong_ordering::greater;
    }
  }
  return std::strong_ordering::equal;
}

u256 operator+(const u256& a, const u256& b) {
  u256 r;
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = u128(a.limbs_[i]) + b.limbs_[i] + carry;
    r.limbs_[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  return r;
}

u256 operator-(const u256& a, const u256& b) {
  u256 r;
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = u128(a.limbs_[i]) - b.limbs_[i] - borrow;
    r.limbs_[i] = static_cast<uint64_t>(d);
    borrow = static_cast<uint64_t>((d >> 64) & 1);
  }
  return r;
}

std::pair<u256, u256> u256::mul_wide(const u256& a, const u256& b) {
  std::array<uint64_t, 8> r{};
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = u128(a.limbs_[i]) * b.limbs_[j] + r[i + j] + carry;
      r[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    r[i + 4] = carry;
  }
  return {u256{r[7], r[6], r[5], r[4]}, u256{r[3], r[2], r[1], r[0]}};
}

u256 operator*(const u256& a, const u256& b) { return u256::mul_wide(a, b).second; }

std::pair<u256, u256> u256::divmod(const u256& a, const u256& b) {
  if (b.is_zero()) return {u256{}, u256{}};
  if (a < b) return {u256{}, a};
  // Binary long division.
  u256 quotient{}, rem{};
  const unsigned n = a.bit_length();
  for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
    rem = rem << 1;
    if (a.bit(static_cast<unsigned>(i))) rem.limbs_[0] |= 1;
    if (rem >= b) {
      rem -= b;
      quotient.limbs_[i / 64] |= (uint64_t{1} << (i % 64));
    }
  }
  return {quotient, rem};
}

u256 operator/(const u256& a, const u256& b) { return u256::divmod(a, b).first; }
u256 operator%(const u256& a, const u256& b) { return u256::divmod(a, b).second; }

u256 operator&(const u256& a, const u256& b) {
  u256 r;
  for (int i = 0; i < 4; ++i) r.limbs_[i] = a.limbs_[i] & b.limbs_[i];
  return r;
}
u256 operator|(const u256& a, const u256& b) {
  u256 r;
  for (int i = 0; i < 4; ++i) r.limbs_[i] = a.limbs_[i] | b.limbs_[i];
  return r;
}
u256 operator^(const u256& a, const u256& b) {
  u256 r;
  for (int i = 0; i < 4; ++i) r.limbs_[i] = a.limbs_[i] ^ b.limbs_[i];
  return r;
}
u256 operator~(const u256& a) {
  u256 r;
  for (int i = 0; i < 4; ++i) r.limbs_[i] = ~a.limbs_[i];
  return r;
}

u256 operator<<(const u256& a, unsigned n) {
  if (n >= 256) return u256{};
  u256 r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    uint64_t v = 0;
    const int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = a.limbs_[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) v |= a.limbs_[src - 1] >> (64 - bit_shift);
    }
    r.limbs_[i] = v;
  }
  return r;
}

u256 operator>>(const u256& a, unsigned n) {
  if (n >= 256) return u256{};
  u256 r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 0; i < 4; ++i) {
    uint64_t v = 0;
    const unsigned src = static_cast<unsigned>(i) + limb_shift;
    if (src < 4) {
      v = a.limbs_[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) v |= a.limbs_[src + 1] << (64 - bit_shift);
    }
    r.limbs_[i] = v;
  }
  return r;
}

unsigned u256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i]) return static_cast<unsigned>(i * 64 + 64 - __builtin_clzll(limbs_[i]));
  }
  return 0;
}

u256 u256::from_be_bytes(BytesView be) {
  if (be.size() > 32) throw std::invalid_argument("u256: more than 32 bytes");
  u256 r;
  if (be.size() == 32) {  // word loads (MLOAD, hash digests): bswap limbs
    uint64_t w[4];
    std::memcpy(w, be.data(), 32);
    r.limbs_[0] = byteswap64(w[3]);
    r.limbs_[1] = byteswap64(w[2]);
    r.limbs_[2] = byteswap64(w[1]);
    r.limbs_[3] = byteswap64(w[0]);
    return r;
  }
  for (size_t i = 0; i < be.size(); ++i) {
    const size_t bit_pos = (be.size() - 1 - i) * 8;
    r.limbs_[bit_pos / 64] |= uint64_t{be[i]} << (bit_pos % 64);
  }
  return r;
}

std::array<uint8_t, 32> u256::to_be_bytes() const {
  std::array<uint8_t, 32> out;
  const uint64_t w[4] = {byteswap64(limbs_[3]), byteswap64(limbs_[2]),
                         byteswap64(limbs_[1]), byteswap64(limbs_[0])};
  std::memcpy(out.data(), w, 32);
  return out;
}

Bytes u256::to_be_bytes_vec() const {
  const auto a = to_be_bytes();
  return Bytes(a.begin(), a.end());
}

u256 u256::from_string(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("u256: empty string");
  if (s.starts_with("0x") || s.starts_with("0X")) {
    s.remove_prefix(2);
    if (s.empty() || s.size() > 64) throw std::invalid_argument("u256: bad hex");
    std::string padded(s.size() % 2 ? "0" : "", s.size() % 2 ? 1 : 0);
    padded += s;
    return from_be_bytes(hardtape::from_hex(padded));
  }
  u256 r;
  for (char c : s) {
    if (c < '0' || c > '9') throw std::invalid_argument("u256: bad decimal");
    r = r * u256{10} + u256{static_cast<uint64_t>(c - '0')};
  }
  return r;
}

std::string u256::to_hex() const {
  const auto be = to_be_bytes();
  std::string full = hardtape::to_hex({be.data(), be.size()});
  const size_t first = full.find_first_not_of('0');
  return first == std::string::npos ? "0" : full.substr(first);
}

std::string u256::to_string() const {
  if (is_zero()) return "0";
  std::string out;
  u256 v = *this;
  while (!v.is_zero()) {
    auto [q, r] = divmod(v, u256{10});
    out.push_back(static_cast<char>('0' + r.as_u64()));
    v = q;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

u256 u256::addmod(const u256& a, const u256& b, const u256& m) {
  if (m.is_zero()) return u256{};
  // Sum can be 257 bits; carry it through a U512.
  U512 sum{};
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = u128(a.limbs_[i]) + b.limbs_[i] + carry;
    sum.limbs[static_cast<size_t>(i)] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  sum.limbs[4] = carry;
  return mod512(sum, m);
}

u256 u256::mulmod(const u256& a, const u256& b, const u256& m) {
  if (m.is_zero()) return u256{};
  const auto [hi, lo] = mul_wide(a, b);
  U512 prod{};
  for (int i = 0; i < 4; ++i) {
    prod.limbs[static_cast<size_t>(i)] = lo.limb(static_cast<size_t>(i));
    prod.limbs[static_cast<size_t>(i) + 4] = hi.limb(static_cast<size_t>(i));
  }
  return mod512(prod, m);
}

u256 u256::exp(const u256& base, const u256& exponent) {
  u256 result{1};
  u256 b = base;
  const unsigned n = exponent.bit_length();
  for (unsigned i = 0; i < n; ++i) {
    if (exponent.bit(i)) result *= b;
    b *= b;
  }
  return result;
}

u256 u256::sdiv(const u256& a, const u256& b) {
  if (b.is_zero()) return u256{};
  const bool an = a.is_negative();
  const bool bn = b.is_negative();
  const u256 q = (an ? a.neg() : a) / (bn ? b.neg() : b);
  return (an != bn) ? q.neg() : q;
}

u256 u256::smod(const u256& a, const u256& b) {
  if (b.is_zero()) return u256{};
  const bool an = a.is_negative();
  const u256 r = (an ? a.neg() : a) % (b.is_negative() ? b.neg() : b);
  return an ? r.neg() : r;  // result takes the sign of the dividend
}

bool u256::slt(const u256& a, const u256& b) {
  const bool an = a.is_negative();
  const bool bn = b.is_negative();
  if (an != bn) return an;
  return a < b;
}

u256 u256::signextend(const u256& byte_index, const u256& value) {
  if (!byte_index.fits_u64() || byte_index.as_u64() >= 31) return value;
  const unsigned sign_bit = static_cast<unsigned>(byte_index.as_u64()) * 8 + 7;
  u256 mask = (u256{1} << (sign_bit + 1)) - u256{1};
  if (value.bit(sign_bit)) return value | ~mask;
  return value & mask;
}

u256 u256::sar(const u256& value, const u256& shift) {
  const bool neg = value.is_negative();
  if (!shift.fits_u64() || shift.as_u64() >= 256) {
    return neg ? ~u256{} : u256{};
  }
  const unsigned n = static_cast<unsigned>(shift.as_u64());
  u256 r = value >> n;
  if (neg && n > 0) r = r | (~u256{} << (256 - n));
  return r;
}

u256 u256::byte(const u256& index, const u256& value) {
  if (!index.fits_u64() || index.as_u64() >= 32) return u256{};
  const auto be = value.to_be_bytes();
  return u256{be[index.as_u64()]};
}

}  // namespace hardtape
