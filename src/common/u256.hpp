// 256-bit unsigned integer with EVM semantics.
//
// The EVM is a 256-bit machine: every stack slot, storage key and storage
// value is a 256-bit word. All arithmetic wraps mod 2^256; division by zero
// yields zero (EVM convention, not an error). Signed operations interpret the
// word as two's complement.
//
// Representation: four 64-bit limbs, least-significant first.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace hardtape {

class u256 {
 public:
  constexpr u256() : limbs_{0, 0, 0, 0} {}
  constexpr u256(uint64_t v) : limbs_{v, 0, 0, 0} {}  // NOLINT: implicit by design
  constexpr u256(uint64_t l3, uint64_t l2, uint64_t l1, uint64_t l0)
      : limbs_{l0, l1, l2, l3} {}  // big-endian-ish ctor: l3 is most significant

  /// Limb access, index 0 = least significant.
  constexpr uint64_t limb(size_t i) const { return limbs_[i]; }
  constexpr uint64_t& limb(size_t i) { return limbs_[i]; }

  static u256 from_be_bytes(BytesView be);  ///< big-endian, up to 32 bytes
  std::array<uint8_t, 32> to_be_bytes() const;
  Bytes to_be_bytes_vec() const;

  /// Parses decimal, or hex when prefixed with 0x. Throws on bad input.
  static u256 from_string(std::string_view s);
  std::string to_hex() const;  ///< minimal-length lowercase hex, no 0x
  std::string to_string() const;  ///< decimal

  constexpr bool is_zero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  explicit constexpr operator bool() const { return !is_zero(); }

  /// True when the value fits in uint64_t.
  constexpr bool fits_u64() const {
    return (limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  /// Low 64 bits (truncating).
  constexpr uint64_t as_u64() const { return limbs_[0]; }
  /// Saturating conversion to uint64_t (used for gas/memory size checks).
  constexpr uint64_t as_u64_saturating() const {
    return fits_u64() ? limbs_[0] : ~uint64_t{0};
  }

  /// Index of the highest set bit plus one; 0 for zero.
  unsigned bit_length() const;
  bool bit(unsigned i) const {
    return i < 256 && ((limbs_[i / 64] >> (i % 64)) & 1u) != 0;
  }
  /// Sign bit for two's-complement interpretation.
  constexpr bool is_negative() const { return (limbs_[3] >> 63) != 0; }

  friend constexpr bool operator==(const u256& a, const u256& b) = default;
  friend std::strong_ordering operator<=>(const u256& a, const u256& b);

  friend u256 operator+(const u256& a, const u256& b);
  friend u256 operator-(const u256& a, const u256& b);
  friend u256 operator*(const u256& a, const u256& b);
  friend u256 operator/(const u256& a, const u256& b);  ///< 0 if b == 0
  friend u256 operator%(const u256& a, const u256& b);  ///< 0 if b == 0
  friend u256 operator&(const u256& a, const u256& b);
  friend u256 operator|(const u256& a, const u256& b);
  friend u256 operator^(const u256& a, const u256& b);
  friend u256 operator~(const u256& a);
  friend u256 operator<<(const u256& a, unsigned n);
  friend u256 operator>>(const u256& a, unsigned n);  ///< logical

  u256& operator+=(const u256& b) { return *this = *this + b; }
  u256& operator-=(const u256& b) { return *this = *this - b; }
  u256& operator*=(const u256& b) { return *this = *this * b; }
  u256& operator|=(const u256& b) { return *this = *this | b; }
  u256& operator&=(const u256& b) { return *this = *this & b; }
  u256& operator^=(const u256& b) { return *this = *this ^ b; }

  u256 neg() const { return u256{} - *this; }  ///< two's complement negation

  // In-place limb operations for the fast execution path: the result is
  // written over *this without materializing a temporary u256 (the binary
  // operators above return by value, which costs a 32-byte copy per hot ALU
  // op in the decoded dispatch loop).
  constexpr void add_in_place(const u256& b) {
    uint64_t carry = 0;
    for (size_t i = 0; i < 4; ++i) {
      const uint64_t s = limbs_[i] + b.limbs_[i];
      const uint64_t c1 = static_cast<uint64_t>(s < limbs_[i]);
      const uint64_t s2 = s + carry;
      carry = c1 | static_cast<uint64_t>(s2 < s);
      limbs_[i] = s2;
    }
  }
  /// *this = a - *this (subtrahend in place; matches EVM SUB where the
  /// minuend is the stack top and the result lands one slot below).
  constexpr void rsub_in_place(const u256& a) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < 4; ++i) {
      const uint64_t d = a.limbs_[i] - limbs_[i];
      const uint64_t b1 = static_cast<uint64_t>(a.limbs_[i] < limbs_[i]);
      const uint64_t d2 = d - borrow;
      borrow = b1 | static_cast<uint64_t>(d < borrow);
      limbs_[i] = d2;
    }
  }
  constexpr void and_in_place(const u256& b) {
    for (size_t i = 0; i < 4; ++i) limbs_[i] &= b.limbs_[i];
  }
  constexpr void or_in_place(const u256& b) {
    for (size_t i = 0; i < 4; ++i) limbs_[i] |= b.limbs_[i];
  }
  constexpr void xor_in_place(const u256& b) {
    for (size_t i = 0; i < 4; ++i) limbs_[i] ^= b.limbs_[i];
  }
  constexpr void not_in_place() {
    for (size_t i = 0; i < 4; ++i) limbs_[i] = ~limbs_[i];
  }

  /// Quotient and remainder in one pass. Returns {0, 0} when b == 0.
  static std::pair<u256, u256> divmod(const u256& a, const u256& b);

  // EVM-specific operations (names match opcodes).
  static u256 addmod(const u256& a, const u256& b, const u256& m);
  static u256 mulmod(const u256& a, const u256& b, const u256& m);
  static u256 exp(const u256& base, const u256& exponent);
  static u256 sdiv(const u256& a, const u256& b);
  static u256 smod(const u256& a, const u256& b);
  static bool slt(const u256& a, const u256& b);
  static u256 signextend(const u256& byte_index, const u256& value);
  static u256 sar(const u256& value, const u256& shift);  ///< arithmetic >>
  /// EVM BYTE opcode: i-th byte counted from the most significant end.
  static u256 byte(const u256& index, const u256& value);

  /// 256x256 -> 512-bit multiplication, result as (high, low).
  static std::pair<u256, u256> mul_wide(const u256& a, const u256& b);

 private:
  std::array<uint64_t, 4> limbs_;  // little-endian limb order
};

/// Keccak-width hash value and other 32-byte identifiers.
struct H256 {
  std::array<uint8_t, 32> bytes{};

  static H256 from(BytesView data) {
    if (data.size() != 32) throw std::invalid_argument("H256: need 32 bytes");
    H256 h;
    std::memcpy(h.bytes.data(), data.data(), 32);
    return h;
  }
  static H256 from_u256(const u256& v) {
    H256 h;
    h.bytes = v.to_be_bytes();
    return h;
  }
  u256 to_u256() const { return u256::from_be_bytes(bytes); }
  BytesView view() const { return {bytes.data(), bytes.size()}; }
  std::string hex() const { return to_hex(view()); }
  bool is_zero() const {
    for (uint8_t b : bytes)
      if (b) return false;
    return true;
  }
  friend bool operator==(const H256&, const H256&) = default;
  friend auto operator<=>(const H256&, const H256&) = default;
};

/// 20-byte Ethereum account address.
struct Address {
  std::array<uint8_t, 20> bytes{};

  static Address from(BytesView data) {
    if (data.size() != 20) throw std::invalid_argument("Address: need 20 bytes");
    Address a;
    std::memcpy(a.bytes.data(), data.data(), 20);
    return a;
  }
  static Address from_hex(std::string_view hex) {
    return from(hardtape::from_hex(hex));
  }
  /// Address stored in the low 20 bytes of a 256-bit word (EVM convention).
  static Address from_u256(const u256& v) {
    const auto be = v.to_be_bytes();
    Address a;
    std::memcpy(a.bytes.data(), be.data() + 12, 20);
    return a;
  }
  u256 to_u256() const {
    Bytes padded(32, 0);
    std::memcpy(padded.data() + 12, bytes.data(), 20);
    return u256::from_be_bytes(padded);
  }
  BytesView view() const { return {bytes.data(), bytes.size()}; }
  std::string hex() const { return "0x" + to_hex(view()); }
  bool is_zero() const {
    for (uint8_t b : bytes)
      if (b) return false;
    return true;
  }
  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;
};

struct H256Hasher {
  size_t operator()(const H256& h) const {
    uint64_t v;
    std::memcpy(&v, h.bytes.data(), sizeof v);
    return static_cast<size_t>(v);
  }
};

struct AddressHasher {
  size_t operator()(const Address& a) const {
    uint64_t v;
    std::memcpy(&v, a.bytes.data(), sizeof v);
    return static_cast<size_t>(v * 0x9e3779b97f4a7c15ull);
  }
};

struct U256Hasher {
  size_t operator()(const u256& v) const {
    return static_cast<size_t>((v.limb(0) ^ (v.limb(1) * 0x9e3779b97f4a7c15ull)) ^
                               (v.limb(2) + (v.limb(3) << 1)));
  }
};

}  // namespace hardtape
