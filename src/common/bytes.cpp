#include "common/bytes.hpp"

namespace hardtape {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::string to_hex0x(BytesView data) { return "0x" + to_hex(data); }

Bytes from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("from_hex: bad digit");
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

Bytes right_pad(BytesView data, size_t size) {
  Bytes out(size, 0);
  const size_t n = std::min(size, data.size());
  if (n > 0) std::memcpy(out.data(), data.data(), n);
  return out;
}

}  // namespace hardtape
