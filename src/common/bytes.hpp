// Byte-buffer utilities shared by every HarDTAPE module.
//
// Ethereum data is byte-oriented: addresses, hashes, RLP payloads, contract
// bytecode, ORAM pages. We standardize on std::vector<uint8_t> ("Bytes") for
// owning buffers and std::span<const uint8_t> ("BytesView") for views.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hardtape {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

/// Encodes a byte range as lowercase hex without a 0x prefix.
std::string to_hex(BytesView data);

/// Encodes with a 0x prefix (Ethereum convention).
std::string to_hex0x(BytesView data);

/// Decodes a hex string (with or without 0x prefix). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Constant-time equality for secrets (MAC tags, keys). Returns false on
/// length mismatch without early exit inside the compared range.
bool ct_equal(BytesView a, BytesView b);

/// Returns a copy of `data` zero-padded (on the right) to `size`; truncates
/// if longer. Used for fixed-size message fields.
Bytes right_pad(BytesView data, size_t size);

}  // namespace hardtape
