#include "common/errors.hpp"

namespace hardtape {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kAuthFailed: return "auth-failed";
    case Status::kBadProof: return "bad-proof";
    case Status::kNotFound: return "not-found";
    case Status::kBusy: return "busy";
    case Status::kMemoryOverflow: return "memory-overflow";
    case Status::kStashOverflow: return "stash-overflow";
    case Status::kMalformedMessage: return "malformed-message";
    case Status::kRejected: return "rejected";
    case Status::kTimeout: return "timeout";
    case Status::kUnavailable: return "unavailable";
    case Status::kRetryExhausted: return "retry-exhausted";
    case Status::kStale: return "stale";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
    case Status::kDeviceLost: return "device-lost";
    case Status::kStatusCount_: break;  // sentinel, not a real status
  }
  return "unknown";
}

}  // namespace hardtape
