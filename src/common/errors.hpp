// Error taxonomy for HarDTAPE.
//
// Two regimes, per CppCoreGuidelines I.10 / E.14:
//  - Programming and contract violations throw exceptions derived from
//    HardtapeError (misuse of an API, malformed inputs to library internals).
//  - Expected protocol-level failures — a MAC that fails to verify, a Merkle
//    proof that does not check out, an HEVM that ran out of gas — are values:
//    status enums carried in results, because callers must branch on them.
#pragma once

#include <stdexcept>
#include <string>

namespace hardtape {

/// Base class for all library exceptions.
class HardtapeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown on malformed serialized data (RLP, message frames, pages).
class DecodingError : public HardtapeError {
 public:
  using HardtapeError::HardtapeError;
};

/// Thrown when an API precondition is violated by the caller.
class UsageError : public HardtapeError {
 public:
  using HardtapeError::HardtapeError;
};

/// Thrown when data under the chip's own integrity protection fails to
/// verify (a sealed ORAM slot with a bad tag, a mapped block the server no
/// longer returns). Distinct from UsageError/DecodingError so fault-tolerant
/// layers can convert exactly these — and only these — into Status values
/// (the untrusted backend misbehaving is an expected outcome under the
/// paper's threat model, not a programming error).
class IntegrityError : public HardtapeError {
 public:
  using HardtapeError::HardtapeError;
};

/// Protocol-level status for operations whose failure is an expected outcome.
enum class Status {
  kOk,
  kAuthFailed,        ///< AES-GCM tag or ECDSA signature rejected
  kBadProof,          ///< Merkle proof inconsistent with the trusted root
  kNotFound,          ///< key absent (world state, ORAM page)
  kBusy,              ///< no idle HEVM available
  kMemoryOverflow,    ///< execution frame exceeded half of layer-2 memory (paper §IV-B)
  kStashOverflow,     ///< Path ORAM stash exceeded its on-chip bound
  kMalformedMessage,  ///< hypervisor rejected a message header
  kRejected,          ///< attestation or policy rejection
  kTimeout,           ///< untrusted backend gave no response within the request timeout
  kUnavailable,       ///< circuit breaker open: backend quarantined, request not attempted
  kRetryExhausted,    ///< bounded retries + backoff used up without a good response
  /// The chain outran this result: the bundle's pinned snapshot fell behind
  /// the head by more than the staleness budget (or its pinned root was
  /// orphaned by a reorg) and the bounded re-sync/re-execute attempts were
  /// used up. Like kUnavailable/kRetryExhausted this is a fail-closed
  /// refusal, not a wrong answer: the engine never reports traces produced
  /// against a state the canonical chain no longer contains.
  kStale,
  /// The front door shed this request at admission: the service is past its
  /// brownout watermarks (or this tenant's queue is full / its tenant class
  /// is being shed) and queueing it would only grow tail latency without
  /// bound. A fast, honest refusal — the client may retry elsewhere or
  /// later; nothing was executed and no device time was spent.
  kOverloaded,
  /// The request's queue-wait budget was already blown when the admission
  /// or dispatch decision was made (the frame arrived late, or the request
  /// aged out in its tenant queue before a device freed). Fail-closed
  /// refusal: a pre-execution answer delivered after the caller's deadline
  /// is worthless, so the service never spends a device on it.
  kDeadlineExceeded,
  /// The dedicated device executing (or queued to execute) this request died
  /// or was drained away, and no device could ever serve it again within its
  /// failover budget. Fail-closed: a dying device's sealed session state dies
  /// with it — recovery is re-bind + re-execute from the bundle, never a
  /// resume in the clear — so when the fleet cannot host another attempt the
  /// honest terminal answer is "your device is gone", not a stale result.
  kDeviceLost,
  // Sentinel — keep last. Lets tests iterate every value and prove that
  // to_string never silently degrades to "unknown" for a real status.
  kStatusCount_,
};

const char* to_string(Status s);

/// Carrier for an unrecoverable backend fault detected beneath a
/// value-returning interface (state::StateReader cannot return a Status).
/// Caught at the session boundary and converted to the carried Status —
/// it never escapes the pre-execution engine.
class BackendFault : public HardtapeError {
 public:
  explicit BackendFault(Status status)
      : HardtapeError(std::string("backend fault: ") + to_string(status)),
        status_(status) {}
  Status status() const { return status_; }

 private:
  Status status_;
};

}  // namespace hardtape
