// Deterministic random bit generator used across HarDTAPE.
//
// The paper requires a "secure source of randomness proposed by the
// Manufacturer" (Section IV-B) for ORAM leaf choices, pre-evict/pre-load
// noise, key generation, and nonce derivation. We implement a ChaCha20-based
// DRBG: cryptographically strong output, cheap reseeding, and fully
// deterministic under a fixed seed so every experiment is reproducible.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace hardtape {

/// The ChaCha20 block function (RFC 8439). Exposed for tests and for the
/// stream cipher in crypto/.
void chacha20_block(const std::array<uint32_t, 8>& key, uint32_t counter,
                    const std::array<uint32_t, 3>& nonce,
                    std::array<uint8_t, 64>& out);

/// ChaCha20-based DRBG. Not thread-safe; create one per simulated component.
class Random {
 public:
  /// Seeds from a 64-bit value (expanded into the ChaCha key).
  explicit Random(uint64_t seed);
  /// Seeds from raw key material (up to 32 bytes used).
  explicit Random(BytesView seed_material);

  uint64_t next_u64();
  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  uint64_t uniform(uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  uint64_t uniform_range(uint64_t lo, uint64_t hi);
  double uniform_double();  ///< in [0, 1)
  void fill(uint8_t* out, size_t n);
  Bytes bytes(size_t n);
  std::array<uint8_t, 32> bytes32();

  /// Pager noise: number of extra pages to pre-evict/pre-load, uniform in
  /// [0, max_extra] — a distribution independent of the true swap size
  /// (paper §IV-B: "random noises following a distribution unrelated to the
  /// actual size").
  uint64_t swap_noise(uint64_t max_extra);

 private:
  void refill();

  std::array<uint32_t, 8> key_{};
  std::array<uint32_t, 3> nonce_{};
  uint32_t counter_ = 0;
  std::array<uint8_t, 64> buffer_{};
  size_t available_ = 0;
};

}  // namespace hardtape
