#include "state/world_state.hpp"

#include <algorithm>

#include "trie/rlp.hpp"

namespace hardtape::state {

namespace {
H256 account_trie_key(const Address& addr) { return crypto::keccak256(addr.view()); }
H256 storage_trie_key(const u256& key) {
  return crypto::keccak256(key.to_be_bytes_vec());
}
}  // namespace

std::optional<Account> WorldState::account(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return std::nullopt;
  return it->second.account;
}

u256 WorldState::storage(const Address& addr, const u256& key) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return u256{};
  const auto vit = it->second.storage_plain.find(key);
  return vit == it->second.storage_plain.end() ? u256{} : vit->second;
}

Bytes WorldState::code(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return Bytes{};
  const auto cit = code_store_.find(it->second.account.code_hash);
  return cit == code_store_.end() ? Bytes{} : cit->second;
}

WorldState::AccountRecord& WorldState::record_for(const Address& addr) {
  trie_dirty_ = true;
  const auto it = accounts_.find(addr);
  if (it != accounts_.end()) return it->second;
  AccountRecord& rec = accounts_[addr];
  if (node_store_ != nullptr) {
    rec.storage_trie = trie::MerklePatriciaTrie{node_store_};
  }
  return rec;
}

void WorldState::set_balance(const Address& addr, const u256& balance) {
  record_for(addr).account.balance = balance;
}

void WorldState::set_nonce(const Address& addr, uint64_t nonce) {
  record_for(addr).account.nonce = nonce;
}

void WorldState::set_code(const Address& addr, BytesView code) {
  AccountRecord& rec = record_for(addr);
  rec.account.code_hash = crypto::keccak256(code);
  code_store_[rec.account.code_hash] = Bytes(code.begin(), code.end());
}

void WorldState::set_storage(const Address& addr, const u256& key, const u256& value) {
  AccountRecord& rec = record_for(addr);
  const H256 tk = storage_trie_key(key);
  if (value.is_zero()) {
    rec.storage_plain.erase(key);
    rec.storage_trie.erase(tk.view());
  } else {
    rec.storage_plain[key] = value;
    rec.storage_trie.put(tk.view(), trie::rlp_encode_u256(value));
  }
  rec.account.storage_root = rec.storage_trie.root_hash();
}

void WorldState::delete_account(const Address& addr) {
  trie_dirty_ = true;
  accounts_.erase(addr);
}

void WorldState::rebuild_state_trie() const {
  if (!trie_dirty_) return;
  state_trie_ = node_store_ != nullptr ? trie::MerklePatriciaTrie{node_store_}
                                       : trie::MerklePatriciaTrie{};
  for (const auto& [addr, rec] : accounts_) {
    Account account = rec.account;
    account.storage_root = rec.storage_trie.root_hash();
    state_trie_.put(account_trie_key(addr).view(), account.rlp_encode());
  }
  trie_dirty_ = false;
}

H256 WorldState::state_root() const {
  rebuild_state_trie();
  return state_trie_.root_hash();
}

trie::MerkleProof WorldState::prove_account(const Address& addr) const {
  rebuild_state_trie();
  return state_trie_.prove(account_trie_key(addr).view());
}

trie::MerkleProof WorldState::prove_storage(const Address& addr, const u256& key) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return {};
  return it->second.storage_trie.prove(storage_trie_key(key).view());
}

H256 WorldState::storage_root(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return trie::MerklePatriciaTrie::empty_root_hash();
  return it->second.storage_trie.root_hash();
}

std::vector<Address> WorldState::all_accounts() const {
  std::vector<Address> out;
  out.reserve(accounts_.size());
  for (const auto& [addr, rec] : accounts_) out.push_back(addr);
  std::sort(out.begin(), out.end());
  return out;
}

StateDelta diff_worlds(const WorldState& from, const WorldState& to) {
  StateDelta delta;
  // Union of both account sets, sorted (all_accounts() is already sorted).
  std::vector<Address> addrs = to.all_accounts();
  for (const Address& addr : from.all_accounts()) {
    if (!to.account(addr).has_value()) addrs.push_back(addr);
  }
  std::sort(addrs.begin(), addrs.end());
  addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());

  for (const Address& addr : addrs) {
    StateDelta::AccountDelta d;
    d.addr = addr;
    const auto old_acct = from.account(addr);
    const auto new_acct = to.account(addr);
    const bool existed = old_acct.has_value();
    const bool exists = new_acct.has_value();
    if (existed != exists) {
      d.meta_changed = true;
      d.code_changed = exists && !to.code(addr).empty();
    } else if (exists) {
      d.meta_changed = old_acct->balance != new_acct->balance ||
                       old_acct->nonce != new_acct->nonce ||
                       old_acct->code_hash != new_acct->code_hash;
      d.code_changed = old_acct->code_hash != new_acct->code_hash;
    }
    // Slot-level diff over the union of both key sets (sorted inputs).
    std::vector<u256> keys = to.storage_keys(addr);
    for (const u256& key : from.storage_keys(addr)) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (const u256& key : keys) {
      if (from.storage(addr, key) != to.storage(addr, key)) d.changed_keys.push_back(key);
    }
    if (d.meta_changed || d.code_changed || !d.changed_keys.empty()) {
      delta.accounts.push_back(std::move(d));
    }
  }
  return delta;
}

std::vector<u256> WorldState::storage_keys(const Address& addr) const {
  std::vector<u256> out;
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return out;
  out.reserve(it->second.storage_plain.size());
  for (const auto& [key, value] : it->second.storage_plain) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hardtape::state
