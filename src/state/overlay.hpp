// Journaled overlay state — the EVM's mutable view of the world.
//
// Pre-executed bundles must see their own modifications but never touch the
// persistent world state (paper Fig. 3 step 10: "World state modifications
// made by the pre-executed transactions are not written into any persistent
// storage"). The overlay buffers every write on top of a read-only
// StateReader and supports nested snapshots, which back the EVM's
// CALL/REVERT semantics: each execution frame takes a snapshot on entry and
// rolls back to it when the callee reverts (paper Section IV-B, layer 2).
//
// The journal is an undo log (the Geth approach): every mutation pushes a
// closure restoring the previous value; snapshot() records the journal
// length; revert_to() unwinds. Warm/cold access sets (EIP-2929) and the gas
// refund counter are journaled too, since reverted frames must not leave
// warm residue.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "state/world_state.hpp"

namespace hardtape::state {

class OverlayState {
 public:
  explicit OverlayState(const StateReader& base) : base_(base) {}

  /// Resets per-transaction state: warm sets, refund counter, original
  /// storage values, transient storage. Call before each transaction in a
  /// bundle. Keeps accumulated world-state modifications (txs in a bundle
  /// see each other's effects).
  void begin_transaction();

  // --- accounts ---
  bool exists(const Address& addr) const;
  u256 balance(const Address& addr) const;
  void set_balance(const Address& addr, const u256& value);
  void add_balance(const Address& addr, const u256& value);
  /// Returns false (and does nothing) when funds are insufficient.
  [[nodiscard]] bool sub_balance(const Address& addr, const u256& value);
  uint64_t nonce(const Address& addr) const;
  void set_nonce(const Address& addr, uint64_t value);
  Bytes code(const Address& addr) const;
  H256 code_hash(const Address& addr) const;
  void set_code(const Address& addr, Bytes code);
  /// Marks an account as created in this transaction (CREATE/CREATE2).
  void mark_created(const Address& addr);
  bool was_created(const Address& addr) const;

  // --- storage ---
  u256 storage(const Address& addr, const u256& key) const;
  void set_storage(const Address& addr, const u256& key, const u256& value);
  /// Value the slot had when the current transaction began (EIP-2200 gas).
  u256 original_storage(const Address& addr, const u256& key) const;
  // Transient storage (EIP-1153, TLOAD/TSTORE): cleared between txs.
  u256 transient_storage(const Address& addr, const u256& key) const;
  void set_transient_storage(const Address& addr, const u256& key, const u256& value);

  // --- warm/cold access tracking (EIP-2929) ---
  /// Returns true when the account was cold (first touch this tx).
  bool access_account(const Address& addr);
  /// Returns true when the slot was cold.
  bool access_storage(const Address& addr, const u256& key);
  bool is_warm_account(const Address& addr) const;

  // --- refunds (SSTORE clears) ---
  void add_refund(uint64_t amount);
  void sub_refund(uint64_t amount);
  uint64_t refund() const { return refund_; }

  // --- selfdestruct ---
  void selfdestruct(const Address& addr, const Address& beneficiary);
  bool is_destroyed(const Address& addr) const;

  // --- snapshots ---
  using Snapshot = size_t;
  Snapshot snapshot() const { return journal_.size(); }
  void revert_to(Snapshot snap);

  // --- introspection for traces ---
  struct StorageWrite {
    Address addr;
    u256 key;
    u256 value;
  };
  /// Net storage modifications vs. the base state, deterministic order.
  std::vector<StorageWrite> storage_writes() const;
  /// Addresses whose balance changed vs. the base state.
  std::vector<std::pair<Address, u256>> balance_changes() const;

 private:
  struct SlotKey {
    Address addr;
    u256 key;
    friend bool operator==(const SlotKey&, const SlotKey&) = default;
  };
  struct SlotKeyHasher {
    size_t operator()(const SlotKey& sk) const {
      return AddressHasher{}(sk.addr) ^ (U256Hasher{}(sk.key) * 0x9e3779b97f4a7c15ull);
    }
  };

  // Copy-on-read account cache entry. base_balance remembers the value at
  // first load so balance_changes() can diff without re-reading the base
  // (which may be an ORAM whose every read costs a full path access).
  struct Entry {
    Account account;
    u256 base_balance{};
    bool exists = false;
    bool code_loaded = false;
    Bytes code;
  };

  Entry& load(const Address& addr) const;
  void journal(std::function<void()> undo) { journal_.push_back(std::move(undo)); }

  const StateReader& base_;
  mutable std::unordered_map<Address, Entry, AddressHasher> entries_;
  mutable std::unordered_map<SlotKey, u256, SlotKeyHasher> storage_;
  mutable std::unordered_map<SlotKey, u256, SlotKeyHasher> base_storage_;
  mutable std::unordered_map<SlotKey, u256, SlotKeyHasher> original_storage_;
  std::unordered_map<SlotKey, u256, SlotKeyHasher> transient_;
  std::unordered_set<Address, AddressHasher> warm_accounts_;
  std::unordered_set<SlotKey, SlotKeyHasher> warm_slots_;
  std::unordered_set<Address, AddressHasher> created_;
  std::unordered_set<Address, AddressHasher> destroyed_;
  uint64_t refund_ = 0;
  mutable std::vector<std::function<void()>> journal_;
};

}  // namespace hardtape::state
