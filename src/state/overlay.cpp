#include "state/overlay.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace hardtape::state {

void OverlayState::begin_transaction() {
  warm_accounts_.clear();
  warm_slots_.clear();
  original_storage_.clear();
  transient_.clear();
  created_.clear();
  refund_ = 0;
  journal_.clear();  // snapshots never span transactions
}

OverlayState::Entry& OverlayState::load(const Address& addr) const {
  auto it = entries_.find(addr);
  if (it != entries_.end()) return it->second;
  Entry entry;
  if (const auto base_account = base_.account(addr)) {
    entry.account = *base_account;
    entry.base_balance = base_account->balance;
    entry.exists = true;
  }
  return entries_.emplace(addr, std::move(entry)).first->second;
}

bool OverlayState::exists(const Address& addr) const { return load(addr).exists; }

u256 OverlayState::balance(const Address& addr) const { return load(addr).account.balance; }

void OverlayState::set_balance(const Address& addr, const u256& value) {
  Entry& entry = load(addr);
  const u256 prev = entry.account.balance;
  const bool existed = entry.exists;
  journal([this, addr, prev, existed] {
    Entry& e = entries_.at(addr);
    e.account.balance = prev;
    e.exists = existed;
  });
  entry.account.balance = value;
  entry.exists = true;
}

void OverlayState::add_balance(const Address& addr, const u256& value) {
  set_balance(addr, balance(addr) + value);
}

bool OverlayState::sub_balance(const Address& addr, const u256& value) {
  const u256 current = balance(addr);
  if (current < value) return false;
  set_balance(addr, current - value);
  return true;
}

uint64_t OverlayState::nonce(const Address& addr) const { return load(addr).account.nonce; }

void OverlayState::set_nonce(const Address& addr, uint64_t value) {
  Entry& entry = load(addr);
  const uint64_t prev = entry.account.nonce;
  const bool existed = entry.exists;
  journal([this, addr, prev, existed] {
    Entry& e = entries_.at(addr);
    e.account.nonce = prev;
    e.exists = existed;
  });
  entry.account.nonce = value;
  entry.exists = true;
}

Bytes OverlayState::code(const Address& addr) const {
  Entry& entry = load(addr);
  if (!entry.code_loaded) {
    entry.code = base_.code(addr);
    entry.code_loaded = true;
  }
  return entry.code;
}

H256 OverlayState::code_hash(const Address& addr) const {
  return load(addr).account.code_hash;
}

void OverlayState::set_code(const Address& addr, Bytes code) {
  Entry& entry = load(addr);
  const Bytes prev_code = entry.code_loaded ? entry.code : base_.code(addr);
  const H256 prev_hash = entry.account.code_hash;
  const bool existed = entry.exists;
  journal([this, addr, prev_code, prev_hash, existed] {
    Entry& e = entries_.at(addr);
    e.code = prev_code;
    e.code_loaded = true;
    e.account.code_hash = prev_hash;
    e.exists = existed;
  });
  entry.account.code_hash = crypto::keccak256(code);
  entry.code = std::move(code);
  entry.code_loaded = true;
  entry.exists = true;
}

void OverlayState::mark_created(const Address& addr) {
  if (created_.insert(addr).second) {
    journal([this, addr] { created_.erase(addr); });
  }
}

bool OverlayState::was_created(const Address& addr) const { return created_.contains(addr); }

u256 OverlayState::storage(const Address& addr, const u256& key) const {
  const SlotKey sk{addr, key};
  const auto it = storage_.find(sk);
  if (it != storage_.end()) return it->second;
  const u256 value = base_.storage(addr, key);
  storage_.emplace(sk, value);
  base_storage_.emplace(sk, value);
  return value;
}

void OverlayState::set_storage(const Address& addr, const u256& key, const u256& value) {
  const SlotKey sk{addr, key};
  const u256 prev = storage(addr, key);  // also populates the cache
  original_storage_.try_emplace(sk, prev);
  journal([this, sk, prev] { storage_[sk] = prev; });
  storage_[sk] = value;
}

u256 OverlayState::original_storage(const Address& addr, const u256& key) const {
  const auto it = original_storage_.find(SlotKey{addr, key});
  if (it != original_storage_.end()) return it->second;
  return storage(addr, key);  // untouched this tx: original == current
}

u256 OverlayState::transient_storage(const Address& addr, const u256& key) const {
  const auto it = transient_.find(SlotKey{addr, key});
  return it == transient_.end() ? u256{} : it->second;
}

void OverlayState::set_transient_storage(const Address& addr, const u256& key,
                                         const u256& value) {
  const SlotKey sk{addr, key};
  const auto it = transient_.find(sk);
  const u256 prev = it == transient_.end() ? u256{} : it->second;
  journal([this, sk, prev] { transient_[sk] = prev; });
  transient_[sk] = value;
}

bool OverlayState::access_account(const Address& addr) {
  if (!warm_accounts_.insert(addr).second) return false;
  journal([this, addr] { warm_accounts_.erase(addr); });
  return true;
}

bool OverlayState::access_storage(const Address& addr, const u256& key) {
  const SlotKey sk{addr, key};
  if (!warm_slots_.insert(sk).second) return false;
  journal([this, sk] { warm_slots_.erase(sk); });
  return true;
}

bool OverlayState::is_warm_account(const Address& addr) const {
  return warm_accounts_.contains(addr);
}

void OverlayState::add_refund(uint64_t amount) {
  journal([this, prev = refund_] { refund_ = prev; });
  refund_ += amount;
}

void OverlayState::sub_refund(uint64_t amount) {
  journal([this, prev = refund_] { refund_ = prev; });
  refund_ = amount > refund_ ? 0 : refund_ - amount;
}

void OverlayState::selfdestruct(const Address& addr, const Address& beneficiary) {
  const u256 funds = balance(addr);
  add_balance(beneficiary, funds);
  set_balance(addr, u256{});
  // Post-Cancun (EIP-6780): the account is removed only when created in the
  // same transaction.
  if (was_created(addr) && destroyed_.insert(addr).second) {
    journal([this, addr] { destroyed_.erase(addr); });
  }
}

bool OverlayState::is_destroyed(const Address& addr) const {
  return destroyed_.contains(addr);
}

void OverlayState::revert_to(Snapshot snap) {
  if (snap > journal_.size()) throw UsageError("overlay: bad snapshot");
  while (journal_.size() > snap) {
    journal_.back()();
    journal_.pop_back();
  }
}

std::vector<OverlayState::StorageWrite> OverlayState::storage_writes() const {
  std::vector<StorageWrite> out;
  for (const auto& [sk, value] : storage_) {
    if (base_storage_.at(sk) != value) {
      out.push_back({sk.addr, sk.key, value});
    }
  }
  std::sort(out.begin(), out.end(), [](const StorageWrite& a, const StorageWrite& b) {
    if (a.addr != b.addr) return a.addr < b.addr;
    return a.key < b.key;
  });
  return out;
}

std::vector<std::pair<Address, u256>> OverlayState::balance_changes() const {
  std::vector<std::pair<Address, u256>> out;
  for (const auto& [addr, entry] : entries_) {
    if (entry.account.balance != entry.base_balance) {
      out.emplace_back(addr, entry.account.balance);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hardtape::state
