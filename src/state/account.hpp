// Ethereum account model (paper Section II-A).
//
// An account state has four fields: balance, nonce, storage (root) and code
// (hash). Contract accounts carry bytecode; externally-owned accounts have
// the empty code hash.
#pragma once

#include "common/u256.hpp"
#include "crypto/keccak.hpp"

namespace hardtape::state {

struct Account {
  u256 balance{};
  uint64_t nonce = 0;
  H256 code_hash = empty_code_hash();
  H256 storage_root{};  // zero = empty storage trie

  static H256 empty_code_hash() { return crypto::keccak256(BytesView{}); }

  bool has_code() const { return code_hash != empty_code_hash(); }
  bool is_empty() const {
    return balance.is_zero() && nonce == 0 && !has_code();
  }

  /// RLP: [nonce, balance, storageRoot, codeHash] (Yellow Paper order).
  Bytes rlp_encode() const;
  static Account rlp_decode(BytesView data);

  friend bool operator==(const Account&, const Account&) = default;
};

}  // namespace hardtape::state
