#include "state/account.hpp"

#include "common/errors.hpp"
#include "trie/rlp.hpp"

namespace hardtape::state {

Bytes Account::rlp_encode() const {
  using namespace trie;
  return rlp_encode_list({rlp_encode_u256(u256{nonce}), rlp_encode_u256(balance),
                          rlp_encode_bytes(storage_root.view()),
                          rlp_encode_bytes(code_hash.view())});
}

Account Account::rlp_decode(BytesView data) {
  const trie::RlpItem item = trie::rlp_decode(data);
  if (!item.is_list() || item.list().size() != 4) {
    throw DecodingError("account: bad rlp shape");
  }
  Account account;
  account.nonce = u256::from_be_bytes(item.list()[0].bytes()).as_u64();
  account.balance = u256::from_be_bytes(item.list()[1].bytes());
  account.storage_root = H256::from(item.list()[2].bytes());
  account.code_hash = H256::from(item.list()[3].bytes());
  return account;
}

}  // namespace hardtape::state
