// Authoritative world state, as held by an Ethereum full node.
//
// Backed by Merkle Patricia Tries so the node simulator can produce the
// Merkle proofs HarDTAPE demands during block synchronization (threat A6).
// Pre-execution never mutates this state: the EVM runs against an
// OverlayState whose modifications are discarded when a bundle ends
// (paper Fig. 3 step 10).
#pragma once

#include <optional>
#include <unordered_map>

#include "common/u256.hpp"
#include "state/account.hpp"
#include "trie/mpt.hpp"

namespace hardtape::state {

/// Read-only view of world-state data. Implemented by WorldState directly
/// and by the ORAM-backed store in src/oram (the HEVM path).
class StateReader {
 public:
  virtual ~StateReader() = default;
  virtual std::optional<Account> account(const Address& addr) const = 0;
  virtual u256 storage(const Address& addr, const u256& key) const = 0;
  virtual Bytes code(const Address& addr) const = 0;
};

class WorldState : public StateReader {
 public:
  WorldState() = default;
  /// Backs EVERY trie of this world (state trie + each account's storage
  /// trie) with one shared node store — content-addressing keeps the tries
  /// disjoint by construction. Used with a trie::PagedNodeStore to hold
  /// world states far larger than RAM (DESIGN.md §16). `store` is not owned
  /// and must outlive the WorldState and its copies.
  explicit WorldState(trie::NodeStore* store) : node_store_(store) {
    state_trie_ = trie::MerklePatriciaTrie{store};
  }

  // StateReader:
  std::optional<Account> account(const Address& addr) const override;
  u256 storage(const Address& addr, const u256& key) const override;
  Bytes code(const Address& addr) const override;

  // Mutation (block execution / test setup):
  void set_balance(const Address& addr, const u256& balance);
  void set_nonce(const Address& addr, uint64_t nonce);
  void set_code(const Address& addr, BytesView code);
  void set_storage(const Address& addr, const u256& key, const u256& value);
  void delete_account(const Address& addr);

  /// Root of the account trie; recomputed lazily from dirty accounts.
  H256 state_root() const;

  /// Merkle proofs for sync. Account proofs are against the state trie keyed
  /// by keccak(address); storage proofs against that account's storage trie
  /// keyed by keccak(slot).
  trie::MerkleProof prove_account(const Address& addr) const;
  trie::MerkleProof prove_storage(const Address& addr, const u256& key) const;
  /// Storage root of one account (for verifying storage proofs).
  H256 storage_root(const Address& addr) const;

  /// All known accounts (for page building during ORAM sync).
  std::vector<Address> all_accounts() const;
  /// All storage keys of one account, sorted (for page grouping).
  std::vector<u256> storage_keys(const Address& addr) const;

  size_t account_count() const { return accounts_.size(); }

 private:
  struct AccountRecord {
    Account account;
    trie::MerklePatriciaTrie storage_trie;
    std::unordered_map<u256, u256, U256Hasher> storage_plain;  // key -> value
  };

  AccountRecord& record_for(const Address& addr);
  void rebuild_state_trie() const;

  trie::NodeStore* node_store_ = nullptr;  ///< shared backing; null = RAM tries
  std::unordered_map<Address, AccountRecord, AddressHasher> accounts_;
  std::unordered_map<H256, Bytes, H256Hasher> code_store_;  // code hash -> code
  mutable trie::MerklePatriciaTrie state_trie_;
  mutable bool trie_dirty_ = true;
};

/// What changed between two world states, account by account — the work
/// list of an incremental (delta) ORAM sync: only accounts listed here need
/// re-verification, and only their changed slots need fresh storage proofs.
/// Accounts present in `from` but absent in `to` are reported with
/// `meta_changed` set (the new state proves them absent).
struct StateDelta {
  struct AccountDelta {
    Address addr;
    bool meta_changed = false;  ///< balance / nonce / code hash / existence
    bool code_changed = false;
    std::vector<u256> changed_keys;  ///< slots whose value differs, sorted
  };
  std::vector<AccountDelta> accounts;  ///< sorted by address (deterministic)
  size_t changed_slots() const {
    size_t n = 0;
    for (const auto& a : accounts) n += a.changed_keys.size();
    return n;
  }
};

/// Diffs `to` against `from`. Deterministic: output order depends only on
/// the two states, never on hash-map iteration order.
StateDelta diff_worlds(const WorldState& from, const WorldState& to);

/// Trivial in-memory StateReader for tests that do not need tries.
class InMemoryState : public StateReader {
 public:
  std::optional<Account> account(const Address& addr) const override {
    const auto it = accounts_.find(addr);
    if (it == accounts_.end()) return std::nullopt;
    return it->second;
  }
  u256 storage(const Address& addr, const u256& key) const override {
    const auto it = storage_.find(addr);
    if (it == storage_.end()) return u256{};
    const auto vit = it->second.find(key);
    return vit == it->second.end() ? u256{} : vit->second;
  }
  Bytes code(const Address& addr) const override {
    const auto it = code_.find(addr);
    return it == code_.end() ? Bytes{} : it->second;
  }

  void put_account(const Address& addr, Account account) { accounts_[addr] = account; }
  void put_storage(const Address& addr, const u256& key, const u256& value) {
    storage_[addr][key] = value;
  }
  void put_code(const Address& addr, Bytes code) {
    Account& account = accounts_[addr];
    account.code_hash = crypto::keccak256(code);
    code_[addr] = std::move(code);
  }

 private:
  std::unordered_map<Address, Account, AddressHasher> accounts_;
  std::unordered_map<Address, std::unordered_map<u256, u256, U256Hasher>, AddressHasher> storage_;
  std::unordered_map<Address, Bytes, AddressHasher> code_;
};

}  // namespace hardtape::state
