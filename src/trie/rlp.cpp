#include "trie/rlp.hpp"

#include "common/errors.hpp"

namespace hardtape::trie {

namespace {
void encode_length(Bytes& out, size_t length, uint8_t offset) {
  if (length < 56) {
    out.push_back(static_cast<uint8_t>(offset + length));
    return;
  }
  Bytes len_bytes;
  for (size_t v = length; v > 0; v >>= 8) len_bytes.insert(len_bytes.begin(), static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(offset + 55 + len_bytes.size()));
  append(out, len_bytes);
}

// Decodes the item starting at data[pos]; advances pos past it.
RlpItem decode_item(BytesView data, size_t& pos) {
  if (pos >= data.size()) throw DecodingError("rlp: truncated");
  const uint8_t prefix = data[pos];

  auto read_payload = [&](size_t length) -> BytesView {
    if (data.size() - pos < length) throw DecodingError("rlp: truncated payload");
    const BytesView payload = data.subspan(pos, length);
    pos += length;
    return payload;
  };
  auto read_length = [&](size_t length_of_length) -> size_t {
    if (length_of_length == 0 || length_of_length > 8) throw DecodingError("rlp: bad length");
    if (data.size() - pos < length_of_length) throw DecodingError("rlp: truncated length");
    size_t length = 0;
    if (data[pos] == 0) throw DecodingError("rlp: non-canonical length");
    for (size_t i = 0; i < length_of_length; ++i) length = (length << 8) | data[pos + i];
    pos += length_of_length;
    if (length < 56) throw DecodingError("rlp: non-canonical length");
    return length;
  };

  if (prefix <= 0x7f) {  // single byte
    ++pos;
    return RlpItem{Bytes{prefix}};
  }
  if (prefix <= 0xb7) {  // short string
    ++pos;
    const size_t length = prefix - 0x80;
    const BytesView payload = read_payload(length);
    if (length == 1 && payload[0] <= 0x7f) throw DecodingError("rlp: non-canonical byte");
    return RlpItem{Bytes(payload.begin(), payload.end())};
  }
  if (prefix <= 0xbf) {  // long string
    ++pos;
    const size_t length = read_length(prefix - 0xb7);
    const BytesView payload = read_payload(length);
    return RlpItem{Bytes(payload.begin(), payload.end())};
  }
  // Lists.
  ++pos;
  size_t length;
  if (prefix <= 0xf7) {
    length = prefix - 0xc0;
  } else {
    length = read_length(prefix - 0xf7);
  }
  if (data.size() - pos < length) throw DecodingError("rlp: truncated list");
  const size_t end = pos + length;
  RlpList items;
  while (pos < end) items.push_back(decode_item(data, pos));
  if (pos != end) throw DecodingError("rlp: list payload overrun");
  return RlpItem{std::move(items)};
}
}  // namespace

Bytes rlp_encode_bytes(BytesView data) {
  Bytes out;
  if (data.size() == 1 && data[0] <= 0x7f) {
    out.push_back(data[0]);
    return out;
  }
  encode_length(out, data.size(), 0x80);
  append(out, data);
  return out;
}

Bytes rlp_encode_u256(const u256& v) {
  if (v.is_zero()) return rlp_encode_bytes(BytesView{});
  const auto be = v.to_be_bytes();
  size_t first = 0;
  while (first < 32 && be[first] == 0) ++first;
  return rlp_encode_bytes(BytesView{be.data() + first, 32 - first});
}

Bytes rlp_encode_list(const std::vector<Bytes>& encoded_items) {
  size_t total = 0;
  for (const Bytes& item : encoded_items) total += item.size();
  Bytes out;
  out.reserve(total + 9);
  encode_length(out, total, 0xc0);
  for (const Bytes& item : encoded_items) append(out, item);
  return out;
}

Bytes rlp_encode(const RlpItem& item) {
  if (!item.is_list()) return rlp_encode_bytes(item.bytes());
  std::vector<Bytes> parts;
  parts.reserve(item.list().size());
  for (const RlpItem& child : item.list()) parts.push_back(rlp_encode(child));
  return rlp_encode_list(parts);
}

RlpItem rlp_decode(BytesView data) {
  size_t pos = 0;
  RlpItem item = decode_item(data, pos);
  if (pos != data.size()) throw DecodingError("rlp: trailing bytes");
  return item;
}

}  // namespace hardtape::trie
