// Merkle Patricia Trie.
//
// Ethereum authenticates its world state with MPTrees: the state trie maps
// keccak(address) -> RLP(account), and each contract's storage trie maps
// keccak(slot) -> RLP(value). HarDTAPE relies on Merkle proofs exactly once
// per datum — when synchronizing freshly produced blocks from the (untrusted)
// Node into the ORAM (paper Section IV-C "Remark"); after that, AES-GCM
// protects integrity and no proofs are fetched during pre-execution, which is
// also what keeps the sync path free of access-pattern requirements.
//
// Node model: leaf [encodedPath, value], extension [encodedPath, childHash],
// branch [16 x childHash, value], with hex-prefix path encoding. Children are
// always referenced by their Keccak-256 hash (no sub-32-byte inlining; the
// trie is self-consistent, which is all the simulator requires — see
// DESIGN.md §1).
#pragma once

#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::trie {

/// A Merkle proof: the RLP encodings of the nodes on the path from the root
/// to the key (inclusive), in root-first order.
using MerkleProof = std::vector<Bytes>;

class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie() = default;

  /// Inserts or updates. Empty `value` is not allowed (use erase).
  void put(BytesView key, BytesView value);
  std::optional<Bytes> get(BytesView key) const;
  /// Removes the key; returns true if it was present.
  bool erase(BytesView key);

  /// Keccak-256 of the root node; the hash of an empty trie is
  /// keccak256(rlp("")) as in Ethereum.
  H256 root_hash() const;
  static H256 empty_root_hash();

  /// Generates a membership (or non-membership) proof for `key`.
  MerkleProof prove(BytesView key) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Verifies `proof` against `root`. Returns the value if the proof shows
  /// membership, an empty optional wrapped in Status-like semantics:
  ///  - {true, value}  : proof valid, key present with `value`
  ///  - {true, nullopt}: proof valid, key proven absent
  ///  - {false, ...}   : proof invalid (hash mismatch / malformed)
  struct VerifyResult {
    bool valid = false;
    std::optional<Bytes> value;
  };
  static VerifyResult verify_proof(const H256& root, BytesView key,
                                   const MerkleProof& proof);

 private:
  // Node storage: node hash -> RLP encoding. Simple content-addressed store;
  // stale nodes are left behind on update (garbage, but harmless for the
  // simulator's lifetimes).
  std::unordered_map<H256, Bytes, H256Hasher> nodes_;
  H256 root_{};  // zero hash means "empty trie"
  size_t size_ = 0;

  using Nibbles = std::vector<uint8_t>;
  static Nibbles to_nibbles(BytesView key);

  // Recursive helpers operate on node hashes; zero hash = missing node.
  H256 insert(const H256& node_hash, const Nibbles& path, size_t depth, BytesView value);
  std::optional<Bytes> lookup(const H256& node_hash, const Nibbles& path, size_t depth) const;
  // Returns the new child hash (zero = removed entirely).
  H256 remove(const H256& node_hash, const Nibbles& path, size_t depth, bool& removed);
  H256 store_node(const Bytes& encoded);
  const Bytes& load_node(const H256& hash) const;
  // Collapses a branch that may have become degenerate after removal.
  H256 normalize(const H256& node_hash);
};

}  // namespace hardtape::trie
