// Merkle Patricia Trie.
//
// Ethereum authenticates its world state with MPTrees: the state trie maps
// keccak(address) -> RLP(account), and each contract's storage trie maps
// keccak(slot) -> RLP(value). HarDTAPE relies on Merkle proofs exactly once
// per datum — when synchronizing freshly produced blocks from the (untrusted)
// Node into the ORAM (paper Section IV-C "Remark"); after that, AES-GCM
// protects integrity and no proofs are fetched during pre-execution, which is
// also what keeps the sync path free of access-pattern requirements.
//
// Node model: leaf [encodedPath, value], extension [encodedPath, childHash],
// branch [16 x childHash, value], with hex-prefix path encoding. Children are
// always referenced by their Keccak-256 hash (no sub-32-byte inlining; the
// trie is self-consistent, which is all the simulator requires — see
// DESIGN.md §1).
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "trie/node_store.hpp"

namespace hardtape::trie {

/// A Merkle proof: the RLP encodings of the nodes on the path from the root
/// to the key (inclusive), in root-first order.
using MerkleProof = std::vector<Bytes>;

class MerklePatriciaTrie {
 public:
  /// Default: a private in-RAM node store (the seed behavior).
  MerklePatriciaTrie() = default;
  /// Routes node storage through `store` (not owned; must outlive the trie).
  /// Content-addressing makes sharing one store across tries safe.
  explicit MerklePatriciaTrie(NodeStore* store) : store_(store) {}

  // Copies of a trie with the default RAM store get their own store; copies
  // of an externally-backed trie share the external store (immutable,
  // content-addressed nodes make that sound).
  MerklePatriciaTrie(const MerklePatriciaTrie& o)
      : ram_(o.ram_),
        store_(o.store_ == &o.ram_ ? &ram_ : o.store_),
        root_(o.root_),
        size_(o.size_) {}
  MerklePatriciaTrie& operator=(const MerklePatriciaTrie& o) {
    if (this != &o) {
      ram_ = o.ram_;
      store_ = o.store_ == &o.ram_ ? &ram_ : o.store_;
      root_ = o.root_;
      size_ = o.size_;
    }
    return *this;
  }
  MerklePatriciaTrie(MerklePatriciaTrie&& o) noexcept
      : ram_(std::move(o.ram_)),
        store_(o.store_ == &o.ram_ ? &ram_ : o.store_),
        root_(o.root_),
        size_(o.size_) {}
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&& o) noexcept {
    if (this != &o) {
      const bool own = o.store_ == &o.ram_;
      ram_ = std::move(o.ram_);
      store_ = own ? &ram_ : o.store_;
      root_ = o.root_;
      size_ = o.size_;
    }
    return *this;
  }

  /// Inserts or updates. Empty `value` is not allowed (use erase).
  void put(BytesView key, BytesView value);
  std::optional<Bytes> get(BytesView key) const;
  /// Removes the key; returns true if it was present.
  bool erase(BytesView key);

  /// Keccak-256 of the root node; the hash of an empty trie is
  /// keccak256(rlp("")) as in Ethereum.
  H256 root_hash() const;
  static H256 empty_root_hash();

  /// Generates a membership (or non-membership) proof for `key`.
  MerkleProof prove(BytesView key) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Verifies `proof` against `root`. Returns the value if the proof shows
  /// membership, an empty optional wrapped in Status-like semantics:
  ///  - {true, value}  : proof valid, key present with `value`
  ///  - {true, nullopt}: proof valid, key proven absent
  ///  - {false, ...}   : proof invalid (hash mismatch / malformed)
  struct VerifyResult {
    bool valid = false;
    std::optional<Bytes> value;
  };
  static VerifyResult verify_proof(const H256& root, BytesView key,
                                   const MerkleProof& proof);

 private:
  // Node storage: hash -> RLP encoding behind the NodeStore interface; stale
  // nodes are left behind on update (garbage, but harmless for the
  // simulator's lifetimes). Default = the private RAM store.
  RamNodeStore ram_;
  NodeStore* store_ = &ram_;
  H256 root_{};  // zero hash means "empty trie"
  size_t size_ = 0;

  using Nibbles = std::vector<uint8_t>;
  static Nibbles to_nibbles(BytesView key);

  // Recursive helpers operate on node hashes; zero hash = missing node.
  H256 insert(const H256& node_hash, const Nibbles& path, size_t depth, BytesView value);
  std::optional<Bytes> lookup(const H256& node_hash, const Nibbles& path, size_t depth) const;
  // Returns the new child hash (zero = removed entirely).
  H256 remove(const H256& node_hash, const Nibbles& path, size_t depth, bool& removed);
  H256 store_node(const Bytes& encoded);
  // By value: a paged backend may evict the page a reference would dangle
  // into. Nodes are ~100 bytes; the copy is noise next to the keccak above.
  Bytes load_node(const H256& hash) const;
  // Collapses a branch that may have become degenerate after removal.
  H256 normalize(const H256& node_hash);
};

}  // namespace hardtape::trie
