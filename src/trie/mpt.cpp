#include "trie/mpt.hpp"

#include "common/errors.hpp"
#include "crypto/keccak.hpp"
#include "trie/rlp.hpp"

namespace hardtape::trie {

namespace {

using Nibbles = std::vector<uint8_t>;

// Hex-prefix encoding (Yellow Paper appendix C).
Bytes hp_encode(const Nibbles& nibbles, bool is_leaf) {
  Bytes out;
  const bool odd = nibbles.size() % 2 != 0;
  uint8_t flag = static_cast<uint8_t>((is_leaf ? 2 : 0) + (odd ? 1 : 0));
  size_t i = 0;
  if (odd) {
    out.push_back(static_cast<uint8_t>((flag << 4) | nibbles[0]));
    i = 1;
  } else {
    out.push_back(static_cast<uint8_t>(flag << 4));
  }
  for (; i + 1 < nibbles.size(); i += 2) {
    out.push_back(static_cast<uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
  }
  return out;
}

std::pair<Nibbles, bool> hp_decode(BytesView encoded) {
  if (encoded.empty()) throw DecodingError("hp: empty");
  const uint8_t flag = encoded[0] >> 4;
  if (flag > 3) throw DecodingError("hp: bad flag");
  const bool is_leaf = flag >= 2;
  Nibbles nibbles;
  if (flag & 1) nibbles.push_back(encoded[0] & 0xf);
  for (size_t i = 1; i < encoded.size(); ++i) {
    nibbles.push_back(encoded[i] >> 4);
    nibbles.push_back(encoded[i] & 0xf);
  }
  return {std::move(nibbles), is_leaf};
}

size_t common_prefix(const Nibbles& a, size_t a_off, const Nibbles& b, size_t b_off) {
  size_t n = 0;
  while (a_off + n < a.size() && b_off + n < b.size() && a[a_off + n] == b[b_off + n]) ++n;
  return n;
}

Nibbles tail(const Nibbles& n, size_t from) {
  return Nibbles(n.begin() + static_cast<long>(from), n.end());
}

// Decoded node view.
struct Node {
  enum class Kind { kLeaf, kExtension, kBranch } kind;
  Nibbles path;                       // leaf/extension
  Bytes value;                        // leaf value or branch value
  H256 child{};                       // extension child
  std::array<H256, 16> children{};    // branch children (zero = empty)
};

Node decode_node(const Bytes& encoded) {
  const RlpItem item = rlp_decode(encoded);
  if (!item.is_list()) throw DecodingError("mpt: node is not a list");
  const RlpList& list = item.list();
  Node node;
  if (list.size() == 2) {
    auto [path, is_leaf] = hp_decode(list[0].bytes());
    node.path = std::move(path);
    if (is_leaf) {
      node.kind = Node::Kind::kLeaf;
      node.value = list[1].bytes();
    } else {
      node.kind = Node::Kind::kExtension;
      node.child = H256::from(list[1].bytes());
    }
    return node;
  }
  if (list.size() == 17) {
    node.kind = Node::Kind::kBranch;
    for (size_t i = 0; i < 16; ++i) {
      const Bytes& slot = list[i].bytes();
      if (!slot.empty()) node.children[i] = H256::from(slot);
    }
    node.value = list[16].bytes();
    return node;
  }
  throw DecodingError("mpt: bad node arity");
}

Bytes encode_leaf(const Nibbles& path, BytesView value) {
  return rlp_encode_list({rlp_encode_bytes(hp_encode(path, true)), rlp_encode_bytes(value)});
}

Bytes encode_extension(const Nibbles& path, const H256& child) {
  return rlp_encode_list(
      {rlp_encode_bytes(hp_encode(path, false)), rlp_encode_bytes(child.view())});
}

Bytes encode_branch(const std::array<H256, 16>& children, BytesView value) {
  std::vector<Bytes> parts;
  parts.reserve(17);
  for (const H256& child : children) {
    parts.push_back(child.is_zero() ? rlp_encode_bytes(BytesView{})
                                    : rlp_encode_bytes(child.view()));
  }
  parts.push_back(rlp_encode_bytes(value));
  return rlp_encode_list(parts);
}

}  // namespace

MerklePatriciaTrie::Nibbles MerklePatriciaTrie::to_nibbles(BytesView key) {
  Nibbles out;
  out.reserve(key.size() * 2);
  for (uint8_t b : key) {
    out.push_back(b >> 4);
    out.push_back(b & 0xf);
  }
  return out;
}

H256 MerklePatriciaTrie::store_node(const Bytes& encoded) {
  const H256 hash = crypto::keccak256(encoded);
  store_->put(hash, encoded);
  return hash;
}

Bytes MerklePatriciaTrie::load_node(const H256& hash) const {
  auto encoded = store_->get(hash);
  if (!encoded.has_value()) throw HardtapeError("mpt: missing node " + hash.hex());
  return std::move(*encoded);
}

H256 MerklePatriciaTrie::empty_root_hash() {
  return crypto::keccak256(rlp_encode_bytes(BytesView{}));
}

H256 MerklePatriciaTrie::root_hash() const {
  return root_.is_zero() ? empty_root_hash() : root_;
}

void MerklePatriciaTrie::put(BytesView key, BytesView value) {
  if (value.empty()) throw UsageError("mpt: empty value; use erase");
  const Nibbles path = to_nibbles(key);
  const bool existed = get(key).has_value();
  root_ = insert(root_, path, 0, value);
  if (!existed) ++size_;
}

H256 MerklePatriciaTrie::insert(const H256& node_hash, const Nibbles& path,
                                size_t depth, BytesView value) {
  const size_t remaining = path.size() - depth;
  if (node_hash.is_zero()) {
    return store_node(encode_leaf(tail(path, depth), value));
  }
  Node node = decode_node(load_node(node_hash));

  switch (node.kind) {
    case Node::Kind::kLeaf: {
      const size_t cp = common_prefix(node.path, 0, path, depth);
      if (cp == node.path.size() && cp == remaining) {
        return store_node(encode_leaf(node.path, value));  // overwrite
      }
      // Split into a branch (plus extension for the shared prefix).
      std::array<H256, 16> children{};
      Bytes branch_value;
      if (cp == node.path.size()) {
        branch_value = node.value;
      } else {
        children[node.path[cp]] = store_node(encode_leaf(tail(node.path, cp + 1), node.value));
      }
      if (cp == remaining) {
        branch_value.assign(value.begin(), value.end());
      } else {
        children[path[depth + cp]] =
            store_node(encode_leaf(tail(path, depth + cp + 1), value));
      }
      H256 branch = store_node(encode_branch(children, branch_value));
      if (cp > 0) {
        branch = store_node(encode_extension(Nibbles(node.path.begin(),
                                                     node.path.begin() + static_cast<long>(cp)),
                                             branch));
      }
      return branch;
    }
    case Node::Kind::kExtension: {
      const size_t cp = common_prefix(node.path, 0, path, depth);
      if (cp == node.path.size()) {
        const H256 new_child = insert(node.child, path, depth + cp, value);
        return store_node(encode_extension(node.path, new_child));
      }
      // Split the extension at the divergence point.
      std::array<H256, 16> children{};
      Bytes branch_value;
      const Nibbles ext_tail = tail(node.path, cp + 1);
      children[node.path[cp]] =
          ext_tail.empty() ? node.child : store_node(encode_extension(ext_tail, node.child));
      if (cp == remaining) {
        branch_value.assign(value.begin(), value.end());
      } else {
        children[path[depth + cp]] =
            store_node(encode_leaf(tail(path, depth + cp + 1), value));
      }
      H256 branch = store_node(encode_branch(children, branch_value));
      if (cp > 0) {
        branch = store_node(encode_extension(
            Nibbles(node.path.begin(), node.path.begin() + static_cast<long>(cp)), branch));
      }
      return branch;
    }
    case Node::Kind::kBranch: {
      if (remaining == 0) {
        Bytes v(value.begin(), value.end());
        return store_node(encode_branch(node.children, v));
      }
      const uint8_t nib = path[depth];
      node.children[nib] = insert(node.children[nib], path, depth + 1, value);
      return store_node(encode_branch(node.children, node.value));
    }
  }
  throw HardtapeError("mpt: unreachable");
}

std::optional<Bytes> MerklePatriciaTrie::get(BytesView key) const {
  if (root_.is_zero()) return std::nullopt;
  return lookup(root_, to_nibbles(key), 0);
}

std::optional<Bytes> MerklePatriciaTrie::lookup(const H256& node_hash,
                                                const Nibbles& path, size_t depth) const {
  if (node_hash.is_zero()) return std::nullopt;
  const Node node = decode_node(load_node(node_hash));
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      if (path.size() - depth != node.path.size()) return std::nullopt;
      if (!std::equal(node.path.begin(), node.path.end(), path.begin() + static_cast<long>(depth))) {
        return std::nullopt;
      }
      return node.value;
    }
    case Node::Kind::kExtension: {
      if (path.size() - depth < node.path.size()) return std::nullopt;
      if (!std::equal(node.path.begin(), node.path.end(), path.begin() + static_cast<long>(depth))) {
        return std::nullopt;
      }
      return lookup(node.child, path, depth + node.path.size());
    }
    case Node::Kind::kBranch: {
      if (depth == path.size()) {
        if (node.value.empty()) return std::nullopt;
        return node.value;
      }
      return lookup(node.children[path[depth]], path, depth + 1);
    }
  }
  return std::nullopt;
}

bool MerklePatriciaTrie::erase(BytesView key) {
  if (root_.is_zero()) return false;
  bool removed = false;
  root_ = remove(root_, to_nibbles(key), 0, removed);
  if (removed) --size_;
  return removed;
}

H256 MerklePatriciaTrie::remove(const H256& node_hash, const Nibbles& path,
                                size_t depth, bool& removed) {
  if (node_hash.is_zero()) {
    removed = false;
    return node_hash;
  }
  Node node = decode_node(load_node(node_hash));
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      const bool match =
          path.size() - depth == node.path.size() &&
          std::equal(node.path.begin(), node.path.end(), path.begin() + static_cast<long>(depth));
      removed = match;
      return match ? H256{} : node_hash;
    }
    case Node::Kind::kExtension: {
      if (path.size() - depth < node.path.size() ||
          !std::equal(node.path.begin(), node.path.end(), path.begin() + static_cast<long>(depth))) {
        removed = false;
        return node_hash;
      }
      const H256 new_child = remove(node.child, path, depth + node.path.size(), removed);
      if (!removed) return node_hash;
      if (new_child.is_zero()) return H256{};
      // Merge with the child if it collapsed into a leaf/extension.
      const Node child = decode_node(load_node(new_child));
      if (child.kind == Node::Kind::kBranch) {
        return store_node(encode_extension(node.path, new_child));
      }
      Nibbles merged = node.path;
      merged.insert(merged.end(), child.path.begin(), child.path.end());
      if (child.kind == Node::Kind::kLeaf) return store_node(encode_leaf(merged, child.value));
      return store_node(encode_extension(merged, child.child));
    }
    case Node::Kind::kBranch: {
      if (depth == path.size()) {
        if (node.value.empty()) {
          removed = false;
          return node_hash;
        }
        node.value.clear();
        removed = true;
      } else {
        const uint8_t nib = path[depth];
        node.children[nib] = remove(node.children[nib], path, depth + 1, removed);
        if (!removed) return node_hash;
      }
      // Normalize a possibly degenerate branch.
      int child_count = 0;
      int last_child = -1;
      for (int i = 0; i < 16; ++i) {
        if (!node.children[static_cast<size_t>(i)].is_zero()) {
          ++child_count;
          last_child = i;
        }
      }
      if (child_count == 0) {
        if (node.value.empty()) return H256{};
        return store_node(encode_leaf({}, node.value));
      }
      if (child_count == 1 && node.value.empty()) {
        const auto nib = static_cast<uint8_t>(last_child);
        const H256 only = node.children[static_cast<size_t>(last_child)];
        const Node child = decode_node(load_node(only));
        if (child.kind == Node::Kind::kBranch) {
          return store_node(encode_extension({nib}, only));
        }
        Nibbles merged{nib};
        merged.insert(merged.end(), child.path.begin(), child.path.end());
        if (child.kind == Node::Kind::kLeaf) return store_node(encode_leaf(merged, child.value));
        return store_node(encode_extension(merged, child.child));
      }
      return store_node(encode_branch(node.children, node.value));
    }
  }
  throw HardtapeError("mpt: unreachable");
}

MerkleProof MerklePatriciaTrie::prove(BytesView key) const {
  MerkleProof proof;
  if (root_.is_zero()) return proof;
  const Nibbles path = to_nibbles(key);
  H256 current = root_;
  size_t depth = 0;
  while (!current.is_zero()) {
    const Bytes& encoded = load_node(current);
    proof.push_back(encoded);
    const Node node = decode_node(encoded);
    switch (node.kind) {
      case Node::Kind::kLeaf:
        return proof;
      case Node::Kind::kExtension: {
        if (path.size() - depth < node.path.size() ||
            !std::equal(node.path.begin(), node.path.end(),
                        path.begin() + static_cast<long>(depth))) {
          return proof;  // divergence: proof of absence ends here
        }
        depth += node.path.size();
        current = node.child;
        break;
      }
      case Node::Kind::kBranch: {
        if (depth == path.size()) return proof;
        current = node.children[path[depth]];
        ++depth;
        break;
      }
    }
  }
  return proof;
}

MerklePatriciaTrie::VerifyResult MerklePatriciaTrie::verify_proof(
    const H256& root, BytesView key, const MerkleProof& proof) {
  if (proof.empty()) {
    // Only valid as an absence proof for the empty trie.
    return {root == empty_root_hash(), std::nullopt};
  }
  const Nibbles path = to_nibbles(key);
  H256 expected = root;
  size_t depth = 0;
  for (size_t i = 0; i < proof.size(); ++i) {
    if (crypto::keccak256(proof[i]) != expected) return {false, std::nullopt};
    Node node;
    try {
      node = decode_node(proof[i]);
    } catch (const DecodingError&) {
      return {false, std::nullopt};
    }
    const bool is_last = (i + 1 == proof.size());
    switch (node.kind) {
      case Node::Kind::kLeaf: {
        if (!is_last) return {false, std::nullopt};
        const bool match =
            path.size() - depth == node.path.size() &&
            std::equal(node.path.begin(), node.path.end(),
                       path.begin() + static_cast<long>(depth));
        if (match) return {true, node.value};
        return {true, std::nullopt};  // valid absence proof
      }
      case Node::Kind::kExtension: {
        if (path.size() - depth < node.path.size() ||
            !std::equal(node.path.begin(), node.path.end(),
                        path.begin() + static_cast<long>(depth))) {
          return {is_last, std::nullopt};  // divergence must end the proof
        }
        depth += node.path.size();
        expected = node.child;
        break;
      }
      case Node::Kind::kBranch: {
        if (depth == path.size()) {
          if (!is_last) return {false, std::nullopt};
          if (node.value.empty()) return {true, std::nullopt};
          return {true, node.value};
        }
        const H256 child = node.children[path[depth]];
        ++depth;
        if (child.is_zero()) return {is_last, std::nullopt};  // absence
        expected = child;
        break;
      }
    }
  }
  return {false, std::nullopt};  // path did not terminate within the proof
}

}  // namespace hardtape::trie
