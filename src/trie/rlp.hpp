// RLP (Recursive Length Prefix) — Ethereum's canonical serialization.
//
// Used by the Merkle Patricia Trie (node encoding feeds Keccak-256 to form
// node hashes) and by block/transaction wire formats in the node simulator.
#pragma once

#include <variant>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::trie {

/// An RLP item is either a byte string or a list of items.
struct RlpItem;
using RlpList = std::vector<RlpItem>;

struct RlpItem {
  std::variant<Bytes, RlpList> value;

  RlpItem() : value(Bytes{}) {}
  RlpItem(Bytes b) : value(std::move(b)) {}         // NOLINT: implicit by design
  RlpItem(RlpList l) : value(std::move(l)) {}       // NOLINT: implicit by design

  bool is_list() const { return std::holds_alternative<RlpList>(value); }
  const Bytes& bytes() const { return std::get<Bytes>(value); }
  const RlpList& list() const { return std::get<RlpList>(value); }
};

/// Encodes a raw byte string as an RLP string item.
Bytes rlp_encode_bytes(BytesView data);

/// Encodes a u256 as a minimal-length big-endian RLP string (Ethereum ints).
Bytes rlp_encode_u256(const u256& v);

/// Wraps already-encoded item payloads into an RLP list.
Bytes rlp_encode_list(const std::vector<Bytes>& encoded_items);

/// Encodes a structured item tree.
Bytes rlp_encode(const RlpItem& item);

/// Decodes one item, consuming the entire input. Throws DecodingError on
/// malformed or trailing data.
RlpItem rlp_decode(BytesView data);

}  // namespace hardtape::trie
