#include "trie/paged_node_store.hpp"

#include <cstring>

#include "common/errors.hpp"

namespace hardtape::trie {

namespace {

u256 page_id(uint64_t page) { return u256{page}; }

constexpr size_t kRecordHeader = 32 + 4;  // hash + length

}  // namespace

PagedNodeStore::PagedNodeStore(durability::SimFs& fs,
                               pagedstore::PagedStoreConfig config,
                               size_t page_payload_bytes)
    : store_(fs, std::move(config)), page_payload_bytes_(page_payload_bytes) {
  if (page_payload_bytes_ < kRecordHeader + 1) {
    throw UsageError("paged node store: page payload too small for one node");
  }
}

void PagedNodeStore::put(const H256& hash, BytesView encoded) {
  if (index_.contains(hash)) return;  // content-addressed: already stored
  if (encoded.empty() || encoded.size() > pagedstore::kMaxPagePayload / 2) {
    throw UsageError("paged node store: bad node encoding size");
  }
  // Nodes never span pages: roll when this record would overflow the fill
  // page (oversized nodes get a page of their own).
  const size_t record = kRecordHeader + encoded.size();
  if (fill_offset_ != 0 && fill_offset_ + record > page_payload_bytes_) {
    ++fill_page_;
    fill_offset_ = 0;
  }
  auto ref = store_.pin_or_create(page_id(fill_page_), [] { return Bytes{}; });
  Bytes& payload = ref.data();
  payload.reserve(payload.size() + record);
  append(payload, hash.view());
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<uint8_t>(encoded.size() >> (8 * i)));
  }
  append(payload, encoded);
  ref.mark_dirty();
  index_[hash] = NodeRef{fill_page_, fill_offset_,
                         static_cast<uint32_t>(encoded.size())};
  fill_offset_ += static_cast<uint32_t>(record);
}

std::optional<Bytes> PagedNodeStore::get(const H256& hash) const {
  const auto it = index_.find(hash);
  if (it == index_.end()) return std::nullopt;
  const NodeRef& ref = it->second;
  // Pin the page for the duration of the slice — the proof-walk discipline.
  auto page = store_.pin(page_id(ref.page));
  const Bytes& payload = page.data();
  const size_t end = static_cast<size_t>(ref.offset) + kRecordHeader + ref.length;
  if (end > payload.size() ||
      std::memcmp(payload.data() + ref.offset, hash.bytes.data(), 32) != 0) {
    throw IntegrityError("paged node store: index/page mismatch for node " +
                         hash.hex());
  }
  const uint8_t* start = payload.data() + ref.offset + kRecordHeader;
  return Bytes(start, start + ref.length);
}

}  // namespace hardtape::trie
