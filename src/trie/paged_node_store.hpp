// Paged MPT node store: trie nodes packed into fixed-size pages behind the
// bounded buffer pool (DESIGN.md §16).
//
// MPT nodes are small (tens to a few hundred bytes of RLP), so one node per
// on-disk page would waste an order of magnitude. Instead nodes are PACKED:
// a fill page accumulates records [32B hash | u32 len | encoding] until its
// payload reaches `page_payload_bytes`, then the next page starts. The
// in-memory index maps hash -> (page, offset, length) — metadata only, tens
// of bytes per node; payloads live in the PagedStore under its hard
// `buffer_pool_pages` cap and spill to SimFs segments beyond it.
//
// Nodes are content-addressed and immutable, so there is no update path and
// no fragmentation; stale nodes left behind by trie updates age out with
// their pages (same garbage the RAM store kept forever). A trie proof walk
// pins at most one page at a time through `get`, so a tiny pool is enough
// for correctness — size it for locality instead.
//
// Reads are fail-closed twice over: the page checksum rejects torn/corrupt
// segment records (IntegrityError from the PagedStore), and the record
// header's hash must equal the hash asked for (an index/page mismatch is
// corruption, not a miss).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "pagedstore/store.hpp"
#include "trie/node_store.hpp"

namespace hardtape::trie {

class PagedNodeStore final : public NodeStore {
 public:
  static constexpr size_t kDefaultPagePayload = 4096;

  /// `config.name` prefixes the segment files; see PagedStoreConfig.
  PagedNodeStore(durability::SimFs& fs, pagedstore::PagedStoreConfig config,
                 size_t page_payload_bytes = kDefaultPagePayload);

  size_t page_payload_bytes() const { return page_payload_bytes_; }

  void put(const H256& hash, BytesView encoded) override;
  std::optional<Bytes> get(const H256& hash) const override;
  size_t node_count() const override { return index_.size(); }

  pagedstore::BufferPoolStats pool_stats() const { return store_.pool_stats(); }
  uint64_t page_count() const { return fill_page_ + 1; }

 private:
  struct NodeRef {
    uint64_t page = 0;
    uint32_t offset = 0;
    uint32_t length = 0;  ///< encoding length (record is 36 bytes longer)
  };

  mutable pagedstore::PagedStore store_;
  const size_t page_payload_bytes_;
  std::unordered_map<H256, NodeRef, H256Hasher> index_;
  uint64_t fill_page_ = 0;
  uint32_t fill_offset_ = 0;  ///< payload bytes already in the fill page
};

}  // namespace hardtape::trie
