// Storage interface for MPT nodes (DESIGN.md §16).
//
// The trie references children by keccak hash, so its node store is a pure
// content-addressed map: hash -> RLP encoding, immutable once written. That
// makes the interface tiny — put / get / size — and makes SHARING one store
// between many tries safe (the state trie and every storage trie of a
// WorldState can use a single backing store; identical nodes coincide, which
// is correct because they are identical subtrees).
//
// Two implementations:
//  - RamNodeStore (here): the seed's unordered_map, the default — zero
//    behavior change for existing callers;
//  - PagedNodeStore (trie/paged_node_store.hpp): nodes packed into
//    fixed-size pages behind a bounded buffer pool over SimFs, for world
//    states 10-100x larger than the RAM budget.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::trie {

class NodeStore {
 public:
  virtual ~NodeStore() = default;
  /// Stores `encoded` under `hash`. Nodes are content-addressed and
  /// immutable: a repeated put of the same hash may be ignored.
  virtual void put(const H256& hash, BytesView encoded) = 0;
  /// nullopt when the hash was never stored.
  virtual std::optional<Bytes> get(const H256& hash) const = 0;
  virtual size_t node_count() const = 0;
};

class RamNodeStore final : public NodeStore {
 public:
  void put(const H256& hash, BytesView encoded) override {
    nodes_.try_emplace(hash, encoded.begin(), encoded.end());
  }
  std::optional<Bytes> get(const H256& hash) const override {
    const auto it = nodes_.find(hash);
    if (it == nodes_.end()) return std::nullopt;
    return it->second;
  }
  size_t node_count() const override { return nodes_.size(); }

 private:
  std::unordered_map<H256, Bytes, H256Hasher> nodes_;
};

}  // namespace hardtape::trie
