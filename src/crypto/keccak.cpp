#include "crypto/keccak.hpp"

#include <bit>
#include <cstring>

namespace hardtape::crypto {

namespace {
constexpr uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRotations[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                                25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

void keccak_f1600(uint64_t state[25]) {
  for (int round = 0; round < 24; ++round) {
    // Theta
    uint64_t c[5], d[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) state[x + 5 * y] ^= d[x];
    }
    // Rho + Pi
    uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = std::rotl(state[x + 5 * y], kRotations[x + 5 * y]);
      }
    }
    // Chi
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        state[x + 5 * y] =
            b[x + 5 * y] ^ ((~b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    state[0] ^= kRoundConstants[round];
  }
}
}  // namespace

H256 keccak256(BytesView data) {
  constexpr size_t kRate = 136;  // 1088-bit rate for Keccak-256
  uint64_t state[25] = {};

  // Absorb full blocks.
  size_t offset = 0;
  while (data.size() - offset >= kRate) {
    for (size_t i = 0; i < kRate / 8; ++i) {
      uint64_t lane;
      std::memcpy(&lane, data.data() + offset + i * 8, 8);
      state[i] ^= lane;
    }
    keccak_f1600(state);
    offset += kRate;
  }

  // Final block with Keccak (pre-FIPS) padding: 0x01 ... 0x80.
  uint8_t block[kRate] = {};
  const size_t remaining = data.size() - offset;
  if (remaining > 0) std::memcpy(block, data.data() + offset, remaining);
  block[remaining] = 0x01;
  block[kRate - 1] |= 0x80;
  for (size_t i = 0; i < kRate / 8; ++i) {
    uint64_t lane;
    std::memcpy(&lane, block + i * 8, 8);
    state[i] ^= lane;
  }
  keccak_f1600(state);

  H256 out;
  std::memcpy(out.bytes.data(), state, 32);
  return out;
}

H256 keccak256(std::string_view data) {
  return keccak256(BytesView{reinterpret_cast<const uint8_t*>(data.data()), data.size()});
}

}  // namespace hardtape::crypto
