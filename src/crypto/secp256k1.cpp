#include "crypto/secp256k1.hpp"

#include "common/errors.hpp"
#include "crypto/keccak.hpp"
#include "crypto/sha256.hpp"

namespace hardtape::crypto {

namespace {

// p = 2^256 - 2^32 - 977, n = group order.
const u256 kP{0xffffffffffffffffULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
              0xfffffffefffffc2fULL};
const u256 kN{0xffffffffffffffffULL, 0xfffffffffffffffeULL, 0xbaaedce6af48a03bULL,
              0xbfd25e8cd0364141ULL};
// Complements c = 2^256 - m used for fast reduction (2^256 ≡ c mod m).
const u256 kPc{0, 0, 0, 0x1000003d1ULL};
const u256 kNc{0, 0x1ULL, 0x4551231950b75fc4ULL, 0x402da1732fc9bebfULL};

const u256 kGx = u256::from_string(
    "0x79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const u256 kGy = u256::from_string(
    "0x483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

// Reduces a 512-bit value (hi, lo) modulo m, where c = 2^256 - m and m is
// close to 2^256 (both p and n qualify). Uses 2^256 ≡ c (mod m) repeatedly.
u256 mod_special(u256 hi, u256 lo, const u256& m, const u256& c) {
  while (!hi.is_zero()) {
    const auto [h2, l2] = u256::mul_wide(hi, c);
    const u256 sum = lo + l2;
    const uint64_t carry = (sum < lo) ? 1 : 0;  // wrapped => carry out
    lo = sum;
    hi = h2 + u256{carry};
  }
  while (lo >= m) lo -= m;
  return lo;
}

u256 mulmod_p(const u256& a, const u256& b) {
  const auto [hi, lo] = u256::mul_wide(a, b);
  return mod_special(hi, lo, kP, kPc);
}
u256 mulmod_n(const u256& a, const u256& b) {
  const auto [hi, lo] = u256::mul_wide(a, b);
  return mod_special(hi, lo, kN, kNc);
}

u256 addmod_m(const u256& a, const u256& b, const u256& m) {
  u256 s = a + b;
  // Detect the wrap: (a + b) mod 2^256 < a  <=>  carry out.
  if (s < a || s >= m) s -= m;
  return s;
}
u256 submod_m(const u256& a, const u256& b, const u256& m) {
  return (a >= b) ? a - b : m - (b - a);
}

u256 powmod_p(u256 base, const u256& exponent) {
  u256 result{1};
  const unsigned bits = exponent.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = mulmod_p(result, base);
    base = mulmod_p(base, base);
  }
  return result;
}

u256 inv_p(const u256& a) { return powmod_p(a, kP - u256{2}); }

u256 powmod_n(u256 base, const u256& exponent) {
  u256 result{1};
  const unsigned bits = exponent.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = mulmod_n(result, base);
    base = mulmod_n(base, base);
  }
  return result;
}

u256 inv_n(const u256& a) { return powmod_n(a, kN - u256{2}); }

// Jacobian projective coordinates: (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
struct Jacobian {
  u256 x{};
  u256 y{};
  u256 z{};
  bool is_infinity = false;
};

Jacobian to_jacobian(const Point& p) {
  if (p.is_infinity) return {.is_infinity = true};
  return {p.x, p.y, u256{1}, false};
}

Point to_affine(const Jacobian& j) {
  if (j.is_infinity || j.z.is_zero()) return {.is_infinity = true};
  const u256 zi = inv_p(j.z);
  const u256 zi2 = mulmod_p(zi, zi);
  const u256 zi3 = mulmod_p(zi2, zi);
  return {mulmod_p(j.x, zi2), mulmod_p(j.y, zi3), false};
}

Jacobian jac_double(const Jacobian& p) {
  if (p.is_infinity || p.y.is_zero()) return {.is_infinity = true};
  // dbl-2009-l formulas (a = 0 curve).
  const u256 a = mulmod_p(p.x, p.x);                    // X^2
  const u256 b = mulmod_p(p.y, p.y);                    // Y^2
  const u256 c = mulmod_p(b, b);                        // Y^4
  u256 d = mulmod_p(addmod_m(p.x, b, kP), addmod_m(p.x, b, kP));
  d = submod_m(submod_m(d, a, kP), c, kP);
  d = addmod_m(d, d, kP);                               // 2*((X+B)^2 - A - C)
  const u256 e = addmod_m(addmod_m(a, a, kP), a, kP);   // 3*A
  const u256 f = mulmod_p(e, e);
  const u256 x3 = submod_m(f, addmod_m(d, d, kP), kP);
  u256 c8 = addmod_m(c, c, kP);
  c8 = addmod_m(c8, c8, kP);
  c8 = addmod_m(c8, c8, kP);
  const u256 y3 = submod_m(mulmod_p(e, submod_m(d, x3, kP)), c8, kP);
  const u256 z3 = mulmod_p(addmod_m(p.y, p.y, kP), p.z);
  return {x3, y3, z3, false};
}

Jacobian jac_add(const Jacobian& p, const Jacobian& q) {
  if (p.is_infinity) return q;
  if (q.is_infinity) return p;
  const u256 z1z1 = mulmod_p(p.z, p.z);
  const u256 z2z2 = mulmod_p(q.z, q.z);
  const u256 u1 = mulmod_p(p.x, z2z2);
  const u256 u2 = mulmod_p(q.x, z1z1);
  const u256 s1 = mulmod_p(p.y, mulmod_p(z2z2, q.z));
  const u256 s2 = mulmod_p(q.y, mulmod_p(z1z1, p.z));
  if (u1 == u2) {
    if (s1 == s2) return jac_double(p);
    return {.is_infinity = true};
  }
  const u256 h = submod_m(u2, u1, kP);
  u256 i = addmod_m(h, h, kP);
  i = mulmod_p(i, i);
  const u256 j = mulmod_p(h, i);
  u256 r = submod_m(s2, s1, kP);
  r = addmod_m(r, r, kP);
  const u256 v = mulmod_p(u1, i);
  u256 x3 = mulmod_p(r, r);
  x3 = submod_m(x3, j, kP);
  x3 = submod_m(x3, addmod_m(v, v, kP), kP);
  u256 y3 = mulmod_p(r, submod_m(v, x3, kP));
  const u256 s1j = mulmod_p(s1, j);
  y3 = submod_m(y3, addmod_m(s1j, s1j, kP), kP);
  u256 z3 = mulmod_p(p.z, q.z);
  z3 = mulmod_p(addmod_m(z3, z3, kP), h);
  return {x3, y3, z3, false};
}

Jacobian jac_mul(const Jacobian& p, const u256& scalar) {
  Jacobian result{.is_infinity = true};
  Jacobian base = p;
  const unsigned bits = scalar.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (scalar.bit(i)) result = jac_add(result, base);
    base = jac_double(base);
  }
  return result;
}

}  // namespace

namespace secp256k1 {

u256 field_prime() { return kP; }
u256 group_order() { return kN; }
Point generator() { return {kGx, kGy, false}; }

Point add(const Point& a, const Point& b) {
  return to_affine(jac_add(to_jacobian(a), to_jacobian(b)));
}

Point dbl(const Point& a) { return to_affine(jac_double(to_jacobian(a))); }

Point mul(const Point& p, const u256& scalar) {
  const u256 k = scalar % kN;
  return to_affine(jac_mul(to_jacobian(p), k));
}

bool is_on_curve(const Point& p) {
  if (p.is_infinity) return true;
  if (p.x >= kP || p.y >= kP) return false;
  const u256 lhs = mulmod_p(p.y, p.y);
  const u256 rhs = addmod_m(mulmod_p(mulmod_p(p.x, p.x), p.x), u256{7}, kP);
  return lhs == rhs;
}

std::optional<Point> lift_x(const u256& x, bool y_odd) {
  if (x >= kP) return std::nullopt;
  const u256 rhs = addmod_m(mulmod_p(mulmod_p(x, x), x), u256{7}, kP);
  // sqrt via exponent (p+1)/4, valid since p ≡ 3 (mod 4).
  const u256 exp = (kP + u256{1}) >> 2;
  u256 y = powmod_p(rhs, exp);
  if (mulmod_p(y, y) != rhs) return std::nullopt;
  if (y.bit(0) != y_odd) y = kP - y;
  return Point{x, y, false};
}

}  // namespace secp256k1

Bytes Signature::serialize() const {
  Bytes out;
  out.reserve(65);
  append(out, r.to_be_bytes_vec());
  append(out, s.to_be_bytes_vec());
  out.push_back(recovery_id);
  return out;
}

std::optional<Signature> Signature::deserialize(BytesView data) {
  if (data.size() != 65) return std::nullopt;
  Signature sig;
  sig.r = u256::from_be_bytes(data.subspan(0, 32));
  sig.s = u256::from_be_bytes(data.subspan(32, 32));
  sig.recovery_id = data[64];
  if (sig.recovery_id > 1) return std::nullopt;
  return sig;
}

PrivateKey::PrivateKey(const u256& secret) : secret_(secret) {
  if (secret.is_zero() || secret >= kN) throw UsageError("private key out of range");
}

PrivateKey PrivateKey::from_seed(BytesView seed) {
  Bytes material(seed.begin(), seed.end());
  for (uint8_t counter = 0;; ++counter) {
    Bytes attempt = material;
    attempt.push_back(counter);
    const H256 h = sha256(attempt);
    const u256 candidate = h.to_u256();
    if (!candidate.is_zero() && candidate < kN) return PrivateKey(candidate);
  }
}

Point PrivateKey::public_key() const {
  return secp256k1::mul(secp256k1::generator(), secret_);
}

Signature PrivateKey::sign(const H256& message_hash) const {
  const u256 z = message_hash.to_u256() % kN;
  // Deterministic nonce, RFC 6979 flavored: HMAC over (secret || hash || ctr).
  for (uint8_t counter = 0;; ++counter) {
    Bytes nonce_input;
    append(nonce_input, secret_.to_be_bytes_vec());
    append(nonce_input, message_hash.view());
    nonce_input.push_back(counter);
    const u256 k = hmac_sha256(secret_.to_be_bytes_vec(), nonce_input).to_u256() % kN;
    if (k.is_zero()) continue;

    const Point rp = secp256k1::mul(secp256k1::generator(), k);
    if (rp.is_infinity) continue;
    const u256 r = rp.x % kN;
    if (r.is_zero()) continue;
    const u256 s = mulmod_n(inv_n(k), addmod_m(z, mulmod_n(r, secret_), kN));
    if (s.is_zero()) continue;

    Signature sig;
    sig.r = r;
    sig.s = s;
    // Recovery id: parity of R.y; assume rp.x < n (overwhelmingly likely, and
    // enforced by the retry loop given r = rp.x mod n must equal rp.x here).
    if (rp.x != r) continue;  // extremely rare overflow case; retry
    sig.recovery_id = rp.y.bit(0) ? 1 : 0;
    return sig;
  }
}

H256 PrivateKey::ecdh(const Point& peer_public) const {
  if (!secp256k1::is_on_curve(peer_public) || peer_public.is_infinity) {
    throw UsageError("ecdh: invalid peer public key");
  }
  const Point shared = secp256k1::mul(peer_public, secret_);
  return sha256(shared.x.to_be_bytes_vec());
}

bool ecdsa_verify(const Point& public_key, const H256& message_hash,
                  const Signature& sig) {
  if (sig.r.is_zero() || sig.r >= kN || sig.s.is_zero() || sig.s >= kN) return false;
  if (!secp256k1::is_on_curve(public_key) || public_key.is_infinity) return false;
  const u256 z = message_hash.to_u256() % kN;
  const u256 w = inv_n(sig.s);
  const u256 u1 = mulmod_n(z, w);
  const u256 u2 = mulmod_n(sig.r, w);
  const Jacobian sum = jac_add(jac_mul(to_jacobian(secp256k1::generator()), u1),
                               jac_mul(to_jacobian(public_key), u2));
  const Point p = to_affine(sum);
  if (p.is_infinity) return false;
  return (p.x % kN) == sig.r;
}

std::optional<Point> ecdsa_recover(const H256& message_hash, const Signature& sig) {
  if (sig.r.is_zero() || sig.r >= kN || sig.s.is_zero() || sig.s >= kN) return std::nullopt;
  if (sig.recovery_id > 1) return std::nullopt;
  const auto rp = secp256k1::lift_x(sig.r, sig.recovery_id == 1);
  if (!rp) return std::nullopt;
  const u256 z = message_hash.to_u256() % kN;
  const u256 r_inv = inv_n(sig.r);
  // Q = r^-1 * (s*R - z*G)
  const Jacobian s_r = jac_mul(to_jacobian(*rp), sig.s);
  Point neg_g = secp256k1::generator();
  neg_g.y = kP - neg_g.y;
  const Jacobian z_g = jac_mul(to_jacobian(neg_g), z);
  const Jacobian q = jac_mul(jac_add(s_r, z_g), r_inv);
  const Point result = to_affine(q);
  if (result.is_infinity || !secp256k1::is_on_curve(result)) return std::nullopt;
  return result;
}

Address pubkey_to_address(const Point& public_key) {
  const Bytes serialized = point_serialize(public_key);
  const H256 h = keccak256(serialized);
  Address addr;
  std::memcpy(addr.bytes.data(), h.bytes.data() + 12, 20);
  return addr;
}

Bytes point_serialize(const Point& p) {
  Bytes out;
  out.reserve(64);
  if (p.is_infinity) {
    out.assign(64, 0);
    return out;
  }
  append(out, p.x.to_be_bytes_vec());
  append(out, p.y.to_be_bytes_vec());
  return out;
}

std::optional<Point> point_deserialize(BytesView data) {
  if (data.size() != 64) return std::nullopt;
  Point p;
  p.x = u256::from_be_bytes(data.subspan(0, 32));
  p.y = u256::from_be_bytes(data.subspan(32, 32));
  p.is_infinity = p.x.is_zero() && p.y.is_zero();
  if (!p.is_infinity && !secp256k1::is_on_curve(p)) return std::nullopt;
  return p;
}

}  // namespace hardtape::crypto
