// Keccak-256 — Ethereum's hash function.
//
// Ethereum uses the original Keccak padding (0x01), not the FIPS-202 SHA-3
// padding (0x06). Every address derivation, storage-trie key, code hash and
// Merkle Patricia Trie node hash in this repository flows through here.
#pragma once

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::crypto {

/// Keccak-256 of `data`.
H256 keccak256(BytesView data);

/// Convenience overload for string literals in tests.
H256 keccak256(std::string_view data);

}  // namespace hardtape::crypto
