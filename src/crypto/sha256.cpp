#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>

#include "common/errors.hpp"

namespace hardtape::crypto {

namespace {
constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void compress(uint32_t h[8], const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (uint32_t{block[i * 4]} << 24) | (uint32_t{block[i * 4 + 1]} << 16) |
           (uint32_t{block[i * 4 + 2]} << 8) | block[i * 4 + 3];
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
  uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
    const uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = s0 + maj;
    hh = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  h[0] += a; h[1] += b; h[2] += c; h[3] += d;
  h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
}
}  // namespace

H256 sha256(BytesView data) {
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  size_t offset = 0;
  while (data.size() - offset >= 64) {
    compress(h, data.data() + offset);
    offset += 64;
  }
  uint8_t block[64] = {};
  const size_t remaining = data.size() - offset;
  if (remaining > 0) std::memcpy(block, data.data() + offset, remaining);
  block[remaining] = 0x80;
  if (remaining >= 56) {
    compress(h, block);
    std::memset(block, 0, sizeof block);
  }
  const uint64_t bit_len = uint64_t{data.size()} * 8;
  for (int i = 0; i < 8; ++i) block[56 + i] = static_cast<uint8_t>(bit_len >> (56 - i * 8));
  compress(h, block);

  H256 out;
  for (int i = 0; i < 8; ++i) {
    out.bytes[i * 4] = static_cast<uint8_t>(h[i] >> 24);
    out.bytes[i * 4 + 1] = static_cast<uint8_t>(h[i] >> 16);
    out.bytes[i * 4 + 2] = static_cast<uint8_t>(h[i] >> 8);
    out.bytes[i * 4 + 3] = static_cast<uint8_t>(h[i]);
  }
  return out;
}

H256 hmac_sha256(BytesView key, BytesView data) {
  uint8_t key_block[64] = {};
  if (key.size() > 64) {
    const H256 kh = sha256(key);
    std::memcpy(key_block, kh.bytes.data(), 32);
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }
  Bytes inner;
  inner.reserve(64 + data.size());
  for (int i = 0; i < 64; ++i) inner.push_back(key_block[i] ^ 0x36);
  append(inner, data);
  const H256 inner_hash = sha256(inner);

  Bytes outer;
  outer.reserve(64 + 32);
  for (int i = 0; i < 64; ++i) outer.push_back(key_block[i] ^ 0x5c);
  append(outer, inner_hash.view());
  return sha256(outer);
}

Bytes hkdf_sha256(BytesView input_key_material, BytesView salt, BytesView info,
                  size_t length) {
  if (length > 255 * 32) throw UsageError("hkdf: length too large");
  const H256 prk = salt.empty()
                       ? hmac_sha256(Bytes(32, 0), input_key_material)
                       : hmac_sha256(salt, input_key_material);
  Bytes okm;
  Bytes t;
  uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    const H256 out = hmac_sha256(prk.view(), block);
    t.assign(out.bytes.begin(), out.bytes.end());
    append(okm, t);
  }
  okm.resize(length);
  return okm;
}

}  // namespace hardtape::crypto
