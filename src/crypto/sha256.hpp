// SHA-256 (FIPS 180-4).
//
// Used by the SHA256 precompile (address 0x2), HKDF-style key derivation for
// session keys, and RFC 6979 deterministic ECDSA nonces.
#pragma once

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::crypto {

H256 sha256(BytesView data);

/// HMAC-SHA256 (RFC 2104) — building block for HKDF and RFC 6979.
H256 hmac_sha256(BytesView key, BytesView data);

/// HKDF-Extract-and-Expand (RFC 5869) producing `length` <= 8160 bytes.
Bytes hkdf_sha256(BytesView input_key_material, BytesView salt, BytesView info,
                  size_t length);

}  // namespace hardtape::crypto
