// secp256k1 elliptic curve: field/scalar arithmetic, ECDSA, ECDH.
//
// Three consumers in HarDTAPE:
//  - remote attestation + session signatures (Sections IV-A, VI-C "-ES"):
//    the device key signs the attestation report; the user and Hypervisor
//    sign bundle inputs and traces with per-session ECDSA keys;
//  - Diffie-Hellman session-key agreement (ECDH on the same curve);
//  - the EVM's ecrecover precompile (address 0x1).
//
// Curve: y^2 = x^3 + 7 over F_p, p = 2^256 - 2^32 - 977.
// ECDSA nonces are deterministic (RFC 6979 style via HMAC-SHA256) so runs
// are reproducible and there is no nonce-reuse hazard.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::crypto {

/// Affine curve point; infinity is represented by {is_infinity = true}.
struct Point {
  u256 x{};
  u256 y{};
  bool is_infinity = false;

  friend bool operator==(const Point&, const Point&) = default;
};

namespace secp256k1 {

/// Field prime p and group order n.
u256 field_prime();
u256 group_order();
Point generator();

Point add(const Point& a, const Point& b);
Point dbl(const Point& a);
Point mul(const Point& p, const u256& scalar);
bool is_on_curve(const Point& p);

/// Lifts an x coordinate to a point with the requested y parity; nullopt if
/// x^3 + 7 is not a quadratic residue.
std::optional<Point> lift_x(const u256& x, bool y_odd);

}  // namespace secp256k1

struct Signature {
  u256 r;
  u256 s;
  uint8_t recovery_id = 0;  ///< parity of R.y (0 or 1), enables recovery

  Bytes serialize() const;  ///< 65 bytes: r || s || v
  static std::optional<Signature> deserialize(BytesView data);
};

class PrivateKey {
 public:
  /// `secret` must be in [1, n-1]; throws UsageError otherwise.
  explicit PrivateKey(const u256& secret);
  /// Derives a valid key from arbitrary seed material.
  static PrivateKey from_seed(BytesView seed);

  const u256& secret() const { return secret_; }
  Point public_key() const;

  /// ECDSA over a 32-byte message hash.
  Signature sign(const H256& message_hash) const;

  /// ECDH: shared secret = x-coordinate of (secret * peer), hashed.
  H256 ecdh(const Point& peer_public) const;

 private:
  u256 secret_;
};

/// Standard ECDSA verification.
bool ecdsa_verify(const Point& public_key, const H256& message_hash,
                  const Signature& sig);

/// Public-key recovery (the ecrecover semantics). Returns nullopt for
/// invalid signatures.
std::optional<Point> ecdsa_recover(const H256& message_hash, const Signature& sig);

/// Ethereum address of a public key: low 20 bytes of keccak256(x || y).
Address pubkey_to_address(const Point& public_key);

/// Serializes a point as 64 bytes (x || y, big-endian). Infinity -> zeros.
Bytes point_serialize(const Point& p);
std::optional<Point> point_deserialize(BytesView data);

}  // namespace hardtape::crypto
