#include "crypto/aes.hpp"

#include <cstring>

namespace hardtape::crypto {

namespace {
// AES S-box (FIPS-197).
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

uint8_t xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}
}  // namespace

Aes128::Aes128(const AesKey128& key) {
  std::memcpy(round_keys_.data(), key.data(), 16);
  for (int i = 4; i < 44; ++i) {
    uint8_t t[4];
    std::memcpy(t, round_keys_.data() + (i - 1) * 4, 4);
    if (i % 4 == 0) {
      const uint8_t tmp = t[0];
      t[0] = static_cast<uint8_t>(kSbox[t[1]] ^ kRcon[i / 4]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[static_cast<size_t>(i * 4 + j)] =
          round_keys_[static_cast<size_t>((i - 4) * 4 + j)] ^ t[j];
    }
  }
}

void Aes128::encrypt_block(const uint8_t in[16], uint8_t out[16]) const {
  uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[static_cast<size_t>(i)];

  for (int round = 1; round <= 10; ++round) {
    // SubBytes
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (state is column-major: s[col*4 + row])
    uint8_t t[16];
    for (int col = 0; col < 4; ++col) {
      for (int row = 0; row < 4; ++row) {
        t[col * 4 + row] = s[((col + row) % 4) * 4 + row];
      }
    }
    std::memcpy(s, t, 16);
    // MixColumns (skipped in the final round)
    if (round != 10) {
      for (int col = 0; col < 4; ++col) {
        uint8_t* c = s + col * 4;
        const uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        const uint8_t all = static_cast<uint8_t>(a0 ^ a1 ^ a2 ^ a3);
        c[0] = static_cast<uint8_t>(a0 ^ all ^ xtime(static_cast<uint8_t>(a0 ^ a1)));
        c[1] = static_cast<uint8_t>(a1 ^ all ^ xtime(static_cast<uint8_t>(a1 ^ a2)));
        c[2] = static_cast<uint8_t>(a2 ^ all ^ xtime(static_cast<uint8_t>(a2 ^ a3)));
        c[3] = static_cast<uint8_t>(a3 ^ all ^ xtime(static_cast<uint8_t>(a3 ^ a0)));
      }
    }
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[static_cast<size_t>(round * 16 + i)];
  }
  std::memcpy(out, s, 16);
}

namespace {
// GF(2^128) multiplication for GHASH, bit-by-bit (right-shift algorithm,
// NIST SP 800-38D notation).
void gf_mul(uint8_t x[16], const uint8_t y[16]) {
  uint8_t z[16] = {};
  uint8_t v[16];
  std::memcpy(v, y, 16);
  for (int i = 0; i < 128; ++i) {
    if ((x[i / 8] >> (7 - i % 8)) & 1) {
      for (int j = 0; j < 16; ++j) z[j] ^= v[j];
    }
    const bool lsb = v[15] & 1;
    for (int j = 15; j > 0; --j) v[j] = static_cast<uint8_t>((v[j] >> 1) | (v[j - 1] << 7));
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;
  }
  std::memcpy(x, z, 16);
}

void ghash_update(uint8_t y[16], const uint8_t h[16], BytesView data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const size_t take = std::min<size_t>(16, data.size() - offset);
    for (size_t i = 0; i < take; ++i) y[i] ^= data[offset + i];
    gf_mul(y, h);
    offset += take;
  }
}

void inc32(uint8_t counter[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[i] != 0) break;
  }
}

struct GcmContext {
  Aes128 cipher;
  uint8_t h[16];
  uint8_t j0[16];

  explicit GcmContext(const AesKey128& key, const GcmNonce& nonce) : cipher(key) {
    const uint8_t zero[16] = {};
    cipher.encrypt_block(zero, h);
    std::memcpy(j0, nonce.data(), 12);
    j0[12] = j0[13] = j0[14] = 0;
    j0[15] = 1;
  }

  Bytes ctr_crypt(BytesView data) {
    Bytes out(data.size());
    uint8_t counter[16];
    std::memcpy(counter, j0, 16);
    size_t offset = 0;
    while (offset < data.size()) {
      inc32(counter);
      uint8_t keystream[16];
      cipher.encrypt_block(counter, keystream);
      const size_t take = std::min<size_t>(16, data.size() - offset);
      for (size_t i = 0; i < take; ++i) out[offset + i] = data[offset + i] ^ keystream[i];
      offset += take;
    }
    return out;
  }

  GcmTag compute_tag(BytesView aad, BytesView ciphertext) {
    uint8_t y[16] = {};
    ghash_update(y, h, aad);
    ghash_update(y, h, ciphertext);
    uint8_t lengths[16];
    const uint64_t aad_bits = uint64_t{aad.size()} * 8;
    const uint64_t ct_bits = uint64_t{ciphertext.size()} * 8;
    for (int i = 0; i < 8; ++i) {
      lengths[i] = static_cast<uint8_t>(aad_bits >> (56 - i * 8));
      lengths[8 + i] = static_cast<uint8_t>(ct_bits >> (56 - i * 8));
    }
    ghash_update(y, h, BytesView{lengths, 16});
    uint8_t ek_j0[16];
    cipher.encrypt_block(j0, ek_j0);
    GcmTag tag;
    for (int i = 0; i < 16; ++i) tag[static_cast<size_t>(i)] = y[i] ^ ek_j0[i];
    return tag;
  }
};
}  // namespace

GcmResult aes_gcm_encrypt(const AesKey128& key, const GcmNonce& nonce,
                          BytesView plaintext, BytesView aad) {
  GcmContext ctx(key, nonce);
  GcmResult result;
  result.ciphertext = ctx.ctr_crypt(plaintext);
  result.tag = ctx.compute_tag(aad, result.ciphertext);
  return result;
}

std::optional<Bytes> aes_gcm_decrypt(const AesKey128& key, const GcmNonce& nonce,
                                     BytesView ciphertext, BytesView aad,
                                     const GcmTag& tag) {
  GcmContext ctx(key, nonce);
  const GcmTag expected = ctx.compute_tag(aad, ciphertext);
  if (!ct_equal(BytesView{expected.data(), expected.size()},
                BytesView{tag.data(), tag.size()})) {
    return std::nullopt;
  }
  return ctx.ctr_crypt(ciphertext);
}

Bytes aes_ctr_xor(const AesKey128& key, const GcmNonce& nonce, BytesView data) {
  GcmContext ctx(key, nonce);
  return ctx.ctr_crypt(data);
}

}  // namespace hardtape::crypto
