// AES-128 and AES-128-GCM.
//
// HarDTAPE uses AES-GCM in three places (Section IV-C):
//  - the user<->Hypervisor secure channel (session key from DHKE),
//  - sealing layer-3 (untrusted memory) pages,
//  - ORAM block re-encryption (shared ORAM key across devices).
// The "A.E.DMA" hardware units of the paper correspond to this module plus
// the DMA cost model in sim/.
//
// This is a straightforward table-free software implementation; GHASH is a
// schoolbook GF(2^128) multiply. Correctness over speed — the performance
// numbers in the benches come from the cost models, not from this code's
// wall-clock time (see DESIGN.md §1).
#pragma once

#include <array>
#include <optional>

#include "common/bytes.hpp"

namespace hardtape::crypto {

using AesKey128 = std::array<uint8_t, 16>;
using GcmNonce = std::array<uint8_t, 12>;
using GcmTag = std::array<uint8_t, 16>;

/// Raw AES-128 block cipher. Exposed for tests against FIPS-197 vectors.
class Aes128 {
 public:
  explicit Aes128(const AesKey128& key);
  void encrypt_block(const uint8_t in[16], uint8_t out[16]) const;

 private:
  std::array<uint8_t, 176> round_keys_{};  // 11 round keys
};

struct GcmResult {
  Bytes ciphertext;
  GcmTag tag;
};

/// AES-128-GCM authenticated encryption.
GcmResult aes_gcm_encrypt(const AesKey128& key, const GcmNonce& nonce,
                          BytesView plaintext, BytesView aad);

/// Returns std::nullopt when the tag does not verify (expected failure mode;
/// never throws for tampered input).
std::optional<Bytes> aes_gcm_decrypt(const AesKey128& key, const GcmNonce& nonce,
                                     BytesView ciphertext, BytesView aad,
                                     const GcmTag& tag);

/// AES-128-CTR keystream XOR (used for ORAM block re-encryption where the
/// integrity tag is stored separately per bucket).
Bytes aes_ctr_xor(const AesKey128& key, const GcmNonce& nonce, BytesView data);

}  // namespace hardtape::crypto
