#include "node/node.hpp"

#include "crypto/keccak.hpp"
#include "trie/rlp.hpp"

namespace hardtape::node {

Bytes BlockHeader::rlp_encode() const {
  using namespace trie;
  return rlp_encode_list({
      rlp_encode_u256(u256{number}),
      rlp_encode_bytes(parent_hash.view()),
      rlp_encode_bytes(state_root.view()),
      rlp_encode_bytes(tx_root.view()),
      rlp_encode_u256(u256{timestamp}),
      rlp_encode_u256(u256{gas_used}),
  });
}

H256 BlockHeader::hash() const { return crypto::keccak256(rlp_encode()); }

NodeSimulator::NodeSimulator(evm::BlockContext genesis_context)
    : context_(std::move(genesis_context)) {
  BlockHeader genesis;
  genesis.number = context_.number;
  genesis.timestamp = context_.timestamp;
  genesis.state_root = world_.state_root();
  chain_.push_back(genesis);
}

const BlockHeader& NodeSimulator::head() const { return chain_.back(); }

evm::BlockContext NodeSimulator::block_context() const {
  evm::BlockContext ctx = context_;
  ctx.number = head().number;
  ctx.timestamp = head().timestamp;
  return ctx;
}

BlockHeader NodeSimulator::produce_block(const std::vector<evm::Transaction>& txs) {
  evm::BlockContext ctx = context_;
  ctx.number = head().number + 1;
  ctx.timestamp = head().timestamp + 12;  // mainnet cadence (paper §II-A)

  // Execute against an overlay, then commit the net effects to the world.
  state::OverlayState overlay(world_);
  evm::Interpreter interpreter(overlay, ctx);

  last_receipts_.clear();
  uint64_t gas_used = 0;
  Bytes tx_digest_input;
  for (const evm::Transaction& tx : txs) {
    const evm::TxResult result = interpreter.execute_transaction(tx);
    last_receipts_.push_back({result.status, result.gas_used});
    gas_used += result.gas_used;
    append(tx_digest_input, tx.from.view());
    append(tx_digest_input, u256{result.gas_used}.to_be_bytes_vec());
  }

  // Commit: balances, nonces, storage and code written by the block.
  for (const auto& [addr, balance] : overlay.balance_changes()) {
    world_.set_balance(addr, balance);
  }
  for (const auto& write : overlay.storage_writes()) {
    world_.set_storage(write.addr, write.key, write.value);
  }
  // Nonces and code: replay from the overlay cache for every touched sender
  // and created contract.
  for (const evm::Transaction& tx : txs) {
    world_.set_nonce(tx.from, overlay.nonce(tx.from));
    if (!tx.to.has_value()) {
      // Contract creation: find the deployed code via the overlay.
      // (The create address is deterministic; recompute via nonce-1.)
    }
  }
  // Generic sweep: any account whose code differs gets updated.
  // OverlayState does not enumerate code writes, so NodeSimulator executes
  // creations by re-checking accounts the transactions could have created.
  // For simplicity and determinism we snapshot code through the overlay for
  // every balance-changed account.
  for (const auto& [addr, balance] : overlay.balance_changes()) {
    const Bytes overlay_code = overlay.code(addr);
    if (overlay_code != world_.code(addr)) world_.set_code(addr, overlay_code);
    world_.set_nonce(addr, overlay.nonce(addr));
  }

  BlockHeader header;
  header.number = ctx.number;
  header.parent_hash = head().hash();
  header.state_root = world_.state_root();
  header.tx_root = crypto::keccak256(tx_digest_input);
  header.timestamp = ctx.timestamp;
  header.gas_used = gas_used;
  chain_.push_back(header);
  return header;
}

NodeSimulator::AccountResponse NodeSimulator::fetch_account(const Address& addr) const {
  AccountResponse response;
  if (const auto account = world_.account(addr)) {
    state::Account fixed = *account;
    fixed.storage_root = world_.storage_root(addr);
    response.account_rlp = fixed.rlp_encode();
    if (dishonest_) {
      // Inflate the balance by one wei — must be caught by proof checking.
      state::Account lie = fixed;
      lie.balance += u256{1};
      response.account_rlp = lie.rlp_encode();
    }
  }
  response.proof = world_.prove_account(addr);
  return response;
}

NodeSimulator::StorageResponse NodeSimulator::fetch_storage(const Address& addr,
                                                            const u256& key) const {
  StorageResponse response;
  response.value = world_.storage(addr, key);
  if (dishonest_) response.value += u256{1};
  response.proof = world_.prove_storage(addr, key);
  return response;
}

Bytes NodeSimulator::fetch_code(const Address& addr) const {
  Bytes code = world_.code(addr);
  if (dishonest_ && !code.empty()) code[0] ^= 0x01;
  return code;
}

}  // namespace hardtape::node
