#include "node/node.hpp"

#include "crypto/keccak.hpp"
#include "trie/rlp.hpp"

namespace hardtape::node {

Bytes BlockHeader::rlp_encode() const {
  using namespace trie;
  return rlp_encode_list({
      rlp_encode_u256(u256{number}),
      rlp_encode_bytes(parent_hash.view()),
      rlp_encode_bytes(state_root.view()),
      rlp_encode_bytes(tx_root.view()),
      rlp_encode_u256(u256{timestamp}),
      rlp_encode_u256(u256{gas_used}),
  });
}

H256 BlockHeader::hash() const { return crypto::keccak256(rlp_encode()); }

NodeSimulator::NodeSimulator(evm::BlockContext genesis_context,
                             trie::NodeStore* node_store)
    : context_(std::move(genesis_context)) {
  if (node_store != nullptr) world_ = state::WorldState(node_store);
  BlockHeader genesis;
  genesis.number = context_.number;
  genesis.timestamp = context_.timestamp;
  genesis.state_root = world_.state_root();
  chain_.push_back(genesis);
  snapshot_head_locked();
}

void NodeSimulator::refresh_genesis_locked() {
  // Test/bench setup mutates world() directly before the first block; the
  // genesis header and snapshot taken at construction would then pin the
  // pre-setup (empty) state. Re-pin genesis to the current world until a
  // block exists — afterwards the chain is append-only.
  if (chain_.size() != 1) return;
  const H256 root = world_.state_root();
  if (root == chain_[0].state_root) return;
  const H256 old_root = chain_[0].state_root;
  if (auto it = canonical_roots_.find(old_root); it != canonical_roots_.end()) {
    if (--it->second == 0) canonical_roots_.erase(it);
  }
  snapshots_.erase(old_root);
  chain_[0].state_root = root;
  snapshot_head_locked();
}

void NodeSimulator::snapshot_head_locked() {
  auto snap = std::make_shared<state::WorldState>(world_);
  // Pre-build the lazily rebuilt tries so concurrent pinned reads of the
  // (otherwise immutable) snapshot never race on a first rebuild.
  (void)snap->state_root();
  snapshots_[chain_.back().state_root] = std::move(snap);
  ++canonical_roots_[chain_.back().state_root];
}

BlockHeader NodeSimulator::head() const {
  std::shared_lock lock(mu_);
  return chain_.back();
}

uint64_t NodeSimulator::head_number() const {
  std::shared_lock lock(mu_);
  return chain_.back().number;
}

std::vector<BlockHeader> NodeSimulator::chain() const {
  std::shared_lock lock(mu_);
  return chain_;
}

std::vector<TxReceipt> NodeSimulator::last_receipts() const {
  std::shared_lock lock(mu_);
  return last_receipts_;
}

evm::BlockContext NodeSimulator::block_context() const {
  std::shared_lock lock(mu_);
  evm::BlockContext ctx = context_;
  ctx.number = chain_.back().number;
  ctx.timestamp = chain_.back().timestamp;
  return ctx;
}

evm::BlockContext NodeSimulator::block_context_at(const BlockHeader& header) const {
  evm::BlockContext ctx = context_;
  ctx.number = header.number;
  ctx.timestamp = header.timestamp;
  return ctx;
}

PinnedBlock NodeSimulator::pinned_head() {
  std::unique_lock lock(mu_);
  refresh_genesis_locked();  // may re-pin genesis, hence non-const
  return {chain_.back(), snapshots_.at(chain_.back().state_root)};
}

std::shared_ptr<const state::WorldState> NodeSimulator::world_at(
    const H256& state_root) const {
  std::shared_lock lock(mu_);
  const auto it = snapshots_.find(state_root);
  return it == snapshots_.end() ? nullptr : it->second;
}

bool NodeSimulator::is_canonical_root(const H256& state_root) const {
  std::shared_lock lock(mu_);
  return canonical_roots_.find(state_root) != canonical_roots_.end();
}

uint64_t NodeSimulator::orphaned_blocks() const {
  std::shared_lock lock(mu_);
  return orphaned_blocks_;
}

uint64_t NodeSimulator::reorgs() const {
  std::shared_lock lock(mu_);
  return reorgs_;
}

void NodeSimulator::set_schedule(ChainSchedule schedule) {
  std::unique_lock lock(mu_);
  schedule_ = schedule;
  schedule_rng_ = std::make_unique<Random>(schedule.seed);
}

BlockHeader NodeSimulator::produce_block(const std::vector<evm::Transaction>& txs) {
  std::unique_lock lock(mu_);
  refresh_genesis_locked();
  return produce_locked(txs, 12);  // mainnet cadence (paper §II-A)
}

NodeSimulator::TickResult NodeSimulator::tick(const std::vector<evm::Transaction>& txs) {
  std::unique_lock lock(mu_);
  if (schedule_rng_ == nullptr) throw UsageError("node: set_schedule() before tick()");
  refresh_genesis_locked();
  TickResult result;
  // Always draw, so the decision stream depends only on the tick index —
  // not on how deep the chain happened to be when the draw was made.
  const double draw = schedule_rng_->uniform_double();
  const bool can_reorg = chain_.size() >= 2 && schedule_.max_reorg_depth >= 1;
  if (can_reorg && draw < schedule_.reorg_rate) {
    const uint64_t max_depth = std::min<uint64_t>(
        static_cast<uint64_t>(schedule_.max_reorg_depth), chain_.size() - 1);
    result.reorged = true;
    result.depth = static_cast<int>(schedule_rng_->uniform_range(1, max_depth));
    reorg_locked(result.depth, txs);
  } else {
    produce_locked(txs, 12);
  }
  result.head = chain_.back();
  return result;
}

void NodeSimulator::reorg_locked(int depth, const std::vector<evm::Transaction>& txs) {
  // Orphan the last `depth` canonical blocks. Their snapshots stay behind so
  // pinned queries remain answerable — the trusted side must be able to
  // *discover* the orphaning (is_canonical_root), not lose the data.
  for (int i = 0; i < depth; ++i) {
    const BlockHeader orphan = chain_.back();
    chain_.pop_back();
    if (auto it = canonical_roots_.find(orphan.state_root); it != canonical_roots_.end()) {
      if (--it->second == 0) canonical_roots_.erase(it);
    }
    ++orphaned_blocks_;
  }
  ++reorgs_;
  // Rewind the live world to the fork point...
  world_ = *snapshots_.at(chain_.back().state_root);
  // ...and build the sibling fork: depth+1 blocks, so the fork overtakes the
  // orphaned branch and the head number still advances by one per tick. The
  // first fork block executes a seeded shuffle of the tick's transactions
  // and runs off-cadence (+13 s), so both its state and its header diverge
  // from the block it replaces.
  std::vector<evm::Transaction> fork_txs = txs;
  for (size_t i = fork_txs.size(); i > 1; --i) {
    std::swap(fork_txs[i - 1], fork_txs[schedule_rng_->uniform(i)]);
  }
  produce_locked(fork_txs, 13);
  for (int i = 0; i < depth; ++i) produce_locked({}, 12);
}

BlockHeader NodeSimulator::produce_locked(const std::vector<evm::Transaction>& txs,
                                          uint64_t timestamp_gap) {
  evm::BlockContext ctx = context_;
  ctx.number = chain_.back().number + 1;
  ctx.timestamp = chain_.back().timestamp + timestamp_gap;

  // Execute against an overlay, then commit the net effects to the world.
  state::OverlayState overlay(world_);
  evm::Interpreter interpreter(overlay, ctx);

  last_receipts_.clear();
  uint64_t gas_used = 0;
  Bytes tx_digest_input;
  for (const evm::Transaction& tx : txs) {
    const evm::TxResult result = interpreter.execute_transaction(tx);
    last_receipts_.push_back({result.status, result.gas_used});
    gas_used += result.gas_used;
    append(tx_digest_input, tx.from.view());
    append(tx_digest_input, u256{result.gas_used}.to_be_bytes_vec());
  }

  // Commit: balances, nonces, storage and code written by the block.
  for (const auto& [addr, balance] : overlay.balance_changes()) {
    world_.set_balance(addr, balance);
  }
  for (const auto& write : overlay.storage_writes()) {
    world_.set_storage(write.addr, write.key, write.value);
  }
  // Nonces and code: replay from the overlay cache for every touched sender
  // and created contract.
  for (const evm::Transaction& tx : txs) {
    world_.set_nonce(tx.from, overlay.nonce(tx.from));
    if (!tx.to.has_value()) {
      // Contract creation: find the deployed code via the overlay.
      // (The create address is deterministic; recompute via nonce-1.)
    }
  }
  // Generic sweep: any account whose code differs gets updated.
  // OverlayState does not enumerate code writes, so NodeSimulator executes
  // creations by re-checking accounts the transactions could have created.
  // For simplicity and determinism we snapshot code through the overlay for
  // every balance-changed account.
  for (const auto& [addr, balance] : overlay.balance_changes()) {
    const Bytes overlay_code = overlay.code(addr);
    if (overlay_code != world_.code(addr)) world_.set_code(addr, overlay_code);
    world_.set_nonce(addr, overlay.nonce(addr));
  }

  BlockHeader header;
  header.number = ctx.number;
  header.parent_hash = chain_.back().hash();
  header.state_root = world_.state_root();
  header.tx_root = crypto::keccak256(tx_digest_input);
  header.timestamp = ctx.timestamp;
  header.gas_used = gas_used;
  chain_.push_back(header);
  snapshot_head_locked();
  return header;
}

namespace {

NodeSimulator::AccountResponse account_response_for(const state::WorldState& world,
                                                    const Address& addr,
                                                    bool dishonest) {
  NodeSimulator::AccountResponse response;
  if (const auto account = world.account(addr)) {
    state::Account fixed = *account;
    fixed.storage_root = world.storage_root(addr);
    response.account_rlp = fixed.rlp_encode();
    if (dishonest) {
      // Inflate the balance by one wei — must be caught by proof checking.
      state::Account lie = fixed;
      lie.balance += u256{1};
      response.account_rlp = lie.rlp_encode();
    }
  }
  response.proof = world.prove_account(addr);
  return response;
}

NodeSimulator::StorageResponse storage_response_for(const state::WorldState& world,
                                                    const Address& addr, const u256& key,
                                                    bool dishonest) {
  NodeSimulator::StorageResponse response;
  response.value = world.storage(addr, key);
  if (dishonest) response.value += u256{1};
  response.proof = world.prove_storage(addr, key);
  return response;
}

Bytes code_for(const state::WorldState& world, const Address& addr, bool dishonest) {
  Bytes code = world.code(addr);
  if (dishonest && !code.empty()) code[0] ^= 0x01;
  return code;
}

}  // namespace

const state::WorldState* NodeSimulator::world_for_root_locked(
    const H256& state_root) const {
  const auto it = snapshots_.find(state_root);
  return it == snapshots_.end() ? nullptr : it->second.get();
}

NodeSimulator::AccountResponse NodeSimulator::fetch_account(const Address& addr) const {
  std::shared_lock lock(mu_);
  return account_response_for(world_, addr, dishonest_);
}

NodeSimulator::AccountResponse NodeSimulator::fetch_account(
    const Address& addr, const H256& state_root) const {
  std::shared_lock lock(mu_);
  const state::WorldState* world = world_for_root_locked(state_root);
  if (world == nullptr) return {};  // empty proof -> verification rejects it
  return account_response_for(*world, addr, dishonest_);
}

NodeSimulator::StorageResponse NodeSimulator::fetch_storage(const Address& addr,
                                                            const u256& key) const {
  std::shared_lock lock(mu_);
  return storage_response_for(world_, addr, key, dishonest_);
}

NodeSimulator::StorageResponse NodeSimulator::fetch_storage(
    const Address& addr, const u256& key, const H256& state_root) const {
  std::shared_lock lock(mu_);
  const state::WorldState* world = world_for_root_locked(state_root);
  if (world == nullptr) return {};
  return storage_response_for(*world, addr, key, dishonest_);
}

Bytes NodeSimulator::fetch_code(const Address& addr) const {
  std::shared_lock lock(mu_);
  return code_for(world_, addr, dishonest_);
}

Bytes NodeSimulator::fetch_code(const Address& addr, const H256& state_root) const {
  std::shared_lock lock(mu_);
  const state::WorldState* world = world_for_root_locked(state_root);
  if (world == nullptr) return {};
  return code_for(*world, addr, dishonest_);
}

}  // namespace hardtape::node
