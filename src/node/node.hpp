// Ethereum full-node simulator (the "Node" party of paper Section III-A).
//
// The Node holds the authoritative world state, produces blocks, and serves
// world-state queries with Merkle proofs. It is run BY the service provider
// and therefore untrusted: HarDTAPE only accepts its data when the proofs
// verify against a block hash the user trusts (threat A6). A dishonest mode
// lets tests exercise exactly that attack.
#pragma once

#include "evm/interpreter.hpp"
#include "state/world_state.hpp"
#include "trie/mpt.hpp"

namespace hardtape::node {

struct BlockHeader {
  uint64_t number = 0;
  H256 parent_hash{};
  H256 state_root{};
  H256 tx_root{};
  uint64_t timestamp = 0;
  uint64_t gas_used = 0;

  /// Block hash: keccak of the RLP-coded header.
  H256 hash() const;
  Bytes rlp_encode() const;
};

struct TxReceipt {
  evm::VmStatus status;
  uint64_t gas_used;
};

class NodeSimulator {
 public:
  explicit NodeSimulator(evm::BlockContext genesis_context = {});

  state::WorldState& world() { return world_; }
  const state::WorldState& world() const { return world_; }

  /// Executes `txs` against the world state and appends a block.
  /// Invalid transactions are included with their failure receipts (as a
  /// real chain records reverted transactions).
  BlockHeader produce_block(const std::vector<evm::Transaction>& txs);

  const BlockHeader& head() const;
  const std::vector<BlockHeader>& chain() const { return chain_; }
  const std::vector<TxReceipt>& last_receipts() const { return last_receipts_; }
  evm::BlockContext block_context() const;

  // --- query API used during HarDTAPE block synchronization ---
  struct AccountResponse {
    Bytes account_rlp;        ///< empty when absent
    trie::MerkleProof proof;  ///< against head().state_root
  };
  AccountResponse fetch_account(const Address& addr) const;

  struct StorageResponse {
    u256 value;
    trie::MerkleProof proof;  ///< against the account's storage root
  };
  StorageResponse fetch_storage(const Address& addr, const u256& key) const;

  /// Code is authenticated by the code hash inside the (proven) account.
  Bytes fetch_code(const Address& addr) const;

  /// Dishonest mode: the Node serves silently corrupted data. Used to show
  /// that sync rejects it (A6).
  void set_dishonest(bool dishonest) { dishonest_ = dishonest; }

 private:
  state::WorldState world_;
  std::vector<BlockHeader> chain_;
  std::vector<TxReceipt> last_receipts_;
  evm::BlockContext context_;
  bool dishonest_ = false;
};

}  // namespace hardtape::node
