// Ethereum full-node simulator (the "Node" party of paper Section III-A).
//
// The Node holds the authoritative world state, produces blocks, and serves
// world-state queries with Merkle proofs. It is run BY the service provider
// and therefore untrusted: HarDTAPE only accepts its data when the proofs
// verify against a block hash the user trusts (threat A6). A dishonest mode
// lets tests exercise exactly that attack.
//
// Live-chain model (PR 4): a real node keeps producing blocks — and
// occasionally reorgs — while pre-execution bundles sit in the queue, so a
// result computed "against the chain" is only meaningful relative to a
// specific block. This simulator therefore:
//  - retains an immutable world-state snapshot for every block it has ever
//    produced (canonical or orphaned), so every query API is answerable at a
//    pinned state root, not just at head();
//  - advances on a seeded, deterministic schedule (tick()): each tick either
//    extends the chain or reorgs it by replacing the last `depth` blocks
//    with a sibling fork of depth+1 whose state diverges (seeded shuffle of
//    the tick's transactions, off-cadence timestamp);
//  - tracks which state roots are canonical, so the trusted side can detect
//    that a root it pinned has been orphaned.
//
// Thread safety: chain mutation (produce_block/tick) and the query/pinning
// APIs are mutually safe — mutation takes the writer lock, queries the
// reader lock, and returned snapshots are immutable shared_ptrs with their
// tries pre-built (concurrent reads never touch lazy rebuild paths). The
// mutable world() reference is for single-threaded test/bench setup only,
// before the first block is produced.
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>

#include "common/errors.hpp"
#include "common/random.hpp"
#include "evm/interpreter.hpp"
#include "state/world_state.hpp"
#include "trie/mpt.hpp"

namespace hardtape::node {

struct BlockHeader {
  uint64_t number = 0;
  H256 parent_hash{};
  H256 state_root{};
  H256 tx_root{};
  uint64_t timestamp = 0;
  uint64_t gas_used = 0;

  /// Block hash: keccak of the RLP-coded header.
  H256 hash() const;
  Bytes rlp_encode() const;
};

struct TxReceipt {
  evm::VmStatus status;
  uint64_t gas_used;
};

/// Deterministic live-chain schedule: each tick() draws from a seeded RNG
/// whether to extend the chain or reorg it. Every decision (and every fork's
/// divergent transaction order) depends only on the seed and the tick
/// sequence, so a chaos run replays bit-identically.
struct ChainSchedule {
  uint64_t seed = 1;
  /// Probability that a tick reorgs instead of extending (0 = never).
  double reorg_rate = 0.0;
  /// Reorg depths are drawn uniform in [1, max_reorg_depth] (clamped to the
  /// blocks actually available above genesis).
  int max_reorg_depth = 2;
};

/// A block pinned together with the immutable world snapshot it committed.
struct PinnedBlock {
  BlockHeader header;
  std::shared_ptr<const state::WorldState> world;
};

class NodeSimulator {
 public:
  /// `node_store` (optional, not owned, must outlive the simulator) routes
  /// the world's trie nodes through an external NodeStore — e.g. a
  /// trie::PagedNodeStore, so a 10-100x-state bench holds the node's world
  /// under the buffer-pool RAM cap instead of fully resident. Snapshots
  /// share the store (content-addressed, immutable nodes make that sound).
  explicit NodeSimulator(evm::BlockContext genesis_context = {},
                         trie::NodeStore* node_store = nullptr);

  /// Mutable world access for test/bench setup ONLY: call before the first
  /// produce_block()/tick(), never concurrently with chain advancement.
  state::WorldState& world() { return world_; }
  const state::WorldState& world() const { return world_; }

  /// Executes `txs` against the world state and appends a block.
  /// Invalid transactions are included with their failure receipts (as a
  /// real chain records reverted transactions).
  BlockHeader produce_block(const std::vector<evm::Transaction>& txs);

  // --- live-chain schedule ---
  void set_schedule(ChainSchedule schedule);
  struct TickResult {
    bool reorged = false;
    int depth = 0;       ///< canonical blocks orphaned by this tick
    BlockHeader head;    ///< the new head after the tick
  };
  /// One scheduled chain step: extends by one block, or (with probability
  /// reorg_rate) orphans the last `depth` blocks and installs a sibling
  /// fork of depth+1 divergent blocks — so head number always advances by
  /// one. Requires set_schedule() first.
  TickResult tick(const std::vector<evm::Transaction>& txs);

  BlockHeader head() const;
  uint64_t head_number() const;
  /// The canonical header chain (a copy — safe against concurrent ticks).
  std::vector<BlockHeader> chain() const;
  std::vector<TxReceipt> last_receipts() const;
  evm::BlockContext block_context() const;
  /// The execution context a given (possibly historical) block ran under.
  evm::BlockContext block_context_at(const BlockHeader& header) const;

  // --- pinning API (PR 4) ---
  /// Head header + the immutable snapshot of its committed world state.
  /// Non-const: it re-pins genesis when setup mutated world() (see above).
  PinnedBlock pinned_head();
  /// The snapshot committed by the block with this state root — canonical or
  /// orphaned — or nullptr if no such block was ever produced.
  std::shared_ptr<const state::WorldState> world_at(const H256& state_root) const;
  /// True while at least one canonical block commits this state root.
  bool is_canonical_root(const H256& state_root) const;
  uint64_t orphaned_blocks() const;
  uint64_t reorgs() const;

  // --- query API used during HarDTAPE block synchronization ---
  struct AccountResponse {
    Bytes account_rlp;        ///< empty when absent
    trie::MerkleProof proof;  ///< against the queried block's state_root
  };
  /// Head-pinned and root-pinned variants. A root-pinned query against a
  /// root the node never committed returns an empty response whose (empty)
  /// proof the caller's verification then rejects — fail closed.
  AccountResponse fetch_account(const Address& addr) const;
  AccountResponse fetch_account(const Address& addr, const H256& state_root) const;

  struct StorageResponse {
    u256 value;
    trie::MerkleProof proof;  ///< against the account's storage root
  };
  StorageResponse fetch_storage(const Address& addr, const u256& key) const;
  StorageResponse fetch_storage(const Address& addr, const u256& key,
                                const H256& state_root) const;

  /// Code is authenticated by the code hash inside the (proven) account.
  Bytes fetch_code(const Address& addr) const;
  Bytes fetch_code(const Address& addr, const H256& state_root) const;

  /// Dishonest mode: the Node serves silently corrupted data. Used to show
  /// that sync rejects it (A6).
  void set_dishonest(bool dishonest) { dishonest_ = dishonest; }

 private:
  /// Executes txs, commits, appends the header and snapshots the new state.
  /// `timestamp_gap` lets a fork block diverge from the block it replaces
  /// even when the transaction effects happen to coincide.
  BlockHeader produce_locked(const std::vector<evm::Transaction>& txs,
                             uint64_t timestamp_gap);
  void reorg_locked(int depth, const std::vector<evm::Transaction>& txs);
  /// Re-snapshots genesis if the world was mutated by test setup after
  /// construction (only possible while no block has been produced).
  void refresh_genesis_locked();
  void snapshot_head_locked();
  const state::WorldState* world_for_root_locked(const H256& state_root) const;

  mutable std::shared_mutex mu_;
  state::WorldState world_;
  std::vector<BlockHeader> chain_;  ///< canonical headers, genesis first
  /// Immutable snapshot of the world committed by each state root ever
  /// produced (canonical and orphaned blocks alike — pinned queries stay
  /// answerable across reorgs).
  std::unordered_map<H256, std::shared_ptr<const state::WorldState>, H256Hasher>
      snapshots_;
  /// state root -> number of canonical blocks committing it (empty blocks
  /// repeat their parent's root, hence a count instead of a set).
  std::unordered_map<H256, uint64_t, H256Hasher> canonical_roots_;
  std::vector<TxReceipt> last_receipts_;
  evm::BlockContext context_;
  bool dishonest_ = false;
  ChainSchedule schedule_;
  std::unique_ptr<Random> schedule_rng_;
  uint64_t orphaned_blocks_ = 0;
  uint64_t reorgs_ = 0;
};

}  // namespace hardtape::node
