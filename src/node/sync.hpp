// Block synchronization into the ORAM (paper Fig. 3 step 11 + §IV-C Remark).
//
// The Node is under the SP's control, so every datum fetched at sync time is
// verified: accounts against the trusted block's state root, storage slots
// against the (proven) account's storage root, and code against the
// (proven) code hash. Once a page is inside the ORAM, AES-GCM protects its
// integrity, so no Merkle proofs are ever fetched during pre-execution —
// which is also what keeps pre-execution queries oblivious.
//
// Live-chain additions (PR 4):
//  - every fetch is PINNED to the trusted state root, not to the node's
//    head: the chain may advance (or reorg) mid-sync, and a proof fetched
//    against a newer head would not verify against the root the user
//    trusts;
//  - sync_delta() re-verifies and re-installs only the accounts/slots that
//    changed between two states — the steady-state path once the initial
//    full sync is done — and is atomic: every datum of the delta is
//    verified BEFORE the first page is installed, so a proof failure
//    anywhere leaves the ORAM exactly as it was (fail closed; a partial
//    install would mix two states and silently corrupt every pinned
//    session);
//  - installed pages are version-tagged with a state-root epoch through an
//    optional oram::EpochRegistry (see oram/epoch.hpp).
// sync_account() keeps the same verify-all-then-install order per account.
#pragma once

#include <functional>

#include "node/node.hpp"
#include "oram/epoch.hpp"
#include "oram/paged_state.hpp"

namespace hardtape::node {

class BlockSynchronizer {
 public:
  /// `trusted_state_root` is the root the user's trusted block hash commits
  /// to (in production, cross-checked with multiple nodes; here supplied by
  /// the caller).
  BlockSynchronizer(const NodeSimulator& node, const H256& trusted_state_root)
      : node_(node), state_root_(trusted_state_root) {}

  /// Verifies and installs one account: meta page, all its storage groups
  /// (from `keys`), and its code pages. Returns kBadProof on any failure —
  /// in which case nothing from this account is installed.
  Status sync_account(const Address& addr, const std::vector<u256>& keys,
                      oram::OramAccessor& client);

  /// Full sync: every account and every storage key the pinned state
  /// reports. (A real deployment walks the state trie; the simulator
  /// enumerates.)
  Status sync_all(oram::OramAccessor& client);

  /// Incremental sync from `old_world` (the previously installed snapshot)
  /// to the trusted root: re-verifies only changed accounts, re-proves only
  /// changed slots, and installs all-or-nothing (see file comment). Returns
  /// kNotFound when the node has no snapshot for the trusted root.
  struct DeltaReport {
    uint64_t accounts_changed = 0;
    uint64_t slots_reverified = 0;
    uint64_t pages_installed = 0;
  };
  Status sync_delta(const state::WorldState& old_world, oram::OramAccessor& client,
                    DeltaReport* report = nullptr);

  uint64_t verified_accounts() const { return verified_accounts_; }
  uint64_t verified_slots() const { return verified_slots_; }
  uint64_t installed_pages() const { return installed_pages_; }

  /// When set, every installed page is tagged with the registry's open
  /// epoch. The caller owns the begin/commit/abort bracket.
  void set_epoch_registry(oram::EpochRegistry* registry) { registry_ = registry; }

  /// Fault-injection hooks (the node feed is SP-controlled): when a hook
  /// returns true for an account (or an account's storage slot), a byte of
  /// the fetched Merkle proof is flipped before verification — a stale or
  /// tampered node response — which the real proof check then rejects with
  /// kBadProof. Nothing from the affected account (for sync_account) or the
  /// whole delta (for sync_delta) is installed: fail closed.
  void set_proof_tamper(std::function<bool(const Address&)> hook) {
    proof_tamper_ = std::move(hook);
  }
  void set_storage_proof_tamper(std::function<bool(const Address&, const u256&)> hook) {
    storage_proof_tamper_ = std::move(hook);
  }

 private:
  struct PendingPage {
    oram::BlockId id;
    Bytes data;
  };
  /// One account's verify work: which slots to (re-)prove and which of the
  /// resulting pages to stage for installation.
  struct AccountTask {
    Address addr;
    std::vector<u256> verify_keys;      ///< slots to prove against the root
    std::vector<u256> install_groups;   ///< group indices to stage (sorted)
    bool install_meta = true;
    bool install_code = true;
  };
  /// Verifies the task against state_root_ and stages pages into `out`.
  /// Installs NOTHING; any failure leaves `out` meaningless.
  Status verify_account_task(const AccountTask& task, std::vector<PendingPage>& out);
  /// Writes staged pages through the fault-aware accessor path; stops at
  /// the first non-kOk write (dead or tampered backend) and returns it.
  Status install(const std::vector<PendingPage>& pages, oram::OramAccessor& client);

  const NodeSimulator& node_;
  H256 state_root_;
  oram::EpochRegistry* registry_ = nullptr;
  std::function<bool(const Address&)> proof_tamper_;
  std::function<bool(const Address&, const u256&)> storage_proof_tamper_;
  uint64_t verified_accounts_ = 0;
  uint64_t verified_slots_ = 0;
  uint64_t installed_pages_ = 0;
};

}  // namespace hardtape::node
