// Block synchronization into the ORAM (paper Fig. 3 step 11 + §IV-C Remark).
//
// The Node is under the SP's control, so every datum fetched at sync time is
// verified: accounts against the trusted block's state root, storage slots
// against the (proven) account's storage root, and code against the
// (proven) code hash. Once a page is inside the ORAM, AES-GCM protects its
// integrity, so no Merkle proofs are ever fetched during pre-execution —
// which is also what keeps pre-execution queries oblivious.
#pragma once

#include <functional>

#include "node/node.hpp"
#include "oram/paged_state.hpp"

namespace hardtape::node {

class BlockSynchronizer {
 public:
  /// `trusted_state_root` is the root the user's trusted block hash commits
  /// to (in production, cross-checked with multiple nodes; here supplied by
  /// the caller).
  BlockSynchronizer(const NodeSimulator& node, const H256& trusted_state_root)
      : node_(node), state_root_(trusted_state_root) {}

  /// Verifies and installs one account: meta page, all its storage groups
  /// (from `keys`), and its code pages. Returns kBadProof on any failure —
  /// in which case nothing from this account is installed.
  Status sync_account(const Address& addr, const std::vector<u256>& keys,
                      oram::OramClient& client);

  /// Full sync: every account and every storage key the node reports.
  /// (A real deployment walks the state trie; the simulator enumerates.)
  Status sync_all(oram::OramClient& client);

  uint64_t verified_accounts() const { return verified_accounts_; }
  uint64_t verified_slots() const { return verified_slots_; }
  uint64_t installed_pages() const { return installed_pages_; }

  /// Fault-injection hook (the node feed is SP-controlled): when the hook
  /// returns true for an account, a byte of its fetched Merkle proof is
  /// flipped before verification — a stale/tampered node response — which
  /// the real proof check then rejects with kBadProof. Nothing from the
  /// affected account is installed (fail closed).
  void set_proof_tamper(std::function<bool(const Address&)> hook) {
    proof_tamper_ = std::move(hook);
  }

 private:
  const NodeSimulator& node_;
  H256 state_root_;
  std::function<bool(const Address&)> proof_tamper_;
  uint64_t verified_accounts_ = 0;
  uint64_t verified_slots_ = 0;
  uint64_t installed_pages_ = 0;
};

}  // namespace hardtape::node
