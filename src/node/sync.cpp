#include "node/sync.hpp"

#include "crypto/keccak.hpp"
#include "trie/rlp.hpp"

namespace hardtape::node {

Status BlockSynchronizer::sync_account(const Address& addr,
                                       const std::vector<u256>& keys,
                                       oram::OramClient& client) {
  using trie::MerklePatriciaTrie;

  // 1. Fetch and verify the account against the trusted state root.
  auto account_response = node_.fetch_account(addr);
  if (proof_tamper_ && proof_tamper_(addr)) {
    // Injected stale/tampered node response: corrupt one proof byte and let
    // the genuine Merkle verification below reject it.
    for (Bytes& node : account_response.proof) {
      if (!node.empty()) {
        node[0] ^= 0x01;
        break;
      }
    }
  }
  const H256 account_key = crypto::keccak256(addr.view());
  const auto account_check = MerklePatriciaTrie::verify_proof(
      state_root_, account_key.view(), account_response.proof);
  if (!account_check.valid) return Status::kBadProof;

  state::Account account;
  if (account_check.value.has_value()) {
    // The proof pins the account RLP exactly: reject a response that
    // disagrees with its own proof.
    if (*account_check.value != account_response.account_rlp) return Status::kBadProof;
    account = state::Account::rlp_decode(*account_check.value);
  } else {
    // Proven absent: a non-empty claimed account is a lie.
    if (!account_response.account_rlp.empty()) return Status::kBadProof;
  }
  ++verified_accounts_;

  // 2. Fetch and verify the code against the proven code hash.
  const Bytes code = node_.fetch_code(addr);
  if (crypto::keccak256(code) != account.code_hash) return Status::kBadProof;

  // 3. Fetch and verify each storage record against the storage root.
  struct VerifiedSlot {
    u256 key;
    u256 value;
  };
  std::vector<VerifiedSlot> slots;
  for (const u256& key : keys) {
    const auto storage_response = node_.fetch_storage(addr, key);
    const H256 slot_key = crypto::keccak256(key.to_be_bytes_vec());
    const auto check = MerklePatriciaTrie::verify_proof(
        account.storage_root, slot_key.view(), storage_response.proof);
    if (!check.valid) return Status::kBadProof;
    u256 proven_value{};
    if (check.value.has_value()) {
      const trie::RlpItem item = trie::rlp_decode(*check.value);
      proven_value = u256::from_be_bytes(item.bytes());
    }
    if (proven_value != storage_response.value) return Status::kBadProof;
    slots.push_back({key, proven_value});
    ++verified_slots_;
  }

  // 4. Everything verified: build and install pages.
  oram::AccountMetaPage meta;
  meta.balance = account.balance;
  meta.nonce = account.nonce;
  meta.code_size = code.size();
  meta.code_hash = account.code_hash;
  client.write(oram::page_id(oram::PageType::kAccountMeta, addr, u256{}),
               meta.serialize());
  ++installed_pages_;

  // Storage groups (keys grouped by key/32; absent records stay zero).
  std::unordered_map<u256, oram::StorageGroupPage, U256Hasher> groups;
  for (const VerifiedSlot& slot : slots) {
    groups[slot.key >> 5].values[slot.key.as_u64() & 31] = slot.value;
  }
  for (const auto& [group_index, page] : groups) {
    client.write(oram::page_id(oram::PageType::kStorageGroup, addr, group_index),
                 page.serialize());
    ++installed_pages_;
  }

  for (size_t off = 0; off < code.size(); off += oram::kPageSize) {
    const size_t n = std::min(oram::kPageSize, code.size() - off);
    Bytes page(code.begin() + static_cast<long>(off),
               code.begin() + static_cast<long>(off + n));
    page.resize(oram::kPageSize, 0);
    client.write(oram::page_id(oram::PageType::kCode, addr, u256{off / oram::kPageSize}),
                 page);
    ++installed_pages_;
  }
  return Status::kOk;
}

Status BlockSynchronizer::sync_all(oram::OramClient& client) {
  for (const Address& addr : node_.world().all_accounts()) {
    const Status status = sync_account(addr, node_.world().storage_keys(addr), client);
    if (status != Status::kOk) return status;
  }
  return Status::kOk;
}

}  // namespace hardtape::node
