#include "node/sync.hpp"

#include <algorithm>
#include <unordered_set>

#include "crypto/keccak.hpp"
#include "trie/rlp.hpp"

namespace hardtape::node {

namespace {
void tamper_proof(trie::MerkleProof& proof) {
  // Corrupt one proof byte and let the genuine Merkle verification reject it.
  for (Bytes& node : proof) {
    if (!node.empty()) {
      node[0] ^= 0x01;
      break;
    }
  }
}
}  // namespace

Status BlockSynchronizer::verify_account_task(const AccountTask& task,
                                              std::vector<PendingPage>& out) {
  using trie::MerklePatriciaTrie;
  const Address& addr = task.addr;

  // 1. Fetch and verify the account against the trusted state root. Always
  // pinned: the node's head may have moved (or reorged) since the root was
  // trusted, and a head-pinned proof would not verify against it.
  auto account_response = node_.fetch_account(addr, state_root_);
  if (proof_tamper_ && proof_tamper_(addr)) {
    // Injected stale/tampered node response.
    tamper_proof(account_response.proof);
  }
  const H256 account_key = crypto::keccak256(addr.view());
  const auto account_check = MerklePatriciaTrie::verify_proof(
      state_root_, account_key.view(), account_response.proof);
  if (!account_check.valid) return Status::kBadProof;

  state::Account account;
  if (account_check.value.has_value()) {
    // The proof pins the account RLP exactly: reject a response that
    // disagrees with its own proof.
    if (*account_check.value != account_response.account_rlp) return Status::kBadProof;
    account = state::Account::rlp_decode(*account_check.value);
  } else {
    // Proven absent: a non-empty claimed account is a lie.
    if (!account_response.account_rlp.empty()) return Status::kBadProof;
  }
  ++verified_accounts_;

  // 2. Fetch and verify the code against the proven code hash. (An absent
  // account's default code hash is keccak(""), so the node's empty answer
  // verifies too.)
  const Bytes code = node_.fetch_code(addr, state_root_);
  if (crypto::keccak256(code) != account.code_hash) return Status::kBadProof;

  // 3. Fetch and verify each storage record against the storage root.
  struct VerifiedSlot {
    u256 key;
    u256 value;
  };
  std::vector<VerifiedSlot> slots;
  for (const u256& key : task.verify_keys) {
    auto storage_response = node_.fetch_storage(addr, key, state_root_);
    if (storage_proof_tamper_ && storage_proof_tamper_(addr, key)) {
      tamper_proof(storage_response.proof);
    }
    const H256 slot_key = crypto::keccak256(key.to_be_bytes_vec());
    const auto check = MerklePatriciaTrie::verify_proof(
        account.storage_root, slot_key.view(), storage_response.proof);
    if (!check.valid) return Status::kBadProof;
    u256 proven_value{};
    if (check.value.has_value()) {
      const trie::RlpItem item = trie::rlp_decode(*check.value);
      proven_value = u256::from_be_bytes(item.bytes());
    }
    if (proven_value != storage_response.value) return Status::kBadProof;
    slots.push_back({key, proven_value});
    ++verified_slots_;
  }

  // 4. Everything verified: STAGE pages (the caller installs — possibly
  // only after every other account of a delta verified too).
  if (task.install_meta) {
    oram::AccountMetaPage meta;
    meta.balance = account.balance;
    meta.nonce = account.nonce;
    meta.code_size = code.size();
    meta.code_hash = account.code_hash;
    out.push_back({oram::page_id(oram::PageType::kAccountMeta, addr, u256{}),
                   meta.serialize()});
  }

  // Storage groups (keys grouped by key/32; absent records stay zero). Only
  // groups in install_groups are staged — for a delta, the verify_keys of a
  // changed group cover every live slot of that group plus the slots that
  // went to zero, so the staged page is complete for the new state.
  std::unordered_map<u256, oram::StorageGroupPage, U256Hasher> groups;
  for (const VerifiedSlot& slot : slots) {
    groups[slot.key >> 5].values[slot.key.as_u64() & 31] = slot.value;
  }
  for (const u256& group_index : task.install_groups) {
    const auto it = groups.find(group_index);
    const oram::StorageGroupPage page =
        it == groups.end() ? oram::StorageGroupPage{} : it->second;
    out.push_back({oram::page_id(oram::PageType::kStorageGroup, addr, group_index),
                   page.serialize()});
  }

  if (task.install_code) {
    for (size_t off = 0; off < code.size(); off += oram::kPageSize) {
      const size_t n = std::min(oram::kPageSize, code.size() - off);
      Bytes page(code.begin() + static_cast<long>(off),
                 code.begin() + static_cast<long>(off + n));
      page.resize(oram::kPageSize, 0);
      out.push_back(
          {oram::page_id(oram::PageType::kCode, addr, u256{off / oram::kPageSize}),
           page});
    }
  }
  return Status::kOk;
}

Status BlockSynchronizer::install(const std::vector<PendingPage>& pages,
                                  oram::OramAccessor& client) {
  for (const PendingPage& page : pages) {
    // The slot store is SP-controlled and can fail closed mid-install (a
    // dead backing device, a tampered bucket). Surface that as a status the
    // caller handles — it aborts the open epoch, so none of this install's
    // page tags survive — instead of letting the backend's exception cross
    // the sync path.
    const oram::AccessAttempt attempt = client.try_write(page.id, page.data);
    if (attempt.status != Status::kOk) return attempt.status;
    if (registry_) registry_->tag(page.id);
    ++installed_pages_;
  }
  return Status::kOk;
}

Status BlockSynchronizer::sync_account(const Address& addr,
                                       const std::vector<u256>& keys,
                                       oram::OramAccessor& client) {
  AccountTask task;
  task.addr = addr;
  task.verify_keys = keys;
  std::unordered_set<u256, U256Hasher> seen;
  for (const u256& key : keys) {
    if (seen.insert(key >> 5).second) task.install_groups.push_back(key >> 5);
  }
  std::sort(task.install_groups.begin(), task.install_groups.end());

  std::vector<PendingPage> pending;
  const Status status = verify_account_task(task, pending);
  if (status != Status::kOk) return status;  // nothing installed: fail closed
  return install(pending, client);
}

Status BlockSynchronizer::sync_all(oram::OramAccessor& client) {
  // Enumerate from the snapshot pinned by the trusted root when the node has
  // one (the live-chain path); fall back to the node's current world for the
  // pre-first-block setup flow.
  const auto pinned = node_.world_at(state_root_);
  const state::WorldState& world = pinned ? *pinned : node_.world();
  for (const Address& addr : world.all_accounts()) {
    const Status status = sync_account(addr, world.storage_keys(addr), client);
    if (status != Status::kOk) return status;
  }
  return Status::kOk;
}

Status BlockSynchronizer::sync_delta(const state::WorldState& old_world,
                                     oram::OramAccessor& client, DeltaReport* report) {
  const auto pinned = node_.world_at(state_root_);
  if (!pinned) return Status::kNotFound;
  const state::WorldState& new_world = *pinned;

  const state::StateDelta delta = state::diff_worlds(old_world, new_world);

  // Phase 1: verify every changed account and stage its pages. A group page
  // holds 32 slots, so re-installing a changed group requires proving every
  // live slot of that group in the new state — plus the changed slots
  // themselves, so a slot that went to zero is proven absent (and the stale
  // value in the old page gets overwritten with the proven zero).
  std::vector<PendingPage> pending;
  uint64_t slots_reverified = 0;
  for (const auto& account_delta : delta.accounts) {
    AccountTask task;
    task.addr = account_delta.addr;
    task.install_meta = account_delta.meta_changed || account_delta.code_changed;
    task.install_code = account_delta.code_changed;

    std::unordered_set<u256, U256Hasher> changed_groups;
    for (const u256& key : account_delta.changed_keys) changed_groups.insert(key >> 5);
    task.verify_keys = account_delta.changed_keys;
    for (const u256& key : new_world.storage_keys(account_delta.addr)) {
      if (changed_groups.count(key >> 5)) task.verify_keys.push_back(key);
    }
    std::sort(task.verify_keys.begin(), task.verify_keys.end());
    task.verify_keys.erase(
        std::unique(task.verify_keys.begin(), task.verify_keys.end()),
        task.verify_keys.end());
    task.install_groups.assign(changed_groups.begin(), changed_groups.end());
    std::sort(task.install_groups.begin(), task.install_groups.end());

    const Status status = verify_account_task(task, pending);
    if (status != Status::kOk) return status;  // NOTHING installed: fail closed
    slots_reverified += task.verify_keys.size();
  }

  // Phase 2: every datum of the delta verified against the trusted root —
  // only now touch the ORAM.
  const Status installed = install(pending, client);
  if (installed != Status::kOk) return installed;

  if (report) {
    report->accounts_changed = delta.accounts.size();
    report->slots_reverified = slots_reverified;
    report->pages_installed = pending.size();
  }
  return Status::kOk;
}

}  // namespace hardtape::node
