// Write-ahead journal for the ORAM store (length-prefixed, checksummed).
//
// Record wire format (little-endian):
//   u32 payload_len | u64 seq | 8-byte checksum | payload
// where checksum = the first 8 bytes of keccak256(seq_le || payload) — the
// repo's one hash, truncated; enough to reject torn tails and garbage holes
// with the same primitive the rest of the chip trusts. `seq` is globally
// monotone across journal generations, so replay can prove wal-g really
// continues where checkpoint g (base_seq) and wal-(g-1) left off.
//
// Payloads are type-tagged:
//   kEpochBegin    u64 epoch | 32B state root | u64 block number
//   kEpochCommit   u64 epoch
//   kEpochAbort    u64 epoch
//   kPageInstall   32B page id | u64 leaf | u32 len | len bytes
//   kPositionUpdate 32B page id | u64 leaf
//   kBundleAdmit   u64 bundle id
//   kBundleResolve u64 bundle id
//
// Replay is FAIL-CLOSED: the first record whose length runs past the file,
// whose checksum rejects, or whose sequence breaks the expected chain
// truncates the journal to the valid prefix before it. A malicious or
// power-lossed tail can lose suffix records (the delta-sync heals that from
// the node) but can never smuggle a corrupted record into recovered state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "durability/vfs.hpp"

namespace hardtape::durability {

/// Hard ceiling on one record's payload. The largest legitimate record is a
/// kPageInstall carrying one ORAM page (tens of KiB at the biggest block
/// size); 1 MiB is comfortably past that while keeping replay's allocation
/// bounded. A length field above it is treated as corruption BEFORE the
/// torn-payload check — otherwise a single flipped high bit in `len` makes
/// replay try to frame a multi-gigabyte record out of a kilobyte file.
constexpr size_t kMaxRecordSize = 1u << 20;

enum class RecordType : uint8_t {
  kEpochBegin = 1,
  kEpochCommit = 2,
  kEpochAbort = 3,
  kPageInstall = 4,
  kPositionUpdate = 5,
  kBundleAdmit = 6,
  kBundleResolve = 7,
};
const char* to_string(RecordType type);

/// A decoded journal record, as replay hands it to the consumer.
struct JournalRecord {
  uint64_t seq = 0;
  RecordType type = RecordType::kEpochBegin;
  // Fields are populated per type; unused ones stay zero.
  uint64_t epoch = 0;
  H256 root{};
  uint64_t block_number = 0;
  u256 page_id{};
  uint64_t leaf = 0;
  Bytes page_data;
  uint64_t bundle_id = 0;
};

/// Appender. One Journal instance owns one generation file; records carry a
/// caller-provided monotone sequence so a successor generation continues the
/// chain. Appends are buffered by the SimFs until sync().
class Journal {
 public:
  Journal(SimFs& fs, std::string path, uint64_t start_seq)
      : fs_(fs), path_(std::move(path)), next_seq_(start_seq) {}

  void append_epoch_begin(uint64_t epoch, const H256& root, uint64_t block_number);
  void append_epoch_commit(uint64_t epoch);
  void append_epoch_abort(uint64_t epoch);
  void append_page_install(const u256& page_id, BytesView data, uint64_t leaf);
  void append_position_update(const u256& page_id, uint64_t leaf);
  void append_bundle_admit(uint64_t bundle_id);
  void append_bundle_resolve(uint64_t bundle_id);

  /// Durability barrier: everything appended so far survives a crash.
  void sync() { fs_.fsync(path_); }

  uint64_t next_seq() const { return next_seq_; }
  uint64_t records_written() const { return records_written_; }
  const std::string& path() const { return path_; }

  /// Builds one encoded record (exposed for tests to craft corrupt tails).
  /// Throws UsageError when `payload` exceeds kMaxRecordSize — an oversize
  /// record would be unreadable by replay, so refusing to write it is the
  /// only honest behavior.
  static Bytes encode(uint64_t seq, BytesView payload);

  struct ReplayResult {
    uint64_t records = 0;        ///< valid records delivered
    uint64_t valid_bytes = 0;    ///< length of the accepted prefix
    uint64_t truncated_bytes = 0;///< bytes discarded after it
    uint64_t next_seq = 0;       ///< sequence the next record must carry
    std::string stop_reason;     ///< empty = clean end of file
  };
  /// Replays `path`, delivering each valid record in order. `expected_seq`
  /// anchors the sequence chain (the checkpoint's base_seq, or the previous
  /// generation's next_seq). Missing file = zero records, clean. The consumer
  /// returns false to REJECT a record that is wire-valid but semantically
  /// impossible (install outside an epoch, commit of a mismatched epoch):
  /// replay then truncates there, same fail-closed discipline as a bad
  /// checksum — a record the state machine cannot apply is corruption.
  static ReplayResult replay(const SimFs& fs, const std::string& path,
                             uint64_t expected_seq,
                             const std::function<bool(const JournalRecord&)>& on_record);

 private:
  void append_record(BytesView payload);

  SimFs& fs_;
  std::string path_;
  uint64_t next_seq_;
  uint64_t records_written_ = 0;
};

}  // namespace hardtape::durability
