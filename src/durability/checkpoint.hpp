// Checkpoint snapshots of the durable ORAM store image.
//
// A checkpoint bounds recovery time: instead of replaying the journal from
// genesis, recovery loads the newest VALID checkpoint and replays only the
// journal generations written after it. The write protocol is the classic
// atomic-publish sequence over the SimFs crash model:
//
//   serialize -> append ckpt-<g>.tmp -> fsync(tmp) -> rename(tmp, ckpt-<g>)
//   -> sync_dir()
//
// A crash anywhere in that sequence leaves either the previous checkpoint
// generation intact (rename/dir-sync not yet durable) or the new one fully
// durable — never a half-written file under the published name. The
// previous generation's files are removed only AFTER the new publication is
// dir-synced, so at every instant at least one complete (checkpoint,
// journal-chain) pair exists on disk.
//
// The image itself carries a trailing truncated-keccak checksum; a
// checkpoint that fails it (possible when its own tmp-write crashed AND the
// rename leaked through a reordered metadata journal) is skipped and
// recovery falls back to the previous generation — fail closed, same
// discipline as the journal.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "durability/vfs.hpp"
#include "oram/epoch.hpp"
#include "pagedstore/store.hpp"

namespace hardtape::durability {

struct PageImage {
  Bytes data;        ///< block-size-padded page contents
  uint64_t leaf = 0; ///< last journaled ORAM leaf (audit trail; reinstall
                     ///< draws fresh leaves — obliviousness never depends
                     ///< on restoring old positions)
};

/// The full durable image of the store: everything recovery needs to rebuild
/// the chip-side registry and reinstall the ORAM without re-verifying the
/// world from the node. Ordered containers throughout so serialization (and
/// hence the checksum) is a pure function of the logical content.
struct StoreImage {
  uint64_t base_seq = 0;  ///< next journal sequence at snapshot time
  std::vector<oram::EpochRegistry::Pin> epoch_history;  ///< committed only
  std::map<u256, uint64_t> page_tags;
  std::map<u256, PageImage> pages;
  std::map<u256, uint64_t> positions;
  std::set<uint64_t> pending_bundles;  ///< admitted, not yet resolved
  uint64_t next_bundle_id = 0;
};

namespace checkpoint {

std::string checkpoint_path(uint64_t generation);
std::string journal_path(uint64_t generation);

Bytes serialize(uint64_t generation, const StoreImage& image);
/// nullopt on any structural or checksum violation — never a partial image.
std::optional<StoreImage> parse(BytesView data);

/// Publishes `image` as generation `generation` with the atomic-rename
/// sequence above, then garbage-collects generation-2 files. Returns the
/// checkpoint's serialized size (the full-image write cost).
size_t write(SimFs& fs, uint64_t generation, const StoreImage& image);

// --- v2: incremental (CoW) checkpoint manifests (DESIGN.md §16) ---
//
// A v2 checkpoint does not re-serialize page payloads: they already live in
// a pagedstore::PagedStore's segment files (appended when dirty pages were
// flushed or evicted). The checkpoint file is a MANIFEST — the image's
// metadata plus one locator per page — so publishing costs O(dirty pages +
// metadata), not O(state). load_newest resolves the locators fail-closed
// (page checksum + id re-verified); a manifest pointing at a torn or
// missing segment record invalidates that generation and recovery falls
// back, exactly like a corrupt v1 image.

/// Where one page's payload lives at snapshot time.
struct PageManifestEntry {
  u256 id;
  uint64_t leaf = 0;
  pagedstore::PageLocator locator;
};

struct Manifest {
  StoreImage meta;  ///< `pages` values carry leaves only; payload data empty
  std::string store_name;  ///< the PagedStore's segment-file prefix
  std::vector<PageManifestEntry> pages;  ///< id-ordered
};

Bytes serialize_manifest(uint64_t generation, const Manifest& manifest);
/// nullopt on any structural/checksum violation or a non-v2 version.
std::optional<Manifest> parse_manifest(BytesView data);
/// Publishes a v2 manifest with the same atomic-rename sequence and
/// generation GC as write(). Segment GC is the caller's job (the segments a
/// retired manifest referenced may still back the surviving one). Returns
/// the manifest's serialized size.
size_t write_manifest(SimFs& fs, uint64_t generation, const Manifest& manifest);

/// Loads the newest generation whose checkpoint file parses and verifies.
/// v2 manifests are resolved against their segment files; any unresolvable
/// page fails the whole generation (fall back, never a partial image).
std::optional<std::pair<uint64_t, StoreImage>> load_newest(const SimFs& fs);

}  // namespace checkpoint

}  // namespace hardtape::durability
