#include "durability/vfs.hpp"

#include <algorithm>
#include <set>

#include "common/random.hpp"

namespace hardtape::durability {

const char* to_string(FsOp op) {
  switch (op) {
    case FsOp::kAppend: return "append";
    case FsOp::kFsync: return "fsync";
    case FsOp::kRename: return "rename";
    case FsOp::kRemove: return "remove";
    case FsOp::kSyncDir: return "sync_dir";
  }
  return "unknown";
}

void SimFs::arm(const CrashConfig& config) {
  std::lock_guard lock(mu_);
  crash_ = config;
  armed_ = config.crash_at_op != 0;
}

bool SimFs::crashed() const {
  std::lock_guard lock(mu_);
  return crashed_;
}

void SimFs::restart() {
  std::lock_guard lock(mu_);
  if (!dead_) return;
  dead_ = false;
  armed_ = false;
  // dir_ was already replaced with the resolved durable state at crash time.
}

bool SimFs::op_event_locked(FsOp op, const std::string& path, uint64_t bytes,
                            bool crash_before) {
  if (dead_) return true;
  ++op_index_;
  op_log_.push_back({op_index_, op, path, bytes});
  if (armed_ && op_index_ == crash_.crash_at_op) {
    if (crash_before) {
      resolve_crash_locked();
      return true;
    }
    // crash-after (append): the caller already buffered the bytes; the
    // resolution decides whether/how much of them survived.
    resolve_crash_locked();
  }
  return false;
}

void SimFs::append(const std::string& path, BytesView data) {
  std::lock_guard lock(mu_);
  if (dead_) return;
  auto it = dir_.find(path);
  if (it == dir_.end()) {
    auto inode = std::make_shared<Inode>();
    it = dir_.emplace(path, inode).first;
    pending_meta_.push_back({FsOp::kAppend, path, "", inode});
  }
  it->second->pending.emplace_back(data.begin(), data.end());
  (void)op_event_locked(FsOp::kAppend, path, data.size(), /*crash_before=*/false);
}

void SimFs::fsync(const std::string& path) {
  std::lock_guard lock(mu_);
  if (op_event_locked(FsOp::kFsync, path, 0, /*crash_before=*/true)) return;
  const auto it = dir_.find(path);
  if (it == dir_.end()) return;
  for (Bytes& chunk : it->second->pending) {
    hardtape::append(it->second->durable, chunk);
  }
  it->second->pending.clear();
}

void SimFs::rename(const std::string& from, const std::string& to) {
  std::lock_guard lock(mu_);
  if (op_event_locked(FsOp::kRename, from + " -> " + to, 0, /*crash_before=*/true)) {
    return;
  }
  const auto it = dir_.find(from);
  if (it == dir_.end()) return;
  InodePtr inode = it->second;
  dir_.erase(it);
  dir_[to] = std::move(inode);
  pending_meta_.push_back({FsOp::kRename, from, to, nullptr});
}

void SimFs::remove(const std::string& path) {
  std::lock_guard lock(mu_);
  if (op_event_locked(FsOp::kRemove, path, 0, /*crash_before=*/true)) return;
  dir_.erase(path);
  pending_meta_.push_back({FsOp::kRemove, path, "", nullptr});
}

void SimFs::sync_dir() {
  std::lock_guard lock(mu_);
  if (op_event_locked(FsOp::kSyncDir, "", 0, /*crash_before=*/true)) return;
  for (const MetaOp& op : pending_meta_) {
    switch (op.op) {
      case FsOp::kAppend:  // create
        durable_dir_[op.name] = op.inode;
        break;
      case FsOp::kRename: {
        const auto it = durable_dir_.find(op.name);
        if (it == durable_dir_.end()) break;
        InodePtr inode = it->second;
        durable_dir_.erase(it);
        durable_dir_[op.to] = std::move(inode);
        break;
      }
      case FsOp::kRemove:
        durable_dir_.erase(op.name);
        break;
      default: break;
    }
  }
  pending_meta_.clear();
}

void SimFs::resolve_crash_locked() {
  crashed_ = true;
  dead_ = true;
  armed_ = false;
  Random rng(crash_.resolve_seed);

  // 1. Resolve each inode's content. Deterministic order: every inode
  // reachable from either directory view, by its smallest name.
  std::set<InodePtr> seen;
  std::vector<InodePtr> inodes;
  for (const auto& dir : {std::cref(durable_dir_), std::cref(dir_)}) {
    for (const auto& [name, inode] : dir.get()) {
      if (seen.insert(inode).second) inodes.push_back(inode);
    }
  }
  for (const InodePtr& inode : inodes) {
    const size_t durable_size = inode->durable.size();
    Bytes content = inode->durable;
    size_t chunk_start = durable_size;
    bool lost_any = false;
    for (const Bytes& chunk : inode->pending) {
      const bool survives = rng.uniform_double() < crash_.unsynced_survival;
      // Torn partial-page write: a lost chunk may still have landed a seeded
      // STRICT prefix (the device committed some sectors before power died).
      size_t keep = 0;
      if (!survives && crash_.partial_page_writes && !chunk.empty()) {
        keep = rng.uniform(chunk.size());  // 0..size-1, never the whole page
      }
      if (survives || keep > 0) {
        if (content.size() < chunk_start) {
          // Out-of-order write-back: the hole left by a lost earlier chunk
          // holds whatever the platter had — seeded garbage, so recovery's
          // checksum walk meets real corruption, not convenient zeros.
          const size_t hole = chunk_start - content.size();
          Bytes garbage = rng.bytes(hole);
          hardtape::append(content, garbage);
        }
        if (survives) {
          hardtape::append(content, chunk);
        } else {
          content.insert(content.end(), chunk.begin(),
                         chunk.begin() + static_cast<ptrdiff_t>(keep));
        }
      }
      if (!survives) {
        lost_any = true;
        if (!crash_.allow_reorder) break;  // ordered write-back: rest is gone
      }
      chunk_start += chunk.size();
    }
    (void)lost_any;
    if (crash_.allow_torn_tail && content.size() > durable_size) {
      // The final write may have been cut mid-sector: keep a seeded prefix
      // of the unsynced region (possibly all of it).
      const size_t unsynced = content.size() - durable_size;
      content.resize(durable_size + rng.uniform(unsynced + 1));
    }
    inode->durable = std::move(content);
    inode->pending.clear();
  }

  // 2. Resolve the directory: start from the last sync_dir state and apply
  // each pending op with its own survival coin.
  std::map<std::string, InodePtr> resolved = durable_dir_;
  for (const MetaOp& op : pending_meta_) {
    const bool survives = rng.uniform_double() < crash_.unsynced_survival;
    if (!survives) {
      if (!crash_.allow_reorder) break;  // journal-ordered metadata
      continue;
    }
    switch (op.op) {
      case FsOp::kAppend:
        resolved[op.name] = op.inode;
        break;
      case FsOp::kRename: {
        const auto it = resolved.find(op.name);
        if (it == resolved.end()) break;  // source never became durable
        InodePtr inode = it->second;
        resolved.erase(it);
        resolved[op.to] = std::move(inode);
        break;
      }
      case FsOp::kRemove:
        resolved.erase(op.name);
        break;
      default: break;
    }
  }
  pending_meta_.clear();
  durable_dir_ = resolved;
  dir_ = std::move(resolved);
}

std::optional<Bytes> SimFs::read(const std::string& path) const {
  std::lock_guard lock(mu_);
  if (dead_) return std::nullopt;
  const auto it = dir_.find(path);
  if (it == dir_.end()) return std::nullopt;
  Bytes out = it->second->durable;
  for (const Bytes& chunk : it->second->pending) hardtape::append(out, chunk);
  return out;
}

std::optional<Bytes> SimFs::read_range(const std::string& path, uint64_t offset,
                                       uint64_t len) const {
  std::lock_guard lock(mu_);
  if (dead_) return std::nullopt;
  const auto it = dir_.find(path);
  if (it == dir_.end()) return std::nullopt;
  const Inode& inode = *it->second;
  Bytes out;
  out.reserve(len);
  const uint64_t end = offset + len;
  uint64_t pos = 0;
  const auto copy_overlap = [&](const Bytes& chunk) {
    const uint64_t chunk_end = pos + chunk.size();
    if (chunk_end > offset && pos < end) {
      const uint64_t from = std::max<uint64_t>(pos, offset) - pos;
      const uint64_t to = std::min<uint64_t>(chunk_end, end) - pos;
      out.insert(out.end(), chunk.begin() + static_cast<ptrdiff_t>(from),
                 chunk.begin() + static_cast<ptrdiff_t>(to));
    }
    pos = chunk_end;
  };
  copy_overlap(inode.durable);
  for (const Bytes& chunk : inode.pending) {
    if (pos >= end) break;
    copy_overlap(chunk);
  }
  if (out.size() != len) return std::nullopt;  // range past end of file
  return out;
}

bool SimFs::exists(const std::string& path) const {
  std::lock_guard lock(mu_);
  return !dead_ && dir_.contains(path);
}

std::vector<std::string> SimFs::list() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  if (dead_) return names;
  names.reserve(dir_.size());
  for (const auto& [name, inode] : dir_) names.push_back(name);
  return names;
}

uint64_t SimFs::op_count() const {
  std::lock_guard lock(mu_);
  return op_index_;
}

std::vector<FsOpRecord> SimFs::op_log() const {
  std::lock_guard lock(mu_);
  return op_log_;
}

uint64_t SimFs::pending_bytes() const {
  std::lock_guard lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, inode] : dir_) {
    for (const Bytes& chunk : inode->pending) total += chunk.size();
  }
  return total;
}

}  // namespace hardtape::durability
