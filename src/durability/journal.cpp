#include "durability/journal.hpp"

#include <cstring>

#include "common/errors.hpp"
#include "crypto/keccak.hpp"

namespace hardtape::durability {

namespace {

constexpr size_t kHeaderSize = 4 + 8 + 8;  // len + seq + checksum
constexpr size_t kChecksumSize = 8;

void put_u32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t get_u32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

std::array<uint8_t, kChecksumSize> record_checksum(uint64_t seq, BytesView payload) {
  Bytes preimage;
  preimage.reserve(8 + payload.size());
  put_u64(preimage, seq);
  append(preimage, payload);
  const H256 digest = crypto::keccak256(preimage);
  std::array<uint8_t, kChecksumSize> out{};
  std::memcpy(out.data(), digest.bytes.data(), kChecksumSize);
  return out;
}

}  // namespace

const char* to_string(RecordType type) {
  switch (type) {
    case RecordType::kEpochBegin: return "epoch_begin";
    case RecordType::kEpochCommit: return "epoch_commit";
    case RecordType::kEpochAbort: return "epoch_abort";
    case RecordType::kPageInstall: return "page_install";
    case RecordType::kPositionUpdate: return "position_update";
    case RecordType::kBundleAdmit: return "bundle_admit";
    case RecordType::kBundleResolve: return "bundle_resolve";
  }
  return "unknown";
}

Bytes Journal::encode(uint64_t seq, BytesView payload) {
  if (payload.size() > kMaxRecordSize) {
    throw UsageError("journal: record payload exceeds kMaxRecordSize");
  }
  Bytes out;
  out.reserve(kHeaderSize + payload.size());
  put_u32(out, static_cast<uint32_t>(payload.size()));
  put_u64(out, seq);
  const auto checksum = record_checksum(seq, payload);
  out.insert(out.end(), checksum.begin(), checksum.end());
  append(out, payload);
  return out;
}

void Journal::append_record(BytesView payload) {
  fs_.append(path_, encode(next_seq_, payload));
  ++next_seq_;
  ++records_written_;
}

void Journal::append_epoch_begin(uint64_t epoch, const H256& root, uint64_t block_number) {
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kEpochBegin));
  put_u64(p, epoch);
  append(p, BytesView{root.bytes.data(), root.bytes.size()});
  put_u64(p, block_number);
  append_record(p);
}

void Journal::append_epoch_commit(uint64_t epoch) {
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kEpochCommit));
  put_u64(p, epoch);
  append_record(p);
}

void Journal::append_epoch_abort(uint64_t epoch) {
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kEpochAbort));
  put_u64(p, epoch);
  append_record(p);
}

void Journal::append_page_install(const u256& page_id, BytesView data, uint64_t leaf) {
  Bytes p;
  p.reserve(1 + 32 + 8 + 4 + data.size());
  p.push_back(static_cast<uint8_t>(RecordType::kPageInstall));
  const auto id_be = page_id.to_be_bytes();
  p.insert(p.end(), id_be.begin(), id_be.end());
  put_u64(p, leaf);
  put_u32(p, static_cast<uint32_t>(data.size()));
  append(p, data);
  append_record(p);
}

void Journal::append_position_update(const u256& page_id, uint64_t leaf) {
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kPositionUpdate));
  const auto id_be = page_id.to_be_bytes();
  p.insert(p.end(), id_be.begin(), id_be.end());
  put_u64(p, leaf);
  append_record(p);
}

void Journal::append_bundle_admit(uint64_t bundle_id) {
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kBundleAdmit));
  put_u64(p, bundle_id);
  append_record(p);
}

void Journal::append_bundle_resolve(uint64_t bundle_id) {
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kBundleResolve));
  put_u64(p, bundle_id);
  append_record(p);
}

Journal::ReplayResult Journal::replay(
    const SimFs& fs, const std::string& path, uint64_t expected_seq,
    const std::function<bool(const JournalRecord&)>& on_record) {
  ReplayResult result;
  result.next_seq = expected_seq;
  const auto file = fs.read(path);
  if (!file.has_value()) return result;  // no journal: clean empty replay
  const Bytes& data = *file;

  size_t off = 0;
  const auto fail = [&](const char* why) {
    result.stop_reason = why;
    result.truncated_bytes = data.size() - result.valid_bytes;
  };
  while (off < data.size()) {
    if (data.size() - off < kHeaderSize) {
      fail("torn header");
      return result;
    }
    const uint32_t len = get_u32(&data[off]);
    const uint64_t seq = get_u64(&data[off + 4]);
    if (len > kMaxRecordSize) {
      // Clamp BEFORE framing: a corrupt length field must not be allowed to
      // swallow the rest of the file (or drive a huge allocation) just
      // because the file happens to be long enough.
      fail("oversize record");
      return result;
    }
    if (data.size() - off - kHeaderSize < len) {
      fail("torn payload");
      return result;
    }
    const BytesView payload{&data[off + kHeaderSize], len};
    const auto expect = record_checksum(seq, payload);
    if (!std::equal(expect.begin(), expect.end(), &data[off + 4 + 8])) {
      fail("checksum mismatch");
      return result;
    }
    if (seq != result.next_seq) {
      fail("sequence break");
      return result;
    }
    if (len < 1) {
      fail("empty payload");
      return result;
    }

    JournalRecord record;
    record.seq = seq;
    record.type = static_cast<RecordType>(payload[0]);
    const uint8_t* body = payload.data() + 1;
    const size_t body_len = len - 1;
    bool ok = true;
    switch (record.type) {
      case RecordType::kEpochBegin:
        ok = body_len == 8 + 32 + 8;
        if (ok) {
          record.epoch = get_u64(body);
          std::memcpy(record.root.bytes.data(), body + 8, 32);
          record.block_number = get_u64(body + 40);
        }
        break;
      case RecordType::kEpochCommit:
      case RecordType::kEpochAbort:
        ok = body_len == 8;
        if (ok) record.epoch = get_u64(body);
        break;
      case RecordType::kPageInstall: {
        ok = body_len >= 32 + 8 + 4;
        if (ok) {
          record.page_id = u256::from_be_bytes(BytesView{body, 32});
          record.leaf = get_u64(body + 32);
          const uint32_t data_len = get_u32(body + 40);
          ok = body_len == 32u + 8 + 4 + data_len;
          if (ok) record.page_data.assign(body + 44, body + 44 + data_len);
        }
        break;
      }
      case RecordType::kPositionUpdate:
        ok = body_len == 32 + 8;
        if (ok) {
          record.page_id = u256::from_be_bytes(BytesView{body, 32});
          record.leaf = get_u64(body + 32);
        }
        break;
      case RecordType::kBundleAdmit:
      case RecordType::kBundleResolve:
        ok = body_len == 8;
        if (ok) record.bundle_id = get_u64(body);
        break;
      default:
        ok = false;
    }
    if (!ok) {
      fail("malformed payload");
      return result;
    }

    if (!on_record(record)) {
      fail("rejected by consumer");
      return result;
    }
    off += kHeaderSize + len;
    result.valid_bytes = off;
    ++result.records;
    ++result.next_seq;
  }
  return result;
}

}  // namespace hardtape::durability
