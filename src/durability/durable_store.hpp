// DurableStore: the live write-ahead mirror of the chip's ORAM store.
//
// It sits on the untrusted side of the paper's boundary — durability is a
// SERVICE the operator provides, not something the chip trusts. The chip's
// safety argument never depends on the journal being honest: recovery
// re-derives state fail-closed and the delta-sync re-verifies against the
// node's proofs. What the journal buys is AVAILABILITY — a warm restart that
// skips re-verifying the whole world.
//
// Wiring (all passive, the engine never blocks on policy):
//  - EpochListener callbacks (fired by EpochRegistry with its lock held)
//    journal epoch begin/commit/abort. Commit is the group-commit point:
//    the epoch's page installs and position updates were appended un-synced
//    during the pass; the commit record's fsync makes the whole epoch
//    durable at once. A crash before it loses the *entire* epoch — which is
//    exactly what recovery's staging semantics reconstruct.
//  - log_page_install (fed by OramClient's install hook) appends install +
//    position records and stages the mirror update.
//  - log_bundle_admitted / log_bundle_resolved append+fsync immediately:
//    the durable resolve mark IS the outcome-delivery record, so it may
//    never be softer than the delivery it witnesses.
//
// Checkpoint policy: after a commit, if `checkpoint_every_records` journal
// records have accumulated since the last checkpoint, snapshot the mirror
// and roll to a new (ckpt, wal) generation. Checkpoints never run with an
// epoch open — the mirror would contain staged state.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "durability/checkpoint.hpp"
#include "durability/journal.hpp"
#include "durability/recovery.hpp"
#include "durability/vfs.hpp"
#include "oram/epoch.hpp"

namespace hardtape::durability {

struct DurableConfig {
  /// Roll a checkpoint once this many journal records accumulated since the
  /// last one (checked at epoch commit). 0 = manual checkpoints only.
  uint64_t checkpoint_every_records = 0;
  /// Incremental (copy-on-write) checkpoints over a paged mirror
  /// (DESIGN.md §16): page payloads live in a pagedstore::PagedStore —
  /// bounded buffer pool in RAM, log-structured segment files beyond it —
  /// and a checkpoint flushes dirty pages then publishes a v2 locator
  /// manifest. Cost is O(pages dirtied since the last checkpoint +
  /// metadata), not O(state), and mirror RAM is capped at the pool budget.
  /// false = the seed behavior: full-image v1 snapshots from a RAM mirror.
  bool incremental_checkpoints = false;
  size_t buffer_pool_pages = 64;      ///< paged mirror's hard RAM cap
  obs::Registry* registry = nullptr;  ///< buffer-pool metrics (optional)
};

class DurableStore final : public oram::EpochListener {
 public:
  DurableStore(SimFs& fs, DurableConfig config);

  // --- oram::EpochListener (called with the registry lock held) ---
  void on_epoch_begin(uint64_t epoch, const H256& root, uint64_t block_number) override;
  void on_epoch_commit(uint64_t epoch) override;
  void on_epoch_abort(uint64_t epoch) override;

  // --- data-path hooks ---
  void log_page_install(const u256& page_id, BytesView data, uint64_t leaf);
  void log_bundle_admitted(uint64_t bundle_id);
  void log_bundle_resolved(uint64_t bundle_id);

  /// Adopts a recovered image as the mirror and starts a FRESH generation:
  /// writes checkpoint(next_generation) immediately (so recovery evidence is
  /// re-anchored durably) and opens wal-(next_generation). Call once, before
  /// any logging.
  void adopt(const RecoveredState& recovered);

  /// Manual checkpoint roll; no-op while an epoch is open.
  void checkpoint();

  /// While true, page installs are NOT journaled — used by warm restart when
  /// re-installing recovered pages into a fresh ORAM (they are already
  /// durable in the adopted checkpoint; re-journaling would double them).
  void set_restoring(bool restoring);

  /// Tracks the engine's bundle-id high-water mark in the mirror so a
  /// checkpoint carries it even when no admit record is pending.
  void note_next_bundle_id(uint64_t next_bundle_id);

  struct Stats {
    uint64_t journal_records = 0;
    uint64_t journal_syncs = 0;
    uint64_t checkpoints_written = 0;
    uint64_t generation = 0;
    /// Bytes the newest checkpoint cost: v1 = the full serialized image;
    /// incremental = manifest size + segment bytes appended since the
    /// previous checkpoint (the CoW delta).
    uint64_t last_checkpoint_bytes = 0;
    uint64_t checkpoint_bytes_total = 0;
  };
  Stats stats() const;
  /// The durable image as of the last committed epoch. Incremental mode
  /// materializes page payloads from the paged mirror (epoch-staged
  /// overwrites are read back from their pre-epoch undo locators), so the
  /// result is identical to the RAM mirror's — at a transient O(state)
  /// allocation; use sparingly at scale.
  StoreImage image_snapshot() const;
  /// Paged-mirror pool statistics; nullopt in full-image mode.
  std::optional<pagedstore::BufferPoolStats> pool_stats() const;

 private:
  void sync_journal_locked();
  void checkpoint_locked(uint64_t base_seq, uint64_t new_generation);
  void gc_segments_locked();

  SimFs& fs_;
  DurableConfig config_;

  mutable std::mutex mu_;
  StoreImage mirror_;  ///< incremental mode: page data fields empty
  /// Incremental mode only: page payloads, pool-capped and spilled to
  /// "dstore.seg-*" files. Mutable: reads fault pages through the pool.
  mutable std::optional<pagedstore::PagedStore> paged_;
  /// First-touch undo per open epoch: the pre-epoch durable locator of each
  /// overwritten page (nullopt = the page did not exist). Abort reverts.
  std::map<u256, std::optional<pagedstore::PageLocator>> undo_;
  uint64_t appended_at_last_ckpt_ = 0;
  uint64_t generation_ = 0;
  std::optional<Journal> journal_;  ///< one instance per generation file
  bool journal_published_ = false;  ///< directory entry of the live wal sync_dir'd
  uint64_t records_before_roll_ = 0;
  bool restoring_ = false;

  // Open-epoch staging, mirroring the registry's discipline.
  bool epoch_open_ = false;
  oram::EpochRegistry::Pin open_pin_{};
  std::map<u256, PageImage> staged_pages_;
  std::map<u256, uint64_t> staged_positions_;

  Stats stats_{};
};

}  // namespace hardtape::durability
