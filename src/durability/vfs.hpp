// Simulated filesystem with injectable power-loss semantics.
//
// The durability layer's whole correctness argument is about what survives a
// crash at an arbitrary instant — which a real filesystem cannot reproduce
// on demand, and certainly not deterministically in CI. SimFs is an
// in-memory filesystem that models exactly the crash-consistency contract
// journaling code must be written against:
//
//  - appended bytes are PENDING until fsync(path) makes them durable;
//  - create/rename/remove are PENDING directory operations until sync_dir()
//    makes them durable (rename itself is atomic: it either happened
//    entirely or not at all — the POSIX anchor checkpointing relies on);
//  - fsync of a file whose creation was never sync_dir'd leaves durable
//    bytes behind a name that may not survive — the classic
//    "forgot-to-fsync-the-directory" bug is representable, so tests can
//    prove the checkpoint writer does not have it.
//
// Crash model (armed via CrashConfig): every mutating call is one numbered
// operation; at operation `crash_at_op` the power goes out. The filesystem
// then resolves what the platters actually held — each unsynced chunk
// survives with a seeded probability; lost chunks either cut off everything
// after them (ordered write-back) or, with allow_reorder, leave seeded
// garbage holes while later chunks land (out-of-order write-back); the last
// surviving unsynced region may additionally be TORN mid-record — and goes
// dead: subsequent operations are no-ops. restart() brings the resolved
// durable state back up, exactly as a process restart would find it.
// Resolution is pure in (state, resolve_seed): the same run crashed at the
// same op recovers the same bytes, which is what makes crash sweeps
// replayable (the fault_stream discipline, extended to power loss).
//
// Why no-throw: the crash can fire under a journal append issued from an
// engine worker thread; an exception there would cross a thread boundary
// and terminate. Callers poll crashed() at their harness level instead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace hardtape::durability {

/// One armed power-loss event. crash_at_op is 1-indexed over mutating
/// operations (append/fsync/rename/remove/sync_dir); 0 = disarmed.
struct CrashConfig {
  uint64_t crash_at_op = 0;
  uint64_t resolve_seed = 1;
  /// Probability each unsynced chunk / directory op made it to the platter.
  double unsynced_survival = 0.5;
  /// Allow the last surviving unsynced region to be cut mid-chunk.
  bool allow_torn_tail = true;
  /// Allow out-of-order write-back: a lost chunk leaves a garbage hole
  /// instead of discarding everything after it.
  bool allow_reorder = true;
  /// Page-granularity torn writes: a LOST chunk may still land a seeded
  /// strict prefix on the platter (the device committed some sectors of the
  /// page before power died). With allow_reorder the missing suffix becomes
  /// a garbage hole under any later surviving chunk — the exact shape a
  /// paged store's checksum walk must refuse. Off by default so existing
  /// seeded resolutions are bit-identical.
  bool partial_page_writes = false;
};

enum class FsOp : uint8_t { kAppend, kFsync, kRename, kRemove, kSyncDir };
const char* to_string(FsOp op);

/// Mutating-operation log entry — the crash sweep uses a rehearsal run's log
/// to aim crashes at semantically interesting points (journal tail,
/// checkpoint tmp write, the rename itself).
struct FsOpRecord {
  uint64_t index = 0;  ///< 1-indexed
  FsOp op = FsOp::kAppend;
  std::string path;
  uint64_t bytes = 0;  ///< appended payload size (kAppend only)
};

class SimFs {
 public:
  SimFs() = default;

  /// Arms the next power loss. Call before driving the workload.
  void arm(const CrashConfig& config);
  bool crashed() const;
  /// Clears the dead state after a crash: the working view becomes the
  /// resolved durable state (what a restarted process would find). No-op if
  /// no crash happened.
  void restart();

  // --- mutating operations (each one numbered op; no-ops once crashed) ---
  /// Appends to `path`, creating it (a pending directory op) if missing.
  /// The bytes are pending until fsync. The crash point is AFTER the buffer
  /// accepted the bytes: a crashed append is exactly the torn-tail case.
  void append(const std::string& path, BytesView data);
  /// Makes `path`'s pending bytes durable. Crash point is BEFORE the flush:
  /// "died between write and fsync".
  void fsync(const std::string& path);
  /// Atomically renames (replacing any existing `to`). Pending until
  /// sync_dir. Crash point before the rename takes effect.
  void rename(const std::string& from, const std::string& to);
  /// Removes a name (the inode's durable bytes die with the last durable
  /// name). Pending until sync_dir; crash point before.
  void remove(const std::string& path);
  /// Makes all pending directory operations durable, in order.
  void sync_dir();

  // --- read-side (working view; not numbered, empty/false once crashed) ---
  std::optional<Bytes> read(const std::string& path) const;
  /// Reads exactly [offset, offset+len) of the working view without
  /// materializing the whole file — the paged store's random-access read
  /// path over append-only segments. nullopt when the file is missing or
  /// the range runs past its end.
  std::optional<Bytes> read_range(const std::string& path, uint64_t offset,
                                  uint64_t len) const;
  bool exists(const std::string& path) const;
  std::vector<std::string> list() const;

  // --- introspection ---
  uint64_t op_count() const;
  std::vector<FsOpRecord> op_log() const;
  /// Total bytes currently pending (unsynced) across all files.
  uint64_t pending_bytes() const;

 private:
  struct Inode {
    Bytes durable;
    std::vector<Bytes> pending;  ///< ordered unsynced appends
  };
  using InodePtr = std::shared_ptr<Inode>;
  struct MetaOp {
    FsOp op;                 ///< kAppend doubles as "create" here
    std::string name;        ///< created/removed name, or rename source
    std::string to;          ///< rename target
    InodePtr inode;          ///< created inode (create only)
  };

  /// Numbers the op, logs it, and fires the armed crash if this is the op.
  /// Returns true when the caller must NOT apply the effect (crash fired
  /// before the effect, or the fs was already dead).
  bool op_event_locked(FsOp op, const std::string& path, uint64_t bytes,
                       bool crash_before);
  void resolve_crash_locked();

  mutable std::mutex mu_;
  std::map<std::string, InodePtr> dir_;          ///< working view
  std::map<std::string, InodePtr> durable_dir_;  ///< as of last sync_dir
  std::vector<MetaOp> pending_meta_;
  CrashConfig crash_{};
  bool armed_ = false;
  bool crashed_ = false;
  bool dead_ = false;  ///< post-crash, pre-restart: everything no-ops
  uint64_t op_index_ = 0;
  std::vector<FsOpRecord> op_log_;
};

}  // namespace hardtape::durability
