#include "durability/checkpoint.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/keccak.hpp"

namespace hardtape::durability::checkpoint {

namespace {

constexpr char kMagic[8] = {'H', 'T', 'C', 'K', 'P', 'T', '0', '1'};
constexpr uint32_t kVersion = 1;          ///< full image inline
constexpr uint32_t kManifestVersion = 2;  ///< incremental: page locators
constexpr size_t kChecksumSize = 8;

void put_u32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u256(Bytes& out, const u256& v) {
  const auto be = v.to_be_bytes();
  out.insert(out.end(), be.begin(), be.end());
}

/// Bounds-checked little-endian reader; any read past the end poisons the
/// cursor so parse() can check once at the end of each section.
struct Reader {
  const uint8_t* p;
  size_t remaining;
  bool ok = true;

  bool take(size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!take(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    remaining -= 4;
    return v;
  }
  uint64_t u64() {
    if (!take(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    remaining -= 8;
    return v;
  }
  u256 big() {
    if (!take(32)) return u256{};
    const u256 v = u256::from_be_bytes(BytesView{p, 32});
    p += 32;
    remaining -= 32;
    return v;
  }
  H256 h256() {
    H256 v{};
    if (!take(32)) return v;
    std::memcpy(v.bytes.data(), p, 32);
    p += 32;
    remaining -= 32;
    return v;
  }
  Bytes blob() {
    const uint32_t len = u32();
    Bytes v;
    if (!take(len)) return v;
    v.assign(p, p + len);
    p += len;
    remaining -= len;
    return v;
  }
};

// --- sections shared by the v1 image and the v2 manifest ---

void put_history(Bytes& out, const StoreImage& image) {
  put_u32(out, static_cast<uint32_t>(image.epoch_history.size()));
  for (const auto& pin : image.epoch_history) {
    put_u64(out, pin.epoch);
    out.insert(out.end(), pin.state_root.bytes.begin(), pin.state_root.bytes.end());
    put_u64(out, pin.block_number);
  }
}

void put_page_tags(Bytes& out, const StoreImage& image) {
  put_u32(out, static_cast<uint32_t>(image.page_tags.size()));
  for (const auto& [id, epoch] : image.page_tags) {
    put_u256(out, id);
    put_u64(out, epoch);
  }
}

void put_positions_and_pending(Bytes& out, const StoreImage& image) {
  put_u32(out, static_cast<uint32_t>(image.positions.size()));
  for (const auto& [id, leaf] : image.positions) {
    put_u256(out, id);
    put_u64(out, leaf);
  }
  put_u32(out, static_cast<uint32_t>(image.pending_bundles.size()));
  for (const uint64_t id : image.pending_bundles) put_u64(out, id);
}

void read_history(Reader& r, StoreImage& image) {
  const uint32_t history_count = r.u32();
  for (uint32_t i = 0; r.ok && i < history_count; ++i) {
    oram::EpochRegistry::Pin pin;
    pin.epoch = r.u64();
    pin.state_root = r.h256();
    pin.block_number = r.u64();
    image.epoch_history.push_back(pin);
  }
}

void read_page_tags(Reader& r, StoreImage& image) {
  const uint32_t tag_count = r.u32();
  for (uint32_t i = 0; r.ok && i < tag_count; ++i) {
    const u256 id = r.big();
    image.page_tags[id] = r.u64();
  }
}

void read_positions_and_pending(Reader& r, StoreImage& image) {
  const uint32_t pos_count = r.u32();
  for (uint32_t i = 0; r.ok && i < pos_count; ++i) {
    const u256 id = r.big();
    image.positions[id] = r.u64();
  }
  const uint32_t pending_count = r.u32();
  for (uint32_t i = 0; r.ok && i < pending_count; ++i) {
    image.pending_bundles.insert(r.u64());
  }
}

/// Magic + trailing checksum; both versions share the frame. Returns the
/// body length (without checksum), or nullopt on violation.
std::optional<size_t> verify_frame(BytesView data) {
  constexpr size_t kMinSize = sizeof(kMagic) + 4 + kChecksumSize;
  if (data.size() < kMinSize) return std::nullopt;
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  const size_t body_len = data.size() - kChecksumSize;
  const H256 digest = crypto::keccak256(BytesView{data.data(), body_len});
  if (std::memcmp(digest.bytes.data(), data.data() + body_len, kChecksumSize) != 0) {
    return std::nullopt;
  }
  return body_len;
}

/// The version field of a frame-verified checkpoint file.
uint32_t peek_version(BytesView data) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data[sizeof(kMagic) + i]) << (8 * i);
  }
  return v;
}

/// The atomic-publish tail shared by write() and write_manifest().
void publish(SimFs& fs, uint64_t generation, const Bytes& serialized) {
  const std::string tmp = checkpoint_path(generation) + ".tmp";
  fs.append(tmp, serialized);
  fs.fsync(tmp);
  fs.rename(tmp, checkpoint_path(generation));
  fs.sync_dir();
  // Only after the new generation is durably published may the one-before-
  // previous be reclaimed; keeping generation-1 around means even a
  // checkpoint whose own bytes were corrupted in flight leaves recovery a
  // complete fallback chain.
  if (generation >= 2) {
    fs.remove(checkpoint_path(generation - 2));
    fs.remove(journal_path(generation - 2));
    fs.sync_dir();
  }
}

}  // namespace

std::string checkpoint_path(uint64_t generation) {
  return "ckpt-" + std::to_string(generation);
}

std::string journal_path(uint64_t generation) {
  return "wal-" + std::to_string(generation);
}

Bytes serialize(uint64_t generation, const StoreImage& image) {
  Bytes out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(out, kVersion);
  put_u64(out, generation);
  put_u64(out, image.base_seq);
  put_u64(out, image.next_bundle_id);

  put_history(out, image);
  put_page_tags(out, image);

  put_u32(out, static_cast<uint32_t>(image.pages.size()));
  for (const auto& [id, page] : image.pages) {
    put_u256(out, id);
    put_u64(out, page.leaf);
    put_u32(out, static_cast<uint32_t>(page.data.size()));
    append(out, page.data);
  }

  put_positions_and_pending(out, image);

  const H256 digest = crypto::keccak256(out);
  out.insert(out.end(), digest.bytes.begin(), digest.bytes.begin() + kChecksumSize);
  return out;
}

std::optional<StoreImage> parse(BytesView data) {
  const auto body_len = verify_frame(data);
  if (!body_len.has_value()) return std::nullopt;

  Reader r{data.data() + sizeof(kMagic), *body_len - sizeof(kMagic)};
  if (r.u32() != kVersion) return std::nullopt;
  (void)r.u64();  // generation (the filename is authoritative)

  StoreImage image;
  image.base_seq = r.u64();
  image.next_bundle_id = r.u64();

  read_history(r, image);
  read_page_tags(r, image);

  const uint32_t page_count = r.u32();
  for (uint32_t i = 0; r.ok && i < page_count; ++i) {
    const u256 id = r.big();
    PageImage page;
    page.leaf = r.u64();
    page.data = r.blob();
    image.pages[id] = std::move(page);
  }

  read_positions_and_pending(r, image);

  if (!r.ok || r.remaining != 0) return std::nullopt;
  return image;
}

size_t write(SimFs& fs, uint64_t generation, const StoreImage& image) {
  Bytes serialized = serialize(generation, image);
  const size_t bytes = serialized.size();
  publish(fs, generation, serialized);
  return bytes;
}

Bytes serialize_manifest(uint64_t generation, const Manifest& manifest) {
  Bytes out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(out, kManifestVersion);
  put_u64(out, generation);
  put_u64(out, manifest.meta.base_seq);
  put_u64(out, manifest.meta.next_bundle_id);

  put_u32(out, static_cast<uint32_t>(manifest.store_name.size()));
  out.insert(out.end(), manifest.store_name.begin(), manifest.store_name.end());

  put_history(out, manifest.meta);
  put_page_tags(out, manifest.meta);

  put_u32(out, static_cast<uint32_t>(manifest.pages.size()));
  for (const auto& entry : manifest.pages) {
    put_u256(out, entry.id);
    put_u64(out, entry.leaf);
    put_u64(out, entry.locator.segment);
    put_u64(out, entry.locator.offset);
    put_u32(out, entry.locator.length);
  }

  put_positions_and_pending(out, manifest.meta);

  const H256 digest = crypto::keccak256(out);
  out.insert(out.end(), digest.bytes.begin(), digest.bytes.begin() + kChecksumSize);
  return out;
}

std::optional<Manifest> parse_manifest(BytesView data) {
  const auto body_len = verify_frame(data);
  if (!body_len.has_value()) return std::nullopt;

  Reader r{data.data() + sizeof(kMagic), *body_len - sizeof(kMagic)};
  if (r.u32() != kManifestVersion) return std::nullopt;
  (void)r.u64();  // generation (the filename is authoritative)

  Manifest manifest;
  manifest.meta.base_seq = r.u64();
  manifest.meta.next_bundle_id = r.u64();

  const Bytes name = r.blob();
  manifest.store_name.assign(name.begin(), name.end());

  read_history(r, manifest.meta);
  read_page_tags(r, manifest.meta);

  const uint32_t page_count = r.u32();
  for (uint32_t i = 0; r.ok && i < page_count; ++i) {
    PageManifestEntry entry;
    entry.id = r.big();
    entry.leaf = r.u64();
    entry.locator.segment = r.u64();
    entry.locator.offset = r.u64();
    entry.locator.length = r.u32();
    manifest.pages.push_back(entry);
  }

  read_positions_and_pending(r, manifest.meta);

  if (!r.ok || r.remaining != 0) return std::nullopt;
  return manifest;
}

size_t write_manifest(SimFs& fs, uint64_t generation, const Manifest& manifest) {
  Bytes serialized = serialize_manifest(generation, manifest);
  const size_t bytes = serialized.size();
  publish(fs, generation, serialized);
  return bytes;
}

namespace {

/// Resolves a v2 manifest into a full image: every page is read back from
/// its segment file through the verifying reader. Any unresolvable page —
/// missing segment, torn record, checksum or id mismatch — fails the WHOLE
/// generation: recovery must fall back, never run on a partial image.
std::optional<StoreImage> resolve_manifest(const SimFs& fs, Manifest&& manifest) {
  StoreImage image = std::move(manifest.meta);
  for (const auto& entry : manifest.pages) {
    auto page = pagedstore::PagedStore::read_page_at(fs, manifest.store_name,
                                                     entry.locator, entry.id);
    if (!page.has_value()) return std::nullopt;
    image.pages[entry.id] = PageImage{std::move(page->payload), entry.leaf};
  }
  return image;
}

}  // namespace

std::optional<std::pair<uint64_t, StoreImage>> load_newest(const SimFs& fs) {
  std::vector<uint64_t> generations;
  const std::string prefix = "ckpt-";
  for (const std::string& name : fs.list()) {
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = name.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    generations.push_back(std::stoull(suffix));
  }
  std::sort(generations.rbegin(), generations.rend());
  for (const uint64_t gen : generations) {
    const auto data = fs.read(checkpoint_path(gen));
    if (!data.has_value()) continue;
    if (!verify_frame(*data).has_value()) continue;
    switch (peek_version(*data)) {
      case kVersion: {
        auto image = parse(*data);
        if (image.has_value()) return std::make_pair(gen, std::move(*image));
        break;
      }
      case kManifestVersion: {
        auto manifest = parse_manifest(*data);
        if (!manifest.has_value()) break;
        auto image = resolve_manifest(fs, std::move(*manifest));
        if (image.has_value()) return std::make_pair(gen, std::move(*image));
        break;
      }
      default:
        break;  // future version: unreadable evidence, fall back
    }
  }
  return std::nullopt;
}

}  // namespace hardtape::durability::checkpoint
