#include "durability/recovery.hpp"

#include <algorithm>
#include <utility>

#include "durability/journal.hpp"

namespace hardtape::durability::Recovery {

namespace {

/// Journal replay state machine. Epoch-scoped records stage their effects
/// and only a kEpochCommit publishes them into the image — mirroring the
/// live EpochRegistry's staging discipline, so a crash mid-epoch recovers
/// to exactly the pre-epoch image.
class Applier {
 public:
  Applier(StoreImage& image, RecoveryStats& stats) : image_(image), stats_(stats) {}

  bool apply(const JournalRecord& rec) {
    switch (rec.type) {
      case RecordType::kEpochBegin: {
        if (open_) return false;  // begin-while-open: impossible history
        const uint64_t expected =
            image_.epoch_history.empty() ? 0 : image_.epoch_history.back().epoch + 1;
        if (rec.epoch != expected) return false;
        open_ = true;
        pin_ = {rec.epoch, rec.root, rec.block_number};
        staged_pages_.clear();
        staged_positions_.clear();
        return true;
      }
      case RecordType::kEpochCommit: {
        if (!open_ || rec.epoch != pin_.epoch) return false;
        for (auto& [id, page] : staged_pages_) {
          image_.pages[id] = std::move(page);
          image_.page_tags[id] = pin_.epoch;
        }
        for (const auto& [id, leaf] : staged_positions_) image_.positions[id] = leaf;
        image_.epoch_history.push_back(pin_);
        open_ = false;
        return true;
      }
      case RecordType::kEpochAbort:
        if (!open_ || rec.epoch != pin_.epoch) return false;
        drop_open_epoch();
        return true;
      case RecordType::kPageInstall:
        if (!open_) return false;  // installs outside an epoch never happen
        staged_pages_[rec.page_id] = PageImage{rec.page_data, rec.leaf};
        return true;
      case RecordType::kPositionUpdate:
        if (!open_) return false;
        staged_positions_[rec.page_id] = rec.leaf;
        return true;
      case RecordType::kBundleAdmit:
        image_.pending_bundles.insert(rec.bundle_id);
        if (rec.bundle_id + 1 > image_.next_bundle_id) {
          image_.next_bundle_id = rec.bundle_id + 1;
        }
        return true;
      case RecordType::kBundleResolve:
        image_.pending_bundles.erase(rec.bundle_id);
        return true;
    }
    return false;
  }

  /// Called once after the last journal: an epoch still open lost its
  /// commit record to the crash — abort it.
  void finish() {
    if (open_) drop_open_epoch();
  }

 private:
  void drop_open_epoch() {
    open_ = false;
    staged_pages_.clear();
    staged_positions_.clear();
    ++stats_.epochs_aborted;
  }

  StoreImage& image_;
  RecoveryStats& stats_;
  bool open_ = false;
  oram::EpochRegistry::Pin pin_{};
  std::map<u256, PageImage> staged_pages_;
  std::map<u256, uint64_t> staged_positions_;
};

}  // namespace

RecoveredState replay(const SimFs& fs) {
  RecoveredState out;

  uint64_t generation = 0;
  if (auto newest = checkpoint::load_newest(fs); newest.has_value()) {
    generation = newest->first;
    out.image = std::move(newest->second);
    out.stats.used_checkpoint = true;
    out.stats.checkpoint_generation = generation;
  }
  out.stats.next_generation = generation + 1;

  Applier applier(out.image, out.stats);
  uint64_t expected_seq = out.image.base_seq;
  for (uint64_t g = generation;; ++g) {
    if (!fs.exists(checkpoint::journal_path(g)) && g != generation) break;
    const auto result = Journal::replay(
        fs, checkpoint::journal_path(g), expected_seq,
        [&](const JournalRecord& rec) { return applier.apply(rec); });
    out.stats.records_replayed += result.records;
    out.stats.bytes_truncated += result.truncated_bytes;
    if (fs.exists(checkpoint::journal_path(g))) {
      ++out.stats.journals_replayed;
      out.stats.next_generation = std::max(out.stats.next_generation, g + 1);
    }
    expected_seq = result.next_seq;
    if (!result.stop_reason.empty()) {
      // The chain is severed here; a later generation's records cannot be
      // sequence-verified against a truncated predecessor, so they are
      // untrusted evidence — fail closed.
      out.stats.stop_reason = result.stop_reason;
      break;
    }
  }
  applier.finish();
  out.image.base_seq = expected_seq;

  // Never reuse a generation number any artifact on disk already carries —
  // an untrusted wal beyond the truncation point must stay evidence, not
  // become the tail of the restarted store's fresh journal.
  for (const std::string& name : fs.list()) {
    for (const std::string& prefix : {std::string("wal-"), std::string("ckpt-")}) {
      if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
        continue;
      }
      const std::string suffix = name.substr(prefix.size());
      if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
      out.stats.next_generation = std::max<uint64_t>(
          out.stats.next_generation, std::stoull(suffix) + 1);
    }
  }
  return out;
}

}  // namespace hardtape::durability::Recovery
