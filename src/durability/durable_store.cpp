#include "durability/durable_store.hpp"

#include <utility>

namespace hardtape::durability {

DurableStore::DurableStore(SimFs& fs, DurableConfig config)
    : fs_(fs), config_(config) {
  journal_.emplace(fs_, checkpoint::journal_path(0), /*start_seq=*/0);
}

void DurableStore::on_epoch_begin(uint64_t epoch, const H256& root,
                                  uint64_t block_number) {
  std::lock_guard lock(mu_);
  journal_->append_epoch_begin(epoch, root, block_number);
  sync_journal_locked();
  epoch_open_ = true;
  open_pin_ = {epoch, root, block_number};
  staged_pages_.clear();
  staged_positions_.clear();
}

void DurableStore::on_epoch_commit(uint64_t epoch) {
  std::lock_guard lock(mu_);
  journal_->append_epoch_commit(epoch);
  // Group commit: this single fsync makes the epoch's begin record, every
  // page install and position update appended during the pass, and the
  // commit record durable together.
  sync_journal_locked();
  if (epoch_open_) {
    for (auto& [id, page] : staged_pages_) {
      mirror_.pages[id] = std::move(page);
      mirror_.page_tags[id] = open_pin_.epoch;
    }
    for (const auto& [id, leaf] : staged_positions_) mirror_.positions[id] = leaf;
    mirror_.epoch_history.push_back(open_pin_);
    epoch_open_ = false;
    staged_pages_.clear();
    staged_positions_.clear();
  }
  if (config_.checkpoint_every_records != 0 &&
      journal_->records_written() >= config_.checkpoint_every_records) {
    checkpoint_locked(journal_->next_seq(), generation_ + 1);
  }
}

void DurableStore::on_epoch_abort(uint64_t epoch) {
  std::lock_guard lock(mu_);
  journal_->append_epoch_abort(epoch);
  sync_journal_locked();
  epoch_open_ = false;
  staged_pages_.clear();
  staged_positions_.clear();
}

void DurableStore::log_page_install(const u256& page_id, BytesView data,
                                    uint64_t leaf) {
  std::lock_guard lock(mu_);
  if (restoring_) return;
  // Appended UN-synced: the epoch-commit fsync is the durability barrier for
  // the whole pass (group commit). A crash before it loses the epoch, which
  // recovery's staging replay handles by design.
  journal_->append_page_install(page_id, data, leaf);
  journal_->append_position_update(page_id, leaf);
  if (epoch_open_) {
    staged_pages_[page_id] = PageImage{Bytes(data.begin(), data.end()), leaf};
    staged_positions_[page_id] = leaf;
  }
}

void DurableStore::log_bundle_admitted(uint64_t bundle_id) {
  std::lock_guard lock(mu_);
  journal_->append_bundle_admit(bundle_id);
  sync_journal_locked();
  mirror_.pending_bundles.insert(bundle_id);
  if (bundle_id + 1 > mirror_.next_bundle_id) mirror_.next_bundle_id = bundle_id + 1;
}

void DurableStore::log_bundle_resolved(uint64_t bundle_id) {
  std::lock_guard lock(mu_);
  // The durable resolve mark is the delivery receipt: once this sync
  // returns, recovery treats the bundle as settled and will not re-derive
  // its outcome.
  journal_->append_bundle_resolve(bundle_id);
  sync_journal_locked();
  mirror_.pending_bundles.erase(bundle_id);
}

void DurableStore::adopt(const RecoveredState& recovered) {
  std::lock_guard lock(mu_);
  mirror_ = recovered.image;
  // Re-anchor durably at a FRESH generation: the adopted image becomes its
  // own checkpoint, so post-recovery operation never appends to (or behind)
  // artifacts that are still crash evidence.
  checkpoint_locked(recovered.image.base_seq, recovered.stats.next_generation);
}

void DurableStore::checkpoint() {
  std::lock_guard lock(mu_);
  if (epoch_open_) return;
  checkpoint_locked(journal_->next_seq(), generation_ + 1);
}

void DurableStore::set_restoring(bool restoring) {
  std::lock_guard lock(mu_);
  restoring_ = restoring;
}

void DurableStore::note_next_bundle_id(uint64_t next_bundle_id) {
  std::lock_guard lock(mu_);
  if (next_bundle_id > mirror_.next_bundle_id) mirror_.next_bundle_id = next_bundle_id;
}

void DurableStore::sync_journal_locked() {
  journal_->sync();
  if (!journal_published_) {
    // First durability barrier of this generation: the fsync made the BYTES
    // durable, but the file's directory entry is still a pending create — a
    // crash now would orphan them behind a name that never existed. One
    // sync_dir publishes it (the forgot-to-fsync-the-directory bug, closed).
    fs_.sync_dir();
    journal_published_ = true;
  }
  ++stats_.journal_syncs;
}

void DurableStore::checkpoint_locked(uint64_t base_seq, uint64_t new_generation) {
  mirror_.base_seq = base_seq;
  checkpoint::write(fs_, new_generation, mirror_);
  ++stats_.checkpoints_written;
  records_before_roll_ += journal_->records_written();
  generation_ = new_generation;
  journal_.emplace(fs_, checkpoint::journal_path(new_generation), base_seq);
  journal_published_ = false;
}

DurableStore::Stats DurableStore::stats() const {
  std::lock_guard lock(mu_);
  Stats out = stats_;
  out.journal_records = records_before_roll_ + journal_->records_written();
  out.generation = generation_;
  return out;
}

StoreImage DurableStore::image_snapshot() const {
  std::lock_guard lock(mu_);
  return mirror_;
}

}  // namespace hardtape::durability
