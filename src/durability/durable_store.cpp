#include "durability/durable_store.hpp"

#include <utility>

namespace hardtape::durability {

DurableStore::DurableStore(SimFs& fs, DurableConfig config)
    : fs_(fs), config_(config) {
  if (config_.incremental_checkpoints) {
    pagedstore::PagedStoreConfig ps;
    ps.name = "dstore";
    ps.buffer_pool_pages = config_.buffer_pool_pages;
    // Published manifests keep referencing old segments until the manifest
    // itself is retired; GC runs against the surviving-manifest keep set.
    ps.auto_gc_segments = false;
    ps.registry = config_.registry;
    paged_.emplace(fs_, std::move(ps));
  }
  journal_.emplace(fs_, checkpoint::journal_path(0), /*start_seq=*/0);
}

void DurableStore::on_epoch_begin(uint64_t epoch, const H256& root,
                                  uint64_t block_number) {
  std::lock_guard lock(mu_);
  journal_->append_epoch_begin(epoch, root, block_number);
  sync_journal_locked();
  epoch_open_ = true;
  open_pin_ = {epoch, root, block_number};
  staged_pages_.clear();
  staged_positions_.clear();
  undo_.clear();
}

void DurableStore::on_epoch_commit(uint64_t epoch) {
  std::lock_guard lock(mu_);
  journal_->append_epoch_commit(epoch);
  // Group commit: this single fsync makes the epoch's begin record, every
  // page install and position update appended during the pass, and the
  // commit record durable together.
  sync_journal_locked();
  if (epoch_open_) {
    for (auto& [id, page] : staged_pages_) {
      mirror_.pages[id] = std::move(page);
      mirror_.page_tags[id] = open_pin_.epoch;
    }
    for (const auto& [id, leaf] : staged_positions_) mirror_.positions[id] = leaf;
    mirror_.epoch_history.push_back(open_pin_);
    epoch_open_ = false;
    staged_pages_.clear();
    staged_positions_.clear();
    undo_.clear();  // the epoch's paged-mirror puts are now the truth
  }
  if (config_.checkpoint_every_records != 0 &&
      journal_->records_written() >= config_.checkpoint_every_records) {
    checkpoint_locked(journal_->next_seq(), generation_ + 1);
  }
}

void DurableStore::on_epoch_abort(uint64_t epoch) {
  std::lock_guard lock(mu_);
  journal_->append_epoch_abort(epoch);
  sync_journal_locked();
  if (paged_.has_value()) {
    // Roll every page the epoch touched back to its pre-epoch version (or
    // out of existence): the paged mirror must match the un-staged mirror.
    for (const auto& [id, prior] : undo_) paged_->revert_to(id, prior);
  }
  epoch_open_ = false;
  staged_pages_.clear();
  staged_positions_.clear();
  undo_.clear();
}

void DurableStore::log_page_install(const u256& page_id, BytesView data,
                                    uint64_t leaf) {
  std::lock_guard lock(mu_);
  if (restoring_) return;
  // Appended UN-synced: the epoch-commit fsync is the durability barrier for
  // the whole pass (group commit). A crash before it loses the epoch, which
  // recovery's staging replay handles by design.
  journal_->append_page_install(page_id, data, leaf);
  journal_->append_position_update(page_id, leaf);
  if (epoch_open_) {
    if (paged_.has_value()) {
      // Copy-on-write staging: on the epoch's FIRST touch of this page,
      // persist whatever dirty pool copy the page had (its committed-but-
      // unflushed truth) and remember that locator as the undo point; then
      // overwrite in place. Commit keeps the new version; abort reverts.
      if (!undo_.contains(page_id)) {
        if (paged_->contains(page_id)) {
          paged_->force_persist(page_id);
          undo_[page_id] = paged_->durable_locator(page_id);
        } else {
          undo_[page_id] = std::nullopt;
        }
      }
      paged_->put(page_id, data);
      staged_pages_[page_id] = PageImage{Bytes{}, leaf};  // metadata only
    } else {
      staged_pages_[page_id] = PageImage{Bytes(data.begin(), data.end()), leaf};
    }
    staged_positions_[page_id] = leaf;
  }
}

void DurableStore::log_bundle_admitted(uint64_t bundle_id) {
  std::lock_guard lock(mu_);
  journal_->append_bundle_admit(bundle_id);
  sync_journal_locked();
  mirror_.pending_bundles.insert(bundle_id);
  if (bundle_id + 1 > mirror_.next_bundle_id) mirror_.next_bundle_id = bundle_id + 1;
}

void DurableStore::log_bundle_resolved(uint64_t bundle_id) {
  std::lock_guard lock(mu_);
  // The durable resolve mark is the delivery receipt: once this sync
  // returns, recovery treats the bundle as settled and will not re-derive
  // its outcome.
  journal_->append_bundle_resolve(bundle_id);
  sync_journal_locked();
  mirror_.pending_bundles.erase(bundle_id);
}

void DurableStore::adopt(const RecoveredState& recovered) {
  std::lock_guard lock(mu_);
  mirror_ = recovered.image;
  if (paged_.has_value()) {
    // Recovery materialized the image in RAM (a transient); re-page every
    // payload and keep only metadata in the mirror so steady-state RAM
    // drops back to the pool budget. The checkpoint below makes the fresh
    // generation's manifest reference the re-paged copies.
    for (auto& [id, page] : mirror_.pages) {
      paged_->put(id, page.data);
      page.data = Bytes{};
    }
  }
  // Re-anchor durably at a FRESH generation: the adopted image becomes its
  // own checkpoint, so post-recovery operation never appends to (or behind)
  // artifacts that are still crash evidence.
  checkpoint_locked(recovered.image.base_seq, recovered.stats.next_generation);
}

void DurableStore::checkpoint() {
  std::lock_guard lock(mu_);
  if (epoch_open_) return;
  checkpoint_locked(journal_->next_seq(), generation_ + 1);
}

void DurableStore::set_restoring(bool restoring) {
  std::lock_guard lock(mu_);
  restoring_ = restoring;
}

void DurableStore::note_next_bundle_id(uint64_t next_bundle_id) {
  std::lock_guard lock(mu_);
  if (next_bundle_id > mirror_.next_bundle_id) mirror_.next_bundle_id = next_bundle_id;
}

void DurableStore::sync_journal_locked() {
  journal_->sync();
  if (!journal_published_) {
    // First durability barrier of this generation: the fsync made the BYTES
    // durable, but the file's directory entry is still a pending create — a
    // crash now would orphan them behind a name that never existed. One
    // sync_dir publishes it (the forgot-to-fsync-the-directory bug, closed).
    fs_.sync_dir();
    journal_published_ = true;
  }
  ++stats_.journal_syncs;
}

void DurableStore::checkpoint_locked(uint64_t base_seq, uint64_t new_generation) {
  mirror_.base_seq = base_seq;
  if (paged_.has_value()) {
    paged_->set_generation(new_generation);
    const auto flushed = paged_->flush(/*fsync=*/true);
    (void)flushed;
    // Segment files created since the last barrier have pending directory
    // entries; publish them BEFORE the manifest that references them, so a
    // crash can never keep the manifest while losing a segment it points at
    // (recovery would still fail closed — this just avoids burning the
    // whole generation on an ordering accident).
    fs_.sync_dir();
    checkpoint::Manifest manifest;
    manifest.meta = mirror_;  // page data fields already empty
    manifest.store_name = paged_->config().name;
    for (const auto& [id, locator] : paged_->locators()) {
      const auto it = mirror_.pages.find(id);
      if (it == mirror_.pages.end()) {
        throw HardtapeError("durable store: paged mirror holds a page the "
                            "logical mirror does not");
      }
      manifest.pages.push_back({id, it->second.leaf, locator});
    }
    if (manifest.pages.size() != mirror_.pages.size()) {
      throw HardtapeError("durable store: logical mirror holds pages the "
                          "paged mirror does not");
    }
    const size_t manifest_bytes =
        checkpoint::write_manifest(fs_, new_generation, manifest);
    const uint64_t appended = paged_->segment_bytes_appended();
    stats_.last_checkpoint_bytes =
        manifest_bytes + (appended - appended_at_last_ckpt_);
    appended_at_last_ckpt_ = appended;
    gc_segments_locked();
  } else {
    stats_.last_checkpoint_bytes = checkpoint::write(fs_, new_generation, mirror_);
  }
  stats_.checkpoint_bytes_total += stats_.last_checkpoint_bytes;
  ++stats_.checkpoints_written;
  records_before_roll_ += journal_->records_written();
  generation_ = new_generation;
  journal_.emplace(fs_, checkpoint::journal_path(new_generation), base_seq);
  journal_published_ = false;
}

void DurableStore::gc_segments_locked() {
  // A segment stays as long as ANY published checkpoint manifest references
  // it (after publish-time GC at most the newest two generations survive;
  // v1 files and corrupt manifests reference no segments). The PagedStore
  // additionally always keeps its open segment.
  std::set<uint64_t> keep;
  const std::string prefix = "ckpt-";
  for (const std::string& name : fs_.list()) {
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = name.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    const auto data = fs_.read(name);
    if (!data.has_value()) continue;
    const auto manifest = checkpoint::parse_manifest(*data);
    if (!manifest.has_value()) continue;
    for (const auto& entry : manifest->pages) keep.insert(entry.locator.segment);
  }
  paged_->gc_segments(keep);
}

DurableStore::Stats DurableStore::stats() const {
  std::lock_guard lock(mu_);
  Stats out = stats_;
  out.journal_records = records_before_roll_ + journal_->records_written();
  out.generation = generation_;
  return out;
}

StoreImage DurableStore::image_snapshot() const {
  std::lock_guard lock(mu_);
  StoreImage out = mirror_;
  if (paged_.has_value()) {
    for (auto& [id, page] : out.pages) {
      const auto undo_it = undo_.find(id);
      if (undo_it != undo_.end()) {
        // The pool holds this page's UNCOMMITTED epoch-staged content; the
        // committed version lives at the saved pre-epoch locator.
        if (!undo_it->second.has_value()) {
          throw HardtapeError("durable store: mirrored page lacks a committed version");
        }
        auto rec = pagedstore::PagedStore::read_page_at(
            fs_, paged_->config().name, *undo_it->second, id);
        if (!rec.has_value()) {
          throw IntegrityError("durable store: committed page version unreadable");
        }
        page.data = std::move(rec->payload);
      } else {
        auto data = paged_->get(id);
        if (!data.has_value()) {
          throw HardtapeError("durable store: paged mirror lost a page payload");
        }
        page.data = std::move(*data);
      }
    }
  }
  return out;
}

std::optional<pagedstore::BufferPoolStats> DurableStore::pool_stats() const {
  std::lock_guard lock(mu_);
  if (!paged_.has_value()) return std::nullopt;
  return paged_->pool_stats();
}

}  // namespace hardtape::durability
