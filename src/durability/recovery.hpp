// Crash recovery: newest valid checkpoint + fail-closed journal replay.
//
// replay() rebuilds the durable StoreImage a restarted chip would trust:
//
//   1. load the newest checkpoint that parses and checksums (or start from
//      an empty image at generation 0);
//   2. replay journal generations wal-g, wal-(g+1), ... in order, each
//      anchored on the sequence number the previous artifact ended at. The
//      first torn record, checksum failure, sequence break, or semantic
//      violation truncates replay THERE — and because sequence numbers chain
//      across generations, nothing after a truncation is trusted either;
//   3. abort any epoch still open at the end (its staged pages and position
//      updates are dropped), preserving the paper's safety invariant
//      `max page epoch <= committed store epoch`.
//
// What recovery deliberately does NOT do: talk to the node. Replay is a pure
// function of the disk image, so it is unit-testable against every crash the
// SimFs can produce; the (possibly stale) recovered root is then brought to
// head by the existing delta-sync path at warm-restart time.
#pragma once

#include <cstdint>
#include <string>

#include "durability/checkpoint.hpp"
#include "durability/vfs.hpp"

namespace hardtape::durability {

struct RecoveryStats {
  uint64_t checkpoint_generation = 0;
  bool used_checkpoint = false;
  uint64_t journals_replayed = 0;
  uint64_t records_replayed = 0;
  uint64_t bytes_truncated = 0;
  std::string stop_reason;   ///< empty = clean end of the journal chain
  uint64_t epochs_aborted = 0;  ///< uncommitted epochs dropped (incl. open tail)
  /// Generation the restarted store should write next (newest seen + 1), so
  /// a crash during post-recovery operation never overwrites evidence.
  uint64_t next_generation = 0;
};

struct RecoveredState {
  StoreImage image;
  RecoveryStats stats;
};

namespace Recovery {

RecoveredState replay(const SimFs& fs);

}  // namespace Recovery

}  // namespace hardtape::durability
