// On-disk page codec for the paged state backend (DESIGN.md §16).
//
// Every page written to a SimFs segment carries a self-describing header so
// a reader can verify — with no context beyond the bytes themselves and the
// logical id it asked for — that it got back exactly what some writer once
// stored:
//
//   u32 magic | u16 version | u16 reserved | 32B logical id | u64 generation
//   | u32 payload_len | 8B checksum | payload
//
// checksum = the first 8 bytes of keccak256(id_be || generation_le ||
// payload) — the repo's one hash, truncated, same discipline as the journal.
// Decoding is FAIL-CLOSED: a torn, bit-flipped, or mis-addressed page (id
// mismatch) yields nullopt, never silently-garbage payload bytes. Callers on
// the state path convert that refusal into an IntegrityError — the same
// `kIntegrity`-class rejection a tampered ORAM slot gets.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::pagedstore {

constexpr uint32_t kPageMagic = 0x48545047;  // "HTPG"
constexpr uint16_t kPageVersion = 1;
/// magic + version + reserved + id + generation + payload_len + checksum.
constexpr size_t kPageHeaderSize = 4 + 2 + 2 + 32 + 8 + 4 + 8;
/// Hard bound on a single page payload; an encoded length beyond it is
/// corruption by definition, rejected before any allocation.
constexpr uint32_t kMaxPagePayload = 1u << 20;

struct DecodedPage {
  u256 id{};
  uint64_t generation = 0;
  Bytes payload;
};

/// Encodes one page record. Throws UsageError when payload exceeds
/// kMaxPagePayload (a page that could never be decoded back).
Bytes encode_page(const u256& id, uint64_t generation, BytesView payload);

/// Decodes a page record that must occupy exactly `raw`. nullopt on ANY
/// violation: short buffer, bad magic/version, oversized length, length not
/// matching the buffer, or checksum mismatch.
std::optional<DecodedPage> decode_page(BytesView raw);

}  // namespace hardtape::pagedstore
