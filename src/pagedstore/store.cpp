#include "pagedstore/store.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace hardtape::pagedstore {

PagedStore::PagedStore(durability::SimFs& fs, PagedStoreConfig config)
    : fs_(fs),
      config_(std::move(config)),
      pool_(config_.buffer_pool_pages,
            [this](const u256& id, const Bytes& payload) {
              set_locator(id, append_record_locked(id, payload));
            },
            config_.registry, config_.name) {
  // Resume past any segments a previous incarnation left behind — appending
  // into an existing file would corrupt every locator pointing into it.
  const std::string prefix = config_.name + ".seg-";
  for (const std::string& file : fs_.list()) {
    if (file.size() <= prefix.size() || file.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = file.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    current_segment_ = std::max<uint64_t>(current_segment_, std::stoull(suffix) + 1);
  }
}

std::string PagedStore::segment_path(const std::string& name, uint64_t segment) {
  return name + ".seg-" + std::to_string(segment);
}

std::optional<DecodedPage> PagedStore::read_page_at(const durability::SimFs& fs,
                                                    const std::string& name,
                                                    const PageLocator& locator,
                                                    const u256& expected_id) {
  const auto raw = fs.read_range(segment_path(name, locator.segment),
                                 locator.offset, locator.length);
  if (!raw.has_value()) return std::nullopt;
  auto page = decode_page(*raw);
  if (!page.has_value() || page->id != expected_id) return std::nullopt;
  return page;
}

PageLocator PagedStore::append_record_locked(const u256& id, const Bytes& payload) {
  const Bytes record = encode_page(id, generation_, payload);
  const PageLocator loc{current_segment_, current_segment_bytes_,
                        static_cast<uint32_t>(record.size())};
  fs_.append(segment_path(config_.name, current_segment_), record);
  current_segment_bytes_ += record.size();
  bytes_appended_ += record.size();
  unsynced_segments_.insert(current_segment_);
  if (current_segment_bytes_ >= config_.segment_target_bytes) {
    ++current_segment_;
    current_segment_bytes_ = 0;
  }
  return loc;
}

void PagedStore::drop_locator_ref(const PageLocator& loc) {
  const auto it = segment_live_.find(loc.segment);
  if (it == segment_live_.end()) return;
  if (--it->second > 0) return;
  segment_live_.erase(it);
  if (config_.auto_gc_segments && loc.segment != current_segment_) {
    fs_.remove(segment_path(config_.name, loc.segment));
    unsynced_segments_.erase(loc.segment);
  }
}

void PagedStore::set_locator(const u256& id, const PageLocator& loc) {
  Entry& entry = table_[id];
  ++segment_live_[loc.segment];
  if (entry.loc.has_value()) drop_locator_ref(*entry.loc);
  entry.loc = loc;
}

Bytes PagedStore::load_page(const u256& id) const {
  const auto it = table_.find(id);
  if (it == table_.end() || !it->second.loc.has_value()) {
    throw UsageError("pagedstore: load of a page with no persisted version");
  }
  auto page = read_page_at(fs_, config_.name, *it->second.loc, id);
  if (!page.has_value()) {
    throw IntegrityError("pagedstore: page 0x" + id.to_hex() +
                         " failed verification (torn or corrupt segment record)");
  }
  return std::move(page->payload);
}

void PagedStore::put(const u256& id, BytesView payload) {
  table_.try_emplace(id);  // keep any prior locator: that's the CoW version
  pool_.insert(id, Bytes(payload.begin(), payload.end()), /*dirty=*/true);
}

std::optional<Bytes> PagedStore::get(const u256& id) {
  if (!table_.contains(id)) return std::nullopt;
  auto ref = pool_.fetch(id, [this, &id] { return load_page(id); });
  return ref.data();
}

BufferPool::PageRef PagedStore::pin(const u256& id) {
  if (!table_.contains(id)) {
    throw UsageError("pagedstore: pin of an absent page");
  }
  return pool_.fetch(id, [this, &id] { return load_page(id); });
}

BufferPool::PageRef PagedStore::pin_or_create(const u256& id,
                                              const std::function<Bytes()>& init) {
  if (table_.contains(id)) return pin(id);
  table_.try_emplace(id);
  return pool_.insert(id, init(), /*dirty=*/true);
}

bool PagedStore::contains(const u256& id) const { return table_.contains(id); }

PagedStore::FlushResult PagedStore::flush(bool fsync) {
  FlushResult out;
  const uint64_t before = bytes_appended_;
  for (const u256& id : pool_.dirty_ids()) {
    pool_.writeback(id);
    ++out.pages;
  }
  out.bytes = bytes_appended_ - before;
  if (fsync) {
    for (const uint64_t segment : unsynced_segments_) {
      fs_.fsync(segment_path(config_.name, segment));
    }
    unsynced_segments_.clear();
  }
  return out;
}

void PagedStore::force_persist(const u256& id) { pool_.writeback(id); }

std::optional<PageLocator> PagedStore::durable_locator(const u256& id) const {
  const auto it = table_.find(id);
  if (it == table_.end()) return std::nullopt;
  return it->second.loc;
}

void PagedStore::revert_to(const u256& id, const std::optional<PageLocator>& prior) {
  pool_.discard(id);
  const auto it = table_.find(id);
  if (it == table_.end()) {
    if (prior.has_value()) {
      ++segment_live_[prior->segment];
      table_[id].loc = prior;
    }
    return;
  }
  if (prior.has_value()) {
    ++segment_live_[prior->segment];
    if (it->second.loc.has_value()) drop_locator_ref(*it->second.loc);
    it->second.loc = prior;
  } else {
    if (it->second.loc.has_value()) drop_locator_ref(*it->second.loc);
    table_.erase(it);
  }
}

std::vector<std::pair<u256, PageLocator>> PagedStore::locators() const {
  std::vector<std::pair<u256, PageLocator>> out;
  out.reserve(table_.size());
  for (const auto& [id, entry] : table_) {
    if (!entry.loc.has_value()) {
      throw UsageError("pagedstore: locators() with dirty pages — flush first");
    }
    out.emplace_back(id, *entry.loc);
  }
  return out;
}

void PagedStore::gc_segments(const std::set<uint64_t>& keep) {
  const std::string prefix = config_.name + ".seg-";
  for (const std::string& file : fs_.list()) {
    if (file.size() <= prefix.size() || file.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = file.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    const uint64_t segment = std::stoull(suffix);
    if (segment == current_segment_ || keep.contains(segment)) continue;
    if (segment_live_.contains(segment)) continue;  // live pages still point here
    fs_.remove(file);
    unsynced_segments_.erase(segment);
  }
}

}  // namespace hardtape::pagedstore
