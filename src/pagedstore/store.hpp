// PagedStore: a page-granular store over SimFs with a bounded buffer pool
// (DESIGN.md §16).
//
// SimFs deliberately has no random-access writes — only append / fsync /
// rename / remove / sync_dir, the POSIX crash-consistency vocabulary. So the
// store is LOG-STRUCTURED: page versions are appended to numbered segment
// files ("<name>.seg-<n>") and an in-memory page table maps each logical id
// to the locator (segment, offset, length) of its newest persisted version.
// Updating a page never touches the old bytes; copy-on-write falls out of
// the medium. The buffer pool (buffer_pool.hpp) caches payloads under a hard
// `buffer_pool_pages` cap — evicting a dirty frame appends it to the current
// segment first, so the ONLY full copy of the data lives on the fs and RAM
// stays bounded no matter how large the store grows.
//
// Reads are FAIL-CLOSED: a page fetched from a segment is verified against
// its header checksum and the id the caller asked for; a torn or corrupt
// record throws IntegrityError — the same `kIntegrity`-class refusal a
// tampered ORAM slot gets — never silent garbage.
//
// Durability is the CALLER's protocol, not this class's: appends are pending
// until flush(true) fsyncs the touched segments. The incremental-checkpoint
// protocol built on top (durability::DurableStore) flushes dirty pages, then
// publishes a manifest of locators with the atomic-rename sequence; stores
// that need no crash consistency (the ORAM slot store, the trie node store —
// both rebuilt on warm restart) simply never fsync and use the segments as
// spill space.
//
// NOT thread-safe: callers hold their own lock (the shard walk lock, the
// DurableStore mutex). The page table is RAM-resident metadata — tens of
// bytes per page against a page of data; the memory BOUND applies to
// payloads, which is where 10-100x state lives.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "durability/vfs.hpp"
#include "pagedstore/buffer_pool.hpp"
#include "pagedstore/page.hpp"

namespace hardtape::pagedstore {

/// Where a persisted page version lives. `length` is the full encoded record
/// (header + payload).
struct PageLocator {
  uint64_t segment = 0;
  uint64_t offset = 0;
  uint32_t length = 0;
  bool operator==(const PageLocator&) const = default;
};

struct PagedStoreConfig {
  std::string name = "store";  ///< file prefix: "<name>.seg-<n>"
  size_t buffer_pool_pages = 64;
  /// Roll to a new segment file once the current one grows past this.
  size_t segment_target_bytes = 1 << 20;
  /// Remove a segment file as soon as no live page version references it.
  /// Right for rebuild-on-restart stores (ORAM slots, trie nodes); MUST be
  /// false when published manifests may still reference old segments (the
  /// DurableStore checkpoint protocol GCs via gc_segments instead).
  bool auto_gc_segments = true;
  obs::Registry* registry = nullptr;  ///< pool metrics (optional)
};

class PagedStore {
 public:
  PagedStore(durability::SimFs& fs, PagedStoreConfig config);

  // --- page access ---
  /// Installs or overwrites a page (dirty in the pool; the prior persisted
  /// version, if any, stays on its segment — CoW).
  void put(const u256& id, BytesView payload);
  /// nullopt when the id was never written; throws IntegrityError when the
  /// persisted version fails verification.
  std::optional<Bytes> get(const u256& id);
  /// Pins an existing page (UsageError when absent). The returned ref may be
  /// written through; mark_dirty() makes the change stick.
  BufferPool::PageRef pin(const u256& id);
  /// Pins, creating the page from `init` when absent.
  BufferPool::PageRef pin_or_create(const u256& id, const std::function<Bytes()>& init);
  bool contains(const u256& id) const;
  size_t page_count() const { return table_.size(); }

  // --- persistence protocol ---
  /// Stamped into page headers of subsequent appends (the checkpoint
  /// generation in the DurableStore protocol).
  void set_generation(uint64_t generation) { generation_ = generation; }
  struct FlushResult {
    uint64_t pages = 0;
    uint64_t bytes = 0;  ///< segment bytes appended by this flush
  };
  /// Persists every dirty pool page to the current segment; with `fsync`
  /// also makes all touched segments durable. After flush(), every page has
  /// a locator.
  FlushResult flush(bool fsync);
  /// Appends `id`'s dirty pool copy now (no fsync); no-op when clean.
  void force_persist(const u256& id);
  /// Newest persisted locator; nullopt while the only copy is a dirty pool
  /// frame that has never been evicted or flushed.
  std::optional<PageLocator> durable_locator(const u256& id) const;
  /// Rolls `id` back: to `prior` (a locator saved before an overwrite), or
  /// out of existence (nullopt). Any pool copy is discarded. The undo half
  /// of the DurableStore's epoch-abort path.
  void revert_to(const u256& id, const std::optional<PageLocator>& prior);
  /// (id, locator) for every page, id-ordered. UsageError if any page is
  /// still dirty — call flush() first. This is the manifest's page list.
  std::vector<std::pair<u256, PageLocator>> locators() const;
  /// Removes segment files NOT in `keep` (the current open segment is
  /// always kept). Used by the manifest GC once no published checkpoint
  /// references a segment.
  void gc_segments(const std::set<uint64_t>& keep);
  uint64_t current_segment() const { return current_segment_; }

  // --- introspection ---
  BufferPoolStats pool_stats() const { return pool_.stats(); }
  uint64_t segment_bytes_appended() const { return bytes_appended_; }
  const PagedStoreConfig& config() const { return config_; }

  static std::string segment_path(const std::string& name, uint64_t segment);
  /// Reads and verifies one page record straight from a segment file —
  /// nullopt on any violation (missing file, short slice, checksum or id
  /// mismatch). Recovery resolves manifest entries through this.
  static std::optional<DecodedPage> read_page_at(const durability::SimFs& fs,
                                                 const std::string& name,
                                                 const PageLocator& locator,
                                                 const u256& expected_id);

 private:
  struct Entry {
    std::optional<PageLocator> loc;
  };

  /// Appends one encoded page record, returns its locator, and rolls the
  /// segment when past the target size.
  PageLocator append_record_locked(const u256& id, const Bytes& payload);
  void set_locator(const u256& id, const PageLocator& loc);
  void drop_locator_ref(const PageLocator& loc);
  Bytes load_page(const u256& id) const;

  durability::SimFs& fs_;
  PagedStoreConfig config_;
  uint64_t generation_ = 0;
  std::map<u256, Entry> table_;  ///< ordered: deterministic manifests
  uint64_t current_segment_ = 0;
  uint64_t current_segment_bytes_ = 0;
  uint64_t bytes_appended_ = 0;
  std::set<uint64_t> unsynced_segments_;
  std::map<uint64_t, uint64_t> segment_live_;  ///< live page versions per segment
  BufferPool pool_;
};

}  // namespace hardtape::pagedstore
