// Fixed-capacity LRU buffer pool with a pin/unpin discipline (DESIGN.md §16).
//
// The pool is the ONLY place page payloads are allowed to be RAM-resident:
// `capacity_pages` is a hard cap, which makes memory pressure a first-class
// fault domain instead of a silent overcommit. The rules, each enforced and
// property-tested (tests/pagedstore_test.cpp):
//
//  - a frame with live PageRef pins is NEVER evicted — in-flight ORAM walks
//    and trie proofs hold their pages while eviction proceeds around them;
//  - the victim is always the least-recently-used UNPINNED frame (pinned
//    frames skipped during the scan are recorded in the `evict_scan`
//    histogram — the eviction-stall signal);
//  - when every frame is pinned and one more page is needed, the pool FAILS
//    CLOSED with PoolExhaustedError rather than growing past the cap: a
//    working set of pins larger than the budget is a sizing bug the operator
//    must see, not paper over.
//
// A dirty frame is written back through the owner-supplied callback before
// its frame is reused, so eviction never loses data. Thread-safe: one mutex
// held for every operation including load/writeback callbacks (they touch
// SimFs, which has its own lock — no re-entry into the pool is allowed from
// either). Payload access through a PageRef is unlocked — the pin itself is
// what keeps the frame stable.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "common/u256.hpp"

namespace hardtape::obs {
class Registry;
}

namespace hardtape::pagedstore {

/// All frames pinned and another page needed: the hard `buffer_pool_pages`
/// cap refuses to stretch. Fail-closed by design.
class PoolExhaustedError : public HardtapeError {
 public:
  using HardtapeError::HardtapeError;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;     ///< evictions that flushed a dirty frame
  uint64_t exhausted = 0;            ///< PoolExhaustedError throws
  uint64_t peak_resident_bytes = 0;  ///< high-water of summed payload bytes
  size_t resident = 0;
  size_t pinned = 0;
};

class BufferPool {
 private:
  struct Frame;

 public:
  /// Writes a dirty frame's payload back to stable storage (called with the
  /// pool lock held; must not re-enter the pool).
  using WritebackFn = std::function<void(const u256& id, const Bytes& payload)>;

  /// `registry` (optional) exports pool counters plus the eviction-stall
  /// histogram under "<prefix>_pool_*".
  BufferPool(size_t capacity_pages, WritebackFn writeback,
             obs::Registry* registry = nullptr,
             const std::string& prefix = "pagedstore");
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII pin. While any PageRef to a frame is alive the frame cannot be
  /// evicted; destruction (or release()) unpins.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& o) noexcept { *this = std::move(o); }
    PageRef& operator=(PageRef&& o) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef() { release(); }

    explicit operator bool() const { return frame_ != nullptr; }
    const u256& id() const;
    /// Mutable payload access; call mark_dirty() after modifying.
    Bytes& data();
    const Bytes& data() const;
    void mark_dirty();
    bool dirty() const;
    void release();

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
    BufferPool* pool_ = nullptr;
    Frame* frame_ = nullptr;
  };

  /// Pins the page, loading it via `load` on a miss. Eviction may run first
  /// to make room; throws PoolExhaustedError when every frame is pinned.
  PageRef fetch(const u256& id, const std::function<Bytes()>& load);
  /// Inserts (or overwrites) a page and pins it.
  PageRef insert(const u256& id, Bytes payload, bool dirty);
  bool contains(const u256& id) const;
  /// Drops the frame, discarding dirty contents (the caller is rolling
  /// back). The frame must be unpinned; no-op when absent.
  void discard(const u256& id);

  /// Ids of all dirty frames, in id order (deterministic flush order).
  std::vector<u256> dirty_ids() const;
  /// Writes back one dirty frame and marks it clean; no-op if absent/clean.
  void writeback(const u256& id);

  size_t capacity() const { return capacity_; }
  BufferPoolStats stats() const;

 private:
  struct Frame {
    u256 id{};
    Bytes payload;
    bool dirty = false;
    uint32_t pins = 0;
    std::list<u256>::iterator lru_pos;
  };

  /// Frees one frame if at capacity. Throws PoolExhaustedError when every
  /// frame is pinned. Caller holds the lock.
  void make_room_locked();
  void evict_locked(const u256& id);
  void note_resident_locked();
  void unpin(Frame* frame);

  const size_t capacity_;
  WritebackFn writeback_;

  mutable std::mutex mu_;
  std::unordered_map<u256, std::unique_ptr<Frame>, U256Hasher> frames_;
  std::list<u256> lru_;  ///< front = coldest
  uint64_t resident_bytes_ = 0;
  BufferPoolStats stats_;

  // Optional exported instruments (stable Registry refs; null without one).
  struct Instruments;
  std::unique_ptr<Instruments> instruments_;
};

}  // namespace hardtape::pagedstore
