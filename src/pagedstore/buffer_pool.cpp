#include "pagedstore/buffer_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace hardtape::pagedstore {

struct BufferPool::Instruments {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& dirty_writebacks;
  obs::Counter& exhausted;
  obs::Histogram& evict_scan;
  obs::Gauge& resident;
  obs::Gauge& pinned;
  obs::Gauge& peak_resident_bytes;

  Instruments(obs::Registry& r, const std::string& p)
      : hits(r.counter(p + "_pool_hits", "buffer pool hits")),
        misses(r.counter(p + "_pool_misses", "buffer pool misses")),
        evictions(r.counter(p + "_pool_evictions", "frames evicted")),
        dirty_writebacks(
            r.counter(p + "_pool_dirty_writebacks", "dirty frames flushed on eviction")),
        exhausted(r.counter(p + "_pool_exhausted", "fail-closed pool exhaustions")),
        evict_scan(r.histogram(p + "_pool_evict_scan",
                               "pinned frames skipped per eviction (stall signal)")),
        resident(r.gauge(p + "_pool_resident_pages", "frames resident")),
        pinned(r.gauge(p + "_pool_pinned_pages", "frames pinned")),
        peak_resident_bytes(
            r.gauge(p + "_pool_peak_resident_bytes", "payload-byte high water")) {}
};

BufferPool::BufferPool(size_t capacity_pages, WritebackFn writeback,
                       obs::Registry* registry, const std::string& prefix)
    : capacity_(capacity_pages), writeback_(std::move(writeback)) {
  if (capacity_ == 0) throw UsageError("pagedstore: zero buffer pool capacity");
  if (registry != nullptr) {
    instruments_ = std::make_unique<Instruments>(*registry, prefix);
  }
}

BufferPool::~BufferPool() = default;

// ---------------------------------------------------------------------------
// PageRef
// ---------------------------------------------------------------------------

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    o.pool_ = nullptr;
    o.frame_ = nullptr;
  }
  return *this;
}

const u256& BufferPool::PageRef::id() const {
  if (frame_ == nullptr) throw UsageError("pagedstore: empty PageRef");
  return frame_->id;
}

Bytes& BufferPool::PageRef::data() {
  if (frame_ == nullptr) throw UsageError("pagedstore: empty PageRef");
  return frame_->payload;
}

const Bytes& BufferPool::PageRef::data() const {
  if (frame_ == nullptr) throw UsageError("pagedstore: empty PageRef");
  return frame_->payload;
}

void BufferPool::PageRef::mark_dirty() {
  if (frame_ == nullptr) throw UsageError("pagedstore: empty PageRef");
  frame_->dirty = true;
}

bool BufferPool::PageRef::dirty() const {
  if (frame_ == nullptr) throw UsageError("pagedstore: empty PageRef");
  return frame_->dirty;
}

void BufferPool::PageRef::release() {
  if (frame_ != nullptr) pool_->unpin(frame_);
  pool_ = nullptr;
  frame_ = nullptr;
}

void BufferPool::unpin(Frame* frame) {
  std::lock_guard lock(mu_);
  --frame->pins;
  if (frame->pins == 0) --stats_.pinned;
  if (instruments_) instruments_->pinned.set(static_cast<double>(stats_.pinned));
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

void BufferPool::note_resident_locked() {
  stats_.resident = frames_.size();
  stats_.peak_resident_bytes = std::max(stats_.peak_resident_bytes, resident_bytes_);
  if (instruments_) {
    instruments_->resident.set(static_cast<double>(stats_.resident));
    instruments_->peak_resident_bytes.set(
        static_cast<double>(stats_.peak_resident_bytes));
  }
}

void BufferPool::evict_locked(const u256& id) {
  const auto it = frames_.find(id);
  Frame& frame = *it->second;
  if (frame.dirty) {
    writeback_(frame.id, frame.payload);
    ++stats_.dirty_writebacks;
    if (instruments_) instruments_->dirty_writebacks.add();
  }
  resident_bytes_ -= frame.payload.size();
  lru_.erase(frame.lru_pos);
  frames_.erase(it);
  ++stats_.evictions;
  if (instruments_) instruments_->evictions.add();
}

void BufferPool::make_room_locked() {
  if (frames_.size() < capacity_) return;
  // Walk from the cold end; every pinned frame skipped is an eviction stall.
  uint64_t skipped = 0;
  for (const u256& candidate : lru_) {
    const Frame& frame = *frames_.at(candidate);
    if (frame.pins > 0) {
      ++skipped;
      continue;
    }
    if (instruments_) instruments_->evict_scan.observe(skipped);
    evict_locked(candidate);
    note_resident_locked();
    return;
  }
  ++stats_.exhausted;
  if (instruments_) {
    instruments_->exhausted.add();
    instruments_->evict_scan.observe(skipped);
  }
  throw PoolExhaustedError(
      "pagedstore: buffer pool exhausted — all " + std::to_string(capacity_) +
      " frames pinned; refusing to overcommit past buffer_pool_pages");
}

BufferPool::PageRef BufferPool::fetch(const u256& id,
                                      const std::function<Bytes()>& load) {
  std::lock_guard lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    ++stats_.misses;
    if (instruments_) instruments_->misses.add();
    make_room_locked();
    Bytes payload = load();
    auto frame = std::make_unique<Frame>();
    frame->id = id;
    frame->payload = std::move(payload);
    frame->lru_pos = lru_.insert(lru_.end(), id);
    resident_bytes_ += frame->payload.size();
    it = frames_.emplace(id, std::move(frame)).first;
    note_resident_locked();
  } else {
    ++stats_.hits;
    if (instruments_) instruments_->hits.add();
    lru_.splice(lru_.end(), lru_, it->second->lru_pos);
  }
  Frame& frame = *it->second;
  if (frame.pins++ == 0) ++stats_.pinned;
  if (instruments_) instruments_->pinned.set(static_cast<double>(stats_.pinned));
  return PageRef{this, &frame};
}

BufferPool::PageRef BufferPool::insert(const u256& id, Bytes payload, bool dirty) {
  std::lock_guard lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    make_room_locked();
    auto frame = std::make_unique<Frame>();
    frame->id = id;
    frame->lru_pos = lru_.insert(lru_.end(), id);
    it = frames_.emplace(id, std::move(frame)).first;
  } else {
    resident_bytes_ -= it->second->payload.size();
    lru_.splice(lru_.end(), lru_, it->second->lru_pos);
  }
  Frame& frame = *it->second;
  frame.payload = std::move(payload);
  frame.dirty = dirty;
  resident_bytes_ += frame.payload.size();
  note_resident_locked();
  if (frame.pins++ == 0) ++stats_.pinned;
  if (instruments_) instruments_->pinned.set(static_cast<double>(stats_.pinned));
  return PageRef{this, &frame};
}

bool BufferPool::contains(const u256& id) const {
  std::lock_guard lock(mu_);
  return frames_.contains(id);
}

void BufferPool::discard(const u256& id) {
  std::lock_guard lock(mu_);
  const auto it = frames_.find(id);
  if (it == frames_.end()) return;
  if (it->second->pins > 0) {
    throw UsageError("pagedstore: discard of a pinned frame");
  }
  resident_bytes_ -= it->second->payload.size();
  lru_.erase(it->second->lru_pos);
  frames_.erase(it);
  note_resident_locked();
}

std::vector<u256> BufferPool::dirty_ids() const {
  std::lock_guard lock(mu_);
  std::vector<u256> out;
  for (const auto& [id, frame] : frames_) {
    if (frame->dirty) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BufferPool::writeback(const u256& id) {
  std::lock_guard lock(mu_);
  const auto it = frames_.find(id);
  if (it == frames_.end() || !it->second->dirty) return;
  writeback_(it->second->id, it->second->payload);
  it->second->dirty = false;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace hardtape::pagedstore
