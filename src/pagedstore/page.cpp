#include "pagedstore/page.hpp"

#include <cstring>

#include "common/errors.hpp"
#include "crypto/keccak.hpp"

namespace hardtape::pagedstore {

namespace {

constexpr size_t kChecksumSize = 8;

void put_u16(Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t get_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t get_u32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

std::array<uint8_t, kChecksumSize> page_checksum(const u256& id,
                                                 uint64_t generation,
                                                 BytesView payload) {
  Bytes preimage;
  preimage.reserve(32 + 8 + payload.size());
  append(preimage, id.to_be_bytes_vec());
  put_u64(preimage, generation);
  append(preimage, payload);
  const H256 digest = crypto::keccak256(preimage);
  std::array<uint8_t, kChecksumSize> out{};
  std::memcpy(out.data(), digest.bytes.data(), kChecksumSize);
  return out;
}

}  // namespace

Bytes encode_page(const u256& id, uint64_t generation, BytesView payload) {
  if (payload.size() > kMaxPagePayload) {
    throw UsageError("pagedstore: page payload exceeds kMaxPagePayload");
  }
  Bytes out;
  out.reserve(kPageHeaderSize + payload.size());
  put_u32(out, kPageMagic);
  put_u16(out, kPageVersion);
  put_u16(out, 0);  // reserved
  append(out, id.to_be_bytes_vec());
  put_u64(out, generation);
  put_u32(out, static_cast<uint32_t>(payload.size()));
  const auto checksum = page_checksum(id, generation, payload);
  out.insert(out.end(), checksum.begin(), checksum.end());
  append(out, payload);
  return out;
}

std::optional<DecodedPage> decode_page(BytesView raw) {
  if (raw.size() < kPageHeaderSize) return std::nullopt;
  const uint8_t* p = raw.data();
  if (get_u32(p) != kPageMagic) return std::nullopt;
  if (get_u16(p + 4) != kPageVersion) return std::nullopt;
  DecodedPage page;
  page.id = u256::from_be_bytes(BytesView{p + 8, 32});
  page.generation = get_u64(p + 40);
  const uint32_t len = get_u32(p + 48);
  if (len > kMaxPagePayload) return std::nullopt;
  if (raw.size() != kPageHeaderSize + len) return std::nullopt;
  const BytesView payload{p + kPageHeaderSize, len};
  const auto expect = page_checksum(page.id, page.generation, payload);
  if (!std::equal(expect.begin(), expect.end(), p + 52)) return std::nullopt;
  page.payload.assign(payload.begin(), payload.end());
  return page;
}

}  // namespace hardtape::pagedstore
