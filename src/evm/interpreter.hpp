// The EVM interpreter — semantic core shared by every execution role.
//
// One interpreter, two timing skins (DESIGN.md §6): the "Geth role" (software
// node baseline) and the HEVM (hardware pre-executor) both execute this
// interpreter; they differ in the attached cost models and memory-hierarchy
// simulation, which hook in through ExecutionObserver. Trace equality between
// the two roles is the §VI-B correctness experiment.
//
// Supported ISA: the full Cancun-era opcode set (PUSH0, MCOPY, TLOAD/TSTORE,
// EIP-2929 warm/cold gas, EIP-2200/3529 SSTORE gas and refunds, EIP-150
// 63/64 forwarding, EIP-3860 initcode limits, EIP-6780 SELFDESTRUCT).
// Precompiles: ecrecover (0x1), sha256 (0x2), identity (0x4).
#pragma once

#include "evm/stack_memory.hpp"
#include "evm/trace.hpp"
#include "evm/types.hpp"
#include "state/overlay.hpp"

namespace hardtape::evm {

class Interpreter {
 public:
  Interpreter(state::OverlayState& state, BlockContext block)
      : state_(state), block_(std::move(block)) {}

  /// Attach an observer (tracer / HEVM cost model). Not owned; may be null.
  void set_observer(ExecutionObserver* observer) { observer_ = observer; }

  /// Hard cap on one frame's Memory size in bytes; exceeding it aborts the
  /// bundle with kMemoryOverflow. Models the paper's rule that a frame
  /// reaching half of the 1 MB layer-2 memory is treated as an attack
  /// (Section IV-B). Zero disables the check (the Geth role).
  void set_frame_memory_limit(uint64_t bytes) { frame_memory_limit_ = bytes; }

  /// Executes a complete transaction against the overlay: nonce and balance
  /// checks, intrinsic gas, execution, refund and fee settlement.
  TxResult execute_transaction(const Transaction& tx);

  /// Low-level message call (exposed for tests and precompile benches).
  struct Message {
    Address code_address{};  ///< account whose code runs
    Address recipient{};     ///< storage/balance context ("address" opcode)
    Address sender{};
    Address origin{};
    u256 value{};
    u256 gas_price{1};
    Bytes input{};
    uint64_t gas = 0;
    int depth = 0;
    bool is_static = false;
    // Creation:
    bool is_create = false;
    Bytes init_code{};
  };
  CallResult call(const Message& msg);

  const BlockContext& block() const { return block_; }
  state::OverlayState& state() { return state_; }

 private:
  struct Frame;

  CallResult run_frame(const Message& msg, BytesView code);
  CallResult run_create(const Message& msg);
  CallResult run_precompile(const Message& msg);
  static bool is_precompile(const Address& addr);

  // Opcode group handlers returning false when the frame must terminate
  // (status recorded in the frame).
  void do_call_family(Frame& f, Opcode op);
  void do_create_family(Frame& f, Opcode op);
  void do_sstore(Frame& f);

  state::OverlayState& state_;
  BlockContext block_;
  ExecutionObserver* observer_ = nullptr;
  uint64_t frame_memory_limit_ = 0;
  bool bundle_aborted_ = false;  // sticky kMemoryOverflow
};

}  // namespace hardtape::evm
