// The EVM interpreter — semantic core shared by every execution role.
//
// One interpreter, two timing skins (DESIGN.md §6): the "Geth role" (software
// node baseline) and the HEVM (hardware pre-executor) both execute this
// interpreter; they differ in the attached cost models and memory-hierarchy
// simulation, which hook in through ExecutionObserver. Trace equality between
// the two roles is the §VI-B correctness experiment.
//
// Supported ISA: the full Cancun-era opcode set (PUSH0, MCOPY, TLOAD/TSTORE,
// EIP-2929 warm/cold gas, EIP-2200/3529 SSTORE gas and refunds, EIP-150
// 63/64 forwarding, EIP-3860 initcode limits, EIP-6780 SELFDESTRUCT).
// Precompiles: ecrecover (0x1), sha256 (0x2), identity (0x4).
#pragma once

#include "evm/stack_memory.hpp"
#include "evm/trace.hpp"
#include "evm/types.hpp"
#include "state/overlay.hpp"

namespace hardtape::evm {

namespace fastpath {
struct DecodedCode;  // fastpath.hpp
}

/// Which execution engine runs the frames of this interpreter.
///
///  - kReference: the cycle-accurate switch dispatch loop. The semantic
///    ground truth and the accounting layer for the paper's figures.
///  - kFast: pre-decoded flat instruction stream with basic-block gas and
///    memory-expansion precomputation, computed-goto dispatch, in-place limb
///    arithmetic and superinstruction fusion (DESIGN.md §14). Bit-identical
///    results, gas remainders and observer event streams by construction:
///    with an observer attached it runs a per-opcode decoded mode, and any
///    basic-block precheck failure bails out to the reference loop.
enum class EngineKind : uint8_t { kReference, kFast };

class Interpreter {
 public:
  Interpreter(state::OverlayState& state, BlockContext block)
      : state_(state), block_(std::move(block)) {}

  /// Attach an observer (tracer / HEVM cost model). Not owned; may be null.
  void set_observer(ExecutionObserver* observer) { observer_ = observer; }

  /// Select the execution engine for subsequent frames (default: reference).
  void set_engine(EngineKind engine) { engine_ = engine; }
  EngineKind engine() const { return engine_; }

  /// Hard cap on one frame's Memory size in bytes; exceeding it aborts the
  /// bundle with kMemoryOverflow. Models the paper's rule that a frame
  /// reaching half of the 1 MB layer-2 memory is treated as an attack
  /// (Section IV-B). Zero disables the check (the Geth role).
  void set_frame_memory_limit(uint64_t bytes) { frame_memory_limit_ = bytes; }

  /// Executes a complete transaction against the overlay: nonce and balance
  /// checks, intrinsic gas, execution, refund and fee settlement.
  TxResult execute_transaction(const Transaction& tx);

  /// Low-level message call (exposed for tests and precompile benches).
  struct Message {
    Address code_address{};  ///< account whose code runs
    Address recipient{};     ///< storage/balance context ("address" opcode)
    Address sender{};
    Address origin{};
    u256 value{};
    u256 gas_price{1};
    Bytes input{};
    uint64_t gas = 0;
    int depth = 0;
    bool is_static = false;
    // Creation:
    bool is_create = false;
    Bytes init_code{};
  };
  CallResult call(const Message& msg);

  /// Final state of the outermost frame, captured independently of observers
  /// (CallResult only exposes status/output/gas). Used by the differential
  /// fuzz to compare stack and memory across engines.
  struct FrameDebug {
    std::vector<u256> stack;  ///< bottom first
    Bytes memory;
    VmStatus status = VmStatus::kSuccess;
    uint64_t gas_left = 0;
  };
  /// When non-null, every frame exit overwrites *debug; after call() returns
  /// it holds the outermost frame (which exits last). Not owned; may be null.
  void set_frame_debug(FrameDebug* debug) { frame_debug_ = debug; }

  const BlockContext& block() const { return block_; }
  state::OverlayState& state() { return state_; }

 private:
  struct Frame;

  CallResult run_frame(const Message& msg, BytesView code);
  /// The reference switch loop: executes f from its current pc until the
  /// frame halts. Also the fast engine's bail-out continuation — it must be
  /// callable on a frame the decoded loop has partially executed.
  void dispatch_loop(Frame& f);
  /// The decoded fast loop (fastpath.cpp). Returns false when it bailed out
  /// before executing anything of the block/charge group at f.pc; the caller
  /// then finishes the frame with dispatch_loop.
  template <bool kObserved>
  bool run_decoded(Frame& f, const fastpath::DecodedCode& dc);
  CallResult run_create(const Message& msg);
  CallResult run_precompile(const Message& msg);
  static bool is_precompile(const Address& addr);

  // Opcode group handlers returning false when the frame must terminate
  // (status recorded in the frame).
  void do_call_family(Frame& f, Opcode op);
  void do_create_family(Frame& f, Opcode op);
  void do_sstore(Frame& f);

  // Opcode bodies shared by both engines (defined inline in frame.hpp):
  // everything with dynamic gas, state access, or observer events. Each runs
  // after its opcode's static gas has been charged.
  void op_exp(Frame& f);
  void op_sha3(Frame& f);
  void op_balance(Frame& f);
  void op_calldataload(Frame& f);
  void op_calldatacopy(Frame& f);
  void op_codecopy(Frame& f);
  void op_extcodesize(Frame& f);
  void op_extcodecopy(Frame& f);
  void op_returndatacopy(Frame& f);
  void op_extcodehash(Frame& f);
  void op_blockhash(Frame& f);
  void op_mload(Frame& f);
  void op_mstore(Frame& f);
  void op_mstore8(Frame& f);
  void op_sload(Frame& f);
  void op_tload(Frame& f);
  void op_tstore(Frame& f);
  void op_mcopy(Frame& f);
  void op_log(Frame& f, size_t topic_count);
  void op_return_revert(Frame& f, bool is_revert);
  void op_selfdestruct(Frame& f);

  state::OverlayState& state_;
  BlockContext block_;
  ExecutionObserver* observer_ = nullptr;
  EngineKind engine_ = EngineKind::kReference;
  FrameDebug* frame_debug_ = nullptr;
  uint64_t frame_memory_limit_ = 0;
  bool bundle_aborted_ = false;  // sticky kMemoryOverflow
};

extern template bool Interpreter::run_decoded<true>(Frame&, const fastpath::DecodedCode&);
extern template bool Interpreter::run_decoded<false>(Frame&, const fastpath::DecodedCode&);

}  // namespace hardtape::evm
