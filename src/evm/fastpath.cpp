// The fast execution engine: the pre-decoder and the decoded dispatch loop
// (DESIGN.md §14). The reference switch loop in interpreter.cpp stays the
// semantic ground truth; everything here must be bit-identical to it — gas
// remainders, status, observer event streams — or bail out to it untouched.

#include "evm/fastpath.hpp"

#include "evm/frame.hpp"

// Computed-goto dispatch needs the GNU labels-as-values extension; MSVC and
// friends fall back to a switch in the same loop shape.
#if defined(__GNUC__) || defined(__clang__)
#define HARDTAPE_COMPUTED_GOTO 1
#endif

namespace hardtape::evm {

namespace fastpath {

namespace {

FastOp classify(uint8_t byte) {
  const auto op = static_cast<Opcode>(byte);
  switch (op) {
    case Opcode::STOP: return FastOp::kStop;
    case Opcode::ADD: return FastOp::kAdd;
    case Opcode::MUL: return FastOp::kMul;
    case Opcode::SUB: return FastOp::kSub;
    case Opcode::DIV: return FastOp::kDiv;
    case Opcode::SDIV: return FastOp::kSdiv;
    case Opcode::MOD: return FastOp::kMod;
    case Opcode::SMOD: return FastOp::kSmod;
    case Opcode::ADDMOD: return FastOp::kAddmod;
    case Opcode::MULMOD: return FastOp::kMulmod;
    case Opcode::EXP: return FastOp::kExp;
    case Opcode::SIGNEXTEND: return FastOp::kSignextend;
    case Opcode::LT: return FastOp::kLt;
    case Opcode::GT: return FastOp::kGt;
    case Opcode::SLT: return FastOp::kSlt;
    case Opcode::SGT: return FastOp::kSgt;
    case Opcode::EQ: return FastOp::kEq;
    case Opcode::ISZERO: return FastOp::kIszero;
    case Opcode::AND: return FastOp::kAnd;
    case Opcode::OR: return FastOp::kOr;
    case Opcode::XOR: return FastOp::kXor;
    case Opcode::NOT: return FastOp::kNot;
    case Opcode::BYTE: return FastOp::kByte;
    case Opcode::SHL: return FastOp::kShl;
    case Opcode::SHR: return FastOp::kShr;
    case Opcode::SAR: return FastOp::kSar;
    case Opcode::SHA3: return FastOp::kSha3;
    case Opcode::ADDRESS: return FastOp::kAddressOp;
    case Opcode::BALANCE: return FastOp::kBalance;
    case Opcode::ORIGIN: return FastOp::kOrigin;
    case Opcode::CALLER: return FastOp::kCaller;
    case Opcode::CALLVALUE: return FastOp::kCallvalue;
    case Opcode::CALLDATALOAD: return FastOp::kCalldataload;
    case Opcode::CALLDATASIZE: return FastOp::kCalldatasize;
    case Opcode::CALLDATACOPY: return FastOp::kCalldatacopy;
    case Opcode::CODESIZE: return FastOp::kCodesize;
    case Opcode::CODECOPY: return FastOp::kCodecopy;
    case Opcode::GASPRICE: return FastOp::kGasprice;
    case Opcode::EXTCODESIZE: return FastOp::kExtcodesize;
    case Opcode::EXTCODECOPY: return FastOp::kExtcodecopy;
    case Opcode::RETURNDATASIZE: return FastOp::kReturndatasize;
    case Opcode::RETURNDATACOPY: return FastOp::kReturndatacopy;
    case Opcode::EXTCODEHASH: return FastOp::kExtcodehash;
    case Opcode::BLOCKHASH: return FastOp::kBlockhash;
    case Opcode::COINBASE: return FastOp::kCoinbase;
    case Opcode::TIMESTAMP: return FastOp::kTimestamp;
    case Opcode::NUMBER: return FastOp::kNumber;
    case Opcode::PREVRANDAO: return FastOp::kPrevrandao;
    case Opcode::GASLIMIT: return FastOp::kGaslimit;
    case Opcode::CHAINID: return FastOp::kChainid;
    case Opcode::SELFBALANCE: return FastOp::kSelfbalance;
    case Opcode::BASEFEE: return FastOp::kBasefee;
    case Opcode::POP: return FastOp::kPop;
    case Opcode::MLOAD: return FastOp::kMload;
    case Opcode::MSTORE: return FastOp::kMstore;
    case Opcode::MSTORE8: return FastOp::kMstore8;
    case Opcode::SLOAD: return FastOp::kSload;
    case Opcode::SSTORE: return FastOp::kSstore;
    case Opcode::JUMP: return FastOp::kJump;
    case Opcode::JUMPI: return FastOp::kJumpi;
    case Opcode::PC: return FastOp::kPc;
    case Opcode::MSIZE: return FastOp::kMsize;
    case Opcode::GAS: return FastOp::kGas;
    case Opcode::JUMPDEST: return FastOp::kJumpdest;
    case Opcode::TLOAD: return FastOp::kTload;
    case Opcode::TSTORE: return FastOp::kTstore;
    case Opcode::MCOPY: return FastOp::kMcopy;
    case Opcode::LOG0:
    case Opcode::LOG1:
    case Opcode::LOG2:
    case Opcode::LOG3:
    case Opcode::LOG4: return FastOp::kLog;
    case Opcode::CREATE: return FastOp::kCreate;
    case Opcode::CALL: return FastOp::kCall;
    case Opcode::CALLCODE: return FastOp::kCallcode;
    case Opcode::RETURN: return FastOp::kReturn;
    case Opcode::DELEGATECALL: return FastOp::kDelegatecall;
    case Opcode::CREATE2: return FastOp::kCreate2;
    case Opcode::STATICCALL: return FastOp::kStaticcall;
    case Opcode::REVERT: return FastOp::kRevert;
    case Opcode::INVALID: return FastOp::kInvalid;
    case Opcode::SELFDESTRUCT: return FastOp::kSelfdestruct;
    default:
      if (is_push(byte)) return FastOp::kPush;
      if (byte >= 0x80 && byte <= 0x8f) return FastOp::kDup;
      if (byte >= 0x90 && byte <= 0x9f) return FastOp::kSwap;
      return FastOp::kUndefined;
  }
}

bool is_terminator(FastOp op) {
  switch (op) {
    case FastOp::kStop:
    case FastOp::kImplicitStop:
    case FastOp::kJump:
    case FastOp::kJumpi:
    case FastOp::kPushJump:
    case FastOp::kPushJumpi:
    case FastOp::kReturn:
    case FastOp::kRevert:
    case FastOp::kInvalid:
    case FastOp::kSelfdestruct:
    case FastOp::kUndefined:
      return true;
    default:
      return false;
  }
}

// Checkpoints end a charge group (inclusive): dynamic gas, world-state
// access, or an observable read of gas / memory size.
bool is_checkpoint(FastOp op) {
  switch (op) {
    case FastOp::kExp:
    case FastOp::kSha3:
    case FastOp::kBalance:
    case FastOp::kCalldatacopy:
    case FastOp::kCodecopy:
    case FastOp::kExtcodesize:
    case FastOp::kExtcodecopy:
    case FastOp::kReturndatacopy:
    case FastOp::kExtcodehash:
    case FastOp::kMload:
    case FastOp::kMstore:
    case FastOp::kMstore8:
    case FastOp::kSload:
    case FastOp::kSstore:
    case FastOp::kTstore:
    case FastOp::kMcopy:
    case FastOp::kLog:
    case FastOp::kMsize:
    case FastOp::kGas:
    case FastOp::kDupMload:
    case FastOp::kCreate:
    case FastOp::kCall:
    case FastOp::kCallcode:
    case FastOp::kDelegatecall:
    case FastOp::kCreate2:
    case FastOp::kStaticcall:
      return true;
    default:
      return false;
  }
}

/// Peephole fusion: tries to merge the freshly decoded `cur` into `prev`.
/// Legal because `prev` (PUSH/DUP) never ends a block, `cur` is never a
/// JUMPDEST, and no valid jump can land on `cur.pc` (it is not a JUMPDEST).
bool try_fuse(Instr& prev, const Instr& cur) {
  if (prev.op == FastOp::kPush) {
    switch (cur.op) {
      case FastOp::kJump:
        prev.op = FastOp::kPushJump;
        prev.t_req = 0;
        prev.t_delta = 0;
        prev.t_peak = 1;
        break;
      case FastOp::kJumpi:
        prev.op = FastOp::kPushJumpi;
        prev.t_req = 1;
        prev.t_delta = -1;
        prev.t_peak = 1;
        break;
      case FastOp::kAdd:
        prev.op = FastOp::kPushAdd;
        prev.t_req = 1;
        prev.t_delta = 0;
        prev.t_peak = 1;
        break;
      case FastOp::kMload:
        if (!prev.imm.fits_u64() || prev.imm.as_u64() + 32 > kFuseStaticMemCap)
          return false;
        prev.op = FastOp::kPushMloadS;
        prev.t_req = 0;
        prev.t_delta = 1;
        prev.t_peak = 1;
        break;
      case FastOp::kMstore:
        if (!prev.imm.fits_u64() || prev.imm.as_u64() + 32 > kFuseStaticMemCap)
          return false;
        prev.op = FastOp::kPushMstoreS;
        prev.t_req = 1;
        prev.t_delta = -1;
        prev.t_peak = 1;
        break;
      default:
        return false;
    }
  } else if (prev.op == FastOp::kDup && cur.op == FastOp::kMload) {
    prev.op = FastOp::kDupMload;
    prev.t_req = static_cast<int16_t>(prev.aux + 1);
    prev.t_delta = 1;
    prev.t_peak = 1;
  } else {
    return false;
  }
  prev.static_gas = static_cast<uint16_t>(prev.static_gas + cur.static_gas);
  return true;
}

}  // namespace

DecodedCode decode(BytesView code, bool fuse) {
  DecodedCode dc;
  dc.pc_to_instr.assign(code.size(), kNoTarget);
  const std::vector<bool> jumpdests = analyze_jumpdests(code);

  // Pass 1: linear scan, immediate pre-parse, peephole fusion.
  for (uint64_t pc = 0; pc < code.size();) {
    const uint8_t byte = code[pc];
    const OpInfo& info = opcode_info(byte);
    Instr ins;
    ins.byte = byte;
    ins.pc = pc;
    ins.op = info.defined ? classify(byte) : FastOp::kUndefined;
    ins.stack_in = info.stack_in;
    ins.stack_out = info.stack_out;
    ins.static_gas = info.base_gas;
    ins.t_req = info.stack_in;
    ins.t_delta = static_cast<int8_t>(info.stack_out - info.stack_in);
    ins.t_peak = ins.t_delta;
    if (ins.op == FastOp::kDup) {
      ins.aux = static_cast<uint8_t>(byte - 0x80);
    } else if (ins.op == FastOp::kSwap) {
      ins.aux = static_cast<uint8_t>(byte - 0x90 + 1);
    } else if (ins.op == FastOp::kLog) {
      ins.aux = static_cast<uint8_t>(byte - 0xa0);
    } else if (ins.op == FastOp::kPush) {
      // Same truncation semantics as the reference loop: immediate bytes
      // past the end of code read as zero.
      const size_t n = push_size(byte);
      Bytes immediate(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t idx = pc + 1 + i;
        if (idx < code.size()) immediate[i] = code[idx];
      }
      ins.imm = u256::from_be_bytes(immediate);
    }
    pc += 1 + info.immediate_size;

    if (fuse && !dc.instrs.empty() && ins.op != FastOp::kJumpdest &&
        try_fuse(dc.instrs.back(), ins)) {
      continue;  // merged into the previous instruction
    }
    dc.pc_to_instr[ins.pc] = static_cast<uint32_t>(dc.instrs.size());
    dc.instrs.push_back(ins);
  }

  // Running off the end of code halts like STOP, but without an on_step
  // event or a gas charge — a dedicated pseudo-instruction.
  Instr stop;
  stop.op = FastOp::kImplicitStop;
  stop.pc = code.size();
  dc.instrs.push_back(stop);

  // Pass 2: pre-resolve fused jump targets; invalid destinations keep
  // kNoTarget and fail kBadJumpDestination at runtime.
  for (Instr& ins : dc.instrs) {
    if (ins.op != FastOp::kPushJump && ins.op != FastOp::kPushJumpi) continue;
    if (ins.imm.fits_u64() && ins.imm.as_u64() < code.size() &&
        jumpdests[ins.imm.as_u64()]) {
      ins.target = dc.pc_to_instr[ins.imm.as_u64()];
    }
  }

  // Pass 3a: mark basic-block and charge-group starts.
  bool next_starts_block = true;
  for (Instr& ins : dc.instrs) {
    if (next_starts_block || ins.op == FastOp::kJumpdest) {
      ins.block_start = true;
      ins.group_start = true;
    }
    next_starts_block = is_terminator(ins.op);
  }
  // Checkpoints end a group; the following instruction starts a new one.
  for (size_t i = 1; i < dc.instrs.size(); ++i) {
    if (is_checkpoint(dc.instrs[i - 1].op)) dc.instrs[i].group_start = true;
  }

  // Pass 3b: fold stack triplets per block, sum static gas and static
  // memory needs per group.
  for (size_t b = 0; b < dc.instrs.size();) {
    Instr& head = dc.instrs[b];
    int64_t h = 0;
    int64_t req = 0;
    int64_t peak = 0;
    size_t e = b;
    for (; e < dc.instrs.size(); ++e) {
      if (e != b && dc.instrs[e].block_start) break;
      const Instr& ins = dc.instrs[e];
      req = std::max(req, static_cast<int64_t>(ins.t_req) - h);
      peak = std::max(peak, h + ins.t_peak);
      h += ins.t_delta;
    }
    head.block_req = static_cast<uint32_t>(req);
    head.block_peak = static_cast<int32_t>(peak);
    b = e;
  }
  for (size_t g = 0; g < dc.instrs.size();) {
    Instr& head = dc.instrs[g];
    uint64_t gas = 0;
    uint64_t mem_words = 0;
    size_t e = g;
    for (; e < dc.instrs.size(); ++e) {
      const Instr& ins = dc.instrs[e];
      if (e != g && ins.group_start) break;
      gas += ins.static_gas;
      if (ins.op == FastOp::kPushMloadS || ins.op == FastOp::kPushMstoreS) {
        mem_words =
            std::max(mem_words, EvmMemory::word_count(ins.imm.as_u64() + 32));
      }
      if (is_checkpoint(ins.op) || is_terminator(ins.op)) {
        ++e;
        break;
      }
    }
    head.group_gas = gas;
    head.group_mem_words = mem_words;
    g = e;
  }

  return dc;
}

}  // namespace fastpath

// ---------------------------------------------------------------------------
// The decoded dispatch loop
// ---------------------------------------------------------------------------

// Two instantiations of one body: kObserved mirrors the reference loop
// opcode-at-a-time (identical on_step stream and check order, but with
// pre-parsed immediates and no opcode-table lookups); !kObserved runs the
// grouped full-speed mode with superinstructions. Returns false only when it
// bailed out before mutating anything of the block/charge group at f.pc.
template <bool kObserved>
bool Interpreter::run_decoded(Frame& f, const fastpath::DecodedCode& dc) {
  using fastpath::FastOp;
  using fastpath::Instr;
  using fastpath::kNoTarget;

  // A previously aborted bundle fails the frame after its first opcode runs
  // (reference epilogue); bail so the reference loop reproduces that per-op.
  if (bundle_aborted_) return false;

  const Message& msg = f.msg;
  const Instr* const instrs = dc.instrs.data();
  const uint32_t* const pc2i = dc.pc_to_instr.data();
  const Instr* ins = nullptr;
  size_t i = 0;

  // The operand-stack top lives in a register (`sp`, one past the top
  // element); Stack::size_ is only written back around calls that go through
  // the Stack interface (op_* helpers, sub-frames, FrameDebug) and on every
  // exit. Block-level validation makes the raw accesses safe.
  u256* const sbase = f.stack.base();
  u256* sp = sbase + f.stack.size();
#define HARDTAPE_SYNC_STACK() f.stack.set_size(static_cast<size_t>(sp - sbase))
#define HARDTAPE_RELOAD_STACK() sp = sbase + f.stack.size()

#ifdef HARDTAPE_COMPUTED_GOTO
  static const void* const kDispatch[] = {
#define HARDTAPE_X(name) &&lbl_##name,
      HARDTAPE_FASTOP_LIST(HARDTAPE_X)
#undef HARDTAPE_X
  };
#define HARDTAPE_DISPATCH() goto* kDispatch[static_cast<uint8_t>(ins->op)]
#else
#define HARDTAPE_DISPATCH() goto dispatch_switch
#endif

  goto enter_ins;

next_ins:
  ++i;
enter_ins:
  ins = &instrs[i];
  if constexpr (kObserved) {
    // Per-opcode mode: the reference loop's check order, bit for bit.
    if (ins->op == FastOp::kImplicitStop) {
      f.halted = true;  // running off the end: no on_step, no charge
      HARDTAPE_SYNC_STACK();
      return true;
    }
    const auto height = static_cast<size_t>(sp - sbase);
    observer_->on_step({ins->pc, ins->byte, f.gas, msg.depth, height,
                        height == 0 ? u256{} : sp[-1]});
    if (ins->op == FastOp::kUndefined) {
      HARDTAPE_SYNC_STACK();
      f.fail(VmStatus::kUndefinedInstruction);
      return true;
    }
    if (height < ins->stack_in) {
      HARDTAPE_SYNC_STACK();
      f.fail(VmStatus::kStackUnderflow);
      return true;
    }
    if (height - ins->stack_in + ins->stack_out > Stack::kLimit) {
      HARDTAPE_SYNC_STACK();
      f.fail(VmStatus::kStackOverflow);
      return true;
    }
    if (!f.charge(ins->static_gas)) {
      HARDTAPE_SYNC_STACK();
      return true;
    }
  } else {
    if (ins->block_start) {
      // Conservative block-level stack validation; a miss bails out and the
      // reference loop reports the precise per-opcode failure.
      const auto h = static_cast<int64_t>(sp - sbase);
      if (h < static_cast<int64_t>(ins->block_req) ||
          h + ins->block_peak > static_cast<int64_t>(Stack::kLimit)) {
        f.pc = ins->pc;
        HARDTAPE_SYNC_STACK();
        return false;
      }
    }
    if (ins->group_start) {
      uint64_t need = ins->group_gas;
      uint64_t expansion = 0;
      const uint64_t cur_words = EvmMemory::word_count(f.memory.size());
      if (ins->group_mem_words > cur_words) {
        expansion = memory_gas(ins->group_mem_words) - memory_gas(cur_words);
        need += expansion;
      }
      if (f.gas < need) {
        // Nothing of this group has executed; the reference loop charges
        // per opcode and fails on exactly the right one.
        f.pc = ins->pc;
        HARDTAPE_SYNC_STACK();
        return false;
      }
      f.gas -= need;
      if (expansion != 0) {
        f.memory.expand(0, ins->group_mem_words * 32);
        if (frame_memory_limit_ != 0 && f.memory.size() > frame_memory_limit_) {
          HARDTAPE_SYNC_STACK();
          f.fail(VmStatus::kMemoryOverflow);
          bundle_aborted_ = true;
          return true;
        }
      }
    }
  }
  HARDTAPE_DISPATCH();

#ifndef HARDTAPE_COMPUTED_GOTO
dispatch_switch:
  switch (ins->op) {
#define HARDTAPE_X(name) \
  case FastOp::k##name: \
    goto lbl_##name;
    HARDTAPE_FASTOP_LIST(HARDTAPE_X)
#undef HARDTAPE_X
    case FastOp::kCount:
      break;
  }
  HARDTAPE_SYNC_STACK();
  f.fail(VmStatus::kUndefinedInstruction);
  return true;
#endif

  // --- terminators ---
lbl_Stop:
  f.halted = true;
  goto post_check;
lbl_ImplicitStop:
  f.halted = true;  // unobserved path (observed handles it in the prologue)
  HARDTAPE_SYNC_STACK();
  return true;
lbl_Jump: {
  const u256 dest = *--sp;
  if (!dest.fits_u64() || dest.as_u64() >= f.code.size() ||
      !f.valid_jumpdests[dest.as_u64()]) {
    f.fail(VmStatus::kBadJumpDestination);
    goto post_check;
  }
  i = pc2i[dest.as_u64()];
  goto enter_ins;
}
lbl_Jumpi: {
  const u256 dest = *--sp, condition = *--sp;
  if (condition.is_zero()) goto next_ins;
  if (!dest.fits_u64() || dest.as_u64() >= f.code.size() ||
      !f.valid_jumpdests[dest.as_u64()]) {
    f.fail(VmStatus::kBadJumpDestination);
    goto post_check;
  }
  i = pc2i[dest.as_u64()];
  goto enter_ins;
}
lbl_PushJump:
  if (ins->target == kNoTarget) {
    f.fail(VmStatus::kBadJumpDestination);
    goto post_check;
  }
  i = ins->target;
  goto enter_ins;
lbl_PushJumpi:
  if (sp[-1].is_zero()) {
    --sp;
    goto next_ins;
  }
  --sp;
  if (ins->target == kNoTarget) {
    f.fail(VmStatus::kBadJumpDestination);
    goto post_check;
  }
  i = ins->target;
  goto enter_ins;
lbl_Return:
  HARDTAPE_SYNC_STACK();
  op_return_revert(f, false);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Revert:
  HARDTAPE_SYNC_STACK();
  op_return_revert(f, true);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Invalid:
  f.fail(VmStatus::kInvalidInstruction);
  goto post_check;
lbl_Selfdestruct:
  HARDTAPE_SYNC_STACK();
  op_selfdestruct(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Undefined:
  f.fail(VmStatus::kUndefinedInstruction);
  goto post_check;

  // --- arithmetic / comparison / bitwise (in-place where the op allows) ---
lbl_Add:
  sp[-2].add_in_place(sp[-1]);
  --sp;
  goto next_ins;
lbl_Mul: {
  const u256 r = sp[-1] * sp[-2];
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Sub:
  // EVM SUB is top - second; rsub writes (argument - *this) into *this.
  sp[-2].rsub_in_place(sp[-1]);
  --sp;
  goto next_ins;
lbl_Div: {
  const u256 r = sp[-1] / sp[-2];
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Sdiv: {
  const u256 r = u256::sdiv(sp[-1], sp[-2]);
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Mod: {
  const u256 r = sp[-1] % sp[-2];
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Smod: {
  const u256 r = u256::smod(sp[-1], sp[-2]);
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Addmod: {
  const u256 r = u256::addmod(sp[-1], sp[-2], sp[-3]);
  --sp;
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Mulmod: {
  const u256 r = u256::mulmod(sp[-1], sp[-2], sp[-3]);
  --sp;
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Signextend: {
  const u256 r = u256::signextend(sp[-1], sp[-2]);
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Lt: {
  const bool r = sp[-1] < sp[-2];
  --sp;
  sp[-1] = u256{r ? 1u : 0u};
  goto next_ins;
}
lbl_Gt: {
  const bool r = sp[-1] > sp[-2];
  --sp;
  sp[-1] = u256{r ? 1u : 0u};
  goto next_ins;
}
lbl_Slt: {
  const bool r = u256::slt(sp[-1], sp[-2]);
  --sp;
  sp[-1] = u256{r ? 1u : 0u};
  goto next_ins;
}
lbl_Sgt: {
  const bool r = u256::slt(sp[-2], sp[-1]);
  --sp;
  sp[-1] = u256{r ? 1u : 0u};
  goto next_ins;
}
lbl_Eq: {
  const bool r = sp[-1] == sp[-2];
  --sp;
  sp[-1] = u256{r ? 1u : 0u};
  goto next_ins;
}
lbl_Iszero:
  sp[-1] = u256{sp[-1].is_zero() ? 1u : 0u};
  goto next_ins;
lbl_And:
  sp[-2].and_in_place(sp[-1]);
  --sp;
  goto next_ins;
lbl_Or:
  sp[-2].or_in_place(sp[-1]);
  --sp;
  goto next_ins;
lbl_Xor:
  sp[-2].xor_in_place(sp[-1]);
  --sp;
  goto next_ins;
lbl_Not:
  sp[-1].not_in_place();
  goto next_ins;
lbl_Byte: {
  const u256 r = u256::byte(sp[-1], sp[-2]);
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Shl: {
  const u256& shift = sp[-1];
  const u256 r = shift >= u256{256}
                     ? u256{}
                     : sp[-2] << static_cast<unsigned>(shift.as_u64());
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Shr: {
  const u256& shift = sp[-1];
  const u256 r = shift >= u256{256}
                     ? u256{}
                     : sp[-2] >> static_cast<unsigned>(shift.as_u64());
  --sp;
  sp[-1] = r;
  goto next_ins;
}
lbl_Sar: {
  const u256 r = u256::sar(sp[-2], sp[-1]);
  --sp;
  sp[-1] = r;
  goto next_ins;
}

  // --- environment / block context (pure pushes) ---
lbl_AddressOp:
  *sp++ = msg.recipient.to_u256();
  goto next_ins;
lbl_Origin:
  *sp++ = msg.origin.to_u256();
  goto next_ins;
lbl_Caller:
  *sp++ = msg.sender.to_u256();
  goto next_ins;
lbl_Callvalue:
  *sp++ = msg.value;
  goto next_ins;
lbl_Calldatasize:
  *sp++ = u256{msg.input.size()};
  goto next_ins;
lbl_Codesize:
  *sp++ = u256{f.code.size()};
  goto next_ins;
lbl_Gasprice:
  *sp++ = msg.gas_price;
  goto next_ins;
lbl_Returndatasize:
  *sp++ = u256{f.return_data.size()};
  goto next_ins;
lbl_Coinbase:
  *sp++ = block_.coinbase.to_u256();
  goto next_ins;
lbl_Timestamp:
  *sp++ = u256{block_.timestamp};
  goto next_ins;
lbl_Number:
  *sp++ = u256{block_.number};
  goto next_ins;
lbl_Prevrandao:
  *sp++ = block_.prev_randao;
  goto next_ins;
lbl_Gaslimit:
  *sp++ = u256{block_.gas_limit};
  goto next_ins;
lbl_Chainid:
  *sp++ = block_.chain_id;
  goto next_ins;
lbl_Selfbalance:
  *sp++ = state_.balance(msg.recipient);
  goto next_ins;
lbl_Basefee:
  *sp++ = block_.base_fee;
  goto next_ins;

  // --- stack / flow (pure) ---
lbl_Pop:
  --sp;
  goto next_ins;
lbl_Jumpdest:
  goto next_ins;
lbl_Pc:
  *sp++ = u256{ins->pc};
  goto next_ins;
lbl_Push:
  *sp++ = ins->imm;
  goto next_ins;
lbl_Dup:
  *sp = sp[-1 - ins->aux];
  ++sp;
  goto next_ins;
lbl_Swap:
  std::swap(sp[-1], sp[-1 - ins->aux]);
  goto next_ins;
lbl_Calldataload:
  HARDTAPE_SYNC_STACK();
  op_calldataload(f);
  HARDTAPE_RELOAD_STACK();
  goto next_ins;
lbl_Blockhash:
  HARDTAPE_SYNC_STACK();
  op_blockhash(f);
  HARDTAPE_RELOAD_STACK();
  goto next_ins;
lbl_Tload:
  HARDTAPE_SYNC_STACK();
  op_tload(f);
  HARDTAPE_RELOAD_STACK();
  goto next_ins;

  // --- fused superinstructions (pure variants) ---
lbl_PushAdd:
  sp[-1].add_in_place(ins->imm);
  goto next_ins;
lbl_PushMloadS:
  // Static offset: the charge-group prologue already expanded and charged.
  *sp++ = f.memory.load_word(ins->imm.as_u64());
  goto next_ins;
lbl_PushMstoreS:
  f.memory.store_word(ins->imm.as_u64(), sp[-1]);
  --sp;
  goto next_ins;

  // --- checkpoints: shared bodies, then the reference epilogue ---
lbl_Exp:
  HARDTAPE_SYNC_STACK();
  op_exp(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Sha3:
  HARDTAPE_SYNC_STACK();
  op_sha3(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Balance:
  HARDTAPE_SYNC_STACK();
  op_balance(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Calldatacopy:
  HARDTAPE_SYNC_STACK();
  op_calldatacopy(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Codecopy:
  HARDTAPE_SYNC_STACK();
  op_codecopy(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Extcodesize:
  HARDTAPE_SYNC_STACK();
  op_extcodesize(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Extcodecopy:
  HARDTAPE_SYNC_STACK();
  op_extcodecopy(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Returndatacopy:
  HARDTAPE_SYNC_STACK();
  op_returndatacopy(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Extcodehash:
  HARDTAPE_SYNC_STACK();
  op_extcodehash(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Mload:
  HARDTAPE_SYNC_STACK();
  op_mload(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Mstore:
  HARDTAPE_SYNC_STACK();
  op_mstore(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Mstore8:
  HARDTAPE_SYNC_STACK();
  op_mstore8(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Sload:
  HARDTAPE_SYNC_STACK();
  op_sload(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Sstore:
  HARDTAPE_SYNC_STACK();
  do_sstore(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Tstore:
  HARDTAPE_SYNC_STACK();
  op_tstore(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Mcopy:
  HARDTAPE_SYNC_STACK();
  op_mcopy(f);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Log:
  HARDTAPE_SYNC_STACK();
  op_log(f, ins->aux);
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Msize:
  // Group pre-expansion is exact here: MSIZE ends its charge group, so every
  // static-offset expansion it can see has already happened in the reference
  // order too (memory size is max-monotone).
  *sp++ = u256{f.memory.size()};
  goto post_check;
lbl_Gas:
  // Ends its charge group, so the prepaid static gas equals the reference
  // loop's cumulative charge at exactly this point.
  *sp++ = u256{f.gas};
  goto post_check;
lbl_DupMload: {
  // DUPn + MLOAD: net effect is push(load(peek(n-1))) — the dup'd copy is
  // consumed by the load, so it never materializes.
  const u256 offset = sp[-1 - ins->aux];
  uint64_t off64 = 0, len64 = 0;
  if (!f.charge_memory(offset, u256{32}, off64, len64)) goto post_check;
  *sp++ = f.memory.load_word(off64);
  goto post_check;
}
lbl_Create:
lbl_Create2:
  HARDTAPE_SYNC_STACK();
  do_create_family(f, static_cast<Opcode>(ins->byte));
  HARDTAPE_RELOAD_STACK();
  goto post_check;
lbl_Call:
lbl_Callcode:
lbl_Delegatecall:
lbl_Staticcall:
  HARDTAPE_SYNC_STACK();
  do_call_family(f, static_cast<Opcode>(ins->byte));
  HARDTAPE_RELOAD_STACK();
  goto post_check;

post_check:
  // The reference loop's per-iteration epilogue (frame memory limit and
  // sticky bundle abort) after every op that can grow memory, touch a
  // sub-frame, or halt.
  if (frame_memory_limit_ != 0 && f.memory.size() > frame_memory_limit_ &&
      f.status == VmStatus::kSuccess) {
    f.fail(VmStatus::kMemoryOverflow);
    bundle_aborted_ = true;
  }
  if (bundle_aborted_ && f.status == VmStatus::kSuccess) {
    f.fail(VmStatus::kMemoryOverflow);
  }
  if (f.halted) {
    HARDTAPE_SYNC_STACK();
    return true;
  }
  goto next_ins;

#undef HARDTAPE_DISPATCH
#undef HARDTAPE_SYNC_STACK
#undef HARDTAPE_RELOAD_STACK
}

template bool Interpreter::run_decoded<true>(Frame& f,
                                             const fastpath::DecodedCode& dc);
template bool Interpreter::run_decoded<false>(Frame& f,
                                              const fastpath::DecodedCode& dc);

}  // namespace hardtape::evm
