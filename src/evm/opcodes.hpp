// EVM instruction set (paper Section II-A, Figure 2).
//
// The opcode table drives four consumers:
//  - the interpreter's dispatch and static gas charging,
//  - the assembler (mnemonic -> opcode),
//  - the HEVM pipeline cost model (opcode class -> cycles),
//  - the tracer (opcode names in traces).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace hardtape::evm {

enum class Opcode : uint8_t {
  STOP = 0x00, ADD = 0x01, MUL = 0x02, SUB = 0x03, DIV = 0x04, SDIV = 0x05,
  MOD = 0x06, SMOD = 0x07, ADDMOD = 0x08, MULMOD = 0x09, EXP = 0x0a,
  SIGNEXTEND = 0x0b,

  LT = 0x10, GT = 0x11, SLT = 0x12, SGT = 0x13, EQ = 0x14, ISZERO = 0x15,
  AND = 0x16, OR = 0x17, XOR = 0x18, NOT = 0x19, BYTE = 0x1a, SHL = 0x1b,
  SHR = 0x1c, SAR = 0x1d,

  SHA3 = 0x20,

  ADDRESS = 0x30, BALANCE = 0x31, ORIGIN = 0x32, CALLER = 0x33,
  CALLVALUE = 0x34, CALLDATALOAD = 0x35, CALLDATASIZE = 0x36,
  CALLDATACOPY = 0x37, CODESIZE = 0x38, CODECOPY = 0x39, GASPRICE = 0x3a,
  EXTCODESIZE = 0x3b, EXTCODECOPY = 0x3c, RETURNDATASIZE = 0x3d,
  RETURNDATACOPY = 0x3e, EXTCODEHASH = 0x3f,

  BLOCKHASH = 0x40, COINBASE = 0x41, TIMESTAMP = 0x42, NUMBER = 0x43,
  PREVRANDAO = 0x44, GASLIMIT = 0x45, CHAINID = 0x46, SELFBALANCE = 0x47,
  BASEFEE = 0x48,

  POP = 0x50, MLOAD = 0x51, MSTORE = 0x52, MSTORE8 = 0x53, SLOAD = 0x54,
  SSTORE = 0x55, JUMP = 0x56, JUMPI = 0x57, PC = 0x58, MSIZE = 0x59,
  GAS = 0x5a, JUMPDEST = 0x5b, TLOAD = 0x5c, TSTORE = 0x5d, MCOPY = 0x5e,
  PUSH0 = 0x5f,

  PUSH1 = 0x60, PUSH32 = 0x7f,   // 0x60..0x7f
  DUP1 = 0x80, DUP16 = 0x8f,     // 0x80..0x8f
  SWAP1 = 0x90, SWAP16 = 0x9f,   // 0x90..0x9f
  LOG0 = 0xa0, LOG1 = 0xa1, LOG2 = 0xa2, LOG3 = 0xa3, LOG4 = 0xa4,

  CREATE = 0xf0, CALL = 0xf1, CALLCODE = 0xf2, RETURN = 0xf3,
  DELEGATECALL = 0xf4, CREATE2 = 0xf5, STATICCALL = 0xfa, REVERT = 0xfd,
  INVALID = 0xfe, SELFDESTRUCT = 0xff,
};

/// Instruction classes used by the HEVM pipeline cost model and by the
/// Figure 5 micro-benchmarks.
enum class OpClass : uint8_t {
  kControl,     // STOP, JUMP*, PC, JUMPDEST, RETURN, REVERT, INVALID
  kArithmetic,  // ADD..SIGNEXTEND, LT..SAR
  kKeccak,      // SHA3
  kEnvironment, // frame-state queries 0x30-0x48
  kStack,       // POP, PUSH*, DUP*, SWAP*
  kMemory,      // MLOAD/MSTORE/MSTORE8/MCOPY/*COPY
  kStorage,     // SLOAD/SSTORE/TLOAD/TSTORE
  kLog,         // LOG0-4
  kCall,        // CALL family, CREATE family, SELFDESTRUCT
};

struct OpInfo {
  std::string_view name;
  uint8_t stack_in = 0;      ///< operands popped
  uint8_t stack_out = 0;     ///< results pushed
  uint8_t immediate_size = 0;///< PUSH payload bytes
  uint16_t base_gas = 0;     ///< static gas (dynamic parts charged in-line)
  OpClass op_class = OpClass::kControl;
  bool defined = false;
};

/// Metadata for every opcode byte; undefined opcodes have defined == false.
const OpInfo& opcode_info(uint8_t opcode);
inline const OpInfo& opcode_info(Opcode op) { return opcode_info(static_cast<uint8_t>(op)); }

/// Reverse lookup for the assembler. Returns nullopt for unknown mnemonics.
std::optional<uint8_t> opcode_from_name(std::string_view name);

inline bool is_push(uint8_t op) { return op >= 0x5f && op <= 0x7f; }
inline size_t push_size(uint8_t op) { return op < 0x60 ? 0 : op - 0x5f; }

}  // namespace hardtape::evm
