// The runtime stack and the byte-addressed Memory of one execution frame
// (paper Figure 2). In the hardware design, the stack lives entirely in the
// layer-1 cache (32 KB = 1024 x 32 bytes, Section IV-B); Memory is one of
// the four "memory-likes".
#pragma once

#include <cstring>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::evm {

/// 1024-slot operand stack. Overflow/underflow are reported by the caller
/// (the interpreter checks against OpInfo before dispatch), so the
/// accessors here assume validity. Storage is allocated at the full
/// 1024-slot capacity up front (32 KB — exactly the layer-1 stack SRAM of
/// Section IV-B), which lets the fast dispatch loop mirror the top-of-stack
/// pointer in a register (base()/set_size()) with no reallocation hazard.
class Stack {
 public:
  static constexpr size_t kLimit = 1024;

  Stack() : items_(kLimit) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push(const u256& v) { items_[size_++] = v; }
  u256 pop() { return items_[--size_]; }
  /// pop() without materializing the popped value (fast-path in-place ops).
  void drop() { --size_; }
  /// 0 = top of stack.
  const u256& peek(size_t depth = 0) const { return items_[size_ - 1 - depth]; }
  u256& peek(size_t depth = 0) { return items_[size_ - 1 - depth]; }
  void swap_top(size_t depth) { std::swap(peek(0), peek(depth)); }
  void dup(size_t depth) { push(peek(depth)); }

  /// Raw access for the fast dispatch loop, which keeps the height in a
  /// register and writes it back via set_size() around any call that goes
  /// through this interface (see run_decoded in fastpath.cpp).
  u256* base() { return items_.data(); }
  void set_size(size_t n) { size_ = n; }

  /// Bottom-first snapshot (FrameDebug capture).
  std::vector<u256> items() const { return {items_.begin(), items_.begin() + size_}; }

 private:
  std::vector<u256> items_;  ///< fixed kLimit slots; size_ is the live count
  size_t size_ = 0;
};

/// Byte-addressed, zero-initialized, word-expanded frame memory. Expansion
/// gas (3 * words + words^2 / 512) is computed by the interpreter via
/// word_count(); this class only tracks contents and the high-water size.
class EvmMemory {
 public:
  /// Current size in bytes (always a multiple of 32).
  uint64_t size() const { return data_.size(); }

  /// Grows (never shrinks) to cover [offset, offset + len). No-op for len==0.
  void expand(uint64_t offset, uint64_t len) {
    if (len == 0) return;
    const uint64_t end = offset + len;
    const uint64_t words = (end + 31) / 32;
    if (words * 32 > data_.size()) data_.resize(words * 32, 0);
  }

  u256 load_word(uint64_t offset) const {
    return u256::from_be_bytes(BytesView{data_.data() + offset, 32});
  }
  void store_word(uint64_t offset, const u256& value) {
    const auto be = value.to_be_bytes();
    std::memcpy(data_.data() + offset, be.data(), 32);
  }
  void store_byte(uint64_t offset, uint8_t value) { data_[offset] = value; }

  /// Reads `len` bytes; caller must have expanded first.
  BytesView view(uint64_t offset, uint64_t len) const {
    return BytesView{data_.data() + offset, len};
  }
  /// Copies `src` into memory at `offset`, zero-filling up to `len` when the
  /// source is shorter (the semantics of CALLDATACOPY/CODECOPY).
  void store_padded(uint64_t offset, BytesView src, uint64_t src_offset, uint64_t len) {
    for (uint64_t i = 0; i < len; ++i) {
      const uint64_t s = src_offset + i;
      data_[offset + i] = s < src.size() ? src[s] : 0;
    }
  }
  void copy_within(uint64_t dst, uint64_t src, uint64_t len) {
    if (len == 0) return;
    std::memmove(data_.data() + dst, data_.data() + src, len);
  }

  /// Number of 32-byte words needed to cover [0, end_byte).
  static uint64_t word_count(uint64_t end_byte) { return (end_byte + 31) / 32; }

 private:
  Bytes data_;
};

}  // namespace hardtape::evm
