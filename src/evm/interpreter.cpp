#include "evm/interpreter.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "crypto/keccak.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "evm/fastpath.hpp"
#include "evm/frame.hpp"
#include "trie/rlp.hpp"

namespace hardtape::evm {

namespace {

Address create_address(const Address& sender, uint64_t nonce) {
  using namespace trie;
  const Bytes rlp = rlp_encode_list(
      {rlp_encode_bytes(sender.view()), rlp_encode_u256(u256{nonce})});
  const H256 h = crypto::keccak256(rlp);
  Address out;
  std::memcpy(out.bytes.data(), h.bytes.data() + 12, 20);
  return out;
}

Address create2_address(const Address& sender, const u256& salt, BytesView init_code) {
  Bytes preimage;
  preimage.reserve(1 + 20 + 32 + 32);
  preimage.push_back(0xff);
  append(preimage, sender.view());
  append(preimage, salt.to_be_bytes_vec());
  append(preimage, crypto::keccak256(init_code).view());
  const H256 h = crypto::keccak256(preimage);
  Address out;
  std::memcpy(out.bytes.data(), h.bytes.data() + 12, 20);
  return out;
}

}  // namespace

const char* to_string(VmStatus s) {
  switch (s) {
    case VmStatus::kSuccess: return "success";
    case VmStatus::kRevert: return "revert";
    case VmStatus::kOutOfGas: return "out-of-gas";
    case VmStatus::kInvalidInstruction: return "invalid-instruction";
    case VmStatus::kUndefinedInstruction: return "undefined-instruction";
    case VmStatus::kStackUnderflow: return "stack-underflow";
    case VmStatus::kStackOverflow: return "stack-overflow";
    case VmStatus::kBadJumpDestination: return "bad-jump-destination";
    case VmStatus::kStaticModeViolation: return "static-mode-violation";
    case VmStatus::kCallDepthExceeded: return "call-depth-exceeded";
    case VmStatus::kInsufficientBalance: return "insufficient-balance";
    case VmStatus::kNonceMismatch: return "nonce-mismatch";
    case VmStatus::kCreateCollision: return "create-collision";
    case VmStatus::kMemoryOverflow: return "memory-overflow";
  }
  return "unknown";
}

const char* to_string(MemoryLike m) {
  switch (m) {
    case MemoryLike::kCode: return "code";
    case MemoryLike::kInput: return "input";
    case MemoryLike::kMemory: return "memory";
    case MemoryLike::kReturnData: return "return";
  }
  return "unknown";
}

uint64_t Transaction::intrinsic_gas() const {
  uint64_t gas = kGasTxBase;
  for (uint8_t b : data) gas += b == 0 ? kGasTxDataZero : kGasTxDataNonZero;
  if (!to.has_value()) {
    gas += kGasTxCreate;
    gas += kGasInitcodeWord * EvmMemory::word_count(data.size());
  }
  return gas;
}

// ---------------------------------------------------------------------------
// Precompiles
// ---------------------------------------------------------------------------

bool Interpreter::is_precompile(const Address& addr) {
  for (size_t i = 0; i < 19; ++i) {
    if (addr.bytes[i] != 0) return false;
  }
  const uint8_t id = addr.bytes[19];
  return id == 0x01 || id == 0x02 || id == 0x04 || id == 0x05;
}

CallResult Interpreter::run_precompile(const Message& msg) {
  const uint8_t id = msg.code_address.bytes[19];
  const uint64_t words = EvmMemory::word_count(msg.input.size());
  CallResult result;
  result.gas_left = msg.gas;

  auto charge = [&](uint64_t cost) {
    if (result.gas_left < cost) {
      result.status = VmStatus::kOutOfGas;
      result.gas_left = 0;
      return false;
    }
    result.gas_left -= cost;
    return true;
  };

  switch (id) {
    case 0x01: {  // ecrecover(hash, v, r, s) -> address
      if (!charge(3000)) return result;
      const Bytes input = right_pad(msg.input, 128);
      const H256 hash = H256::from(BytesView{input.data(), 32});
      const u256 v = u256::from_be_bytes(BytesView{input.data() + 32, 32});
      crypto::Signature sig;
      sig.r = u256::from_be_bytes(BytesView{input.data() + 64, 32});
      sig.s = u256::from_be_bytes(BytesView{input.data() + 96, 32});
      if (v != u256{27} && v != u256{28}) return result;  // empty output
      sig.recovery_id = static_cast<uint8_t>(v.as_u64() - 27);
      const auto pubkey = crypto::ecdsa_recover(hash, sig);
      if (!pubkey) return result;
      const Address addr = crypto::pubkey_to_address(*pubkey);
      result.output = right_pad(BytesView{}, 32);
      std::memcpy(result.output.data() + 12, addr.bytes.data(), 20);
      return result;
    }
    case 0x02: {  // sha256
      if (!charge(60 + 12 * words)) return result;
      const H256 h = crypto::sha256(msg.input);
      result.output.assign(h.bytes.begin(), h.bytes.end());
      return result;
    }
    case 0x04: {  // identity
      if (!charge(15 + 3 * words)) return result;
      result.output = msg.input;
      return result;
    }
    case 0x05: {  // modexp (EIP-198/2565), operands bounded to 32 bytes
      const Bytes header = right_pad(msg.input, 96);
      const u256 base_len = u256::from_be_bytes(BytesView{header.data(), 32});
      const u256 exp_len = u256::from_be_bytes(BytesView{header.data() + 32, 32});
      const u256 mod_len = u256::from_be_bytes(BytesView{header.data() + 64, 32});
      if (base_len > u256{32} || exp_len > u256{32} || mod_len > u256{32}) {
        // Arbitrary-precision inputs are out of this implementation's scope
        // (EVM words are the paper's workload); fail like an OOG precompile.
        result.status = VmStatus::kOutOfGas;
        result.gas_left = 0;
        return result;
      }
      const size_t bl = base_len.as_u64(), el = exp_len.as_u64(), ml = mod_len.as_u64();
      const Bytes body = right_pad(msg.input.size() > 96
                                       ? BytesView{msg.input.data() + 96,
                                                   msg.input.size() - 96}
                                       : BytesView{},
                                   bl + el + ml);
      const u256 base = u256::from_be_bytes(BytesView{body.data(), bl});
      const u256 exponent = u256::from_be_bytes(BytesView{body.data() + bl, el});
      const u256 modulus = u256::from_be_bytes(BytesView{body.data() + bl + el, ml});
      // Simplified EIP-2565 pricing for word-sized operands.
      if (!charge(std::max<uint64_t>(200, 16 * std::max<uint64_t>(1, exponent.bit_length())))) {
        return result;
      }
      u256 acc{};
      if (!modulus.is_zero()) {
        acc = u256{1} % modulus;
        u256 b = base % modulus;
        const unsigned bits = exponent.bit_length();
        for (unsigned i = 0; i < bits; ++i) {
          if (exponent.bit(i)) acc = u256::mulmod(acc, b, modulus);
          b = u256::mulmod(b, b, modulus);
        }
      }
      const auto be = acc.to_be_bytes();
      result.output.assign(be.end() - static_cast<long>(ml), be.end());
      return result;
    }
    default:
      throw UsageError("not a precompile");
  }
}

// ---------------------------------------------------------------------------
// Message call entry
// ---------------------------------------------------------------------------

CallResult Interpreter::call(const Message& msg) {
  if (msg.depth > kMaxCallDepth) {
    return {VmStatus::kCallDepthExceeded, {}, 0, {}};
  }
  if (msg.is_create) return run_create(msg);

  const auto snapshot = state_.snapshot();
  if (!msg.value.is_zero()) {
    if (!state_.sub_balance(msg.sender, msg.value)) {
      return {VmStatus::kInsufficientBalance, {}, 0, {}};
    }
    state_.add_balance(msg.recipient, msg.value);
  }

  CallResult result;
  if (is_precompile(msg.code_address)) {
    result = run_precompile(msg);
  } else {
    const Bytes code = state_.code(msg.code_address);
    if (observer_) observer_->on_code_load(msg.code_address, code.size());
    if (code.empty()) {
      result = {VmStatus::kSuccess, {}, msg.gas, {}};
    } else {
      result = run_frame(msg, code);
    }
  }

  if (!is_success(result.status)) state_.revert_to(snapshot);
  return result;
}

CallResult Interpreter::run_create(const Message& msg) {
  const uint64_t sender_nonce = state_.nonce(msg.sender);
  // CREATE derives the address from (sender, nonce); CREATE2 pre-computes it
  // from the salt and passes it in via msg.recipient.
  const Address new_address = msg.recipient.is_zero()
                                  ? create_address(msg.sender, sender_nonce)
                                  : msg.recipient;
  state_.set_nonce(msg.sender, sender_nonce + 1);
  state_.access_account(new_address);

  // Collision: existing nonce or code at the target address.
  if (state_.nonce(new_address) != 0 || !state_.code(new_address).empty()) {
    return {VmStatus::kCreateCollision, {}, 0, {}};
  }

  const auto snapshot = state_.snapshot();
  state_.mark_created(new_address);
  state_.set_nonce(new_address, 1);
  if (!msg.value.is_zero()) {
    if (!state_.sub_balance(msg.sender, msg.value)) {
      state_.revert_to(snapshot);
      return {VmStatus::kInsufficientBalance, {}, 0, {}};
    }
    state_.add_balance(new_address, msg.value);
  }

  Message init_msg = msg;
  init_msg.code_address = new_address;
  init_msg.recipient = new_address;
  init_msg.input.clear();
  if (observer_) observer_->on_code_load(new_address, msg.init_code.size());
  CallResult result = run_frame(init_msg, msg.init_code);

  if (is_success(result.status)) {
    const uint64_t deposit = kGasCodeDeposit * result.output.size();
    if (result.output.size() > kMaxCodeSize ||
        (!result.output.empty() && result.output[0] == 0xEF) ||
        result.gas_left < deposit) {
      result = {VmStatus::kOutOfGas, {}, 0, {}};
      state_.revert_to(snapshot);
      return result;
    }
    result.gas_left -= deposit;
    state_.set_code(new_address, result.output);
    result.output.clear();
    result.create_address = new_address;
  } else {
    state_.revert_to(snapshot);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Transaction entry
// ---------------------------------------------------------------------------

TxResult Interpreter::execute_transaction(const Transaction& tx) {
  state_.begin_transaction();
  bundle_aborted_ = false;

  TxResult result;
  const uint64_t intrinsic = tx.intrinsic_gas();
  if (tx.gas_limit < intrinsic) {
    result.status = VmStatus::kOutOfGas;
    result.gas_used = tx.gas_limit;
    return result;
  }
  if (tx.nonce.has_value() && *tx.nonce != state_.nonce(tx.from)) {
    result.status = VmStatus::kNonceMismatch;
    return result;
  }
  const u256 upfront = u256{tx.gas_limit} * tx.gas_price;
  if (state_.balance(tx.from) < upfront + tx.value) {
    result.status = VmStatus::kInsufficientBalance;
    return result;
  }
  [[maybe_unused]] const bool ok = state_.sub_balance(tx.from, upfront);

  // Pre-warm per EIP-2929/3651: sender, target and coinbase.
  state_.access_account(tx.from);
  state_.access_account(block_.coinbase);
  if (tx.to) state_.access_account(*tx.to);

  Message msg;
  msg.sender = tx.from;
  msg.origin = tx.from;
  msg.value = tx.value;
  msg.gas_price = tx.gas_price;
  msg.gas = tx.gas_limit - intrinsic;
  msg.depth = 1;
  if (tx.to) {
    state_.set_nonce(tx.from, state_.nonce(tx.from) + 1);
    msg.code_address = *tx.to;
    msg.recipient = *tx.to;
    msg.input = tx.data;
  } else {
    msg.is_create = true;
    msg.init_code = tx.data;
  }

  const CallResult call_result = call(msg);
  result.status = call_result.status;
  result.output = call_result.output;
  result.create_address = call_result.create_address;

  const uint64_t used_before_refund = tx.gas_limit - call_result.gas_left;
  const uint64_t refund =
      is_success(call_result.status)
          ? std::min(state_.refund(), used_before_refund / 5)  // EIP-3529
          : 0;
  result.gas_refunded = refund;
  result.gas_used = used_before_refund - refund;

  state_.add_balance(tx.from, u256{tx.gas_limit - result.gas_used} * tx.gas_price);
  state_.add_balance(block_.coinbase, u256{result.gas_used} * tx.gas_price);
  return result;
}

// ---------------------------------------------------------------------------
// The dispatch loop
// ---------------------------------------------------------------------------

CallResult Interpreter::run_frame(const Message& msg, BytesView code) {
  Frame f(msg, code);

  if (observer_) {
    observer_->on_frame_enter({msg.code_address, msg.recipient, msg.value,
                               msg.input.size(), msg.gas, msg.depth,
                               msg.is_create, msg.is_static});
  }

  if (engine_ == EngineKind::kFast) {
    // Superinstruction fusion is only legal when no observer watches the
    // per-opcode event stream; with an observer the decoded loop runs
    // opcode-at-a-time so on_step sequences stay bit-identical.
    const fastpath::DecodedCode decoded = fastpath::decode(code, observer_ == nullptr);
    const bool finished = observer_ ? run_decoded<true>(f, decoded)
                                    : run_decoded<false>(f, decoded);
    // A bail-out left f.pc at the start of an unexecuted block/charge group;
    // the reference loop finishes the frame with per-opcode semantics.
    if (!finished) dispatch_loop(f);
  } else {
    dispatch_loop(f);
  }

  if (observer_) {
    observer_->on_frame_exit({f.status, msg.gas - f.gas, f.output.size(),
                              f.memory.size(), msg.depth});
  }
  if (frame_debug_) {
    frame_debug_->stack = f.stack.items();
    const BytesView mem = f.memory.view(0, f.memory.size());
    frame_debug_->memory.assign(mem.begin(), mem.end());
    frame_debug_->status = f.status;
    frame_debug_->gas_left = f.gas;
  }
  return {f.status, std::move(f.output), f.gas, {}};
}

void Interpreter::dispatch_loop(Frame& f) {
  const Message& msg = f.msg;
  while (!f.halted) {
    if (f.pc >= f.code.size()) {
      f.halted = true;  // running off the end == STOP
      break;
    }
    const uint8_t op_byte = f.code[f.pc];
    const OpInfo& info = opcode_info(op_byte);

    if (observer_) {
      observer_->on_step({f.pc, op_byte, f.gas, msg.depth, f.stack.size(),
                          f.stack.empty() ? u256{} : f.stack.peek()});
    }

    if (!info.defined) {
      f.fail(VmStatus::kUndefinedInstruction);
      break;
    }
    if (f.stack.size() < info.stack_in) {
      f.fail(VmStatus::kStackUnderflow);
      break;
    }
    if (f.stack.size() - info.stack_in + info.stack_out > Stack::kLimit) {
      f.fail(VmStatus::kStackOverflow);
      break;
    }
    if (!f.charge(info.base_gas)) break;

    const auto op = static_cast<Opcode>(op_byte);
    uint64_t next_pc = f.pc + 1 + info.immediate_size;

    switch (op) {
      case Opcode::STOP:
        f.halted = true;
        break;

      // --- arithmetic ---
      case Opcode::ADD: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(a + b);
        break;
      }
      case Opcode::MUL: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(a * b);
        break;
      }
      case Opcode::SUB: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(a - b);
        break;
      }
      case Opcode::DIV: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(a / b);
        break;
      }
      case Opcode::SDIV: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(u256::sdiv(a, b));
        break;
      }
      case Opcode::MOD: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(a % b);
        break;
      }
      case Opcode::SMOD: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(u256::smod(a, b));
        break;
      }
      case Opcode::ADDMOD: {
        const u256 a = f.stack.pop(), b = f.stack.pop(), m = f.stack.pop();
        f.stack.push(u256::addmod(a, b, m));
        break;
      }
      case Opcode::MULMOD: {
        const u256 a = f.stack.pop(), b = f.stack.pop(), m = f.stack.pop();
        f.stack.push(u256::mulmod(a, b, m));
        break;
      }
      case Opcode::EXP:
        op_exp(f);
        break;
      case Opcode::SIGNEXTEND: {
        const u256 index = f.stack.pop(), value = f.stack.pop();
        f.stack.push(u256::signextend(index, value));
        break;
      }

      // --- comparison / bitwise ---
      case Opcode::LT: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(u256{a < b ? 1u : 0u});
        break;
      }
      case Opcode::GT: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(u256{a > b ? 1u : 0u});
        break;
      }
      case Opcode::SLT: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(u256{u256::slt(a, b) ? 1u : 0u});
        break;
      }
      case Opcode::SGT: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(u256{u256::slt(b, a) ? 1u : 0u});
        break;
      }
      case Opcode::EQ: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(u256{a == b ? 1u : 0u});
        break;
      }
      case Opcode::ISZERO:
        f.stack.push(u256{f.stack.pop().is_zero() ? 1u : 0u});
        break;
      case Opcode::AND: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(a & b);
        break;
      }
      case Opcode::OR: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(a | b);
        break;
      }
      case Opcode::XOR: {
        const u256 a = f.stack.pop(), b = f.stack.pop();
        f.stack.push(a ^ b);
        break;
      }
      case Opcode::NOT:
        f.stack.push(~f.stack.pop());
        break;
      case Opcode::BYTE: {
        const u256 index = f.stack.pop(), value = f.stack.pop();
        f.stack.push(u256::byte(index, value));
        break;
      }
      case Opcode::SHL: {
        const u256 shift = f.stack.pop(), value = f.stack.pop();
        f.stack.push(shift >= u256{256} ? u256{}
                                        : value << static_cast<unsigned>(shift.as_u64()));
        break;
      }
      case Opcode::SHR: {
        const u256 shift = f.stack.pop(), value = f.stack.pop();
        f.stack.push(shift >= u256{256} ? u256{}
                                        : value >> static_cast<unsigned>(shift.as_u64()));
        break;
      }
      case Opcode::SAR: {
        const u256 shift = f.stack.pop(), value = f.stack.pop();
        f.stack.push(u256::sar(value, shift));
        break;
      }

      // --- keccak ---
      case Opcode::SHA3:
        op_sha3(f);
        break;

      // --- environment ---
      case Opcode::ADDRESS:
        f.stack.push(msg.recipient.to_u256());
        break;
      case Opcode::BALANCE:
        op_balance(f);
        break;
      case Opcode::ORIGIN:
        f.stack.push(msg.origin.to_u256());
        break;
      case Opcode::CALLER:
        f.stack.push(msg.sender.to_u256());
        break;
      case Opcode::CALLVALUE:
        f.stack.push(msg.value);
        break;
      case Opcode::CALLDATALOAD:
        op_calldataload(f);
        break;
      case Opcode::CALLDATASIZE:
        f.stack.push(u256{msg.input.size()});
        break;
      case Opcode::CALLDATACOPY:
        op_calldatacopy(f);
        break;
      case Opcode::CODESIZE:
        f.stack.push(u256{f.code.size()});
        break;
      case Opcode::CODECOPY:
        op_codecopy(f);
        break;
      case Opcode::GASPRICE:
        f.stack.push(msg.gas_price);
        break;
      case Opcode::EXTCODESIZE:
        op_extcodesize(f);
        break;
      case Opcode::EXTCODECOPY:
        op_extcodecopy(f);
        break;
      case Opcode::RETURNDATASIZE:
        f.stack.push(u256{f.return_data.size()});
        break;
      case Opcode::RETURNDATACOPY:
        op_returndatacopy(f);
        break;
      case Opcode::EXTCODEHASH:
        op_extcodehash(f);
        break;

      // --- block context ---
      case Opcode::BLOCKHASH:
        op_blockhash(f);
        break;
      case Opcode::COINBASE:
        f.stack.push(block_.coinbase.to_u256());
        break;
      case Opcode::TIMESTAMP:
        f.stack.push(u256{block_.timestamp});
        break;
      case Opcode::NUMBER:
        f.stack.push(u256{block_.number});
        break;
      case Opcode::PREVRANDAO:
        f.stack.push(block_.prev_randao);
        break;
      case Opcode::GASLIMIT:
        f.stack.push(u256{block_.gas_limit});
        break;
      case Opcode::CHAINID:
        f.stack.push(block_.chain_id);
        break;
      case Opcode::SELFBALANCE:
        f.stack.push(state_.balance(msg.recipient));
        break;
      case Opcode::BASEFEE:
        f.stack.push(block_.base_fee);
        break;

      // --- stack / memory / storage / flow ---
      case Opcode::POP:
        f.stack.pop();
        break;
      case Opcode::MLOAD:
        op_mload(f);
        break;
      case Opcode::MSTORE:
        op_mstore(f);
        break;
      case Opcode::MSTORE8:
        op_mstore8(f);
        break;
      case Opcode::SLOAD:
        op_sload(f);
        break;
      case Opcode::SSTORE:
        do_sstore(f);
        break;
      case Opcode::JUMP: {
        const u256 dest = f.stack.pop();
        if (!dest.fits_u64() || dest.as_u64() >= f.code.size() ||
            !f.valid_jumpdests[dest.as_u64()]) {
          f.fail(VmStatus::kBadJumpDestination);
          break;
        }
        next_pc = dest.as_u64();
        break;
      }
      case Opcode::JUMPI: {
        const u256 dest = f.stack.pop(), condition = f.stack.pop();
        if (!condition.is_zero()) {
          if (!dest.fits_u64() || dest.as_u64() >= f.code.size() ||
              !f.valid_jumpdests[dest.as_u64()]) {
            f.fail(VmStatus::kBadJumpDestination);
            break;
          }
          next_pc = dest.as_u64();
        }
        break;
      }
      case Opcode::PC:
        f.stack.push(u256{f.pc});
        break;
      case Opcode::MSIZE:
        f.stack.push(u256{f.memory.size()});
        break;
      case Opcode::GAS:
        f.stack.push(u256{f.gas});
        break;
      case Opcode::JUMPDEST:
        break;
      case Opcode::TLOAD:
        op_tload(f);
        break;
      case Opcode::TSTORE:
        op_tstore(f);
        break;
      case Opcode::MCOPY:
        op_mcopy(f);
        break;

      // --- logs ---
      case Opcode::LOG0:
      case Opcode::LOG1:
      case Opcode::LOG2:
      case Opcode::LOG3:
      case Opcode::LOG4:
        op_log(f, static_cast<size_t>(op_byte - 0xa0));
        break;

      // --- halting ---
      case Opcode::RETURN:
      case Opcode::REVERT:
        op_return_revert(f, op == Opcode::REVERT);
        break;
      case Opcode::INVALID:
        f.fail(VmStatus::kInvalidInstruction);
        break;
      case Opcode::SELFDESTRUCT:
        op_selfdestruct(f);
        break;

      case Opcode::CREATE:
      case Opcode::CREATE2:
        do_create_family(f, op);
        break;
      case Opcode::CALL:
      case Opcode::CALLCODE:
      case Opcode::DELEGATECALL:
      case Opcode::STATICCALL:
        do_call_family(f, op);
        break;

      default: {
        // PUSH / DUP / SWAP ranges.
        if (is_push(op_byte)) {
          const size_t n = push_size(op_byte);
          Bytes immediate(n, 0);
          for (size_t i = 0; i < n; ++i) {
            const uint64_t idx = f.pc + 1 + i;
            if (idx < f.code.size()) immediate[i] = f.code[idx];
          }
          f.stack.push(u256::from_be_bytes(immediate));
        } else if (op_byte >= 0x80 && op_byte <= 0x8f) {
          f.stack.dup(static_cast<size_t>(op_byte - 0x80));
        } else if (op_byte >= 0x90 && op_byte <= 0x9f) {
          f.stack.swap_top(static_cast<size_t>(op_byte - 0x90 + 1));
        } else {
          f.fail(VmStatus::kUndefinedInstruction);
        }
        break;
      }
    }

    if (frame_memory_limit_ != 0 && f.memory.size() > frame_memory_limit_ &&
        f.status == VmStatus::kSuccess) {
      // Paper §IV-B: one frame exceeding half the layer-2 capacity aborts the
      // bundle with a Memory Overflow Error.
      f.fail(VmStatus::kMemoryOverflow);
      bundle_aborted_ = true;
    }
    if (bundle_aborted_ && f.status == VmStatus::kSuccess) {
      f.fail(VmStatus::kMemoryOverflow);
    }
    if (!f.halted) f.pc = next_pc;
  }
}

// ---------------------------------------------------------------------------
// SSTORE (EIP-2200 + EIP-3529)
// ---------------------------------------------------------------------------

void Interpreter::do_sstore(Frame& f) {
  if (f.msg.is_static) {
    f.fail(VmStatus::kStaticModeViolation);
    return;
  }
  if (f.gas <= kGasSstoreSentry) {
    f.fail(VmStatus::kOutOfGas);
    return;
  }
  const u256 key = f.stack.pop(), value = f.stack.pop();
  const Address& addr = f.msg.recipient;

  const bool cold = state_.access_storage(addr, key);
  if (observer_) observer_->on_storage_access(addr, key, true, cold);
  if (cold && !f.charge(kGasColdSload)) return;

  const u256 current = state_.storage(addr, key);
  const u256 original = state_.original_storage(addr, key);

  uint64_t cost;
  if (value == current) {
    cost = kGasWarmAccess;
  } else if (current == original) {
    cost = original.is_zero() ? kGasSstoreSet : kGasSstoreReset;
    if (!original.is_zero() && value.is_zero()) {
      state_.add_refund(kGasSstoreClearsRefund);
    }
  } else {
    cost = kGasWarmAccess;  // dirty slot
    if (!original.is_zero()) {
      if (current.is_zero()) state_.sub_refund(kGasSstoreClearsRefund);
      if (value.is_zero()) state_.add_refund(kGasSstoreClearsRefund);
    }
    if (value == original) {
      if (original.is_zero()) {
        state_.add_refund(kGasSstoreSet - kGasWarmAccess);
      } else {
        state_.add_refund(kGasSstoreReset - kGasWarmAccess);
      }
    }
  }
  if (!f.charge(cost)) return;
  state_.set_storage(addr, key, value);
}

// ---------------------------------------------------------------------------
// CALL family
// ---------------------------------------------------------------------------

void Interpreter::do_call_family(Frame& f, Opcode op) {
  const u256 gas_requested = f.stack.pop();
  const Address target = Address::from_u256(f.stack.pop());
  u256 value{};
  if (op == Opcode::CALL || op == Opcode::CALLCODE) value = f.stack.pop();
  const u256 in_off = f.stack.pop(), in_len = f.stack.pop();
  const u256 out_off = f.stack.pop(), out_len = f.stack.pop();

  if (op == Opcode::CALL && f.msg.is_static && !value.is_zero()) {
    f.fail(VmStatus::kStaticModeViolation);
    return;
  }

  // Access cost for the target account.
  const bool cold = state_.access_account(target);
  if (observer_) observer_->on_account_access(target, cold);
  if (!f.charge(cold ? kGasColdAccount : kGasWarmAccess)) return;

  // Memory expansion for both regions.
  uint64_t in_off64, in_len64, out_off64, out_len64;
  if (!f.charge_memory(in_off, in_len, in_off64, in_len64)) return;
  if (!f.charge_memory(out_off, out_len, out_off64, out_len64)) return;

  const bool transfers_value = op == Opcode::CALL && !value.is_zero();
  uint64_t extra = 0;
  if (!value.is_zero() && (op == Opcode::CALL || op == Opcode::CALLCODE)) {
    extra += kGasCallValue;
  }
  if (transfers_value && !state_.exists(target) && !is_precompile(target)) {
    extra += kGasNewAccount;
  }
  if (!f.charge(extra)) return;

  // EIP-150: forward at most 63/64 of the remaining gas.
  const uint64_t cap = f.gas - f.gas / 64;
  uint64_t gas_forward =
      gas_requested.fits_u64() ? std::min(gas_requested.as_u64(), cap) : cap;
  if (!f.charge(gas_forward)) return;
  uint64_t callee_gas = gas_forward;
  if (!value.is_zero() && (op == Opcode::CALL || op == Opcode::CALLCODE)) {
    callee_gas += kGasCallStipend;  // free stipend, not charged to the caller
  }

  // Balance check before recursing: a failed transfer costs no forwarded gas.
  if (!value.is_zero() && state_.balance(f.msg.recipient) < value &&
      op != Opcode::DELEGATECALL) {
    f.gas += gas_forward;
    f.return_data.clear();
    f.stack.push(u256{});
    return;
  }
  if (f.msg.depth + 1 > kMaxCallDepth) {
    f.gas += gas_forward;
    f.return_data.clear();
    f.stack.push(u256{});
    return;
  }

  Message sub;
  sub.origin = f.msg.origin;
  sub.gas_price = f.msg.gas_price;
  sub.gas = callee_gas;
  sub.depth = f.msg.depth + 1;
  const BytesView input_view = f.memory.view(in_off64, in_len64);
  sub.input.assign(input_view.begin(), input_view.end());
  if (observer_ && in_len64 > 0) {
    observer_->on_memory_access(MemoryLike::kMemory, in_off64, in_len64, false);
  }

  switch (op) {
    case Opcode::CALL:
      sub.code_address = target;
      sub.recipient = target;
      sub.sender = f.msg.recipient;
      sub.value = value;
      sub.is_static = f.msg.is_static;
      break;
    case Opcode::CALLCODE:
      sub.code_address = target;
      sub.recipient = f.msg.recipient;  // runs in our context
      sub.sender = f.msg.recipient;
      sub.value = value;  // checked, not moved (self-transfer)
      sub.is_static = f.msg.is_static;
      break;
    case Opcode::DELEGATECALL:
      sub.code_address = target;
      sub.recipient = f.msg.recipient;
      sub.sender = f.msg.sender;  // propagates caller & value
      sub.value = f.msg.value;
      sub.is_static = f.msg.is_static;
      break;
    case Opcode::STATICCALL:
      sub.code_address = target;
      sub.recipient = target;
      sub.sender = f.msg.recipient;
      sub.is_static = true;
      break;
    default:
      throw UsageError("not a call opcode");
  }

  // CALLCODE/DELEGATECALL run the code against our own storage; no balance
  // moves in the sub-call. CALL moves value inside call().
  CallResult result;
  if (op == Opcode::CALL) {
    result = call(sub);
  } else {
    // Inline the non-transferring variant.
    const auto snapshot = state_.snapshot();
    if (is_precompile(sub.code_address)) {
      result = run_precompile(sub);
    } else {
      const Bytes code = state_.code(sub.code_address);
      if (observer_) observer_->on_code_load(sub.code_address, code.size());
      result = code.empty() ? CallResult{VmStatus::kSuccess, {}, sub.gas, {}}
                            : run_frame(sub, code);
    }
    if (!is_success(result.status)) state_.revert_to(snapshot);
  }

  // Copy the callee's output into the out region and expose it as returndata.
  f.return_data = result.output;
  const uint64_t copy_len = std::min<uint64_t>(out_len64, result.output.size());
  if (copy_len > 0) {
    f.memory.store_padded(out_off64, result.output, 0, copy_len);
    if (observer_) observer_->on_memory_access(MemoryLike::kMemory, out_off64, copy_len, true);
  }
  f.gas += result.gas_left;
  f.stack.push(u256{is_success(result.status) ? 1u : 0u});

  if (result.status == VmStatus::kMemoryOverflow || bundle_aborted_) {
    // Memory Overflow aborts the whole bundle; it cannot be swallowed by a
    // caller the way an ordinary revert can (§IV-B).
    bundle_aborted_ = true;
    f.fail(VmStatus::kMemoryOverflow);
  }
}

// ---------------------------------------------------------------------------
// CREATE family
// ---------------------------------------------------------------------------

void Interpreter::do_create_family(Frame& f, Opcode op) {
  if (f.msg.is_static) {
    f.fail(VmStatus::kStaticModeViolation);
    return;
  }
  const u256 value = f.stack.pop();
  const u256 offset = f.stack.pop(), len = f.stack.pop();
  u256 salt{};
  if (op == Opcode::CREATE2) salt = f.stack.pop();

  uint64_t off64, len64;
  if (!f.charge_memory(offset, len, off64, len64)) return;
  if (len64 > kMaxInitcodeSize) {
    f.fail(VmStatus::kOutOfGas);
    return;
  }
  uint64_t word_cost = kGasInitcodeWord * EvmMemory::word_count(len64);
  if (op == Opcode::CREATE2) {
    word_cost += kGasKeccakWord * EvmMemory::word_count(len64);  // hashing the initcode
  }
  if (!f.charge(word_cost)) return;

  if (!value.is_zero() && state_.balance(f.msg.recipient) < value) {
    f.return_data.clear();
    f.stack.push(u256{});
    return;
  }
  if (f.msg.depth + 1 > kMaxCallDepth) {
    f.return_data.clear();
    f.stack.push(u256{});
    return;
  }

  const uint64_t gas_forward = f.gas - f.gas / 64;  // EIP-150
  if (!f.charge(gas_forward)) return;

  Message sub;
  sub.sender = f.msg.recipient;
  sub.origin = f.msg.origin;
  sub.gas_price = f.msg.gas_price;
  sub.value = value;
  sub.gas = gas_forward;
  sub.depth = f.msg.depth + 1;
  sub.is_create = true;
  const BytesView init_view = f.memory.view(off64, len64);
  sub.init_code.assign(init_view.begin(), init_view.end());
  if (observer_ && len64 > 0) {
    observer_->on_memory_access(MemoryLike::kMemory, off64, len64, false);
  }
  if (op == Opcode::CREATE2) {
    sub.recipient = create2_address(f.msg.recipient, salt, sub.init_code);
  }

  const CallResult result = call(sub);
  f.gas += result.gas_left;
  if (is_success(result.status)) {
    f.return_data.clear();
    f.stack.push(result.create_address.to_u256());
  } else {
    // REVERT exposes its payload via returndata; other failures do not.
    f.return_data = result.status == VmStatus::kRevert ? result.output : Bytes{};
    f.stack.push(u256{});
  }
  if (result.status == VmStatus::kMemoryOverflow || bundle_aborted_) {
    bundle_aborted_ = true;
    f.fail(VmStatus::kMemoryOverflow);
  }
}

}  // namespace hardtape::evm
