#include "evm/assembler.hpp"

#include <charconv>
#include <map>
#include <sstream>

#include "common/errors.hpp"
#include "common/u256.hpp"
#include "evm/opcodes.hpp"

namespace hardtape::evm {

namespace {

struct Token {
  std::string text;
  int line;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw UsageError("asm line " + std::to_string(line) + ": " + message);
}

// Minimal big-endian bytes of a u256 value (at least one byte).
Bytes minimal_be(const u256& v) {
  const auto be = v.to_be_bytes();
  size_t first = 0;
  while (first < 31 && be[first] == 0) ++first;
  return Bytes(be.begin() + static_cast<long>(first), be.end());
}

u256 parse_number(const Token& tok) {
  try {
    return u256::from_string(tok.text);
  } catch (const std::invalid_argument&) {
    fail(tok.line, "bad numeric literal '" + tok.text + "'");
  }
}

}  // namespace

Bytes assemble(std::string_view source) {
  // Tokenize: strip ';' comments, split on whitespace, keep line numbers.
  std::vector<Token> tokens;
  {
    int line_no = 0;
    std::istringstream stream{std::string(source)};
    std::string line;
    while (std::getline(stream, line)) {
      ++line_no;
      const size_t comment = line.find(';');
      if (comment != std::string::npos) line.resize(comment);
      std::istringstream words(line);
      std::string word;
      while (words >> word) tokens.push_back({word, line_no});
    }
  }

  Bytes code;
  std::map<std::string, uint16_t> labels;
  struct Fixup {
    size_t offset;  // where the 2-byte immediate lives
    std::string label;
    int line;
  };
  std::vector<Fixup> fixups;

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];

    if (tok.text.ends_with(":")) {  // label definition
      const std::string name = tok.text.substr(0, tok.text.size() - 1);
      if (name.empty()) fail(tok.line, "empty label");
      if (labels.contains(name)) fail(tok.line, "duplicate label '" + name + "'");
      if (code.size() > 0xffff) fail(tok.line, "code exceeds 64 KiB label range");
      labels[name] = static_cast<uint16_t>(code.size());
      continue;
    }

    if (tok.text == "PUSH") {  // auto-sized push
      if (i + 1 >= tokens.size()) fail(tok.line, "PUSH needs an operand");
      const Token& operand = tokens[++i];
      if (operand.text.starts_with("@")) {
        code.push_back(0x61);  // PUSH2
        fixups.push_back({code.size(), operand.text.substr(1), operand.line});
        code.push_back(0);
        code.push_back(0);
      } else {
        const Bytes imm = minimal_be(parse_number(operand));
        code.push_back(static_cast<uint8_t>(0x5f + imm.size()));  // PUSHn
        append(code, imm);
      }
      continue;
    }

    const auto opcode = opcode_from_name(tok.text);
    if (!opcode.has_value()) fail(tok.line, "unknown mnemonic '" + tok.text + "'");

    const OpInfo& info = opcode_info(*opcode);
    code.push_back(*opcode);
    if (info.immediate_size > 0) {
      if (i + 1 >= tokens.size()) fail(tok.line, tok.text + " needs an immediate");
      const Token& operand = tokens[++i];
      if (operand.text.starts_with("@")) {
        if (info.immediate_size != 2) {
          fail(operand.line, "label operands require PUSH2 (or bare PUSH)");
        }
        fixups.push_back({code.size(), operand.text.substr(1), operand.line});
        code.push_back(0);
        code.push_back(0);
      } else {
        const u256 value = parse_number(operand);
        const Bytes imm = minimal_be(value);
        if (imm.size() > info.immediate_size && !(imm.size() == 1 && imm[0] == 0)) {
          fail(operand.line, "immediate too wide for " + std::string(info.name));
        }
        // Left-pad to the declared width.
        for (size_t pad = imm.size(); pad < info.immediate_size; ++pad) code.push_back(0);
        append(code, imm);
      }
    }
  }

  for (const Fixup& fixup : fixups) {
    const auto it = labels.find(fixup.label);
    if (it == labels.end()) fail(fixup.line, "undefined label '" + fixup.label + "'");
    code[fixup.offset] = static_cast<uint8_t>(it->second >> 8);
    code[fixup.offset + 1] = static_cast<uint8_t>(it->second & 0xff);
  }
  return code;
}

std::string disassemble(BytesView code) {
  std::ostringstream out;
  for (size_t pc = 0; pc < code.size();) {
    const uint8_t op = code[pc];
    const OpInfo& info = opcode_info(op);
    out << std::hex << pc << std::dec << ": ";
    if (!info.defined) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "UNKNOWN_%02x", op);
      out << buf << "\n";
      ++pc;
      continue;
    }
    out << info.name;
    if (info.immediate_size > 0) {
      Bytes imm;
      for (size_t i = 0; i < info.immediate_size && pc + 1 + i < code.size(); ++i) {
        imm.push_back(code[pc + 1 + i]);
      }
      out << " 0x" << to_hex(imm);
    }
    out << "\n";
    pc += 1 + info.immediate_size;
  }
  return out.str();
}

}  // namespace hardtape::evm
