// Execution tracing (paper Fig. 3 step 9 and Section VI-B).
//
// The tracer has two jobs in HarDTAPE:
//  1. produce the per-transaction report returned to the user (ReturnData,
//     gas cost, balance transfers, storage modifications), and
//  2. produce the step-level trace (PC, opcode, gas, depth) compared against
//     the ground-truth node trace for the correctness experiment (§VI-B) —
//     the equivalent of quicknode's debug_traceTransaction.
//
// It is also the instrumentation point for the HEVM cycle model and the
// 3-layer memory simulation: every memory-like access, storage access and
// code fetch flows through the observer.
#pragma once

#include "common/u256.hpp"
#include "evm/opcodes.hpp"
#include "evm/types.hpp"

namespace hardtape::evm {

/// Which memory-like structure an access touches (paper Table I columns).
enum class MemoryLike : uint8_t { kCode, kInput, kMemory, kReturnData };
const char* to_string(MemoryLike m);

/// Observer of interpreter events. All callbacks default to no-ops; override
/// what you need. One observer instance per bundle (never shared across
/// HEVMs — dedicated hardware, paper Section IV-B).
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  struct StepInfo {
    uint64_t pc = 0;
    uint8_t opcode = 0;
    uint64_t gas_left = 0;
    int depth = 0;
    size_t stack_size = 0;
    u256 stack_top{};  ///< zero when the stack is empty
  };
  virtual void on_step(const StepInfo&) {}

  /// Byte-range access to one of the memory-likes of the current frame.
  virtual void on_memory_access(MemoryLike, uint64_t /*offset*/, uint64_t /*size*/,
                                bool /*is_write*/) {}

  /// SLOAD/SSTORE-level storage access. `cold` per EIP-2929 warm/cold.
  virtual void on_storage_access(const Address&, const u256& /*key*/,
                                 bool /*is_write*/, bool /*cold*/) {}

  /// Account-level world-state touch (BALANCE, EXTCODE*, CALL target, ...).
  virtual void on_account_access(const Address&, bool /*cold*/) {}

  /// Code body fetched to start executing an account.
  virtual void on_code_load(const Address&, size_t /*code_size*/) {}

  struct FrameInfo {
    Address code_address{};   ///< whose code runs
    Address recipient{};      ///< storage/balance context
    u256 value{};
    uint64_t input_size = 0;
    uint64_t gas = 0;
    int depth = 0;
    bool is_create = false;
    bool is_static = false;
  };
  virtual void on_frame_enter(const FrameInfo&) {}

  struct FrameExitInfo {
    VmStatus status = VmStatus::kSuccess;
    uint64_t gas_used = 0;
    uint64_t output_size = 0;
    uint64_t memory_size = 0;  ///< high-water Memory size of the frame
    int depth = 0;
  };
  virtual void on_frame_exit(const FrameExitInfo&) {}

  virtual void on_log(const LogEntry&) {}
};

/// Fans events out to several observers (e.g. tracer + HEVM cost model).
class ObserverChain : public ExecutionObserver {
 public:
  void add(ExecutionObserver* obs) { observers_.push_back(obs); }

  void on_step(const StepInfo& s) override {
    for (auto* o : observers_) o->on_step(s);
  }
  void on_memory_access(MemoryLike m, uint64_t off, uint64_t size, bool w) override {
    for (auto* o : observers_) o->on_memory_access(m, off, size, w);
  }
  void on_storage_access(const Address& a, const u256& k, bool w, bool c) override {
    for (auto* o : observers_) o->on_storage_access(a, k, w, c);
  }
  void on_account_access(const Address& a, bool c) override {
    for (auto* o : observers_) o->on_account_access(a, c);
  }
  void on_code_load(const Address& a, size_t n) override {
    for (auto* o : observers_) o->on_code_load(a, n);
  }
  void on_frame_enter(const FrameInfo& f) override {
    for (auto* o : observers_) o->on_frame_enter(f);
  }
  void on_frame_exit(const FrameExitInfo& f) override {
    for (auto* o : observers_) o->on_frame_exit(f);
  }
  void on_log(const LogEntry& l) override {
    for (auto* o : observers_) o->on_log(l);
  }

 private:
  std::vector<ExecutionObserver*> observers_;
};

/// Step-level trace recorder; the format compared against ground truth in
/// the §VI-B correctness experiment.
class StepTracer : public ExecutionObserver {
 public:
  struct Step {
    uint64_t pc;
    uint8_t opcode;
    uint64_t gas_left;
    int depth;
    size_t stack_size;
    friend bool operator==(const Step&, const Step&) = default;
  };

  void on_step(const StepInfo& info) override {
    if (!record_steps_) return;
    steps_.push_back({info.pc, info.opcode, info.gas_left, info.depth, info.stack_size});
  }
  /// Disable per-step capture (logs are always captured); used when only the
  /// user-facing trace report is needed.
  void set_record_steps(bool enabled) { record_steps_ = enabled; }
  void on_log(const LogEntry& log) override { logs_.push_back(log); }

  const std::vector<Step>& steps() const { return steps_; }
  const std::vector<LogEntry>& logs() const { return logs_; }
  void clear() { steps_.clear(); logs_.clear(); }

 private:
  std::vector<Step> steps_;
  std::vector<LogEntry> logs_;
  bool record_steps_ = true;
};

/// Frame-statistics collector backing the Table I reproduction: memory-like
/// sizes per frame, storage slots touched per frame, call depth per tx.
class FrameStatsCollector : public ExecutionObserver {
 public:
  struct FrameStats {
    uint64_t code_size = 0;
    uint64_t input_size = 0;
    uint64_t memory_size = 0;   // high-water MSIZE
    uint64_t return_size = 0;
    uint64_t storage_slots = 0; // distinct slots accessed
    int depth = 0;
  };

  void on_frame_enter(const FrameInfo& f) override;
  void on_frame_exit(const FrameExitInfo& f) override;
  void on_code_load(const Address& a, size_t n) override;
  void on_storage_access(const Address& a, const u256& k, bool w, bool c) override;
  void on_memory_access(MemoryLike m, uint64_t off, uint64_t size, bool w) override;

  /// Completed frames, in exit order.
  const std::vector<FrameStats>& frames() const { return finished_; }
  /// Max call depth seen since the last clear() (one tx by convention).
  int max_depth() const { return max_depth_; }
  void clear();

 private:
  struct LiveFrame {
    FrameStats stats;
    std::vector<u256> touched_slots;
  };
  std::vector<LiveFrame> stack_;
  std::vector<FrameStats> finished_;
  int max_depth_ = 0;
  uint64_t pending_code_size_ = 0;
};

}  // namespace hardtape::evm
