// Core EVM execution types: transactions, block context, results.
#pragma once

#include <functional>
#include <optional>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::evm {

/// Block-level environment visible to contracts (opcodes 0x40-0x48).
struct BlockContext {
  uint64_t number = 0;
  uint64_t timestamp = 0;
  uint64_t gas_limit = 30'000'000;
  Address coinbase{};
  u256 base_fee{7};
  u256 prev_randao{};
  u256 chain_id{1};
  /// Hash provider for BLOCKHASH; defaults to a synthetic hash chain.
  std::function<H256(uint64_t)> block_hash;
};

/// A transaction as submitted in a pre-execution bundle.
struct Transaction {
  Address from{};
  std::optional<Address> to{};  ///< nullopt = contract creation
  u256 value{};
  Bytes data{};
  uint64_t gas_limit = 1'000'000;
  u256 gas_price{1};
  std::optional<uint64_t> nonce{};  ///< nullopt = use the account's current

  /// Intrinsic gas: 21000 + calldata cost (+ creation cost).
  uint64_t intrinsic_gas() const;
};

enum class VmStatus : uint8_t {
  kSuccess,
  kRevert,
  kOutOfGas,
  kInvalidInstruction,
  kUndefinedInstruction,
  kStackUnderflow,
  kStackOverflow,
  kBadJumpDestination,
  kStaticModeViolation,
  kCallDepthExceeded,
  kInsufficientBalance,
  kNonceMismatch,
  kCreateCollision,
  kMemoryOverflow,  ///< HarDTAPE-specific: frame exceeded layer-2 bound (§IV-B)
};

const char* to_string(VmStatus s);
inline bool is_success(VmStatus s) { return s == VmStatus::kSuccess; }

/// Result of one message call / create.
struct CallResult {
  VmStatus status = VmStatus::kSuccess;
  Bytes output{};          ///< RETURN or REVERT payload
  uint64_t gas_left = 0;
  Address create_address{};  ///< populated for successful CREATE/CREATE2
};

/// Result of a whole transaction.
struct TxResult {
  VmStatus status = VmStatus::kSuccess;
  Bytes output{};
  uint64_t gas_used = 0;
  uint64_t gas_refunded = 0;
  Address create_address{};
};

struct LogEntry {
  Address address{};
  std::vector<u256> topics{};
  Bytes data{};
};

}  // namespace hardtape::evm
