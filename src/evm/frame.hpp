// Internal header shared by the two execution engines (interpreter.cpp and
// fastpath.cpp): the per-call Frame, the gas constants not covered by the
// static opcode table, and the opcode bodies with dynamic gas or observable
// side effects.
//
// Why the bodies live here as inline Interpreter members: the fast engine
// (DESIGN.md §14) prepays static gas per charge group but must reach every
// dynamic-gas opcode with bit-identical frame state, so both engines call the
// *same* body for anything that charges dynamically, touches world state, or
// emits observer events. Duplicate implementations would drift; a shared
// out-of-line call would stop the reference switch from inlining them.
#pragma once

#include <algorithm>
#include <cstring>

#include "crypto/keccak.hpp"
#include "evm/interpreter.hpp"

namespace hardtape::evm {

// Gas constants not covered by the static opcode table.
constexpr uint64_t kGasTxBase = 21000;
constexpr uint64_t kGasTxDataZero = 4;
constexpr uint64_t kGasTxDataNonZero = 16;
constexpr uint64_t kGasTxCreate = 32000;
constexpr uint64_t kGasInitcodeWord = 2;       // EIP-3860
constexpr uint64_t kGasColdAccount = 2600;     // EIP-2929
constexpr uint64_t kGasWarmAccess = 100;
constexpr uint64_t kGasColdSload = 2100;
constexpr uint64_t kGasSstoreSet = 20000;      // EIP-2200
constexpr uint64_t kGasSstoreReset = 2900;     // 5000 - COLD_SLOAD_COST
constexpr uint64_t kGasSstoreClearsRefund = 4800;  // EIP-3529
constexpr uint64_t kGasSstoreSentry = 2300;
constexpr uint64_t kGasCallValue = 9000;
constexpr uint64_t kGasCallStipend = 2300;
constexpr uint64_t kGasNewAccount = 25000;
constexpr uint64_t kGasSelfdestructNewAccount = 25000;
constexpr uint64_t kGasCopyWord = 3;
constexpr uint64_t kGasKeccakWord = 6;
constexpr uint64_t kGasLogByte = 8;
constexpr uint64_t kGasLogTopic = 375;
constexpr uint64_t kGasExpByte = 50;
constexpr uint64_t kGasCodeDeposit = 200;      // per byte
constexpr uint64_t kMaxCodeSize = 24576;       // EIP-170
constexpr uint64_t kMaxInitcodeSize = 49152;   // EIP-3860
constexpr int kMaxCallDepth = 1024;

// Any memory reference beyond this is treated as out-of-gas without doing
// the quadratic-cost arithmetic (the cost would exceed any block gas limit).
constexpr uint64_t kMemoryHardCap = uint64_t{1} << 41;

inline uint64_t memory_gas(uint64_t words) {
  // kMemoryHardCap admits up to 2^36 words, but words*words wraps uint64 from
  // 2^32 words on — an unchecked product would charge ~0 gas for a petabyte
  // expansion. Saturate: any sane gas limit fails long before this.
  if (words >= (uint64_t{1} << 32)) return UINT64_MAX;
  const uint64_t quadratic = words * words / 512;
  const uint64_t linear = 3 * words;
  return quadratic > UINT64_MAX - linear ? UINT64_MAX : linear + quadratic;
}

inline std::vector<bool> analyze_jumpdests(BytesView code) {
  std::vector<bool> valid(code.size(), false);
  for (size_t i = 0; i < code.size(); ++i) {
    const uint8_t op = code[i];
    if (op == static_cast<uint8_t>(Opcode::JUMPDEST)) {
      valid[i] = true;
    } else if (is_push(op)) {
      i += push_size(op);  // skip immediate bytes
    }
  }
  return valid;
}

// ---------------------------------------------------------------------------
// Frame
// ---------------------------------------------------------------------------

struct Interpreter::Frame {
  const Message& msg;
  BytesView code;
  std::vector<bool> valid_jumpdests;
  Stack stack;
  EvmMemory memory;
  uint64_t pc = 0;
  uint64_t gas = 0;
  Bytes return_data;  // output of the most recent sub-call
  Bytes output;       // RETURN / REVERT payload
  VmStatus status = VmStatus::kSuccess;
  bool halted = false;

  explicit Frame(const Message& m, BytesView c)
      : msg(m), code(c), valid_jumpdests(analyze_jumpdests(c)), gas(m.gas) {}

  void fail(VmStatus s) {
    status = s;
    halted = true;
    if (s != VmStatus::kRevert) gas = 0;  // failures consume all gas
  }

  bool charge(uint64_t amount) {
    if (gas < amount) {
      fail(VmStatus::kOutOfGas);
      return false;
    }
    gas -= amount;
    return true;
  }

  /// Charges expansion so memory covers [offset, offset+len). Converts the
  /// 256-bit operands, failing with out-of-gas on absurd ranges.
  bool charge_memory(const u256& offset, const u256& len, uint64_t& off_out,
                     uint64_t& len_out) {
    if (len.is_zero()) {
      off_out = 0;
      len_out = 0;
      return true;
    }
    if (!offset.fits_u64() || !len.fits_u64()) {
      fail(VmStatus::kOutOfGas);
      return false;
    }
    off_out = offset.as_u64();
    len_out = len.as_u64();
    const uint64_t end = off_out + len_out;
    if (end < off_out || end > kMemoryHardCap) {
      fail(VmStatus::kOutOfGas);
      return false;
    }
    const uint64_t current_words = EvmMemory::word_count(memory.size());
    const uint64_t new_words = EvmMemory::word_count(end);
    if (new_words > current_words) {
      const uint64_t cost = memory_gas(new_words) - memory_gas(current_words);
      if (!charge(cost)) return false;
      memory.expand(off_out, len_out);
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// Shared opcode bodies (everything with dynamic gas, state access, or
// observer events). Each body runs AFTER the static gas of its opcode has
// been charged — per opcode by the reference loop, per charge group by the
// fast loop.
// ---------------------------------------------------------------------------

inline void Interpreter::op_exp(Frame& f) {
  const u256 base = f.stack.pop(), exponent = f.stack.pop();
  const uint64_t exp_bytes = (exponent.bit_length() + 7) / 8;
  if (!f.charge(kGasExpByte * exp_bytes)) return;
  f.stack.push(u256::exp(base, exponent));
}

inline void Interpreter::op_sha3(Frame& f) {
  const u256 offset = f.stack.pop(), len = f.stack.pop();
  uint64_t off64, len64;
  if (!f.charge_memory(offset, len, off64, len64)) return;
  if (!f.charge(kGasKeccakWord * EvmMemory::word_count(len64))) return;
  if (observer_) observer_->on_memory_access(MemoryLike::kMemory, off64, len64, false);
  f.stack.push(crypto::keccak256(f.memory.view(off64, len64)).to_u256());
}

inline void Interpreter::op_balance(Frame& f) {
  const Address addr = Address::from_u256(f.stack.pop());
  const bool cold = state_.access_account(addr);
  if (observer_) observer_->on_account_access(addr, cold);
  if (!f.charge(cold ? kGasColdAccount : kGasWarmAccess)) return;
  f.stack.push(state_.balance(addr));
}

inline void Interpreter::op_calldataload(Frame& f) {
  const u256 offset = f.stack.pop();
  Bytes word(32, 0);
  if (offset.fits_u64()) {
    const uint64_t off = offset.as_u64();
    // Overflow-safe bounds: for offsets near 2^64, `off + i` wraps uint64 and
    // a `off + i < size` guard reads the *start* of calldata instead of
    // zero-padding past its end.
    if (off < f.msg.input.size()) {
      const size_t n = std::min<uint64_t>(32, f.msg.input.size() - off);
      std::memcpy(word.data(), f.msg.input.data() + off, n);
    }
    if (observer_) observer_->on_memory_access(MemoryLike::kInput, off, 32, false);
  }
  f.stack.push(u256::from_be_bytes(word));
}

inline void Interpreter::op_calldatacopy(Frame& f) {
  const u256 dst = f.stack.pop(), src = f.stack.pop(), len = f.stack.pop();
  uint64_t dst64, len64;
  if (!f.charge_memory(dst, len, dst64, len64)) return;
  if (!f.charge(kGasCopyWord * EvmMemory::word_count(len64))) return;
  const uint64_t src64 = src.as_u64_saturating();
  f.memory.store_padded(dst64, f.msg.input, src64, len64);
  if (observer_ && len64 > 0) {
    observer_->on_memory_access(MemoryLike::kInput, src64, len64, false);
    observer_->on_memory_access(MemoryLike::kMemory, dst64, len64, true);
  }
}

inline void Interpreter::op_codecopy(Frame& f) {
  const u256 dst = f.stack.pop(), src = f.stack.pop(), len = f.stack.pop();
  uint64_t dst64, len64;
  if (!f.charge_memory(dst, len, dst64, len64)) return;
  if (!f.charge(kGasCopyWord * EvmMemory::word_count(len64))) return;
  const uint64_t src64 = src.as_u64_saturating();
  f.memory.store_padded(dst64, f.code, src64, len64);
  if (observer_ && len64 > 0) {
    observer_->on_memory_access(MemoryLike::kCode, src64, len64, false);
    observer_->on_memory_access(MemoryLike::kMemory, dst64, len64, true);
  }
}

inline void Interpreter::op_extcodesize(Frame& f) {
  const Address addr = Address::from_u256(f.stack.pop());
  const bool cold = state_.access_account(addr);
  if (observer_) observer_->on_account_access(addr, cold);
  if (!f.charge(cold ? kGasColdAccount : kGasWarmAccess)) return;
  f.stack.push(u256{state_.code(addr).size()});
}

inline void Interpreter::op_extcodecopy(Frame& f) {
  const Address addr = Address::from_u256(f.stack.pop());
  const u256 dst = f.stack.pop(), src = f.stack.pop(), len = f.stack.pop();
  const bool cold = state_.access_account(addr);
  if (observer_) observer_->on_account_access(addr, cold);
  if (!f.charge(cold ? kGasColdAccount : kGasWarmAccess)) return;
  uint64_t dst64, len64;
  if (!f.charge_memory(dst, len, dst64, len64)) return;
  if (!f.charge(kGasCopyWord * EvmMemory::word_count(len64))) return;
  const uint64_t src64 = src.as_u64_saturating();
  const Bytes ext_code = state_.code(addr);
  f.memory.store_padded(dst64, ext_code, src64, len64);
  if (observer_ && len64 > 0) {
    // Source-side read first, then the destination write — the same order
    // CODECOPY/CALLDATACOPY emit, so audit traces see the ext-code fetch.
    observer_->on_memory_access(MemoryLike::kCode, src64, len64, false);
    observer_->on_memory_access(MemoryLike::kMemory, dst64, len64, true);
  }
}

inline void Interpreter::op_returndatacopy(Frame& f) {
  const u256 dst = f.stack.pop(), src = f.stack.pop(), len = f.stack.pop();
  // Unlike other copies, out-of-range reads are a hard failure.
  if (!src.fits_u64() || !len.fits_u64() ||
      src.as_u64() + len.as_u64() < src.as_u64() ||
      src.as_u64() + len.as_u64() > f.return_data.size()) {
    f.fail(VmStatus::kOutOfGas);
    return;
  }
  uint64_t dst64, len64;
  if (!f.charge_memory(dst, len, dst64, len64)) return;
  if (!f.charge(kGasCopyWord * EvmMemory::word_count(len64))) return;
  f.memory.store_padded(dst64, f.return_data, src.as_u64(), len64);
  if (observer_ && len64 > 0) {
    observer_->on_memory_access(MemoryLike::kReturnData, src.as_u64(), len64, false);
    observer_->on_memory_access(MemoryLike::kMemory, dst64, len64, true);
  }
}

inline void Interpreter::op_extcodehash(Frame& f) {
  const Address addr = Address::from_u256(f.stack.pop());
  const bool cold = state_.access_account(addr);
  if (observer_) observer_->on_account_access(addr, cold);
  if (!f.charge(cold ? kGasColdAccount : kGasWarmAccess)) return;
  if (!state_.exists(addr)) {
    f.stack.push(u256{});
  } else {
    f.stack.push(state_.code_hash(addr).to_u256());
  }
}

inline void Interpreter::op_blockhash(Frame& f) {
  const u256 number = f.stack.pop();
  u256 hash{};
  if (number.fits_u64()) {
    const uint64_t n = number.as_u64();
    if (n < block_.number && block_.number - n <= 256) {
      if (block_.block_hash) {
        hash = block_.block_hash(n).to_u256();
      } else {
        hash = crypto::keccak256(u256{n}.to_be_bytes_vec()).to_u256();
      }
    }
  }
  f.stack.push(hash);
}

inline void Interpreter::op_mload(Frame& f) {
  const u256 offset = f.stack.pop();
  uint64_t off64, len64;
  if (!f.charge_memory(offset, u256{32}, off64, len64)) return;
  if (observer_) observer_->on_memory_access(MemoryLike::kMemory, off64, 32, false);
  f.stack.push(f.memory.load_word(off64));
}

inline void Interpreter::op_mstore(Frame& f) {
  const u256 offset = f.stack.pop(), value = f.stack.pop();
  uint64_t off64, len64;
  if (!f.charge_memory(offset, u256{32}, off64, len64)) return;
  f.memory.store_word(off64, value);
  if (observer_) observer_->on_memory_access(MemoryLike::kMemory, off64, 32, true);
}

inline void Interpreter::op_mstore8(Frame& f) {
  const u256 offset = f.stack.pop(), value = f.stack.pop();
  uint64_t off64, len64;
  if (!f.charge_memory(offset, u256{1}, off64, len64)) return;
  f.memory.store_byte(off64, static_cast<uint8_t>(value.as_u64() & 0xff));
  if (observer_) observer_->on_memory_access(MemoryLike::kMemory, off64, 1, true);
}

inline void Interpreter::op_sload(Frame& f) {
  const u256 key = f.stack.pop();
  const bool cold = state_.access_storage(f.msg.recipient, key);
  if (observer_) observer_->on_storage_access(f.msg.recipient, key, false, cold);
  if (!f.charge(cold ? kGasColdSload : kGasWarmAccess)) return;
  f.stack.push(state_.storage(f.msg.recipient, key));
}

inline void Interpreter::op_tload(Frame& f) {
  const u256 key = f.stack.pop();
  if (observer_) observer_->on_storage_access(f.msg.recipient, key, false, false);
  f.stack.push(state_.transient_storage(f.msg.recipient, key));
}

inline void Interpreter::op_tstore(Frame& f) {
  if (f.msg.is_static) {
    f.fail(VmStatus::kStaticModeViolation);
    return;
  }
  const u256 key = f.stack.pop(), value = f.stack.pop();
  if (observer_) observer_->on_storage_access(f.msg.recipient, key, true, false);
  state_.set_transient_storage(f.msg.recipient, key, value);
}

inline void Interpreter::op_mcopy(Frame& f) {
  const u256 dst = f.stack.pop(), src = f.stack.pop(), len = f.stack.pop();
  uint64_t dst64, len64, src64, len_src;
  if (!f.charge_memory(dst, len, dst64, len64)) return;
  if (!f.charge_memory(src, len, src64, len_src)) return;
  if (!f.charge(kGasCopyWord * EvmMemory::word_count(len64))) return;
  f.memory.copy_within(dst64, src64, len64);
  if (observer_ && len64 > 0) {
    observer_->on_memory_access(MemoryLike::kMemory, src64, len64, false);
    observer_->on_memory_access(MemoryLike::kMemory, dst64, len64, true);
  }
}

inline void Interpreter::op_log(Frame& f, size_t topic_count) {
  if (f.msg.is_static) {
    f.fail(VmStatus::kStaticModeViolation);
    return;
  }
  const u256 offset = f.stack.pop(), len = f.stack.pop();
  LogEntry log;
  log.address = f.msg.recipient;
  for (size_t i = 0; i < topic_count; ++i) log.topics.push_back(f.stack.pop());
  uint64_t off64, len64;
  if (!f.charge_memory(offset, len, off64, len64)) return;
  if (!f.charge(kGasLogTopic * topic_count + kGasLogByte * len64)) return;
  const BytesView payload = f.memory.view(off64, len64);
  log.data.assign(payload.begin(), payload.end());
  if (observer_) {
    if (len64 > 0) observer_->on_memory_access(MemoryLike::kMemory, off64, len64, false);
    observer_->on_log(log);
  }
}

inline void Interpreter::op_return_revert(Frame& f, bool is_revert) {
  const u256 offset = f.stack.pop(), len = f.stack.pop();
  uint64_t off64, len64;
  if (!f.charge_memory(offset, len, off64, len64)) return;
  const BytesView payload = f.memory.view(off64, len64);
  f.output.assign(payload.begin(), payload.end());
  if (observer_ && len64 > 0) {
    observer_->on_memory_access(MemoryLike::kReturnData, 0, len64, true);
  }
  if (is_revert) {
    f.status = VmStatus::kRevert;
  }
  f.halted = true;
}

inline void Interpreter::op_selfdestruct(Frame& f) {
  if (f.msg.is_static) {
    f.fail(VmStatus::kStaticModeViolation);
    return;
  }
  const Address beneficiary = Address::from_u256(f.stack.pop());
  const bool cold = state_.access_account(beneficiary);
  if (observer_) observer_->on_account_access(beneficiary, cold);
  uint64_t cost = cold ? kGasColdAccount : 0;
  if (!state_.exists(beneficiary) && !state_.balance(f.msg.recipient).is_zero()) {
    cost += kGasSelfdestructNewAccount;
  }
  if (!f.charge(cost)) return;
  state_.selfdestruct(f.msg.recipient, beneficiary);
  f.halted = true;
}

}  // namespace hardtape::evm
