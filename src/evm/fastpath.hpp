// Pre-decoded representation for the fast execution engine (DESIGN.md §14).
//
// decode() turns bytecode into a flat instruction stream once per frame:
// PUSH immediates are parsed ahead of time, hot opcode pairs are fused into
// superinstructions (only when no observer watches the per-opcode stream),
// and a basic-block analysis precomputes per-block stack requirements plus
// per-charge-group static gas and memory-expansion needs, so the decoded
// loop charges once per group instead of once per opcode.
//
// A "charge group" is a maximal run of instructions whose combined static gas
// can be deducted up front without becoming observable: it ends (inclusive)
// at any instruction with dynamic gas, world-state access, or a gas/memory
// reading the program can see (GAS, MSIZE), and at any block terminator.
// Because every charge is non-negative and memory-expansion gas telescopes
// monotonically, the group total equals the reference loop's per-opcode sum,
// so out-of-gas triggers on exactly the same frames (externally uniform:
// gas = 0, kOutOfGas). When a group cannot be prepaid the engine bails out
// to the reference loop before mutating anything, which then reproduces the
// per-opcode failure bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::evm::fastpath {

// One X-macro entry per dispatch handler. The list is expanded twice — for
// the FastOp enum here and for the computed-goto label table in
// fastpath.cpp — so the two can never drift out of order.
#define HARDTAPE_FASTOP_LIST(X)                                               \
  /* terminators (end basic block and charge group) */                        \
  X(Stop) X(ImplicitStop) X(Jump) X(Jumpi) X(PushJump) X(PushJumpi)           \
  X(Return) X(Revert) X(Invalid) X(Selfdestruct) X(Undefined)                 \
  /* pure: static gas only, no state access, no observable side channel */    \
  X(Add) X(Mul) X(Sub) X(Div) X(Sdiv) X(Mod) X(Smod) X(Addmod) X(Mulmod)      \
  X(Signextend) X(Lt) X(Gt) X(Slt) X(Sgt) X(Eq) X(Iszero) X(And) X(Or)        \
  X(Xor) X(Not) X(Byte) X(Shl) X(Shr) X(Sar)                                  \
  X(AddressOp) X(Origin) X(Caller) X(Callvalue) X(Calldatasize) X(Codesize)   \
  X(Gasprice) X(Returndatasize) X(Coinbase) X(Timestamp) X(Number)            \
  X(Prevrandao) X(Gaslimit) X(Chainid) X(Selfbalance) X(Basefee)              \
  X(Pop) X(Jumpdest) X(Pc) X(Push) X(Dup) X(Swap)                             \
  X(Calldataload) X(Blockhash) X(Tload)                                       \
  X(PushAdd) X(PushMloadS) X(PushMstoreS)                                     \
  /* checkpoints (end charge group; dynamic gas / state / observability) */   \
  X(Exp) X(Sha3) X(Balance) X(Calldatacopy) X(Codecopy) X(Extcodesize)        \
  X(Extcodecopy) X(Returndatacopy) X(Extcodehash) X(Mload) X(Mstore)          \
  X(Mstore8) X(Sload) X(Sstore) X(Tstore) X(Mcopy) X(Log) X(Msize) X(Gas)     \
  X(DupMload) X(Create) X(Call) X(Callcode) X(Delegatecall) X(Create2)        \
  X(Staticcall)

enum class FastOp : uint8_t {
#define HARDTAPE_X(name) k##name,
  HARDTAPE_FASTOP_LIST(HARDTAPE_X)
#undef HARDTAPE_X
      kCount
};

/// Sentinel for "no pre-resolved jump target" (invalid destination) and for
/// pc_to_instr entries that are not an instruction start.
inline constexpr uint32_t kNoTarget = 0xffffffffu;

/// Static-offset fused memory ops (PUSH+MLOAD / PUSH+MSTORE) are only formed
/// when the immediate end offset stays under this cap, so the whole group's
/// expansion can be prepaid without quadratic-cost surprises. 1 MiB covers
/// the paper's layer-2 memory budget with headroom.
inline constexpr uint64_t kFuseStaticMemCap = uint64_t{1} << 20;

struct Instr {
  FastOp op = FastOp::kUndefined;
  uint8_t byte = 0;   ///< original opcode byte (on_step, CALL-family selector)
  uint8_t aux = 0;    ///< DUP/SWAP depth, LOG topic count
  uint8_t stack_in = 0;   ///< reference pops (observed per-op checks)
  uint8_t stack_out = 0;  ///< reference pushes
  bool block_start = false;
  bool group_start = false;
  uint16_t static_gas = 0;  ///< this instr's static gas (fused: pair total)
  // Stack-effect triplet for block folding: entry requirement, net delta and
  // peak height delta — fused pairs keep the transient peak of the first op.
  int16_t t_req = 0;
  int8_t t_delta = 0;
  int8_t t_peak = 0;
  uint64_t pc = 0;            ///< bytecode pc of the (first) opcode
  uint32_t target = kNoTarget;  ///< fused-jump target instr index
  u256 imm{};  ///< PUSH immediate / fused static memory offset
  // Basic-block metadata (valid when block_start):
  uint32_t block_req = 0;  ///< minimum stack height on entry
  int32_t block_peak = 0;  ///< max height-above-entry reached in the block
  // Charge-group metadata (valid when group_start):
  uint64_t group_gas = 0;        ///< summed static gas, group ops inclusive
  uint64_t group_mem_words = 0;  ///< words needed by static-offset mem ops
};

struct DecodedCode {
  std::vector<Instr> instrs;          ///< ends with a kImplicitStop
  std::vector<uint32_t> pc_to_instr;  ///< code-size entries; kNoTarget gaps
};

/// Decodes `code`; superinstruction fusion only when `fuse` (legal only
/// without an observer — fused pairs collapse two on_step events into one).
DecodedCode decode(BytesView code, bool fuse);

}  // namespace hardtape::evm::fastpath
