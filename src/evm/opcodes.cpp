#include "evm/opcodes.hpp"

#include <array>
#include <string>
#include <unordered_map>

namespace hardtape::evm {

namespace {

std::array<OpInfo, 256> build_table() {
  std::array<OpInfo, 256> table{};
  auto def = [&](Opcode op, std::string_view name, uint8_t in, uint8_t out,
                 uint16_t gas, OpClass cls, uint8_t immediate = 0) {
    table[static_cast<size_t>(op)] = OpInfo{name, in, out, immediate, gas, cls, true};
  };

  // Gas tiers (Yellow Paper appendix G, Shanghai/Cancun values). Dynamic
  // components (memory expansion, cold access, copy size, ...) are charged
  // by the interpreter in-line.
  constexpr uint16_t kZero = 0, kBase = 2, kVeryLow = 3, kLow = 5, kMid = 8,
                     kHigh = 10;

  def(Opcode::STOP, "STOP", 0, 0, kZero, OpClass::kControl);
  def(Opcode::ADD, "ADD", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::MUL, "MUL", 2, 1, kLow, OpClass::kArithmetic);
  def(Opcode::SUB, "SUB", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::DIV, "DIV", 2, 1, kLow, OpClass::kArithmetic);
  def(Opcode::SDIV, "SDIV", 2, 1, kLow, OpClass::kArithmetic);
  def(Opcode::MOD, "MOD", 2, 1, kLow, OpClass::kArithmetic);
  def(Opcode::SMOD, "SMOD", 2, 1, kLow, OpClass::kArithmetic);
  def(Opcode::ADDMOD, "ADDMOD", 3, 1, kMid, OpClass::kArithmetic);
  def(Opcode::MULMOD, "MULMOD", 3, 1, kMid, OpClass::kArithmetic);
  def(Opcode::EXP, "EXP", 2, 1, kHigh, OpClass::kArithmetic);
  def(Opcode::SIGNEXTEND, "SIGNEXTEND", 2, 1, kLow, OpClass::kArithmetic);

  def(Opcode::LT, "LT", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::GT, "GT", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::SLT, "SLT", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::SGT, "SGT", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::EQ, "EQ", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::ISZERO, "ISZERO", 1, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::AND, "AND", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::OR, "OR", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::XOR, "XOR", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::NOT, "NOT", 1, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::BYTE, "BYTE", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::SHL, "SHL", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::SHR, "SHR", 2, 1, kVeryLow, OpClass::kArithmetic);
  def(Opcode::SAR, "SAR", 2, 1, kVeryLow, OpClass::kArithmetic);

  def(Opcode::SHA3, "SHA3", 2, 1, 30, OpClass::kKeccak);

  def(Opcode::ADDRESS, "ADDRESS", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::BALANCE, "BALANCE", 1, 1, kZero, OpClass::kEnvironment);
  def(Opcode::ORIGIN, "ORIGIN", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::CALLER, "CALLER", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::CALLVALUE, "CALLVALUE", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::CALLDATALOAD, "CALLDATALOAD", 1, 1, kVeryLow, OpClass::kMemory);
  def(Opcode::CALLDATASIZE, "CALLDATASIZE", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::CALLDATACOPY, "CALLDATACOPY", 3, 0, kVeryLow, OpClass::kMemory);
  def(Opcode::CODESIZE, "CODESIZE", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::CODECOPY, "CODECOPY", 3, 0, kVeryLow, OpClass::kMemory);
  def(Opcode::GASPRICE, "GASPRICE", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::EXTCODESIZE, "EXTCODESIZE", 1, 1, kZero, OpClass::kEnvironment);
  def(Opcode::EXTCODECOPY, "EXTCODECOPY", 4, 0, kZero, OpClass::kMemory);
  def(Opcode::RETURNDATASIZE, "RETURNDATASIZE", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::RETURNDATACOPY, "RETURNDATACOPY", 3, 0, kVeryLow, OpClass::kMemory);
  def(Opcode::EXTCODEHASH, "EXTCODEHASH", 1, 1, kZero, OpClass::kEnvironment);

  def(Opcode::BLOCKHASH, "BLOCKHASH", 1, 1, 20, OpClass::kEnvironment);
  def(Opcode::COINBASE, "COINBASE", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::TIMESTAMP, "TIMESTAMP", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::NUMBER, "NUMBER", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::PREVRANDAO, "PREVRANDAO", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::GASLIMIT, "GASLIMIT", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::CHAINID, "CHAINID", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::SELFBALANCE, "SELFBALANCE", 0, 1, kLow, OpClass::kEnvironment);
  def(Opcode::BASEFEE, "BASEFEE", 0, 1, kBase, OpClass::kEnvironment);

  def(Opcode::POP, "POP", 1, 0, kBase, OpClass::kStack);
  def(Opcode::MLOAD, "MLOAD", 1, 1, kVeryLow, OpClass::kMemory);
  def(Opcode::MSTORE, "MSTORE", 2, 0, kVeryLow, OpClass::kMemory);
  def(Opcode::MSTORE8, "MSTORE8", 2, 0, kVeryLow, OpClass::kMemory);
  def(Opcode::SLOAD, "SLOAD", 1, 1, kZero, OpClass::kStorage);
  def(Opcode::SSTORE, "SSTORE", 2, 0, kZero, OpClass::kStorage);
  def(Opcode::JUMP, "JUMP", 1, 0, kMid, OpClass::kControl);
  def(Opcode::JUMPI, "JUMPI", 2, 0, kHigh, OpClass::kControl);
  def(Opcode::PC, "PC", 0, 1, kBase, OpClass::kControl);
  def(Opcode::MSIZE, "MSIZE", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::GAS, "GAS", 0, 1, kBase, OpClass::kEnvironment);
  def(Opcode::JUMPDEST, "JUMPDEST", 0, 0, 1, OpClass::kControl);
  def(Opcode::TLOAD, "TLOAD", 1, 1, 100, OpClass::kStorage);
  def(Opcode::TSTORE, "TSTORE", 2, 0, 100, OpClass::kStorage);
  def(Opcode::MCOPY, "MCOPY", 3, 0, kVeryLow, OpClass::kMemory);
  def(Opcode::PUSH0, "PUSH0", 0, 1, kBase, OpClass::kStack);

  static const char* kPushNames[] = {
      "PUSH1",  "PUSH2",  "PUSH3",  "PUSH4",  "PUSH5",  "PUSH6",  "PUSH7",
      "PUSH8",  "PUSH9",  "PUSH10", "PUSH11", "PUSH12", "PUSH13", "PUSH14",
      "PUSH15", "PUSH16", "PUSH17", "PUSH18", "PUSH19", "PUSH20", "PUSH21",
      "PUSH22", "PUSH23", "PUSH24", "PUSH25", "PUSH26", "PUSH27", "PUSH28",
      "PUSH29", "PUSH30", "PUSH31", "PUSH32"};
  for (int i = 0; i < 32; ++i) {
    table[static_cast<size_t>(0x60 + i)] =
        OpInfo{kPushNames[i], 0, 1, static_cast<uint8_t>(i + 1), kVeryLow,
               OpClass::kStack, true};
  }
  static const char* kDupNames[] = {"DUP1",  "DUP2",  "DUP3",  "DUP4",
                                    "DUP5",  "DUP6",  "DUP7",  "DUP8",
                                    "DUP9",  "DUP10", "DUP11", "DUP12",
                                    "DUP13", "DUP14", "DUP15", "DUP16"};
  for (int i = 0; i < 16; ++i) {
    table[static_cast<size_t>(0x80 + i)] =
        OpInfo{kDupNames[i], static_cast<uint8_t>(i + 1),
               static_cast<uint8_t>(i + 2), 0, kVeryLow, OpClass::kStack, true};
  }
  static const char* kSwapNames[] = {"SWAP1",  "SWAP2",  "SWAP3",  "SWAP4",
                                     "SWAP5",  "SWAP6",  "SWAP7",  "SWAP8",
                                     "SWAP9",  "SWAP10", "SWAP11", "SWAP12",
                                     "SWAP13", "SWAP14", "SWAP15", "SWAP16"};
  for (int i = 0; i < 16; ++i) {
    table[static_cast<size_t>(0x90 + i)] =
        OpInfo{kSwapNames[i], static_cast<uint8_t>(i + 2),
               static_cast<uint8_t>(i + 2), 0, kVeryLow, OpClass::kStack, true};
  }
  static const char* kLogNames[] = {"LOG0", "LOG1", "LOG2", "LOG3", "LOG4"};
  for (int i = 0; i < 5; ++i) {
    table[static_cast<size_t>(0xa0 + i)] =
        OpInfo{kLogNames[i], static_cast<uint8_t>(i + 2), 0, 0, 375,
               OpClass::kLog, true};
  }

  def(Opcode::CREATE, "CREATE", 3, 1, 32000, OpClass::kCall);
  def(Opcode::CALL, "CALL", 7, 1, kZero, OpClass::kCall);
  def(Opcode::CALLCODE, "CALLCODE", 7, 1, kZero, OpClass::kCall);
  def(Opcode::RETURN, "RETURN", 2, 0, kZero, OpClass::kControl);
  def(Opcode::DELEGATECALL, "DELEGATECALL", 6, 1, kZero, OpClass::kCall);
  def(Opcode::CREATE2, "CREATE2", 4, 1, 32000, OpClass::kCall);
  def(Opcode::STATICCALL, "STATICCALL", 6, 1, kZero, OpClass::kCall);
  def(Opcode::REVERT, "REVERT", 2, 0, kZero, OpClass::kControl);
  def(Opcode::INVALID, "INVALID", 0, 0, kZero, OpClass::kControl);
  def(Opcode::SELFDESTRUCT, "SELFDESTRUCT", 1, 0, 5000, OpClass::kCall);

  return table;
}

const std::array<OpInfo, 256>& table() {
  static const std::array<OpInfo, 256> t = build_table();
  return t;
}

}  // namespace

const OpInfo& opcode_info(uint8_t opcode) { return table()[opcode]; }

std::optional<uint8_t> opcode_from_name(std::string_view name) {
  static const std::unordered_map<std::string, uint8_t> lookup = [] {
    std::unordered_map<std::string, uint8_t> m;
    for (int i = 0; i < 256; ++i) {
      const OpInfo& info = table()[static_cast<size_t>(i)];
      if (info.defined) m.emplace(std::string(info.name), static_cast<uint8_t>(i));
    }
    // Aliases.
    m.emplace("KECCAK256", 0x20);
    m.emplace("DIFFICULTY", 0x44);
    return m;
  }();
  const auto it = lookup.find(std::string(name));
  if (it == lookup.end()) return std::nullopt;
  return it->second;
}

}  // namespace hardtape::evm
