#include "evm/trace.hpp"

#include <algorithm>

namespace hardtape::evm {

void FrameStatsCollector::on_frame_enter(const FrameInfo& f) {
  LiveFrame frame;
  frame.stats.input_size = f.input_size;
  frame.stats.depth = f.depth;
  frame.stats.code_size = pending_code_size_;
  pending_code_size_ = 0;
  max_depth_ = std::max(max_depth_, f.depth);
  stack_.push_back(std::move(frame));
}

void FrameStatsCollector::on_frame_exit(const FrameExitInfo& f) {
  if (stack_.empty()) return;
  LiveFrame frame = std::move(stack_.back());
  stack_.pop_back();
  frame.stats.memory_size = std::max(frame.stats.memory_size, f.memory_size);
  frame.stats.return_size = f.output_size;
  frame.stats.storage_slots = frame.touched_slots.size();
  finished_.push_back(frame.stats);
}

void FrameStatsCollector::on_code_load(const Address&, size_t n) {
  // on_code_load fires just before on_frame_enter; remember the size for the
  // frame about to start. Empty-code calls never enter a frame, so attribute
  // to the *next* frame via a pending slot kept in the last live frame when
  // nesting, or a standalone pending value at top level.
  pending_code_size_ = n;
}

void FrameStatsCollector::on_storage_access(const Address&, const u256& key, bool, bool) {
  if (stack_.empty()) return;
  auto& slots = stack_.back().touched_slots;
  if (std::find(slots.begin(), slots.end(), key) == slots.end()) slots.push_back(key);
}

void FrameStatsCollector::on_memory_access(MemoryLike m, uint64_t off, uint64_t size, bool) {
  if (stack_.empty()) return;
  FrameStats& stats = stack_.back().stats;
  const uint64_t end = off + size;
  switch (m) {
    case MemoryLike::kMemory:
      stats.memory_size = std::max(stats.memory_size, end);
      break;
    case MemoryLike::kReturnData:
      stats.return_size = std::max(stats.return_size, end);
      break;
    default:
      break;  // code size comes from on_code_load; input from on_frame_enter
  }
}

void FrameStatsCollector::clear() {
  stack_.clear();
  finished_.clear();
  max_depth_ = 0;
  pending_code_size_ = 0;
}

}  // namespace hardtape::evm
