// A small EVM assembler for authoring test and workload contracts.
//
// The workload generator (src/workload) hand-assembles ERC-20, DEX, Ponzi
// and rollup contracts; writing raw hex is unmaintainable, so this module
// provides a line-oriented assembly dialect:
//
//   ; comment
//   PUSH1 0x04          ; sized push with immediate (hex or decimal)
//   PUSH  1000000       ; auto-sized push
//   PUSH  @target       ; label reference (2-byte push, backpatched)
//   JUMP
//   target:
//   JUMPDEST
//   STOP
//
// Labels must be declared as "name:" on their own line and referenced as
// "@name". Label pushes always assemble as PUSH2 so that forward references
// need no relaxation pass.
#pragma once

#include <string_view>

#include "common/bytes.hpp"

namespace hardtape::evm {

/// Assembles source into bytecode. Throws UsageError with a line-numbered
/// message on any syntax error or unknown mnemonic/label.
Bytes assemble(std::string_view source);

/// Disassembles bytecode into one instruction per line (for debugging and
/// examples). Unknown opcodes print as "UNKNOWN_xx".
std::string disassemble(BytesView code);

}  // namespace hardtape::evm
