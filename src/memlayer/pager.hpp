// Layer 2: the on-chip call stack, managed as a ring of 1 KB pages
// (paper Section IV-B, layers 2 and 3).
//
// Invariant maintained by the pager, straight from the paper: the current
// (topmost) execution frame is always entirely on-chip, so layer-1 misses
// are always served from layer 2 without touching the untrusted world.
// Only the *bottom* pages of the call stack spill to layer 3 when the ring
// fills, and returning to a lower frame reloads all of its pages.
//
// What the adversary can observe is the sequence of swap operations and
// their page counts (threat A5). Two defenses:
//  - the swap order depends only on the *total* call-stack size, never on
//    which frame is which (the ring), and
//  - every swap is padded with a random number of pre-evicted / pre-loaded
//    extra pages drawn from the Manufacturer's RNG, decorrelating observed
//    counts from true frame sizes.
//
// A single frame reaching half of the layer-2 capacity is treated as an
// attack and aborts the bundle with kMemoryOverflow.
#pragma once

#include <vector>

#include "common/errors.hpp"
#include "common/random.hpp"
#include "memlayer/layer3.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"

namespace hardtape::memlayer {

struct MemLayerConfig {
  size_t page_size = 1024;          ///< 1 KB pages
  size_t l2_bytes = 1024 * 1024;    ///< 1 MB layer-2 per HEVM (paper §IV-B)
  size_t max_noise_pages = 8;       ///< upper bound on pre-evict/load noise
  uint64_t rng_seed = 0;
  /// Optional swap-event tracing (obs). Emission is observation-only: it
  /// never draws from the RNG or advances the clock, so traced and untraced
  /// runs produce identical swap schedules.
  obs::TraceRing* trace = nullptr;
  const sim::SimClock* clock = nullptr;  ///< sim timestamps for trace events

  size_t l2_pages() const { return l2_bytes / page_size; }
  /// Memory Overflow threshold: half the layer-2 size (paper rule).
  size_t frame_page_limit() const { return l2_pages() / 2; }
};

/// Noise-RNG stream id for (engine seed, bundle, attempt) — the seed to put
/// in MemLayerConfig::rng_seed. Mirrors faults::fault_stream(): the swap
/// padding drawn for a bundle must depend only on these three values, never
/// on worker count, submission interleaving, or a shared RNG's call order,
/// so a 1-worker and an 8-worker run of the same workload produce identical
/// swap schedules, while a retried bundle still draws fresh padding.
inline uint64_t noise_stream(uint64_t seed, uint64_t bundle_id, uint32_t attempt) {
  return seed ^ ((bundle_id + 1) * 0x9e3779b97f4a7c15ull + attempt);
}

/// One observable swap operation: what the adversary sees on the memory bus.
struct SwapEvent {
  enum class Kind : uint8_t { kEvict, kLoad } kind;
  uint64_t pages;        ///< observed count (true + noise)
  uint64_t noise_pages;  ///< noise component (internal ground truth, not visible)
};

class CallStackPager {
 public:
  CallStackPager(const MemLayerConfig& config, const crypto::AesKey128& session_key);

  /// Enters a new execution frame with `pages` initial pages (CALL).
  /// Returns kMemoryOverflow when the frame alone violates the limit.
  Status push_frame(size_t pages);
  /// Expands the current frame to `total_pages` (memory growth).
  Status grow_frame(size_t total_pages);
  /// Leaves the top frame (RETURN/REVERT/STOP); reloads the caller's
  /// swapped pages to restore the invariant.
  void pop_frame();
  /// End of bundle: clears everything (HEVM reset, Fig. 3 step 10).
  void reset();

  int depth() const { return static_cast<int>(frames_.size()); }
  size_t resident_pages() const { return total_pages_ - swapped_pages_; }
  size_t total_pages() const { return total_pages_; }
  size_t peak_total_pages() const { return peak_total_pages_; }
  size_t swapped_pages() const { return swapped_pages_; }
  size_t current_frame_pages() const {
    return frames_.empty() ? 0 : frames_.back();
  }

  /// The adversary's view of this bundle.
  const std::vector<SwapEvent>& swap_events() const { return events_; }
  uint64_t total_evicted_pages() const { return total_evicted_; }
  uint64_t total_loaded_pages() const { return total_loaded_; }
  Layer3Memory& layer3() { return layer3_; }

  const MemLayerConfig& config() const { return config_; }

 private:
  // Ensures resident_pages() <= l2_pages(), spilling bottom pages (+noise).
  void ensure_fits();
  void evict(size_t required);
  void load(size_t required);

  MemLayerConfig config_;
  Random rng_;
  Layer3Memory layer3_;
  std::vector<size_t> frames_;  // page count per frame, bottom..top
  size_t total_pages_ = 0;
  size_t peak_total_pages_ = 0;
  size_t swapped_pages_ = 0;    // spilled prefix of the page sequence
  uint64_t next_slot_ = 0;      // layer-3 slot sequence (kept on-chip)
  std::vector<SwapEvent> events_;
  uint64_t total_evicted_ = 0;
  uint64_t total_loaded_ = 0;
};

}  // namespace hardtape::memlayer
