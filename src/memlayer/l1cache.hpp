// Layer 1: the per-HEVM cache partitions (paper Section IV-B, layer 1).
//
// Capacities follow the paper's Table-I-driven sizing: 64 KB for Code, 4 KB
// for each other memory-like, 32 KB for the full runtime stack (always
// resident, so never modeled as missing), 1 KB of frame state, and a 4 KB
// world-state cache good for 64 records.
//
// This is a timing/statistics model: it tracks which 1 KB pages (or which
// records, for the world-state partition) are resident and reports hits and
// misses; the payload bytes live in the interpreter. Layer-1 misses are
// served by layer 2 and are invisible off-chip; the counts feed the HEVM
// cycle model.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace hardtape::memlayer {

/// LRU set of page indices with a fixed capacity.
class LruPageCache {
 public:
  explicit LruPageCache(size_t capacity_pages) : capacity_(capacity_pages) {}

  /// Touches a page; returns true on hit.
  bool access(uint64_t page) {
    const auto it = map_.find(page);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return true;
    }
    ++misses_;
    lru_.push_front(page);
    map_[page] = lru_.begin();
    if (map_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    return false;
  }

  void clear() {
    lru_.clear();
    map_.clear();
  }
  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

struct L1Config {
  size_t page_size = 1024;
  size_t code_bytes = 64 * 1024;
  size_t memlike_bytes = 4 * 1024;      // Input / Memory / ReturnData each
  size_t worldstate_records = 64;       // 4 KB / 64 B per cached record

  size_t code_pages() const { return code_bytes / page_size; }
  size_t memlike_pages() const { return memlike_bytes / page_size; }
};

/// The four memory-like partitions of one execution frame plus the
/// world-state record cache. Reset on frame switches (each frame has its own
/// working set; layer 2 holds the evicted contents).
struct L1Caches {
  explicit L1Caches(const L1Config& config = {})
      : code(config.code_pages()),
        input(config.memlike_pages()),
        memory(config.memlike_pages()),
        return_data(config.memlike_pages()),
        world_state(config.worldstate_records) {}

  void clear_frame_local() {
    code.clear();
    input.clear();
    memory.clear();
    return_data.clear();
    // world_state persists across frames within a bundle (records are not
    // frame-scoped).
  }

  LruPageCache code;
  LruPageCache input;
  LruPageCache memory;
  LruPageCache return_data;
  LruPageCache world_state;
};

}  // namespace hardtape::memlayer
