// Glue between the EVM interpreter and the 3-layer memory model: an
// ExecutionObserver that drives the L1 caches and the L2 call-stack pager
// from interpreter events and accumulates the resulting cycle/time costs.
//
// This is the component that turns the *functional* interpreter into the
// *hardware* HEVM for simulation purposes (DESIGN.md §6: one semantic core,
// two timing skins).
#pragma once

#include "evm/trace.hpp"
#include "memlayer/l1cache.hpp"
#include "memlayer/pager.hpp"

namespace hardtape::memlayer {

struct MemLayerStats {
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t frames_entered = 0;
  uint64_t memory_overflows = 0;
};

class MemLayerObserver : public evm::ExecutionObserver {
 public:
  MemLayerObserver(const L1Config& l1_config, const MemLayerConfig& l2_config,
                   const crypto::AesKey128& session_key)
      : l1_config_(l1_config), caches_(l1_config), pager_(l2_config, session_key) {}

  void on_step(const StepInfo& info) override {
    // Instruction fetch: the PC's code page must be in the L1 code cache.
    track(caches_.code.access(info.pc / l1_config_.page_size));
  }

  void on_memory_access(evm::MemoryLike which, uint64_t offset, uint64_t size,
                        bool /*is_write*/) override {
    LruPageCache* cache = nullptr;
    switch (which) {
      case evm::MemoryLike::kCode: cache = &caches_.code; break;
      case evm::MemoryLike::kInput: cache = &caches_.input; break;
      case evm::MemoryLike::kMemory: cache = &caches_.memory; break;
      case evm::MemoryLike::kReturnData: cache = &caches_.return_data; break;
    }
    const uint64_t first = offset / l1_config_.page_size;
    const uint64_t last = size == 0 ? first : (offset + size - 1) / l1_config_.page_size;
    for (uint64_t page = first; page <= last; ++page) track(cache->access(page));

    // Frame Memory growth feeds the layer-2 pager. A frame's footprint is
    // its base pages (stack + frame state + input) plus its Memory pages.
    if (which == evm::MemoryLike::kMemory && pager_.depth() > 0 &&
        !frame_base_pages_.empty()) {
      const uint64_t end = offset + size;
      const size_t mem_pages = (end + l1_config_.page_size - 1) / l1_config_.page_size;
      const size_t pages = frame_base_pages_.back() + mem_pages;
      if (pages > pager_.current_frame_pages()) {
        if (pager_.grow_frame(pages) == Status::kMemoryOverflow) {
          ++stats_.memory_overflows;
        }
      }
    }
  }

  void on_storage_access(const Address& addr, const u256& key, bool, bool) override {
    // World-state record cache: 64 entries, hashed over (addr, key).
    const uint64_t tag = AddressHasher{}(addr) ^ U256Hasher{}(key);
    track(caches_.world_state.access(tag));
  }

  void on_frame_enter(const FrameInfo& info) override {
    ++stats_.frames_entered;
    caches_.clear_frame_local();
    // Initial frame footprint: stack page + frame state + input pages.
    const size_t input_pages = (info.input_size + l1_config_.page_size - 1) / l1_config_.page_size;
    frame_base_pages_.push_back(2 + input_pages);
    if (pager_.push_frame(2 + input_pages) == Status::kMemoryOverflow) {
      ++stats_.memory_overflows;
    }
  }

  void on_frame_exit(const FrameExitInfo&) override {
    caches_.clear_frame_local();
    if (!frame_base_pages_.empty()) frame_base_pages_.pop_back();
    if (pager_.depth() > 0) pager_.pop_frame();
  }

  /// End-of-bundle reset (Fig. 3 step 10: all on-chip memories cleared).
  void reset() {
    caches_ = L1Caches(l1_config_);
    pager_.reset();
    stats_ = {};
    frame_base_pages_.clear();
  }

  const MemLayerStats& stats() const { return stats_; }
  const CallStackPager& pager() const { return pager_; }
  CallStackPager& pager() { return pager_; }
  const L1Caches& caches() const { return caches_; }

 private:
  void track(bool hit) {
    if (hit) {
      ++stats_.l1_hits;
    } else {
      ++stats_.l1_misses;
    }
  }

  L1Config l1_config_;
  L1Caches caches_;
  CallStackPager pager_;
  MemLayerStats stats_;
  std::vector<size_t> frame_base_pages_;
};

}  // namespace hardtape::memlayer
