#include "memlayer/pager.hpp"

#include <algorithm>

namespace hardtape::memlayer {

namespace {
// The pager tracks page *placement*; the page payloads live in the HEVM's
// frame memories. For the layer-3 data path we seal a deterministic page
// image per slot so the store/load/authenticate path is fully exercised.
Bytes page_image(uint64_t slot, size_t page_size) {
  Bytes page(page_size);
  for (size_t i = 0; i < page_size; ++i) {
    page[i] = static_cast<uint8_t>((slot * 131) + i);
  }
  return page;
}
}  // namespace

CallStackPager::CallStackPager(const MemLayerConfig& config,
                               const crypto::AesKey128& session_key)
    : config_(config), rng_(config.rng_seed), layer3_(session_key, config.rng_seed ^ 0x5117) {
  if (config_.l2_pages() < 2) throw UsageError("pager: layer 2 too small");
}

Status CallStackPager::push_frame(size_t pages) {
  if (pages >= config_.frame_page_limit()) return Status::kMemoryOverflow;
  frames_.push_back(pages);
  total_pages_ += pages;
  peak_total_pages_ = std::max(peak_total_pages_, total_pages_);
  ensure_fits();
  return Status::kOk;
}

Status CallStackPager::grow_frame(size_t total_pages) {
  if (frames_.empty()) throw UsageError("pager: no frame to grow");
  if (total_pages >= config_.frame_page_limit()) return Status::kMemoryOverflow;
  if (total_pages <= frames_.back()) return Status::kOk;  // never shrinks
  const size_t delta = total_pages - frames_.back();
  frames_.back() = total_pages;
  total_pages_ += delta;
  peak_total_pages_ = std::max(peak_total_pages_, total_pages_);
  ensure_fits();
  return Status::kOk;
}

void CallStackPager::pop_frame() {
  if (frames_.empty()) throw UsageError("pager: no frame to pop");
  const size_t top = frames_.back();
  frames_.pop_back();
  total_pages_ -= top;  // the top frame was fully resident
  if (frames_.empty()) return;
  // Restore the invariant: the new top frame must be entirely on-chip.
  const size_t max_swapped = total_pages_ - frames_.back();
  if (swapped_pages_ > max_swapped) {
    load(swapped_pages_ - max_swapped);
  }
}

void CallStackPager::reset() {
  frames_.clear();
  total_pages_ = 0;
  peak_total_pages_ = 0;
  swapped_pages_ = 0;
  next_slot_ = 0;
  events_.clear();
  total_evicted_ = 0;
  total_loaded_ = 0;
}

void CallStackPager::ensure_fits() {
  if (resident_pages() > config_.l2_pages()) {
    evict(resident_pages() - config_.l2_pages());
  }
}

void CallStackPager::evict(size_t required) {
  // Noise: pre-evict extra pages, but never pages of the current frame
  // (which must stay resident).
  const size_t top = frames_.empty() ? 0 : frames_.back();
  const size_t evictable = resident_pages() - top;
  if (required > evictable) throw HardtapeError("pager: frame exceeds layer 2");
  const size_t max_extra = std::min<size_t>(config_.max_noise_pages, evictable - required);
  const size_t noise = rng_.swap_noise(max_extra);
  const size_t count = required + noise;

  for (size_t i = 0; i < count; ++i) {
    layer3_.store(next_slot_, page_image(next_slot_, config_.page_size));
    ++next_slot_;
  }
  swapped_pages_ += count;
  total_evicted_ += count;
  events_.push_back({SwapEvent::Kind::kEvict, count, noise});
  if (config_.trace != nullptr) {
    config_.trace->append(obs::TraceCategory::kSwap,
                          static_cast<uint16_t>(obs::TraceCode::kSwapEvict),
                          config_.clock != nullptr ? config_.clock->now_ns() : 0, count, noise,
                          frames_.size());
  }
}

void CallStackPager::load(size_t required) {
  if (required > swapped_pages_) throw HardtapeError("pager: load underflow");
  // Noise: pre-load extra swapped pages if both the swap area and the free
  // layer-2 space allow it.
  const size_t free_after = config_.l2_pages() - (resident_pages() + required);
  const size_t max_extra = std::min({static_cast<size_t>(config_.max_noise_pages),
                                     swapped_pages_ - required, free_after});
  const size_t noise = rng_.swap_noise(max_extra);
  const size_t count = required + noise;

  for (size_t i = 0; i < count; ++i) {
    --next_slot_;
    const auto page = layer3_.load(next_slot_);
    if (!page.has_value()) {
      throw HardtapeError("pager: layer-3 page failed authentication");
    }
    layer3_.erase(next_slot_);
  }
  swapped_pages_ -= count;
  total_loaded_ += count;
  events_.push_back({SwapEvent::Kind::kLoad, count, noise});
  if (config_.trace != nullptr) {
    config_.trace->append(obs::TraceCategory::kSwap,
                          static_cast<uint16_t>(obs::TraceCode::kSwapLoad),
                          config_.clock != nullptr ? config_.clock->now_ns() : 0, count, noise,
                          frames_.size());
  }
}

}  // namespace hardtape::memlayer
