#include "memlayer/layer3.hpp"

#include <cstring>

namespace hardtape::memlayer {

void Layer3Memory::store(uint64_t slot, BytesView page) {
  Sealed sealed;
  rng_.fill(sealed.nonce.data(), sealed.nonce.size());
  // The slot number is authenticated as AAD so a sealed page cannot be
  // replayed into a different slot.
  uint8_t aad[8];
  for (int i = 0; i < 8; ++i) aad[i] = static_cast<uint8_t>(slot >> (8 * i));
  auto result = crypto::aes_gcm_encrypt(key_, sealed.nonce, page, BytesView{aad, 8});
  sealed.ciphertext = std::move(result.ciphertext);
  sealed.tag = result.tag;
  slots_[slot] = std::move(sealed);
}

std::optional<Bytes> Layer3Memory::load(uint64_t slot) const {
  const auto it = slots_.find(slot);
  if (it == slots_.end()) return std::nullopt;
  uint8_t aad[8];
  for (int i = 0; i < 8; ++i) aad[i] = static_cast<uint8_t>(slot >> (8 * i));
  return crypto::aes_gcm_decrypt(key_, it->second.nonce, it->second.ciphertext,
                                 BytesView{aad, 8}, it->second.tag);
}

bool Layer3Memory::tamper(uint64_t slot) {
  const auto it = slots_.find(slot);
  if (it == slots_.end()) return false;
  if (it->second.ciphertext.empty()) {
    it->second.tag[0] ^= 1;
  } else {
    it->second.ciphertext[0] ^= 1;
  }
  return true;
}

bool Layer3Memory::replay(uint64_t from_slot, uint64_t to_slot) {
  const auto it = slots_.find(from_slot);
  if (it == slots_.end()) return false;
  slots_[to_slot] = it->second;
  return true;
}

}  // namespace hardtape::memlayer
