// Layer 3: the untrusted off-chip memory (paper Section IV-B).
//
// Holds call-stack pages evicted from the on-chip layer 2. The adversary has
// full read/write access to this memory (threat A4), so every page is sealed
// with AES-GCM under the per-session key before it leaves the chip, and any
// modification is detected on reload.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/random.hpp"
#include "crypto/aes.hpp"

namespace hardtape::memlayer {

class Layer3Memory {
 public:
  Layer3Memory(const crypto::AesKey128& session_key, uint64_t rng_seed)
      : key_(session_key), rng_(rng_seed) {}

  /// Seals and stores one page under `slot` (a page sequence number chosen
  /// by the pager; base offsets stay on-chip so the slot reveals nothing
  /// about the call-stack structure).
  void store(uint64_t slot, BytesView page);

  /// Loads and authenticates. Returns nullopt when the page is missing or
  /// fails authentication — the caller must abort the bundle.
  std::optional<Bytes> load(uint64_t slot) const;

  void erase(uint64_t slot) { slots_.erase(slot); }
  size_t page_count() const { return slots_.size(); }

  /// Adversary actions, for tests: flip a ciphertext bit / replay an old
  /// sealed page into another slot.
  bool tamper(uint64_t slot);
  bool replay(uint64_t from_slot, uint64_t to_slot);

 private:
  struct Sealed {
    crypto::GcmNonce nonce{};
    crypto::GcmTag tag{};
    Bytes ciphertext;
  };

  crypto::AesKey128 key_;
  mutable Random rng_;
  std::unordered_map<uint64_t, Sealed> slots_;
};

}  // namespace hardtape::memlayer
