// Hand-assembled EVM contracts used by the synthetic Mainnet workload.
//
// The evaluation set of the paper is blocks #19145194-#19145293; we cannot
// redistribute them, so the workload generator (workload/generator.hpp)
// composes these contracts into blocks whose Table-I statistics match the
// paper's. Each contract is written in the assembler dialect of
// evm/assembler.hpp and exercises a distinct slice of the system:
//
//  - ERC-20: the canonical token (transfer/mint/balanceOf), storage-heavy;
//  - DEX pair: constant-product swap calling the token (depth-2 calls, the
//    MEV-sensitive workload from the paper's intro);
//  - Ponzi: value-forwarding scheme (paper's scam-contract motivation);
//  - Router: self-recursive call chains with parametrized depth (drives the
//    Table-I call-depth distribution);
//  - Rollup batcher: bulk sequential storage writes + large calldata (the
//    §VI-B transactions that can trip the Memory Overflow Error);
//  - Honeypot: deposits accepted, withdrawals secretly blocked (the
//    scam-detector example's target).
#pragma once

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace hardtape::workload {

// Runtime bytecode (deployed directly into world state; no constructors).
Bytes erc20_code();
Bytes dex_pair_code();
Bytes ponzi_code();
Bytes router_code();
Bytes rollup_batcher_code();
Bytes honeypot_code();

/// Pads runtime code with a STOP followed by zero bytes to `target_size`,
/// emulating the larger real-world contracts of the paper's Table I code
/// size distribution without changing behavior.
Bytes pad_code(Bytes code, size_t target_size);

// Function selectors (first 4 bytes of the call data).
inline constexpr uint32_t kSelTransfer = 0xa9059cbb;   // transfer(address,uint256)
inline constexpr uint32_t kSelBalanceOf = 0x70a08231;  // balanceOf(address)
inline constexpr uint32_t kSelMint = 0x40c10f19;       // mint(address,uint256)
inline constexpr uint32_t kSelSwap = 0x51505ee3;       // swap(uint256)
inline constexpr uint32_t kSelAddLiquidity = 0x9cd441da;  // addLiquidity(uint256,uint256)
inline constexpr uint32_t kSelRoute = 0x7a7d2a7c;      // route(depth,token,to,amt)
inline constexpr uint32_t kSelSubmitBatch = 0x8d0e5a2a; // submit(base,count)
inline constexpr uint32_t kSelInvest = 0xe8b5e51f;     // invest()
inline constexpr uint32_t kSelDeposit = 0xd0e30db0;    // deposit()
inline constexpr uint32_t kSelWithdraw = 0x3ccfd60b;   // withdraw()

// Calldata builders.
Bytes calldata_selector(uint32_t selector);
Bytes erc20_transfer(const Address& to, const u256& amount);
Bytes erc20_mint(const Address& to, const u256& amount);
Bytes erc20_balance_of(const Address& owner);
Bytes dex_swap(const u256& amount_in);
Bytes dex_add_liquidity(const u256& amount0, const u256& amount1);
Bytes router_route(uint64_t depth, const Address& token, const Address& to,
                   const u256& amount);
Bytes rollup_submit(const u256& base_key, uint64_t count, size_t extra_payload = 0);

// DEX storage layout: slot 0 = reserve0, 1 = reserve1, 2 = token0, 3 = token1.
inline constexpr uint64_t kDexReserve0Slot = 0;
inline constexpr uint64_t kDexReserve1Slot = 1;
inline constexpr uint64_t kDexToken1Slot = 3;
// Honeypot: the hidden withdrawal-enable flag lives at slot 0x63.
inline constexpr uint64_t kHoneypotFlagSlot = 0x63;

}  // namespace hardtape::workload
