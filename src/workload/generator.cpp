#include "workload/generator.hpp"

#include "crypto/keccak.hpp"

namespace hardtape::workload {

WorkloadGenerator::WorkloadGenerator(GeneratorConfig config, ProfileMix mix)
    : config_(config), mix_(mix), rng_(config.seed) {}

Address WorkloadGenerator::fresh_address() {
  // Deterministic, well-spread addresses.
  const H256 h = crypto::keccak256(u256{next_address_++}.to_be_bytes_vec());
  Address addr;
  std::memcpy(addr.bytes.data(), h.bytes.data() + 12, 20);
  return addr;
}

size_t WorkloadGenerator::sample_code_size() {
  // Table I(a), "code" column: <1k 9.5%, 1-4k 25.3%, 4-12k 39.6%,
  // 12-64k 25.6%, >64k 0%.
  const double p = rng_.uniform_double();
  if (p < 0.095) return 256 + rng_.uniform(700);
  if (p < 0.095 + 0.253) return 1024 + rng_.uniform(3 * 1024);
  if (p < 0.095 + 0.253 + 0.396) return 4 * 1024 + rng_.uniform(8 * 1024);
  return 12 * 1024 + rng_.uniform(12 * 1024);  // cap at 24k (EIP-170)
}

void WorkloadGenerator::deploy(state::WorldState& world) {
  const u256 kUserFunds = u256::from_string("1000000000000000000000");  // 1000 ETH

  for (size_t i = 0; i < config_.user_accounts; ++i) {
    const Address user = fresh_address();
    world.set_balance(user, kUserFunds);
    users_.push_back(user);
  }

  for (size_t i = 0; i < config_.erc20_contracts; ++i) {
    const Address token = fresh_address();
    world.set_code(token, pad_code(erc20_code(), sample_code_size()));
    // Pre-mint balances for every user (balance slot = user address).
    for (const Address& user : users_) {
      world.set_storage(token, user.to_u256(), u256{1'000'000'000});
    }
    tokens_.push_back(token);
  }

  for (size_t i = 0; i < config_.dex_pairs; ++i) {
    const Address dex = fresh_address();
    world.set_code(dex, pad_code(dex_pair_code(), sample_code_size()));
    const Address token1 = tokens_[i % tokens_.size()];
    world.set_storage(dex, u256{kDexReserve0Slot}, u256{10'000'000'000ull});
    world.set_storage(dex, u256{kDexReserve1Slot}, u256{10'000'000'000ull});
    world.set_storage(dex, u256{kDexToken1Slot}, token1.to_u256());
    // The pair holds token1 inventory to pay out swaps.
    world.set_storage(token1, dex.to_u256(), u256{1'000'000'000'000ull});
    dexes_.push_back(dex);
  }

  for (size_t i = 0; i < config_.routers; ++i) {
    const Address router = fresh_address();
    world.set_code(router, pad_code(router_code(), sample_code_size()));
    // Routers hold token balances so their leaf transfers succeed.
    for (const Address& token : tokens_) {
      world.set_storage(token, router.to_u256(), u256{1'000'000'000'000ull});
    }
    routers_.push_back(router);
  }

  ponzi_ = fresh_address();
  world.set_code(ponzi_, pad_code(ponzi_code(), 1024 + rng_.uniform(2048)));
  rollup_ = fresh_address();
  world.set_code(rollup_, pad_code(rollup_batcher_code(), 4096 + rng_.uniform(6144)));
  honeypot_ = fresh_address();
  world.set_code(honeypot_, pad_code(honeypot_code(), 2048));
}

evm::Transaction WorkloadGenerator::make_tx(const Address& from, const Address& to,
                                            Bytes data, const u256& value,
                                            uint64_t gas) {
  evm::Transaction tx;
  tx.from = from;
  tx.to = to;
  tx.data = std::move(data);
  tx.value = value;
  tx.gas_limit = gas;
  tx.gas_price = u256{10};
  return tx;
}

std::vector<evm::Transaction> WorkloadGenerator::generate_block() {
  std::vector<evm::Transaction> txs;
  txs.reserve(config_.txs_per_block);

  for (size_t i = 0; i < config_.txs_per_block; ++i) {
    const Address& from = users_[rng_.uniform(users_.size())];
    const Address& to_user = users_[rng_.uniform(users_.size())];
    double p = rng_.uniform_double();

    if ((p -= mix_.plain_transfer) < 0) {
      txs.push_back(make_tx(from, to_user, {}, u256{1 + rng_.uniform(1000)}, 50'000));
      continue;
    }
    if ((p -= mix_.erc20_transfer) < 0) {
      const Address& token = tokens_[rng_.uniform(tokens_.size())];
      txs.push_back(make_tx(from, token,
                            erc20_transfer(to_user, u256{1 + rng_.uniform(10'000)})));
      continue;
    }
    if ((p -= mix_.erc20_mint) < 0) {
      const Address& token = tokens_[rng_.uniform(tokens_.size())];
      txs.push_back(make_tx(from, token,
                            erc20_mint(to_user, u256{1 + rng_.uniform(10'000)})));
      continue;
    }
    if ((p -= mix_.dex_swap) < 0) {
      const Address& dex = dexes_[rng_.uniform(dexes_.size())];
      txs.push_back(make_tx(from, dex, dex_swap(u256{100 + rng_.uniform(100'000)})));
      continue;
    }
    if ((p -= mix_.ponzi_invest) < 0) {
      txs.push_back(make_tx(from, ponzi_, calldata_selector(kSelInvest),
                            u256{1000 + rng_.uniform(100'000)}));
      continue;
    }
    if ((p -= mix_.router_chain) < 0) {
      // Depth sampled to shape the Table I call-depth tail: mostly 2-5,
      // sometimes 6-10, rarely deeper.
      // Route parameter d yields a call depth of d+2 frames; sampled to
      // shape Table I's depth tail (2-5 common, 6-10 ~6%, >10 rare).
      const double dp = rng_.uniform_double();
      uint64_t depth;
      if (dp < 0.60) depth = rng_.uniform_range(0, 3);
      else if (dp < 0.96) depth = rng_.uniform_range(4, 8);
      else depth = rng_.uniform_range(9, 14);
      const Address& router = routers_[rng_.uniform(routers_.size())];
      const Address& token = tokens_[rng_.uniform(tokens_.size())];
      txs.push_back(make_tx(from, router,
                            router_route(depth, token, to_user, u256{1 + rng_.uniform(100)}),
                            u256{}, 5'000'000));
      continue;
    }
    if ((p -= mix_.small_batch) < 0) {
      // Settlement-style batch: 5-16 consecutive storage records, moderate
      // calldata (drives Table I(b)'s 5-16 bucket and the 1-4k memory tail).
      const uint64_t count = rng_.uniform_range(5, 16);
      const size_t payload = 256 + rng_.uniform(3 * 1024);
      const u256 base = u256{rng_.next_u64()} << 5;
      txs.push_back(make_tx(from, rollup_, rollup_submit(base, count, payload),
                            u256{}, 4'000'000));
      continue;
    }
    // Rollup batch (the remaining probability mass).
    if (config_.include_rollups) {
      const uint64_t count = 16 + rng_.uniform(120);
      const size_t payload = 512 + rng_.uniform(3000);
      const u256 base = u256{rng_.next_u64()} << 5;  // group-aligned base key
      txs.push_back(make_tx(from, rollup_, rollup_submit(base, count, payload),
                            u256{}, 8'000'000));
    } else {
      txs.push_back(make_tx(from, to_user, {}, u256{1}, 50'000));
    }
  }
  return txs;
}

std::vector<std::vector<evm::Transaction>> WorkloadGenerator::generate_evaluation_set(
    size_t block_count) {
  std::vector<std::vector<evm::Transaction>> blocks;
  blocks.reserve(block_count);
  for (size_t i = 0; i < block_count; ++i) blocks.push_back(generate_block());
  return blocks;
}

}  // namespace hardtape::workload
