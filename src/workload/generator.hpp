// Synthetic Mainnet workload generator, calibrated to the paper's Table I.
//
// The paper evaluates on Ethereum Mainnet blocks #19145194-#19145293 (~100
// blocks, ~200 transactions each). We reproduce the *statistics* of that
// evaluation set — per-frame memory-like sizes, storage records per frame,
// call depth per transaction — by sampling transaction profiles from the
// Table I marginals and instantiating them over a deployed population of
// ERC-20 / DEX / Ponzi / router / rollup contracts whose code sizes follow
// the Table I code-size distribution.
#pragma once

#include "common/random.hpp"
#include "evm/types.hpp"
#include "state/world_state.hpp"
#include "workload/contracts.hpp"

namespace hardtape::workload {

struct GeneratorConfig {
  uint64_t seed = 19145194;
  size_t user_accounts = 64;
  size_t erc20_contracts = 12;
  size_t dex_pairs = 6;
  size_t routers = 4;
  size_t txs_per_block = 200;  ///< mainnet: ~200 tx / block (paper §II-A)
  bool include_rollups = true;
};

/// Transaction profile mix. Defaults approximate the Table I marginals:
/// depth-1 txs ~40%, depth 2-5 ~53%, deeper ~7%; most frames touch <= 4
/// storage records, some 5-16; rollups produce the storage/input tails.
struct ProfileMix {
  double plain_transfer = 0.06;  // depth 1, no storage
  double erc20_transfer = 0.20;  // depth 1, 2-3 records
  double erc20_mint = 0.03;      // depth 1, 2-3 records
  double dex_swap = 0.36;        // depth 2, ~8 records in the pair frame
  double ponzi_invest = 0.04;    // depth 1, 2-3 records + value forwarding
  double router_chain = 0.15;    // depth 2-16 (sampled), few records/frame
  double small_batch = 0.06;     // depth 1, 5-16 records (settlement-style)
  double rollup_batch = 0.02;    // depth 1, 16+ records, large calldata
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(GeneratorConfig config = {}, ProfileMix mix = {});

  /// Deploys the contract population and funds the user accounts.
  void deploy(state::WorldState& world);

  /// One block's worth of transactions (callable repeatedly; nonces are not
  /// set, letting the executor use the account's current nonce).
  std::vector<evm::Transaction> generate_block();

  /// The whole evaluation set: `block_count` blocks.
  std::vector<std::vector<evm::Transaction>> generate_evaluation_set(size_t block_count);

  const std::vector<Address>& users() const { return users_; }
  const std::vector<Address>& tokens() const { return tokens_; }
  const std::vector<Address>& dexes() const { return dexes_; }
  const std::vector<Address>& routers() const { return routers_; }
  const Address& ponzi() const { return ponzi_; }
  const Address& rollup() const { return rollup_; }
  const Address& honeypot() const { return honeypot_; }

  /// Samples a code size from the Table I "code" column distribution.
  size_t sample_code_size();

 private:
  Address fresh_address();
  evm::Transaction make_tx(const Address& from, const Address& to, Bytes data,
                           const u256& value = u256{}, uint64_t gas = 2'000'000);

  GeneratorConfig config_;
  ProfileMix mix_;
  Random rng_;
  uint64_t next_address_ = 1;
  std::vector<Address> users_;
  std::vector<Address> tokens_;
  std::vector<Address> dexes_;
  std::vector<Address> routers_;
  Address ponzi_{};
  Address rollup_{};
  Address honeypot_{};
};

}  // namespace hardtape::workload
