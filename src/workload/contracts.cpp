#include "workload/contracts.hpp"

#include "evm/assembler.hpp"

namespace hardtape::workload {

namespace {

std::string hex32(uint32_t selector) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%08x", selector);
  return buf;
}

std::string dispatch(std::initializer_list<std::pair<uint32_t, const char*>> entries) {
  // Common prologue: load the selector, compare against each entry.
  std::string out = "PUSH1 0x00 CALLDATALOAD PUSH1 224 SHR\n";
  for (const auto& [selector, label] : entries) {
    out += "DUP1 PUSH4 " + hex32(selector) + " EQ PUSH @" + label + " JUMPI\n";
  }
  out += "PUSH0 PUSH0 REVERT\n";
  return out;
}

}  // namespace

Bytes erc20_code() {
  // Storage layout: slot 0 = totalSupply; balance of address A at slot A.
  const std::string src = dispatch({{kSelTransfer, "transfer"},
                                    {kSelBalanceOf, "balanceOf"},
                                    {kSelMint, "mint"}}) +
                          R"(
transfer:
  JUMPDEST
  POP                          ; drop selector
  PUSH1 0x24 CALLDATALOAD      ; amt
  CALLER SLOAD                 ; [amt, fromBal]
  DUP2 DUP2 LT                 ; fromBal < amt ?
  PUSH @insufficient JUMPI
  DUP2 SWAP1 SUB               ; [amt, fromBal - amt]
  CALLER SSTORE                ; balances[caller] = fromBal - amt; [amt]
  PUSH1 0x04 CALLDATALOAD      ; [amt, to]
  DUP1 SLOAD                   ; [amt, to, toBal]
  DUP3 ADD                     ; [amt, to, toBal + amt]
  SWAP1 SSTORE                 ; balances[to] = toBal + amt; [amt]
  ; emit Transfer(caller, to, amt)
  PUSH1 0x00 MSTORE            ; mem[0] = amt; []
  PUSH1 0x04 CALLDATALOAD      ; topic3 = to
  CALLER                       ; topic2 = from
  PUSH32 0xddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef
  PUSH1 0x20 PUSH1 0x00 LOG3
  PUSH1 0x01 PUSH1 0x00 MSTORE
  PUSH1 0x20 PUSH1 0x00 RETURN
insufficient:
  JUMPDEST
  PUSH0 PUSH0 REVERT
balanceOf:
  JUMPDEST
  POP
  PUSH1 0x04 CALLDATALOAD SLOAD
  PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
mint:
  JUMPDEST
  POP
  PUSH1 0x24 CALLDATALOAD      ; amt
  PUSH1 0x04 CALLDATALOAD      ; [amt, to]
  DUP1 SLOAD                   ; [amt, to, bal]
  DUP3 ADD                     ; [amt, to, bal + amt]
  SWAP1 SSTORE                 ; [amt]
  PUSH1 0x00 SLOAD ADD         ; [total + amt]
  PUSH1 0x00 SSTORE            ; totalSupply += amt
  STOP
)";
  return evm::assemble(src);
}

Bytes dex_pair_code() {
  // Constant-product AMM over token1 (slot 3): out = r1*in / (r0+in).
  const std::string src = dispatch({{kSelSwap, "swap"},
                                    {kSelAddLiquidity, "addLiquidity"}}) +
                          R"(
swap:
  JUMPDEST
  POP
  PUSH1 0x04 CALLDATALOAD      ; amtIn
  PUSH1 0x00 SLOAD             ; [in, r0]
  PUSH1 0x01 SLOAD             ; [in, r0, r1]
  DUP3 DUP2 MUL                ; [in, r0, r1, r1*in]
  DUP3 DUP5 ADD                ; [in, r0, r1, p, r0+in]
  SWAP1 DIV                    ; [in, r0, r1, out]
  DUP4 DUP4 ADD                ; [.., out, in+r0]
  PUSH1 0x00 SSTORE            ; reserve0 = r0 + in
  DUP1 DUP3 SUB                ; [.., out, r1-out]
  PUSH1 0x01 SSTORE            ; reserve1 = r1 - out
  ; fee and cumulative-price accounting (slots 4-8), as real AMM pairs do
  PUSH1 0x04 SLOAD PUSH1 0x01 ADD PUSH1 0x04 SSTORE   ; swapCount
  PUSH1 0x05 SLOAD DUP2 ADD    PUSH1 0x05 SSTORE      ; cumVolumeOut
  PUSH1 0x06 SLOAD PUSH1 0x03 ADD PUSH1 0x06 SSTORE   ; feeAccum
  PUSH1 0x07 SLOAD PUSH1 0x01 ADD PUSH1 0x07 SSTORE   ; priceCum0
  PUSH1 0x08 SLOAD PUSH1 0x01 ADD PUSH1 0x08 SSTORE   ; kLast tick
  ; token1.transfer(caller, out)
  PUSH4 0xa9059cbb PUSH1 224 SHL PUSH1 0x00 MSTORE
  CALLER PUSH1 0x04 MSTORE
  DUP1 PUSH1 0x24 MSTORE
  PUSH1 0x20                   ; retLen
  PUSH1 0x00                   ; retOff
  PUSH1 0x44                   ; argLen
  PUSH1 0x00                   ; argOff
  PUSH1 0x00                   ; value
  PUSH1 0x03 SLOAD             ; token1
  GAS
  CALL
  POP
  PUSH1 0x00 MSTORE            ; mem[0] = out
  PUSH1 0x20 PUSH1 0x00 RETURN
addLiquidity:
  JUMPDEST
  POP
  PUSH1 0x04 CALLDATALOAD PUSH1 0x00 SLOAD ADD PUSH1 0x00 SSTORE
  PUSH1 0x24 CALLDATALOAD PUSH1 0x01 SLOAD ADD PUSH1 0x01 SSTORE
  STOP
)";
  return evm::assemble(src);
}

Bytes ponzi_code() {
  // invest(): forwards half the incoming value to the previous investor and
  // records the caller as the next payout target (slot 0) plus their stake
  // (slot keyed by caller address).
  const std::string src = dispatch({{kSelInvest, "invest"}}) + R"(
invest:
  JUMPDEST
  POP
  PUSH1 0x00 SLOAD             ; prev investor
  DUP1 ISZERO PUSH @first JUMPI
  PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00   ; ret/arg regions
  CALLVALUE PUSH1 0x01 SHR     ; value/2
  DUP6                         ; prev address
  GAS
  CALL
  POP
first:
  JUMPDEST
  CALLER PUSH1 0x00 SSTORE     ; lastInvestor = caller
  CALLER SLOAD CALLVALUE ADD
  CALLER SSTORE                ; stakes[caller] += value
  POP                          ; drop prev
  STOP
)";
  return evm::assemble(src);
}

Bytes router_code() {
  // route(depth, token, to, amt): self-recursive call chain of `depth`
  // frames ending in token.transfer(to, amt).
  const std::string src = dispatch({{kSelRoute, "route"}}) + R"(
route:
  JUMPDEST
  POP
  PUSH1 0x04 CALLDATALOAD      ; depth
  DUP1 ISZERO PUSH @leaf JUMPI
  PUSH1 0x01 SWAP1 SUB         ; depth-1
  CALLDATASIZE PUSH1 0x00 PUSH1 0x00 CALLDATACOPY
  PUSH1 0x04 MSTORE            ; overwrite depth word
  PUSH1 0x00                   ; retLen
  PUSH1 0x00                   ; retOff
  CALLDATASIZE                 ; argLen
  PUSH1 0x00                   ; argOff
  PUSH1 0x00                   ; value
  ADDRESS
  GAS
  CALL
  POP
  STOP
leaf:
  JUMPDEST
  POP                          ; drop depth (=0)
  PUSH4 0xa9059cbb PUSH1 224 SHL PUSH1 0x00 MSTORE
  PUSH1 0x44 CALLDATALOAD PUSH1 0x04 MSTORE    ; to
  PUSH1 0x64 CALLDATALOAD PUSH1 0x24 MSTORE    ; amt
  PUSH1 0x00 PUSH1 0x00 PUSH1 0x44 PUSH1 0x00 PUSH1 0x00
  PUSH1 0x24 CALLDATALOAD      ; token
  GAS
  CALL
  POP
  STOP
)";
  return evm::assemble(src);
}

Bytes rollup_batcher_code() {
  // submit(base, count): stages the whole calldata in memory, then writes
  // storage[base+i] = i+1 for i in [0, count). Consecutive keys exercise the
  // ORAM's storage-group paging; huge calldata exercises the frame-memory
  // limit (rollup transactions are the paper's Memory Overflow case).
  const std::string src = dispatch({{kSelSubmitBatch, "submit"}}) + R"(
submit:
  JUMPDEST
  POP
  CALLDATASIZE PUSH1 0x00 PUSH1 0x00 CALLDATACOPY
  PUSH1 0x04 CALLDATALOAD      ; base
  PUSH1 0x24 CALLDATALOAD      ; [base, count]
  PUSH0                        ; [base, count, i]
loop:
  JUMPDEST
  DUP2 DUP2 LT ISZERO PUSH @done JUMPI
  DUP1 PUSH1 0x01 ADD          ; [b, c, i, i+1]
  DUP2 DUP5 ADD                ; [b, c, i, i+1, b+i]
  SSTORE                       ; storage[b+i] = i+1
  PUSH1 0x01 ADD               ; ++i
  PUSH @loop JUMP
done:
  JUMPDEST
  STOP
)";
  return evm::assemble(src);
}

Bytes honeypot_code() {
  // deposit() accepts value; withdraw() only pays out when the hidden flag
  // at slot 0x63 is set — which the scammer never sets.
  const std::string src = dispatch({{kSelDeposit, "deposit"},
                                    {kSelWithdraw, "withdraw"}}) +
                          R"(
deposit:
  JUMPDEST
  POP
  CALLER SLOAD CALLVALUE ADD
  CALLER SSTORE
  STOP
withdraw:
  JUMPDEST
  POP
  PUSH1 0x63 SLOAD ISZERO PUSH @trap JUMPI
  CALLER SLOAD                 ; bal
  PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
  DUP5                         ; value = bal
  CALLER
  GAS
  CALL
  POP
  PUSH0 CALLER SSTORE
  STOP
trap:
  JUMPDEST
  PUSH0 PUSH0 REVERT
)";
  return evm::assemble(src);
}

Bytes pad_code(Bytes code, size_t target_size) {
  if (code.size() >= target_size) return code;
  code.push_back(0x00);  // STOP guard before the padding
  code.resize(target_size, 0x00);
  return code;
}

Bytes calldata_selector(uint32_t selector) {
  Bytes out(4);
  out[0] = static_cast<uint8_t>(selector >> 24);
  out[1] = static_cast<uint8_t>(selector >> 16);
  out[2] = static_cast<uint8_t>(selector >> 8);
  out[3] = static_cast<uint8_t>(selector);
  return out;
}

namespace {
Bytes with_args(uint32_t selector, std::initializer_list<u256> args) {
  Bytes out = calldata_selector(selector);
  for (const u256& arg : args) append(out, arg.to_be_bytes_vec());
  return out;
}
}  // namespace

Bytes erc20_transfer(const Address& to, const u256& amount) {
  return with_args(kSelTransfer, {to.to_u256(), amount});
}
Bytes erc20_mint(const Address& to, const u256& amount) {
  return with_args(kSelMint, {to.to_u256(), amount});
}
Bytes erc20_balance_of(const Address& owner) {
  return with_args(kSelBalanceOf, {owner.to_u256()});
}
Bytes dex_swap(const u256& amount_in) { return with_args(kSelSwap, {amount_in}); }
Bytes dex_add_liquidity(const u256& amount0, const u256& amount1) {
  return with_args(kSelAddLiquidity, {amount0, amount1});
}
Bytes router_route(uint64_t depth, const Address& token, const Address& to,
                   const u256& amount) {
  return with_args(kSelRoute, {u256{depth}, token.to_u256(), to.to_u256(), amount});
}
Bytes rollup_submit(const u256& base_key, uint64_t count, size_t extra_payload) {
  Bytes out = with_args(kSelSubmitBatch, {base_key, u256{count}});
  out.resize(out.size() + extra_payload, 0xda);  // bulk rollup payload
  return out;
}

}  // namespace hardtape::workload
