#include "hypervisor/channel.hpp"

#include "common/errors.hpp"

namespace hardtape::hypervisor {

std::array<uint8_t, MessageHeader::kSize> MessageHeader::serialize() const {
  std::array<uint8_t, kSize> out{};
  out[0] = static_cast<uint8_t>(type);
  out[1] = flags;
  // out[2..3] reserved, zero.
  std::memcpy(out.data() + 4, &sequence, 4);
  std::memcpy(out.data() + 8, &target_offset, 8);
  std::memcpy(out.data() + 16, &body_length, 8);
  const uint64_t magic = kMagic;
  std::memcpy(out.data() + 24, &magic, 8);
  return out;
}

std::optional<MessageHeader> MessageHeader::parse(BytesView raw) {
  if (raw.size() != kSize) return std::nullopt;
  uint64_t magic;
  std::memcpy(&magic, raw.data() + 24, 8);
  if (magic != kMagic) return std::nullopt;
  if (raw[2] != 0 || raw[3] != 0) return std::nullopt;  // reserved must be zero
  const uint8_t type = raw[0];
  if (type < 1 || type > 6) return std::nullopt;
  MessageHeader header;
  header.type = static_cast<MessageType>(type);
  header.flags = raw[1];
  std::memcpy(&header.sequence, raw.data() + 4, 4);
  std::memcpy(&header.target_offset, raw.data() + 8, 8);
  std::memcpy(&header.body_length, raw.data() + 16, 8);
  return header;
}

SecureChannel::SecureChannel(const crypto::PrivateKey& my_key,
                             const crypto::Point& peer_public) {
  const H256 shared = my_key.ecdh(peer_public);
  const std::string info = "hardtape-session-v1";
  const Bytes okm = crypto::hkdf_sha256(
      shared.view(), BytesView{},
      BytesView{reinterpret_cast<const uint8_t*>(info.data()), info.size()}, key_.size());
  std::memcpy(key_.data(), okm.data(), key_.size());
}

SecureMessage SecureChannel::seal(MessageType type, uint64_t target_offset,
                                  BytesView body) {
  MessageHeader header;
  header.type = type;
  header.sequence = send_sequence_++;
  header.target_offset = target_offset;
  header.body_length = body.size();

  SecureMessage message;
  message.header = header.serialize();
  // Deterministic per-message nonce from a counter (never reused per key).
  ++nonce_counter_;
  std::memcpy(message.nonce.data(), &nonce_counter_, sizeof nonce_counter_);
  message.nonce[11] = 0x01;  // direction marker

  const auto result = crypto::aes_gcm_encrypt(
      key_, message.nonce, body, BytesView{message.header.data(), message.header.size()});
  message.ciphertext = result.ciphertext;
  message.tag = result.tag;
  return message;
}

SecureChannel::OpenResult SecureChannel::open(const SecureMessage& message,
                                              uint64_t max_body_length,
                                              uint64_t max_target_offset) {
  OpenResult result;
  // Step 1: header-only validation (the Hypervisor's 32-byte parse).
  const auto header = MessageHeader::parse(
      BytesView{message.header.data(), message.header.size()});
  if (!header.has_value()) {
    result.status = Status::kMalformedMessage;
    return result;
  }
  if (header->body_length != message.ciphertext.size() ||
      header->body_length > max_body_length ||
      header->target_offset > max_target_offset) {
    result.status = Status::kMalformedMessage;
    return result;
  }
  // Step 2: authenticated decryption with the header as AAD.
  const auto body = crypto::aes_gcm_decrypt(
      key_, message.nonce, message.ciphertext,
      BytesView{message.header.data(), message.header.size()}, message.tag);
  if (!body.has_value()) {
    result.status = Status::kAuthFailed;
    return result;
  }
  // Step 3: anti-replay sequence check. Strict mode: exactly the expected
  // sequence. Lossy mode: allow forward skips (dropped frames), never
  // backward ones (replays / stale reorders).
  const bool acceptable = lossy_transport_
                              ? header->sequence >= recv_sequence_
                              : header->sequence == recv_sequence_;
  if (!acceptable) {
    result.status = Status::kRejected;
    return result;
  }
  recv_sequence_ = header->sequence + 1;
  result.header = *header;
  result.body = std::move(*body);
  return result;
}

}  // namespace hardtape::hypervisor
