#include "hypervisor/prefetch.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace hardtape::hypervisor {

GapStats gap_stats(const std::vector<QueryEvent>& timeline) {
  GapStats stats;
  if (timeline.size() < 2) return stats;
  std::vector<double> gaps;
  gaps.reserve(timeline.size() - 1);
  for (size_t i = 1; i < timeline.size(); ++i) {
    gaps.push_back(static_cast<double>(timeline[i].time_ns - timeline[i - 1].time_ns));
  }
  double sum = 0;
  for (double g : gaps) sum += g;
  stats.mean_ns = sum / static_cast<double>(gaps.size());
  double var = 0;
  for (double g : gaps) var += (g - stats.mean_ns) * (g - stats.mean_ns);
  stats.stddev_ns = std::sqrt(var / static_cast<double>(gaps.size()));
  return stats;
}

std::vector<QueryEvent> CodePrefetcher::schedule(const std::vector<QueryEvent>& demand) {
  std::vector<QueryEvent> out;
  out.reserve(demand.size());
  std::deque<QueryEvent> pending_code;
  uint64_t last_emit_ns = 0;
  bool have_emit = false;

  auto emit = [&](QueryEvent event, uint64_t at_ns, bool prefetch) {
    event.time_ns = at_ns;
    event.is_prefetch = prefetch;
    if (have_emit) observe_gap(at_ns - last_emit_ns);
    last_emit_ns = at_ns;
    have_emit = true;
    out.push_back(event);
  };

  for (const QueryEvent& q : demand) {
    if (q.type == oram::PageType::kCode) {
      pending_code.push_back(q);  // decouple from demand instant
      continue;
    }
    // Before this K-V query fires, timers may expire and emit code pages.
    while (!pending_code.empty()) {
      const uint64_t timer_at = (have_emit ? last_emit_ns : q.time_ns) + next_timer();
      if (timer_at >= q.time_ns) break;
      emit(pending_code.front(), timer_at, true);
      pending_code.pop_front();
    }
    emit(q, std::max(q.time_ns, have_emit ? last_emit_ns : q.time_ns), false);
  }
  // Drain the tail on timers.
  while (!pending_code.empty()) {
    const uint64_t timer_at = last_emit_ns + next_timer();
    emit(pending_code.front(), timer_at, true);
    pending_code.pop_front();
  }
  return out;
}

}  // namespace hardtape::hypervisor
