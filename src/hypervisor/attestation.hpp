// Secure boot and remote attestation (paper Section IV-A, threat A1).
//
// Chain of trust, following the SHEF-style scheme the paper adopts [44]:
//   Manufacturer root key
//     -> signs the device certificate (device public key; the device private
//        key is sealed by the PUF, which we model as a device-unique secret)
//   Device key
//     -> signs the boot measurement (hash of SBL + Hypervisor firmware +
//        HEVM bitstream) and, per session, (session public key || user nonce)
//        — binding the DHKE exchange to the attested device and defeating
//        man-in-the-middle and replay.
#pragma once

#include "crypto/keccak.hpp"
#include "crypto/secp256k1.hpp"

namespace hardtape::hypervisor {

/// The trusted chip vendor. Issues device certificates.
class Manufacturer {
 public:
  explicit Manufacturer(uint64_t seed);

  const crypto::Point& root_public_key() const { return root_public_; }

  struct DeviceCertificate {
    crypto::Point device_public;
    crypto::Signature signature;  ///< root key over keccak(device_public)
  };
  /// Provisions a device: derives its key from the PUF secret and certifies.
  DeviceCertificate provision(const crypto::Point& device_public) const;

  static bool verify_certificate(const crypto::Point& root_public,
                                 const DeviceCertificate& cert);

 private:
  crypto::PrivateKey root_key_;
  crypto::Point root_public_;
};

/// Firmware measurement: hash of the boot chain contents.
H256 measure_firmware(BytesView secure_bootloader, BytesView hypervisor_binary,
                      BytesView hevm_bitstream);

struct AttestationReport {
  Manufacturer::DeviceCertificate certificate;
  H256 firmware_measurement{};
  crypto::Point session_public;    ///< hypervisor's ephemeral DHKE key
  H256 user_nonce{};               ///< anti-replay, chosen by the user
  crypto::Signature signature;     ///< device key over the report body

  H256 body_hash() const;
};

/// Device side: holds the PUF-sealed device key, produces reports.
class DeviceIdentity {
 public:
  /// `puf_secret` models the physically unclonable function output.
  DeviceIdentity(BytesView puf_secret, const Manufacturer& manufacturer);

  const Manufacturer::DeviceCertificate& certificate() const { return certificate_; }

  AttestationReport attest(const H256& firmware_measurement,
                           const crypto::Point& session_public,
                           const H256& user_nonce) const;

 private:
  crypto::PrivateKey device_key_;
  Manufacturer::DeviceCertificate certificate_;
};

/// User side: verifies the full chain. `expected_measurement` is the
/// published good firmware hash.
bool verify_attestation(const crypto::Point& manufacturer_root,
                        const H256& expected_measurement, const H256& expected_nonce,
                        const AttestationReport& report);

}  // namespace hardtape::hypervisor
