// Pagewise code prefetching (paper Section IV-D, problem (3)).
//
// A contract's code pages, fetched on demand, arrive as a burst of
// back-to-back ORAM queries at frame entry — a pattern that distinguishes
// Code queries from sporadic storage queries and can fingerprint the
// contract. The paper's fix: after each ORAM access an interval timer is set
// to a random value of about half the global average inter-query gap; when
// it expires, the next code page is prefetched. Observed gaps become
// near-uniform and type-independent.
//
// This module reschedules a demand-query timeline into the observable
// timeline: code queries are decoupled from their demand instants and
// re-emitted on timer expiries between the (fixed) K-V queries. The gap
// statistics feed the timing-uniformity ablation bench.
#pragma once

#include <vector>

#include "common/random.hpp"
#include "oram/paged_state.hpp"

namespace hardtape::hypervisor {

struct QueryEvent {
  uint64_t time_ns = 0;
  oram::PageType type = oram::PageType::kAccountMeta;
  bool is_prefetch = false;  ///< ground truth; not visible to the adversary
};

struct GapStats {
  double mean_ns = 0;
  double stddev_ns = 0;
  double coefficient_of_variation() const { return mean_ns > 0 ? stddev_ns / mean_ns : 0; }
};

GapStats gap_stats(const std::vector<QueryEvent>& timeline);

class CodePrefetcher {
 public:
  explicit CodePrefetcher(uint64_t rng_seed, uint64_t initial_gap_ns = 500'000)
      : rng_(rng_seed), avg_gap_ns_(static_cast<double>(initial_gap_ns)) {}

  /// Reschedules `demand` (sorted by time): K-V/account queries keep their
  /// instants; code queries are re-emitted on randomized timers. Each code
  /// page still arrives no later than it is *executed* from, because the
  /// HEVM stalls on a genuine miss; we model that by flushing any remaining
  /// code queries of a frame when its first K-V query after the burst fires.
  std::vector<QueryEvent> schedule(const std::vector<QueryEvent>& demand);

  double average_gap_ns() const { return avg_gap_ns_; }

 private:
  uint64_t next_timer() {
    // ~half the average gap, jittered ±50% (the "random value of
    // approximately half of the global average gap").
    const double base = avg_gap_ns_ / 2.0;
    return static_cast<uint64_t>(base * (0.5 + rng_.uniform_double()));
  }
  void observe_gap(uint64_t gap_ns) {
    constexpr double kAlpha = 0.1;  // EMA
    avg_gap_ns_ = (1 - kAlpha) * avg_gap_ns_ + kAlpha * static_cast<double>(gap_ns);
  }

  Random rng_;
  double avg_gap_ns_;
};

}  // namespace hardtape::hypervisor
