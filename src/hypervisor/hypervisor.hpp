// The Hypervisor firmware: boots, attests, manages sessions and the ORAM
// key (paper Fig. 3 steps 1-2 and Section IV-D "ORAM key protection").
//
// Memory discipline per the paper's security analysis (A3): the Hypervisor
// is heap-free, parses only fixed 32-byte headers, and its entire runtime
// state must fit the 256 KB on-chip memory — we track a modeled stack
// high-water so the resource bench can reproduce §VI-A's 248 KB figure.
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "common/random.hpp"
#include "hypervisor/attestation.hpp"
#include "hypervisor/channel.hpp"

namespace hardtape::hypervisor {

class Hypervisor {
 public:
  /// Boots the device: verifies + measures the firmware images, derives the
  /// device identity from the PUF secret.
  Hypervisor(BytesView puf_secret, const Manufacturer& manufacturer,
             BytesView secure_bootloader, BytesView hypervisor_binary,
             BytesView hevm_bitstream, uint64_t rng_seed);

  const H256& firmware_measurement() const { return measurement_; }

  /// Step 2: responds to a user's attestation request. Generates ephemeral
  /// session keys, signs (session_pub || nonce) with the device key, and
  /// returns the report. The matching SecureChannel is created on-device.
  struct SessionHandle {
    uint32_t session_id;
    AttestationReport report;
  };
  SessionHandle begin_session(const H256& user_nonce, const crypto::Point& user_public);

  /// Channel of an active session. The returned reference stays valid until
  /// end_session() on that id, even while other sessions begin/end
  /// concurrently (sessions are heap-pinned). The channel object itself is
  /// single-owner: only the session's worker may seal/open on it.
  SecureChannel& channel(uint32_t session_id);
  void end_session(uint32_t session_id);
  size_t active_sessions() const {
    std::lock_guard lock(mu_);
    return sessions_.size();
  }

  // --- ORAM key management (shared across devices of one SP) ---
  bool has_oram_key() const {
    std::lock_guard lock(mu_);
    return oram_key_.has_value();
  }
  /// First device: generates the key from the secure RNG.
  const crypto::AesKey128& generate_oram_key();
  const crypto::AesKey128& oram_key() const;
  /// New device joining: obtains the key from `source` over a DHKE channel
  /// between the two trusted Hypervisors (both must be attested devices of
  /// the same manufacturer; the transfer is encrypted end-to-end).
  static Status share_oram_key(Hypervisor& source, Hypervisor& target);

  // --- §VI-A memory accounting ---
  /// Modeled firmware binary size (KB) and observed peak stack usage (KB).
  uint32_t binary_kb() const { return 156; }
  uint32_t peak_stack_kb() const {
    std::lock_guard lock(mu_);
    return peak_stack_kb_;
  }
  bool fits_onchip_memory() const { return binary_kb() + peak_stack_kb() <= 256; }

 private:
  void touch_stack(uint32_t kb) { peak_stack_kb_ = std::max(peak_stack_kb_, kb); }

  struct Session {
    uint32_t id;
    crypto::PrivateKey session_key;
    SecureChannel channel;
  };

  DeviceIdentity identity_;
  H256 measurement_;
  Random rng_;
  /// Guards every mutable member below. One user session == one HEVM worker
  /// in the concurrent engine, so session management must be callable from
  /// many threads; sessions are unique_ptr so channel references survive
  /// other sessions' churn.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint32_t next_session_id_ = 1;
  std::optional<crypto::AesKey128> oram_key_;
  uint32_t peak_stack_kb_ = 24;  // boot-time baseline
};

}  // namespace hardtape::hypervisor
