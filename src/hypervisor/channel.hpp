// The secure channel and the A.E.DMA message layer (paper Sections IV-A,
// IV-C; threats A3, A4).
//
// Wire format: a fixed 32-byte header — the ONLY thing the Hypervisor ever
// parses (its runtime memory never holds message bodies; the A.E.DMA engine
// moves payloads straight between the network buffer and HEVM memory). The
// body is AES-GCM encrypted with the session key, with the header bound as
// AAD and an anti-replay sequence number.
//
//   header := type(1) | flags(1) | reserved(2) | seq(4) | target_offset(8) |
//             body_length(8) | magic(8)
#pragma once

#include <cstring>
#include <optional>

#include "common/errors.hpp"
#include "crypto/aes.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"

namespace hardtape::hypervisor {

enum class MessageType : uint8_t {
  kAttestRequest = 1,
  kAttestReport = 2,
  kBundleSubmit = 3,
  kTraceReport = 4,
  kOramKeyRequest = 5,
  kOramKeyResponse = 6,
};

struct MessageHeader {
  static constexpr size_t kSize = 32;
  static constexpr uint64_t kMagic = 0x4841524454415045ull;  // "HARDTAPE"

  MessageType type = MessageType::kBundleSubmit;
  uint8_t flags = 0;
  uint32_t sequence = 0;
  uint64_t target_offset = 0;
  uint64_t body_length = 0;

  std::array<uint8_t, kSize> serialize() const;
  /// Strict parse; nullopt on bad magic / unknown type / reserved bits.
  static std::optional<MessageHeader> parse(BytesView raw);
};

struct SecureMessage {
  std::array<uint8_t, MessageHeader::kSize> header{};
  crypto::GcmNonce nonce{};
  crypto::GcmTag tag{};
  Bytes ciphertext;
};

/// One end of an established session. Both sides derive the same AES key
/// from ECDH + HKDF; sequence numbers are per-direction.
class SecureChannel {
 public:
  /// Derives the session key: HKDF(ECDH(my_key, peer_pub), info="hardtape").
  SecureChannel(const crypto::PrivateKey& my_key, const crypto::Point& peer_public);
  /// Directly from a pre-agreed key (e.g. tests).
  explicit SecureChannel(const crypto::AesKey128& key) : key_(key) {}

  const crypto::AesKey128& key() const { return key_; }

  SecureMessage seal(MessageType type, uint64_t target_offset, BytesView body);

  /// Full validation path, in the Hypervisor's order: parse header ->
  /// length/type/offset checks -> AES-GCM open (header as AAD) -> sequence
  /// check. Returns the body, or a Status explaining the rejection.
  struct OpenResult {
    Status status = Status::kOk;
    MessageHeader header{};
    Bytes body;
  };
  OpenResult open(const SecureMessage& message, uint64_t max_body_length,
                  uint64_t max_target_offset);

  /// Lossy-transport mode (the service front door's channels). Strict mode
  /// (the default) demands sequence == expected, which is right for the
  /// Hypervisor's lockstep attestation/DMA exchanges but permanently wedges
  /// a conversation the moment the transport drops one frame: every later
  /// frame looks like a replay. In lossy mode open() accepts any sequence
  /// >= expected (the gap is the dropped frames) and rejects < expected —
  /// replays and stale reorders still fail closed, and a rejected frame
  /// still never advances the window.
  void set_lossy_transport(bool lossy) { lossy_transport_ = lossy; }

 private:
  crypto::AesKey128 key_{};
  uint32_t send_sequence_ = 0;
  uint32_t recv_sequence_ = 0;
  uint64_t nonce_counter_ = 0;
  bool lossy_transport_ = false;
};

}  // namespace hardtape::hypervisor
