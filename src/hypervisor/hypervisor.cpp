#include "hypervisor/hypervisor.hpp"

#include "common/errors.hpp"

namespace hardtape::hypervisor {

Hypervisor::Hypervisor(BytesView puf_secret, const Manufacturer& manufacturer,
                       BytesView secure_bootloader, BytesView hypervisor_binary,
                       BytesView hevm_bitstream, uint64_t rng_seed)
    : identity_(puf_secret, manufacturer),
      measurement_(measure_firmware(secure_bootloader, hypervisor_binary, hevm_bitstream)),
      rng_(rng_seed) {}

Hypervisor::SessionHandle Hypervisor::begin_session(const H256& user_nonce,
                                                    const crypto::Point& user_public) {
  std::lock_guard lock(mu_);
  touch_stack(92);  // session setup is the stack high-water mark (§VI-A)
  // Ephemeral session key for DHKE + report signing.
  crypto::PrivateKey session_key = crypto::PrivateKey::from_seed(rng_.bytes(32));
  const crypto::Point session_public = session_key.public_key();

  SessionHandle handle;
  handle.session_id = next_session_id_++;
  handle.report = identity_.attest(measurement_, session_public, user_nonce);

  SecureChannel channel(session_key, user_public);
  sessions_.push_back(std::make_unique<Session>(
      Session{handle.session_id, std::move(session_key), std::move(channel)}));
  return handle;
}

SecureChannel& Hypervisor::channel(uint32_t session_id) {
  std::lock_guard lock(mu_);
  for (const auto& session : sessions_) {
    if (session->id == session_id) return session->channel;
  }
  throw UsageError("hypervisor: unknown session");
}

void Hypervisor::end_session(uint32_t session_id) {
  std::lock_guard lock(mu_);
  std::erase_if(sessions_, [&](const auto& s) { return s->id == session_id; });
}

const crypto::AesKey128& Hypervisor::generate_oram_key() {
  std::lock_guard lock(mu_);
  if (!oram_key_.has_value()) {
    crypto::AesKey128 key;
    rng_.fill(key.data(), key.size());
    oram_key_ = key;
  }
  return *oram_key_;
}

const crypto::AesKey128& Hypervisor::oram_key() const {
  std::lock_guard lock(mu_);
  if (!oram_key_.has_value()) throw UsageError("hypervisor: no ORAM key yet");
  return *oram_key_;
}

Status Hypervisor::share_oram_key(Hypervisor& source, Hypervisor& target) {
  if (!source.has_oram_key()) return Status::kRejected;
  // Both Hypervisors are attested devices; they build a device-to-device
  // DHKE channel and move the key encrypted.
  Bytes source_seed, target_seed;
  {
    std::lock_guard lock(source.mu_);
    source_seed = source.rng_.bytes(32);
  }
  {
    std::lock_guard lock(target.mu_);
    target_seed = target.rng_.bytes(32);
  }
  crypto::PrivateKey source_eph = crypto::PrivateKey::from_seed(source_seed);
  crypto::PrivateKey target_eph = crypto::PrivateKey::from_seed(target_seed);
  SecureChannel source_channel(source_eph, target_eph.public_key());
  SecureChannel target_channel(target_eph, source_eph.public_key());

  const auto& key = source.oram_key();
  const SecureMessage message = source_channel.seal(
      MessageType::kOramKeyResponse, 0, BytesView{key.data(), key.size()});
  const auto open = target_channel.open(message, /*max_body_length=*/64,
                                        /*max_target_offset=*/0);
  if (open.status != Status::kOk || open.body.size() != key.size()) {
    return Status::kAuthFailed;
  }
  crypto::AesKey128 received;
  std::copy(open.body.begin(), open.body.end(), received.begin());
  {
    std::lock_guard lock(target.mu_);
    target.oram_key_ = received;
  }
  return Status::kOk;
}

}  // namespace hardtape::hypervisor
