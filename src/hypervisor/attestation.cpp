#include "hypervisor/attestation.hpp"

namespace hardtape::hypervisor {

Manufacturer::Manufacturer(uint64_t seed)
    : root_key_(crypto::PrivateKey::from_seed(u256{seed}.to_be_bytes_vec())),
      root_public_(root_key_.public_key()) {}

Manufacturer::DeviceCertificate Manufacturer::provision(
    const crypto::Point& device_public) const {
  DeviceCertificate cert;
  cert.device_public = device_public;
  cert.signature = root_key_.sign(crypto::keccak256(crypto::point_serialize(device_public)));
  return cert;
}

bool Manufacturer::verify_certificate(const crypto::Point& root_public,
                                      const DeviceCertificate& cert) {
  return crypto::ecdsa_verify(
      root_public, crypto::keccak256(crypto::point_serialize(cert.device_public)),
      cert.signature);
}

H256 measure_firmware(BytesView secure_bootloader, BytesView hypervisor_binary,
                      BytesView hevm_bitstream) {
  Bytes all;
  append(all, crypto::keccak256(secure_bootloader).view());
  append(all, crypto::keccak256(hypervisor_binary).view());
  append(all, crypto::keccak256(hevm_bitstream).view());
  return crypto::keccak256(all);
}

H256 AttestationReport::body_hash() const {
  Bytes body;
  append(body, crypto::point_serialize(certificate.device_public));
  append(body, firmware_measurement.view());
  append(body, crypto::point_serialize(session_public));
  append(body, user_nonce.view());
  return crypto::keccak256(body);
}

DeviceIdentity::DeviceIdentity(BytesView puf_secret, const Manufacturer& manufacturer)
    : device_key_(crypto::PrivateKey::from_seed(puf_secret)),
      certificate_(manufacturer.provision(device_key_.public_key())) {}

AttestationReport DeviceIdentity::attest(const H256& firmware_measurement,
                                         const crypto::Point& session_public,
                                         const H256& user_nonce) const {
  AttestationReport report;
  report.certificate = certificate_;
  report.firmware_measurement = firmware_measurement;
  report.session_public = session_public;
  report.user_nonce = user_nonce;
  report.signature = device_key_.sign(report.body_hash());
  return report;
}

bool verify_attestation(const crypto::Point& manufacturer_root,
                        const H256& expected_measurement, const H256& expected_nonce,
                        const AttestationReport& report) {
  if (!Manufacturer::verify_certificate(manufacturer_root, report.certificate)) {
    return false;  // forged device certificate (A1)
  }
  if (report.firmware_measurement != expected_measurement) return false;
  if (report.user_nonce != expected_nonce) return false;  // replay
  return crypto::ecdsa_verify(report.certificate.device_public, report.body_hash(),
                              report.signature);
}

}  // namespace hardtape::hypervisor
