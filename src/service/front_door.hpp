// The service front door (PR 7): HarDTAPE's user-facing edge.
//
// What PreExecutionEngine deliberately is NOT — a network service — this
// module is. It terminates authenticated client connections (one
// hypervisor::SecureChannel each, in lossy-transport mode so a dropped
// frame cannot wedge the anti-replay window), parses the versioned RLP
// service frames (service/frames.hpp), multiplexes thousands of client
// sessions onto the engine, and decides under overload who gets a device
// and who is refused (service/admission.hpp).
//
//                      ┌────────────── FrontDoor ──────────────┐
//   client ── seal ──► │ SecureChannel.open ── frames::decode  │
//  (FaultyLink here)   │        │                              │
//                      │   session mux (conn -> session)       │
//                      │        │ submit                       │
//                      │   AdmissionController (DRR/quota/     │
//                      │        │ deadline/brownout)           │
//                      │   sim device pool (kDevices HEVMs)    │──► engine
//                      └───────────────────────────────────────┘
//
// The dedicated-hardware invariant, made explicit: a simulated device is
// bound to AT MOST ONE session at any simulated instant — the binding log
// records every (device, session, [start, end)) interval and a test proves
// the intervals never overlap per device. Overload never time-slices a
// device; it sheds requests instead.
//
// Determinism: the front door is a discrete-event machine on SIMULATED
// time. deliver() stamps each frame with its arrival time; admission,
// dispatch, expiry and brownout transitions all happen at defined sim
// instants. Engine bundle ids are PRE-ASSIGNED in admission (= arrival)
// order, so each session's outcome — whose RNG and fault streams key on the
// bundle id — is pinned at admission, before any worker touches it. The
// engine's worker count is therefore pure wall-clock parallelism: the same
// delivery sequence yields bit-identical outcomes, admission verdicts and
// binding logs at 1 worker or 8 (front_door_test holds it to that).
//
// The one wall-clock seam: at dispatch the front door must learn how long
// the session RAN (simulated) to know when its device frees, so it
// submits the burst of dispatchable bundles and then blocks — wall-clock —
// on the engine's on_outcome hook for their durations before sim time
// advances further. Bursts still execute in parallel across the pool;
// determinism costs ordering, not concurrency.
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <unordered_map>

#include "crypto/aes.hpp"
#include "service/admission.hpp"
#include "service/engine.hpp"
#include "service/frames.hpp"

namespace hardtape::faults {
class FaultyLink;
}  // namespace hardtape::faults

namespace hardtape::service {

struct FrontDoorConfig {
  /// Simulated dedicated-HEVM pool the dispatcher schedules onto. Decoupled
  /// from EngineConfig::num_hevms on purpose: devices are the MODEL
  /// (capacity, the paper's per-chip HEVM count), workers are the HOST
  /// (how fast the model is evaluated).
  size_t num_devices = 3;
  AdmissionConfig admission{};
  /// Sessions the mux will hold open at once; opens beyond it are refused
  /// kOverloaded (a bounded front door cannot promise unbounded state).
  size_t max_sessions = 4096;
  uint64_t max_body_length = 1 << 20;  ///< channel open() bound
};

/// The server. Single caller thread drives deliver()/finish(); the engine's
/// worker pool is the only concurrency underneath.
class FrontDoor {
 public:
  /// The engine must be constructed but NOT started: the front door installs
  /// its on_outcome hook, and the caller starts the engine afterwards.
  FrontDoor(PreExecutionEngine& engine, FrontDoorConfig config);

  /// Registers a client connection keyed by a pre-shared channel key and
  /// returns its connection id. (Full ECDH session setup is the
  /// hypervisor's attestation path; the front door models the many-clients
  /// plane with PSK channels, same crypto, cheaper setup.)
  uint64_t connect(const crypto::AesKey128& key);

  /// Delivers one sealed frame from a connection at simulated `arrival_ns`
  /// (clamped monotonic). Advances the event loop to the arrival instant
  /// (processing due completions and dispatches), then handles the frame.
  /// Returns the sealed responses going back to the client: one for an
  /// authenticated well-formed frame, an error frame for authenticated
  /// garbage (kMalformedMessage, session state untouched), and nothing for
  /// frames the channel rejected (tamper, replay) — unauthenticated bytes
  /// earn no reply and mutate nothing.
  std::vector<hypervisor::SecureMessage> deliver(
      uint64_t conn_id, const hypervisor::SecureMessage& frame,
      uint64_t arrival_ns);

  /// Runs the event loop until every admitted request has completed (or
  /// expired). Does NOT drain the engine — the caller still owns that.
  void finish();

  /// Advances sim time with no new arrivals (lets polls observe progress).
  void advance_to(uint64_t now_ns);

  uint64_t now_ns() const { return now_ns_; }
  const AdmissionController& admission() const { return admission_; }

  /// One device-session binding interval, [start_ns, end_ns) in sim time.
  struct Binding {
    uint32_t device = 0;
    uint64_t session_id = 0;
    uint64_t bundle_id = 0;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
  };
  /// Complete binding history, in dispatch order. The dedicated-hardware
  /// audit: per device, intervals must never overlap.
  const std::vector<Binding>& bindings() const { return bindings_; }

 private:
  enum class Stage : uint8_t { kQueued, kRunning, kDone };

  struct RequestState {
    uint64_t bundle_id = 0;
    uint64_t deadline_ns = 0;  ///< absolute sim deadline (0 = none)
    Stage stage = Stage::kQueued;
    Status admission_status = Status::kOk;
    /// Valid once stage is kRunning/kDone:
    uint64_t dispatch_ns = 0;
    uint64_t done_ns = 0;  ///< sim completion instant
    Status outcome_status = Status::kOk;
    uint64_t queue_wait_ns = 0;
    uint64_t exec_ns = 0;
    uint64_t gas_used = 0;
  };

  struct Session {
    uint64_t session_id = 0;
    uint64_t tenant_id = 0;
    uint64_t conn_id = 0;
    bool open = false;
    std::map<uint64_t, RequestState> requests;  // by client request_id
  };

  struct Connection {
    hypervisor::SecureChannel channel;
    uint64_t session_id = 0;  ///< 0 = no session opened yet
  };

  /// A device finishing its bound session at `at_ns`.
  struct Completion {
    uint64_t at_ns = 0;
    uint64_t bundle_id = 0;
    uint32_t device = 0;
    uint64_t session_id = 0;
    uint64_t request_id = 0;
    uint64_t tenant_id = 0;
    /// Strict-weak ordering for the min-heap; bundle id tie-break keeps
    /// simultaneous completions in one deterministic order.
    bool operator>(const Completion& other) const {
      return at_ns != other.at_ns ? at_ns > other.at_ns
                                  : bundle_id > other.bundle_id;
    }
  };

  /// The engine outcome mailbox: workers post, the dispatch loop blocks.
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, SessionOutcome> ready;
    void post(const SessionOutcome& outcome);
    SessionOutcome take(uint64_t bundle_id);
  };

  ResponseFrame handle_frame(Connection& conn, uint64_t conn_id,
                             const RequestFrame& request);
  ResponseFrame handle_open(Connection& conn, uint64_t conn_id,
                            const RequestFrame& request);
  ResponseFrame handle_submit(Session& session, const RequestFrame& request);
  ResponseFrame handle_poll(Session& session, const RequestFrame& request);
  /// Processes every completion due by `target_ns`, dispatching freed
  /// devices, then advances now_ns_ to target_ns.
  void advance(uint64_t target_ns);
  /// Pulls DRR picks onto free devices at now_ns_; blocks on the engine for
  /// the burst's durations and schedules their completions.
  void dispatch();
  RequestState* find_request(uint64_t session_id, uint64_t request_id);

  PreExecutionEngine& engine_;
  FrontDoorConfig config_;
  AdmissionController admission_;
  Mailbox mailbox_;

  uint64_t now_ns_ = 0;
  uint64_t next_conn_id_ = 1;
  uint64_t next_session_id_ = 1;
  uint64_t next_bundle_id_ = 0;  ///< pre-assigned engine ids, arrival order
  std::map<uint64_t, Connection> connections_;
  std::map<uint64_t, Session> sessions_;
  size_t open_sessions_ = 0;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;
  std::vector<uint32_t> free_devices_;  ///< sorted stack, lowest id on top
  std::vector<Binding> bindings_;

  obs::Counter* frames_total_ = nullptr;
  obs::Counter* frames_rejected_ = nullptr;   ///< channel said no (auth/replay)
  obs::Counter* frames_malformed_ = nullptr;  ///< authenticated garbage
  obs::Counter* dispatched_total_ = nullptr;
  obs::Gauge* sessions_gauge_ = nullptr;
};

/// Test/bench client helper: one connection, seal/deliver/decode round
/// trips, optionally through a FaultyLink (frames that the link drops or
/// the server rejects simply yield no response — like the real wire).
class ServiceClient {
 public:
  ServiceClient(FrontDoor& door, const crypto::AesKey128& key);

  /// Sends the frame at sim time `now_ns`; returns the first decoded
  /// response, or nullopt when the wire ate it.
  std::optional<ResponseFrame> call(const RequestFrame& request,
                                    uint64_t now_ns,
                                    faults::FaultyLink* link = nullptr);

  uint64_t conn_id() const { return conn_id_; }

 private:
  FrontDoor& door_;
  hypervisor::SecureChannel channel_;
  uint64_t conn_id_ = 0;
};

}  // namespace hardtape::service
