// The service front door (PR 7): HarDTAPE's user-facing edge.
//
// What PreExecutionEngine deliberately is NOT — a network service — this
// module is. It terminates authenticated client connections (one
// hypervisor::SecureChannel each, in lossy-transport mode so a dropped
// frame cannot wedge the anti-replay window), parses the versioned RLP
// service frames (service/frames.hpp), multiplexes thousands of client
// sessions onto the engine, and decides under overload who gets a device
// and who is refused (service/admission.hpp).
//
//                      ┌────────────── FrontDoor ──────────────┐
//   client ── seal ──► │ SecureChannel.open ── frames::decode  │
//  (FaultyLink here)   │        │                              │
//                      │   session mux (conn -> session)       │
//                      │        │ submit                       │
//                      │   AdmissionController (DRR/quota/     │
//                      │        │ deadline/brownout)           │
//                      │   DevicePool (elastic, fault-domained)│──► engine
//                      └───────────────────────────────────────┘
//
// The dedicated-hardware invariant, made explicit: a simulated device is
// bound to AT MOST ONE session at any simulated instant — the binding log
// records every (device, session, [start, end)) interval and a test proves
// the intervals never overlap per device.
//
// Elastic pool & failover (PR 9): the pool is a lifecycle state machine
// (service/device_pool.hpp) — devices hot-add, drain gracefully, crash,
// flap and get quarantined by a per-device breaker, all on simulated time.
// Device loss is fail-closed, per the paper's sealed-state model: a dying
// device takes its session state with it, so a bundle bound to a crashed
// (or force-drained) device is RE-ADMITTED at attempt+1 through the normal
// queue and re-executed from scratch — budgeted by the engine's
// max_bundle_attempts, resolving kRetryExhausted beyond it, or kDeviceLost
// when no device can ever serve it again. audit_bindings() proves the three
// churn invariants: no per-device overlap, no binding past its device's
// death/drain-completion, every admitted request terminal.
//
// Determinism: the front door is a discrete-event machine on SIMULATED
// time. deliver() stamps each frame with its arrival time; admission,
// dispatch, expiry, brownout transitions AND device churn (fault fates,
// drain deadlines, quarantine backoff) all happen at defined sim instants.
// Engine bundle ids are PRE-ASSIGNED in admission (= arrival) order, so
// each session's outcome — whose RNG and fault streams key on (bundle id,
// attempt) — is pinned at admission, before any worker touches it; a
// failover re-executes under the SAME id at attempt+1, keyed the same way.
// The engine's worker count is therefore pure wall-clock parallelism: the
// same delivery sequence yields bit-identical outcomes, admission verdicts,
// binding logs and device lifecycle logs at 1 worker or 8, churn included
// (front_door_test holds it to that).
//
// The one wall-clock seam: at dispatch the front door must learn how long
// the session RAN (simulated) to know when its device frees, so it
// submits the burst of dispatchable bundles and then blocks — wall-clock —
// on the engine's on_outcome hook for their durations before sim time
// advances further. Bursts still execute in parallel across the pool;
// determinism costs ordering, not concurrency.
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>

#include "crypto/aes.hpp"
#include "service/admission.hpp"
#include "service/device_pool.hpp"
#include "service/engine.hpp"
#include "service/frames.hpp"

namespace hardtape::faults {
class FaultyLink;
}  // namespace hardtape::faults

namespace hardtape::service {

struct FrontDoorConfig {
  /// Simulated dedicated-HEVM pool the dispatcher schedules onto. Decoupled
  /// from EngineConfig::num_hevms on purpose: devices are the MODEL
  /// (capacity, the paper's per-chip HEVM count), workers are the HOST
  /// (how fast the model is evaluated).
  size_t num_devices = 3;
  /// Elastic-pool policy (PR 9): warmup, drain grace, breaker, fault plan.
  /// devices.initial_devices == 0 inherits num_devices above.
  DevicePoolConfig devices{};
  AdmissionConfig admission{};
  /// Sessions the mux will hold open at once; opens beyond it are refused
  /// kOverloaded (a bounded front door cannot promise unbounded state).
  size_t max_sessions = 4096;
  uint64_t max_body_length = 1 << 20;  ///< channel open() bound
};

/// The server. Single caller thread drives deliver()/finish(); the engine's
/// worker pool is the only concurrency underneath.
class FrontDoor {
 public:
  /// The engine must be constructed but NOT started: the front door installs
  /// its on_outcome hook, and the caller starts the engine afterwards.
  FrontDoor(PreExecutionEngine& engine, FrontDoorConfig config);

  /// Registers a client connection keyed by a pre-shared channel key and
  /// returns its connection id. (Full ECDH session setup is the
  /// hypervisor's attestation path; the front door models the many-clients
  /// plane with PSK channels, same crypto, cheaper setup.)
  uint64_t connect(const crypto::AesKey128& key);

  /// Delivers one sealed frame from a connection at simulated `arrival_ns`
  /// (clamped monotonic). Advances the event loop to the arrival instant
  /// (processing due completions, device transitions and dispatches), then
  /// handles the frame. Returns the sealed responses going back to the
  /// client: one for an authenticated well-formed frame, an error frame for
  /// authenticated garbage (kMalformedMessage, session state untouched),
  /// and nothing for frames the channel rejected (tamper, replay) —
  /// unauthenticated bytes earn no reply and mutate nothing.
  std::vector<hypervisor::SecureMessage> deliver(
      uint64_t conn_id, const hypervisor::SecureMessage& frame,
      uint64_t arrival_ns);

  /// Runs the event loop until every admitted request has reached a
  /// terminal status (completed, expired, retry-exhausted, or — when the
  /// whole fleet is permanently gone — kDeviceLost). Does NOT drain the
  /// engine — the caller still owns that.
  void finish();

  /// Advances sim time with no new arrivals (lets polls observe progress).
  void advance_to(uint64_t now_ns);

  // --- fleet operations (PR 9), all at the current sim instant ---

  /// Hot-adds a device (kJoining for the configured warmup, then serving).
  uint32_t add_device();
  /// Begins a graceful drain: no new bindings; an in-flight session gets
  /// drain_grace_ns to finish before it is cut and re-admitted.
  void drain_device(uint32_t device);
  /// Abrupt operator-visible death (the chaos drill's kill switch): any
  /// in-flight binding is cut NOW and its bundle re-admitted; the device
  /// is permanently dead.
  void kill_device(uint32_t device);

  uint64_t now_ns() const { return now_ns_; }
  const AdmissionController& admission() const { return admission_; }
  const DevicePool& devices() const { return pool_; }

  /// One device-session binding interval, [start_ns, end_ns) in sim time.
  /// end_ns is the scheduled completion — or the cut instant, when the
  /// device died or was force-drained mid-binding.
  struct Binding {
    uint32_t device = 0;
    uint64_t session_id = 0;
    uint64_t bundle_id = 0;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
  };
  /// Complete binding history, in dispatch order. The dedicated-hardware
  /// audit: per device, intervals must never overlap.
  const std::vector<Binding>& bindings() const { return bindings_; }

  /// The churn audit (PR 9): checks the binding log against the device
  /// lifecycle log. Invariant (a): per-device intervals never overlap.
  /// Invariant (b): every interval lies inside a window in which its device
  /// was in service (kServe/kRejoin .. kCrash/kQuarantine/kDrainDone).
  /// Invariant (c) — every admitted request terminal — is observable via
  /// poll and asserted by callers after finish(); this method covers (a)
  /// and (b), which only the front door's internal logs can prove.
  struct ChurnAudit {
    bool ok = true;
    std::string violation;  ///< empty when ok
  };
  ChurnAudit audit_bindings() const;

 private:
  enum class Stage : uint8_t { kQueued, kRunning, kDone };

  struct RequestState {
    uint64_t bundle_id = 0;
    uint64_t deadline_ns = 0;  ///< absolute sim deadline (0 = none)
    Stage stage = Stage::kQueued;
    Status admission_status = Status::kOk;
    /// Next execution's engine attempt index (0 = first; >0 after failover).
    uint32_t attempt = 0;
    /// Retained for failover re-execution: a dead device's sealed session
    /// state is unrecoverable, so re-binding re-executes from the bundle.
    std::vector<evm::Transaction> bundle;
    uint64_t estimated_gas = 0;
    uint64_t rebind_start_ns = 0;  ///< nonzero while awaiting re-dispatch
    /// Valid once stage is kRunning/kDone:
    uint64_t dispatch_ns = 0;
    uint64_t done_ns = 0;  ///< sim completion instant
    Status outcome_status = Status::kOk;
    uint64_t queue_wait_ns = 0;  ///< total sim ns queued, across attempts
    uint64_t exec_ns = 0;
    uint64_t gas_used = 0;
  };

  struct Session {
    uint64_t session_id = 0;
    uint64_t tenant_id = 0;
    uint64_t conn_id = 0;
    bool open = false;
    std::map<uint64_t, RequestState> requests;  // by client request_id
  };

  struct Connection {
    hypervisor::SecureChannel channel;
    uint64_t session_id = 0;  ///< 0 = no session opened yet
  };

  /// A scheduled sim-time event. Generalizes PR 7's completion heap: a
  /// binding now ends one of three ways — it completes, its device dies
  /// under it, or a drain deadline cuts it. Events carry the binding
  /// GENERATION they were scheduled against; a binding released earlier by
  /// a different event leaves stale entries in the heap, which no-op on a
  /// generation mismatch (the heap cannot remove entries).
  struct Event {
    enum class Kind : uint8_t { kCompletion, kDeviceDeath, kDrainDeadline };
    uint64_t at_ns = 0;
    uint64_t seq = 0;  ///< schedule order; deterministic tie-break
    Kind kind = Kind::kCompletion;
    uint32_t device = 0;
    uint64_t gen = 0;
    uint64_t rejoin_at_ns = 0;  ///< kDeviceDeath: 0 = permanent, else flap
    bool operator>(const Event& other) const {
      return at_ns != other.at_ns ? at_ns > other.at_ns : seq > other.seq;
    }
  };

  /// The binding currently running on a device, with the engine outcome it
  /// will resolve to (learned at dispatch) and the fate the device fault
  /// plan assigned it.
  struct ActiveBinding {
    uint64_t gen = 0;
    size_t binding_idx = 0;  ///< into bindings_
    uint64_t bundle_id = 0;
    uint64_t session_id = 0;
    uint64_t request_id = 0;
    uint64_t tenant_id = 0;
    Status outcome_status = Status::kOk;
    uint32_t engine_attempt = 0;  ///< the attempt the engine actually ran
    uint64_t exec_ns = 0;
    uint64_t gas_used = 0;
    bool sticky_fail = false;  ///< completion resolves as failover, not done
  };

  /// The engine outcome mailbox: workers post, the dispatch loop blocks.
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, SessionOutcome> ready;
    void post(const SessionOutcome& outcome);
    SessionOutcome take(uint64_t bundle_id);
  };

  ResponseFrame handle_frame(Connection& conn, uint64_t conn_id,
                             const RequestFrame& request);
  ResponseFrame handle_open(Connection& conn, uint64_t conn_id,
                            const RequestFrame& request);
  ResponseFrame handle_submit(Session& session, const RequestFrame& request);
  ResponseFrame handle_poll(Session& session, const RequestFrame& request);
  /// Processes every event and device transition due by `target_ns`, in
  /// time order, dispatching freed capacity, then advances now_ns_.
  void advance(uint64_t target_ns);
  void handle_event(const Event& event);
  /// Cuts the active binding on `device` at now_ns_ (device death or drain
  /// deadline): truncates the binding interval, releases the tenant slot
  /// and fails the request over. Returns the released binding.
  ActiveBinding cut_binding(uint32_t device);
  /// Re-admits a request whose binding was lost, at engine attempt + 1;
  /// terminal kRetryExhausted when the budget is spent.
  void failover(const ActiveBinding& lost);
  /// Pulls DRR picks onto idle devices at now_ns_; blocks on the engine for
  /// the burst's durations and schedules their end events.
  void dispatch();
  /// Fail-closed resolution when no device can ever serve again: every
  /// queued request is answered (kDeviceLost, or kDeadlineExceeded if it
  /// already aged out) instead of waiting forever.
  void resolve_queued_device_lost();
  RequestState* find_request(uint64_t session_id, uint64_t request_id);

  PreExecutionEngine& engine_;
  FrontDoorConfig config_;
  AdmissionController admission_;
  DevicePool pool_;
  Mailbox mailbox_;

  uint64_t now_ns_ = 0;
  uint64_t next_conn_id_ = 1;
  uint64_t next_session_id_ = 1;
  uint64_t next_bundle_id_ = 0;  ///< pre-assigned engine ids, arrival order
  uint64_t next_event_seq_ = 0;
  uint64_t next_binding_gen_ = 1;
  std::map<uint64_t, Connection> connections_;
  std::map<uint64_t, Session> sessions_;
  size_t open_sessions_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::map<uint32_t, ActiveBinding> active_;  ///< by device
  std::vector<Binding> bindings_;

  obs::Counter* frames_total_ = nullptr;
  obs::Counter* frames_rejected_ = nullptr;   ///< channel said no (auth/replay)
  obs::Counter* frames_malformed_ = nullptr;  ///< authenticated garbage
  obs::Counter* dispatched_total_ = nullptr;
  obs::Counter* failovers_total_ = nullptr;   ///< bindings lost + re-admitted
  obs::Counter* retry_exhausted_total_ = nullptr;
  obs::Counter* device_lost_total_ = nullptr; ///< terminal kDeviceLost
  obs::Histogram* rebind_latency_ = nullptr;  ///< binding cut -> re-dispatch
  obs::Gauge* sessions_gauge_ = nullptr;
};

/// Test/bench client helper: one connection, seal/deliver/decode round
/// trips, optionally through a FaultyLink (frames that the link drops or
/// the server rejects simply yield no response — like the real wire).
class ServiceClient {
 public:
  ServiceClient(FrontDoor& door, const crypto::AesKey128& key);

  /// Sends the frame at sim time `now_ns`; returns the first decoded
  /// response, or nullopt when the wire ate it.
  std::optional<ResponseFrame> call(const RequestFrame& request,
                                    uint64_t now_ns,
                                    faults::FaultyLink* link = nullptr);

  uint64_t conn_id() const { return conn_id_; }

 private:
  FrontDoor& door_;
  hypervisor::SecureChannel channel_;
  uint64_t conn_id_ = 0;
};

}  // namespace hardtape::service
