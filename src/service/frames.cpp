#include "service/frames.hpp"

#include <array>

#include "trie/rlp.hpp"

namespace hardtape::service {

namespace {

using trie::RlpItem;
using trie::RlpList;

Bytes u256_bytes(const u256& v) {
  // Minimal big-endian payload (Ethereum integer convention; 0 is empty).
  // NOT rlp_encode_u256: that returns a full RLP string item, and these
  // payloads get their prefix from the enclosing RlpItem tree.
  const auto be = v.to_be_bytes();
  size_t first = 0;
  while (first < be.size() && be[first] == 0) ++first;
  return Bytes(be.begin() + static_cast<ptrdiff_t>(first), be.end());
}

Bytes u64_bytes(uint64_t v) { return u256_bytes(u256{v}); }

RlpItem u64_item(uint64_t v) { return RlpItem(u64_bytes(v)); }

/// Strict u64 read: a byte string of at most 8 bytes, no leading zero
/// (canonical minimal encoding — two wire forms for one value would make
/// replay/dedup keys ambiguous).
std::optional<uint64_t> read_u64(const RlpItem& item) {
  if (item.is_list()) return std::nullopt;
  const Bytes& b = item.bytes();
  if (b.size() > 8) return std::nullopt;
  if (!b.empty() && b[0] == 0) return std::nullopt;
  uint64_t v = 0;
  for (const uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

std::optional<u256> read_u256(const RlpItem& item) {
  if (item.is_list()) return std::nullopt;
  const Bytes& b = item.bytes();
  if (b.size() > 32) return std::nullopt;
  if (!b.empty() && b[0] == 0) return std::nullopt;
  return u256::from_be_bytes(b);
}

std::optional<Address> read_address(const RlpItem& item) {
  if (item.is_list()) return std::nullopt;
  const Bytes& b = item.bytes();
  if (b.size() != 20) return std::nullopt;
  return Address::from(b);
}

RlpItem tx_item(const evm::Transaction& tx) {
  RlpList fields;
  fields.emplace_back(Bytes(tx.from.bytes.begin(), tx.from.bytes.end()));
  fields.push_back(u64_item(tx.to.has_value() ? 1 : 0));
  fields.emplace_back(tx.to.has_value()
                          ? Bytes(tx.to->bytes.begin(), tx.to->bytes.end())
                          : Bytes{});
  fields.emplace_back(u256_bytes(tx.value));
  fields.emplace_back(tx.data);
  fields.push_back(u64_item(tx.gas_limit));
  fields.emplace_back(u256_bytes(tx.gas_price));
  fields.push_back(u64_item(tx.nonce.has_value() ? 1 : 0));
  fields.push_back(u64_item(tx.nonce.value_or(0)));
  return RlpItem(std::move(fields));
}

std::optional<evm::Transaction> read_tx(const RlpItem& item) {
  if (!item.is_list()) return std::nullopt;
  const RlpList& f = item.list();
  if (f.size() != 9) return std::nullopt;
  evm::Transaction tx;
  const auto from = read_address(f[0]);
  const auto to_present = read_u64(f[1]);
  const auto value = read_u256(f[3]);
  const auto gas_limit = read_u64(f[5]);
  const auto gas_price = read_u256(f[6]);
  const auto nonce_present = read_u64(f[7]);
  const auto nonce = read_u64(f[8]);
  if (!from || !to_present || !value || !gas_limit || !gas_price ||
      !nonce_present || !nonce) {
    return std::nullopt;
  }
  if (*to_present > 1 || *nonce_present > 1) return std::nullopt;
  if (f[2].is_list() || f[4].is_list()) return std::nullopt;
  tx.from = *from;
  if (*to_present == 1) {
    const auto to = read_address(f[2]);
    if (!to) return std::nullopt;
    tx.to = *to;
  } else if (!f[2].bytes().empty()) {
    return std::nullopt;  // creation txs must carry an empty `to` field
  }
  tx.value = *value;
  tx.data = f[4].bytes();
  tx.gas_limit = *gas_limit;
  tx.gas_price = *gas_price;
  if (*nonce_present == 1) tx.nonce = *nonce;
  else if (*nonce != 0) return std::nullopt;
  return tx;
}

bool known_verb(uint64_t v) {
  return v >= static_cast<uint64_t>(Verb::kOpenSession) &&
         v <= static_cast<uint64_t>(Verb::kCloseSession);
}

}  // namespace

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::kOpenSession: return "open-session";
    case Verb::kSubmit: return "submit";
    case Verb::kPoll: return "poll";
    case Verb::kCloseSession: return "close-session";
  }
  return "unknown";
}

Bytes RequestFrame::encode() const {
  RlpList fields;
  fields.push_back(u64_item(version));
  fields.push_back(u64_item(static_cast<uint64_t>(verb)));
  fields.push_back(u64_item(session_id));
  fields.push_back(u64_item(tenant_id));
  fields.push_back(u64_item(request_id));
  fields.push_back(u64_item(deadline_ns));
  fields.push_back(u64_item(client_time_ns));
  fields.push_back(u64_item(gas_estimate));
  RlpList txs;
  txs.reserve(bundle.size());
  for (const evm::Transaction& tx : bundle) txs.push_back(tx_item(tx));
  fields.emplace_back(std::move(txs));
  return trie::rlp_encode(RlpItem(std::move(fields)));
}

std::optional<RequestFrame> RequestFrame::decode(BytesView body) {
  RlpItem item;
  try {
    item = trie::rlp_decode(body);
  } catch (const DecodingError&) {
    return std::nullopt;
  }
  if (!item.is_list()) return std::nullopt;
  const RlpList& f = item.list();
  if (f.size() != 9) return std::nullopt;
  const auto version = read_u64(f[0]);
  const auto verb = read_u64(f[1]);
  const auto session_id = read_u64(f[2]);
  const auto tenant_id = read_u64(f[3]);
  const auto request_id = read_u64(f[4]);
  const auto deadline_ns = read_u64(f[5]);
  const auto client_time_ns = read_u64(f[6]);
  const auto gas_estimate = read_u64(f[7]);
  if (!version || !verb || !session_id || !tenant_id || !request_id ||
      !deadline_ns || !client_time_ns || !gas_estimate) {
    return std::nullopt;
  }
  if (*version != kServiceFrameVersion) return std::nullopt;
  if (!known_verb(*verb)) return std::nullopt;
  if (!f[8].is_list()) return std::nullopt;
  RequestFrame frame;
  frame.version = static_cast<uint8_t>(*version);
  frame.verb = static_cast<Verb>(*verb);
  frame.session_id = *session_id;
  frame.tenant_id = *tenant_id;
  frame.request_id = *request_id;
  frame.deadline_ns = *deadline_ns;
  frame.client_time_ns = *client_time_ns;
  frame.gas_estimate = *gas_estimate;
  frame.bundle.reserve(f[8].list().size());
  for (const RlpItem& tx_field : f[8].list()) {
    auto tx = read_tx(tx_field);
    if (!tx) return std::nullopt;
    frame.bundle.push_back(std::move(*tx));
  }
  // Only submits carry a bundle (or a cost hint); either on any other verb
  // is malformed.
  if (frame.verb != Verb::kSubmit && !frame.bundle.empty()) return std::nullopt;
  if (frame.verb != Verb::kSubmit && frame.gas_estimate != 0) {
    return std::nullopt;
  }
  return frame;
}

Bytes ResponseFrame::encode() const {
  RlpList fields;
  fields.push_back(u64_item(version));
  fields.push_back(u64_item(static_cast<uint64_t>(verb)));
  fields.push_back(u64_item(session_id));
  fields.push_back(u64_item(request_id));
  fields.push_back(u64_item(static_cast<uint64_t>(status)));
  fields.push_back(u64_item(done ? 1 : 0));
  fields.push_back(u64_item(static_cast<uint64_t>(outcome_status)));
  fields.push_back(u64_item(queue_wait_ns));
  fields.push_back(u64_item(exec_ns));
  fields.push_back(u64_item(gas_used));
  return trie::rlp_encode(RlpItem(std::move(fields)));
}

std::optional<ResponseFrame> ResponseFrame::decode(BytesView body) {
  RlpItem item;
  try {
    item = trie::rlp_decode(body);
  } catch (const DecodingError&) {
    return std::nullopt;
  }
  if (!item.is_list()) return std::nullopt;
  const RlpList& f = item.list();
  if (f.size() != 10) return std::nullopt;
  std::array<std::optional<uint64_t>, 10> v;
  for (size_t i = 0; i < f.size(); ++i) {
    v[i] = read_u64(f[i]);
    if (!v[i]) return std::nullopt;
  }
  if (*v[0] != kServiceFrameVersion) return std::nullopt;
  if (!known_verb(*v[1])) return std::nullopt;
  const auto valid_status = [](uint64_t s) {
    return s < static_cast<uint64_t>(Status::kStatusCount_);
  };
  if (!valid_status(*v[4]) || !valid_status(*v[6])) return std::nullopt;
  if (*v[5] > 1) return std::nullopt;
  ResponseFrame frame;
  frame.version = static_cast<uint8_t>(*v[0]);
  frame.verb = static_cast<Verb>(*v[1]);
  frame.session_id = *v[2];
  frame.request_id = *v[3];
  frame.status = static_cast<Status>(*v[4]);
  frame.done = *v[5] == 1;
  frame.outcome_status = static_cast<Status>(*v[6]);
  frame.queue_wait_ns = *v[7];
  frame.exec_ns = *v[8];
  frame.gas_used = *v[9];
  return frame;
}

}  // namespace hardtape::service
