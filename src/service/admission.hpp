// Admission control for the service front door (PR 7).
//
// The paper's dedicated-hardware contract shapes everything here: an HEVM is
// never shared, so under overload the only lever the service has is WHO gets
// a device next and WHO is told "no" — never "how thin do we slice it". This
// module is that lever, and it is deliberately pure policy: no threads, no
// wall clocks, no I/O. Every decision is a function of (config, queue state,
// simulated time), which is what lets the front door replay identically at
// any worker count and lets tests pin fairness bounds exactly.
//
// Three mechanisms, composed:
//
//  1. Per-tenant bounded FIFO queues drained by deficit round-robin (DRR):
//     each round a tenant's deficit grows by quantum = base * weight and it
//     may dispatch while deficit >= cost (cost = 1 per request). A tenant at
//     its in-flight quota is skipped without losing its deficit. DRR gives a
//     hard fairness bound — a flooding tenant can fill only its OWN queue,
//     and any other tenant waits at most O(rounds) behind its own backlog.
//
//  2. Sim-time deadlines: a request carries an absolute queue-wait deadline.
//     Admission refuses dead-on-arrival requests (the link may have delayed
//     the frame past its own budget) and the dispatcher refuses requests
//     that aged out while queued — both as kDeadlineExceeded, both without
//     spending a device. A pre-execution answer after the caller's deadline
//     is worthless; executing it anyway would be pure overload amplification.
//
//  3. A brownout ladder driven by total queue depth and the p99 queue wait
//     over a sliding window, with two-threshold hysteresis per rung so the
//     state cannot flap on a boundary workload:
//
//       kHealthy          admit everyone (subject to queue caps + deadlines)
//       kShedLowPriority  refuse tenants below the priority floor
//       kAdmitNone        refuse everyone; drain what is already queued
//
// Shed requests are answered kOverloaded immediately: a fast honest refusal
// the client can act on, instead of a slow timeout that holds queue memory.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/errors.hpp"
#include "evm/types.hpp"
#include "obs/metrics.hpp"

namespace hardtape::service {

/// Overload rungs, in escalation order. Values are wire/metric-stable.
enum class BrownoutState : uint8_t {
  kHealthy = 0,
  kShedLowPriority = 1,
  kAdmitNone = 2,
};

const char* to_string(BrownoutState state);

/// Per-tenant policy. Tenants not configured up front get the defaults from
/// AdmissionConfig on first contact.
struct TenantConfig {
  uint64_t tenant_id = 0;
  /// DRR weight: share of dispatch slots relative to other backlogged
  /// tenants. quantum = quantum_base * weight.
  uint32_t weight = 1;
  /// Bound on this tenant's queue; arrivals beyond it are shed (kOverloaded)
  /// no matter how healthy the service is — one tenant's backlog must never
  /// become everyone's memory pressure.
  uint32_t queue_capacity = 64;
  /// Concurrency quota: max requests from this tenant on devices at once.
  uint32_t max_in_flight = 4;
  /// Brownout class. kShedLowPriority refuses tenants with
  /// priority < shed_priority_floor.
  uint32_t priority = 1;
};

struct AdmissionConfig {
  std::vector<TenantConfig> tenants;  ///< pre-configured tenants
  TenantConfig defaults{};            ///< template for unknown tenants
  /// DRR quantum per weight unit. Cost of one request is 1, so quantum_base=1
  /// gives a weight-1 tenant one dispatch per round.
  uint32_t quantum_base = 1;
  /// Tenants with priority below this floor are refused in kShedLowPriority.
  /// Ignored when shed_gas_budget_per_priority is set (see below).
  uint32_t shed_priority_floor = 2;
  /// Cost-aware brownout (0 disables = legacy priority-class shedding).
  /// When set, kShedLowPriority sheds by estimated cost × priority instead
  /// of the class floor: a request survives iff
  ///   estimated_gas <= shed_gas_budget_per_priority * tenant_priority.
  /// Shedding then tracks the device time a request would actually consume:
  /// a cheap bundle from a low-priority tenant survives a brownout that
  /// sheds an expensive bundle from the same class, because refusing the
  /// expensive one frees more device time per refusal.
  uint64_t shed_gas_budget_per_priority = 0;

  /// Brownout ladder thresholds (enter when EITHER depth or p99 wait is past
  /// the *_enter mark; drop back only when BOTH are under the *_exit mark —
  /// classic hysteresis so a workload sitting on a threshold cannot flap).
  size_t shed_depth_enter = 192;
  size_t shed_depth_exit = 96;
  uint64_t shed_p99_wait_enter_ns = 0;  ///< 0 disables the wait trigger
  uint64_t shed_p99_wait_exit_ns = 0;
  size_t admit_none_depth_enter = 512;
  size_t admit_none_depth_exit = 256;
  uint64_t admit_none_p99_wait_enter_ns = 0;
  uint64_t admit_none_p99_wait_exit_ns = 0;
  /// Sliding window of recent queue-wait samples feeding the p99 trigger.
  size_t wait_window = 256;
};

/// One admitted-but-not-yet-dispatched request.
struct QueuedRequest {
  uint64_t session_id = 0;
  uint64_t tenant_id = 0;
  uint64_t request_id = 0;
  uint64_t enqueue_ns = 0;        ///< sim time of admission
  uint64_t deadline_ns = 0;       ///< ABSOLUTE sim deadline; 0 = none
  /// Estimated execution cost (the submit frame's gas hint, or the bundle's
  /// summed gas limits when the client sent none). Feeds cost-aware
  /// brownout; 0 = unknown/free.
  uint64_t estimated_gas = 0;
  std::vector<evm::Transaction> bundle;
};

/// Pure-policy admission controller. Single-threaded by design: the front
/// door's dispatch loop owns it; concurrency lives in the worker pool below.
class AdmissionController {
 public:
  /// Metrics are registered eagerly for configured tenants and lazily for
  /// unknown ones. `registry` must outlive the controller.
  AdmissionController(AdmissionConfig config, obs::Registry* registry);

  /// Admission verdict for an arriving request at sim time `now_ns`.
  /// kOk: queued. kOverloaded: shed (brownout, priority, or full queue).
  /// kDeadlineExceeded: dead on arrival. Refusals hold no state.
  Status admit(QueuedRequest request, uint64_t now_ns);

  /// Next DRR pick. `expired` picks blew their deadline while queued: the
  /// caller answers kDeadlineExceeded and must NOT dispatch them (they are
  /// not counted in flight and consume no device). Non-expired picks are
  /// charged against the tenant's deficit and in-flight quota; the caller
  /// must pair each with exactly one on_complete(). nullopt = no tenant has
  /// dispatchable work (empty queues or everyone at quota).
  struct Pick {
    QueuedRequest request;
    bool expired = false;
  };
  std::optional<Pick> next(uint64_t now_ns);

  /// Releases the tenant's in-flight slot taken by a non-expired next().
  void on_complete(uint64_t tenant_id);

  /// Re-admits a request whose device died (or was drained away) mid-flight.
  /// The request already won admission once, so the brownout ladder and the
  /// tenant queue cap do NOT apply — shedding it now would turn a device
  /// fault into a silent drop of accepted work. It re-enters at the FRONT
  /// of its tenant queue (failover work re-dispatches ahead of newer
  /// arrivals, minimizing rebind latency) but still flows through the
  /// normal DRR pass, in-flight quotas and deadline expiry: a re-admitted
  /// request that ages out is still answered kDeadlineExceeded.
  void readmit(QueuedRequest request, uint64_t now_ns);

  BrownoutState state() const { return state_; }
  size_t total_queued() const { return total_queued_; }
  /// p99 queue wait over the sliding window, nearest-rank.
  ///
  /// Short-window semantics (pinned by unit tests at n ∈ {0, 1, 2}): an
  /// EMPTY window reports 0, so a wait-based brownout rung can never ENTER
  /// before the first wait sample lands (depth triggers still apply) and a
  /// configured wait-exit mark is trivially satisfied; with one sample the
  /// p99 IS that sample; with n < 100 samples nearest-rank p99 is the
  /// window MAXIMUM, so a single slow dispatch early in a run can trip a
  /// wait-enter threshold by itself. That bias is deliberate — under
  /// overload the controller should fail toward shedding — and callers
  /// sizing wait thresholds should size wait_window accordingly.
  uint64_t window_p99_wait_ns() const;

 private:
  struct Tenant {
    TenantConfig config;
    std::deque<QueuedRequest> queue;
    uint64_t deficit = 0;
    uint32_t in_flight = 0;
    obs::Counter* admitted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Histogram* queue_wait = nullptr;
  };

  Tenant& tenant(uint64_t tenant_id);
  void record_wait(Tenant& t, uint64_t wait_ns);
  void update_brownout();

  AdmissionConfig config_;
  obs::Registry* registry_;
  std::map<uint64_t, Tenant> tenants_;  // ordered => deterministic DRR order
  /// DRR cursor: tenant id the next round resumes at.
  uint64_t cursor_ = 0;
  size_t total_queued_ = 0;
  BrownoutState state_ = BrownoutState::kHealthy;
  std::deque<uint64_t> wait_window_;
  obs::Gauge* brownout_gauge_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace hardtape::service
