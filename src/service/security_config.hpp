// Security-feature toggles matching the paper's Figure 4 configurations.
//
//   -raw : HEVM with all off-chip data protections disabled
//   -E   : + AES-GCM encryption of user inputs and returned traces
//   -ES  : + ECDSA signature/verification of inputs and traces
//   -ESO : + Path ORAM for storage (K-V world-state queries)
//   -full: + Path ORAM for contract code too (the SP's production config)
#pragma once

#include <string_view>

namespace hardtape::service {

struct SecurityConfig {
  bool encryption = false;    ///< E: AES-GCM on the user channel
  bool signatures = false;    ///< S: ECDSA over inputs and traces
  bool oram_storage = false;  ///< O: K-V queries through the Path ORAM
  bool oram_code = false;     ///< full: code pages through the Path ORAM too

  static SecurityConfig raw() { return {}; }
  static SecurityConfig E() { return {.encryption = true}; }
  static SecurityConfig ES() { return {.encryption = true, .signatures = true}; }
  static SecurityConfig ESO() {
    return {.encryption = true, .signatures = true, .oram_storage = true};
  }
  static SecurityConfig full() {
    return {.encryption = true, .signatures = true, .oram_storage = true,
            .oram_code = true};
  }

  std::string_view name() const {
    if (oram_code) return "-full";
    if (oram_storage) return "-ESO";
    if (signatures) return "-ES";
    if (encryption) return "-E";
    return "-raw";
  }
};

}  // namespace hardtape::service
