#include "service/device_pool.hpp"

#include <algorithm>
#include <string>

#include "common/errors.hpp"

namespace hardtape::service {

const char* to_string(DeviceState state) {
  switch (state) {
    case DeviceState::kJoining: return "joining";
    case DeviceState::kServing: return "serving";
    case DeviceState::kDraining: return "draining";
    case DeviceState::kQuarantined: return "quarantined";
    case DeviceState::kDead: return "dead";
  }
  return "unknown";
}

const char* to_string(DeviceEventKind kind) {
  switch (kind) {
    case DeviceEventKind::kJoin: return "join";
    case DeviceEventKind::kServe: return "serve";
    case DeviceEventKind::kDrainStart: return "drain-start";
    case DeviceEventKind::kDrainDone: return "drain-done";
    case DeviceEventKind::kCrash: return "crash";
    case DeviceEventKind::kStickyFault: return "sticky-fault";
    case DeviceEventKind::kQuarantine: return "quarantine";
    case DeviceEventKind::kRejoin: return "rejoin";
  }
  return "unknown";
}

DevicePool::DevicePool(DevicePoolConfig config, obs::Registry* registry)
    : config_(config), registry_(registry) {
  if (registry_ == nullptr) {
    throw UsageError("DevicePool requires a metrics registry");
  }
  serving_gauge_ = &registry_->gauge("hardtape_service_devices_serving",
                                     "devices in the serving state");
  total_gauge_ = &registry_->gauge("hardtape_service_devices_total",
                                   "devices ever added to the pool");
  hot_adds_ = &registry_->counter("hardtape_service_device_hot_adds_total",
                                  "devices added after construction");
  crashes_ = &registry_->counter("hardtape_service_device_crashes_total",
                                 "abrupt device deaths (incl. flaps)");
  sticky_faults_ =
      &registry_->counter("hardtape_service_device_sticky_faults_total",
                          "bindings whose result failed health checks");
  quarantines_ =
      &registry_->counter("hardtape_service_device_quarantines_total",
                          "breaker trips quarantining a device");
  rejoins_ = &registry_->counter("hardtape_service_device_rejoins_total",
                                 "devices re-admitted after quarantine/flap");
  drains_started_ =
      &registry_->counter("hardtape_service_device_drains_started_total",
                          "graceful drains requested");
  drains_completed_ =
      &registry_->counter("hardtape_service_device_drains_completed_total",
                          "drains that reached dead");
  for (size_t i = 0; i < config_.initial_devices; ++i) {
    const uint32_t id = static_cast<uint32_t>(devices_.size());
    devices_.push_back(Device{});
    devices_.back().state_gauge = &registry_->gauge(
        "hardtape_service_device_" + std::to_string(id) + "_state",
        "device lifecycle state: 0 joining, 1 serving, 2 draining, "
        "3 quarantined, 4 dead");
    // The initial fleet skips warmup: it is the legacy static pool, serving
    // from sim time 0 (existing tests and benches depend on that shape).
    log(id, DeviceEventKind::kJoin, 0);
    set_state(id, DeviceState::kServing);
    log(id, DeviceEventKind::kServe, 0);
  }
  total_gauge_->set(static_cast<double>(devices_.size()));
  refresh_serving_gauge();
}

DevicePool::Device& DevicePool::device_at(uint32_t device) {
  if (device >= devices_.size()) {
    throw UsageError("DevicePool: unknown device id");
  }
  return devices_[device];
}

const DevicePool::Device& DevicePool::device_at(uint32_t device) const {
  if (device >= devices_.size()) {
    throw UsageError("DevicePool: unknown device id");
  }
  return devices_[device];
}

void DevicePool::log(uint32_t device, DeviceEventKind kind, uint64_t at_ns) {
  events_.push_back(DeviceEvent{at_ns, device, kind});
}

void DevicePool::set_state(uint32_t device, DeviceState state) {
  Device& d = devices_[device];
  d.state = state;
  d.state_gauge->set(static_cast<double>(static_cast<uint8_t>(state)));
}

void DevicePool::refresh_serving_gauge() {
  serving_gauge_->set(static_cast<double>(serving_count()));
}

uint32_t DevicePool::add_device(uint64_t now_ns) {
  const uint32_t id = static_cast<uint32_t>(devices_.size());
  devices_.push_back(Device{});
  Device& d = devices_.back();
  d.state_gauge = &registry_->gauge(
      "hardtape_service_device_" + std::to_string(id) + "_state",
      "device lifecycle state: 0 joining, 1 serving, 2 draining, "
      "3 quarantined, 4 dead");
  hot_adds_->add();
  total_gauge_->set(static_cast<double>(devices_.size()));
  log(id, DeviceEventKind::kJoin, now_ns);
  if (config_.join_warmup_ns == 0) {
    set_state(id, DeviceState::kServing);
    log(id, DeviceEventKind::kServe, now_ns);
  } else {
    set_state(id, DeviceState::kJoining);
    d.wake_ns = now_ns + config_.join_warmup_ns;
  }
  refresh_serving_gauge();
  return id;
}

std::optional<DeviceState> DevicePool::start_drain(uint32_t device,
                                                   uint64_t now_ns) {
  Device& d = device_at(device);
  if (d.state == DeviceState::kDead || d.state == DeviceState::kDraining) {
    return std::nullopt;  // idempotent: already gone or already draining
  }
  drains_started_->add();
  log(device, DeviceEventKind::kDrainStart, now_ns);
  if (d.state == DeviceState::kServing && d.busy) {
    // The in-flight session gets drain_grace_ns to finish; the FrontDoor
    // schedules the deadline that cuts it otherwise.
    set_state(device, DeviceState::kDraining);
    refresh_serving_gauge();
    return DeviceState::kDraining;
  }
  // Idle, joining or quarantined: nothing bound, the drain completes now.
  d.wake_ns = UINT64_MAX;
  set_state(device, DeviceState::kDead);
  log(device, DeviceEventKind::kDrainDone, now_ns);
  drains_completed_->add();
  refresh_serving_gauge();
  return std::nullopt;
}

void DevicePool::finish_drain(uint32_t device, uint64_t now_ns) {
  Device& d = device_at(device);
  if (d.state != DeviceState::kDraining) {
    throw UsageError("DevicePool::finish_drain on a device not draining");
  }
  d.busy = false;
  d.wake_ns = UINT64_MAX;
  set_state(device, DeviceState::kDead);
  log(device, DeviceEventKind::kDrainDone, now_ns);
  drains_completed_->add();
}

std::optional<uint32_t> DevicePool::acquire(uint64_t) {
  for (uint32_t id = 0; id < devices_.size(); ++id) {
    Device& d = devices_[id];
    if (d.state == DeviceState::kServing && !d.busy) {
      d.busy = true;
      return id;
    }
  }
  return std::nullopt;
}

faults::DeviceFaultDecision DevicePool::binding_fate(uint32_t device) {
  Device& d = device_at(device);
  const uint64_t index = d.binding_count++;
  if (config_.fault_plan == nullptr) return {};
  return config_.fault_plan->decide(device, index);
}

void DevicePool::complete(uint32_t device, uint64_t now_ns) {
  Device& d = device_at(device);
  d.busy = false;
  d.sticky_streak = 0;
  if (d.state == DeviceState::kDraining) {
    // The in-flight session it was waiting for just finished cleanly.
    d.wake_ns = UINT64_MAX;
    set_state(device, DeviceState::kDead);
    log(device, DeviceEventKind::kDrainDone, now_ns);
    drains_completed_->add();
  }
}

void DevicePool::sticky_fault(uint32_t device, uint64_t now_ns) {
  Device& d = device_at(device);
  d.busy = false;
  sticky_faults_->add();
  log(device, DeviceEventKind::kStickyFault, now_ns);
  if (d.state == DeviceState::kDraining) {
    // Draining anyway: no point probing a device on its way out.
    d.wake_ns = UINT64_MAX;
    set_state(device, DeviceState::kDead);
    log(device, DeviceEventKind::kDrainDone, now_ns);
    drains_completed_->add();
    return;
  }
  ++d.sticky_streak;
  if (config_.quarantine_threshold > 0 &&
      d.sticky_streak >= config_.quarantine_threshold) {
    d.sticky_streak = 0;
    ++d.quarantines;
    quarantines_->add();
    set_state(device, DeviceState::kQuarantined);
    // Deterministic backoff, growing with this device's quarantine history;
    // the device id is the jitter stream so probes de-synchronize.
    const uint64_t delay =
        sim::backoff_delay_ns(config_.probe_backoff,
                              static_cast<int>(d.quarantines), device);
    d.wake_ns = now_ns + std::max<uint64_t>(1, delay);
    log(device, DeviceEventKind::kQuarantine, now_ns);
    refresh_serving_gauge();
  }
}

void DevicePool::crash(uint32_t device, uint64_t now_ns,
                       uint64_t rejoin_at_ns) {
  Device& d = device_at(device);
  if (d.state == DeviceState::kDead) return;
  d.busy = false;
  crashes_->add();
  log(device, DeviceEventKind::kCrash, now_ns);
  if (rejoin_at_ns == 0) {
    d.wake_ns = UINT64_MAX;
    set_state(device, DeviceState::kDead);
  } else {
    // Flap: down for repair, back at rejoin_at_ns.
    set_state(device, DeviceState::kQuarantined);
    d.wake_ns = std::max(rejoin_at_ns, now_ns + 1);
  }
  refresh_serving_gauge();
}

void DevicePool::advance_to(uint64_t now_ns) {
  // Apply due transitions in (wake, id) order so simultaneous wakes produce
  // one deterministic event order.
  for (;;) {
    uint32_t best = UINT32_MAX;
    uint64_t best_wake = UINT64_MAX;
    for (uint32_t id = 0; id < devices_.size(); ++id) {
      if (devices_[id].wake_ns < best_wake) {
        best_wake = devices_[id].wake_ns;
        best = id;
      }
    }
    if (best == UINT32_MAX || best_wake > now_ns) return;
    Device& d = devices_[best];
    d.wake_ns = UINT64_MAX;
    if (d.state == DeviceState::kJoining) {
      set_state(best, DeviceState::kServing);
      log(best, DeviceEventKind::kServe, best_wake);
    } else if (d.state == DeviceState::kQuarantined) {
      rejoins_->add();
      set_state(best, DeviceState::kServing);
      log(best, DeviceEventKind::kRejoin, best_wake);
    }
    refresh_serving_gauge();
  }
}

uint64_t DevicePool::next_transition_ns() const {
  uint64_t earliest = UINT64_MAX;
  for (const Device& d : devices_) earliest = std::min(earliest, d.wake_ns);
  return earliest;
}

DeviceState DevicePool::state(uint32_t device) const {
  return device_at(device).state;
}

bool DevicePool::busy(uint32_t device) const { return device_at(device).busy; }

bool DevicePool::has_idle() const {
  for (const Device& d : devices_) {
    if (d.state == DeviceState::kServing && !d.busy) return true;
  }
  return false;
}

bool DevicePool::can_ever_serve() const {
  for (const Device& d : devices_) {
    if (d.state == DeviceState::kJoining ||
        d.state == DeviceState::kServing ||
        d.state == DeviceState::kQuarantined) {
      return true;
    }
  }
  return false;
}

size_t DevicePool::serving_count() const {
  size_t n = 0;
  for (const Device& d : devices_) {
    if (d.state == DeviceState::kServing) ++n;
  }
  return n;
}

}  // namespace hardtape::service
