// Concurrent multi-session pre-execution engine.
//
// PreExecutionService drives ONE session at a time; this engine models the
// deployment the paper actually argues for — many users, each with a
// dedicated HEVM (§IV-B "no context switches, no shared-hardware side
// channels") — with a real worker pool:
//
//   submit() ──► BoundedQueue (backpressure, Fig. 3 step 3) ──► N workers
//                                                                 │
//        each worker owns: one HevmCore, one hypervisor session   │
//        + secure channel, one per-session SimClock               ▼
//                                     shared OramFrontend ──► OramClient
//                                     (mutex-serialized)        └► OramServer
//
// Determinism contract: a bundle's outcome (traces, gas, storage writes,
// simulated timings) depends only on (engine seed, bundle id, world state) —
// never on which worker ran it or how sessions interleaved. Each session
// gets a fresh SimClock starting at 0 and a bundle-id-derived RNG, and ORAM
// page contents are order-independent, so concurrent outcomes are
// bit-identical to serial execution (execute_serial() is the reference).
//
// Two timelines are reported, and they must never be conflated:
//  - simulated: per-session costs from the sim cost models, aggregated into
//    an engine-level schedule (earliest-free-HEVM, like the paper's Fig. 3
//    step 3 queue). All reproduced numbers — bundles/s, queue wait — come
//    from here, deterministic on any host.
//  - wall: host measurements of the real thread pool (lock contention on
//    the ORAM frontend, producer backpressure). Diagnostics only.
//
// Failure model (PR 2): with a FaultPlan installed the SP's interfaces
// misbehave, and the engine fails CLOSED at three nested layers:
//  1. per-request: the OramFrontend retries timeouts with simulated
//     backoff and aborts on integrity failures (see oram/frontend.hpp);
//  2. per-session: an unrecoverable backend fault aborts the session
//     (BackendFault), and recoverable aborts requeue the bundle — front of
//     queue, fresh fault stream — up to max_bundle_attempts times before the
//     outcome resolves as a terminal Status;
//  3. per-engine: breaker_threshold consecutive backend-faulted attempts
//     open a circuit breaker that quarantines the ORAM backend — queued and
//     newly submitted bundles resolve immediately as kUnavailable instead of
//     burning retry budgets against a dead server, so drain() always
//     terminates in bounded simulated time.
// A wall-clock Watchdog (service/watchdog.hpp) additionally flags worker
// threads that stop making host progress; it is diagnostics-only.
//
// Live-chain model (PR 4): the node keeps producing blocks — and reorging —
// while bundles queue. The engine therefore pins every session to an
// immutable snapshot of one specific block (synchronize() pins the first;
// outcomes carry the pinned state root + store epoch). When the head outruns
// the pin by more than max_head_lag, or a reorg orphans the pinned root,
// resync() quiesces the pool, delta-syncs the ORAM against the new trusted
// root (all-or-nothing, epoch-tagged — see oram/epoch.hpp), and
// re-executes every outcome whose root the canonical chain lost; a bundle
// that burns max_resim_attempts such rounds resolves as the fail-closed
// Status::kStale. The determinism contract extends to all of it: outcomes
// (including which bundles go stale) depend only on the seeded submit/tick
// interleaving the caller drives, never on worker count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/faulty_oram.hpp"
#include "obs/metrics.hpp"
#include "oram/epoch.hpp"
#include "oram/frontend.hpp"
#include "oram/sharded.hpp"
#include "service/bundle_queue.hpp"
#include "service/pre_execution.hpp"
#include "service/watchdog.hpp"

namespace hardtape::durability {
class DurableStore;
struct RecoveredState;
}  // namespace hardtape::durability

namespace hardtape::service {

struct SessionOutcome;

struct EngineConfig {
  int num_hevms = 3;       ///< worker pool width (paper §VI-A: 3 per chip)
  size_t queue_depth = 16; ///< bundle-queue slots before backpressure
  /// Simulated inter-arrival gap between submitted bundles (the engine-level
  /// schedule assumes bundle i arrives at i * arrival_gap_ns).
  uint64_t arrival_gap_ns = 0;
  /// OramFrontend option: merge concurrent duplicate page reads.
  bool coalesce_duplicate_reads = false;

  SecurityConfig security = SecurityConfig::full();
  hevm::HevmCore::Config core{};
  oram::OramConfig oram{};
  oram::SealMode seal_mode = oram::SealMode::kChaChaHmac;
  /// Independently locked Path ORAM subtrees behind the frontend (PR 6,
  /// power of two). `oram` above stays the WHOLE-store geometry; each shard
  /// gets ShardedOramStore::partition() of it. 1 = a single tree with the
  /// same adversary view as the pre-sharding engine; >1 lets sessions whose
  /// accesses land on distinct shards walk paths in parallel.
  size_t oram_shards = 8;
  /// ABLATION ONLY (bench_obs): pin blocks to their first shard instead of
  /// redrawing per access — the leak the per-shard audit must catch.
  bool oram_pin_shard_assignment = false;
  /// Consecutive terminal failures that quarantine ONE shard at the
  /// frontend while the rest keep serving; <= 0 disables (the engine-level
  /// breaker below still owns the whole-backend verdict).
  int oram_shard_breaker_threshold = 0;
  RoutedStateReader::Timing timing{};
  sim::HypervisorCostModel hypervisor_costs{};
  sim::CryptoCostModel crypto_costs{};
  uint64_t seed = 1;
  /// When false, user-channel AES/ECDSA are modeled in time only (the ORAM's
  /// crypto is always real) — same switch as PreExecutionService.
  bool perform_channel_crypto = false;

  // --- failure model & recovery (PR 2) ---
  /// Optional adversarial fault injection on the SP-controlled interfaces.
  /// Must outlive the engine. nullptr = reliable backends (the default), in
  /// which case the whole recovery stack is dormant and outcomes are
  /// bit-identical to PR 1.
  faults::FaultPlan* fault_plan = nullptr;
  /// Per-request timeout/backoff policy the ORAM frontend runs (sim time).
  sim::BackoffPolicy oram_recovery{};
  /// Total executions one bundle may consume (first try + requeues) before
  /// a recoverable fault resolves as a terminal status. 1 = never requeue.
  int max_bundle_attempts = 3;
  /// Consecutive backend-faulted attempts that open the circuit breaker;
  /// <= 0 disables the breaker.
  int breaker_threshold = 4;
  /// Wall-clock worker liveness monitor (diagnostics only).
  bool watchdog_enabled = true;
  uint64_t watchdog_stall_ms = 2'000;

  // --- live-chain staleness policy (PR 4) ---
  /// Blocks the chain head may advance past the engine's pinned snapshot
  /// before an admission triggers a delta re-sync + re-pin (0 = re-sync on
  /// any lag). A reorg that orphans the pinned root always triggers one.
  /// Only consulted when auto_resync is set; resync() is always available.
  uint64_t max_head_lag = 4;
  /// Re-execution rounds one bundle may consume after reorgs orphan the
  /// root its outcome ran against, before it resolves as kStale.
  int max_resim_attempts = 2;
  /// Check staleness at every submit() and re-sync automatically.
  bool auto_resync = true;

  // --- crash-consistent durability (PR 5) ---
  /// Optional write-ahead mirror of the ORAM store (must outlive the
  /// engine). When set, the engine journals epoch transitions (via the
  /// registry listener), page installs (via the client's install hook) and
  /// bundle admit/resolve marks, enabling Recovery::replay + warm_restart()
  /// after a crash. Null = no durability (the default); the execution path
  /// is untouched either way — journaling is a pure observer, so outcomes
  /// stay bit-identical with and without it.
  durability::DurableStore* durable = nullptr;

  // --- observability (PR 3) ---
  /// Optional trace sink (must outlive the engine). When set, each worker's
  /// HEVM/pager emits into the sink's ring for that worker id, the shared
  /// ORAM frontend into ring -2, and the engine emits bundle lifecycle plus
  /// the SP-observed (post-prefetch) query timeline. Null = tracing off:
  /// zero allocations, one pointer test per would-be event, and the
  /// fault-free sweep stays bit-identical to the untraced build.
  obs::TraceSink* trace = nullptr;

  // --- service front door (PR 7) ---
  /// Optional completion hook, fired once per outcome right after it is
  /// durably resolved and recorded — from whatever thread resolved it (a
  /// worker, or the submitter for breaker refusals), outside engine locks,
  /// so it may call back into the engine but must itself be thread-safe.
  /// The front door uses it to learn session durations as they land instead
  /// of polling drain(). Reorg-driven re-execution may later revise the
  /// stored outcome; the hook reports the first terminal resolution.
  std::function<void(const SessionOutcome&)> on_outcome;
};

/// Outcome of one session (= one bundle on one dedicated HEVM). All *_ns
/// fields are simulated time on the session's own clock (starting at 0).
struct SessionOutcome {
  uint64_t bundle_id = 0;
  int worker_id = -1;  ///< which worker executed it (NOT part of determinism)
  Status status = Status::kOk;
  /// Which execution this outcome is (0 = first try; >0 = after requeue).
  /// Deterministic: faults are keyed on (bundle, attempt), not interleaving.
  uint32_t attempt = 0;
  /// True when `status` came from the untrusted backend (feeds the circuit
  /// breaker) as opposed to the session's own execution (e.g. overflow).
  bool backend_fault = false;
  uint64_t recovery_sim_ns = 0;  ///< simulated time spent in retry/backoff
  uint32_t oram_retries = 0;     ///< ORAM requests re-issued after timeouts
  uint32_t faults_seen = 0;      ///< faulty backend attempts observed
  /// Live-chain pinning (PR 4): the snapshot this session executed against.
  /// A refusal that never executed (kUnavailable at admission, kStale after
  /// the resim budget) carries a zero state_root — it ran against nothing.
  uint64_t epoch = 0;   ///< engine store epoch at execution time
  H256 state_root{};    ///< pinned state root the session read
  /// Re-execution rounds this bundle went through after reorgs orphaned the
  /// root of an earlier outcome (0 = the original result stands).
  uint32_t resim = 0;
  hevm::BundleReport report;
  uint64_t end_to_end_ns = 0;
  uint64_t hevm_time_ns = 0;
  uint64_t crypto_time_ns = 0;
  uint64_t message_time_ns = 0;
  RoutedStateReader::Stats query_stats;
  std::vector<hypervisor::QueryEvent> observed_timeline;
};

/// True iff the two outcomes are bit-identical in every deterministic field
/// (everything except worker_id). Used by tests and bench_throughput to hold
/// the engine to the serial reference.
bool outcomes_bit_identical(const SessionOutcome& a, const SessionOutcome& b);

/// True iff the two outcomes agree in every USER-VISIBLE field: status and
/// the full bundle report (per-tx status/gas/return data/storage writes/
/// logs/created addresses, final balances, instruction count, abort flag).
/// Deliberately ignores attempt, epoch, state root, simulated timings, swap
/// noise and query timelines — a re-admitted bundle runs at attempt+1 with
/// a fresh fault/noise stream against a re-pinned (same-content) snapshot,
/// so those provenance fields legitimately differ while everything the user
/// receives must not. This is the crash drill's correctness bar.
bool outcomes_semantically_identical(const SessionOutcome& a, const SessionOutcome& b);

struct EngineMetrics {
  uint64_t bundles_submitted = 0;
  uint64_t bundles_completed = 0;

  // --- simulated engine timeline (deterministic, from completed bundles) ---
  uint64_t sim_makespan_ns = 0;       ///< first arrival -> last completion
  double sim_bundles_per_s = 0;       ///< completed / makespan
  uint64_t sim_mean_queue_wait_ns = 0;
  uint64_t sim_max_queue_depth = 0;
  /// Per-bundle end-to-end latency percentiles (nearest-rank, from the
  /// engine's obs::Histogram — the single percentile definition repo-wide).
  uint64_t sim_p50_bundle_latency_ns = 0;
  uint64_t sim_p99_bundle_latency_ns = 0;
  /// Serialized ORAM-server service time across all sessions — the shared
  /// contention point. When this exceeds the schedule's makespan the server
  /// is the bottleneck and the makespan is clamped to it.
  uint64_t sim_oram_server_busy_ns = 0;
  uint64_t sim_oram_serialization_stall_ns = 0;  ///< clamp amount

  // --- wall-clock (host diagnostics; never reproduced paper numbers) ---
  uint64_t wall_elapsed_ns = 0;
  double wall_bundles_per_s = 0;
  uint64_t wall_queue_wait_ns = 0;       ///< submit -> worker pickup, summed
  uint64_t wall_backpressure_ns = 0;     ///< producers blocked on full queue
  uint64_t backpressured_submits = 0;
  uint64_t queue_max_depth = 0;
  uint64_t oram_contention_stall_ns = 0; ///< frontend gate waits, summed
  uint64_t oram_reads = 0;
  uint64_t oram_coalesced_reads = 0;

  // --- sharded concurrent frontend (PR 6; wall-clock diagnostics) ---
  uint64_t oram_shard_count = 0;
  uint64_t oram_shard_walks = 0;        ///< path walks summed across shards
  uint64_t oram_shard_migrations = 0;   ///< cross-shard block handoffs
  /// High-water of simultaneously in-flight walks (1 on a serialized run;
  /// > 1 is the sharding actually overlapping tree walks).
  uint64_t oram_max_concurrent_walks = 0;
  uint64_t oram_shards_quarantined = 0; ///< shards the per-shard breaker shut
  struct OramShardStats {
    uint32_t shard = 0;
    uint64_t walks = 0;
    uint64_t migrations_in = 0;
    uint64_t stall_ns = 0;         ///< wall ns callers waited for this walk lock
    uint64_t stall_p50_ns = 0;     ///< per-walk lock-wait percentiles
    uint64_t stall_p99_ns = 0;
    uint64_t failures = 0;         ///< terminal failures the frontend attributed
    bool quarantined = false;
  };
  std::vector<OramShardStats> oram_shards;

  // --- failure model & recovery (PR 2; all zero without a FaultPlan) ---
  uint64_t faults_injected = 0;      ///< from the FaultPlan
  uint64_t oram_timeouts = 0;        ///< frontend attempts that timed out
  uint64_t oram_retries = 0;         ///< frontend requests re-issued
  uint64_t oram_retry_exhausted = 0; ///< requests that ran out of attempts
  uint64_t bundles_recovered = 0;    ///< kOk outcomes that needed recovery
  uint64_t bundles_aborted = 0;      ///< terminal non-kOk, non-kUnavailable
  uint64_t bundles_unavailable = 0;  ///< resolved kUnavailable by the breaker
  uint64_t bundle_requeues = 0;      ///< fail-closed aborts sent back around
  uint64_t watchdog_stalls = 0;      ///< wall-clock stall episodes flagged
  bool circuit_open = false;

  // --- live-chain staleness (PR 4; zero on a static chain) ---
  uint64_t resyncs = 0;        ///< re-pin passes (delta or same-root) applied
  uint64_t bundle_resims = 0;  ///< outcomes re-executed after a reorg
  uint64_t bundles_stale = 0;  ///< resolved kStale (resim budget exhausted)
  uint64_t store_epoch = 0;    ///< committed epoch of the ORAM store

  // --- crash durability (PR 5; zero without a DurableStore) ---
  uint64_t warm_restarts = 0;       ///< recovered images adopted
  uint64_t bundles_readmitted = 0;  ///< pending bundles re-admitted post-crash
  uint64_t pages_restored = 0;      ///< checkpoint pages bulk-loaded, no proofs
  /// Merkle-verification work across every sync pass (full + delta). The
  /// crash drill's deterministic speedup claim: a warm restart re-verifies
  /// only the crash gap, a cold sync re-verifies the world.
  uint64_t sync_verified_accounts = 0;
  uint64_t sync_verified_slots = 0;
  uint64_t sync_pages_installed = 0;

  struct WorkerStats {
    int worker_id = 0;
    uint64_t bundles = 0;
    uint64_t busy_sim_ns = 0;  ///< sum of this worker's session times
    /// busy_sim_ns relative to the busiest of {sim_makespan_ns, any
    /// worker's busy_sim_ns} — always in [0, 1] even when the pool's real
    /// assignment is more imbalanced than the deterministic schedule.
    double utilization = 0;
  };
  std::vector<WorkerStats> workers;
};

/// What submit() did with a bundle. With the circuit breaker open the bundle
/// is not queued: it resolves immediately as a kUnavailable outcome (still
/// returned by drain(), so every submitted bundle gets exactly one answer).
struct Admission {
  uint64_t bundle_id = 0;
  Status status = Status::kOk;  ///< kOk = queued, kUnavailable = breaker open
};

class PreExecutionEngine {
 public:
  PreExecutionEngine(node::NodeSimulator& node, EngineConfig config);
  ~PreExecutionEngine();

  PreExecutionEngine(const PreExecutionEngine&) = delete;
  PreExecutionEngine& operator=(const PreExecutionEngine&) = delete;

  /// Step 11: verify the node's state and install it into the ORAM. Also
  /// pins the engine to the node's head snapshot: every session executes
  /// against that immutable snapshot (and its block context) until a
  /// resync() re-pins — never against whatever the node's mutable world
  /// happens to hold mid-bundle.
  Status synchronize();

  /// Re-pins the engine to the node's current head: quiesces the pool
  /// (waits for every queued bundle to resolve), delta-syncs the ORAM
  /// against the new trusted root (all-or-nothing; on verification failure
  /// the old pin is kept — fail closed), advances the store epoch, and
  /// deterministically re-executes every recorded outcome whose pinned root
  /// the chain no longer contains. A bundle that exhausts max_resim_attempts
  /// such rounds resolves as kStale. Called automatically from submit()
  /// when auto_resync is set; safe to call manually between start() and
  /// drain(). Serialized against concurrent callers.
  Status resync();

  /// The snapshot sessions are currently pinned to (for tests/benches).
  node::BlockHeader pinned_header() const;
  uint64_t pinned_epoch() const;
  const oram::EpochRegistry& epoch_registry() const { return epoch_registry_; }

  /// Warm restart (PR 5): adopts a crash-recovered store image instead of a
  /// cold synchronize(). Seeds the epoch registry with the recovered
  /// committed history, re-installs the recovered pages into the ORAM
  /// (journaling suppressed — they are already durable in the adopted
  /// checkpoint), then brings the store from the recovered committed root to
  /// the node's head via the normal delta-sync and pins it. Falls back:
  /// an empty recovered image degenerates to synchronize(); a recovered
  /// root the node no longer holds returns kNotFound and the caller cold-
  /// syncs. Call before start(), after the DurableStore adopted the same
  /// RecoveredState. Restores the bundle-id high-water mark so re-admitted
  /// and new bundles keep their crash-free ids.
  Status warm_restart(const durability::RecoveredState& recovered);

  /// Re-admits a recovered pending bundle under its ORIGINAL id at a given
  /// attempt number (the crash drill uses attempt+1: same bundle RNG, fresh
  /// fault/noise streams). Otherwise behaves exactly like submit().
  Admission resubmit(uint64_t bundle_id, std::vector<evm::Transaction> bundle,
                     uint32_t attempt);

  /// Installs the EngineConfig::on_outcome hook after construction (the
  /// front door owns its mailbox only once the engine exists). Must be
  /// called before start(): workers read the hook unsynchronized.
  void set_on_outcome(std::function<void(const SessionOutcome&)> hook);

  /// Spawns the worker pool: per worker, one hypervisor session (secure
  /// channel) and one dedicated HevmCore. Call once, before submit().
  void start();

  /// Enqueues one bundle; blocks when the queue is full (backpressure).
  /// Bundle ids are submission indices. Never blocks indefinitely on a dead
  /// backend: with the circuit breaker open the bundle resolves immediately
  /// as kUnavailable (see Admission). Throws UsageError before start() or
  /// after drain().
  Admission submit(std::vector<evm::Transaction> bundle);

  /// Admits a bundle under a caller-chosen id. The front door pre-assigns
  /// ids in ARRIVAL order at admission time, before any worker touches the
  /// bundle — that pinning is what keeps session outcomes (whose RNG and
  /// fault streams key on the bundle id) independent of worker count and
  /// interleaving. Ids must be unique per engine run; the internal allocator
  /// is kept strictly ahead so interleaved submit() calls never collide.
  /// Otherwise behaves exactly like submit().
  Admission submit_as(uint64_t bundle_id, std::vector<evm::Transaction> bundle);

  /// Closes the queue, waits for every queued bundle to finish, joins the
  /// pool and ends the hypervisor sessions. Returns all outcomes sorted by
  /// bundle id. Idempotent.
  std::vector<SessionOutcome> drain();

  /// Thread-safe at any time (during execution it reports completed-so-far).
  /// Also publishes the snapshot into the engine's obs::Registry, so the
  /// exposition methods below always reflect the latest snapshot taken.
  EngineMetrics snapshot() const;

  /// The engine's unified metrics registry (live instruments plus the last
  /// published snapshot). EngineMetrics is the typed view; this is the
  /// machine-readable surface.
  obs::Registry& metrics_registry() const { return registry_; }
  /// snapshot() + Prometheus text exposition of the registry.
  std::string metrics_prometheus() const;
  /// snapshot() + JSON dump of the registry (for bench/CI artifacts).
  std::string metrics_json() const;

  /// Serial reference: executes the bundles one at a time on this thread
  /// through the exact per-session path the workers run (bundle ids are the
  /// vector indices, matching a submit() of the same bundles in order).
  /// Does not touch the queue, pool or metrics.
  std::vector<SessionOutcome> execute_serial(
      const std::vector<std::vector<evm::Transaction>>& bundles);

  const EngineConfig& config() const { return config_; }
  oram::OramFrontend& oram_frontend() { return frontend_; }
  oram::ShardedOramStore& oram_store() { return oram_store_; }
  hypervisor::Hypervisor& hypervisor() { return hypervisor_; }

  /// True once breaker_threshold consecutive attempts died on the backend.
  /// Sticky for the engine's lifetime (quarantine; a real deployment would
  /// re-probe, the model keeps the terminal state observable).
  bool breaker_open() const {
    return breaker_open_.load(std::memory_order_acquire);
  }

 private:
  struct QueueItem {
    uint64_t bundle_id;
    std::vector<evm::Transaction> txs;
    std::chrono::steady_clock::time_point enqueued;
    uint32_t attempt = 0;
  };

  /// Per-worker state. The clock, core and channel are owned by exactly one
  /// worker thread between start() and drain(); bundles/busy_sim_ns are
  /// written under results_mu_.
  struct Worker {
    int id = 0;
    sim::SimClock clock;  ///< reset at each session start (per-session time)
    std::unique_ptr<hevm::HevmCore> core;
    uint32_t session_id = 0;
    hypervisor::SecureChannel* channel = nullptr;
    std::thread thread;
    uint64_t bundles = 0;
    uint64_t busy_sim_ns = 0;
    Heartbeat heartbeat;           ///< sampled by the watchdog
    obs::TraceRing* trace = nullptr;  ///< this worker's ring (null = off)
  };

  /// The engine-side pin: which immutable chain snapshot sessions read.
  struct PinnedSnapshot {
    uint64_t epoch = 0;
    node::BlockHeader header;
    std::shared_ptr<const state::WorldState> world;
  };

  void worker_loop(Worker& worker);
  SessionOutcome execute_session(uint64_t bundle_id, uint32_t attempt,
                                 const std::vector<evm::Transaction>& bundle,
                                 Worker& worker);
  /// Pins to the node's head if nothing is pinned yet (engines that skip
  /// synchronize(), e.g. with the ORAM disabled).
  void ensure_pinned();
  /// True when the pinned snapshot violates the staleness policy.
  bool needs_resync() const;
  /// Blocks until every queued bundle has resolved to an outcome.
  void quiesce();
  /// Re-executes recorded outcomes whose pinned root was orphaned (resync
  /// tail; pool quiescent, resync_mu_ held).
  void resimulate_orphans();
  /// Lazily created scratch worker (id -2) that runs re-executions.
  Worker& resim_worker();
  /// Feeds the circuit breaker: backend faults count consecutively, a clean
  /// kOk resets the streak.
  void register_attempt(const SessionOutcome& outcome);
  void record_outcome(SessionOutcome outcome, uint64_t queued_wall_ns, Worker* worker);
  /// Maps an EngineMetrics snapshot onto the registry — the one place where
  /// metric names are bound, so the struct and the exposition cannot drift.
  void publish_metrics(const EngineMetrics& m) const;
  bool oram_enabled() const {
    return config_.security.oram_storage || config_.security.oram_code;
  }

  node::NodeSimulator& node_;
  EngineConfig config_;
  Random setup_rng_;
  hypervisor::Manufacturer manufacturer_;
  hypervisor::Hypervisor hypervisor_;
  /// The partitioned oblivious store (PR 6): a forest of per-shard
  /// (server, client) pairs with per-shard walk locks — OramServer and
  /// OramClient no longer appear as engine members.
  oram::ShardedOramStore oram_store_;
  /// The adversary between store and frontend; null without a fault plan.
  /// Declared before frontend_ so the frontend can take it as its backend.
  std::unique_ptr<faults::FaultyOram> fault_layer_;
  oram::OramFrontend frontend_;
  oram::OramWorldState oram_state_;

  BoundedQueue<QueueItem> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Watchdog> watchdog_;
  std::atomic<uint64_t> next_bundle_id_{0};
  bool started_ = false;
  bool drained_ = false;

  std::atomic<int> consecutive_backend_faults_{0};
  std::atomic<bool> breaker_open_{false};
  std::atomic<uint64_t> bundle_requeues_{0};

  // --- live-chain pinning (PR 4) ---
  oram::EpochRegistry epoch_registry_;
  mutable std::mutex pin_mu_;  ///< guards pin_ (sessions copy it at start)
  PinnedSnapshot pin_;
  std::mutex resync_mu_;       ///< serializes resync passes
  std::unique_ptr<Worker> resim_worker_;  ///< created on first resimulation
  uint64_t sync_passes_ = 0;   ///< fault-plan stream index for node fetches
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> bundle_resims_{0};
  std::atomic<uint64_t> warm_restarts_{0};
  std::atomic<uint64_t> bundles_readmitted_{0};
  std::atomic<uint64_t> pages_restored_{0};
  std::atomic<uint64_t> sync_verified_accounts_{0};
  std::atomic<uint64_t> sync_verified_slots_{0};
  std::atomic<uint64_t> sync_pages_installed_{0};

  /// Unified metrics (obs). The latency histogram is a live instrument fed
  /// by record_outcome; scalar snapshot values are published on snapshot().
  mutable obs::Registry registry_;
  obs::Histogram* latency_hist_;  ///< owned by registry_, stable reference

  mutable std::mutex results_mu_;  ///< guards everything below
  std::vector<SessionOutcome> results_;
  /// Queued-but-unresolved bundles; resync()'s quiesce waits on this.
  uint64_t outstanding_ = 0;
  std::condition_variable idle_cv_;
  /// Submitted bundles kept for reorg-triggered re-execution.
  std::unordered_map<uint64_t, std::vector<evm::Transaction>> bundle_txs_;
  /// Re-execution rounds consumed per bundle (the kStale budget).
  std::unordered_map<uint64_t, uint32_t> resims_;
  uint64_t wall_queue_wait_ns_ = 0;
  sim::WallTimer wall_timer_;      ///< restarted at start()
  uint64_t wall_elapsed_ns_ = 0;   ///< frozen at drain()
};

}  // namespace hardtape::service
