// Elastic dedicated-device pool for the service front door (PR 9).
//
// PR 7 modeled the paper's per-chip HEVM fleet as a fixed free-list sized at
// construction — adequate for overload policy, useless for fleet reality:
// real devices join late, get drained for maintenance, die mid-session,
// return garbage while claiming health, and flap. This module owns that
// lifecycle as an explicit state machine per device:
//
//            add_device           warmup done
//               │                      │
//               ▼                      ▼
//           kJoining ───────────► kServing ◄──────────┐
//                                  │  │  │            │ backoff elapsed
//                       start_drain│  │  │crash/flap  │ (kRejoin)
//                                  ▼  │  └──────► kQuarantined
//                           kDraining │ sticky breaker ──┘   │
//                                  │  │                      │ crash,
//                     (idle, or    ▼  ▼                      │ no rejoin
//                      grace cut) kDead ◄────────────────────┘
//
// Division of labor: the pool is PURE sim-time policy — which device is
// bindable now, what fate the fault plan assigns a binding, when a timed
// transition (warmup, quarantine backoff, flap repair) falls due — plus the
// device lifecycle event log the binding audit consumes. The FrontDoor owns
// the request-side consequences (cutting bindings, failover re-admission,
// scheduling drain deadlines) in its discrete-event loop. Everything here is
// single-threaded by design and deterministic: quarantine re-admission
// delays come from sim::BackoffPolicy keyed by the device id, fault fates
// from faults::DeviceFaultPlan keyed by (device, binding index) — so the
// same dispatch sequence churns identically at any engine worker count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "faults/device_fault_plan.hpp"
#include "obs/metrics.hpp"
#include "sim/backoff.hpp"

namespace hardtape::service {

enum class DeviceState : uint8_t {
  kJoining = 0,     ///< hot-added, warming up; not yet bindable
  kServing = 1,     ///< bindable (or currently bound)
  kDraining = 2,    ///< no new bindings; in-flight session gets a grace period
  kQuarantined = 3, ///< down (breaker or flap); timed re-admission pending
  kDead = 4,        ///< permanently gone; terminal
};

const char* to_string(DeviceState state);

/// Device lifecycle events, the binding audit's second input: the audit
/// proves every binding interval fits inside a window in which its device
/// was actually alive (kServe/kRejoin .. kCrash/kQuarantine/kDrainDone).
enum class DeviceEventKind : uint8_t {
  kJoin = 0,        ///< device added (warmup starts)
  kServe = 1,       ///< warmup done; device is bindable
  kDrainStart = 2,  ///< drain requested; no new bindings from here
  kDrainDone = 3,   ///< drain complete; device is dead
  kCrash = 4,       ///< abrupt death (permanent, or flap if a rejoin follows)
  kStickyFault = 5, ///< a binding's result failed health/attestation checks
  kQuarantine = 6,  ///< breaker tripped; timed backoff before re-admission
  kRejoin = 7,      ///< back in service after quarantine/flap repair
};

const char* to_string(DeviceEventKind kind);

struct DeviceEvent {
  uint64_t at_ns = 0;
  uint32_t device = 0;
  DeviceEventKind kind = DeviceEventKind::kJoin;
  friend bool operator==(const DeviceEvent&, const DeviceEvent&) = default;
};

struct DevicePoolConfig {
  /// Devices present (and serving) at construction. 0 lets the FrontDoor
  /// inherit its legacy num_devices knob.
  size_t initial_devices = 0;
  /// Sim time a hot-added device spends kJoining before it may bind.
  uint64_t join_warmup_ns = 0;
  /// Sim time a draining device's in-flight session is allowed to finish
  /// before the FrontDoor cuts the binding and re-admits the bundle.
  uint64_t drain_grace_ns = 50'000'000;
  /// Consecutive sticky-faulted bindings that quarantine a device
  /// (<= 0 disables the per-device breaker).
  int quarantine_threshold = 2;
  /// Quarantine duration policy: re-admission after
  /// backoff_delay_ns(probe_backoff, nth quarantine, device id) — bounded
  /// exponential, deterministically jittered per device.
  sim::BackoffPolicy probe_backoff{};
  /// Optional seeded device-fault adversary (must outlive the pool).
  /// nullptr = reliable fleet; binding_fate() always answers kNone.
  faults::DeviceFaultPlan* fault_plan = nullptr;
};

/// Single-threaded, sim-time device state machine (see header comment).
class DevicePool {
 public:
  /// Starts with `initial_devices` devices already serving at sim time 0
  /// (the legacy static-pool shape). `registry` must outlive the pool.
  DevicePool(DevicePoolConfig config, obs::Registry* registry);

  /// Hot-adds a device: kJoining for join_warmup_ns, then kServing.
  /// Returns the new device id (ids are dense, assigned in add order).
  uint32_t add_device(uint64_t now_ns);

  /// Begins a graceful drain. Idle (or not-yet-serving) devices die
  /// immediately; a busy device goes kDraining and the return value tells
  /// the caller an in-flight binding needs a grace deadline. Returns
  /// nullopt when the drain is already complete (device was idle/dead),
  /// otherwise the device is kDraining with a live binding.
  std::optional<DeviceState> start_drain(uint32_t device, uint64_t now_ns);

  /// Completes a drain whose grace expired: the binding was cut by the
  /// caller; the device dies now.
  void finish_drain(uint32_t device, uint64_t now_ns);

  /// Binds the lowest-id idle serving device, or nullopt. The caller owns
  /// the binding until exactly one of complete()/sticky_fault()/crash()/
  /// finish_drain() releases it.
  std::optional<uint32_t> acquire(uint64_t now_ns);

  /// The fault plan's fate for the binding just placed on `device`
  /// (consumes the device's next binding index). kNone without a plan.
  faults::DeviceFaultDecision binding_fate(uint32_t device);

  /// Clean release: the binding ran to completion and passed health checks.
  /// Resets the device's sticky streak; a draining device dies here.
  void complete(uint32_t device, uint64_t now_ns);

  /// Failed release: the binding completed but its result failed
  /// attestation/health checks. Feeds the per-device breaker; at
  /// quarantine_threshold consecutive failures the device is quarantined
  /// for a deterministic backoff. A draining device dies instead.
  void sticky_fault(uint32_t device, uint64_t now_ns);

  /// Abrupt death at `now_ns` (binding already cut by the caller, if any).
  /// rejoin_at_ns == 0 is permanent (kDead); otherwise the device flaps:
  /// kQuarantined until rejoin_at_ns, then serving again. No-op on kDead.
  void crash(uint32_t device, uint64_t now_ns, uint64_t rejoin_at_ns);

  /// Applies every timed transition due by `now_ns` (warmup completion,
  /// quarantine/flap re-admission), in (wake time, device id) order.
  void advance_to(uint64_t now_ns);

  /// Earliest pending timed transition, UINT64_MAX if none. Lets the
  /// FrontDoor's finish() make progress while the whole fleet is down.
  uint64_t next_transition_ns() const;

  DeviceState state(uint32_t device) const;
  bool busy(uint32_t device) const;
  /// True iff acquire() could succeed right now.
  bool has_idle() const;
  /// Devices that could EVER serve a future binding (joining, serving, or
  /// quarantined-with-rejoin). False means queued work can never dispatch.
  bool can_ever_serve() const;
  size_t size() const { return devices_.size(); }
  size_t serving_count() const;
  const DevicePoolConfig& config() const { return config_; }
  /// Complete lifecycle log, in occurrence order.
  const std::vector<DeviceEvent>& events() const { return events_; }

 private:
  struct Device {
    DeviceState state = DeviceState::kServing;
    bool busy = false;
    uint64_t binding_count = 0;    ///< fault-plan binding index source
    int sticky_streak = 0;         ///< consecutive sticky faults (breaker)
    uint32_t quarantines = 0;      ///< backoff attempt number
    uint64_t wake_ns = UINT64_MAX; ///< pending timed transition, if any
    obs::Gauge* state_gauge = nullptr;
  };

  Device& device_at(uint32_t device);
  const Device& device_at(uint32_t device) const;
  void set_state(uint32_t device, DeviceState state);
  void log(uint32_t device, DeviceEventKind kind, uint64_t at_ns);
  void refresh_serving_gauge();

  DevicePoolConfig config_;
  obs::Registry* registry_;
  std::vector<Device> devices_;
  std::vector<DeviceEvent> events_;

  obs::Gauge* serving_gauge_ = nullptr;
  obs::Gauge* total_gauge_ = nullptr;
  obs::Counter* hot_adds_ = nullptr;
  obs::Counter* crashes_ = nullptr;
  obs::Counter* sticky_faults_ = nullptr;
  obs::Counter* quarantines_ = nullptr;
  obs::Counter* rejoins_ = nullptr;
  obs::Counter* drains_started_ = nullptr;
  obs::Counter* drains_completed_ = nullptr;
};

}  // namespace hardtape::service
