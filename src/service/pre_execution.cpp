#include "service/pre_execution.hpp"

#include "memlayer/pager.hpp"

namespace hardtape::service {

RoutedStateReader::RoutedStateReader(const state::WorldState& local,
                                     oram::OramWorldState* oram_state,
                                     const SecurityConfig& security, Timing timing)
    : local_(local), oram_(oram_state), security_(security), timing_(timing) {
  if ((security.oram_storage || security.oram_code) && oram_ == nullptr) {
    throw UsageError("routed state: ORAM enabled but no ORAM state provided");
  }
}

uint64_t RoutedStateReader::oram_access_ns() const {
  // One access = request upload + full path download + full path re-upload
  // + server service + on-chip decrypt/re-encrypt of the path (A.E.DMA).
  const uint64_t path_bytes =
      uint64_t{timing_.modeled_tree_depth + 1} * 4 * timing_.page_bytes;
  const uint64_t network = timing_.oram_link.transfer_ns(64)          // query
                           + timing_.oram_link.transfer_ns(path_bytes)   // down
                           + timing_.oram_link.transfer_ns(path_bytes);  // up
  const uint64_t reencrypt = static_cast<uint64_t>(
      2.0 * static_cast<double>(path_bytes) / timing_.oram_reencrypt_bytes_per_ns);
  return network + timing_.server.service_ns + reencrypt;
}

void RoutedStateReader::charge_oram(oram::PageType type) const {
  ++stats_.oram_queries;
  if (type == oram::PageType::kCode) {
    ++stats_.code_queries;
  } else {
    ++stats_.kv_queries;
  }
  const uint64_t cost = oram_access_ns();
  stats_.oram_time_ns += cost;
  if (timing_.clock) {
    stats_.demand_timeline.push_back({timing_.clock->now_ns(), type, false});
    timing_.clock->advance_ns(cost);  // the HEVM stalls (paper §IV-B)
  }
}

void RoutedStateReader::charge_local() const {
  ++stats_.local_reads;
  if (timing_.clock) timing_.clock->advance_ns(timing_.local_read_ns);
}

std::optional<state::Account> RoutedStateReader::account(const Address& addr) const {
  if (security_.oram_storage) {
    auto it = meta_cache_.find(addr);
    if (it == meta_cache_.end()) {
      charge_oram(oram::PageType::kAccountMeta);
      it = meta_cache_.emplace(addr, oram_->account_page(addr)).first;
    } else {
      charge_local();  // layer-1 world-state cache hit
    }
    if (!it->second.has_value()) return std::nullopt;
    const auto meta = oram::AccountMetaPage::deserialize(*it->second);
    state::Account account;
    account.balance = meta.balance;
    account.nonce = meta.nonce;
    account.code_hash = meta.code_hash;
    return account;
  }
  charge_local();
  return local_.account(addr);
}

u256 RoutedStateReader::storage(const Address& addr, const u256& key) const {
  if (security_.oram_storage) {
    const PageKey page_key{addr, key >> 5};
    auto it = group_cache_.find(page_key);
    if (it == group_cache_.end()) {
      charge_oram(oram::PageType::kStorageGroup);
      it = group_cache_.emplace(page_key, oram_->storage_page(addr, key >> 5)).first;
    } else {
      charge_local();  // grouping-as-prefetch: the page is already on-chip
    }
    if (!it->second.has_value()) return u256{};
    return oram::StorageGroupPage::deserialize(*it->second).values[key.as_u64() & 31];
  }
  charge_local();
  return local_.storage(addr, key);
}

Bytes RoutedStateReader::code(const Address& addr) const {
  if (security_.oram_code) {
    // Meta page for the code size, then one query per 1 KB page (the
    // physical accesses happen inside OramWorldState::code).
    charge_oram(oram::PageType::kAccountMeta);
    const Bytes code = oram_->code(addr);
    const uint64_t pages = (code.size() + oram::kPageSize - 1) / oram::kPageSize;
    for (uint64_t i = 0; i < pages; ++i) charge_oram(oram::PageType::kCode);
    return code;
  }
  charge_local();
  return local_.code(addr);
}

// ---------------------------------------------------------------------------
// PreExecutionService
// ---------------------------------------------------------------------------

namespace wire {

uint64_t bundle_bytes(const std::vector<evm::Transaction>& bundle) {
  uint64_t bytes = 0;
  for (const auto& tx : bundle) bytes += 120 + tx.data.size();
  return bytes;
}

uint64_t trace_bytes(const hevm::BundleReport& report) {
  // Step-level trace (PC/op/gas per instruction) dominates the report size —
  // this is what makes the paper's -E tier cost ~2.9 ms on the A.E.DMA.
  uint64_t bytes = report.instructions * 32;
  for (const auto& tx : report.transactions) {
    bytes += 64 + tx.return_data.size() + tx.storage_writes.size() * 64;
    for (const auto& log : tx.logs) bytes += 32 + log.topics.size() * 32 + log.data.size();
  }
  bytes += report.final_balances.size() * 52;
  return bytes;
}

}  // namespace wire

namespace {
constexpr const char* kSbl = "hardtape-sbl-v1";
constexpr const char* kFirmware = "hardtape-hypervisor-v1";
constexpr const char* kBitstream = "hardtape-hevm-bitstream-v1";

BytesView sv(const char* s) {
  return BytesView{reinterpret_cast<const uint8_t*>(s), std::strlen(s)};
}
}  // namespace

PreExecutionService::PreExecutionService(node::NodeSimulator& node, Config config)
    : node_(node),
      config_(config),
      rng_(config.seed),
      manufacturer_(config.seed ^ 0xfab),
      hypervisor_(rng_.bytes(32), manufacturer_, sv(kSbl), sv(kFirmware), sv(kBitstream),
                  config.seed ^ 0xb007),
      oram_server_(config.oram),
      oram_client_(oram_server_, hypervisor_.generate_oram_key(), config.seed ^ 0x02a3,
                   config.seal_mode),
      oram_state_(oram_client_) {
  config_.timing.clock = &clock_;
  for (int i = 0; i < config_.hevm_cores; ++i) {
    cores_.push_back(std::make_unique<hevm::HevmCore>(i, clock_, config_.core));
  }
}

Status PreExecutionService::synchronize() {
  if (!config_.security.oram_storage && !config_.security.oram_code) {
    return Status::kOk;  // evaluation-set data is prefetched locally instead
  }
  node::BlockSynchronizer sync(node_, node_.head().state_root);
  return sync.sync_all(oram_client_);
}

PreExecutionService::BundleOutcome PreExecutionService::pre_execute(
    const std::vector<evm::Transaction>& bundle) {
  BundleOutcome outcome;
  const sim::SimStopwatch end_to_end(clock_);
  ++bundles_served_;

  // --- session setup (step 2) + input message handling (steps 3, 6) ---
  const crypto::PrivateKey user_key = crypto::PrivateKey::from_seed(rng_.bytes(16));
  H256 nonce;
  rng_.fill(nonce.bytes.data(), nonce.bytes.size());
  const auto session = hypervisor_.begin_session(nonce, user_key.public_key());

  const uint64_t input_bytes = wire::bundle_bytes(bundle);
  {
    const sim::SimStopwatch messages(clock_);
    clock_.advance_ns(config_.hypervisor_costs.message_handle_ns +
                      config_.hypervisor_costs.dma_setup_ns);
    outcome.message_time_ns += messages.elapsed_ns();
  }

  uint64_t crypto_ns = 0;
  if (config_.security.encryption) {
    crypto_ns += config_.crypto_costs.aes_gcm_ns(input_bytes);
    if (config_.perform_channel_crypto) {
      // Actually run the channel decryption path once for realism.
      hypervisor::SecureChannel user_side(hypervisor_.channel(session.session_id).key());
      const Bytes body = Bytes(std::min<uint64_t>(input_bytes, 4096), 0x42);
      const auto sealed = user_side.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
      (void)hypervisor_.channel(session.session_id)
          .open(sealed, /*max_body_length=*/1 << 24, /*max_target_offset=*/1 << 20);
    }
  }
  if (config_.security.signatures) {
    crypto_ns += config_.crypto_costs.ecdsa_verify_ns;  // user's input signature
    if (config_.perform_channel_crypto) {
      const H256 digest = crypto::keccak256(u256{bundles_served_}.to_be_bytes_vec());
      const crypto::Signature sig = user_key.sign(digest);
      if (!crypto::ecdsa_verify(user_key.public_key(), digest, sig)) {
        outcome.status = Status::kAuthFailed;
        return outcome;
      }
    }
  }
  clock_.advance_ns(crypto_ns);

  // --- find an idle HEVM (step 3) ---
  hevm::HevmCore* core = nullptr;
  for (auto& candidate : cores_) {
    if (!candidate->busy()) {
      core = candidate.get();
      break;
    }
  }
  if (core == nullptr) {
    outcome.status = Status::kBusy;
    return outcome;
  }

  // --- execute (steps 4-8) ---
  RoutedStateReader routed(node_.world(),
                           (config_.security.oram_storage || config_.security.oram_code)
                               ? &oram_state_
                               : nullptr,
                           config_.security, config_.timing);
  crypto::AesKey128 session_key;
  rng_.fill(session_key.data(), session_key.size());
  // Same (seed, bundle, attempt) noise-stream derivation as the concurrent
  // engine: the serial service never retries, so attempt is always 0.
  core->assign(routed, node_.block_context(), session_key,
               memlayer::noise_stream(config_.seed, bundles_served_ - 1, /*attempt=*/0));

  const sim::SimStopwatch exec(clock_);
  outcome.report = core->execute_bundle(bundle);
  outcome.hevm_time_ns = exec.elapsed_ns();
  if (outcome.report.aborted) outcome.status = Status::kMemoryOverflow;

  // --- return the traces (step 9) ---
  const uint64_t trace_bytes = wire::trace_bytes(outcome.report);
  uint64_t out_crypto_ns = 0;
  if (config_.security.encryption) {
    out_crypto_ns += config_.crypto_costs.aes_gcm_ns(trace_bytes);
  }
  if (config_.security.signatures) {
    out_crypto_ns += config_.crypto_costs.ecdsa_sign_ns;  // hypervisor signs the trace
  }
  clock_.advance_ns(out_crypto_ns);
  crypto_ns += out_crypto_ns;
  {
    const sim::SimStopwatch messages(clock_);
    clock_.advance_ns(config_.hypervisor_costs.message_handle_ns +
                      config_.hypervisor_costs.dma_setup_ns);
    outcome.message_time_ns += messages.elapsed_ns();
  }
  outcome.crypto_time_ns = crypto_ns;
  outcome.query_stats = routed.stats();

  // The adversary-visible timeline: pagewise prefetching re-spaces the code
  // queries between the K-V queries (paper §IV-D problem (3)).
  hypervisor::CodePrefetcher prefetcher(
      memlayer::noise_stream(config_.seed ^ 0x70f7, bundles_served_ - 1, /*attempt=*/0));
  outcome.observed_timeline = prefetcher.schedule(routed.stats().demand_timeline);

  // --- release (step 10) ---
  core->release();
  hypervisor_.end_session(session.session_id);
  outcome.end_to_end_ns = end_to_end.elapsed_ns();
  return outcome;
}

PreExecutionService::ScheduleResult PreExecutionService::schedule_bundles(
    const std::vector<uint64_t>& durations_ns, int cores, uint64_t arrival_gap_ns) {
  if (cores <= 0) throw UsageError("schedule: need at least one core");
  ScheduleResult result;
  std::vector<uint64_t> core_free(static_cast<size_t>(cores), 0);
  uint64_t total_wait = 0;
  uint64_t queue_depth = 0;
  std::vector<uint64_t> start_times;
  for (size_t i = 0; i < durations_ns.size(); ++i) {
    const uint64_t arrival = i * arrival_gap_ns;
    auto earliest = std::min_element(core_free.begin(), core_free.end());
    const uint64_t start = std::max(arrival, *earliest);
    total_wait += start - arrival;
    const uint64_t done = start + durations_ns[i];
    *earliest = done;
    result.completion_ns.push_back(done);
    result.makespan_ns = std::max(result.makespan_ns, done);
    // Queue depth at this arrival: bundles that arrived but not yet started.
    queue_depth = 0;
    for (size_t j = 0; j < start_times.size(); ++j) {
      if (start_times[j] > arrival) ++queue_depth;
    }
    result.max_queue_depth = std::max(result.max_queue_depth, queue_depth);
    start_times.push_back(start);
  }
  if (!durations_ns.empty()) {
    result.mean_wait_ns = total_wait / durations_ns.size();
  }
  return result;
}

}  // namespace hardtape::service
