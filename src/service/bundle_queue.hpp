// Bounded MPMC queue feeding the concurrent pre-execution engine — the
// paper's Fig. 3 step 3 ("bundle queued until an HEVM is idle") made real.
//
// Backpressure by blocking, never by dropping: when all queue slots are
// occupied, push() blocks the submitting frontend thread until a worker
// drains a slot. A bundle a user paid to pre-execute must either run or be
// rejected explicitly at admission (queue closed) — silent drops would make
// the service's answer stream unsound.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace hardtape::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Stats {
    uint64_t pushed = 0;
    uint64_t popped = 0;
    uint64_t max_depth = 0;          ///< deepest the queue ever got
    uint64_t backpressured_pushes = 0;  ///< pushes that had to block
    uint64_t backpressure_wall_ns = 0;  ///< total wall time producers blocked
  };

  /// Blocks while the queue is full. Returns false iff the queue was closed
  /// (the item is not enqueued).
  bool push(T item) {
    const auto start = std::chrono::steady_clock::now();
    std::unique_lock lock(mu_);
    const bool blocked = queue_.size() >= capacity_ && !closed_;
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    ++stats_.pushed;
    stats_.max_depth = std::max<uint64_t>(stats_.max_depth, queue_.size());
    if (blocked) {
      ++stats_.backpressured_pushes;
      stats_.backpressure_wall_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed AND drained (workers exit on that).
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.popped;
    not_full_.notify_one();
    return item;
  }

  /// Re-admits an item that already consumed a slot once (a bundle retry
  /// after a fail-closed session abort). Bypasses the capacity bound — a
  /// worker must never block on its own queue, or retries under full load
  /// would deadlock the pool — and works even after close(), so bundles
  /// retried during drain still resolve. Front insertion keeps retried
  /// bundles ahead of new work (their user has already waited longest).
  void requeue(T item) {
    {
      std::lock_guard lock(mu_);
      queue_.push_front(std::move(item));
      ++stats_.pushed;
      stats_.max_depth = std::max<uint64_t>(stats_.max_depth, queue_.size());
    }
    not_empty_.notify_one();
  }

  /// Idempotent. Wakes all blocked producers (push fails) and consumers
  /// (pop drains the remainder, then returns nullopt).
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }
  size_t depth() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }
  size_t capacity() const { return capacity_; }
  Stats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  Stats stats_;
  bool closed_ = false;
};

}  // namespace hardtape::service
