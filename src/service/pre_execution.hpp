// The end-to-end pre-execution service — the 11-step lifecycle of the
// paper's Figure 3, assembled from every substrate in this repository.
//
//  (1)  boot: CSU verifies the SBL, the Hypervisor comes up        [hypervisor]
//  (2)  user attestation + secure channel                          [hypervisor]
//  (3)  bundle queued until an HEVM is idle, then assigned          [this file]
//  (4)  HEVM executes the bundle                                    [hevm, evm]
//  (5-6) exceptions to the Hypervisor, protected messages           [hypervisor]
//  (7)  call-stack page dumps to untrusted memory                   [memlayer]
//  (8)  on-chain data queried from the ORAM server                  [oram]
//  (9)  traces accumulated and returned over the secure channel     [hevm]
//  (10) HEVM reset, on-chip memories cleared                        [hevm]
//  (11) new blocks synchronized into the ORAM                       [node]
//
// All timing flows through sim::SimClock via the cost models of sim/costs.hpp
// (see DESIGN.md §1); all cryptography and the ORAM itself are real.
#pragma once

#include "hevm/hevm_core.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/prefetch.hpp"
#include "node/node.hpp"
#include "node/sync.hpp"
#include "oram/paged_state.hpp"
#include "service/security_config.hpp"
#include "sim/costs.hpp"

namespace hardtape::service {

/// Wire-size models of the user channel, shared by the serial service and
/// the concurrent engine so both charge identical channel-crypto time.
namespace wire {
/// Serialized size of a bundle-submit message body.
uint64_t bundle_bytes(const std::vector<evm::Transaction>& bundle);
/// Serialized size of the returned trace report (step-level trace dominates).
uint64_t trace_bytes(const hevm::BundleReport& report);
}  // namespace wire

/// state::StateReader routing each query to the ORAM or to locally
/// prefetched (untrusted) memory according to the security configuration,
/// charging simulated time either way.
class RoutedStateReader : public state::StateReader {
 public:
  struct Timing {
    sim::SimClock* clock = nullptr;
    /// chip <-> ORAM server: the paper's "Ethernet with a 2 ms latency",
    /// which we apportion as ~1 ms per direction on a 10 GbE link.
    sim::LinkModel oram_link{.latency_ns = 1'250'000, .bytes_per_ns = 1.25};
    sim::OramServerModel server{};
    sim::CryptoCostModel crypto{};
    /// The ORAM path is re-encrypted by the dedicated A.E.DMA engines at
    /// near line rate, unlike the modest user-channel stream.
    double oram_reencrypt_bytes_per_ns = 1.6;
    uint64_t local_read_ns = 2'000;         ///< prefetched untrusted memory, per page
    uint32_t modeled_tree_depth = 30;       ///< 1.1 TB / 1 KB blocks => ~2^30 leaves
    uint64_t page_bytes = oram::kPageSize + 60;  ///< sealed slot size on the wire
  };

  RoutedStateReader(const state::WorldState& local, oram::OramWorldState* oram_state,
                    const SecurityConfig& security, Timing timing);

  std::optional<state::Account> account(const Address& addr) const override;
  u256 storage(const Address& addr, const u256& key) const override;
  Bytes code(const Address& addr) const override;

  /// Simulated cost of one full Path ORAM access over the modeled 2^30-leaf
  /// production tree (download + upload of a (depth+1)*Z-slot path, server
  /// service time, on-chip re-encryption through the A.E.DMA).
  uint64_t oram_access_ns() const;

  // Per-bundle statistics.
  struct Stats {
    uint64_t oram_queries = 0;
    uint64_t kv_queries = 0;
    uint64_t code_queries = 0;
    uint64_t local_reads = 0;
    uint64_t oram_time_ns = 0;
    std::vector<hypervisor::QueryEvent> demand_timeline;
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void charge_oram(oram::PageType type) const;
  void charge_local() const;

  struct PageKey {
    Address addr;
    u256 index;
    friend bool operator==(const PageKey&, const PageKey&) = default;
  };
  struct PageKeyHasher {
    size_t operator()(const PageKey& k) const {
      return AddressHasher{}(k.addr) ^ (U256Hasher{}(k.index) * 0x9e3779b97f4a7c15ull);
    }
  };

  const state::WorldState& local_;
  oram::OramWorldState* oram_;
  SecurityConfig security_;
  Timing timing_;
  mutable Stats stats_;
  // Per-bundle page caches, modeling the HEVM's layer-1 world-state cache:
  // one ORAM fetch serves all records of a page for the rest of the bundle.
  mutable std::unordered_map<Address, std::optional<Bytes>, AddressHasher> meta_cache_;
  mutable std::unordered_map<PageKey, std::optional<Bytes>, PageKeyHasher> group_cache_;
};

/// The service provider's deployment: one chip (N dedicated HEVM cores), a
/// Hypervisor, the ORAM server, and the Node — everything the SP runs.
class PreExecutionService {
 public:
  struct Config {
    SecurityConfig security = SecurityConfig::full();
    int hevm_cores = 3;  ///< paper §VI-A: LUT-limited to 3 per XCZU15EV
    hevm::HevmCore::Config core{};
    oram::OramConfig oram{};
    oram::SealMode seal_mode = oram::SealMode::kChaChaHmac;
    RoutedStateReader::Timing timing{};
    sim::HypervisorCostModel hypervisor_costs{};
    sim::CryptoCostModel crypto_costs{};
    uint64_t seed = 1;
    /// When false, ECDSA/AES operations on the user channel are modeled in
    /// time only (large benches); the ORAM's crypto is always real.
    bool perform_channel_crypto = true;
  };

  PreExecutionService(node::NodeSimulator& node, Config config);

  /// Step 11: verify the node's world state against the trusted root and
  /// install it into the ORAM. Returns kBadProof if the node lies.
  Status synchronize();

  /// Steps 2-10 for one bundle on one dedicated core. Each call models an
  /// independent user session (fresh session keys).
  struct BundleOutcome {
    Status status = Status::kOk;
    hevm::BundleReport report;
    uint64_t end_to_end_ns = 0;   ///< SP receives request -> sends traces
    uint64_t hevm_time_ns = 0;    ///< execution incl. ORAM stalls
    uint64_t crypto_time_ns = 0;  ///< channel AES + ECDSA
    uint64_t message_time_ns = 0; ///< hypervisor handling + DMA
    RoutedStateReader::Stats query_stats;
    /// The adversary-visible query timeline after pagewise code prefetching.
    std::vector<hypervisor::QueryEvent> observed_timeline;
  };
  BundleOutcome pre_execute(const std::vector<evm::Transaction>& bundle);

  sim::SimClock& clock() { return clock_; }
  oram::OramServer& oram_server() { return oram_server_; }
  oram::OramClient& oram_client() { return oram_client_; }
  hypervisor::Hypervisor& hypervisor() { return hypervisor_; }
  const Config& config() const { return config_; }
  const hypervisor::Manufacturer& manufacturer() const { return manufacturer_; }

  /// Models Fig. 3 step 3 queueing: bundles arriving `arrival_gap_ns` apart
  /// are dispatched to the earliest-free of `cores` dedicated HEVMs (no
  /// context switches — a busy core finishes its bundle first).
  struct ScheduleResult {
    uint64_t makespan_ns = 0;        ///< first arrival -> last completion
    uint64_t mean_wait_ns = 0;       ///< time spent queued, per bundle
    uint64_t max_queue_depth = 0;
    std::vector<uint64_t> completion_ns;
  };
  static ScheduleResult schedule_bundles(const std::vector<uint64_t>& durations_ns,
                                         int cores, uint64_t arrival_gap_ns);

  /// §VI-D chip throughput: cores / mean bundle time.
  double throughput_tx_per_s(uint64_t mean_bundle_ns) const {
    return static_cast<double>(config_.hevm_cores) * 1e9 /
           static_cast<double>(mean_bundle_ns);
  }

 private:
  node::NodeSimulator& node_;
  Config config_;
  sim::SimClock clock_;
  Random rng_;
  hypervisor::Manufacturer manufacturer_;
  hypervisor::Hypervisor hypervisor_;
  oram::OramServer oram_server_;
  oram::OramClient oram_client_;
  oram::OramWorldState oram_state_;
  std::vector<std::unique_ptr<hevm::HevmCore>> cores_;
  uint64_t bundles_served_ = 0;
};

}  // namespace hardtape::service
