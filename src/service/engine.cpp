#include "service/engine.hpp"

#include <algorithm>

#include "durability/durable_store.hpp"
#include "memlayer/pager.hpp"
#include "node/sync.hpp"

namespace hardtape::service {

namespace {
constexpr const char* kSbl = "hardtape-sbl-v1";
constexpr const char* kFirmware = "hardtape-hypervisor-v1";
constexpr const char* kBitstream = "hardtape-hevm-bitstream-v1";

BytesView sv(const char* s) {
  return BytesView{reinterpret_cast<const uint8_t*>(s), std::strlen(s)};
}

/// Per-bundle RNG: depends only on (engine seed, bundle id), never on the
/// worker or interleaving — the root of the engine's determinism contract.
Random session_rng(uint64_t engine_seed, uint64_t bundle_id) {
  return Random(engine_seed ^ (0x9e3779b97f4a7c15ull * (bundle_id + 1)));
}

uint64_t wall_ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}
}  // namespace

bool outcomes_bit_identical(const SessionOutcome& a, const SessionOutcome& b) {
  if (a.bundle_id != b.bundle_id || a.status != b.status) return false;
  if (a.attempt != b.attempt || a.backend_fault != b.backend_fault ||
      a.recovery_sim_ns != b.recovery_sim_ns || a.oram_retries != b.oram_retries ||
      a.faults_seen != b.faults_seen) {
    return false;
  }
  if (a.epoch != b.epoch || a.state_root != b.state_root || a.resim != b.resim) {
    return false;
  }
  if (a.end_to_end_ns != b.end_to_end_ns || a.hevm_time_ns != b.hevm_time_ns ||
      a.crypto_time_ns != b.crypto_time_ns || a.message_time_ns != b.message_time_ns) {
    return false;
  }

  const hevm::BundleReport& ra = a.report;
  const hevm::BundleReport& rb = b.report;
  if (ra.sim_time_ns != rb.sim_time_ns || ra.instructions != rb.instructions ||
      ra.aborted != rb.aborted) {
    return false;
  }
  if (ra.memory_stats.l1_hits != rb.memory_stats.l1_hits ||
      ra.memory_stats.l1_misses != rb.memory_stats.l1_misses ||
      ra.memory_stats.frames_entered != rb.memory_stats.frames_entered ||
      ra.memory_stats.memory_overflows != rb.memory_stats.memory_overflows) {
    return false;
  }
  if (ra.swap_events.size() != rb.swap_events.size()) return false;
  for (size_t i = 0; i < ra.swap_events.size(); ++i) {
    if (ra.swap_events[i].kind != rb.swap_events[i].kind ||
        ra.swap_events[i].pages != rb.swap_events[i].pages ||
        ra.swap_events[i].noise_pages != rb.swap_events[i].noise_pages) {
      return false;
    }
  }
  if (ra.final_balances.size() != rb.final_balances.size()) return false;
  for (size_t i = 0; i < ra.final_balances.size(); ++i) {
    if (ra.final_balances[i].first != rb.final_balances[i].first ||
        ra.final_balances[i].second != rb.final_balances[i].second) {
      return false;
    }
  }
  if (ra.transactions.size() != rb.transactions.size()) return false;
  for (size_t i = 0; i < ra.transactions.size(); ++i) {
    const hevm::TxTraceReport& ta = ra.transactions[i];
    const hevm::TxTraceReport& tb = rb.transactions[i];
    if (ta.status != tb.status || ta.gas_used != tb.gas_used ||
        ta.sim_time_ns != tb.sim_time_ns || ta.return_data != tb.return_data ||
        ta.create_address != tb.create_address) {
      return false;
    }
    if (ta.storage_writes.size() != tb.storage_writes.size()) return false;
    for (size_t j = 0; j < ta.storage_writes.size(); ++j) {
      if (ta.storage_writes[j].addr != tb.storage_writes[j].addr ||
          ta.storage_writes[j].key != tb.storage_writes[j].key ||
          ta.storage_writes[j].value != tb.storage_writes[j].value) {
        return false;
      }
    }
    if (ta.logs.size() != tb.logs.size()) return false;
    for (size_t j = 0; j < ta.logs.size(); ++j) {
      if (ta.logs[j].address != tb.logs[j].address ||
          ta.logs[j].topics != tb.logs[j].topics || ta.logs[j].data != tb.logs[j].data) {
        return false;
      }
    }
    if (ta.steps.size() != tb.steps.size()) return false;
  }

  const RoutedStateReader::Stats& qa = a.query_stats;
  const RoutedStateReader::Stats& qb = b.query_stats;
  if (qa.oram_queries != qb.oram_queries || qa.kv_queries != qb.kv_queries ||
      qa.code_queries != qb.code_queries || qa.local_reads != qb.local_reads ||
      qa.oram_time_ns != qb.oram_time_ns) {
    return false;
  }
  auto same_events = [](const std::vector<hypervisor::QueryEvent>& ea,
                        const std::vector<hypervisor::QueryEvent>& eb) {
    if (ea.size() != eb.size()) return false;
    for (size_t i = 0; i < ea.size(); ++i) {
      if (ea[i].time_ns != eb[i].time_ns || ea[i].type != eb[i].type ||
          ea[i].is_prefetch != eb[i].is_prefetch) {
        return false;
      }
    }
    return true;
  };
  return same_events(qa.demand_timeline, qb.demand_timeline) &&
         same_events(a.observed_timeline, b.observed_timeline);
}

bool outcomes_semantically_identical(const SessionOutcome& a, const SessionOutcome& b) {
  if (a.bundle_id != b.bundle_id || a.status != b.status) return false;

  const hevm::BundleReport& ra = a.report;
  const hevm::BundleReport& rb = b.report;
  if (ra.instructions != rb.instructions || ra.aborted != rb.aborted) return false;
  if (ra.final_balances.size() != rb.final_balances.size()) return false;
  for (size_t i = 0; i < ra.final_balances.size(); ++i) {
    if (ra.final_balances[i].first != rb.final_balances[i].first ||
        ra.final_balances[i].second != rb.final_balances[i].second) {
      return false;
    }
  }
  if (ra.transactions.size() != rb.transactions.size()) return false;
  for (size_t i = 0; i < ra.transactions.size(); ++i) {
    const hevm::TxTraceReport& ta = ra.transactions[i];
    const hevm::TxTraceReport& tb = rb.transactions[i];
    if (ta.status != tb.status || ta.gas_used != tb.gas_used ||
        ta.return_data != tb.return_data || ta.create_address != tb.create_address) {
      return false;
    }
    if (ta.storage_writes.size() != tb.storage_writes.size()) return false;
    for (size_t j = 0; j < ta.storage_writes.size(); ++j) {
      if (ta.storage_writes[j].addr != tb.storage_writes[j].addr ||
          ta.storage_writes[j].key != tb.storage_writes[j].key ||
          ta.storage_writes[j].value != tb.storage_writes[j].value) {
        return false;
      }
    }
    if (ta.logs.size() != tb.logs.size()) return false;
    for (size_t j = 0; j < ta.logs.size(); ++j) {
      if (ta.logs[j].address != tb.logs[j].address ||
          ta.logs[j].topics != tb.logs[j].topics || ta.logs[j].data != tb.logs[j].data) {
        return false;
      }
    }
  }
  return true;
}

PreExecutionEngine::PreExecutionEngine(node::NodeSimulator& node, EngineConfig config)
    : node_(node),
      config_(config),
      setup_rng_(config.seed),
      manufacturer_(config.seed ^ 0xfab),
      hypervisor_(setup_rng_.bytes(32), manufacturer_, sv(kSbl), sv(kFirmware),
                  sv(kBitstream), config.seed ^ 0xb007),
      oram_store_(
          [&config] {
            auto store = oram::ShardedOramStore::partition(
                config.oram, std::max<size_t>(1, config.oram_shards));
            store.pin_shard_assignment = config.oram_pin_shard_assignment;
            store.trace = config.trace != nullptr ? &config.trace->ring(-2) : nullptr;
            return store;
          }(),
          hypervisor_.generate_oram_key(), config.seed ^ 0x02a3, config.seal_mode),
      fault_layer_(config.fault_plan != nullptr
                       ? std::make_unique<faults::FaultyOram>(oram_store_,
                                                              *config.fault_plan)
                       : nullptr),
      frontend_(fault_layer_ != nullptr
                    ? static_cast<oram::OramAccessor&>(*fault_layer_)
                    : static_cast<oram::OramAccessor&>(oram_store_),
                oram::OramFrontend::Config{
                    .coalesce_duplicate_reads = config.coalesce_duplicate_reads,
                    .recovery = config.oram_recovery,
                    .trace = config.trace != nullptr ? &config.trace->ring(-2) : nullptr,
                    // The store locks per shard; the frontend only gates
                    // same-block requests and routes per-shard accounting.
                    .concurrent_backend = true,
                    .shard_count = oram_store_.shard_count(),
                    .shard_router =
                        [this](const oram::BlockId& id) {
                          return oram_store_.shard_of(id);
                        },
                    .shard_breaker_threshold = config.oram_shard_breaker_threshold}),
      oram_state_(frontend_),
      queue_(config.queue_depth),
      latency_hist_(&registry_.histogram("hardtape_engine_bundle_latency_sim_ns",
                                         "per-bundle end-to-end simulated latency")) {
  if (config_.num_hevms <= 0) throw UsageError("engine: need at least one HEVM");
  if (config_.timing.clock != nullptr) {
    throw UsageError("engine: timing.clock is per-session; leave it null");
  }
  if (config_.max_bundle_attempts < 1) {
    throw UsageError("engine: max_bundle_attempts must be >= 1");
  }
  if (config_.durable != nullptr) {
    // Durability is a pure observer on the untrusted side of the boundary:
    // the registry listener journals epoch transitions, the install hook
    // journals page writes. Neither feeds anything back into execution.
    epoch_registry_.set_listener(config_.durable);
    oram_store_.set_install_hook(
        [durable = config_.durable](const oram::BlockId& id, BytesView data,
                                    uint64_t leaf) {
          durable->log_page_install(id, data, leaf);
        });
  }
}

PreExecutionEngine::~PreExecutionEngine() {
  if (watchdog_ != nullptr) watchdog_->stop();
  queue_.close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

Status PreExecutionEngine::synchronize() {
  node::PinnedBlock head = node_.pinned_head();
  if (!oram_enabled()) {
    std::lock_guard lock(pin_mu_);
    pin_ = PinnedSnapshot{epoch_registry_.store_epoch(), head.header,
                          std::move(head.world)};
    return Status::kOk;
  }
  epoch_registry_.begin(head.header.state_root, head.header.number);
  node::BlockSynchronizer sync(node_, head.header.state_root);
  sync.set_epoch_registry(&epoch_registry_);
  if (config_.fault_plan != nullptr) {
    // The node feed is SP-controlled too (paper §III): let the plan corrupt
    // account responses at sync time; the real Merkle verification rejects
    // them with kBadProof and nothing is installed. Stream = the sync pass
    // index (0 here); the op index counts accounts in enumeration order.
    faults::FaultPlan* plan = config_.fault_plan;
    const uint64_t stream = sync_passes_;
    auto op = std::make_shared<uint64_t>(0);
    sync.set_proof_tamper([plan, stream, op](const Address&) {
      return plan->decide(faults::FaultSite::kNodeFetch, stream, (*op)++).kind ==
             faults::FaultKind::kStaleProof;
    });
  }
  const Status status = sync.sync_all(oram_store_);
  if (status != Status::kOk) {
    // The full sync rejected a proof: the engine is unusable (unlike a
    // delta, a full sync is not staged all-or-nothing). Callers discard it.
    epoch_registry_.abort();
    return status;
  }
  epoch_registry_.commit();
  sync_verified_accounts_.fetch_add(sync.verified_accounts(), std::memory_order_relaxed);
  sync_verified_slots_.fetch_add(sync.verified_slots(), std::memory_order_relaxed);
  sync_pages_installed_.fetch_add(sync.installed_pages(), std::memory_order_relaxed);
  ++sync_passes_;
  std::lock_guard lock(pin_mu_);
  pin_ = PinnedSnapshot{epoch_registry_.store_epoch(), head.header,
                        std::move(head.world)};
  return Status::kOk;
}

void PreExecutionEngine::ensure_pinned() {
  std::lock_guard lock(pin_mu_);
  if (pin_.world != nullptr) return;
  node::PinnedBlock head = node_.pinned_head();
  pin_ = PinnedSnapshot{epoch_registry_.store_epoch(), head.header,
                        std::move(head.world)};
}

bool PreExecutionEngine::needs_resync() const {
  std::lock_guard lock(pin_mu_);
  if (pin_.world == nullptr) return false;
  if (!node_.is_canonical_root(pin_.header.state_root)) return true;
  return node_.head_number() > pin_.header.number + config_.max_head_lag;
}

void PreExecutionEngine::quiesce() {
  std::unique_lock lock(results_mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

node::BlockHeader PreExecutionEngine::pinned_header() const {
  std::lock_guard lock(pin_mu_);
  return pin_.header;
}

uint64_t PreExecutionEngine::pinned_epoch() const {
  std::lock_guard lock(pin_mu_);
  return pin_.epoch;
}

Status PreExecutionEngine::resync() {
  std::lock_guard serial(resync_mu_);
  ensure_pinned();
  // Quiesce: every queued bundle resolves before the world moves underneath
  // the pool. This is what makes the bundle -> epoch mapping a function of
  // the caller's submit/tick interleaving alone (worker-count independent).
  quiesce();

  node::PinnedBlock head = node_.pinned_head();
  PinnedSnapshot old;
  {
    std::lock_guard lock(pin_mu_);
    old = pin_;
  }
  if (head.header.state_root != old.header.state_root) {
    if (oram_enabled()) {
      // Delta-sync the ORAM from the pinned snapshot to the new trusted
      // root. All-or-nothing: on any proof failure nothing was installed,
      // the old pin stays, and the engine keeps answering at the old (still
      // verified) snapshot — fail closed, never mixed state.
      epoch_registry_.begin(head.header.state_root, head.header.number);
      node::BlockSynchronizer sync(node_, head.header.state_root);
      sync.set_epoch_registry(&epoch_registry_);
      if (config_.fault_plan != nullptr) {
        faults::FaultPlan* plan = config_.fault_plan;
        const uint64_t stream = sync_passes_;
        auto op = std::make_shared<uint64_t>(0);
        sync.set_proof_tamper([plan, stream, op](const Address&) {
          return plan->decide(faults::FaultSite::kNodeFetch, stream, (*op)++).kind ==
                 faults::FaultKind::kStaleProof;
        });
      }
      const Status status = sync.sync_delta(*old.world, oram_store_, nullptr);
      if (status != Status::kOk) {
        epoch_registry_.abort();
        return status;
      }
      epoch_registry_.commit();
    sync_verified_accounts_.fetch_add(sync.verified_accounts(), std::memory_order_relaxed);
    sync_verified_slots_.fetch_add(sync.verified_slots(), std::memory_order_relaxed);
    sync_pages_installed_.fetch_add(sync.installed_pages(), std::memory_order_relaxed);
    }
    ++sync_passes_;
  }
  {
    // Same root (empty blocks): just clear the lag — the state is unchanged
    // so neither the ORAM nor the epoch moves. Otherwise adopt the new pin.
    std::lock_guard lock(pin_mu_);
    pin_ = PinnedSnapshot{epoch_registry_.store_epoch(), head.header,
                          std::move(head.world)};
  }
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  if (config_.trace != nullptr) {
    config_.trace->ring(-1).append(obs::TraceCategory::kBundle,
                                   static_cast<uint16_t>(obs::TraceCode::kEpochAdvance),
                                   /*sim_ns=*/0, epoch_registry_.store_epoch(),
                                   head.header.number);
  }
  resimulate_orphans();
  return Status::kOk;
}

PreExecutionEngine::Worker& PreExecutionEngine::resim_worker() {
  if (resim_worker_ == nullptr) {
    auto worker = std::make_unique<Worker>();
    worker->id = -2;
    hevm::HevmCore::Config core_config = config_.core;
    if (config_.trace != nullptr) {
      worker->trace = &config_.trace->ring(-1);
      core_config.trace = worker->trace;
    }
    worker->core = std::make_unique<hevm::HevmCore>(-2, worker->clock, core_config);
    const crypto::PrivateKey user_key =
        crypto::PrivateKey::from_seed(setup_rng_.bytes(16));
    H256 nonce;
    setup_rng_.fill(nonce.bytes.data(), nonce.bytes.size());
    const auto session = hypervisor_.begin_session(nonce, user_key.public_key());
    worker->session_id = session.session_id;
    worker->channel = &hypervisor_.channel(session.session_id);
    resim_worker_ = std::move(worker);
  }
  return *resim_worker_;
}

void PreExecutionEngine::resimulate_orphans() {
  // Pool is quiescent and resync_mu_ is held: results_ may still grow from
  // breaker refusals at admission, but existing entries are stable and
  // indices stay valid (append-only), so collect indices under the lock and
  // re-execute outside it.
  std::vector<size_t> orphaned;
  {
    std::lock_guard lock(results_mu_);
    for (size_t i = 0; i < results_.size(); ++i) {
      const SessionOutcome& outcome = results_[i];
      if (outcome.state_root == H256{}) continue;  // refusal: never executed
      if (node_.is_canonical_root(outcome.state_root)) continue;
      orphaned.push_back(i);
    }
    // Deterministic re-execution order.
    std::sort(orphaned.begin(), orphaned.end(), [this](size_t a, size_t b) {
      return results_[a].bundle_id < results_[b].bundle_id;
    });
  }
  for (const size_t index : orphaned) {
    uint64_t bundle_id = 0;
    uint32_t attempt = 0;
    uint32_t resim = 0;
    std::vector<evm::Transaction> txs;
    bool have_txs = false;
    {
      std::lock_guard lock(results_mu_);
      bundle_id = results_[index].bundle_id;
      attempt = results_[index].attempt;
      resim = ++resims_[bundle_id];
      const auto it = bundle_txs_.find(bundle_id);
      if (it != bundle_txs_.end()) {
        txs = it->second;
        have_txs = true;
      }
    }
    SessionOutcome replacement;
    if (!have_txs || static_cast<int>(resim) > config_.max_resim_attempts) {
      // Budget exhausted (or the bundle was never queued through submit()):
      // fail closed. No traces against a root the chain lost ever surface.
      replacement.bundle_id = bundle_id;
      replacement.attempt = attempt;
      replacement.status = Status::kStale;
      replacement.epoch = pinned_epoch();
    } else {
      bundle_resims_.fetch_add(1, std::memory_order_relaxed);
      if (config_.trace != nullptr) {
        config_.trace->ring(-1).append(
            obs::TraceCategory::kBundle,
            static_cast<uint16_t>(obs::TraceCode::kBundleResim), /*sim_ns=*/0,
            bundle_id, resim);
      }
      // Fresh attempt number -> fresh fault/noise streams, same bundle RNG:
      // the re-execution is as deterministic as the original.
      replacement = execute_session(bundle_id, attempt + 1, txs, resim_worker());
      register_attempt(replacement);
    }
    replacement.resim = resim;
    std::lock_guard lock(results_mu_);
    results_[index] = std::move(replacement);
  }
}

Status PreExecutionEngine::warm_restart(const durability::RecoveredState& recovered) {
  if (started_) throw UsageError("engine: warm_restart() before start()");
  const durability::StoreImage& image = recovered.image;
  if (image.epoch_history.empty()) {
    // Nothing committed survived (fresh disk, or the crash predated the
    // first epoch commit): a warm restart degenerates to the cold path.
    return synchronize();
  }

  // 1. Seed the chip-side registry with the recovered committed history, so
  // epoch numbering continues where the crashed run left off and the
  // max-page-epoch <= store-epoch invariant is auditable from record one.
  std::unordered_map<oram::BlockId, uint64_t, U256Hasher> tags(
      image.page_tags.begin(), image.page_tags.end());
  epoch_registry_.restore(image.epoch_history, std::move(tags));

  // 2. Re-install the recovered pages. Journaling is suppressed: these
  // pages are already durable in the checkpoint the store adopted, and
  // re-journaling them would double the image. The ORAM draws fresh leaves
  // (positions are never restored — obliviousness must not depend on a
  // crash-surviving position map).
  const H256 recovered_root = image.epoch_history.back().state_root;
  std::shared_ptr<const state::WorldState> recovered_world =
      node_.world_at(recovered_root);
  if (recovered_world == nullptr) {
    // The node no longer holds the recovered snapshot (deep reorg/pruning):
    // the journal cannot be delta-synced from — the caller cold-syncs.
    return Status::kNotFound;
  }
  if (oram_enabled()) {
    if (config_.durable != nullptr) config_.durable->set_restoring(true);
    std::vector<std::pair<oram::BlockId, Bytes>> pages;
    pages.reserve(image.pages.size());
    for (const auto& [id, page] : image.pages) pages.emplace_back(id, page.data);
    // Bulk load: one sealed-tree install instead of one full path access per
    // page — the restore cost that makes warm beat cold (the image's pages
    // were verified before they were journaled; only the gap needs proofs).
    oram_store_.bulk_restore(pages);
    pages_restored_.fetch_add(pages.size(), std::memory_order_relaxed);
    if (config_.durable != nullptr) config_.durable->set_restoring(false);
  }

  // 3. Close the gap from the recovered committed root to the node's head
  // with the normal verified delta-sync, then pin the head.
  node::PinnedBlock head = node_.pinned_head();
  if (head.header.state_root != recovered_root) {
    if (oram_enabled()) {
      epoch_registry_.begin(head.header.state_root, head.header.number);
      node::BlockSynchronizer sync(node_, head.header.state_root);
      sync.set_epoch_registry(&epoch_registry_);
      const Status status = sync.sync_delta(*recovered_world, oram_store_, nullptr);
      if (status != Status::kOk) {
        epoch_registry_.abort();
        return status;
      }
      epoch_registry_.commit();
    sync_verified_accounts_.fetch_add(sync.verified_accounts(), std::memory_order_relaxed);
    sync_verified_slots_.fetch_add(sync.verified_slots(), std::memory_order_relaxed);
    sync_pages_installed_.fetch_add(sync.installed_pages(), std::memory_order_relaxed);
    }
    ++sync_passes_;
  }
  {
    std::lock_guard lock(pin_mu_);
    pin_ = PinnedSnapshot{epoch_registry_.store_epoch(), head.header,
                          std::move(head.world)};
  }

  // 4. Continue bundle-id numbering past everything the crashed run
  // admitted, so re-admissions keep their ids and new submissions never
  // collide with them.
  next_bundle_id_.store(image.next_bundle_id, std::memory_order_relaxed);
  if (config_.durable != nullptr) {
    config_.durable->note_next_bundle_id(image.next_bundle_id);
  }
  warm_restarts_.fetch_add(1, std::memory_order_relaxed);
  if (config_.trace != nullptr) {
    config_.trace->ring(-1).append(obs::TraceCategory::kBundle,
                                   static_cast<uint16_t>(obs::TraceCode::kWarmRestart),
                                   /*sim_ns=*/0, epoch_registry_.store_epoch(),
                                   image.pending_bundles.size());
  }
  return Status::kOk;
}

Admission PreExecutionEngine::resubmit(uint64_t bundle_id,
                                       std::vector<evm::Transaction> bundle,
                                       uint32_t attempt) {
  if (!started_) throw UsageError("engine: start() before resubmit()");
  if (drained_) throw UsageError("engine: already drained");
  // Keep the id allocator strictly ahead of explicit re-admissions.
  uint64_t expected = next_bundle_id_.load(std::memory_order_relaxed);
  while (expected <= bundle_id &&
         !next_bundle_id_.compare_exchange_weak(expected, bundle_id + 1,
                                                std::memory_order_relaxed)) {
  }
  // Admit-mark again (set semantics in the mirror dedupe the pending entry;
  // the fresh journal generation needs its own record anyway).
  if (config_.durable != nullptr) config_.durable->log_bundle_admitted(bundle_id);
  bundles_readmitted_.fetch_add(1, std::memory_order_relaxed);
  if (config_.trace != nullptr) {
    config_.trace->ring(-1).append(obs::TraceCategory::kBundle,
                                   static_cast<uint16_t>(obs::TraceCode::kBundleReadmit),
                                   /*sim_ns=*/0, bundle_id, attempt);
  }
  if (breaker_open()) {
    SessionOutcome refused;
    refused.bundle_id = bundle_id;
    refused.attempt = attempt;
    refused.status = Status::kUnavailable;
    record_outcome(std::move(refused), 0, nullptr);
    return {bundle_id, Status::kUnavailable};
  }
  if (config_.auto_resync && needs_resync()) (void)resync();
  {
    std::lock_guard lock(results_mu_);
    ++outstanding_;
    bundle_txs_[bundle_id] = bundle;
  }
  if (!queue_.push(QueueItem{bundle_id, std::move(bundle),
                             std::chrono::steady_clock::now(), attempt})) {
    throw UsageError("engine: queue closed");
  }
  return {bundle_id, Status::kOk};
}

Admission PreExecutionEngine::submit_as(uint64_t bundle_id,
                                        std::vector<evm::Transaction> bundle) {
  if (!started_) throw UsageError("engine: start() before submit_as()");
  if (drained_) throw UsageError("engine: already drained");
  // Keep the allocator strictly ahead so interleaved submit() calls never
  // reuse an explicitly assigned id.
  uint64_t expected = next_bundle_id_.load(std::memory_order_relaxed);
  while (expected <= bundle_id &&
         !next_bundle_id_.compare_exchange_weak(expected, bundle_id + 1,
                                                std::memory_order_relaxed)) {
  }
  if (config_.durable != nullptr) config_.durable->log_bundle_admitted(bundle_id);
  if (config_.trace != nullptr) {
    config_.trace->ring(-1).append(obs::TraceCategory::kBundle,
                                   static_cast<uint16_t>(obs::TraceCode::kBundleSubmit),
                                   /*sim_ns=*/0, bundle_id);
  }
  if (breaker_open()) {
    SessionOutcome refused;
    refused.bundle_id = bundle_id;
    refused.status = Status::kUnavailable;
    record_outcome(std::move(refused), 0, nullptr);
    return {bundle_id, Status::kUnavailable};
  }
  if (config_.auto_resync && needs_resync()) (void)resync();
  {
    std::lock_guard lock(results_mu_);
    ++outstanding_;
    bundle_txs_[bundle_id] = bundle;
  }
  if (!queue_.push(QueueItem{bundle_id, std::move(bundle),
                             std::chrono::steady_clock::now(), 0})) {
    throw UsageError("engine: queue closed");
  }
  return {bundle_id, Status::kOk};
}

void PreExecutionEngine::set_on_outcome(
    std::function<void(const SessionOutcome&)> hook) {
  if (started_) throw UsageError("engine: set_on_outcome() before start()");
  config_.on_outcome = std::move(hook);
}

void PreExecutionEngine::start() {
  if (started_) throw UsageError("engine: already started");
  started_ = true;
  ensure_pinned();
  wall_timer_.restart();
  for (int i = 0; i < config_.num_hevms; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->id = i;
    hevm::HevmCore::Config core_config = config_.core;
    if (config_.trace != nullptr) {
      worker->trace = &config_.trace->ring(i);
      core_config.trace = worker->trace;  // opcode + swap events share it
    }
    worker->core = std::make_unique<hevm::HevmCore>(i, worker->clock, core_config);
    // One hypervisor session — one secure channel — per worker: the engine's
    // concrete form of the paper's per-session hardware isolation.
    const crypto::PrivateKey user_key = crypto::PrivateKey::from_seed(setup_rng_.bytes(16));
    H256 nonce;
    setup_rng_.fill(nonce.bytes.data(), nonce.bytes.size());
    const auto session = hypervisor_.begin_session(nonce, user_key.public_key());
    worker->session_id = session.session_id;
    worker->channel = &hypervisor_.channel(session.session_id);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
  if (config_.watchdog_enabled) {
    std::vector<Heartbeat*> beats;
    beats.reserve(workers_.size());
    for (auto& worker : workers_) beats.push_back(&worker->heartbeat);
    watchdog_ = std::make_unique<Watchdog>(
        std::move(beats),
        Watchdog::Config{.poll_interval_ms = 50,
                         .stall_threshold_ms = config_.watchdog_stall_ms});
    watchdog_->start();
  }
}

Admission PreExecutionEngine::submit(std::vector<evm::Transaction> bundle) {
  if (!started_) throw UsageError("engine: start() before submit()");
  if (drained_) throw UsageError("engine: already drained");
  const uint64_t id = next_bundle_id_.fetch_add(1, std::memory_order_relaxed);
  // Durable admit mark, synced before the bundle can run: after any crash,
  // every bundle the caller saw admitted is either durably resolved or in
  // the recovered pending set — never silently forgotten. Breaker refusals
  // are admitted too (they resolve immediately below), keeping the
  // admit/resolve ledger balanced.
  if (config_.durable != nullptr) config_.durable->log_bundle_admitted(id);
  if (config_.trace != nullptr) {
    config_.trace->ring(-1).append(obs::TraceCategory::kBundle,
                                   static_cast<uint16_t>(obs::TraceCode::kBundleSubmit),
                                   /*sim_ns=*/id * config_.arrival_gap_ns, id);
  }
  if (breaker_open()) {
    // Quarantined backend: refuse at admission. The bundle still gets its
    // one outcome (kUnavailable) so callers that only look at drain() see
    // every submission resolved.
    SessionOutcome refused;
    refused.bundle_id = id;
    refused.status = Status::kUnavailable;
    record_outcome(std::move(refused), 0, nullptr);
    return {id, Status::kUnavailable};
  }
  // Staleness gate (PR 4): when the chain outran the pin (or orphaned it),
  // re-pin before this bundle is admitted, so it executes against a snapshot
  // within the staleness budget. A failed re-sync keeps the old pin (fail
  // closed) and the bundle proceeds against it.
  if (config_.auto_resync && needs_resync()) (void)resync();
  {
    std::lock_guard lock(results_mu_);
    ++outstanding_;
    bundle_txs_[id] = bundle;  // kept for reorg-triggered re-execution
  }
  if (!queue_.push(QueueItem{id, std::move(bundle), std::chrono::steady_clock::now(), 0})) {
    throw UsageError("engine: queue closed");
  }
  return {id, Status::kOk};
}

std::vector<SessionOutcome> PreExecutionEngine::drain() {
  if (started_ && !drained_) {
    queue_.close();
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
    if (watchdog_ != nullptr) watchdog_->stop();
    for (auto& worker : workers_) hypervisor_.end_session(worker->session_id);
    if (resim_worker_ != nullptr) {
      hypervisor_.end_session(resim_worker_->session_id);
      resim_worker_.reset();
    }
    {
      std::lock_guard lock(results_mu_);
      wall_elapsed_ns_ = wall_timer_.elapsed_ns();
    }
    drained_ = true;
  }
  std::lock_guard lock(results_mu_);
  std::vector<SessionOutcome> out = results_;
  std::sort(out.begin(), out.end(),
            [](const SessionOutcome& a, const SessionOutcome& b) {
              return a.bundle_id < b.bundle_id;
            });
  return out;
}

void PreExecutionEngine::worker_loop(Worker& worker) {
  while (auto item = queue_.pop()) {
    worker.heartbeat.busy.store(true, std::memory_order_relaxed);
    const uint64_t queued_ns = wall_ns_since(item->enqueued);
    if (breaker_open()) {
      // Quarantined backend: drain the queue with explicit refusals instead
      // of burning retry budgets against a dead server.
      SessionOutcome refused;
      refused.bundle_id = item->bundle_id;
      refused.worker_id = worker.id;
      refused.attempt = item->attempt;
      refused.status = Status::kUnavailable;
      record_outcome(std::move(refused), queued_ns, &worker);
    } else {
      SessionOutcome outcome =
          execute_session(item->bundle_id, item->attempt, item->txs, worker);
      register_attempt(outcome);
      // Recoverable backend aborts go back around (front of queue, fresh
      // fault stream); integrity failures are terminal — fail closed.
      const bool recoverable = outcome.backend_fault &&
                               (outcome.status == Status::kTimeout ||
                                outcome.status == Status::kRetryExhausted);
      if (recoverable &&
          static_cast<int>(item->attempt) + 1 < config_.max_bundle_attempts &&
          !breaker_open()) {
        bundle_requeues_.fetch_add(1, std::memory_order_relaxed);
        if (worker.trace != nullptr) {
          worker.trace->append(obs::TraceCategory::kBundle,
                               static_cast<uint16_t>(obs::TraceCode::kBundleRequeue),
                               worker.clock.now_ns(), item->bundle_id, item->attempt);
        }
        queue_.requeue(QueueItem{item->bundle_id, std::move(item->txs),
                                 std::chrono::steady_clock::now(), item->attempt + 1});
      } else {
        record_outcome(std::move(outcome), queued_ns, &worker);
      }
    }
    worker.heartbeat.beats.fetch_add(1, std::memory_order_relaxed);
    worker.heartbeat.busy.store(false, std::memory_order_relaxed);
  }
}

void PreExecutionEngine::register_attempt(const SessionOutcome& outcome) {
  if (outcome.backend_fault) {
    const int streak =
        consecutive_backend_faults_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (config_.breaker_threshold > 0 && streak >= config_.breaker_threshold) {
      breaker_open_.store(true, std::memory_order_release);
    }
  } else if (outcome.status == Status::kOk) {
    consecutive_backend_faults_.store(0, std::memory_order_release);
  }
}

void PreExecutionEngine::record_outcome(SessionOutcome outcome, uint64_t queued_wall_ns,
                                        Worker* worker) {
  // The durable resolve mark IS the delivery receipt: it becomes durable
  // before the outcome is visible in results_, so recovery never re-derives
  // an outcome the user may already hold. (DurableStore takes only its own
  // lock — no ordering against results_mu_.)
  if (config_.durable != nullptr) {
    config_.durable->log_bundle_resolved(outcome.bundle_id);
  }
  latency_hist_->observe(outcome.end_to_end_ns);
  std::optional<SessionOutcome> notify;
  if (config_.on_outcome) notify = outcome;
  {
    std::lock_guard lock(results_mu_);
    wall_queue_wait_ns_ += queued_wall_ns;
    if (worker != nullptr) {
      ++worker->bundles;
      worker->busy_sim_ns += outcome.end_to_end_ns;
      // Queued bundle resolved (admission refusals come in with a null worker
      // and were never counted): unblock a quiescing resync.
      if (outstanding_ > 0) --outstanding_;
      idle_cv_.notify_all();
    }
    results_.push_back(std::move(outcome));
  }
  // Outside results_mu_ so the hook may call back into the engine.
  if (notify.has_value()) config_.on_outcome(*notify);
}

SessionOutcome PreExecutionEngine::execute_session(
    uint64_t bundle_id, uint32_t attempt, const std::vector<evm::Transaction>& bundle,
    Worker& worker) {
  SessionOutcome outcome;
  outcome.bundle_id = bundle_id;
  outcome.worker_id = worker.id;
  outcome.attempt = attempt;

  // Snapshot the pin once at session start: the whole session reads one
  // immutable world at one block context, no matter what the node does
  // meanwhile. The outcome carries the pin so staleness is auditable.
  PinnedSnapshot pin;
  {
    std::lock_guard lock(pin_mu_);
    pin = pin_;
  }
  outcome.epoch = pin.epoch;
  if (pin.world != nullptr) outcome.state_root = pin.header.state_root;

  // Fresh per-session time and randomness (see determinism contract above).
  worker.clock.reset();
  sim::SimClock& clock = worker.clock;
  Random rng = session_rng(config_.seed, bundle_id);
  const sim::SimStopwatch end_to_end(clock);
  if (worker.trace != nullptr) {
    worker.trace->append(obs::TraceCategory::kBundle,
                         static_cast<uint16_t>(obs::TraceCode::kBundleStart), clock.now_ns(),
                         bundle_id, attempt);
  }

  // Recovery instrumentation: the ORAM frontend charges retry/backoff time
  // and fault counts to this thread's tally; fault decisions come from the
  // (bundle, attempt) stream, so outcomes stay interleaving-independent.
  oram::RecoveryTally tally;
  const oram::ScopedRecoveryTally tally_scope(tally);
  std::optional<faults::FaultScope> fault_scope;
  if (config_.fault_plan != nullptr) {
    fault_scope.emplace(faults::fault_stream(bundle_id, attempt));
  }

  // --- input message handling (Fig. 3 steps 3, 6) ---
  const uint64_t input_bytes = wire::bundle_bytes(bundle);
  {
    const sim::SimStopwatch messages(clock);
    clock.advance_ns(config_.hypervisor_costs.message_handle_ns +
                     config_.hypervisor_costs.dma_setup_ns);
    outcome.message_time_ns += messages.elapsed_ns();
  }

  uint64_t crypto_ns = 0;
  if (config_.security.encryption) {
    crypto_ns += config_.crypto_costs.aes_gcm_ns(input_bytes);
    if (config_.perform_channel_crypto && worker.channel != nullptr) {
      // Exercise the real channel path once per session for realism; the
      // sequence state lives on the worker's dedicated channel.
      hypervisor::SecureChannel user_side(worker.channel->key());
      const Bytes body = Bytes(std::min<uint64_t>(input_bytes, 4096), 0x42);
      const auto sealed = user_side.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
      (void)worker.channel->open(sealed, /*max_body_length=*/1 << 24,
                                 /*max_target_offset=*/1 << 20);
    }
  }
  if (config_.security.signatures) {
    crypto_ns += config_.crypto_costs.ecdsa_verify_ns;
    if (config_.perform_channel_crypto) {
      const crypto::PrivateKey user_key = crypto::PrivateKey::from_seed(rng.bytes(16));
      const H256 digest = crypto::keccak256(u256{bundle_id + 1}.to_be_bytes_vec());
      const crypto::Signature sig = user_key.sign(digest);
      if (!crypto::ecdsa_verify(user_key.public_key(), digest, sig)) {
        outcome.status = Status::kAuthFailed;
        return outcome;
      }
    }
  }
  clock.advance_ns(crypto_ns);

  // --- execute on the worker's dedicated HEVM (steps 4-8) ---
  RoutedStateReader::Timing timing = config_.timing;
  timing.clock = &clock;
  const state::WorldState& local_world =
      pin.world != nullptr ? *pin.world : node_.world();
  RoutedStateReader routed(local_world, oram_enabled() ? &oram_state_ : nullptr,
                           config_.security, timing);
  crypto::AesKey128 session_key;
  rng.fill(session_key.data(), session_key.size());
  // The layer-2 noise-padding seed derives from (seed, bundle, attempt)
  // directly — like the fault schedule, never from a shared RNG's call order
  // — so swap traces are identical at any worker count and a retried bundle
  // still re-rolls its padding.
  worker.core->assign(routed,
                      pin.world != nullptr ? node_.block_context_at(pin.header)
                                           : node_.block_context(),
                      session_key,
                      memlayer::noise_stream(config_.seed, bundle_id, attempt));

  const sim::SimStopwatch exec(clock);
  try {
    outcome.report = worker.core->execute_bundle(bundle);
    outcome.hevm_time_ns = exec.elapsed_ns();
    if (outcome.report.aborted) outcome.status = Status::kMemoryOverflow;
  } catch (const BackendFault& fault) {
    // Fail closed: the untrusted backend dropped, stalled out, or tampered
    // with this session's state mid-bundle. No traces leave the session.
    outcome.hevm_time_ns = exec.elapsed_ns();
    outcome.status = fault.status();
    outcome.backend_fault = true;
  }

  if (!outcome.backend_fault) {
    // --- return the traces (step 9) ---
    const uint64_t trace_bytes = wire::trace_bytes(outcome.report);
    uint64_t out_crypto_ns = 0;
    if (config_.security.encryption) {
      out_crypto_ns += config_.crypto_costs.aes_gcm_ns(trace_bytes);
    }
    if (config_.security.signatures) {
      out_crypto_ns += config_.crypto_costs.ecdsa_sign_ns;
    }
    clock.advance_ns(out_crypto_ns);
    crypto_ns += out_crypto_ns;
    {
      const sim::SimStopwatch messages(clock);
      clock.advance_ns(config_.hypervisor_costs.message_handle_ns +
                       config_.hypervisor_costs.dma_setup_ns);
      outcome.message_time_ns += messages.elapsed_ns();
    }
    hypervisor::CodePrefetcher prefetcher(
        memlayer::noise_stream(config_.seed ^ 0x70f7, bundle_id, attempt));
    outcome.observed_timeline = prefetcher.schedule(routed.stats().demand_timeline);
    if (worker.trace != nullptr) {
      // The SP-observed query stream is the POST-prefetch timeline — what
      // actually crosses the untrusted boundary. This is what the leakage
      // auditor projects (demand-time events would leak shaping internals).
      for (const hypervisor::QueryEvent& q : outcome.observed_timeline) {
        worker.trace->append(obs::TraceCategory::kOram,
                             static_cast<uint16_t>(obs::TraceCode::kOramIssue), q.time_ns,
                             static_cast<uint64_t>(q.type), q.is_prefetch ? 1 : 0);
      }
    }
  }
  outcome.crypto_time_ns = crypto_ns;
  outcome.query_stats = routed.stats();

  // --- release (step 10); an aborted session's HEVM is scrubbed the same ---
  worker.core->release();
  // Simulated recovery time the ORAM layer spent on this session's behalf,
  // charged once at the end of the timeline (zero on a fault-free run, so
  // the bit-identical-to-serial gate is untouched).
  clock.advance_ns(tally.sim_ns);
  outcome.recovery_sim_ns = tally.sim_ns;
  outcome.oram_retries = tally.retries;
  outcome.faults_seen = tally.faults;
  outcome.end_to_end_ns = end_to_end.elapsed_ns();
  if (worker.trace != nullptr) {
    worker.trace->append(obs::TraceCategory::kBundle,
                         static_cast<uint16_t>(obs::TraceCode::kBundleComplete),
                         clock.now_ns(), bundle_id, attempt,
                         static_cast<uint64_t>(outcome.status));
  }
  return outcome;
}

std::vector<SessionOutcome> PreExecutionEngine::execute_serial(
    const std::vector<std::vector<evm::Transaction>>& bundles) {
  ensure_pinned();
  Worker serial;
  serial.id = -1;
  hevm::HevmCore::Config core_config = config_.core;
  if (config_.trace != nullptr) {
    serial.trace = &config_.trace->ring(-1);
    core_config.trace = serial.trace;
  }
  serial.core = std::make_unique<hevm::HevmCore>(-1, serial.clock, core_config);
  const crypto::PrivateKey user_key = crypto::PrivateKey::from_seed(setup_rng_.bytes(16));
  H256 nonce;
  setup_rng_.fill(nonce.bytes.data(), nonce.bytes.size());
  const auto session = hypervisor_.begin_session(nonce, user_key.public_key());
  serial.session_id = session.session_id;
  serial.channel = &hypervisor_.channel(session.session_id);

  std::vector<SessionOutcome> out;
  out.reserve(bundles.size());
  for (size_t i = 0; i < bundles.size(); ++i) {
    out.push_back(execute_session(i, /*attempt=*/0, bundles[i], serial));
  }
  hypervisor_.end_session(serial.session_id);
  return out;
}

EngineMetrics PreExecutionEngine::snapshot() const {
  EngineMetrics m;
  const auto queue_stats = queue_.stats();
  const auto frontend_stats = frontend_.snapshot();
  m.bundles_submitted = next_bundle_id_.load(std::memory_order_relaxed);
  m.wall_backpressure_ns = queue_stats.backpressure_wall_ns;
  m.backpressured_submits = queue_stats.backpressured_pushes;
  m.queue_max_depth = queue_stats.max_depth;
  m.oram_contention_stall_ns = frontend_stats.contention_stall_ns;
  m.oram_reads = frontend_stats.reads;
  m.oram_coalesced_reads = frontend_stats.coalesced_reads;

  if (config_.fault_plan != nullptr) m.faults_injected = config_.fault_plan->injected();
  m.oram_timeouts = frontend_stats.timeouts;
  m.oram_retries = frontend_stats.retries;
  m.oram_retry_exhausted = frontend_stats.retry_exhausted;

  // Per-shard wall diagnostics: walk-lock waits from the store, failure
  // attribution and quarantine state from the frontend's per-shard breaker.
  // Each shard's stall samples are mirrored into a Registry histogram (the
  // per-shard split of the old single oram_contention_stall_ns figure), so
  // the exposition carries exact p50/p95/p99 next to count and sum.
  const auto store_stats = oram_store_.snapshot();
  m.oram_shard_count = store_stats.shards.size();
  m.oram_shard_walks = store_stats.total_walks;
  m.oram_shard_migrations = store_stats.total_migrations;
  m.oram_max_concurrent_walks = store_stats.max_concurrent_walks;
  m.oram_shards.reserve(store_stats.shards.size());
  for (size_t s = 0; s < store_stats.shards.size(); ++s) {
    EngineMetrics::OramShardStats shard;
    shard.shard = static_cast<uint32_t>(s);
    shard.walks = store_stats.shards[s].walks;
    shard.migrations_in = store_stats.shards[s].migrations_in;
    shard.stall_ns = store_stats.shards[s].stall_ns;
    auto& stall_hist = registry_.histogram(
        "hardtape_engine_oram_shard" + std::to_string(s) + "_stall_ns",
        "wall ns a walk waited for this shard's lock");
    stall_hist.reset();  // snapshot semantics: mirror, don't accumulate
    for (const uint64_t sample : store_stats.shards[s].stall_samples) {
      stall_hist.observe(sample);
    }
    shard.stall_p50_ns = stall_hist.percentile(50);
    shard.stall_p99_ns = stall_hist.percentile(99);
    if (s < frontend_stats.shard_failures.size()) {
      shard.failures = frontend_stats.shard_failures[s];
      shard.quarantined = frontend_stats.shard_quarantined[s] != 0;
    }
    if (shard.quarantined) ++m.oram_shards_quarantined;
    m.oram_shards.push_back(shard);
  }
  m.bundle_requeues = bundle_requeues_.load(std::memory_order_relaxed);
  m.watchdog_stalls = watchdog_ != nullptr ? watchdog_->stalls_detected() : 0;
  m.circuit_open = breaker_open();
  m.resyncs = resyncs_.load(std::memory_order_relaxed);
  m.bundle_resims = bundle_resims_.load(std::memory_order_relaxed);
  m.store_epoch = epoch_registry_.store_epoch();
  m.warm_restarts = warm_restarts_.load(std::memory_order_relaxed);
  m.bundles_readmitted = bundles_readmitted_.load(std::memory_order_relaxed);
  m.pages_restored = pages_restored_.load(std::memory_order_relaxed);
  m.sync_verified_accounts = sync_verified_accounts_.load(std::memory_order_relaxed);
  m.sync_verified_slots = sync_verified_slots_.load(std::memory_order_relaxed);
  m.sync_pages_installed = sync_pages_installed_.load(std::memory_order_relaxed);

  std::lock_guard lock(results_mu_);
  m.bundles_completed = results_.size();
  for (const auto& outcome : results_) {
    if (outcome.status == Status::kOk) {
      if (outcome.faults_seen > 0 || outcome.attempt > 0) ++m.bundles_recovered;
    } else if (outcome.status == Status::kUnavailable) {
      ++m.bundles_unavailable;
    } else if (outcome.status == Status::kStale) {
      ++m.bundles_stale;
    } else {
      ++m.bundles_aborted;
    }
  }
  m.wall_queue_wait_ns = wall_queue_wait_ns_;
  m.wall_elapsed_ns = drained_ ? wall_elapsed_ns_ : wall_timer_.elapsed_ns();
  if (m.wall_elapsed_ns > 0) {
    m.wall_bundles_per_s = static_cast<double>(m.bundles_completed) * 1e9 /
                           static_cast<double>(m.wall_elapsed_ns);
  }

  // Deterministic engine timeline: the per-session durations replayed
  // through the earliest-free-HEVM schedule (Fig. 3 step 3), clamped by the
  // serialized ORAM server — the shared contention point.
  std::vector<const SessionOutcome*> done;
  done.reserve(results_.size());
  for (const auto& outcome : results_) done.push_back(&outcome);
  std::sort(done.begin(), done.end(), [](const SessionOutcome* a, const SessionOutcome* b) {
    return a->bundle_id < b->bundle_id;
  });
  std::vector<uint64_t> durations;
  durations.reserve(done.size());
  uint64_t oram_queries = 0;
  for (const SessionOutcome* outcome : done) {
    durations.push_back(outcome->end_to_end_ns);
    oram_queries += outcome->query_stats.oram_queries;
  }
  if (!durations.empty()) {
    const auto schedule = PreExecutionService::schedule_bundles(
        durations, config_.num_hevms, config_.arrival_gap_ns);
    // The sharded store is S independent subtree pipelines (PR 6): the
    // serialized-server clamp divides across them, because walks on
    // distinct shards overlap. S = 1 reproduces the single-server model.
    m.sim_oram_server_busy_ns = oram_queries * config_.timing.server.service_ns /
                                std::max<uint64_t>(1, oram_store_.shard_count());
    m.sim_makespan_ns = std::max(schedule.makespan_ns, m.sim_oram_server_busy_ns);
    m.sim_oram_serialization_stall_ns = m.sim_makespan_ns - schedule.makespan_ns;
    m.sim_mean_queue_wait_ns = schedule.mean_wait_ns;
    m.sim_max_queue_depth = schedule.max_queue_depth;
    m.sim_bundles_per_s = static_cast<double>(durations.size()) * 1e9 /
                          static_cast<double>(m.sim_makespan_ns);
    m.sim_p50_bundle_latency_ns = obs::percentile(durations, 50);
    m.sim_p99_bundle_latency_ns = obs::percentile(durations, 99);
  }
  // The pool's actual bundle->worker assignment can be more imbalanced than
  // the deterministic schedule, so normalize by the busier of the two to
  // keep utilization in [0, 1].
  uint64_t busiest_ns = m.sim_makespan_ns;
  for (const auto& worker : workers_) {
    busiest_ns = std::max(busiest_ns, worker->busy_sim_ns);
  }
  m.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    EngineMetrics::WorkerStats ws;
    ws.worker_id = worker->id;
    ws.bundles = worker->bundles;
    ws.busy_sim_ns = worker->busy_sim_ns;
    ws.utilization = busiest_ns > 0 ? static_cast<double>(worker->busy_sim_ns) /
                                          static_cast<double>(busiest_ns)
                                    : 0.0;
    m.workers.push_back(ws);
  }
  publish_metrics(m);
  return m;
}

void PreExecutionEngine::publish_metrics(const EngineMetrics& m) const {
  obs::Registry& r = registry_;
  const auto set = [&r](std::string_view name, double v) { r.gauge(name).set(v); };
  set("hardtape_engine_bundles_submitted", static_cast<double>(m.bundles_submitted));
  set("hardtape_engine_bundles_completed", static_cast<double>(m.bundles_completed));
  set("hardtape_engine_sim_makespan_ns", static_cast<double>(m.sim_makespan_ns));
  set("hardtape_engine_sim_bundles_per_s", m.sim_bundles_per_s);
  set("hardtape_engine_sim_mean_queue_wait_ns", static_cast<double>(m.sim_mean_queue_wait_ns));
  set("hardtape_engine_sim_max_queue_depth", static_cast<double>(m.sim_max_queue_depth));
  set("hardtape_engine_sim_oram_server_busy_ns",
      static_cast<double>(m.sim_oram_server_busy_ns));
  set("hardtape_engine_sim_oram_serialization_stall_ns",
      static_cast<double>(m.sim_oram_serialization_stall_ns));
  set("hardtape_engine_wall_elapsed_ns", static_cast<double>(m.wall_elapsed_ns));
  set("hardtape_engine_wall_bundles_per_s", m.wall_bundles_per_s);
  set("hardtape_engine_wall_queue_wait_ns", static_cast<double>(m.wall_queue_wait_ns));
  set("hardtape_engine_wall_backpressure_ns", static_cast<double>(m.wall_backpressure_ns));
  set("hardtape_engine_backpressured_submits", static_cast<double>(m.backpressured_submits));
  set("hardtape_engine_queue_max_depth", static_cast<double>(m.queue_max_depth));
  set("hardtape_engine_oram_contention_stall_ns",
      static_cast<double>(m.oram_contention_stall_ns));
  set("hardtape_engine_oram_reads", static_cast<double>(m.oram_reads));
  set("hardtape_engine_oram_coalesced_reads", static_cast<double>(m.oram_coalesced_reads));
  set("hardtape_engine_oram_shard_count", static_cast<double>(m.oram_shard_count));
  set("hardtape_engine_oram_shard_walks", static_cast<double>(m.oram_shard_walks));
  set("hardtape_engine_oram_shard_migrations",
      static_cast<double>(m.oram_shard_migrations));
  set("hardtape_engine_oram_max_concurrent_walks",
      static_cast<double>(m.oram_max_concurrent_walks));
  set("hardtape_engine_oram_shards_quarantined",
      static_cast<double>(m.oram_shards_quarantined));
  for (const auto& shard : m.oram_shards) {
    const std::string prefix =
        "hardtape_engine_oram_shard" + std::to_string(shard.shard);
    set(prefix + "_walks", static_cast<double>(shard.walks));
    set(prefix + "_migrations_in", static_cast<double>(shard.migrations_in));
    // Stall total + percentiles live in the per-shard _stall_ns histogram
    // (mirrored in snapshot()); only the breaker state is a gauge here.
    set(prefix + "_quarantined", shard.quarantined ? 1.0 : 0.0);
  }
  set("hardtape_engine_faults_injected", static_cast<double>(m.faults_injected));
  set("hardtape_engine_oram_timeouts", static_cast<double>(m.oram_timeouts));
  set("hardtape_engine_oram_retries", static_cast<double>(m.oram_retries));
  set("hardtape_engine_oram_retry_exhausted", static_cast<double>(m.oram_retry_exhausted));
  set("hardtape_engine_bundles_recovered", static_cast<double>(m.bundles_recovered));
  set("hardtape_engine_bundles_aborted", static_cast<double>(m.bundles_aborted));
  set("hardtape_engine_bundles_unavailable", static_cast<double>(m.bundles_unavailable));
  set("hardtape_engine_bundle_requeues", static_cast<double>(m.bundle_requeues));
  set("hardtape_engine_watchdog_stalls", static_cast<double>(m.watchdog_stalls));
  set("hardtape_engine_circuit_open", m.circuit_open ? 1.0 : 0.0);
  set("hardtape_engine_resyncs", static_cast<double>(m.resyncs));
  set("hardtape_engine_bundle_resims", static_cast<double>(m.bundle_resims));
  set("hardtape_engine_bundles_stale", static_cast<double>(m.bundles_stale));
  set("hardtape_engine_store_epoch", static_cast<double>(m.store_epoch));
  set("hardtape_engine_warm_restarts", static_cast<double>(m.warm_restarts));
  set("hardtape_engine_bundles_readmitted", static_cast<double>(m.bundles_readmitted));
  set("hardtape_engine_pages_restored", static_cast<double>(m.pages_restored));
  set("hardtape_engine_sync_verified_slots", static_cast<double>(m.sync_verified_slots));
  for (const auto& ws : m.workers) {
    set("hardtape_engine_worker" + std::to_string(ws.worker_id) + "_utilization",
        ws.utilization);
  }
}

std::string PreExecutionEngine::metrics_prometheus() const {
  (void)snapshot();  // publishes into registry_
  return registry_.prometheus_text();
}

std::string PreExecutionEngine::metrics_json() const {
  (void)snapshot();
  return registry_.json();
}

}  // namespace hardtape::service
