// Watchdog: wall-clock liveness monitor for the engine's worker pool.
//
// Simulated timeouts catch a backend that answers slowly *in the model*;
// they cannot catch a worker thread that stops making progress on the host
// (a wedged lock, a backend wrapper stuck in a real syscall). The watchdog
// covers that gap: every worker exposes a heartbeat counter it bumps as it
// makes progress plus a busy flag; a monitor thread samples them and flags
// any worker that has been busy on the same heartbeat for longer than the
// stall threshold. Detection is wall-clock and diagnostics-only — it feeds
// EngineMetrics and an optional callback (the engine wires it to the
// circuit breaker), never the simulated timeline, so determinism of the
// reproduced numbers is untouched.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hardtape::service {

/// One monitored worker's progress state, owned by the worker, sampled by
/// the watchdog. All members are atomics: no locks on the worker's hot path.
struct Heartbeat {
  std::atomic<uint64_t> beats{0};  ///< bump on every unit of progress
  std::atomic<bool> busy{false};   ///< true while a session is executing
};

class Watchdog {
 public:
  struct Config {
    uint64_t poll_interval_ms = 50;
    /// A busy worker whose heartbeat has not moved for this long is stalled.
    uint64_t stall_threshold_ms = 2'000;
  };

  /// `on_stall(worker_index)` fires once per stall episode (re-arms when the
  /// worker makes progress again). May be empty.
  Watchdog(std::vector<Heartbeat*> heartbeats, Config config,
           std::function<void(size_t)> on_stall = {})
      : heartbeats_(std::move(heartbeats)),
        config_(config),
        on_stall_(std::move(on_stall)),
        last_seen_(heartbeats_.size()) {}

  ~Watchdog() { stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start() {
    std::lock_guard lock(mu_);
    if (running_) return;
    running_ = true;
    thread_ = std::thread([this] { loop(); });
  }

  /// Idempotent; joins the monitor thread.
  void stop() {
    {
      std::lock_guard lock(mu_);
      if (!running_) return;
      running_ = false;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  uint64_t stalls_detected() const { return stalls_.load(std::memory_order_relaxed); }

  /// One sampling pass (what the monitor thread runs each interval).
  /// Exposed so tests can drive detection without real-time sleeps.
  void poll_once() {
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < heartbeats_.size(); ++i) {
      Tracker& t = last_seen_[i];
      const uint64_t beats = heartbeats_[i]->beats.load(std::memory_order_relaxed);
      const bool busy = heartbeats_[i]->busy.load(std::memory_order_relaxed);
      if (!busy || beats != t.beats) {
        t.beats = beats;
        t.since = now;
        t.flagged = false;
        continue;
      }
      const auto stuck_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                now - t.since)
                                .count();
      if (!t.flagged && stuck_ms >= static_cast<int64_t>(config_.stall_threshold_ms)) {
        t.flagged = true;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        if (on_stall_) on_stall_(i);
      }
    }
  }

 private:
  struct Tracker {
    uint64_t beats = 0;
    std::chrono::steady_clock::time_point since = std::chrono::steady_clock::now();
    bool flagged = false;
  };

  void loop() {
    std::unique_lock lock(mu_);
    while (running_) {
      cv_.wait_for(lock, std::chrono::milliseconds(config_.poll_interval_ms),
                   [this] { return !running_; });
      if (!running_) break;
      lock.unlock();
      poll_once();
      lock.lock();
    }
  }

  std::vector<Heartbeat*> heartbeats_;
  Config config_;
  std::function<void(size_t)> on_stall_;
  std::vector<Tracker> last_seen_;
  std::atomic<uint64_t> stalls_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace hardtape::service
