#include "service/admission.hpp"

#include <string>

#include "common/errors.hpp"

namespace hardtape::service {

const char* to_string(BrownoutState state) {
  switch (state) {
    case BrownoutState::kHealthy: return "healthy";
    case BrownoutState::kShedLowPriority: return "shed-low-priority";
    case BrownoutState::kAdmitNone: return "admit-none";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::Registry* registry)
    : config_(std::move(config)), registry_(registry) {
  if (registry_ == nullptr) {
    throw UsageError("AdmissionController requires a metrics registry");
  }
  if (config_.quantum_base == 0) {
    throw UsageError("AdmissionController: quantum_base must be >= 1");
  }
  brownout_gauge_ = &registry_->gauge(
      "hardtape_service_brownout_state",
      "overload ladder rung: 0 healthy, 1 shed-low-priority, 2 admit-none");
  depth_gauge_ = &registry_->gauge("hardtape_service_queue_depth",
                                   "requests queued across all tenants");
  brownout_gauge_->set(0);
  depth_gauge_->set(0);
  for (const TenantConfig& t : config_.tenants) tenant(t.tenant_id);
}

AdmissionController::Tenant& AdmissionController::tenant(uint64_t tenant_id) {
  auto it = tenants_.find(tenant_id);
  if (it != tenants_.end()) return it->second;

  Tenant t;
  t.config = config_.defaults;
  t.config.tenant_id = tenant_id;
  for (const TenantConfig& c : config_.tenants) {
    if (c.tenant_id == tenant_id) {
      t.config = c;
      break;
    }
  }
  if (t.config.weight == 0) {
    throw UsageError("AdmissionController: tenant weight must be >= 1");
  }
  const std::string prefix =
      "hardtape_service_tenant_" + std::to_string(tenant_id) + "_";
  t.admitted = &registry_->counter(prefix + "admitted_total",
                                   "requests accepted into the tenant queue");
  t.shed = &registry_->counter(prefix + "shed_total",
                               "requests refused with kOverloaded");
  t.deadline_exceeded =
      &registry_->counter(prefix + "deadline_exceeded_total",
                          "requests refused with kDeadlineExceeded");
  t.queue_wait = &registry_->histogram(prefix + "queue_wait_sim_ns",
                                       "sim ns from admission to dispatch");
  return tenants_.emplace(tenant_id, std::move(t)).first->second;
}

Status AdmissionController::admit(QueuedRequest request, uint64_t now_ns) {
  Tenant& t = tenant(request.tenant_id);
  // Dead on arrival beats every other verdict: even a healthy service must
  // not queue work whose answer is already worthless (the SP's link may have
  // sat on the frame past the client's own budget).
  if (request.deadline_ns != 0 && now_ns >= request.deadline_ns) {
    t.deadline_exceeded->add();
    return Status::kDeadlineExceeded;
  }
  bool shed_this_rung = state_ == BrownoutState::kAdmitNone;
  if (state_ == BrownoutState::kShedLowPriority) {
    if (config_.shed_gas_budget_per_priority > 0) {
      // Cost-aware rung: the shed budget scales with the tenant's priority,
      // so what gets refused is the expensive work, not a whole class.
      shed_this_rung =
          request.estimated_gas > config_.shed_gas_budget_per_priority *
                                      static_cast<uint64_t>(t.config.priority);
    } else {
      shed_this_rung = t.config.priority < config_.shed_priority_floor;
    }
  }
  if (shed_this_rung || t.queue.size() >= t.config.queue_capacity) {
    t.shed->add();
    return Status::kOverloaded;
  }
  request.enqueue_ns = now_ns;
  t.queue.push_back(std::move(request));
  ++total_queued_;
  t.admitted->add();
  update_brownout();
  return Status::kOk;
}

std::optional<AdmissionController::Pick> AdmissionController::next(
    uint64_t now_ns) {
  if (total_queued_ == 0) return std::nullopt;
  // One bounded pass over the tenant ring starting at the cursor. Every
  // visited tenant either yields a pick (return) or advances the cursor, so
  // a full silent pass proves nothing is dispatchable right now.
  const size_t tenant_count = tenants_.size();
  auto it = tenants_.lower_bound(cursor_);
  if (it == tenants_.end()) it = tenants_.begin();
  for (size_t visited = 0; visited < tenant_count; ++visited) {
    Tenant& t = it->second;
    const auto advance = [&] {
      ++it;
      if (it == tenants_.end()) it = tenants_.begin();
      cursor_ = it->first;
    };
    // Expired heads first: they leave the queue as kDeadlineExceeded
    // verdicts, free of charge — no deficit, no in-flight slot, no device.
    // The cursor stays put so the tenant's live head is considered next.
    if (!t.queue.empty() && t.queue.front().deadline_ns != 0 &&
        now_ns >= t.queue.front().deadline_ns) {
      Pick pick{std::move(t.queue.front()), /*expired=*/true};
      t.queue.pop_front();
      --total_queued_;
      t.deadline_exceeded->add();
      record_wait(t, now_ns - pick.request.enqueue_ns);
      update_brownout();
      return pick;
    }
    if (t.queue.empty()) {
      // Idle tenants carry no deficit into their next busy period (DRR's
      // memoryless rule — saved-up credit would defeat the fairness bound).
      t.deficit = 0;
      advance();
      continue;
    }
    if (t.in_flight >= t.config.max_in_flight) {
      advance();  // at quota: skipped, deficit intact
      continue;
    }
    if (t.deficit == 0) {
      t.deficit = static_cast<uint64_t>(config_.quantum_base) * t.config.weight;
    }
    Pick pick{std::move(t.queue.front()), /*expired=*/false};
    t.queue.pop_front();
    --total_queued_;
    --t.deficit;
    ++t.in_flight;
    record_wait(t, now_ns - pick.request.enqueue_ns);
    if (t.deficit == 0) advance();  // quantum spent: next round, next tenant
    update_brownout();
    return pick;
  }
  return std::nullopt;
}

void AdmissionController::readmit(QueuedRequest request, uint64_t now_ns) {
  Tenant& t = tenant(request.tenant_id);
  request.enqueue_ns = now_ns;
  // Front of the tenant queue, no shed checks: this request was already
  // admitted once and lost its device through no fault of its own (see the
  // header contract). Deadline expiry still applies at the next DRR pass.
  t.queue.push_front(std::move(request));
  ++total_queued_;
  update_brownout();
}

void AdmissionController::on_complete(uint64_t tenant_id) {
  Tenant& t = tenant(tenant_id);
  if (t.in_flight == 0) {
    throw UsageError("AdmissionController::on_complete without a dispatch");
  }
  --t.in_flight;
}

uint64_t AdmissionController::window_p99_wait_ns() const {
  if (wait_window_.empty()) return 0;
  return obs::percentile(
      std::vector<uint64_t>(wait_window_.begin(), wait_window_.end()), 99.0);
}

void AdmissionController::record_wait(Tenant& t, uint64_t wait_ns) {
  t.queue_wait->observe(wait_ns);
  wait_window_.push_back(wait_ns);
  while (wait_window_.size() > config_.wait_window) wait_window_.pop_front();
}

void AdmissionController::update_brownout() {
  const size_t depth = total_queued_;
  const uint64_t p99 = window_p99_wait_ns();
  const auto past = [&](size_t depth_thr, uint64_t wait_thr) {
    return depth >= depth_thr || (wait_thr != 0 && p99 >= wait_thr);
  };
  const auto under = [&](size_t depth_thr, uint64_t wait_thr) {
    return depth < depth_thr && (wait_thr == 0 || p99 < wait_thr);
  };
  // One rung per update, with independent enter/exit marks per rung: a
  // workload oscillating around a single threshold sees the state change
  // once, not every sample.
  switch (state_) {
    case BrownoutState::kHealthy:
      if (past(config_.admit_none_depth_enter,
               config_.admit_none_p99_wait_enter_ns)) {
        state_ = BrownoutState::kAdmitNone;
      } else if (past(config_.shed_depth_enter, config_.shed_p99_wait_enter_ns)) {
        state_ = BrownoutState::kShedLowPriority;
      }
      break;
    case BrownoutState::kShedLowPriority:
      if (past(config_.admit_none_depth_enter,
               config_.admit_none_p99_wait_enter_ns)) {
        state_ = BrownoutState::kAdmitNone;
      } else if (under(config_.shed_depth_exit, config_.shed_p99_wait_exit_ns)) {
        state_ = BrownoutState::kHealthy;
      }
      break;
    case BrownoutState::kAdmitNone:
      if (under(config_.admit_none_depth_exit,
                config_.admit_none_p99_wait_exit_ns)) {
        state_ = BrownoutState::kShedLowPriority;
      }
      break;
  }
  brownout_gauge_->set(static_cast<double>(static_cast<uint8_t>(state_)));
  depth_gauge_->set(static_cast<double>(depth));
}

}  // namespace hardtape::service
