#include "service/front_door.hpp"

#include <algorithm>

#include "faults/faulty_link.hpp"

namespace hardtape::service {

void FrontDoor::Mailbox::post(const SessionOutcome& outcome) {
  {
    std::lock_guard lock(mu);
    ready[outcome.bundle_id] = outcome;
  }
  cv.notify_all();
}

SessionOutcome FrontDoor::Mailbox::take(uint64_t bundle_id) {
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return ready.find(bundle_id) != ready.end(); });
  auto node = ready.extract(bundle_id);
  return std::move(node.mapped());
}

FrontDoor::FrontDoor(PreExecutionEngine& engine, FrontDoorConfig config)
    : engine_(engine),
      config_(std::move(config)),
      admission_(config_.admission, &engine.metrics_registry()) {
  if (config_.num_devices == 0) {
    throw UsageError("FrontDoor: need at least one device");
  }
  engine_.set_on_outcome(
      [this](const SessionOutcome& outcome) { mailbox_.post(outcome); });
  // Sorted descending so back() hands out the lowest free device id —
  // deterministic assignment, deterministic binding log.
  for (size_t i = config_.num_devices; i > 0; --i) {
    free_devices_.push_back(static_cast<uint32_t>(i - 1));
  }
  obs::Registry& registry = engine_.metrics_registry();
  frames_total_ = &registry.counter("hardtape_service_frames_total",
                                    "frames delivered to the front door");
  frames_rejected_ =
      &registry.counter("hardtape_service_frames_rejected_total",
                        "frames the channel refused (tamper, replay)");
  frames_malformed_ =
      &registry.counter("hardtape_service_frames_malformed_total",
                        "authenticated frames that failed to parse");
  dispatched_total_ = &registry.counter("hardtape_service_dispatched_total",
                                        "requests handed to a device");
  sessions_gauge_ =
      &registry.gauge("hardtape_service_sessions_open", "open sessions");
}

uint64_t FrontDoor::connect(const crypto::AesKey128& key) {
  const uint64_t conn_id = next_conn_id_++;
  Connection conn{hypervisor::SecureChannel(key), /*session_id=*/0};
  conn.channel.set_lossy_transport(true);
  connections_.emplace(conn_id, std::move(conn));
  return conn_id;
}

std::vector<hypervisor::SecureMessage> FrontDoor::deliver(
    uint64_t conn_id, const hypervisor::SecureMessage& frame,
    uint64_t arrival_ns) {
  const auto conn_it = connections_.find(conn_id);
  if (conn_it == connections_.end()) {
    throw UsageError("FrontDoor: unknown connection");
  }
  Connection& conn = conn_it->second;
  frames_total_->add();
  advance(std::max(arrival_ns, now_ns_));

  auto opened = conn.channel.open(frame, config_.max_body_length,
                                  /*max_target_offset=*/0);
  if (opened.status != Status::kOk) {
    // Tampered, replayed or malformed-at-the-channel bytes: they never
    // authenticated as the client's words, so they earn no reply and touch
    // no session state (the channel did not advance its window either).
    frames_rejected_->add();
    return {};
  }
  auto request = RequestFrame::decode(opened.body);
  ResponseFrame response;
  if (!request.has_value()) {
    // Authenticated garbage: the client really sent this, so it gets an
    // honest error, but the session state machine is left untouched.
    frames_malformed_->add();
    response.status = Status::kMalformedMessage;
  } else {
    response = handle_frame(conn, conn_id, *request);
  }
  std::vector<hypervisor::SecureMessage> out;
  out.push_back(conn.channel.seal(hypervisor::MessageType::kBundleSubmit,
                                  /*target_offset=*/0, response.encode()));
  return out;
}

ResponseFrame FrontDoor::handle_frame(Connection& conn, uint64_t conn_id,
                                      const RequestFrame& request) {
  ResponseFrame response;
  response.verb = request.verb;
  response.session_id = request.session_id;
  response.request_id = request.request_id;

  if (request.verb == Verb::kOpenSession) {
    return handle_open(conn, conn_id, request);
  }
  const auto it = sessions_.find(request.session_id);
  if (it == sessions_.end()) {
    response.status = Status::kNotFound;
    return response;
  }
  Session& session = it->second;
  if (session.conn_id != conn_id) {
    // A session is private to the connection that opened it; another
    // authenticated client naming it is a policy violation, not a miss.
    response.status = Status::kRejected;
    return response;
  }
  if (request.verb == Verb::kCloseSession) {
    if (session.open) {
      session.open = false;
      --open_sessions_;
      sessions_gauge_->set(static_cast<double>(open_sessions_));
    }
    response.status = Status::kOk;  // idempotent
    return response;
  }
  if (!session.open) {
    response.status = Status::kNotFound;
    return response;
  }
  if (request.verb == Verb::kSubmit) return handle_submit(session, request);
  return handle_poll(session, request);
}

ResponseFrame FrontDoor::handle_open(Connection& conn, uint64_t conn_id,
                                     const RequestFrame& request) {
  ResponseFrame response;
  response.verb = Verb::kOpenSession;
  response.request_id = request.request_id;
  if (conn.session_id != 0) {
    // Idempotent re-open (the client's open response was lost): hand back
    // the existing session as long as the tenant claim matches.
    Session& session = sessions_.at(conn.session_id);
    if (session.open && session.tenant_id == request.tenant_id) {
      response.session_id = session.session_id;
      response.status = Status::kOk;
      return response;
    }
    if (session.open) {
      response.status = Status::kRejected;  // same conn, different tenant
      return response;
    }
  }
  if (open_sessions_ >= config_.max_sessions) {
    response.status = Status::kOverloaded;
    return response;
  }
  Session session;
  session.session_id = next_session_id_++;
  session.tenant_id = request.tenant_id;
  session.conn_id = conn_id;
  session.open = true;
  conn.session_id = session.session_id;
  response.session_id = session.session_id;
  response.status = Status::kOk;
  sessions_.emplace(session.session_id, std::move(session));
  ++open_sessions_;
  sessions_gauge_->set(static_cast<double>(open_sessions_));
  return response;
}

ResponseFrame FrontDoor::handle_submit(Session& session,
                                       const RequestFrame& request) {
  ResponseFrame response;
  response.verb = Verb::kSubmit;
  response.session_id = session.session_id;
  response.request_id = request.request_id;

  const auto existing = session.requests.find(request.request_id);
  if (existing != session.requests.end()) {
    // Idempotent resubmit (response lost on the wire): same verdict, no
    // second admission, no second execution.
    response.status = existing->second.admission_status;
    return response;
  }

  QueuedRequest queued;
  queued.session_id = session.session_id;
  queued.tenant_id = session.tenant_id;
  queued.request_id = request.request_id;
  queued.deadline_ns = request.deadline_ns == 0
                           ? 0
                           : request.client_time_ns + request.deadline_ns;
  queued.bundle = request.bundle;
  const Status verdict = admission_.admit(std::move(queued), now_ns_);

  RequestState state;
  state.deadline_ns = request.deadline_ns == 0
                          ? 0
                          : request.client_time_ns + request.deadline_ns;
  state.admission_status = verdict;
  if (verdict == Status::kOk) {
    // The moment that buys worker-count independence: the engine id — and
    // with it the session's RNG and fault streams — is fixed here, in
    // arrival order, before any scheduling happens.
    state.bundle_id = next_bundle_id_++;
  } else {
    state.stage = Stage::kDone;
    state.done_ns = now_ns_;
    state.outcome_status = verdict;
  }
  session.requests.emplace(request.request_id, state);
  response.status = verdict;
  if (verdict == Status::kOk) dispatch();
  return response;
}

ResponseFrame FrontDoor::handle_poll(Session& session,
                                     const RequestFrame& request) {
  ResponseFrame response;
  response.verb = Verb::kPoll;
  response.session_id = session.session_id;
  response.request_id = request.request_id;
  const auto it = session.requests.find(request.request_id);
  if (it == session.requests.end()) {
    response.status = Status::kNotFound;
    return response;
  }
  const RequestState& state = it->second;
  response.status = Status::kOk;
  if (state.stage == Stage::kDone) {
    response.done = true;
    response.outcome_status = state.outcome_status;
    response.queue_wait_ns = state.queue_wait_ns;
    response.exec_ns = state.exec_ns;
    response.gas_used = state.gas_used;
  } else if (state.stage == Stage::kQueued && state.deadline_ns != 0 &&
             now_ns_ >= state.deadline_ns) {
    // Aged out in its tenant queue; the DRR pass will discard it at the
    // next dispatch opportunity, but the client deserves the verdict now.
    response.done = true;
    response.outcome_status = Status::kDeadlineExceeded;
  }
  return response;
}

void FrontDoor::advance(uint64_t target_ns) {
  while (!completions_.empty() && completions_.top().at_ns <= target_ns) {
    const Completion done = completions_.top();
    completions_.pop();
    now_ns_ = done.at_ns;
    // Unbind the device (the binding interval ends here) and release the
    // tenant's in-flight slot before pulling new work.
    free_devices_.push_back(done.device);
    std::sort(free_devices_.begin(), free_devices_.end(),
              std::greater<uint32_t>());
    admission_.on_complete(done.tenant_id);
    if (RequestState* state = find_request(done.session_id, done.request_id)) {
      state->stage = Stage::kDone;
    }
    dispatch();
  }
  now_ns_ = std::max(now_ns_, target_ns);
}

void FrontDoor::dispatch() {
  struct Launched {
    uint32_t device;
    uint64_t bundle_id;
    uint64_t session_id;
    uint64_t request_id;
    uint64_t tenant_id;
  };
  std::vector<Launched> burst;
  while (!free_devices_.empty()) {
    auto pick = admission_.next(now_ns_);
    if (!pick.has_value()) break;
    RequestState* state =
        find_request(pick->request.session_id, pick->request.request_id);
    if (pick->expired) {
      // Blew its queue-wait budget: resolved without ever touching a
      // device. No binding, no engine submission, no execution.
      if (state != nullptr) {
        state->stage = Stage::kDone;
        state->done_ns = now_ns_;
        state->outcome_status = Status::kDeadlineExceeded;
        state->queue_wait_ns = now_ns_ - pick->request.enqueue_ns;
      }
      continue;
    }
    if (state == nullptr) {
      throw UsageError("FrontDoor: dispatched request has no state");
    }
    const uint32_t device = free_devices_.back();
    free_devices_.pop_back();
    state->stage = Stage::kRunning;
    state->dispatch_ns = now_ns_;
    state->queue_wait_ns = now_ns_ - pick->request.enqueue_ns;
    dispatched_total_->add();
    burst.push_back(Launched{device, state->bundle_id,
                             pick->request.session_id,
                             pick->request.request_id,
                             pick->request.tenant_id});
    // Launch the whole burst before blocking on any outcome: the engine's
    // workers execute these sessions in parallel; only the bookkeeping
    // below is sequential.
    (void)engine_.submit_as(state->bundle_id, std::move(pick->request.bundle));
  }
  for (const Launched& launched : burst) {
    const SessionOutcome outcome = mailbox_.take(launched.bundle_id);
    // The simulated session time is how long the dedicated device is bound.
    // Clamp to 1ns so even a degenerate zero-cost session produces a
    // non-empty, auditable binding interval.
    const uint64_t duration = std::max<uint64_t>(1, outcome.end_to_end_ns);
    RequestState* state =
        find_request(launched.session_id, launched.request_id);
    if (state == nullptr) {
      throw UsageError("FrontDoor: launched request lost its state");
    }
    state->done_ns = now_ns_ + duration;
    state->outcome_status = outcome.status;
    state->exec_ns = outcome.end_to_end_ns;
    uint64_t gas = 0;
    for (const auto& tx : outcome.report.transactions) gas += tx.gas_used;
    state->gas_used = gas;
    completions_.push(Completion{now_ns_ + duration, launched.bundle_id,
                                 launched.device, launched.session_id,
                                 launched.request_id, launched.tenant_id});
    bindings_.push_back(Binding{launched.device, launched.session_id,
                                launched.bundle_id, now_ns_,
                                now_ns_ + duration});
  }
}

FrontDoor::RequestState* FrontDoor::find_request(uint64_t session_id,
                                                 uint64_t request_id) {
  const auto session_it = sessions_.find(session_id);
  if (session_it == sessions_.end()) return nullptr;
  const auto request_it = session_it->second.requests.find(request_id);
  if (request_it == session_it->second.requests.end()) return nullptr;
  return &request_it->second;
}

void FrontDoor::advance_to(uint64_t now_ns) {
  advance(std::max(now_ns, now_ns_));
}

void FrontDoor::finish() {
  for (;;) {
    if (!completions_.empty()) {
      advance(completions_.top().at_ns);
      continue;
    }
    if (admission_.total_queued() == 0) break;
    const size_t before = admission_.total_queued();
    dispatch();
    if (completions_.empty() && admission_.total_queued() == before) {
      // Nothing in flight and nothing dispatchable: queued work that can
      // never run (a zero quota). Config error; bail instead of spinning.
      break;
    }
  }
}

ServiceClient::ServiceClient(FrontDoor& door, const crypto::AesKey128& key)
    : door_(door), channel_(key) {
  channel_.set_lossy_transport(true);
  conn_id_ = door_.connect(key);
}

std::optional<ResponseFrame> ServiceClient::call(const RequestFrame& request,
                                                 uint64_t now_ns,
                                                 faults::FaultyLink* link) {
  auto sealed = channel_.seal(hypervisor::MessageType::kBundleSubmit,
                              /*target_offset=*/0, request.encode());
  std::vector<hypervisor::SecureMessage> on_wire;
  if (link != nullptr) {
    on_wire = link->transmit(std::move(sealed));
  } else {
    on_wire.push_back(std::move(sealed));
  }
  std::optional<ResponseFrame> first;
  for (const auto& frame : on_wire) {
    for (const auto& reply : door_.deliver(conn_id_, frame, now_ns)) {
      auto opened = channel_.open(reply, /*max_body_length=*/1 << 20,
                                  /*max_target_offset=*/0);
      if (opened.status != Status::kOk) continue;
      auto decoded = ResponseFrame::decode(opened.body);
      if (decoded.has_value() && !first.has_value()) first = decoded;
    }
  }
  return first;
}

}  // namespace hardtape::service
