#include "service/front_door.hpp"

#include <algorithm>

#include "faults/faulty_link.hpp"

namespace hardtape::service {

void FrontDoor::Mailbox::post(const SessionOutcome& outcome) {
  {
    std::lock_guard lock(mu);
    ready[outcome.bundle_id] = outcome;
  }
  cv.notify_all();
}

SessionOutcome FrontDoor::Mailbox::take(uint64_t bundle_id) {
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return ready.find(bundle_id) != ready.end(); });
  auto node = ready.extract(bundle_id);
  return std::move(node.mapped());
}

namespace {

DevicePoolConfig pool_config_from(const FrontDoorConfig& config) {
  DevicePoolConfig pool = config.devices;
  if (pool.initial_devices == 0) pool.initial_devices = config.num_devices;
  return pool;
}

}  // namespace

FrontDoor::FrontDoor(PreExecutionEngine& engine, FrontDoorConfig config)
    : engine_(engine),
      config_(std::move(config)),
      admission_(config_.admission, &engine.metrics_registry()),
      pool_(pool_config_from(config_), &engine.metrics_registry()) {
  if (pool_.size() == 0) {
    throw UsageError("FrontDoor: need at least one device");
  }
  engine_.set_on_outcome(
      [this](const SessionOutcome& outcome) { mailbox_.post(outcome); });
  obs::Registry& registry = engine_.metrics_registry();
  frames_total_ = &registry.counter("hardtape_service_frames_total",
                                    "frames delivered to the front door");
  frames_rejected_ =
      &registry.counter("hardtape_service_frames_rejected_total",
                        "frames the channel refused (tamper, replay)");
  frames_malformed_ =
      &registry.counter("hardtape_service_frames_malformed_total",
                        "authenticated frames that failed to parse");
  dispatched_total_ = &registry.counter("hardtape_service_dispatched_total",
                                        "requests handed to a device");
  failovers_total_ =
      &registry.counter("hardtape_service_failovers_total",
                        "bindings lost to device death/drain and re-admitted");
  retry_exhausted_total_ =
      &registry.counter("hardtape_service_failover_retry_exhausted_total",
                        "requests terminal kRetryExhausted after failovers");
  device_lost_total_ =
      &registry.counter("hardtape_service_device_lost_total",
                        "requests terminal kDeviceLost (fleet gone)");
  rebind_latency_ =
      &registry.histogram("hardtape_service_rebind_latency_sim_ns",
                          "sim ns from binding cut to failover re-dispatch");
  sessions_gauge_ =
      &registry.gauge("hardtape_service_sessions_open", "open sessions");
}

uint64_t FrontDoor::connect(const crypto::AesKey128& key) {
  const uint64_t conn_id = next_conn_id_++;
  Connection conn{hypervisor::SecureChannel(key), /*session_id=*/0};
  conn.channel.set_lossy_transport(true);
  connections_.emplace(conn_id, std::move(conn));
  return conn_id;
}

std::vector<hypervisor::SecureMessage> FrontDoor::deliver(
    uint64_t conn_id, const hypervisor::SecureMessage& frame,
    uint64_t arrival_ns) {
  const auto conn_it = connections_.find(conn_id);
  if (conn_it == connections_.end()) {
    throw UsageError("FrontDoor: unknown connection");
  }
  Connection& conn = conn_it->second;
  frames_total_->add();
  advance(std::max(arrival_ns, now_ns_));

  auto opened = conn.channel.open(frame, config_.max_body_length,
                                  /*max_target_offset=*/0);
  if (opened.status != Status::kOk) {
    // Tampered, replayed or malformed-at-the-channel bytes: they never
    // authenticated as the client's words, so they earn no reply and touch
    // no session state (the channel did not advance its window either).
    frames_rejected_->add();
    return {};
  }
  auto request = RequestFrame::decode(opened.body);
  ResponseFrame response;
  if (!request.has_value()) {
    // Authenticated garbage: the client really sent this, so it gets an
    // honest error, but the session state machine is left untouched.
    frames_malformed_->add();
    response.status = Status::kMalformedMessage;
  } else {
    response = handle_frame(conn, conn_id, *request);
  }
  std::vector<hypervisor::SecureMessage> out;
  out.push_back(conn.channel.seal(hypervisor::MessageType::kBundleSubmit,
                                  /*target_offset=*/0, response.encode()));
  return out;
}

ResponseFrame FrontDoor::handle_frame(Connection& conn, uint64_t conn_id,
                                      const RequestFrame& request) {
  ResponseFrame response;
  response.verb = request.verb;
  response.session_id = request.session_id;
  response.request_id = request.request_id;

  if (request.verb == Verb::kOpenSession) {
    return handle_open(conn, conn_id, request);
  }
  const auto it = sessions_.find(request.session_id);
  if (it == sessions_.end()) {
    response.status = Status::kNotFound;
    return response;
  }
  Session& session = it->second;
  if (session.conn_id != conn_id) {
    // A session is private to the connection that opened it; another
    // authenticated client naming it is a policy violation, not a miss.
    response.status = Status::kRejected;
    return response;
  }
  if (request.verb == Verb::kCloseSession) {
    if (session.open) {
      session.open = false;
      --open_sessions_;
      sessions_gauge_->set(static_cast<double>(open_sessions_));
    }
    response.status = Status::kOk;  // idempotent
    return response;
  }
  if (!session.open) {
    response.status = Status::kNotFound;
    return response;
  }
  if (request.verb == Verb::kSubmit) return handle_submit(session, request);
  return handle_poll(session, request);
}

ResponseFrame FrontDoor::handle_open(Connection& conn, uint64_t conn_id,
                                     const RequestFrame& request) {
  ResponseFrame response;
  response.verb = Verb::kOpenSession;
  response.request_id = request.request_id;
  if (conn.session_id != 0) {
    // Idempotent re-open (the client's open response was lost): hand back
    // the existing session as long as the tenant claim matches.
    Session& session = sessions_.at(conn.session_id);
    if (session.open && session.tenant_id == request.tenant_id) {
      response.session_id = session.session_id;
      response.status = Status::kOk;
      return response;
    }
    if (session.open) {
      response.status = Status::kRejected;  // same conn, different tenant
      return response;
    }
  }
  if (open_sessions_ >= config_.max_sessions) {
    response.status = Status::kOverloaded;
    return response;
  }
  Session session;
  session.session_id = next_session_id_++;
  session.tenant_id = request.tenant_id;
  session.conn_id = conn_id;
  session.open = true;
  conn.session_id = session.session_id;
  response.session_id = session.session_id;
  response.status = Status::kOk;
  sessions_.emplace(session.session_id, std::move(session));
  ++open_sessions_;
  sessions_gauge_->set(static_cast<double>(open_sessions_));
  return response;
}

ResponseFrame FrontDoor::handle_submit(Session& session,
                                       const RequestFrame& request) {
  ResponseFrame response;
  response.verb = Verb::kSubmit;
  response.session_id = session.session_id;
  response.request_id = request.request_id;

  const auto existing = session.requests.find(request.request_id);
  if (existing != session.requests.end()) {
    // Idempotent resubmit (response lost on the wire): same verdict, no
    // second admission, no second execution.
    response.status = existing->second.admission_status;
    return response;
  }

  // The cost-aware brownout's input: the client's hint, or the bundle's
  // summed gas limits when it sent none (a derived over-estimate — limits
  // bound cost — which fails toward shedding, the honest direction).
  uint64_t estimated_gas = request.gas_estimate;
  if (estimated_gas == 0) {
    for (const evm::Transaction& tx : request.bundle) {
      estimated_gas += tx.gas_limit;
    }
  }

  QueuedRequest queued;
  queued.session_id = session.session_id;
  queued.tenant_id = session.tenant_id;
  queued.request_id = request.request_id;
  queued.deadline_ns = request.deadline_ns == 0
                           ? 0
                           : request.client_time_ns + request.deadline_ns;
  queued.estimated_gas = estimated_gas;
  const Status verdict = admission_.admit(std::move(queued), now_ns_);

  RequestState state;
  state.deadline_ns = request.deadline_ns == 0
                          ? 0
                          : request.client_time_ns + request.deadline_ns;
  state.admission_status = verdict;
  state.estimated_gas = estimated_gas;
  if (verdict == Status::kOk) {
    // The moment that buys worker-count independence: the engine id — and
    // with it the session's RNG and fault streams — is fixed here, in
    // arrival order, before any scheduling happens. A failover re-executes
    // under this same id at attempt+1, so the bundle is retained until the
    // request is terminal (a dead device's sealed state cannot be resumed).
    state.bundle_id = next_bundle_id_++;
    state.bundle = request.bundle;
  } else {
    state.stage = Stage::kDone;
    state.done_ns = now_ns_;
    state.outcome_status = verdict;
  }
  session.requests.emplace(request.request_id, std::move(state));
  response.status = verdict;
  if (verdict == Status::kOk) dispatch();
  return response;
}

ResponseFrame FrontDoor::handle_poll(Session& session,
                                     const RequestFrame& request) {
  ResponseFrame response;
  response.verb = Verb::kPoll;
  response.session_id = session.session_id;
  response.request_id = request.request_id;
  const auto it = session.requests.find(request.request_id);
  if (it == session.requests.end()) {
    response.status = Status::kNotFound;
    return response;
  }
  const RequestState& state = it->second;
  response.status = Status::kOk;
  if (state.stage == Stage::kDone) {
    response.done = true;
    response.outcome_status = state.outcome_status;
    response.queue_wait_ns = state.queue_wait_ns;
    response.exec_ns = state.exec_ns;
    response.gas_used = state.gas_used;
  } else if (state.stage == Stage::kQueued && state.deadline_ns != 0 &&
             now_ns_ >= state.deadline_ns) {
    // Aged out in its tenant queue; the DRR pass will discard it at the
    // next dispatch opportunity, but the client deserves the verdict now.
    response.done = true;
    response.outcome_status = Status::kDeadlineExceeded;
  }
  return response;
}

void FrontDoor::advance(uint64_t target_ns) {
  // One merged timeline: scheduled binding-end events and the pool's timed
  // transitions (warmup, quarantine backoff, flap rejoin), processed in sim
  // order with pool transitions first at a shared instant — a device that
  // rejoins at t must be bindable by work freed at t.
  for (;;) {
    const uint64_t pool_at = pool_.next_transition_ns();
    const uint64_t event_at =
        events_.empty() ? UINT64_MAX : events_.top().at_ns;
    const uint64_t at = std::min(pool_at, event_at);
    if (at > target_ns) break;
    now_ns_ = std::max(now_ns_, at);
    if (pool_at <= event_at) {
      pool_.advance_to(at);
    } else {
      const Event event = events_.top();
      events_.pop();
      handle_event(event);
    }
    dispatch();
  }
  now_ns_ = std::max(now_ns_, target_ns);
}

FrontDoor::ActiveBinding FrontDoor::cut_binding(uint32_t device) {
  const auto it = active_.find(device);
  if (it == active_.end()) {
    throw UsageError("FrontDoor: cut_binding on an idle device");
  }
  const ActiveBinding lost = it->second;
  active_.erase(it);
  // The interval ends at the cut, not at the completion that will never
  // come; any still-heaped event for this binding goes stale with it.
  bindings_[lost.binding_idx].end_ns = now_ns_;
  admission_.on_complete(lost.tenant_id);
  return lost;
}

void FrontDoor::handle_event(const Event& event) {
  const auto it = active_.find(event.device);
  if (it == active_.end() || it->second.gen != event.gen) {
    return;  // stale: the binding this event was scheduled for is gone
  }
  switch (event.kind) {
    case Event::Kind::kCompletion: {
      const ActiveBinding done = it->second;
      active_.erase(it);
      admission_.on_complete(done.tenant_id);
      if (done.sticky_fail) {
        // The device ran the session to the end but the result failed
        // health/attestation checks: fail closed — discard it, feed the
        // per-device breaker, re-execute elsewhere.
        pool_.sticky_fault(event.device, now_ns_);
        failover(done);
        break;
      }
      pool_.complete(event.device, now_ns_);
      if (RequestState* state =
              find_request(done.session_id, done.request_id)) {
        state->stage = Stage::kDone;
        state->done_ns = now_ns_;
        state->outcome_status = done.outcome_status;
        state->exec_ns = done.exec_ns;
        state->gas_used = done.gas_used;
      }
      break;
    }
    case Event::Kind::kDeviceDeath: {
      const ActiveBinding lost = cut_binding(event.device);
      pool_.crash(event.device, now_ns_, event.rejoin_at_ns);
      failover(lost);
      break;
    }
    case Event::Kind::kDrainDeadline: {
      if (pool_.state(event.device) != DeviceState::kDraining) return;
      // Grace expired with the session still running: cut it, finish the
      // drain, re-admit the bundle. Drains never strand a bound session.
      const ActiveBinding lost = cut_binding(event.device);
      pool_.finish_drain(event.device, now_ns_);
      failover(lost);
      break;
    }
  }
}

void FrontDoor::failover(const ActiveBinding& lost) {
  RequestState* state = find_request(lost.session_id, lost.request_id);
  if (state == nullptr) {
    throw UsageError("FrontDoor: failover for a request with no state");
  }
  failovers_total_->add();
  // Budgeted by the engine's own attempt budget: the failover attempt index
  // continues where the engine's internal requeues left off, so device
  // loss and backend faults spend the SAME bounded budget.
  const uint32_t next_attempt = lost.engine_attempt + 1;
  const int budget = engine_.config().max_bundle_attempts;
  if (budget > 0 && next_attempt >= static_cast<uint32_t>(budget)) {
    retry_exhausted_total_->add();
    state->stage = Stage::kDone;
    state->done_ns = now_ns_;
    state->outcome_status = Status::kRetryExhausted;
    return;
  }
  state->attempt = next_attempt;
  state->stage = Stage::kQueued;
  state->rebind_start_ns = now_ns_;
  QueuedRequest queued;
  queued.session_id = lost.session_id;
  queued.tenant_id = lost.tenant_id;
  queued.request_id = lost.request_id;
  queued.deadline_ns = state->deadline_ns;
  queued.estimated_gas = state->estimated_gas;
  admission_.readmit(std::move(queued), now_ns_);
}

void FrontDoor::dispatch() {
  struct Launched {
    uint32_t device;
    uint64_t bundle_id;
    uint64_t session_id;
    uint64_t request_id;
    uint64_t tenant_id;
  };
  std::vector<Launched> burst;
  while (pool_.has_idle()) {
    auto pick = admission_.next(now_ns_);
    if (!pick.has_value()) break;
    RequestState* state =
        find_request(pick->request.session_id, pick->request.request_id);
    if (pick->expired) {
      // Blew its queue-wait budget: resolved without ever touching a
      // device. No binding, no engine submission, no execution.
      if (state != nullptr) {
        state->stage = Stage::kDone;
        state->done_ns = now_ns_;
        state->outcome_status = Status::kDeadlineExceeded;
        state->queue_wait_ns += now_ns_ - pick->request.enqueue_ns;
      }
      continue;
    }
    if (state == nullptr) {
      throw UsageError("FrontDoor: dispatched request has no state");
    }
    const uint32_t device = *pool_.acquire(now_ns_);
    state->stage = Stage::kRunning;
    state->dispatch_ns = now_ns_;
    state->queue_wait_ns += now_ns_ - pick->request.enqueue_ns;
    if (state->rebind_start_ns != 0) {
      rebind_latency_->observe(now_ns_ - state->rebind_start_ns);
      state->rebind_start_ns = 0;
    }
    dispatched_total_->add();
    burst.push_back(Launched{device, state->bundle_id,
                             pick->request.session_id,
                             pick->request.request_id,
                             pick->request.tenant_id});
    // Launch the whole burst before blocking on any outcome: the engine's
    // workers execute these sessions in parallel; only the bookkeeping
    // below is sequential. The request keeps its own copy of the bundle —
    // a later failover re-executes from it.
    std::vector<evm::Transaction> bundle = state->bundle;
    if (state->attempt == 0) {
      (void)engine_.submit_as(state->bundle_id, std::move(bundle));
    } else {
      (void)engine_.resubmit(state->bundle_id, std::move(bundle),
                             state->attempt);
    }
  }
  for (const Launched& launched : burst) {
    const SessionOutcome outcome = mailbox_.take(launched.bundle_id);
    // The simulated session time is how long the dedicated device is bound.
    // Clamp to 1ns so even a degenerate zero-cost session produces a
    // non-empty, auditable binding interval.
    const uint64_t duration = std::max<uint64_t>(1, outcome.end_to_end_ns);
    RequestState* state =
        find_request(launched.session_id, launched.request_id);
    if (state == nullptr) {
      throw UsageError("FrontDoor: launched request lost its state");
    }
    ActiveBinding binding;
    binding.gen = next_binding_gen_++;
    binding.binding_idx = bindings_.size();
    binding.bundle_id = launched.bundle_id;
    binding.session_id = launched.session_id;
    binding.request_id = launched.request_id;
    binding.tenant_id = launched.tenant_id;
    binding.outcome_status = outcome.status;
    binding.engine_attempt = outcome.attempt;
    binding.exec_ns = outcome.end_to_end_ns;
    uint64_t gas = 0;
    for (const auto& tx : outcome.report.transactions) gas += tx.gas_used;
    binding.gas_used = gas;

    // The device fault plan decides this binding's fate — deterministically,
    // keyed on (device, per-device binding index).
    const faults::DeviceFaultDecision fate = pool_.binding_fate(launched.device);
    uint64_t end_ns = now_ns_ + duration;
    if (fate.kind == faults::DeviceFaultKind::kCrash ||
        fate.kind == faults::DeviceFaultKind::kFlap) {
      // Death mid-binding: at least 1ns served, cut no later than the
      // natural end. The sealed session state dies with the device.
      uint64_t served = static_cast<uint64_t>(
          fate.kill_frac * static_cast<double>(duration));
      served = std::clamp<uint64_t>(served, 1, duration);
      end_ns = now_ns_ + served;
      const uint64_t rejoin_at =
          fate.kind == faults::DeviceFaultKind::kFlap
              ? end_ns + std::max<uint64_t>(1, fate.downtime_ns)
              : 0;
      events_.push(Event{end_ns, next_event_seq_++,
                         Event::Kind::kDeviceDeath, launched.device,
                         binding.gen, rejoin_at});
    } else {
      binding.sticky_fail = fate.kind == faults::DeviceFaultKind::kSticky;
      events_.push(Event{end_ns, next_event_seq_++, Event::Kind::kCompletion,
                         launched.device, binding.gen, 0});
    }
    bindings_.push_back(Binding{launched.device, launched.session_id,
                                launched.bundle_id, now_ns_, end_ns});
    active_[launched.device] = binding;
  }
}

uint32_t FrontDoor::add_device() {
  const uint32_t id = pool_.add_device(now_ns_);
  dispatch();  // a zero-warmup device is bindable immediately
  return id;
}

void FrontDoor::drain_device(uint32_t device) {
  const auto pending = pool_.start_drain(device, now_ns_);
  if (pending.has_value()) {
    // In-flight session: give it the grace window, then cut. The deadline
    // is scheduled against the CURRENT binding generation — if the session
    // finishes (or the device dies) first, the deadline goes stale.
    const auto it = active_.find(device);
    if (it == active_.end()) {
      throw UsageError("FrontDoor: draining busy device with no binding");
    }
    events_.push(Event{now_ns_ + pool_.config().drain_grace_ns,
                       next_event_seq_++, Event::Kind::kDrainDeadline, device,
                       it->second.gen, 0});
  }
  advance(now_ns_);  // a zero-grace drain cuts at this very instant
}

void FrontDoor::kill_device(uint32_t device) {
  if (active_.count(device) != 0) {
    const ActiveBinding lost = cut_binding(device);
    pool_.crash(device, now_ns_, /*rejoin_at_ns=*/0);
    failover(lost);
  } else {
    pool_.crash(device, now_ns_, /*rejoin_at_ns=*/0);
  }
  dispatch();  // the failover may be dispatchable elsewhere right now
}

FrontDoor::RequestState* FrontDoor::find_request(uint64_t session_id,
                                                 uint64_t request_id) {
  const auto session_it = sessions_.find(session_id);
  if (session_it == sessions_.end()) return nullptr;
  const auto request_it = session_it->second.requests.find(request_id);
  if (request_it == session_it->second.requests.end()) return nullptr;
  return &request_it->second;
}

void FrontDoor::advance_to(uint64_t now_ns) {
  advance(std::max(now_ns, now_ns_));
}

void FrontDoor::resolve_queued_device_lost() {
  // No device will EVER serve again, so every queued request gets its
  // fail-closed terminal verdict now instead of waiting forever. Expired
  // picks still resolve as the (more specific) deadline verdict.
  for (;;) {
    auto pick = admission_.next(now_ns_);
    if (!pick.has_value()) break;
    if (!pick->expired) {
      // Charged in flight by next(); release immediately — nothing runs.
      admission_.on_complete(pick->request.tenant_id);
    }
    RequestState* state =
        find_request(pick->request.session_id, pick->request.request_id);
    if (state != nullptr) {
      state->stage = Stage::kDone;
      state->done_ns = now_ns_;
      state->outcome_status =
          pick->expired ? Status::kDeadlineExceeded : Status::kDeviceLost;
      state->queue_wait_ns += now_ns_ - pick->request.enqueue_ns;
    }
    if (!pick->expired) device_lost_total_->add();
  }
}

void FrontDoor::finish() {
  for (;;) {
    if (!events_.empty()) {
      advance(events_.top().at_ns);
      continue;
    }
    if (admission_.total_queued() == 0) break;
    // Nothing in flight but work is queued: the fleet may be temporarily
    // down (quarantine, flap repair, warmup). Jump to the next device
    // transition and try again.
    const uint64_t wake = pool_.next_transition_ns();
    if (wake != UINT64_MAX) {
      advance(wake);
      continue;
    }
    if (!pool_.can_ever_serve()) {
      resolve_queued_device_lost();
      break;
    }
    const size_t before = admission_.total_queued();
    dispatch();
    if (events_.empty() && admission_.total_queued() == before) {
      // Nothing in flight and nothing dispatchable: queued work that can
      // never run (a zero quota). Config error; bail instead of spinning.
      break;
    }
  }
}

FrontDoor::ChurnAudit FrontDoor::audit_bindings() const {
  const auto fail = [](std::string why) {
    return ChurnAudit{false, std::move(why)};
  };
  // Invariant (a): per-device binding intervals never overlap.
  std::map<uint32_t, std::vector<const Binding*>> by_device;
  for (const Binding& b : bindings_) {
    if (b.end_ns < b.start_ns) {
      return fail("binding on device " + std::to_string(b.device) +
                  " ends before it starts");
    }
    by_device[b.device].push_back(&b);
  }
  for (auto& [device, intervals] : by_device) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Binding* a, const Binding* b) {
                return a->start_ns < b->start_ns;
              });
    for (size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i]->start_ns < intervals[i - 1]->end_ns) {
        return fail("device " + std::to_string(device) +
                    " bound to two sessions at sim ns " +
                    std::to_string(intervals[i]->start_ns));
      }
    }
  }
  // Invariant (b): every interval fits inside one of its device's service
  // windows — [kServe/kRejoin .. kCrash/kQuarantine/kDrainDone). A binding
  // past a window close would mean a session ran on a dead/quarantined/
  // drained device.
  std::map<uint32_t, std::vector<std::pair<uint64_t, uint64_t>>> windows;
  std::map<uint32_t, uint64_t> open_since;
  for (const DeviceEvent& event : pool_.events()) {
    switch (event.kind) {
      case DeviceEventKind::kServe:
      case DeviceEventKind::kRejoin:
        open_since[event.device] = event.at_ns;
        break;
      case DeviceEventKind::kCrash:
      case DeviceEventKind::kQuarantine:
      case DeviceEventKind::kDrainDone: {
        const auto it = open_since.find(event.device);
        if (it != open_since.end()) {
          windows[event.device].emplace_back(it->second, event.at_ns);
          open_since.erase(it);
        }
        break;
      }
      case DeviceEventKind::kJoin:
      case DeviceEventKind::kDrainStart:
      case DeviceEventKind::kStickyFault:
        break;  // neither opens nor closes a service window
    }
  }
  for (const auto& [device, since] : open_since) {
    windows[device].emplace_back(since, UINT64_MAX);  // still in service
  }
  for (const Binding& b : bindings_) {
    bool inside = false;
    for (const auto& [open, close] : windows[b.device]) {
      if (b.start_ns >= open && b.end_ns <= close) {
        inside = true;
        break;
      }
    }
    if (!inside) {
      return fail("binding [" + std::to_string(b.start_ns) + ", " +
                  std::to_string(b.end_ns) + ") on device " +
                  std::to_string(b.device) +
                  " extends past the device's service window");
    }
  }
  return ChurnAudit{};
}

ServiceClient::ServiceClient(FrontDoor& door, const crypto::AesKey128& key)
    : door_(door), channel_(key) {
  channel_.set_lossy_transport(true);
  conn_id_ = door_.connect(key);
}

std::optional<ResponseFrame> ServiceClient::call(const RequestFrame& request,
                                                 uint64_t now_ns,
                                                 faults::FaultyLink* link) {
  auto sealed = channel_.seal(hypervisor::MessageType::kBundleSubmit,
                              /*target_offset=*/0, request.encode());
  std::vector<hypervisor::SecureMessage> on_wire;
  if (link != nullptr) {
    on_wire = link->transmit(std::move(sealed));
  } else {
    on_wire.push_back(std::move(sealed));
  }
  std::optional<ResponseFrame> first;
  for (const auto& frame : on_wire) {
    for (const auto& reply : door_.deliver(conn_id_, frame, now_ns)) {
      auto opened = channel_.open(reply, /*max_body_length=*/1 << 20,
                                  /*max_target_offset=*/0);
      if (opened.status != Status::kOk) continue;
      auto decoded = ResponseFrame::decode(opened.body);
      if (decoded.has_value() && !first.has_value()) first = decoded;
    }
  }
  return first;
}

}  // namespace hardtape::service
