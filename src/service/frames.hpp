// Service wire protocol: the front door's framed-request API (PR 7).
//
// Layering: a service frame is the *body* of a hypervisor::SecureMessage —
// the existing authenticated channel (AES-GCM with the 32-byte header as
// AAD plus per-direction anti-replay sequence numbers) provides
// confidentiality, integrity and replay protection; this module only defines
// what the plaintext body says. The split mirrors the paper's A.E.DMA
// discipline: the Hypervisor parses the fixed header, the body goes straight
// to the service logic.
//
// Frame body encoding is RLP (the repo's one canonical serialization):
//
//   request  := [version, verb, session_id, tenant_id, request_id,
//                deadline_ns, client_time_ns, gas_estimate, bundle]
//   bundle   := [tx*]
//   tx       := [from, to_present, to, value, data, gas_limit, gas_price,
//                nonce_present, nonce]
//   response := [version, verb, session_id, request_id, status, done,
//                outcome_status, queue_wait_ns, exec_ns, gas_used]
//
// Fail-closed decode contract: decode() returns nullopt on ANY deviation —
// wrong version, unknown verb, wrong arity, oversized fields, trailing
// bytes. A malformed frame never partially parses; the front door answers
// kMalformedMessage and leaves the session state machine untouched. (The
// channel's receive sequence HAS advanced by then — the frame authenticated
// as genuinely the client's next message; it is the client's own garbage,
// not an attacker's, so rejecting it without killing the session is safe.
// Frames that fail authentication or replay never reach this layer and
// never advance channel state — hypervisor_test pins that.)
#pragma once

#include <optional>

#include "common/errors.hpp"
#include "evm/types.hpp"

namespace hardtape::service {

/// Protocol version carried in every frame. Bump on any wire change; the
/// front door rejects mismatches (kMalformedMessage) instead of guessing.
/// v2 (PR 9): request frames carry a gas_estimate field for cost-aware
/// brownout; fixed arity grew 8 -> 9.
inline constexpr uint8_t kServiceFrameVersion = 2;

/// The front door's four verbs (Fig. 3's user-facing slice of the flow).
enum class Verb : uint8_t {
  kOpenSession = 1,   ///< bind this channel to a tenant; allocates a session
  kSubmit = 2,        ///< enqueue one bundle for pre-execution
  kPoll = 3,          ///< fetch the outcome of an admitted request
  kCloseSession = 4,  ///< end the session; frees its state
};

const char* to_string(Verb verb);

/// Client -> front door. Field meaning depends on the verb (unused fields
/// encode as zero and are ignored, but must still be present — fixed arity
/// keeps the decoder strict).
struct RequestFrame {
  uint8_t version = kServiceFrameVersion;
  Verb verb = Verb::kSubmit;
  uint64_t session_id = 0;   ///< 0 for kOpenSession (none assigned yet)
  uint64_t tenant_id = 0;    ///< kOpenSession only: who is asking
  uint64_t request_id = 0;   ///< client-chosen correlation id (submit/poll)
  /// kSubmit: queue-wait budget in simulated ns (0 = no deadline). Measured
  /// from client_time_ns, so a frame the SP's link delayed can be dead on
  /// arrival — admission answers kDeadlineExceeded without queueing it.
  uint64_t deadline_ns = 0;
  /// Simulated send time at the client (the open-loop generator's arrival
  /// stamp). The front door trusts it only for deadline arithmetic — it is
  /// the client's own budget being spent.
  uint64_t client_time_ns = 0;
  /// kSubmit only: the client's estimate of the bundle's execution cost, in
  /// gas. Feeds cost-aware brownout shedding; 0 means "no hint" and the
  /// front door derives an estimate from the bundle's summed gas limits.
  /// Advisory for ADMISSION only — an understated hint buys a cheaper shed
  /// verdict but execution still charges real gas against real limits.
  uint64_t gas_estimate = 0;
  std::vector<evm::Transaction> bundle;  ///< kSubmit only

  Bytes encode() const;
  /// Strict parse (see the fail-closed contract above).
  static std::optional<RequestFrame> decode(BytesView body);
};

/// Front door -> client. `status` is the verb's own result (admission
/// verdict, poll validity); the `done`/`outcome_*` block is only meaningful
/// for kPoll replies with status kOk.
struct ResponseFrame {
  uint8_t version = kServiceFrameVersion;
  Verb verb = Verb::kSubmit;  ///< echoes the request's verb
  uint64_t session_id = 0;
  uint64_t request_id = 0;
  Status status = Status::kOk;
  bool done = false;                    ///< poll: outcome is final
  Status outcome_status = Status::kOk;  ///< poll: the execution's status
  uint64_t queue_wait_ns = 0;           ///< poll: sim ns spent queued
  uint64_t exec_ns = 0;                 ///< poll: sim ns on the device
  uint64_t gas_used = 0;                ///< poll: total gas across the bundle

  Bytes encode() const;
  static std::optional<ResponseFrame> decode(BytesView body);
};

}  // namespace hardtape::service
