// Shared scaffolding for the reproduction benches: a fixed evaluation-set
// setup (node + deployed workload, the stand-in for Ethereum Mainnet blocks
// #19145194-#19145293) and table-printing helpers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "node/node.hpp"
#include "service/pre_execution.hpp"
#include "workload/generator.hpp"

namespace hardtape::bench {

struct EvaluationSetup {
  node::NodeSimulator node;
  workload::WorkloadGenerator generator;
  std::vector<std::vector<evm::Transaction>> blocks;

  /// `state_scale` multiplies the deployed-state population (accounts,
  /// contracts, pairs) — the big-state crash drill runs at 10x+. The
  /// optional `node_store` routes the node's trie through an external
  /// backend (e.g. trie::PagedNodeStore) so that scaled state need not be
  /// RAM-resident; it must outlive the setup.
  explicit EvaluationSetup(size_t block_count = 10, size_t txs_per_block = 40,
                           uint64_t seed = 19145194, size_t state_scale = 1,
                           trie::NodeStore* node_store = nullptr)
      : node(evm::BlockContext{}, node_store),
        generator(workload::GeneratorConfig{
            .seed = seed,
            .user_accounts = 32 * state_scale,
            .erc20_contracts = 24 * state_scale,
            .dex_pairs = 12 * state_scale,
            .routers = 6,
            .txs_per_block = txs_per_block,
        }) {
    generator.deploy(node.world());
    node.produce_block({});
    blocks = generator.generate_evaluation_set(block_count);
  }

  std::vector<evm::Transaction> all_transactions() const {
    std::vector<evm::Transaction> all;
    for (const auto& block : blocks) all.insert(all.end(), block.begin(), block.end());
    return all;
  }
};

inline service::PreExecutionService::Config default_service_config(
    service::SecurityConfig security) {
  service::PreExecutionService::Config config;
  config.security = security;
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 8192,
                                 .max_stash_blocks = 512};
  config.seal_mode = oram::SealMode::kChaChaHmac;  // see DESIGN.md §1
  config.perform_channel_crypto = false;           // timing from the cost models
  return config;
}

// --- tiny fixed-width table printer ---

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(const std::string& title) const {
    std::printf("\n=== %s ===\n", title.c_str());
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t i = 0; i < cells.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t w : widths) rule += std::string(w, '-') + "  ";
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}
inline std::string pct(double numerator, double denominator) {
  return denominator > 0 ? fmt(100.0 * numerator / denominator) + "%" : "n/a";
}

}  // namespace hardtape::bench
